/**
 * @file
 * Unit tests for the shared prefix-cache layer of the block-granular
 * KV-cache allocator: block-aligned hits, LRU promotion/eviction
 * order, evict-before-preempt reclamation, eviction-byte accounting,
 * and the disabled-is-inert contract.
 */

#include <gtest/gtest.h>

#include "llm/kv_cache.hh"
#include "llm/model_config.hh"

namespace {

using namespace papi::llm;

/** A deliberately tiny pool (one device, 8 blocks of 16 tokens) so
 *  every test controls occupancy exactly. */
class PrefixCacheTest : public ::testing::Test
{
  protected:
    PrefixCacheTest()
        : model(opt30b()),
          mgr(model, /*devices=*/1,
              /*capacity=*/8 * 16 * opt30b().kvBytesPerToken(),
              /*block_tokens=*/16)
    {}

    ModelConfig model;
    KvCacheManager mgr;
};

TEST_F(PrefixCacheTest, DisabledIsInert)
{
    const std::uint64_t free_before = mgr.freeBlocks();
    EXPECT_FALSE(mgr.prefixCacheEnabled());
    mgr.prefixInsert(7, 64); // dropped silently
    EXPECT_EQ(mgr.prefixEntries(), 0u);
    EXPECT_EQ(mgr.cachedBlocks(), 0u);
    EXPECT_EQ(mgr.prefixLookup(7, 64), 0u);
    EXPECT_EQ(mgr.peekPrefixHit(7, 64), 0u);
    EXPECT_EQ(mgr.freeBlocks(), free_before);
    // The prefix-aware headroom query degenerates to freeBlocks().
    EXPECT_EQ(mgr.availableBlocks(), mgr.freeBlocks());
    EXPECT_EQ(mgr.prefixEvictedBytes(), 0u);
}

TEST_F(PrefixCacheTest, HitsAreBlockAlignedDown)
{
    mgr.setPrefixCacheEnabled(true);
    const std::uint64_t free_before = mgr.freeBlocks();
    mgr.prefixInsert(7, 40); // 40 tokens -> 3 blocks, span 40
    EXPECT_EQ(mgr.prefixEntries(), 1u);
    EXPECT_EQ(mgr.cachedBlocks(), 3u);
    EXPECT_EQ(mgr.freeBlocks(), free_before - 3);
    EXPECT_EQ(mgr.availableBlocks(), free_before);

    // min(span, max_tokens) floored to whole cached blocks: the
    // partial tail block never counts as a hit.
    EXPECT_EQ(mgr.peekPrefixHit(7, 1000), 32u);
    EXPECT_EQ(mgr.peekPrefixHit(7, 40), 32u);
    EXPECT_EQ(mgr.peekPrefixHit(7, 33), 32u);
    EXPECT_EQ(mgr.peekPrefixHit(7, 31), 16u);
    EXPECT_EQ(mgr.peekPrefixHit(7, 16), 16u);
    EXPECT_EQ(mgr.peekPrefixHit(7, 15), 0u);
    // Unknown keys and the 0 sentinel miss.
    EXPECT_EQ(mgr.peekPrefixHit(8, 1000), 0u);
    EXPECT_EQ(mgr.peekPrefixHit(0, 1000), 0u);
    // The LRU-touching form agrees with the pure probe.
    EXPECT_EQ(mgr.prefixLookup(7, 1000), 32u);
}

TEST_F(PrefixCacheTest, LookupPromotesAgainstEviction)
{
    mgr.setPrefixCacheEnabled(true);
    mgr.prefixInsert(1, 32); // A: 2 blocks
    mgr.prefixInsert(2, 32); // B: 2 blocks
    mgr.prefixInsert(3, 32); // C: 2 blocks
    EXPECT_EQ(mgr.cachedBlocks(), 6u);

    // Promote A to most-recently-used; B becomes the LRU victim.
    EXPECT_EQ(mgr.prefixLookup(1, 32), 32u);
    const std::uint64_t need = mgr.freeBlocks() + 2;
    EXPECT_EQ(mgr.reclaimPrefixBlocks(need), 2u);
    EXPECT_EQ(mgr.prefixEntries(), 2u);
    EXPECT_EQ(mgr.peekPrefixHit(2, 32), 0u); // B evicted
    EXPECT_EQ(mgr.peekPrefixHit(1, 32), 32u);
    EXPECT_EQ(mgr.peekPrefixHit(3, 32), 32u);
    EXPECT_EQ(mgr.prefixEvictedBytes(), 2 * mgr.blockBytes());
}

TEST_F(PrefixCacheTest, AdmissionReclaimsCacheBeforeFailing)
{
    mgr.setPrefixCacheEnabled(true);
    mgr.prefixInsert(5, 6 * 16); // 6 of 8 blocks cached
    EXPECT_EQ(mgr.freeBlocks(), 2u);
    // Cached blocks count as admission headroom...
    EXPECT_TRUE(mgr.canAdmit(8 * 16));
    // ...and a grow past the free pool evicts cache entries instead
    // of dying (the evict-before-preempt primitive).
    EXPECT_EQ(mgr.admit(9, 8 * 16), 8u);
    EXPECT_EQ(mgr.cachedBlocks(), 0u);
    EXPECT_EQ(mgr.prefixEntries(), 0u);
    EXPECT_EQ(mgr.prefixEvictedBytes(), 6 * mgr.blockBytes());
    mgr.release(9);
}

TEST_F(PrefixCacheTest, InsertDroppedWhenPoolTooHot)
{
    mgr.setPrefixCacheEnabled(true);
    mgr.admit(1, 7 * 16); // live request holds 7 of 8 blocks
    mgr.prefixInsert(5, 33); // needs 3 blocks, only 1 free
    // Live requests are never disturbed: the insert is dropped.
    EXPECT_EQ(mgr.prefixEntries(), 0u);
    EXPECT_EQ(mgr.cachedBlocks(), 0u);
    EXPECT_EQ(mgr.requestBlocks(1), 7u);
    mgr.release(1);
}

TEST_F(PrefixCacheTest, ReinsertExtendsSpanAndRefreshes)
{
    mgr.setPrefixCacheEnabled(true);
    mgr.prefixInsert(4, 20); // 2 blocks, span 20
    EXPECT_EQ(mgr.peekPrefixHit(4, 64), 16u);
    mgr.prefixInsert(4, 50); // extend to 4 blocks, span 50
    EXPECT_EQ(mgr.prefixEntries(), 1u);
    EXPECT_EQ(mgr.cachedBlocks(), 4u);
    EXPECT_EQ(mgr.peekPrefixHit(4, 64), 48u);
    // Shrinking re-inserts keep the longer cached span.
    mgr.prefixInsert(4, 20);
    EXPECT_EQ(mgr.peekPrefixHit(4, 64), 48u);
}

} // namespace
