/**
 * @file
 * Tests for deterministic fault injection and failure recovery:
 * FaultPlan synthesis/validation, the degraded-transfer fabric
 * model, health-aware routing, crash/retry/shed accounting, and the
 * two byte-identity contracts - a crash-free plan is byte-identical
 * to running with no injector at all, and a fixed faulty plan is
 * byte-deterministic across runs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cluster/cluster_engine.hh"
#include "cluster/router.hh"
#include "core/serving_engine.hh"
#include "llm/arrival.hh"
#include "sim/fault_plan.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace {

using namespace papi::cluster;
namespace core = papi::core;
namespace llm = papi::llm;
namespace sim = papi::sim;
using papi::sim::FatalError;

std::vector<llm::TimedRequest>
stream(double rate_rps, std::uint32_t count, std::uint64_t seed = 5)
{
    llm::ArrivalProcess arrivals(llm::TraceCategory::GeneralQa,
                                 rate_rps, seed);
    return arrivals.generate(count);
}

/** Every ServingResult field, compared exactly (no tolerance). */
void
expectByteIdentical(const core::ServingResult &a,
                    const core::ServingResult &b)
{
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_EQ(a.admissions, b.admissions);
    EXPECT_EQ(a.shedRequests, b.shedRequests);
    EXPECT_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_EQ(a.p95LatencySeconds, b.p95LatencySeconds);
    EXPECT_EQ(a.meanRlp, b.meanRlp);
    EXPECT_EQ(a.peakKvUtilization, b.peakKvUtilization);
}

/** Every ClusterResult aggregate, compared exactly. */
void
expectClusterByteIdentical(const ClusterResult &a,
                           const ClusterResult &b)
{
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.requestsServed, b.requestsServed);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_EQ(a.requestsOffered, b.requestsOffered);
    EXPECT_EQ(a.failedRequests, b.failedRequests);
    EXPECT_EQ(a.shedRequests, b.shedRequests);
    EXPECT_EQ(a.retriedRequests, b.retriedRequests);
    EXPECT_EQ(a.retryRecomputedTokens, b.retryRecomputedTokens);
    EXPECT_EQ(a.injectedCrashes, b.injectedCrashes);
    EXPECT_EQ(a.replicaRestarts, b.replicaRestarts);
    EXPECT_EQ(a.kvTransfers, b.kvTransfers);
    EXPECT_EQ(a.kvTransferBytes, b.kvTransferBytes);
    EXPECT_EQ(a.kvTransferSeconds, b.kvTransferSeconds);
    EXPECT_EQ(a.kvTransferFallbacks, b.kvTransferFallbacks);
    EXPECT_EQ(a.sloAttainment, b.sloAttainment);
    EXPECT_EQ(a.goodputTokensPerSecond, b.goodputTokensPerSecond);
    EXPECT_EQ(a.ttft.p50, b.ttft.p50);
    EXPECT_EQ(a.ttft.p99, b.ttft.p99);
    EXPECT_EQ(a.tpot.p50, b.tpot.p50);
    EXPECT_EQ(a.latency.p99, b.latency.p99);
    EXPECT_EQ(a.meanQueueingSeconds, b.meanQueueingSeconds);
    ASSERT_EQ(a.replicaDowntimeSeconds.size(),
              b.replicaDowntimeSeconds.size());
    for (std::size_t g = 0; g < a.replicaDowntimeSeconds.size(); ++g)
        EXPECT_EQ(a.replicaDowntimeSeconds[g],
                  b.replicaDowntimeSeconds[g]);
    ASSERT_EQ(a.perGroup.size(), b.perGroup.size());
    for (std::size_t g = 0; g < a.perGroup.size(); ++g)
        expectByteIdentical(a.perGroup[g], b.perGroup[g]);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].id, b.records[i].id);
        EXPECT_EQ(a.records[i].firstTokenSeconds,
                  b.records[i].firstTokenSeconds);
        EXPECT_EQ(a.records[i].finishSeconds,
                  b.records[i].finishSeconds);
    }
}

// ------------------------------------------------------------------
// FaultPlan synthesis and validation.

TEST(FaultPlan, GenerateIsDeterministicAndValid)
{
    sim::FaultPlanParams p;
    p.seed = 42;
    p.numReplicas = 4;
    p.crashes = 6;
    p.horizonSeconds = 20.0;
    p.coldStartSeconds = 0.5;

    sim::FaultPlan a = sim::FaultPlan::generate(p);
    sim::FaultPlan b = sim::FaultPlan::generate(p);
    ASSERT_EQ(a.replicaFaults.size(), 6u);
    ASSERT_EQ(b.replicaFaults.size(), 6u);
    for (std::size_t i = 0; i < a.replicaFaults.size(); ++i) {
        EXPECT_EQ(a.replicaFaults[i].replica,
                  b.replicaFaults[i].replica);
        EXPECT_EQ(a.replicaFaults[i].crashSeconds,
                  b.replicaFaults[i].crashSeconds);
        EXPECT_EQ(a.replicaFaults[i].restartSeconds,
                  b.replicaFaults[i].restartSeconds);
    }
    EXPECT_NO_THROW(a.validate(4));
    EXPECT_FALSE(a.empty());
    EXPECT_FALSE(a.crashFree());
    for (std::size_t i = 0; i < a.replicaFaults.size(); ++i) {
        const auto &f = a.replicaFaults[i];
        EXPECT_LT(f.replica, 4u);
        EXPECT_GE(f.crashSeconds, 0.1 * p.horizonSeconds);
        EXPECT_LT(f.crashSeconds, p.horizonSeconds);
        EXPECT_DOUBLE_EQ(f.restartSeconds,
                         f.crashSeconds + p.coldStartSeconds);
        if (i > 0) {
            EXPECT_GE(f.crashSeconds,
                      a.replicaFaults[i - 1].crashSeconds);
        }
    }

    // Different seed, different plan.
    p.seed = 43;
    sim::FaultPlan c = sim::FaultPlan::generate(p);
    bool differs = false;
    for (std::size_t i = 0; i < c.replicaFaults.size(); ++i)
        differs |= c.replicaFaults[i].crashSeconds !=
                   a.replicaFaults[i].crashSeconds;
    EXPECT_TRUE(differs);

    // Fail-stop synthesis: no restart events.
    p.restart = false;
    sim::FaultPlan d = sim::FaultPlan::generate(p);
    for (const auto &f : d.replicaFaults)
        EXPECT_TRUE(std::isinf(f.restartSeconds));
}

TEST(FaultPlan, ValidateRejectsMalformedPlans)
{
    const double inf = std::numeric_limits<double>::infinity();
    {
        sim::FaultPlan p;
        p.replicaFaults.push_back({2, 1.0, inf}); // replica 2 of 2
        EXPECT_THROW(p.validate(2), FatalError);
        EXPECT_NO_THROW(p.validate(3));
    }
    {
        sim::FaultPlan p;
        p.replicaFaults.push_back({0, -1.0, inf}); // negative time
        EXPECT_THROW(p.validate(1), FatalError);
    }
    {
        sim::FaultPlan p;
        p.replicaFaults.push_back({0, 2.0, 1.5}); // restart < crash
        EXPECT_THROW(p.validate(1), FatalError);
    }
    {
        sim::FaultPlan p; // overlapping link windows
        p.linkFaults.push_back({0.0, 2.0, 0.5});
        p.linkFaults.push_back({1.0, 3.0, 0.5});
        EXPECT_THROW(p.validate(1), FatalError);
    }
    {
        sim::FaultPlan p; // unsorted link windows
        p.linkFaults.push_back({5.0, 6.0, 0.5});
        p.linkFaults.push_back({1.0, 2.0, 0.5});
        EXPECT_THROW(p.validate(1), FatalError);
    }
    {
        sim::FaultPlan p; // empty window
        p.linkFaults.push_back({2.0, 2.0, 0.5});
        EXPECT_THROW(p.validate(1), FatalError);
    }
    {
        sim::FaultPlan p; // factor outside [0, 1]
        p.linkFaults.push_back({0.0, 1.0, 1.5});
        EXPECT_THROW(p.validate(1), FatalError);
        p.linkFaults[0].bandwidthFactor = -0.1;
        EXPECT_THROW(p.validate(1), FatalError);
        p.linkFaults[0].bandwidthFactor = 0.0; // partition is legal
        EXPECT_NO_THROW(p.validate(1));
    }
}

// ------------------------------------------------------------------
// Degraded-transfer fabric model.

TEST(FaultPlan, DegradedTransferEndMatchesNominalWithoutWindows)
{
    // No windows: exactly start + fixed + bytes/bandwidth.
    EXPECT_DOUBLE_EQ(sim::degradedTransferEnd(2.0, 0.1, 1e9, 1e9,
                                              {}),
                     2.0 + 0.1 + 1.0);
    // A window that closed before the transfer starts is inert.
    std::vector<sim::LinkFault> past{{0.0, 1.0, 0.0}};
    EXPECT_DOUBLE_EQ(sim::degradedTransferEnd(2.0, 0.1, 1e9, 1e9,
                                              past),
                     2.0 + 0.1 + 1.0);
}

TEST(FaultPlan, PartitionStallsAndDegradationStretches)
{
    // Partition [0, 5): a transfer starting at 1 with 1 s of drain
    // makes no progress until 5, then drains: ends at 6 (+fixed).
    std::vector<sim::LinkFault> part{{0.0, 5.0, 0.0}};
    EXPECT_DOUBLE_EQ(sim::degradedTransferEnd(1.0, 0.0, 1e9, 1e9,
                                              part),
                     6.0);
    // Half bandwidth across the whole drain: twice the drain time.
    std::vector<sim::LinkFault> slow{{0.0, 100.0, 0.5}};
    EXPECT_DOUBLE_EQ(sim::degradedTransferEnd(1.0, 0.0, 1e9, 1e9,
                                              slow),
                     1.0 + 2.0);
    // Window covering only the first half of the drain: 1 s of
    // half-rate (0.5 GB) + 0.5 s nominal for the rest.
    std::vector<sim::LinkFault> half{{0.0, 2.0, 0.5}};
    EXPECT_DOUBLE_EQ(sim::degradedTransferEnd(1.0, 0.0, 1e9, 1e9,
                                              half),
                     1.0 + 1.0 + 0.5);
}

// ------------------------------------------------------------------
// Health-aware routing.

TEST(Router, AllPoliciesSkipDeadBackends)
{
    llm::TimedRequest req;

    // Round-robin probes forward past dead replicas and the cursor
    // follows, so the cycle continues from the substitute.
    Router rr(RouterPolicy::RoundRobin, 3);
    std::vector<BackendLoad> l(3);
    l[1].alive = false;
    EXPECT_EQ(rr.route(req, l), 0u);
    EXPECT_EQ(rr.route(req, l), 2u); // 1 is dead, probe lands on 2
    EXPECT_EQ(rr.route(req, l), 0u);

    // Least-outstanding only considers alive replicas.
    Router lo(RouterPolicy::LeastOutstanding, 3);
    std::vector<BackendLoad> l2(3);
    l2[0].outstanding = 0;
    l2[0].alive = false;
    l2[1].outstanding = 9;
    l2[2].outstanding = 4;
    EXPECT_EQ(lo.route(req, l2), 2u);

    // Session affinity fails over off a dead home replica but the
    // session stays sticky to the substitute while the home is dark.
    Router sa(RouterPolicy::SessionAffinity, 4);
    llm::TimedRequest pinned;
    pinned.sessionId = 77;
    std::vector<BackendLoad> l3(4);
    std::uint32_t home = sa.route(pinned, l3);
    l3[home].alive = false;
    std::uint32_t failover = sa.route(pinned, l3);
    EXPECT_NE(failover, home);
    EXPECT_EQ(sa.route(pinned, l3), failover);
    // Home restored: affinity snaps back.
    l3[home].alive = true;
    EXPECT_EQ(sa.route(pinned, l3), home);
}

TEST(Router, TotalOutageFallsBackDeterministically)
{
    llm::TimedRequest req;
    Router rr(RouterPolicy::RoundRobin, 3);
    std::vector<BackendLoad> dark(3);
    for (auto &b : dark)
        b.alive = false;
    // With nobody alive the pick degrades to the healthy-cluster
    // choice (requests queue on a dark replica and drain at restart).
    EXPECT_EQ(rr.route(req, dark), 0u);
    EXPECT_EQ(rr.route(req, dark), 1u);

    Router lo(RouterPolicy::LeastOutstanding, 3);
    std::vector<BackendLoad> dark2(3);
    dark2[0].outstanding = 5;
    dark2[1].outstanding = 1;
    dark2[2].outstanding = 3;
    for (auto &b : dark2)
        b.alive = false;
    EXPECT_EQ(lo.route(req, dark2), 1u);
}

// ------------------------------------------------------------------
// Cluster-level byte-identity and determinism contracts.

TEST(FaultCluster, CrashFreePlanByteIdenticalToNoInjector)
{
    // A crash-free plan whose link window never engages any transfer
    // must leave the run byte-identical to no injector at all - the
    // whole fault subsystem costs nothing unless a fault fires.
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(60.0, 48);

    ClusterOptions opt;
    opt.serving.maxRlp = 16;
    opt.serving.alpha = 24.0;
    opt.disagg.enabled = true;
    opt.disagg.prefillReplicas = 1;
    opt.disagg.decodeReplicas = 1;
    ClusterResult plain =
        ClusterEngine(cfg, opt).run(reqs, spec, model);

    ClusterOptions armed = opt;
    armed.faults.linkFaults.push_back({1.0e6, 1.0e6 + 1.0, 0.0});
    ClusterResult with_injector =
        ClusterEngine(cfg, armed).run(reqs, spec, model);

    expectClusterByteIdentical(plain, with_injector);
    EXPECT_EQ(with_injector.injectedCrashes, 0u);
    EXPECT_EQ(with_injector.failedRequests, 0u);
    EXPECT_EQ(with_injector.kvTransferFallbacks, 0u);
    ASSERT_EQ(with_injector.replicaDowntimeSeconds.size(), 2u);
    EXPECT_EQ(with_injector.replicaDowntimeSeconds[0], 0.0);
}

TEST(FaultCluster, FixedPlanIsByteDeterministic)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(80.0, 48);

    ClusterOptions opt;
    opt.numPlatforms = 2;
    opt.policy = RouterPolicy::LeastOutstanding;
    opt.serving.maxRlp = 16;
    opt.serving.alpha = 24.0;
    opt.faults.replicaFaults.push_back({0, 0.5, 0.9});
    opt.recovery.retryBackoffSeconds = 0.02;

    ClusterResult a = ClusterEngine(cfg, opt).run(reqs, spec, model);
    ClusterResult b = ClusterEngine(cfg, opt).run(reqs, spec, model);
    expectClusterByteIdentical(a, b);
    EXPECT_EQ(a.injectedCrashes, 1u);
    EXPECT_EQ(a.replicaRestarts, 1u);
}

// ------------------------------------------------------------------
// Crash, retry, fail-stop, and conservation.

TEST(FaultCluster, RetryRecoversWhatFailStopDrops)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(80.0, 48);

    ClusterOptions opt;
    opt.numPlatforms = 2;
    opt.policy = RouterPolicy::LeastOutstanding;
    opt.serving.maxRlp = 16;
    opt.serving.alpha = 24.0;
    // Crash replica 0 mid-stream; it comes back 0.3 s later.
    opt.faults.replicaFaults.push_back({0, 0.4, 0.7});
    opt.recovery.retryBackoffSeconds = 0.02;

    ClusterOptions failstop = opt;
    failstop.recovery.retryFailedRequests = false;

    ClusterResult retry =
        ClusterEngine(cfg, opt).run(reqs, spec, model);
    ClusterResult drop =
        ClusterEngine(cfg, failstop).run(reqs, spec, model);

    // The crash hit live work in both runs.
    EXPECT_EQ(drop.injectedCrashes, 1u);
    EXPECT_GT(drop.failedRequests, 0u);
    EXPECT_LT(drop.requestsServed, reqs.size());

    // Retry resubmits every loss and serves the whole stream; the
    // recomputed prefill/decode work is charged and visible.
    EXPECT_GT(retry.retriedRequests, 0u);
    EXPECT_EQ(retry.failedRequests, 0u);
    EXPECT_EQ(retry.requestsServed, reqs.size());
    EXPECT_GT(retry.retryRecomputedTokens, 0u);

    // Conservation: offered = served + failed + shed, both modes.
    EXPECT_EQ(retry.requestsOffered, reqs.size());
    EXPECT_EQ(retry.requestsOffered,
              retry.requestsServed + retry.failedRequests +
                  retry.shedRequests);
    EXPECT_EQ(drop.requestsOffered,
              drop.requestsServed + drop.failedRequests +
                  drop.shedRequests);

    // The headline robustness claim: recovery converts failed
    // requests into goodput.
    EXPECT_GT(retry.goodputTokensPerSecond,
              drop.goodputTokensPerSecond);
    EXPECT_GT(retry.sloAttainment, drop.sloAttainment);

    // Downtime accounting: the victim was dark exactly the planned
    // window; the survivor never went down.
    ASSERT_EQ(retry.replicaDowntimeSeconds.size(), 2u);
    EXPECT_DOUBLE_EQ(retry.replicaDowntimeSeconds[0], 0.7 - 0.4);
    EXPECT_DOUBLE_EQ(retry.replicaDowntimeSeconds[1], 0.0);
}

TEST(FaultCluster, NeverRestartedReplicaStillConserves)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(80.0, 32);

    ClusterOptions opt;
    opt.numPlatforms = 2;
    opt.policy = RouterPolicy::LeastOutstanding;
    opt.serving.maxRlp = 16;
    opt.faults.replicaFaults.push_back({0, 0.3}); // never restarts
    opt.recovery.retryBackoffSeconds = 0.02;

    ClusterResult r = ClusterEngine(cfg, opt).run(reqs, spec, model);
    EXPECT_EQ(r.injectedCrashes, 1u);
    EXPECT_EQ(r.replicaRestarts, 0u);
    EXPECT_EQ(r.requestsOffered,
              r.requestsServed + r.failedRequests + r.shedRequests);
    // The survivor carried the recovered load.
    EXPECT_GT(r.retriedRequests, 0u);
    EXPECT_GT(r.perGroup[1].tokensGenerated, 0u);
    // Open downtime window is charged through the end of the run.
    ASSERT_EQ(r.replicaDowntimeSeconds.size(), 2u);
    EXPECT_GT(r.replicaDowntimeSeconds[0], 0.0);
}

TEST(FaultCluster, RetriesExhaustAgainstRepeatedCrashes)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(60.0, 24);

    // Single replica that keeps crashing: with maxAttempts = 2 a
    // request lost twice is dropped for good.
    ClusterOptions opt;
    opt.numPlatforms = 1;
    opt.serving.maxRlp = 16;
    opt.faults.replicaFaults.push_back({0, 0.2, 0.3});
    opt.faults.replicaFaults.push_back({0, 0.4, 0.5});
    opt.faults.replicaFaults.push_back({0, 0.6, 0.7});
    opt.recovery.maxAttempts = 2;
    opt.recovery.retryBackoffSeconds = 0.01;

    ClusterResult r = ClusterEngine(cfg, opt).run(reqs, spec, model);
    EXPECT_EQ(r.injectedCrashes, 3u);
    EXPECT_EQ(r.requestsOffered,
              r.requestsServed + r.failedRequests + r.shedRequests);
}

// ------------------------------------------------------------------
// SLO-aware load shedding.

TEST(FaultCluster, DeadlineShedsLateRequestsAndConserves)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    // Overload one replica hard so the queue outruns the deadline.
    auto reqs = stream(400.0, 64);

    ClusterOptions opt;
    opt.numPlatforms = 1;
    opt.serving.maxRlp = 8;
    opt.serving.deadlineSeconds = 0.2;
    ClusterResult r = ClusterEngine(cfg, opt).run(reqs, spec, model);

    EXPECT_GT(r.shedRequests, 0u);
    EXPECT_LT(r.requestsServed, reqs.size());
    EXPECT_EQ(r.requestsOffered,
              r.requestsServed + r.failedRequests + r.shedRequests);
    // Shed requests count against SLO attainment.
    EXPECT_LT(r.sloAttainment, 1.0);
    EXPECT_GE(r.sloAttainment, 0.0);

    // Without a deadline nothing is shed on the same stream.
    opt.serving.deadlineSeconds = 0.0;
    ClusterResult all = ClusterEngine(cfg, opt).run(reqs, spec,
                                                    model);
    EXPECT_EQ(all.shedRequests, 0u);
    EXPECT_EQ(all.requestsServed, reqs.size());

    // A negative deadline is a configuration error.
    opt.serving.deadlineSeconds = -1.0;
    EXPECT_THROW(ClusterEngine(cfg, opt).run(reqs, spec, model),
                 FatalError);
}

// ------------------------------------------------------------------
// Link faults over the disaggregated KV-migration fabric.

TEST(FaultCluster, LinkPartitionFallsBackToRecompute)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(60.0, 32);

    ClusterOptions opt;
    opt.serving.maxRlp = 16;
    opt.disagg.enabled = true;
    opt.disagg.prefillReplicas = 1;
    opt.disagg.decodeReplicas = 1;
    // Partition the fabric for the whole run; every migration times
    // out and falls back to decode-pool prompt recompute.
    opt.faults.linkFaults.push_back({0.0, 1.0e6, 0.0});
    opt.recovery.transferTimeoutSeconds = 0.05;

    ClusterResult r = ClusterEngine(cfg, opt).run(reqs, spec, model);
    EXPECT_GT(r.kvTransferFallbacks, 0u);
    EXPECT_EQ(r.requestsServed, reqs.size());
    EXPECT_EQ(r.requestsOffered,
              r.requestsServed + r.failedRequests + r.shedRequests);
    EXPECT_EQ(r.tokensGenerated,
              [&] {
                  std::uint64_t t = 0;
                  for (const auto &tr : reqs)
                      t += tr.request.outputLen;
                  return t;
              }());

    // A degraded (but connected) fabric stretches migrations instead
    // of dropping them: no fallbacks, but more link time than the
    // healthy fabric needs.
    ClusterOptions slow = opt;
    slow.faults.linkFaults.clear();
    slow.faults.linkFaults.push_back({0.0, 1.0e6, 0.2});
    slow.recovery.transferTimeoutSeconds = 1.0e5;
    ClusterResult degraded =
        ClusterEngine(cfg, slow).run(reqs, spec, model);
    ClusterOptions healthy = opt;
    healthy.faults.linkFaults.clear();
    ClusterResult nominal =
        ClusterEngine(cfg, healthy).run(reqs, spec, model);
    EXPECT_EQ(degraded.kvTransferFallbacks, 0u);
    EXPECT_EQ(degraded.requestsServed, reqs.size());
    EXPECT_GT(degraded.kvTransferSeconds,
              nominal.kvTransferSeconds);
}

TEST(FaultCluster, LinkFaultsRequireDisaggregation)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(60.0, 8);

    ClusterOptions opt;
    opt.numPlatforms = 2;
    opt.faults.linkFaults.push_back({0.0, 1.0, 0.5});
    EXPECT_THROW(ClusterEngine(cfg, opt).run(reqs, spec, model),
                 FatalError);
}

// ------------------------------------------------------------------
// Stats export.

TEST(FaultCluster, PopulateStatsCarriesFaultAccounting)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(80.0, 32);

    ClusterOptions opt;
    opt.numPlatforms = 2;
    opt.serving.maxRlp = 16;
    opt.faults.replicaFaults.push_back({0, 0.3, 0.5});
    opt.recovery.retryBackoffSeconds = 0.02;
    ClusterResult r = ClusterEngine(cfg, opt).run(reqs, spec, model);

    papi::sim::stats::StatGroup g("faults");
    r.populateStats(g);
    EXPECT_NE(g.find("requests_offered"), nullptr);
    EXPECT_NE(g.find("goodput_tokens_per_second"), nullptr);
    EXPECT_NE(g.find("slo_attainment"), nullptr);
    EXPECT_NE(g.find("failed_requests"), nullptr);
    EXPECT_NE(g.find("retried_requests"), nullptr);
    EXPECT_NE(g.find("injected_crashes"), nullptr);
    EXPECT_NE(g.find("replica_downtime_seconds"), nullptr);

    // Fault-free runs do not emit the fault-only counters.
    ClusterOptions clean;
    clean.numPlatforms = 2;
    clean.serving.maxRlp = 16;
    ClusterResult rc =
        ClusterEngine(cfg, clean).run(reqs, spec, model);
    papi::sim::stats::StatGroup gc("clean");
    rc.populateStats(gc);
    EXPECT_NE(gc.find("requests_offered"), nullptr);
    EXPECT_NE(gc.find("goodput_tokens_per_second"), nullptr);
    EXPECT_EQ(gc.find("injected_crashes"), nullptr);
}

} // namespace
