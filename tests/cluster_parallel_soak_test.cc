/**
 * @file
 * Parallel-determinism soak: a 128-replica disaggregated cluster
 * under a dense fault plan (replica crashes with retries, a
 * degraded KV-migration fabric) serves a long arrival trace at 1,
 * 2, 4, and 8 worker threads, and every run's full result hash -
 * aggregates, per-replica results, and every per-request timeline -
 * must be identical. This is the scale-out stress the quick grid in
 * parallel_identity_test.cc cannot afford per-commit; it carries
 * the "soak" ctest label and is excluded from the tier-1 gate
 * (ctest -LE soak runs tier 1; ctest -L soak runs this).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "cluster/cluster_engine.hh"
#include "core/platform.hh"
#include "llm/arrival.hh"
#include "llm/model_config.hh"
#include "sim/fault_plan.hh"

namespace {

using namespace papi::cluster;
namespace core = papi::core;
namespace llm = papi::llm;
namespace sim = papi::sim;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
}

void
fnvMix(std::uint64_t &h, double v)
{
    fnvMix(h, std::bit_cast<std::uint64_t>(v));
}

/** One hash over everything a run produced: if any field of any
 *  record or any aggregate moves by one bit, the hash moves. */
std::uint64_t
resultHash(const ClusterResult &r)
{
    std::uint64_t h = kFnvOffset;
    fnvMix(h, r.makespanSeconds);
    fnvMix(h, r.energyJoules);
    fnvMix(h, r.requestsServed);
    fnvMix(h, r.tokensGenerated);
    fnvMix(h, r.failedRequests);
    fnvMix(h, r.shedRequests);
    fnvMix(h, r.retriedRequests);
    fnvMix(h, r.retryRecomputedTokens);
    fnvMix(h, r.injectedCrashes);
    fnvMix(h, r.replicaRestarts);
    fnvMix(h, r.kvTransfers);
    fnvMix(h, r.kvTransferBytes);
    fnvMix(h, r.kvTransferSeconds);
    fnvMix(h, r.kvTransferJoules);
    fnvMix(h, r.kvTransferFallbacks);
    fnvMix(h, r.preemptions);
    fnvMix(h, r.resumes);
    fnvMix(h, r.sloAttainment);
    fnvMix(h, r.goodputTokensPerSecond);
    fnvMix(h, r.meanTtftSeconds);
    fnvMix(h, r.meanTpotSeconds);
    fnvMix(h, r.meanLatencySeconds);
    fnvMix(h, r.meanQueueingSeconds);
    for (double u : r.groupUtilization)
        fnvMix(h, u);
    for (double d : r.replicaDowntimeSeconds)
        fnvMix(h, d);
    for (const core::ServingResult &g : r.perGroup) {
        fnvMix(h, g.makespanSeconds);
        fnvMix(h, g.energyJoules);
        fnvMix(h, g.iterations);
        fnvMix(h, g.tokensGenerated);
        fnvMix(h, g.admissions);
        fnvMix(h, g.preemptions);
        fnvMix(h, g.resumes);
        fnvMix(h, g.meanRlp);
        fnvMix(h, g.peakKvUtilization);
    }
    for (const core::RequestRecord &rec : r.records) {
        fnvMix(h, rec.id);
        fnvMix(h, rec.arrivalSeconds);
        fnvMix(h, rec.admissionSeconds);
        fnvMix(h, rec.firstTokenSeconds);
        fnvMix(h, rec.finishSeconds);
        fnvMix(h, static_cast<std::uint64_t>(rec.outputTokens));
        fnvMix(h, static_cast<std::uint64_t>(rec.preemptions));
        fnvMix(h, rec.stallSeconds);
    }
    return h;
}

TEST(ClusterParallelSoak, FaultyDisagg128ReplicaHashesAgree)
{
    const core::PlatformConfig cfg = core::makePapiConfig();
    const llm::ModelConfig model = llm::llama65b();
    const llm::SpeculativeConfig spec;

    ClusterOptions opt;
    opt.disagg.enabled = true;
    opt.disagg.prefillReplicas = 48;
    opt.disagg.decodeReplicas = 80; // 128 replicas in total
    opt.disagg.prefillPolicy = RouterPolicy::LeastOutstanding;
    opt.serving.prefillChunkTokens = 128;
    opt.serving.preemptOnKvPressure = true;
    opt.serving.deadlineSeconds = 5.0;

    sim::FaultPlanParams p;
    p.seed = 20250807;
    p.numReplicas = 128;
    p.crashes = 12;
    p.horizonSeconds = 8.0;
    p.coldStartSeconds = 0.4;
    opt.faults = sim::FaultPlan::generate(p);
    opt.faults.linkFaults.push_back({1.0, 3.0, 0.3});
    opt.faults.linkFaults.push_back({5.0, 6.5, 0.15});
    opt.recovery.transferTimeoutSeconds = 0.4;

    llm::ArrivalProcess arrivals(llm::TraceCategory::PrefillHeavy,
                                 900.0, 77);
    const auto stream = arrivals.generate(2000);

    std::uint64_t serial_hash = 0;
    std::uint64_t serial_served = 0;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        ClusterOptions run_opt = opt;
        run_opt.workerThreads = workers;
        const ClusterResult r =
            ClusterEngine(cfg, run_opt).run(stream, spec, model);
        // The workload must actually exercise the machinery it
        // claims to soak - crashes, fabric fallbacks, migrations.
        EXPECT_EQ(r.injectedCrashes, 12u);
        EXPECT_GT(r.kvTransfers, 0u);
        EXPECT_EQ(r.requestsOffered, 2000u);
        if (workers == 1) {
            serial_hash = resultHash(r);
            serial_served = r.requestsServed;
            EXPECT_GT(serial_served, 0u);
        } else {
            EXPECT_EQ(resultHash(r), serial_hash);
            EXPECT_EQ(r.requestsServed, serial_served);
        }
    }
}

} // namespace
