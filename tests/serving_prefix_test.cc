/**
 * @file
 * Differential and ledger tests for shared prefix caching in the
 * serving engine:
 *
 *  - With the cache DISABLED, a keyed multi-turn trace runs the
 *    engine in lockstep with the frozen pre-cache scalar reference,
 *    bit for bit - the shared-prefix request fields are inert.
 *  - With the cache ENABLED but no keyed requests in the stream, the
 *    run is byte-identical to the disabled run.
 *  - The token ledger: per request and per run,
 *    prefixHitTokens + prefixMissTokens == admitted prompt tokens.
 *  - Disaggregated prefill handoffs shrink by exactly the hit
 *    blocks (same per-request kvTokens, fewer kvBlocks/kvBytes).
 *  - Under KV pressure, cached blocks are evicted (accounted in
 *    prefixEvictedBytes) before requests are preempted.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/serving_engine.hh"
#include "core/serving_reference.hh"
#include "llm/arrival.hh"
#include "llm/kv_cache.hh"
#include "llm/model_config.hh"

namespace {

using namespace papi::core;
namespace llm = papi::llm;

std::vector<llm::TimedRequest>
stream(llm::TraceCategory cat, double rate_rps, std::uint32_t count,
       std::uint64_t seed)
{
    llm::ArrivalProcess arrivals(cat, rate_rps, seed);
    return arrivals.generate(count);
}

/** Exact (bitwise for doubles) equality of two serving results. */
void
expectResultsEqual(const ServingResult &a, const ServingResult &b)
{
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_EQ(a.admissions, b.admissions);
    EXPECT_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_EQ(a.p95LatencySeconds, b.p95LatencySeconds);
    EXPECT_EQ(a.meanRlp, b.meanRlp);
    EXPECT_EQ(a.peakKvUtilization, b.peakKvUtilization);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.handoffs, b.handoffs);
    EXPECT_EQ(a.evictionOrder, b.evictionOrder);
}

struct RunOutput
{
    ServingResult result;
    std::vector<RequestRecord> records;
    std::vector<HandoffRecord> handoffs;
    RunBreakdown breakdown;
};

/** Deliver @p reqs into a fresh ServingSim and run it dry. */
RunOutput
runSim(const ServingOptions &opt,
       const std::vector<llm::TimedRequest> &reqs)
{
    const PlatformConfig cfg = makePapiConfig();
    Platform papi(cfg);
    const llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;

    ServingSim sim(papi, spec, model, opt);
    for (const auto &tr : reqs)
        sim.deliver(tr);
    RunOutput out;
    while (sim.canStep()) {
        sim.step();
        if (sim.hasHandoffs()) {
            auto hs = sim.takeHandoffs();
            out.handoffs.insert(out.handoffs.end(), hs.begin(),
                                hs.end());
        }
    }
    out.result = sim.finish();
    out.records = sim.records();
    out.breakdown = sim.breakdown();
    return out;
}

/**
 * Cache disabled: a keyed agentic trace through the SoA engine must
 * stay in bitwise lockstep with the frozen pre-cache reference - the
 * prefix fields on Request are dead weight until the flag flips.
 */
TEST(ServingPrefix, CacheOffLockstepWithReferenceOnKeyedTrace)
{
    const PlatformConfig cfg = makePapiConfig();
    Platform papi(cfg);
    const llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    const auto reqs =
        stream(llm::TraceCategory::AgenticLoop, 100.0, 48, 13);

    for (std::uint32_t chunk : {0u, 64u}) {
        SCOPED_TRACE("chunk=" + std::to_string(chunk));
        ServingOptions opt;
        opt.maxRlp = 16;
        opt.prefillChunkTokens = chunk;

        ServingSim soa(papi, spec, model, opt);
        refimpl::ReferenceServingSim ref(papi, spec, model, opt, {},
                                         {}, {});
        for (const auto &tr : reqs) {
            soa.deliver(tr);
            ref.deliver(tr);
        }
        std::uint64_t steps = 0;
        while (soa.canStep() || ref.canStep()) {
            ASSERT_EQ(soa.canStep(), ref.canStep());
            if (soa.hasActive()) {
                ASSERT_EQ(soa.peekIterationSeconds(),
                          ref.peekIterationSeconds())
                    << "step " << steps;
            }
            soa.step();
            ref.step();
            ASSERT_EQ(soa.now(), ref.now()) << "step " << steps;
            ASSERT_LT(++steps, 2'000'000u);
        }
        const ServingResult r = soa.finish();
        expectResultsEqual(r, ref.finish());
        // No cache, no ledger: the counters stay zero.
        EXPECT_EQ(r.prefixLookups, 0u);
        EXPECT_EQ(r.prefixHitTokens, 0u);
        EXPECT_EQ(r.prefixMissTokens, 0u);
        EXPECT_EQ(r.prefixEvictedBytes, 0u);
    }
}

/**
 * Cache enabled over a stream with no prefix keys: byte-identical
 * to the disabled engine (the flag alone must not perturb timing).
 */
TEST(ServingPrefix, CacheOnWithoutKeysIsByteIdentical)
{
    const auto reqs =
        stream(llm::TraceCategory::GeneralQa, 100.0, 40, 21);
    ServingOptions off;
    off.maxRlp = 16;
    off.prefillChunkTokens = 96;
    ServingOptions on = off;
    on.prefixCacheEnabled = true;

    const RunOutput a = runSim(off, reqs);
    const RunOutput b = runSim(on, reqs);
    expectResultsEqual(a.result, b.result);
    EXPECT_EQ(a.breakdown.prefillSeconds, b.breakdown.prefillSeconds);
    EXPECT_EQ(b.result.prefixLookups, 0u);
    EXPECT_EQ(b.result.prefixHits, 0u);
}

/**
 * The token ledger: every admitted prompt token is accounted as
 * either hit (prefill cost skipped) or miss (prefilled the long
 * way), per record and per run, in both prefill paths.
 */
TEST(ServingPrefix, HitPlusMissEqualsPromptTokens)
{
    // Slow arrivals: a session's next turn must land after the
    // previous one retired, or there is nothing in cache to hit.
    const auto reqs =
        stream(llm::TraceCategory::AgenticLoop, 2.0, 56, 17);
    std::map<std::uint64_t, std::uint32_t> input_len;
    for (const auto &tr : reqs)
        input_len[tr.request.id] = tr.request.inputLen;

    for (std::uint32_t chunk : {0u, 64u}) {
        SCOPED_TRACE("chunk=" + std::to_string(chunk));
        ServingOptions opt;
        opt.maxRlp = 16;
        opt.prefillChunkTokens = chunk;
        opt.prefixCacheEnabled = true;

        const RunOutput out = runSim(opt, reqs);
        ASSERT_EQ(out.records.size(), reqs.size());
        std::uint64_t hit = 0, miss = 0, prompt = 0;
        for (const auto &rec : out.records) {
            EXPECT_EQ(rec.prefixHitTokens + rec.prefixMissTokens,
                      input_len.at(rec.id))
                << "request " << rec.id;
            hit += rec.prefixHitTokens;
            miss += rec.prefixMissTokens;
            prompt += input_len.at(rec.id);
        }
        EXPECT_EQ(out.result.prefixHitTokens, hit);
        EXPECT_EQ(out.result.prefixMissTokens, miss);
        EXPECT_EQ(hit + miss, prompt);
        // The agentic trace reuses each turn's context: the cache
        // must actually fire, and hits must cut prefill time.
        EXPECT_GT(out.result.prefixHits, 0u);
        EXPECT_GT(out.result.prefixHitTokens, 0u);
        EXPECT_LT(out.result.prefixHits, out.result.prefixLookups + 1);

        ServingOptions off = opt;
        off.prefixCacheEnabled = false;
        const RunOutput base = runSim(off, reqs);
        EXPECT_LT(out.breakdown.prefillSeconds,
                  base.breakdown.prefillSeconds);
    }
}

/**
 * Disaggregated prefill pool: a handoff's transfer footprint drops
 * by exactly the whole blocks served from cache, while the logical
 * context (kvTokens, what the decode pool must reserve) is
 * unchanged request by request.
 */
TEST(ServingPrefix, HandoffShrinksByHitBlocks)
{
    const auto reqs =
        stream(llm::TraceCategory::AgenticLoop, 150.0, 48, 29);
    ServingOptions opt;
    opt.maxRlp = 16;
    opt.role = ServingRole::Prefill;
    opt.prefillChunkTokens = 128;

    const RunOutput base = runSim(opt, reqs);
    ServingOptions on = opt;
    on.prefixCacheEnabled = true;
    const RunOutput cached = runSim(on, reqs);

    ASSERT_EQ(base.handoffs.size(), reqs.size());
    ASSERT_EQ(cached.handoffs.size(), reqs.size());
    EXPECT_GT(cached.result.prefixHitTokens, 0u);

    const llm::ModelConfig model = llm::llama65b();
    llm::KvCacheManager geom(model, 1, 1ULL << 32, 16);
    std::map<std::uint64_t, const HandoffRecord *> by_id;
    for (const auto &h : base.handoffs)
        by_id[h.request.request.id] = &h;
    std::uint64_t shrunk = 0;
    for (const auto &h : cached.handoffs) {
        const HandoffRecord &b = *by_id.at(h.request.request.id);
        // Same materialized context either way...
        EXPECT_EQ(h.kvTokens, b.kvTokens);
        // ...but cached whole blocks never cross the fabric.
        EXPECT_LE(h.kvBlocks, b.kvBlocks);
        EXPECT_EQ(b.kvBytes - h.kvBytes,
                  (b.kvBlocks - h.kvBlocks) * geom.blockBytes());
        if (h.kvBlocks < b.kvBlocks)
            ++shrunk;
    }
    EXPECT_GT(shrunk, 0u) << "no handoff was served from cache";
}

/**
 * Evict-before-preempt: under KV pressure the engine reclaims
 * cached prefix blocks (visible as prefixEvictedBytes) and the run
 * completes deterministically.
 */
TEST(ServingPrefix, PressureEvictsCacheDeterministically)
{
    const PlatformConfig cfg = makePapiConfig();
    const llm::ModelConfig model = llm::llama65b();
    const auto reqs =
        stream(llm::TraceCategory::AgenticLoop, 300.0, 40, 31);

    ServingOptions opt;
    opt.maxRlp = 12;
    opt.prefixCacheEnabled = true;
    opt.preemptOnKvPressure = true;
    opt.preemptPolicy = KvPreemptPolicy::Recompute;
    opt.kvCapacityOverrideBytes = llm::kvPoolBytesPerDevice(
        model, 4096, cfg.numAttnDevices);

    const RunOutput a = runSim(opt, reqs);
    EXPECT_EQ(a.records.size(), reqs.size());
    EXPECT_GT(a.result.prefixEvictedBytes, 0u)
        << "pool never pressured the cache";
    // Fixed seed, fixed stream: bitwise reproducible.
    const RunOutput b = runSim(opt, reqs);
    expectResultsEqual(a.result, b.result);
    EXPECT_EQ(a.result.prefixEvictedBytes,
              b.result.prefixEvictedBytes);
}

} // namespace
