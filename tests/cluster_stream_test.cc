/**
 * @file
 * Streaming million-request machinery at cluster scope:
 *
 *  - ArrivalProcess::next() is byte-for-byte the vector generate()
 *    for every trace category (the pull-based form is the same RNG
 *    stream).
 *  - ClusterEngine::runStream() over a generator equals run() over
 *    the materialized vector, bit for bit.
 *  - recordCapacity below the overflow point is byte-identical to
 *    the unbounded run; past it, exact counters and P-square
 *    percentiles take over (statsTruncated) while request/token
 *    conservation still holds exactly.
 *  - Cache-hit-aware routing concentrates session turns where their
 *    prefix lives: more hit tokens than round-robin spraying.
 *  - assignSessions' turns_per_session mode deals sessions
 *    round-robin with no randomness; the default mode stays pinned.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster_engine.hh"
#include "core/serving_engine.hh"
#include "llm/arrival.hh"

namespace {

using namespace papi::cluster;
namespace llm = papi::llm;
namespace core = papi::core;

void
expectPercentilesEqual(const LatencyPercentiles &a,
                       const LatencyPercentiles &b)
{
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p95, b.p95);
    EXPECT_EQ(a.p99, b.p99);
}

/** Bitwise equality of the aggregate cluster outcome. */
void
expectClusterEqual(const ClusterResult &a, const ClusterResult &b)
{
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.requestsServed, b.requestsServed);
    EXPECT_EQ(a.requestsOffered, b.requestsOffered);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    expectPercentilesEqual(a.ttft, b.ttft);
    expectPercentilesEqual(a.tpot, b.tpot);
    expectPercentilesEqual(a.latency, b.latency);
    expectPercentilesEqual(a.queueing, b.queueing);
    EXPECT_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_EQ(a.meanQueueingSeconds, b.meanQueueingSeconds);
    EXPECT_EQ(a.prefixLookups, b.prefixLookups);
    EXPECT_EQ(a.prefixHitTokens, b.prefixHitTokens);
    EXPECT_EQ(a.statsTruncated, b.statsTruncated);
    EXPECT_EQ(a.records.size(), b.records.size());
}

TEST(ArrivalStream, NextMatchesGenerateForEveryCategory)
{
    for (llm::TraceCategory cat :
         {llm::TraceCategory::GeneralQa,
          llm::TraceCategory::AgenticLoop,
          llm::TraceCategory::LongContextRag,
          llm::TraceCategory::SharedQa}) {
        SCOPED_TRACE(static_cast<int>(cat));
        llm::ArrivalProcess vec_form(cat, 80.0, 123);
        llm::ArrivalProcess pull_form(cat, 80.0, 123);
        const auto vec = vec_form.generate(64);
        for (std::size_t i = 0; i < vec.size(); ++i) {
            const llm::TimedRequest t = pull_form.next();
            EXPECT_EQ(t.arrivalSeconds, vec[i].arrivalSeconds);
            EXPECT_EQ(t.sessionId, vec[i].sessionId);
            EXPECT_EQ(t.request.id, vec[i].request.id);
            EXPECT_EQ(t.request.inputLen, vec[i].request.inputLen);
            EXPECT_EQ(t.request.outputLen, vec[i].request.outputLen);
            EXPECT_EQ(t.request.prefixKey, vec[i].request.prefixKey);
            EXPECT_EQ(t.request.prefixTokens,
                      vec[i].request.prefixTokens);
            EXPECT_EQ(t.request.insertKey, vec[i].request.insertKey);
            EXPECT_EQ(t.request.insertTokens,
                      vec[i].request.insertTokens);
        }
        // Arrival times are non-decreasing by construction.
        llm::TimedRequest prev = pull_form.next();
        for (int i = 0; i < 16; ++i) {
            const llm::TimedRequest t = pull_form.next();
            EXPECT_GE(t.arrivalSeconds, prev.arrivalSeconds);
            prev = t;
        }
    }
}

TEST(ClusterStream, RunStreamMatchesRunBitwise)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;

    ClusterOptions opt;
    opt.numPlatforms = 4;
    opt.serving.maxRlp = 16;
    opt.serving.prefixCacheEnabled = true;
    opt.policy = RouterPolicy::SessionAffinity;

    llm::ArrivalProcess vec_form(llm::TraceCategory::AgenticLoop,
                                 120.0, 77);
    const auto reqs = vec_form.generate(96);
    ClusterResult from_vec =
        ClusterEngine(cfg, opt).run(reqs, spec, model);

    llm::ArrivalProcess pull_form(llm::TraceCategory::AgenticLoop,
                                  120.0, 77);
    ClusterResult from_gen = ClusterEngine(cfg, opt)
                                 .runStream(pull_form, 96, spec,
                                            model);
    expectClusterEqual(from_vec, from_gen);
    EXPECT_EQ(from_gen.requestsServed, 96u);
    EXPECT_FALSE(from_gen.statsTruncated);
}

TEST(ClusterStream, RecordCapacityBelowOverflowIsByteIdentical)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    llm::ArrivalProcess arrivals(llm::TraceCategory::GeneralQa,
                                 100.0, 55);
    const auto reqs = arrivals.generate(48);

    ClusterOptions opt;
    opt.numPlatforms = 2;
    opt.serving.maxRlp = 16;
    ClusterResult unbounded =
        ClusterEngine(cfg, opt).run(reqs, spec, model);

    // A cap no replica reaches changes nothing, bit for bit.
    opt.recordCapacity = 4096;
    ClusterResult capped =
        ClusterEngine(cfg, opt).run(reqs, spec, model);
    expectClusterEqual(unbounded, capped);
    EXPECT_FALSE(capped.statsTruncated);
}

TEST(ClusterStream, TruncatedStatsConserveWorkAndApproximate)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    llm::ArrivalProcess arrivals(llm::TraceCategory::GeneralQa,
                                 100.0, 55);
    const auto reqs = arrivals.generate(128);

    ClusterOptions opt;
    opt.numPlatforms = 2;
    opt.serving.maxRlp = 16;
    ClusterResult exact =
        ClusterEngine(cfg, opt).run(reqs, spec, model);

    opt.recordCapacity = 8;
    ClusterResult trunc =
        ClusterEngine(cfg, opt).run(reqs, spec, model);

    EXPECT_TRUE(trunc.statsTruncated);
    // Conservation is exact even past the record cap.
    EXPECT_EQ(trunc.requestsServed, 128u);
    EXPECT_EQ(trunc.requestsOffered, 128u);
    EXPECT_EQ(trunc.tokensGenerated, exact.tokensGenerated);
    EXPECT_EQ(trunc.makespanSeconds, exact.makespanSeconds);
    EXPECT_EQ(trunc.energyJoules, exact.energyJoules);
    // Records hold only each replica's capped prefix.
    EXPECT_LE(trunc.records.size(), 2u * 8u);
    // Means come from exact streaming sums: equal up to summation
    // order; percentiles come from P-square: close, finite, ordered.
    EXPECT_NEAR(trunc.meanLatencySeconds, exact.meanLatencySeconds,
                1e-9 * std::abs(exact.meanLatencySeconds));
    EXPECT_TRUE(std::isfinite(trunc.latency.p99));
    EXPECT_LE(trunc.latency.p50, trunc.latency.p99);
    EXPECT_NEAR(trunc.latency.p50, exact.latency.p50,
                0.25 * exact.latency.p50 + 1e-12);
    // The simulation itself is identical; only reporting is capped.
    ASSERT_EQ(trunc.perGroup.size(), exact.perGroup.size());
    for (std::size_t g = 0; g < exact.perGroup.size(); ++g) {
        EXPECT_EQ(trunc.perGroup[g].makespanSeconds,
                  exact.perGroup[g].makespanSeconds);
        EXPECT_EQ(trunc.perGroup[g].tokensGenerated,
                  exact.perGroup[g].tokensGenerated);
    }
}

TEST(ClusterStream, CacheHitAwareRoutingBeatsRoundRobinOnHits)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    llm::ArrivalProcess arrivals(llm::TraceCategory::AgenticLoop,
                                 150.0, 91);
    const auto reqs = arrivals.generate(112);

    auto run_policy = [&](RouterPolicy policy) {
        ClusterOptions opt;
        opt.numPlatforms = 4;
        opt.policy = policy;
        opt.serving.maxRlp = 16;
        opt.serving.prefixCacheEnabled = true;
        return ClusterEngine(cfg, opt).run(reqs, spec, model);
    };

    const ClusterResult rr = run_policy(RouterPolicy::RoundRobin);
    const ClusterResult cha =
        run_policy(RouterPolicy::CacheHitAware);

    EXPECT_EQ(cha.requestsServed, reqs.size());
    EXPECT_GT(cha.prefixLookups, 0u);
    EXPECT_GT(cha.prefixHits, 0u);
    // 7 active sessions across 4 replicas: round-robin sprays the
    // turns of one session across replicas, so probing for the
    // cached prefix must recover strictly more hit tokens.
    EXPECT_GT(cha.prefixHitTokens, rr.prefixHitTokens);
    // The ledger survives aggregation across replicas.
    EXPECT_EQ(cha.prefixHitTokens + cha.prefixMissTokens,
              rr.prefixHitTokens + rr.prefixMissTokens);
    // Deterministic: re-running reproduces the routing exactly.
    const ClusterResult again =
        run_policy(RouterPolicy::CacheHitAware);
    expectClusterEqual(cha, again);
    EXPECT_EQ(cha.prefixHits, again.prefixHits);
}

TEST(AssignSessions, TurnsModeDealsRoundRobinDeterministically)
{
    llm::ArrivalProcess arrivals(llm::TraceCategory::GeneralQa,
                                 50.0, 3);
    auto reqs = arrivals.generate(12);
    llm::assignSessions(reqs, /*num_sessions=*/3, /*seed=*/9,
                        /*turns_per_session=*/4);
    // 3 live slots, 4 turns each, dealt 1,2,3,1,2,3,...: every
    // session is exactly 4 interleaved turns, no randomness.
    const std::uint64_t expect[12] = {1, 2, 3, 1, 2, 3,
                                      1, 2, 3, 1, 2, 3};
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(reqs[i].sessionId, expect[i]) << "i=" << i;

    // Retired slots reseed with fresh ids (4, 5, ...).
    auto longer = arrivals.generate(18);
    llm::assignSessions(longer, 3, 9, 4);
    EXPECT_EQ(longer[12].sessionId, 4u);
    EXPECT_EQ(longer[13].sessionId, 5u);
    EXPECT_EQ(longer[14].sessionId, 6u);
    EXPECT_EQ(longer[15].sessionId, 4u);

    // Default mode (turns_per_session == 0): random attribution,
    // pinned to the seed, ids in [1, num_sessions].
    auto a = arrivals.generate(32);
    auto b = a;
    llm::assignSessions(a, 5, 17);
    llm::assignSessions(b, 5, 17);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].sessionId, b[i].sessionId);
        EXPECT_GE(a[i].sessionId, 1u);
        EXPECT_LE(a[i].sessionId, 5u);
    }
}

} // namespace
