/**
 * @file
 * Tests for disaggregated prefill/decode serving: KV-migration
 * conservation across the handoff, transfer-byte accounting against
 * the KV block ledger, byte-determinism of disaggregated runs,
 * configuration fatals, and the colocated path staying untouched.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/cluster_engine.hh"
#include "core/serving_engine.hh"
#include "llm/arrival.hh"
#include "llm/kv_cache.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace {

using namespace papi::cluster;
namespace core = papi::core;
namespace llm = papi::llm;
using papi::sim::FatalError;

std::vector<llm::TimedRequest>
stream(double rate_rps, std::uint32_t count, std::uint64_t seed = 21)
{
    llm::ArrivalProcess arrivals(llm::TraceCategory::PrefillHeavy,
                                 rate_rps, seed);
    return arrivals.generate(count);
}

std::uint64_t
totalOutputTokens(const std::vector<llm::TimedRequest> &reqs)
{
    std::uint64_t t = 0;
    for (const auto &r : reqs)
        t += r.request.outputLen;
    return t;
}

ClusterOptions
disaggOptions(std::uint32_t prefill, std::uint32_t decode)
{
    ClusterOptions opt;
    opt.serving.maxRlp = 16;
    opt.serving.alpha = 24.0;
    opt.disagg.enabled = true;
    opt.disagg.prefillReplicas = prefill;
    opt.disagg.decodeReplicas = decode;
    return opt;
}

TEST(Disaggregation, ConservesTokensAcrossHandoff)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(60.0, 48);

    ClusterOptions opt = disaggOptions(2, 2);
    ClusterEngine engine(cfg, opt);
    EXPECT_EQ(engine.numGroups(), 4u);
    ClusterResult r = engine.run(reqs, spec, model);

    // Every request decodes exactly once, on the decode pool; the
    // prefill pool generates no output tokens but processes every
    // prompt token and migrates every request exactly once.
    EXPECT_EQ(r.requestsServed, reqs.size());
    EXPECT_EQ(r.tokensGenerated, totalOutputTokens(reqs));
    EXPECT_EQ(r.kvTransfers, reqs.size());
    ASSERT_EQ(r.perGroup.size(), 4u);
    std::uint64_t prompt_tokens = 0;
    for (const auto &tr : reqs)
        prompt_tokens += tr.request.inputLen;
    std::uint64_t handoffs = 0, handoff_tokens = 0;
    for (std::uint32_t g = 0; g < 2; ++g) {
        EXPECT_EQ(r.perGroup[g].tokensGenerated, 0u) << "g=" << g;
        handoffs += r.perGroup[g].handoffs;
        handoff_tokens += r.perGroup[g].prefillHandoffTokens;
    }
    for (std::uint32_t g = 2; g < 4; ++g) {
        EXPECT_EQ(r.perGroup[g].handoffs, 0u) << "g=" << g;
        EXPECT_GT(r.perGroup[g].tokensGenerated, 0u) << "g=" << g;
    }
    EXPECT_EQ(handoffs, reqs.size());
    EXPECT_EQ(handoff_tokens, prompt_tokens);
    EXPECT_EQ(r.prefillGroups, 2u);
    EXPECT_EQ(r.decodeGroups, 2u);
    ASSERT_EQ(r.groupRoles.size(), 4u);
    EXPECT_EQ(r.groupRoles[0], "prefill");
    EXPECT_EQ(r.groupRoles[3], "decode");

    // End-to-end records span the whole pipeline: first token after
    // the original arrival, prefill + transfer + decode admission.
    for (const auto &rec : r.records) {
        EXPECT_GE(rec.ttftSeconds(), 0.0);
        EXPECT_GE(rec.finishSeconds, rec.firstTokenSeconds);
    }
    EXPECT_GT(r.kvTransferSeconds, 0.0);
    EXPECT_GT(r.kvTransferJoules, 0.0);

    // Stat export survives pools with zero completed requests (the
    // prefill replicas) and carries the migration counters.
    papi::sim::stats::StatGroup g("disagg");
    r.populateStats(g);
    EXPECT_NE(g.find("kv_transfers"), nullptr);
    EXPECT_NE(g.find("kv_transfer_bytes"), nullptr);
}

TEST(Disaggregation, TransferBytesMatchKvBlockLedger)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(60.0, 32, 5);

    ClusterOptions opt = disaggOptions(1, 1);
    ClusterResult r =
        ClusterEngine(cfg, opt).run(reqs, spec, model);

    // The migration moves exactly the KV blocks the prompt
    // materialized: per request, ceil(inputLen / blockTokens)
    // blocks of blockBytes() each, straight from the allocator's
    // own arithmetic.
    llm::KvCacheManager ledger(
        model, cfg.numAttnDevices,
        cfg.attnDeviceConfig.capacityBytes());
    std::uint64_t expected_bytes = 0;
    for (const auto &tr : reqs)
        expected_bytes +=
            ledger.blocksForTokens(tr.request.inputLen) *
            ledger.blockBytes();
    EXPECT_EQ(r.kvTransfers, reqs.size());
    EXPECT_EQ(r.kvTransferBytes, expected_bytes);

    // Link-time accounting: the summed fabric occupancy is at least
    // bytes / bandwidth plus one latency+overhead per transfer.
    const auto &link = opt.disagg.transferLink;
    double floor_seconds =
        static_cast<double>(expected_bytes) /
            link.bandwidthBytesPerSec +
        static_cast<double>(reqs.size()) *
            (link.latencySeconds + link.messageOverheadSeconds);
    EXPECT_NEAR(r.kvTransferSeconds, floor_seconds,
                1e-9 * floor_seconds);
}

TEST(Disaggregation, RunsAreByteDeterministic)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    spec.length = 2;
    auto reqs = stream(80.0, 40, 13);

    ClusterOptions opt = disaggOptions(2, 2);
    opt.serving.prefillChunkTokens = 128; // chunked prefill pool
    ClusterResult a = ClusterEngine(cfg, opt).run(reqs, spec, model);
    ClusterResult b = ClusterEngine(cfg, opt).run(reqs, spec, model);

    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_EQ(a.kvTransfers, b.kvTransfers);
    EXPECT_EQ(a.kvTransferBytes, b.kvTransferBytes);
    EXPECT_EQ(a.kvTransferSeconds, b.kvTransferSeconds);
    EXPECT_EQ(a.ttft.p99, b.ttft.p99);
    EXPECT_EQ(a.tpot.p99, b.tpot.p99);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].id, b.records[i].id) << i;
        EXPECT_EQ(a.records[i].finishSeconds,
                  b.records[i].finishSeconds)
            << i;
    }
    // Chunked prefill conserves prompt work across the handoff too.
    EXPECT_EQ(a.kvTransfers, reqs.size());
    EXPECT_EQ(a.tokensGenerated, totalOutputTokens(reqs));
}

TEST(Disaggregation, LeastOutstandingSpreadsNonChunkedPrefillPool)
{
    // Regression: a non-chunked prefill replica retires each
    // completed prompt synchronously inside admit(), so it reports
    // outstanding == 0 even while its clock is mid-prefill; without
    // the busy-until tie-break, least-outstanding routing collapses
    // the whole pool onto replica 0.
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(60.0, 48, 17);

    ClusterOptions opt = disaggOptions(2, 2);
    opt.disagg.prefillPolicy = RouterPolicy::LeastOutstanding;
    ClusterResult r =
        ClusterEngine(cfg, opt).run(reqs, spec, model);
    EXPECT_EQ(r.tokensGenerated, totalOutputTokens(reqs));
    // Both prefill replicas carry a meaningful share of the prompts
    // (the collapse put 100% of them on replica 0).
    EXPECT_GT(r.perGroup[0].handoffs, 0u);
    EXPECT_GT(r.perGroup[1].handoffs, 0u);
    EXPECT_GE(std::min(r.perGroup[0].handoffs,
                       r.perGroup[1].handoffs) *
                  4,
              reqs.size());
}

TEST(Disaggregation, WorksWithKvPreemptionOnTheDecodePool)
{
    // Forced KV pressure on the decode pool: migrated-in requests
    // still conserve tokens under evict/resume.
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    llm::ArrivalProcess arrivals(
        llm::TraceCategory::CreativeWriting, 120.0, 11);
    auto reqs = arrivals.generate(24);

    ClusterOptions opt = disaggOptions(1, 1);
    opt.serving.preemptOnKvPressure = true;
    opt.serving.kvCapacityOverrideBytes = llm::kvPoolBytesPerDevice(
        model, 4096, cfg.numAttnDevices);
    ClusterResult r =
        ClusterEngine(cfg, opt).run(reqs, spec, model);
    EXPECT_EQ(r.requestsServed, reqs.size());
    EXPECT_EQ(r.tokensGenerated, totalOutputTokens(reqs));
    EXPECT_EQ(r.kvTransfers, reqs.size());
    EXPECT_GT(r.preemptions, 0u);
    EXPECT_EQ(r.preemptions, r.resumes);
}

TEST(Disaggregation, ConfigurationFatals)
{
    core::PlatformConfig cfg = core::makePapiConfig();

    ClusterOptions zero = disaggOptions(0, 2);
    EXPECT_THROW(ClusterEngine(cfg, zero), FatalError);

    ClusterOptions batch = disaggOptions(1, 1);
    batch.serving.admission = core::AdmissionPolicy::BatchLevel;
    EXPECT_THROW(ClusterEngine(cfg, batch), FatalError);

    // Heterogeneous pools need one config per replica.
    ClusterOptions hetero = disaggOptions(1, 2);
    EXPECT_THROW(
        ClusterEngine(std::vector<core::PlatformConfig>{cfg, cfg},
                      hetero),
        FatalError);

    // A prefill-role sim rejects static-batch mode and preemption.
    core::Platform platform(cfg);
    llm::ModelConfig model = llm::llama65b();
    core::ServingOptions popt;
    popt.role = core::ServingRole::Prefill;
    popt.preemptOnKvPressure = true;
    EXPECT_THROW(core::ServingSim(platform, {}, model, popt),
                 FatalError);
}

TEST(Disaggregation, ColocatedPathStaysByteIdentical)
{
    // With disaggregation off (the default), the cluster must
    // reproduce the bare single-platform engine bit for bit - the
    // pre-existing contract, re-pinned here against the new config
    // surface (a default-constructed DisaggConfig present in the
    // options must change nothing).
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(60.0, 32, 9);

    core::ServingOptions sopt;
    sopt.maxRlp = 16;
    sopt.alpha = 24.0;
    core::Platform bare(cfg);
    core::ServingResult single =
        core::ServingEngine(bare).run(reqs, spec, model, sopt);

    ClusterOptions copt;
    copt.numPlatforms = 1;
    copt.serving = sopt;
    ASSERT_FALSE(copt.disagg.enabled);
    ClusterResult r = ClusterEngine(cfg, copt).run(reqs, spec, model);
    ASSERT_EQ(r.perGroup.size(), 1u);
    EXPECT_EQ(r.perGroup[0].makespanSeconds, single.makespanSeconds);
    EXPECT_EQ(r.perGroup[0].energyJoules, single.energyJoules);
    EXPECT_EQ(r.perGroup[0].iterations, single.iterations);
    EXPECT_EQ(r.perGroup[0].tokensGenerated, single.tokensGenerated);
    EXPECT_EQ(r.kvTransfers, 0u);
    EXPECT_EQ(r.prefillGroups, 0u);
    ASSERT_EQ(r.groupRoles.size(), 1u);
    EXPECT_EQ(r.groupRoles[0], "colocated");
}

} // namespace
