/**
 * @file
 * Tests for cluster-scale serving: the N=1 bit-identity contract
 * against the single-platform ServingEngine, tensor-parallel cost
 * modelling, metric aggregation, and configuration validation.
 */

#include <gtest/gtest.h>

#include "cluster/cluster_engine.hh"
#include "cluster/tensor_parallel.hh"
#include "core/serving_engine.hh"
#include "llm/arrival.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace {

using namespace papi::cluster;
namespace llm = papi::llm;
namespace core = papi::core;
using papi::sim::FatalError;

std::vector<llm::TimedRequest>
stream(double rate_rps, std::uint32_t count, std::uint64_t seed = 5)
{
    llm::ArrivalProcess arrivals(llm::TraceCategory::GeneralQa,
                                 rate_rps, seed);
    return arrivals.generate(count);
}

/** Every ServingResult field, compared exactly (no tolerance). */
void
expectByteIdentical(const core::ServingResult &a,
                    const core::ServingResult &b)
{
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_EQ(a.admissions, b.admissions);
    EXPECT_EQ(a.reschedules, b.reschedules);
    EXPECT_EQ(a.reschedulesToGpu, b.reschedulesToGpu);
    EXPECT_EQ(a.fcOnGpuIterations, b.fcOnGpuIterations);
    EXPECT_EQ(a.fcOnPimIterations, b.fcOnPimIterations);
    EXPECT_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_EQ(a.p95LatencySeconds, b.p95LatencySeconds);
    EXPECT_EQ(a.meanRlp, b.meanRlp);
    EXPECT_EQ(a.peakKvUtilization, b.peakKvUtilization);
}

/**
 * The scale-out layer's foundational contract: one platform behind
 * the router is the same simulation as the bare ServingEngine, down
 * to the last bit of every metric, for every routing policy.
 */
TEST(ClusterEngine, N1ByteIdenticalToServingEngine)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    spec.length = 2;
    auto reqs = stream(40.0, 48);

    core::ServingOptions sopt;
    sopt.maxRlp = 16;
    sopt.alpha = 24.0;
    sopt.seed = 7;
    core::Platform bare(cfg);
    core::ServingResult single =
        core::ServingEngine(bare).run(reqs, spec, model, sopt);

    for (RouterPolicy policy : {RouterPolicy::RoundRobin,
                                RouterPolicy::LeastOutstanding,
                                RouterPolicy::SessionAffinity}) {
        ClusterOptions copt;
        copt.numPlatforms = 1;
        copt.policy = policy;
        copt.serving = sopt;
        ClusterResult r =
            ClusterEngine(cfg, copt).run(reqs, spec, model);
        ASSERT_EQ(r.perGroup.size(), 1u);
        expectByteIdentical(r.perGroup[0], single);
        EXPECT_EQ(r.makespanSeconds, single.makespanSeconds);
        EXPECT_EQ(r.tokensGenerated, single.tokensGenerated);
        EXPECT_EQ(r.energyJoules, single.energyJoules);
    }
}

TEST(ClusterEngine, EveryRequestServedOnceAcrossPlatforms)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(80.0, 64);
    std::uint64_t expected_tokens = 0;
    for (const auto &t : reqs)
        expected_tokens += t.request.outputLen;

    for (std::uint32_t n : {2u, 4u, 8u}) {
        ClusterOptions opt;
        opt.numPlatforms = n;
        opt.policy = RouterPolicy::LeastOutstanding;
        opt.serving.maxRlp = 16;
        ClusterResult r =
            ClusterEngine(cfg, opt).run(reqs, spec, model);
        EXPECT_EQ(r.requestsServed, 64u) << "n=" << n;
        EXPECT_EQ(r.tokensGenerated, expected_tokens) << "n=" << n;
        EXPECT_EQ(r.numGroups, n);
        // Record invariants: admission after arrival, first token
        // after admission, finish after first token.
        for (const auto &rec : r.records) {
            EXPECT_GE(rec.queueingSeconds(), 0.0);
            EXPECT_GE(rec.ttftSeconds(), 0.0);
            EXPECT_GE(rec.finishSeconds, rec.firstTokenSeconds);
        }
    }
}

TEST(ClusterEngine, MorePlatformsCutLatencyUnderLoad)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(100.0, 64);

    ClusterOptions opt;
    opt.policy = RouterPolicy::LeastOutstanding;
    opt.serving.maxRlp = 8;
    opt.numPlatforms = 1;
    ClusterResult one = ClusterEngine(cfg, opt).run(reqs, spec, model);
    opt.numPlatforms = 4;
    ClusterResult four =
        ClusterEngine(cfg, opt).run(reqs, spec, model);

    EXPECT_LT(four.latency.p99, one.latency.p99);
    EXPECT_LT(four.meanQueueingSeconds, one.meanQueueingSeconds);
    EXPECT_LT(four.makespanSeconds, one.makespanSeconds);
}

TEST(TensorParallel, AllReduceCostShape)
{
    TensorParallelModel tp;
    tp.degree = 1;
    EXPECT_DOUBLE_EQ(tp.allReduceSeconds(1 << 20), 0.0);
    EXPECT_DOUBLE_EQ(tp.allReduceJoules(1 << 20), 0.0);

    tp.degree = 4;
    double small = tp.allReduceSeconds(1 << 10);
    double large = tp.allReduceSeconds(1 << 24);
    EXPECT_GT(small, 0.0);
    EXPECT_GT(large, small); // bandwidth term grows with bytes
    // Latency floor: more ranks = more ring steps even at 0 bytes.
    tp.degree = 8;
    EXPECT_GT(tp.allReduceSeconds(0), 0.0);

    // Degree 1 yields the trivial cost model (bit-identity path).
    tp.degree = 1;
    EXPECT_TRUE(
        tp.iterationCostModel(papi::llm::llama65b()).trivial());
    tp.degree = 2;
    EXPECT_FALSE(
        tp.iterationCostModel(papi::llm::llama65b()).trivial());
}

TEST(TensorParallel, ShardingTradesComputeForFabric)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(30.0, 32);

    // 2 platforms as two independent replicas vs one TP pair: the
    // TP pair halves per-iteration kernel time, so per-token decode
    // intervals (TPOT) must drop despite the all-reduce tax.
    ClusterOptions opt;
    opt.numPlatforms = 2;
    opt.serving.maxRlp = 16;
    opt.tensorParallelDegree = 1;
    ClusterResult replicas =
        ClusterEngine(cfg, opt).run(reqs, spec, model);
    opt.tensorParallelDegree = 2;
    ClusterResult tp_pair =
        ClusterEngine(cfg, opt).run(reqs, spec, model);

    EXPECT_EQ(tp_pair.numGroups, 1u);
    EXPECT_EQ(replicas.numGroups, 2u);
    EXPECT_LT(tp_pair.tpot.p50, replicas.tpot.p50);
    // The all-reduce is not free: energy includes a fabric term.
    EXPECT_GT(tp_pair.energyJoules, 0.0);
}

TEST(ClusterEngine, StatsAggregationPopulatesGroup)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(60.0, 32);

    ClusterOptions opt;
    opt.numPlatforms = 2;
    ClusterResult r = ClusterEngine(cfg, opt).run(reqs, spec, model);

    papi::sim::stats::StatGroup g("cluster");
    r.populateStats(g);
    ASSERT_NE(g.find("ttft_p99_seconds"), nullptr);
    ASSERT_NE(g.find("tpot_p50_seconds"), nullptr);
    ASSERT_NE(g.find("queueing_mean_seconds"), nullptr);
    ASSERT_NE(g.find("group_utilization"), nullptr);
    ASSERT_NE(g.find("ttft_histogram"), nullptr);
    auto *tokens = dynamic_cast<const papi::sim::stats::Scalar *>(
        g.find("tokens_generated"));
    ASSERT_NE(tokens, nullptr);
    EXPECT_DOUBLE_EQ(tokens->value(),
                     static_cast<double>(r.tokensGenerated));
    // Percentile ordering sanity.
    EXPECT_LE(r.ttft.p50, r.ttft.p95);
    EXPECT_LE(r.ttft.p95, r.ttft.p99);
    EXPECT_LE(r.tpot.p50, r.tpot.p99);
}

TEST(ClusterEngine, InvalidConfigurationsAreFatal)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;

    ClusterOptions opt;
    opt.numPlatforms = 0;
    EXPECT_THROW(ClusterEngine(cfg, opt), FatalError);

    opt.numPlatforms = 4;
    opt.tensorParallelDegree = 3; // does not divide 4
    EXPECT_THROW(ClusterEngine(cfg, opt), FatalError);

    opt.tensorParallelDegree = 1;
    ClusterEngine ok(cfg, opt);
    EXPECT_THROW(ok.run({}, spec, model), FatalError);

    auto reqs = stream(10.0, 4);
    std::swap(reqs[0], reqs[3]); // unsorted
    EXPECT_THROW(ok.run(reqs, spec, model), FatalError);

    EXPECT_THROW(ClusterEngine(std::vector<core::PlatformConfig>{},
                               opt),
                 FatalError);
}

/**
 * Batch-level admission under the cluster - a construction-time
 * error before the event-driven timeline (the peek-and-step loop
 * had no lookahead over undelivered arrivals). Now the admission
 * deadline is just another event: the mode must run at every
 * cluster width and conserve requests and tokens exactly.
 */
TEST(ClusterEngine, BatchLevelAdmissionRunsAndConservesRequests)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(120.0, 48);
    std::uint64_t expected_tokens = 0;
    for (const auto &t : reqs)
        expected_tokens += t.request.outputLen;

    for (std::uint32_t n : {1u, 2u, 4u}) {
        ClusterOptions opt;
        opt.numPlatforms = n;
        opt.policy = RouterPolicy::LeastOutstanding;
        opt.serving.admission = core::AdmissionPolicy::BatchLevel;
        opt.serving.maxRlp = 8;
        opt.serving.batchTimeoutSeconds = 0.05;
        ClusterResult r =
            ClusterEngine(cfg, opt).run(reqs, spec, model);
        EXPECT_EQ(r.requestsServed, reqs.size()) << "n=" << n;
        EXPECT_EQ(r.tokensGenerated, expected_tokens) << "n=" << n;
        // Batch-level semantics survive the fan-out: admissions
        // only refill an empty batch, so the mean RLP stays within
        // the cap, and record invariants hold.
        for (const auto &g : r.perGroup)
            EXPECT_LE(g.meanRlp, 8.0 + 1e-9) << "n=" << n;
        for (const auto &rec : r.records) {
            EXPECT_GE(rec.queueingSeconds(), 0.0);
            EXPECT_GE(rec.ttftSeconds(), 0.0);
            EXPECT_GE(rec.finishSeconds, rec.firstTokenSeconds);
        }
        // Determinism: an identical engine reproduces the run.
        ClusterResult r2 =
            ClusterEngine(cfg, opt).run(reqs, spec, model);
        EXPECT_EQ(r.makespanSeconds, r2.makespanSeconds);
        EXPECT_EQ(r.energyJoules, r2.energyJoules);
    }
}

/**
 * Heterogeneous replica mixes: dynamic PAPI replicas next to an
 * always-GPU baseline behind one router. The registry refactor
 * removed the shared policy enum, so each replica carries its own
 * dispatch policy; the cluster must run deterministically end to end
 * and report per-replica identity.
 */
TEST(ClusterEngine, MixedPlatformsRunDeterministically)
{
    std::vector<core::PlatformConfig> groups = {
        core::makePapiConfig(), core::makeA100AttAccConfig()};
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    ClusterOptions opt;
    opt.policy = RouterPolicy::RoundRobin;
    opt.serving.maxRlp = 16;
    opt.serving.alpha = 24.0;
    auto reqs = stream(80.0, 48);

    ClusterEngine a(groups, opt);
    ClusterEngine b(groups, opt);
    ClusterResult ra = a.run(reqs, spec, model);
    ClusterResult rb = b.run(reqs, spec, model);

    ASSERT_EQ(ra.numGroups, 2u);
    ASSERT_EQ(ra.groupNames.size(), 2u);
    EXPECT_EQ(ra.groupNames[0], "papi");
    EXPECT_EQ(ra.groupNames[1], "a100+attacc");
    EXPECT_EQ(ra.groupPolicies[0], "threshold:fc-pim->gpu");
    EXPECT_EQ(ra.groupPolicies[1], "static:gpu");

    // Deterministic: two engines over the same stream agree exactly.
    EXPECT_EQ(ra.makespanSeconds, rb.makespanSeconds);
    EXPECT_EQ(ra.energyJoules, rb.energyJoules);
    EXPECT_EQ(ra.tokensGenerated, rb.tokensGenerated);
    ASSERT_EQ(ra.perGroup.size(), rb.perGroup.size());
    for (std::size_t g = 0; g < ra.perGroup.size(); ++g)
        expectByteIdentical(ra.perGroup[g], rb.perGroup[g]);

    // All work served; both replica types did some of it, and only
    // the dynamic replica ever moved FC onto PIM.
    std::uint64_t expected_tokens = 0;
    for (const auto &t : reqs)
        expected_tokens += t.request.outputLen;
    EXPECT_EQ(ra.tokensGenerated, expected_tokens);
    EXPECT_EQ(ra.requestsServed, reqs.size());
    EXPECT_GT(ra.perGroup[0].iterations, 0u);
    EXPECT_GT(ra.perGroup[1].iterations, 0u);
    EXPECT_EQ(ra.perGroup[1].fcOnPimIterations, 0u);
    EXPECT_GT(ra.perGroup[0].fcOnPimIterations, 0u);
}

/**
 * A homogeneous mix through the heterogeneous constructor reduces
 * exactly to the homogeneous constructor - the per-replica config
 * path adds nothing to the simulation itself.
 */
TEST(ClusterEngine, HeterogeneousCtorWithEqualConfigsMatches)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    ClusterOptions opt;
    opt.numPlatforms = 2;
    opt.serving.maxRlp = 16;
    opt.serving.alpha = 24.0;
    auto reqs = stream(60.0, 32);

    ClusterEngine homo(cfg, opt);
    ClusterEngine hetero(
        std::vector<core::PlatformConfig>{cfg, cfg}, opt);
    ClusterResult rh = homo.run(reqs, spec, model);
    ClusterResult rx = hetero.run(reqs, spec, model);
    EXPECT_EQ(rh.makespanSeconds, rx.makespanSeconds);
    EXPECT_EQ(rh.energyJoules, rx.energyJoules);
    ASSERT_EQ(rh.perGroup.size(), rx.perGroup.size());
    for (std::size_t g = 0; g < rh.perGroup.size(); ++g)
        expectByteIdentical(rh.perGroup[g], rx.perGroup[g]);
}

} // namespace
