/**
 * @file
 * Tests for the end-to-end decode engine and metrics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/decode_engine.hh"
#include "core/metrics.hh"
#include "core/platform.hh"
#include "core/threshold_calibrator.hh"
#include "llm/trace.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::core;
namespace llm = papi::llm;
using papi::sim::FatalError;

class EngineTest : public ::testing::Test
{
  protected:
    static llm::Batch
    makeBatch(std::uint32_t size, std::uint32_t in_len,
              std::uint32_t out_len, const llm::ModelConfig &model)
    {
        llm::TraceGenerator gen(llm::TraceCategory::Uniform, 1);
        return llm::Batch(gen.generateUniform(size, in_len, out_len),
                          model);
    }

    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig serial; // length = 1
};

TEST_F(EngineTest, GeneratesExactlyTheRequestedTokens)
{
    Platform papi(makePapiConfig());
    DecodeEngine engine(papi);
    llm::Batch batch = makeBatch(8, 64, 32, model);
    RunResult r = engine.run(batch, serial, model);
    EXPECT_EQ(r.tokensGenerated, 8u * 32u);
    EXPECT_EQ(r.iterations, 32u);
    EXPECT_GT(r.seconds(), 0.0);
    EXPECT_GT(r.energyJoules, 0.0);
}

TEST_F(EngineTest, SpeculationReducesIterations)
{
    Platform papi(makePapiConfig());
    DecodeEngine engine(papi);
    llm::SpeculativeConfig spec4;
    spec4.length = 4;
    llm::Batch b1 = makeBatch(8, 64, 64, model);
    llm::Batch b4 = makeBatch(8, 64, 64, model);
    RunResult r1 = engine.run(b1, serial, model);
    RunResult r4 = engine.run(b4, spec4, model);
    EXPECT_EQ(r4.iterations * 4, r1.iterations);
    EXPECT_EQ(r1.tokensGenerated, r4.tokensGenerated);
    EXPECT_LT(r4.seconds(), r1.seconds());
}

TEST_F(EngineTest, StaticPoliciesNeverSwitch)
{
    Platform base(makeA100AttAccConfig());
    DecodeEngine engine(base);
    llm::Batch batch = makeBatch(16, 64, 16, model);
    RunResult r = engine.run(batch, serial, model);
    EXPECT_EQ(r.fcOnPimIterations, 0u);
    EXPECT_EQ(r.fcOnGpuIterations, r.iterations);
    EXPECT_EQ(r.reschedules, 0u);

    Platform pim(makeAttAccOnlyConfig());
    DecodeEngine engine2(pim);
    llm::Batch batch2 = makeBatch(16, 64, 16, model);
    RunResult r2 = engine2.run(batch2, serial, model);
    EXPECT_EQ(r2.fcOnGpuIterations, 0u);
    EXPECT_EQ(r2.fcOnPimIterations, r2.iterations);
}

TEST_F(EngineTest, DynamicPolicySwitchesOnRlpDecay)
{
    // A batch whose RLP starts above alpha and decays below it must
    // produce exactly one GPU->PIM reschedule (Fig. 5(d) behaviour).
    Platform papi(makePapiConfig());
    double alpha =
        ThresholdCalibrator::calibrate(papi, model).alpha;

    // Varied output lengths so RLP decays gradually.
    std::vector<llm::Request> reqs;
    std::uint32_t batch_size =
        static_cast<std::uint32_t>(alpha) * 2;
    for (std::uint32_t i = 0; i < batch_size; ++i)
        reqs.push_back(llm::Request{i, 64, 8 + i, 0});
    llm::Batch batch(reqs, model);

    RunOptions opt;
    opt.alpha = alpha;
    opt.recordTrace = true;
    DecodeEngine engine(papi);
    RunResult r = engine.run(batch, serial, model, opt);

    EXPECT_GT(r.fcOnGpuIterations, 0u);
    EXPECT_GT(r.fcOnPimIterations, 0u);
    EXPECT_EQ(r.reschedules, 1u);

    // Trace: GPU iterations first (high RLP), then PIM.
    const auto &trace = engine.trace();
    ASSERT_EQ(trace.size(), r.iterations);
    bool seen_pim = false;
    for (const auto &t : trace) {
        if (t.fcTarget == FcTarget::FcPim)
            seen_pim = true;
        else
            EXPECT_FALSE(seen_pim) << "GPU after PIM at iteration "
                                   << t.iteration;
    }
}

TEST_F(EngineTest, OraclePolicyNeverLosesToStaticTargets)
{
    PlatformConfig cfg = makePapiConfig();
    cfg.fcPolicy = FcPolicy::Oracle;
    Platform oracle(cfg);
    Platform papi(makePapiConfig());
    double alpha = ThresholdCalibrator::calibrate(papi, model).alpha;

    for (std::uint32_t batch_size : {4u, 32u, 64u}) {
        llm::Batch b_oracle = makeBatch(batch_size, 64, 24, model);
        RunResult r_oracle =
            DecodeEngine(oracle).run(b_oracle, serial, model);

        RunOptions opt;
        opt.alpha = alpha;
        llm::Batch b_papi = makeBatch(batch_size, 64, 24, model);
        RunResult r_papi =
            DecodeEngine(papi).run(b_papi, serial, model, opt);

        // The AI-threshold heuristic should track the oracle closely.
        EXPECT_LE(r_oracle.seconds(), r_papi.seconds() * 1.001)
            << "batch=" << batch_size;
        EXPECT_LE(r_papi.seconds(), r_oracle.seconds() * 1.10)
            << "batch=" << batch_size;
    }
}

TEST_F(EngineTest, PrefillCanBeExcluded)
{
    Platform papi(makePapiConfig());
    DecodeEngine engine(papi);
    RunOptions with, without;
    without.includePrefill = false;
    llm::Batch b1 = makeBatch(8, 256, 16, model);
    llm::Batch b2 = makeBatch(8, 256, 16, model);
    RunResult r_with = engine.run(b1, serial, model, with);
    RunResult r_without = engine.run(b2, serial, model, without);
    EXPECT_GT(r_with.time.prefillSeconds, 0.0);
    EXPECT_DOUBLE_EQ(r_without.time.prefillSeconds, 0.0);
    EXPECT_GT(r_with.seconds(), r_without.seconds());
}

TEST_F(EngineTest, BreakdownSumsToTotal)
{
    Platform papi(makePapiConfig());
    DecodeEngine engine(papi);
    llm::Batch batch = makeBatch(8, 64, 16, model);
    RunResult r = engine.run(batch, serial, model);
    EXPECT_NEAR(r.seconds(),
                r.time.prefillSeconds + r.time.fcSeconds +
                    r.time.attnSeconds + r.time.commSeconds +
                    r.time.otherSeconds,
                1e-12);
    EXPECT_GT(r.time.fcSeconds, 0.0);
    EXPECT_GT(r.time.attnSeconds, 0.0);
    EXPECT_GT(r.time.commSeconds, 0.0);
    EXPECT_GT(r.time.otherSeconds, 0.0);
}

TEST_F(EngineTest, PartialAcceptanceSlowsGeneration)
{
    Platform papi(makePapiConfig());
    DecodeEngine engine(papi);
    llm::SpeculativeConfig ideal, lossy;
    ideal.length = 4;
    lossy.length = 4;
    lossy.acceptanceRate = 0.6;
    llm::Batch b1 = makeBatch(8, 64, 64, model);
    llm::Batch b2 = makeBatch(8, 64, 64, model);
    RunResult r_ideal = engine.run(b1, ideal, model);
    RunResult r_lossy = engine.run(b2, lossy, model);
    EXPECT_GT(r_lossy.iterations, r_ideal.iterations);
    EXPECT_EQ(r_lossy.tokensGenerated, r_ideal.tokensGenerated);
}

TEST_F(EngineTest, DeterministicAcrossRuns)
{
    Platform papi(makePapiConfig());
    DecodeEngine engine(papi);
    llm::SpeculativeConfig spec;
    spec.length = 4;
    spec.acceptanceRate = 0.8;
    llm::Batch b1 = makeBatch(8, 64, 32, model);
    llm::Batch b2 = makeBatch(8, 64, 32, model);
    RunResult r1 = engine.run(b1, spec, model);
    RunResult r2 = engine.run(b2, spec, model);
    EXPECT_DOUBLE_EQ(r1.seconds(), r2.seconds());
    EXPECT_EQ(r1.iterations, r2.iterations);
    EXPECT_DOUBLE_EQ(r1.energyJoules, r2.energyJoules);
}

TEST_F(EngineTest, PhaseOverlapShortensRunsAndKeepsAccounting)
{
    PlatformConfig serial_cfg = makePapiConfig();
    PlatformConfig overlap_cfg = makePapiConfig();
    overlap_cfg.phaseOverlapFraction = 1.0;
    Platform serial_p(serial_cfg), overlap_p(overlap_cfg);

    RunOptions opt;
    opt.includePrefill = false;
    llm::Batch b1 = makeBatch(16, 128, 512, model);
    llm::Batch b2 = makeBatch(16, 128, 512, model);
    RunResult r_serial =
        DecodeEngine(serial_p).run(b1, serial, model, opt);
    RunResult r_overlap =
        DecodeEngine(overlap_p).run(b2, serial, model, opt);

    EXPECT_LT(r_overlap.seconds(), r_serial.seconds());
    // Never faster than dropping the entire shorter phase.
    EXPECT_GT(r_overlap.seconds(),
              r_serial.seconds() - r_serial.time.attnSeconds -
                  r_serial.time.commSeconds);
    // Breakdown still sums to the total under overlap.
    EXPECT_NEAR(r_overlap.seconds(),
                r_overlap.time.prefillSeconds +
                    r_overlap.time.fcSeconds +
                    r_overlap.time.attnSeconds +
                    r_overlap.time.commSeconds +
                    r_overlap.time.otherSeconds,
                1e-12);
    // Energy is unchanged by overlap (same work, less wall clock,
    // modulo the tiny "other"-power term).
    EXPECT_NEAR(r_overlap.energyJoules, r_serial.energyJoules,
                r_serial.energyJoules * 0.01);
}

TEST(Metrics, SpeedupAndEfficiency)
{
    RunResult base, cand;
    base.time.fcSeconds = 2.0;
    base.energyJoules = 10.0;
    base.tokensGenerated = 100;
    cand.time.fcSeconds = 1.0;
    cand.energyJoules = 4.0;
    cand.tokensGenerated = 100;
    EXPECT_DOUBLE_EQ(speedup(base, cand), 2.0);
    EXPECT_DOUBLE_EQ(energyEfficiency(base, cand), 2.5);
}

TEST(Metrics, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_THROW(geomean({1.0, -1.0}), FatalError);
}

TEST(Metrics, EmptyAggregationsYieldNaNNotFatal)
{
    // Regression: a pool/replica that completes zero requests must
    // aggregate to NaN (skipped on stat export), not abort the run.
    EXPECT_TRUE(std::isnan(geomean({})));
    EXPECT_TRUE(std::isnan(percentileSorted({}, 0.5)));
    EXPECT_TRUE(std::isnan(percentileSorted({}, 0.99)));
    const std::vector<double> one{3.0};
    EXPECT_DOUBLE_EQ(percentileSorted(one, 0.99), 3.0);
}

TEST(Metrics, Formatters)
{
    EXPECT_EQ(formatSeconds(2.5), "2.500 s");
    EXPECT_EQ(formatSeconds(0.0025), "2.500 ms");
    EXPECT_EQ(formatSeconds(2.5e-6), "2.500 us");
    EXPECT_EQ(formatJoules(2.0), "2.000 J");
    EXPECT_EQ(formatJoules(0.002), "2.000 mJ");
}

} // namespace
