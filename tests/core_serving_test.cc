/**
 * @file
 * Tests for mixed-continuous-batching serving, MoE workload
 * modelling, and config-driven platform construction.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/config_loader.hh"
#include "core/serving_engine.hh"
#include "core/threshold_calibrator.hh"
#include "llm/moe.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::core;
namespace llm = papi::llm;
using papi::sim::FatalError;

class ServingTest : public ::testing::Test
{
  protected:
    static std::vector<llm::TimedRequest>
    stream(double rate_rps, std::uint32_t count,
           std::uint64_t seed = 5)
    {
        llm::ArrivalProcess arrivals(llm::TraceCategory::GeneralQa,
                                     rate_rps, seed);
        return arrivals.generate(count);
    }

    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig serial;
};

TEST_F(ServingTest, AllRequestsServed)
{
    Platform papi(makePapiConfig());
    ServingEngine engine(papi);
    auto reqs = stream(50.0, 32);
    ServingResult r = engine.run(reqs, serial, model);
    std::uint64_t expected_tokens = 0;
    for (const auto &t : reqs)
        expected_tokens += t.request.outputLen;
    EXPECT_EQ(r.tokensGenerated, expected_tokens);
    EXPECT_EQ(r.admissions, 32u);
    EXPECT_GT(r.makespanSeconds, 0.0);
    EXPECT_GT(r.meanLatencySeconds, 0.0);
    EXPECT_GE(r.p95LatencySeconds, r.meanLatencySeconds);
}

TEST_F(ServingTest, RlpRisesAndFallsProducingBothSwitchDirections)
{
    // The whole point of continuous batching for PAPI: admissions
    // push RLP x TLP above alpha (FC -> GPU) and drains pull it
    // below (FC -> PIM). A bursty stream must produce reschedules in
    // both directions.
    Platform papi(makePapiConfig());
    double alpha = ThresholdCalibrator::calibrate(papi, model).alpha;
    ServingEngine engine(papi);
    ServingOptions opt;
    opt.alpha = alpha;
    opt.maxRlp = static_cast<std::uint32_t>(alpha) * 3;
    auto reqs = stream(500.0, 96); // heavy burst
    ServingResult r = engine.run(reqs, serial, model, opt);
    EXPECT_GT(r.reschedules, 1u);
    EXPECT_GT(r.reschedulesToGpu, 0u);
    EXPECT_GT(r.reschedules, r.reschedulesToGpu); // also GPU -> PIM
    EXPECT_GT(r.fcOnGpuIterations, 0u);
    EXPECT_GT(r.fcOnPimIterations, 0u);
}

TEST_F(ServingTest, MaxRlpCapsConcurrency)
{
    Platform papi(makePapiConfig());
    ServingEngine engine(papi);
    ServingOptions opt;
    opt.maxRlp = 4;
    auto reqs = stream(1000.0, 24); // all arrive ~immediately
    ServingResult r = engine.run(reqs, serial, model, opt);
    EXPECT_LE(r.meanRlp, 4.0 + 1e-9);
    EXPECT_EQ(r.admissions, 24u);
}

TEST_F(ServingTest, HigherLoadRaisesLatency)
{
    Platform papi(makePapiConfig());
    ServingEngine engine(papi);
    ServingOptions opt;
    opt.maxRlp = 8;
    ServingResult light = engine.run(stream(2.0, 24), serial, model,
                                     opt);
    ServingResult heavy = engine.run(stream(200.0, 24), serial,
                                     model, opt);
    EXPECT_GT(heavy.meanLatencySeconds, light.meanLatencySeconds);
    EXPECT_GT(heavy.meanRlp, light.meanRlp);
}

TEST_F(ServingTest, PapiBeatsStaticBaselineUnderMixedLoad)
{
    Platform papi(makePapiConfig());
    Platform base(makeA100AttAccConfig());
    double alpha = ThresholdCalibrator::calibrate(papi, model).alpha;
    ServingOptions opt;
    opt.alpha = alpha;
    opt.maxRlp = 64;
    auto reqs = stream(30.0, 48);
    ServingResult r_papi = ServingEngine(papi).run(reqs, serial,
                                                   model, opt);
    ServingResult r_base = ServingEngine(base).run(reqs, serial,
                                                   model, opt);
    EXPECT_LT(r_papi.makespanSeconds, r_base.makespanSeconds);
    EXPECT_LT(r_papi.meanLatencySeconds,
              r_base.meanLatencySeconds * 1.02);
}

TEST_F(ServingTest, InvalidInputsAreFatal)
{
    Platform papi(makePapiConfig());
    ServingEngine engine(papi);
    EXPECT_THROW(engine.run({}, serial, model), FatalError);

    auto reqs = stream(10.0, 4);
    std::swap(reqs[0], reqs[3]); // unsorted arrivals
    EXPECT_THROW(engine.run(reqs, serial, model), FatalError);

    ServingOptions opt;
    opt.maxRlp = 0;
    auto ok = stream(10.0, 4);
    EXPECT_THROW(engine.run(ok, serial, model, opt), FatalError);
}

TEST_F(ServingTest, BatchLevelAdmitsOnlyIntoEmptyBatch)
{
    Platform papi(makePapiConfig());
    ServingEngine engine(papi);
    ServingOptions opt;
    opt.admission = AdmissionPolicy::BatchLevel;
    opt.maxRlp = 8;
    auto reqs = stream(100.0, 24);
    ServingResult r = engine.run(reqs, serial, model, opt);
    std::uint64_t expected_tokens = 0;
    for (const auto &t : reqs)
        expected_tokens += t.request.outputLen;
    EXPECT_EQ(r.tokensGenerated, expected_tokens);
    // Admissions happen in batch-sized bursts, so the mean RLP can
    // only decay within each batch - it never exceeds the cap.
    EXPECT_LE(r.meanRlp, 8.0 + 1e-9);
}

TEST_F(ServingTest, TokenLevelBeatsBatchLevelUnderLoad)
{
    // Continuous batching refills the batch as requests finish;
    // batch-level scheduling idles capacity during the drain (the
    // paper's Section 2.2.1 motivation for mixed continuous
    // batching).
    Platform papi(makePapiConfig());
    ServingEngine engine(papi);
    auto reqs = stream(100.0, 48);

    ServingOptions token_opt;
    token_opt.maxRlp = 16;
    ServingOptions batch_opt = token_opt;
    batch_opt.admission = AdmissionPolicy::BatchLevel;

    ServingResult token = engine.run(reqs, serial, model, token_opt);
    ServingResult batch = engine.run(reqs, serial, model, batch_opt);
    EXPECT_LT(token.makespanSeconds, batch.makespanSeconds);
    EXPECT_GT(token.meanRlp, batch.meanRlp);
}

TEST_F(ServingTest, BatchTimeoutBoundsFirstStart)
{
    // With a sparse stream and a long timeout, batch-level
    // scheduling delays the first request by ~the timeout.
    Platform papi(makePapiConfig());
    ServingEngine engine(papi);
    ServingOptions opt;
    opt.admission = AdmissionPolicy::BatchLevel;
    opt.maxRlp = 32;
    opt.batchTimeoutSeconds = 2.0;
    auto reqs = stream(4.0, 8); // ~0.25 s apart: never fills 32
    ServingResult slow = engine.run(reqs, serial, model, opt);
    opt.batchTimeoutSeconds = 0.0;
    ServingResult fast = engine.run(reqs, serial, model, opt);
    EXPECT_GT(slow.meanLatencySeconds, fast.meanLatencySeconds);
}

TEST(Arrival, PoissonStreamIsSortedAndDeterministic)
{
    llm::ArrivalProcess a(llm::TraceCategory::GeneralQa, 100.0, 3);
    llm::ArrivalProcess b(llm::TraceCategory::GeneralQa, 100.0, 3);
    auto ra = a.generate(200);
    auto rb = b.generate(200);
    double mean_gap = ra.back().arrivalSeconds /
                      static_cast<double>(ra.size());
    EXPECT_NEAR(mean_gap, 0.01, 0.004); // ~1/rate
    for (std::size_t i = 1; i < ra.size(); ++i)
        EXPECT_GE(ra[i].arrivalSeconds, ra[i - 1].arrivalSeconds);
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_DOUBLE_EQ(ra[i].arrivalSeconds, rb[i].arrivalSeconds);
    EXPECT_THROW(llm::ArrivalProcess(llm::TraceCategory::GeneralQa,
                                     0.0, 1),
                 FatalError);
}

TEST(Moe, ExpectedActiveExpertsBehaviour)
{
    llm::ModelConfig m = llm::mixtral8x22b();
    // One token touches exactly top-k experts (in expectation).
    EXPECT_NEAR(llm::expectedActiveExperts(m, 1), 2.0, 1e-9);
    // Coverage grows monotonically and saturates at E.
    double prev = 0.0;
    for (std::uint32_t t : {1u, 2u, 4u, 16u, 64u, 256u}) {
        double a = llm::expectedActiveExperts(m, t);
        EXPECT_GT(a, prev);
        EXPECT_LE(a, 8.0 + 1e-9);
        prev = a;
    }
    EXPECT_NEAR(llm::expectedActiveExperts(m, 256), 8.0, 1e-9);
    // Dense models report a single "expert".
    EXPECT_DOUBLE_EQ(llm::expectedActiveExperts(llm::llama65b(), 8),
                     1.0);
}

TEST(Moe, FfnReuseBelowDenseReuse)
{
    llm::ModelConfig m = llm::mixtral8x22b();
    for (std::uint32_t t : {4u, 16u, 64u}) {
        double reuse = llm::moeFfnReuse(m, t);
        EXPECT_GT(reuse, 0.9);
        EXPECT_LT(reuse, static_cast<double>(t));
    }
}

TEST(Moe, IntensityEstimateBelowDenseEstimate)
{
    // The Section 6.5 argument: expert sparsity keeps MoE FC
    // memory-bound to much larger batches.
    llm::ModelConfig m = llm::mixtral8x22b();
    for (std::uint32_t rlp : {8u, 32u, 128u}) {
        double moe = llm::moeFcIntensityEstimate(m, rlp, 1);
        double dense = static_cast<double>(rlp);
        EXPECT_LT(moe, dense) << "rlp=" << rlp;
    }
    // Dense model falls back to RLP x TLP exactly.
    EXPECT_DOUBLE_EQ(
        llm::moeFcIntensityEstimate(llm::llama65b(), 16, 2), 32.0);
}

TEST(Moe, ParameterCountsAndWork)
{
    llm::ModelConfig m = llm::mixtral8x22b();
    // ~140 B total parameters, ~8x more FFN than a dense model.
    EXPECT_NEAR(m.totalParams() / 1e9, 141.0, 15.0);
    llm::KernelWork w1 = llm::fcTotalWork(m, 1);
    llm::KernelWork w64 = llm::fcTotalWork(m, 64);
    // One token streams only top-k experts' worth of FFN weights.
    EXPECT_LT(w1.weightBytes, m.totalFcBytes() * 0.45);
    // A large batch touches every expert.
    EXPECT_NEAR(w64.weightBytes,
                static_cast<double>(m.totalFcBytes()),
                m.totalFcBytes() * 0.02);
    // FLOPs scale with tokens x top-k, not with expert count.
    EXPECT_NEAR(w64.flops / w1.flops, 64.0, 0.5);
}

TEST(Moe, PimFcLatencyReflectsSparsity)
{
    // At a batch size where a dense model of equal resident size
    // would be deeply compute-bound on FC-PIM, the MoE model's
    // per-expert reuse stays near the balance point.
    Platform papi(makePapiConfig());
    llm::ModelConfig moe = llm::mixtral8x22b();
    KernelExec lo = papi.fcExec(moe, 8, FcTarget::FcPim);
    KernelExec hi = papi.fcExec(moe, 64, FcTarget::FcPim);
    // 8x the tokens costs far less than 8x the time: expert
    // coverage saturates and reuse-per-expert grows instead.
    EXPECT_LT(hi.seconds, lo.seconds * 4.0);
}

TEST(ConfigLoader, NamedPlatformsResolve)
{
    EXPECT_EQ(platformConfigByName("papi").name, "papi");
    EXPECT_EQ(platformConfigByName("attacc-only").name,
              "attacc-only");
    EXPECT_THROW(platformConfigByName("nonsense"), FatalError);
}

TEST(ConfigLoader, OverridesApply)
{
    papi::sim::Config c;
    c.set("platform", std::string("papi"));
    c.set("num_gpus", std::int64_t{4});
    c.set("num_attn_devices", std::int64_t{30});
    c.set("attn_fabric", std::string("cxl2"));
    c.set("fc_pim.fpus_per_group", std::int64_t{2});
    PlatformConfig cfg = platformFromConfig(c);
    EXPECT_EQ(cfg.numGpus, 4u);
    EXPECT_EQ(cfg.numAttnDevices, 30u);
    EXPECT_EQ(cfg.topology.attnFabric.name, "cxl2");
    EXPECT_EQ(cfg.fcDeviceConfig.xPyBLabel(), "2P1B");
    // Untouched fields keep factory defaults.
    EXPECT_EQ(cfg.numFcDevices, 30u);
}

TEST(ConfigLoader, PolicyAndTargetNamesRoundTrip)
{
    // Every name the printers can emit must parse back to the same
    // value - config files written from report output stay loadable.
    for (FcPolicy p : {FcPolicy::AlwaysGpu, FcPolicy::AlwaysPim,
                       FcPolicy::Dynamic, FcPolicy::Oracle})
        EXPECT_EQ(fcPolicyFromName(fcPolicyName(p)), p);
    for (FcTarget t : {FcTarget::Gpu, FcTarget::FcPim})
        EXPECT_EQ(fcTargetFromName(fcTargetName(t)), t);
    for (DispatchRule r : {DispatchRule::Static,
                           DispatchRule::Threshold,
                           DispatchRule::Oracle})
        EXPECT_EQ(dispatchRuleFromName(dispatchRuleName(r)), r);

    EXPECT_THROW(fcPolicyFromName("sometimes"), FatalError);
    EXPECT_THROW(fcTargetFromName("tpu"), FatalError);
    EXPECT_THROW(dispatchRuleFromName("vibes"), FatalError);
}

TEST(ConfigLoader, DispatchPolicyStringsRoundTrip)
{
    // Every printable DispatchPolicy form parses back identically,
    // including for every policy a platform can resolve.
    std::vector<DispatchPolicy> policies = {
        staticDispatch("gpu"),
        staticDispatch("fc-pim"),
        staticDispatch("attn-pim"),
        thresholdDispatch("fc-pim", "gpu"),
        thresholdDispatch("gpu", "fc-pim"),
        oracleDispatch({"gpu", "fc-pim"}),
        oracleDispatch({"gpu", "fc-pim", "attn-pim"}),
        dispatchFromFcPolicy(FcPolicy::AlwaysGpu),
        dispatchFromFcPolicy(FcPolicy::AlwaysPim),
        dispatchFromFcPolicy(FcPolicy::Dynamic),
        dispatchFromFcPolicy(FcPolicy::Oracle),
    };
    for (const auto &p : policies) {
        DispatchPolicy back =
            dispatchPolicyFromName(dispatchPolicyName(p));
        EXPECT_EQ(back.rule, p.rule) << dispatchPolicyName(p);
        EXPECT_EQ(back.targets, p.targets) << dispatchPolicyName(p);
    }

    EXPECT_THROW(dispatchPolicyFromName("static"), FatalError);
    EXPECT_THROW(dispatchPolicyFromName("threshold:gpu"), FatalError);
    EXPECT_THROW(dispatchPolicyFromName("oracle:gpu,,fc-pim"),
                 FatalError);
    EXPECT_THROW(dispatchPolicyFromName("banana:gpu"), FatalError);
    EXPECT_THROW(dispatchPolicyFromName("static:gpu,fc-pim"),
                 FatalError);
}

TEST(ConfigLoader, DispatchKeysApply)
{
    papi::sim::Config c;
    c.set("platform", std::string("papi"));
    c.set("fc_dispatch", std::string("oracle:gpu,fc-pim"));
    PlatformConfig cfg = platformFromConfig(c);
    EXPECT_EQ(cfg.fcDispatch.rule, DispatchRule::Oracle);
    Platform p(cfg);
    EXPECT_EQ(dispatchPolicyName(p.dispatchPolicy(Phase::Fc)),
              "oracle:gpu,fc-pim");

    papi::sim::Config bad;
    bad.set("fc_dispatch", std::string("nonsense"));
    EXPECT_THROW(platformFromConfig(bad), FatalError);

    // An unknown target name in a well-formed policy survives
    // parsing but fails platform construction.
    papi::sim::Config unknown;
    unknown.set("fc_dispatch", std::string("static:tpu"));
    PlatformConfig cfg2 = platformFromConfig(unknown);
    EXPECT_THROW(Platform{cfg2}, FatalError);
}

TEST(ConfigLoader, BadPolicyOrLinkIsFatal)
{
    papi::sim::Config c;
    c.set("fc_policy", std::string("sometimes"));
    EXPECT_THROW(platformFromConfig(c), FatalError);
    papi::sim::Config d;
    d.set("attn_fabric", std::string("carrier-pigeon"));
    EXPECT_THROW(platformFromConfig(d), FatalError);
}

TEST(ConfigLoader, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "papi_cfg_test.cfg";
    {
        std::ofstream out(path);
        out << "# a comment line\n";
        out << "platform=pim-only-papi\n";
        out << "num_attn_devices=90   # trailing comment\n";
        out << "\n";
    }
    papi::sim::Config c = loadConfigFile(path);
    PlatformConfig cfg = platformFromConfig(c);
    EXPECT_EQ(cfg.name, "pim-only-papi");
    EXPECT_EQ(cfg.numAttnDevices, 90u);
    std::remove(path.c_str());

    EXPECT_THROW(loadConfigFile("/nonexistent/papi.cfg"),
                 FatalError);
}

TEST(ConfigLoader, MalformedLineIsFatal)
{
    std::string path = ::testing::TempDir() + "papi_cfg_bad.cfg";
    {
        std::ofstream out(path);
        out << "this line has no equals sign\n";
    }
    EXPECT_THROW(loadConfigFile(path), FatalError);
    std::remove(path.c_str());
}

} // namespace
