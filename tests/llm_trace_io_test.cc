/**
 * @file
 * Tests for trace CSV import/export and the speculative draft-cost
 * and KV-append extensions.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/decode_engine.hh"
#include "core/platform.hh"
#include "llm/trace_io.hh"
#include "pim/attention_engine.hh"
#include "sim/logging.hh"

namespace {

namespace llm = papi::llm;
namespace core = papi::core;
namespace pim = papi::pim;
using papi::sim::FatalError;

TEST(TraceIo, TimedRoundTrip)
{
    llm::ArrivalProcess arrivals(llm::TraceCategory::GeneralQa,
                                 50.0, 3);
    auto trace = arrivals.generate(32);

    std::stringstream buf;
    llm::writeTraceCsv(buf, trace);
    auto loaded = llm::readTraceCsv(buf);

    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded[i].request.id, trace[i].request.id);
        EXPECT_EQ(loaded[i].request.inputLen,
                  trace[i].request.inputLen);
        EXPECT_EQ(loaded[i].request.outputLen,
                  trace[i].request.outputLen);
        EXPECT_NEAR(loaded[i].arrivalSeconds,
                    trace[i].arrivalSeconds, 1e-6);
    }
}

TEST(TraceIo, UntimedTraceLoadsWithZeroArrivals)
{
    std::stringstream buf;
    std::vector<llm::Request> reqs{{1, 10, 20, 0}, {2, 30, 40, 0}};
    llm::writeTraceCsv(buf, reqs);
    auto loaded = llm::readTraceCsv(buf);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_DOUBLE_EQ(loaded[0].arrivalSeconds, 0.0);
    EXPECT_EQ(loaded[1].request.inputLen, 30u);
}

TEST(TraceIo, MalformedInputIsFatal)
{
    {
        std::stringstream buf("wrong,header\n1,2,3\n");
        EXPECT_THROW(llm::readTraceCsv(buf), FatalError);
    }
    {
        std::stringstream buf("id,input_len,output_len\n1,2\n");
        EXPECT_THROW(llm::readTraceCsv(buf), FatalError);
    }
    {
        std::stringstream buf("id,input_len,output_len\n1,2,0\n");
        EXPECT_THROW(llm::readTraceCsv(buf), FatalError); // zero out
    }
    {
        std::stringstream buf(
            "id,input_len,output_len\n1,2,3\n1,4,5\n");
        EXPECT_THROW(llm::readTraceCsv(buf), FatalError); // dup id
    }
    {
        std::stringstream buf(
            "id,input_len,output_len,arrival_s\n"
            "1,2,3,5.0\n2,2,3,1.0\n");
        EXPECT_THROW(llm::readTraceCsv(buf), FatalError); // unsorted
    }
    {
        std::stringstream buf("");
        EXPECT_THROW(llm::readTraceCsv(buf), FatalError);
    }
}

TEST(TraceIo, MalformedInputErrorsCiteSourceAndLine)
{
    // Row 3 (line 3 counting the header) is the malformed one; the
    // error must cite it as "source:line" so a bad multi-thousand
    // row trace file is debuggable.
    std::stringstream buf(
        "id,input_len,output_len\n1,2,3\n2,oops,5\n");
    try {
        llm::readTraceCsv(buf, "bad.csv");
        FAIL() << "malformed row did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad.csv:3"),
                  std::string::npos)
            << "error lacks source:line context: " << e.what();
    }
    // The default source tag marks in-memory streams.
    std::stringstream buf2("id,input_len,output_len\n1,2,0\n");
    try {
        llm::readTraceCsv(buf2);
        FAIL() << "zero output length did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("<trace>:2"),
                  std::string::npos)
            << "error lacks source:line context: " << e.what();
    }
    // File loads cite the path.
    const std::string path =
        ::testing::TempDir() + "papi_trace_malformed.csv";
    {
        std::ofstream out(path);
        out << "id,input_len,output_len\n1,2,3\n1,9,9\n";
    }
    try {
        llm::loadTraceFile(path);
        FAIL() << "duplicate id did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(path + ":3"),
                  std::string::npos)
            << "error lacks file:line context: " << e.what();
    }
    std::remove(path.c_str());
}

TEST(TraceIo, FileRoundTripAndErrors)
{
    std::string path = ::testing::TempDir() + "papi_trace_test.csv";
    llm::ArrivalProcess arrivals(llm::TraceCategory::GeneralQa,
                                 10.0, 1);
    auto trace = arrivals.generate(8);
    llm::saveTraceFile(path, trace);
    auto loaded = llm::loadTraceFile(path);
    EXPECT_EQ(loaded.size(), trace.size());
    std::remove(path.c_str());
    EXPECT_THROW(llm::loadTraceFile("/nonexistent/trace.csv"),
                 FatalError);
}

TEST(DraftCost, ChargedOnlyWhenSpeculating)
{
    core::Platform papi(core::makePapiConfig());
    core::DecodeEngine engine(papi);
    llm::ModelConfig model = llm::llama65b();
    llm::TraceGenerator gen(llm::TraceCategory::Uniform, 1);

    core::RunOptions opt;
    opt.includePrefill = false;

    llm::SpeculativeConfig free_draft;
    free_draft.length = 4;
    llm::SpeculativeConfig costly_draft;
    costly_draft.length = 4;
    costly_draft.draftCostFraction = 0.2;

    llm::Batch b1(gen.generateUniform(8, 64, 32), model);
    llm::Batch b2(gen.generateUniform(8, 64, 32), model);
    core::RunResult r_free = engine.run(b1, free_draft, model, opt);
    core::RunResult r_cost = engine.run(b2, costly_draft, model,
                                        opt);
    EXPECT_GT(r_cost.seconds(), r_free.seconds() * 1.1);
    EXPECT_EQ(r_cost.iterations, r_free.iterations);

    // Serial decoding never pays draft cost.
    llm::SpeculativeConfig serial;
    serial.draftCostFraction = 0.2;
    llm::Batch b3(gen.generateUniform(8, 64, 32), model);
    llm::Batch b4(gen.generateUniform(8, 64, 32), model);
    llm::SpeculativeConfig serial_free;
    core::RunResult r_serial_cost =
        engine.run(b3, serial, model, opt);
    core::RunResult r_serial_free =
        engine.run(b4, serial_free, model, opt);
    EXPECT_DOUBLE_EQ(r_serial_cost.seconds(),
                     r_serial_free.seconds());
}

TEST(KvAppend, WriteTimeChargedInAttention)
{
    pim::AttentionEngine engine(pim::attnPimConfig(),
                                pim::PimEnergyParams{});
    auto r = engine.run(64 * 1024, 4, 1000);
    EXPECT_GT(r.kvWriteSeconds, 0.0);
    // The append is small next to the stream.
    EXPECT_LT(r.kvWriteSeconds, r.gemvSeconds * 0.05);
    // And grows with TLP.
    auto r8 = engine.run(64 * 1024, 8, 1000);
    EXPECT_GT(r8.kvWriteSeconds, r.kvWriteSeconds);
}

} // namespace
