/**
 * @file
 * Property/fuzz tests: random but legal DRAM command sequences must
 * never violate timing invariants, and random request mixes must
 * always drain through the controller.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/controller.hh"
#include "dram/pseudo_channel.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace {

using namespace papi::dram;
using papi::sim::EventQueue;
using papi::sim::Rng;
using papi::sim::Tick;

/**
 * Drive a pseudo-channel with randomly chosen *legal* commands and
 * verify global invariants: issue times never regress, data
 * completion never precedes issue, per-bank row state stays
 * consistent with the commands applied.
 */
class ChannelFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ChannelFuzz, RandomLegalSequencesHoldInvariants)
{
    DramSpec spec = hbm3Spec();
    PseudoChannel channel(spec);
    Rng rng(GetParam());

    struct BankShadow
    {
        bool open = false;
        std::uint32_t row = 0;
    };
    std::vector<BankShadow> shadow(spec.org.banks());

    Tick now = 0;
    Tick last_issue = 0;
    int issued = 0;
    for (int step = 0; step < 4000; ++step) {
        auto g = static_cast<std::uint32_t>(
            rng.uniformInt(0, spec.org.bankGroups - 1));
        auto b = static_cast<std::uint32_t>(
            rng.uniformInt(0, spec.org.banksPerGroup - 1));
        auto flat = channel.flatIndex(g, b);
        BankShadow &sh = shadow[flat];

        Command cmd;
        cmd.coord.bankGroup = g;
        cmd.coord.bank = b;
        if (!sh.open) {
            cmd.type = CommandType::Act;
            cmd.coord.row = static_cast<std::uint32_t>(
                rng.uniformInt(0, 1023));
        } else {
            // Column access, another column, or close.
            int pick = static_cast<int>(rng.uniformInt(0, 3));
            cmd.coord.row = sh.row;
            if (pick == 0) {
                cmd.type = CommandType::Pre;
            } else if (pick == 1) {
                cmd.type = CommandType::Wr;
                cmd.coord.column = static_cast<std::uint32_t>(
                    rng.uniformInt(0, 31));
            } else if (pick == 2) {
                cmd.type = CommandType::PimMac;
                cmd.coord.column = static_cast<std::uint32_t>(
                    rng.uniformInt(0, 31));
            } else {
                cmd.type = CommandType::Rd;
                cmd.coord.column = static_cast<std::uint32_t>(
                    rng.uniformInt(0, 31));
            }
        }

        Tick issued_at = 0;
        Tick done = channel.issueAtEarliest(cmd, now, issued_at);
        ++issued;

        // Invariants.
        ASSERT_GE(issued_at, now);
        ASSERT_GE(done, issued_at);
        ASSERT_GE(issued_at, last_issue == 0 ? 0 : 0); // monotone now
        last_issue = std::max(last_issue, issued_at);
        now = issued_at;

        switch (cmd.type) {
          case CommandType::Act:
            sh.open = true;
            sh.row = cmd.coord.row;
            ASSERT_TRUE(channel.bank(g, b).openRow().has_value());
            ASSERT_EQ(*channel.bank(g, b).openRow(), sh.row);
            break;
          case CommandType::Pre:
            sh.open = false;
            ASSERT_FALSE(channel.bank(g, b).openRow().has_value());
            break;
          default:
            ASSERT_TRUE(channel.bank(g, b).openRow().has_value());
            break;
        }
    }
    EXPECT_EQ(issued, 4000);
    // Conservation: column accesses equal reads+writes+pim macs.
    std::uint64_t cols = channel.totalColumnAccesses();
    EXPECT_GT(cols, 0u);
    EXPECT_GE(channel.totalActivations(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFuzz,
                         ::testing::Values(1u, 7u, 42u, 1234u,
                                           987654321u));

/** Random request mixes always drain through the controller. */
class ControllerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ControllerFuzz, RandomMixAlwaysDrains)
{
    EventQueue eq;
    DramSpec spec = hbm3Spec();
    MemController ctrl(eq, spec, SchedulingPolicy::FrFcfs,
                       MappingPolicy::RoCoBaBg, /*queue_depth=*/0);
    Rng rng(GetParam());

    const int n = 400;
    int completed = 0;
    Tick last_completion = 0;
    for (int i = 0; i < n; ++i) {
        MemRequest r;
        r.addr = static_cast<std::uint64_t>(rng.uniformInt(
                     0,
                     static_cast<std::int64_t>(
                         spec.org.capacityBytes() /
                         spec.org.accessBytes) -
                         1)) *
                 spec.org.accessBytes;
        r.isWrite = rng.bernoulli(0.3);
        r.onComplete = [&](Tick t) {
            ++completed;
            EXPECT_GE(t, last_completion == 0 ? 0 : 0);
            last_completion = std::max(last_completion, t);
        };
        ASSERT_TRUE(ctrl.enqueue(std::move(r)));
    }
    ctrl.setRefreshEnabled(false);
    eq.run();
    EXPECT_EQ(completed, n);
    EXPECT_EQ(ctrl.queued(), 0u);
    EXPECT_EQ(ctrl.completed(), static_cast<std::uint64_t>(n));
    // Latency sanity: every request took at least a burst.
    EXPECT_GE(ctrl.meanLatency(),
              static_cast<double>(spec.timing.tBURST));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzz,
                         ::testing::Values(3u, 99u, 2026u));

} // namespace
