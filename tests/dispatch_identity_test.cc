/**
 * @file
 * Bit-identity pins for the execution-target refactor, plus unit
 * coverage of the registry/dispatch layer itself.
 *
 * The golden values below were recorded on this repository's
 * pre-refactor engines (the standalone DecodeEngine decode loop and
 * the pre-fold ServingSim) with fixed seeds. The refactor - FC
 * dispatch through the target registry, DecodeEngine as a ServingSim
 * adapter - is only legal if every one of these reproduces
 * byte-for-byte. EXPECT_EQ on doubles is deliberate: the contract is
 * bit identity, not tolerance.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/decode_engine.hh"
#include "core/platform.hh"
#include "core/serving_engine.hh"
#include "llm/arrival.hh"
#include "llm/moe.hh"
#include "llm/trace.hh"
#include "sim/logging.hh"

namespace {

using namespace papi;
using namespace papi::core;
using papi::sim::FatalError;

// --------------------------------------------------------------- helpers

std::uint64_t
fold(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    return h * 0x100000001b3ULL;
}

std::uint64_t
bits(double d)
{
    std::uint64_t u;
    static_assert(sizeof(u) == sizeof(d));
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

/** FNV chain over the schedule trace; pinned pre-refactor. */
std::uint64_t
traceHash(const std::vector<IterationTrace> &trace)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto &t : trace) {
        h = fold(h, t.iteration);
        h = fold(h, t.rlp);
        h = fold(h, t.tlp);
        h = fold(h, bits(t.estimatedAi));
        h = fold(h, t.fcTarget == FcTarget::Gpu ? 0u : 1u);
        h = fold(h, t.rescheduled ? 1u : 0u);
        h = fold(h, t.eosCount);
        h = fold(h, bits(t.iterationSeconds));
    }
    return h;
}

llm::Batch
makeBatch(const llm::ModelConfig &model, std::uint32_t n,
          std::uint64_t seed)
{
    llm::TraceGenerator gen(llm::TraceCategory::CreativeWriting, seed);
    return llm::Batch(gen.generate(n), model);
}

std::vector<llm::TimedRequest>
makeStream(double rate, std::uint32_t n, std::uint64_t seed)
{
    llm::ArrivalProcess a(llm::TraceCategory::GeneralQa, rate, seed);
    return a.generate(n);
}

RunOptions
decodeOpts()
{
    RunOptions opt;
    opt.alpha = 24.0;
    opt.seed = 7;
    return opt;
}

/** Pre-refactor golden of one DecodeEngine::run. */
struct DecodeGolden
{
    double prefill, fc, attn, comm, other, energy;
    std::uint64_t iters, tokens, fcGpu, fcPim, resched;
};

void
expectRun(const RunResult &r, const DecodeGolden &g)
{
    EXPECT_EQ(r.time.prefillSeconds, g.prefill);
    EXPECT_EQ(r.time.fcSeconds, g.fc);
    EXPECT_EQ(r.time.attnSeconds, g.attn);
    EXPECT_EQ(r.time.commSeconds, g.comm);
    EXPECT_EQ(r.time.otherSeconds, g.other);
    EXPECT_EQ(r.energyJoules, g.energy);
    EXPECT_EQ(r.iterations, g.iters);
    EXPECT_EQ(r.tokensGenerated, g.tokens);
    EXPECT_EQ(r.fcOnGpuIterations, g.fcGpu);
    EXPECT_EQ(r.fcOnPimIterations, g.fcPim);
    EXPECT_EQ(r.reschedules, g.resched);
}

// ------------------------------------------- decode bit-identity pins

TEST(DecodeIdentity, PapiDynamicSerial)
{
    Platform p(makePapiConfig());
    DecodeEngine e(p);
    llm::ModelConfig model = llm::llama65b();
    auto b = makeBatch(model, 24, 42);
    RunResult r = e.run(b, {}, model, decodeOpts());
    expectRun(r, {0.11431112626910868, 6.5988789341719585,
                  0.24034273393779601, 0.58325825706666379,
                  0.061110000000000456, 8541.5040146380816, 873, 9946,
                  0, 873, 0});
    // The adapter drains the caller's batch, as the old loop did.
    EXPECT_TRUE(b.done());
    EXPECT_EQ(b.iterations(), 873u);
    EXPECT_EQ(b.tokensGenerated(), 9946u);
}

TEST(DecodeIdentity, PapiDynamicSpeculativeWithTrace)
{
    Platform p(makePapiConfig());
    DecodeEngine e(p);
    llm::ModelConfig model = llm::llama65b();
    auto b = makeBatch(model, 24, 42);
    llm::SpeculativeConfig spec;
    spec.length = 4;
    spec.acceptanceRate = 0.8;
    spec.draftCostFraction = 0.1;
    RunOptions opt = decodeOpts();
    opt.recordTrace = true;
    RunResult r = e.run(b, spec, model, opt);
    expectRun(r, {0.11431112626910868, 3.566765058693572,
                  0.25409505501084384, 0.18609639253333382,
                  0.42071565062377358, 7017.413006130284, 286, 9946,
                  191, 95, 1});
    ASSERT_EQ(e.trace().size(), 286u);
    EXPECT_EQ(traceHash(e.trace()), 0x7f344eb7158f2ce9ULL);
}

TEST(DecodeIdentity, AlwaysGpuPaddedBatch)
{
    // a100+attacc does not track runtime RLP: FC work stays padded
    // to the initial batch size until the drain (Shortcoming 1).
    Platform p(makeA100AttAccConfig());
    DecodeEngine e(p);
    llm::ModelConfig model = llm::llama65b();
    auto b = makeBatch(model, 16, 11);
    llm::SpeculativeConfig spec;
    spec.length = 4;
    spec.acceptanceRate = 0.9;
    RunResult r = e.run(b, spec, model, decodeOpts());
    expectRun(r, {0.076606953648840057, 4.3153483528199601,
                  0.099884890739588644, 0.13744895999999965,
                  0.020090000000000097, 8991.6875293448666, 287, 7568,
                  287, 0, 0});
}

TEST(DecodeIdentity, AttAccOnlyGpuless)
{
    Platform p(makeAttAccOnlyConfig());
    DecodeEngine e(p);
    llm::ModelConfig model = llm::llama65b();
    auto b = makeBatch(model, 8, 3);
    RunResult r = e.run(b, {}, model, decodeOpts());
    expectRun(r, {0.4515624942111201, 8.8734101091260236,
                  0.047415651892978972, 0.92197120000000521,
                  0.048580000000000345, 5574.3249507707005, 694, 3026,
                  0, 694, 0});
}

TEST(DecodeIdentity, OraclePolicy)
{
    PlatformConfig cfg = makePapiConfig();
    cfg.fcPolicy = FcPolicy::Oracle;
    Platform p(cfg);
    DecodeEngine e(p);
    llm::ModelConfig model = llm::llama65b();
    auto b = makeBatch(model, 24, 42);
    llm::SpeculativeConfig spec;
    spec.length = 2;
    RunResult r = e.run(b, spec, model, decodeOpts());
    expectRun(r, {0.11431112626910868, 4.502061857767095,
                  0.20295386962284395, 0.2779705343999998,
                  0.03059000000000019, 7169.2293935453945, 437, 9946,
                  145, 292, 0});
}

TEST(DecodeIdentity, PhaseOverlapHiding)
{
    PlatformConfig cfg = makePapiConfig();
    cfg.phaseOverlapFraction = 0.5;
    Platform p(cfg);
    DecodeEngine e(p);
    llm::ModelConfig model = llm::llama65b();
    auto b = makeBatch(model, 24, 42);
    llm::SpeculativeConfig spec;
    spec.length = 4;
    spec.acceptanceRate = 0.8;
    spec.draftCostFraction = 0.1;
    RunOptions opt = decodeOpts();
    opt.recordTrace = true;
    RunResult r = e.run(b, spec, model, opt);
    expectRun(r, {0.11431112626910868, 3.566765058693572,
                  0.053145139746876881, 0.18098950029187888,
                  0.42071565062377358, 7017.413006130284, 286, 9946,
                  191, 95, 1});
    EXPECT_EQ(traceHash(e.trace()), 0x312b3edabbfc0afeULL);
}

TEST(DecodeIdentity, MoeEstimatorPath)
{
    Platform p(makePapiConfig());
    DecodeEngine e(p);
    llm::ModelConfig moe = llm::mixtral8x22b();
    auto b = makeBatch(moe, 24, 42);
    RunResult r = e.run(b, {}, moe, decodeOpts());
    expectRun(r, {0.073890796562051275, 7.3008439845840556,
                  0.08528753590552858, 0.39176458495999927,
                  0.050634000000000665, 12029.729531821558, 873, 9946,
                  0, 873, 0});
}

TEST(DecodeIdentity, PrefillExcluded)
{
    Platform p(makePapiConfig());
    DecodeEngine e(p);
    llm::ModelConfig model = llm::llama65b();
    auto b = makeBatch(model, 24, 42);
    RunOptions opt = decodeOpts();
    opt.includePrefill = false;
    RunResult r = e.run(b, {}, model, opt);
    expectRun(r, {0.0, 6.5988789341719585, 0.24034273393779601,
                  0.58325825706666379, 0.061110000000000456,
                  8318.1404315921191, 873, 9946, 0, 873, 0});
}

TEST(DecodeIdentity, PimOnlyPapi)
{
    Platform p(makePimOnlyPapiConfig());
    DecodeEngine e(p);
    llm::ModelConfig model = llm::llama65b();
    auto b = makeBatch(model, 8, 3);
    RunResult r = e.run(b, {}, model, decodeOpts());
    expectRun(r, {0.15952685672012012, 3.6261698803240305,
                  0.065727380838978999, 0.92197120000000521,
                  0.048580000000000345, 5726.3876283510454, 694, 3026,
                  0, 694, 0});
}

// ------------------------------------------ serving bit-identity pins

/** Pre-refactor golden of one ServingEngine::run. */
struct ServingGolden
{
    double makespan, energy;
    std::uint64_t iters, tokens, admits, resched, reschedGpu, fcGpu,
        fcPim;
    double meanLat, p95Lat, meanRlp, peakKv;
};

void
expectServing(const ServingResult &r, const ServingGolden &g)
{
    EXPECT_EQ(r.makespanSeconds, g.makespan);
    EXPECT_EQ(r.energyJoules, g.energy);
    EXPECT_EQ(r.iterations, g.iters);
    EXPECT_EQ(r.tokensGenerated, g.tokens);
    EXPECT_EQ(r.admissions, g.admits);
    EXPECT_EQ(r.reschedules, g.resched);
    EXPECT_EQ(r.reschedulesToGpu, g.reschedGpu);
    EXPECT_EQ(r.fcOnGpuIterations, g.fcGpu);
    EXPECT_EQ(r.fcOnPimIterations, g.fcPim);
    EXPECT_EQ(r.meanLatencySeconds, g.meanLat);
    EXPECT_EQ(r.p95LatencySeconds, g.p95Lat);
    EXPECT_EQ(r.meanRlp, g.meanRlp);
    EXPECT_EQ(r.peakKvUtilization, g.peakKv);
}

ServingOptions
servingOpts()
{
    ServingOptions opt;
    opt.maxRlp = 16;
    opt.alpha = 24.0;
    opt.seed = 7;
    return opt;
}

TEST(ServingIdentity, PapiDynamicTokenLevel)
{
    Platform p(makePapiConfig());
    llm::SpeculativeConfig spec;
    spec.length = 4;
    ServingResult r = ServingEngine(p).run(
        makeStream(50.0, 32, 5), spec, llm::llama65b(),
        servingOpts());
    expectServing(r, {1.5103677628012815, 2705.2280352275234, 108,
                      2844, 32, 2, 1, 43, 65, 0.56024034049714799,
                      0.95274004536641876, 6.9265199086172231,
                      0.0087612061939690306});
}

TEST(ServingIdentity, PapiBatchLevelWithTimeout)
{
    Platform p(makePapiConfig());
    ServingOptions opt = servingOpts();
    opt.admission = AdmissionPolicy::BatchLevel;
    opt.maxRlp = 8;
    opt.batchTimeoutSeconds = 0.2;
    ServingResult r = ServingEngine(p).run(
        makeStream(100.0, 24, 9), {}, llm::llama65b(), opt);
    expectServing(r, {2.7835738047800249, 3969.5641808331661, 493,
                      1848, 24, 0, 0, 0, 493, 1.2993966003758488,
                      2.0088269701692743, 3.7828049006229878,
                      0.0043602281988590055});
}

TEST(ServingIdentity, AlwaysGpuBaseline)
{
    Platform p(makeA100AttAccConfig());
    ServingResult r = ServingEngine(p).run(
        makeStream(30.0, 24, 5), {}, llm::llama65b(), servingOpts());
    expectServing(r, {5.8490380431876154, 9237.8313155000724, 380,
                      2286, 24, 0, 0, 380, 0, 1.7630390282356332,
                      3.257981504059146, 5.7327096237278132,
                      0.0087612061939690306});
}

TEST(ServingIdentity, OracleServing)
{
    PlatformConfig cfg = makePapiConfig();
    cfg.fcPolicy = FcPolicy::Oracle;
    Platform p(cfg);
    ServingResult r = ServingEngine(p).run(
        makeStream(50.0, 32, 5), {}, llm::llama65b(), servingOpts());
    expectServing(r, {2.9718636305145929, 4198.5712460174782, 387,
                      2844, 32, 0, 0, 0, 387, 1.2455505517142798,
                      1.9678599239712988, 8.0146196224720736,
                      0.0087612061939690306});
}

TEST(ServingIdentity, MoeServing)
{
    // The serving scheduler deliberately uses the dense RLP x TLP
    // estimate even for MoE models (the pre-fold behaviour).
    Platform p(makePapiConfig());
    ServingResult r = ServingEngine(p).run(
        makeStream(20.0, 16, 5), {}, llm::mixtral8x22b(),
        servingOpts());
    expectServing(r, {1.8247605431879799, 3025.9844282042418, 224,
                      1286, 16, 0, 0, 0, 224, 0.90264985518392438,
                      1.2457758833665524, 5.7424818701728642,
                      0.0039102564102564104});
}

TEST(ServingIdentity, AttAccOnlyServing)
{
    Platform p(makeAttAccOnlyConfig());
    ServingResult r = ServingEngine(p).run(
        makeStream(10.0, 12, 5), {}, llm::llama65b(), servingOpts());
    expectServing(r, {3.651411965042568, 1580.1713893550441, 169,
                      1005, 12, 0, 0, 0, 169, 2.5456927729775471,
                      3.1681508218596459, 4.6019103057202351,
                      0.005460472697636512});
}

// ------------------------------------------------ registry mechanics

TEST(TargetRegistry, PlatformRegistersItsResources)
{
    Platform papi(makePapiConfig());
    EXPECT_EQ(papi.targets().size(), 3u);
    EXPECT_EQ(papi.targets().at(papi.targetId("gpu")).kind,
              TargetKind::Gpu);
    EXPECT_EQ(papi.targets().at(papi.targetId("fc-pim")).kind,
              TargetKind::FcPim);
    EXPECT_EQ(papi.targets().at(papi.targetId("attn-pim")).kind,
              TargetKind::AttnPim);
    EXPECT_THROW(papi.targetId("tpu"), FatalError);

    // No near-bank FC compute -> no fc-pim target.
    Platform baseline(makeA100AttAccConfig());
    EXPECT_EQ(baseline.targets().size(), 2u);
    EXPECT_FALSE(baseline.targets().find("fc-pim").has_value());

    // GPU-less -> no gpu target.
    Platform pim(makeAttAccOnlyConfig());
    EXPECT_EQ(pim.targets().size(), 2u);
    EXPECT_FALSE(pim.targets().find("gpu").has_value());
}

TEST(TargetRegistry, PhaseSupportAndLookup)
{
    Platform papi(makePapiConfig());
    const TargetRegistry &reg = papi.targets();
    auto fc_capable = reg.supporting(Phase::Fc);
    ASSERT_EQ(fc_capable.size(), 2u);
    EXPECT_EQ(reg.at(fc_capable[0]).name, "gpu");
    EXPECT_EQ(reg.at(fc_capable[1]).name, "fc-pim");
    auto attn_capable = reg.supporting(Phase::Attention);
    ASSERT_EQ(attn_capable.size(), 1u);
    EXPECT_EQ(reg.at(attn_capable[0]).name, "attn-pim");
    EXPECT_EQ(reg.firstOfKind(TargetKind::FcPim),
              reg.find("fc-pim"));
    EXPECT_THROW(reg.at(99), FatalError);
}

TEST(TargetRegistry, RejectsDuplicateAndEmptyNames)
{
    TargetRegistry reg;
    ExecTarget t;
    t.name = "x";
    reg.add(t);
    EXPECT_THROW(reg.add(t), FatalError);
    ExecTarget empty;
    EXPECT_THROW(reg.add(empty), FatalError);
}

// ------------------------------------------------ dispatch mechanics

TEST(Dispatch, LegacyPoliciesTranslate)
{
    EXPECT_EQ(dispatchPolicyName(
                  dispatchFromFcPolicy(FcPolicy::AlwaysGpu)),
              "static:gpu");
    EXPECT_EQ(dispatchPolicyName(
                  dispatchFromFcPolicy(FcPolicy::AlwaysPim)),
              "static:fc-pim");
    EXPECT_EQ(dispatchPolicyName(
                  dispatchFromFcPolicy(FcPolicy::Dynamic)),
              "threshold:fc-pim->gpu");
    EXPECT_EQ(dispatchPolicyName(
                  dispatchFromFcPolicy(FcPolicy::Oracle)),
              "oracle:gpu,fc-pim");
}

TEST(Dispatch, PlatformResolvesPerPhasePolicies)
{
    Platform papi(makePapiConfig());
    EXPECT_EQ(dispatchPolicyName(papi.dispatchPolicy(Phase::Fc)),
              "threshold:fc-pim->gpu");
    EXPECT_EQ(dispatchPolicyName(
                  papi.dispatchPolicy(Phase::Attention)),
              "static:attn-pim");
    EXPECT_EQ(dispatchPolicyName(papi.dispatchPolicy(Phase::Prefill)),
              "static:gpu");

    Platform pim(makeAttAccOnlyConfig());
    EXPECT_EQ(dispatchPolicyName(pim.dispatchPolicy(Phase::Fc)),
              "static:fc-pim");
    EXPECT_EQ(dispatchPolicyName(pim.dispatchPolicy(Phase::Prefill)),
              "static:fc-pim");
}

TEST(Dispatch, ThresholdDispatcherMatchesScheduler)
{
    Platform papi(makePapiConfig());
    llm::ModelConfig m = llm::llama65b();
    PhaseDispatcher d = papi.dispatcher(Phase::Fc, 24.0);
    TargetPair pair = d.pair();
    EXPECT_EQ(pair.below, papi.targetId("fc-pim"));
    EXPECT_EQ(pair.above, papi.targetId("gpu"));
    EXPECT_EQ(d.select(m, 64, 1, 64).target, pair.above);
    EXPECT_EQ(d.select(m, 8, 2, 16).target, pair.below);
    EXPECT_DOUBLE_EQ(d.select(m, 8, 2, 16).estimatedAi, 16.0);
}

TEST(Dispatch, OracleRacesCandidates)
{
    PlatformConfig cfg = makePapiConfig();
    cfg.fcPolicy = FcPolicy::Oracle;
    Platform p(cfg);
    llm::ModelConfig m = llm::llama65b();
    PhaseDispatcher d = p.dispatcher(Phase::Fc);
    // Small token counts are memory-bound: PIM wins. Large counts
    // are compute-bound: GPU wins.
    TargetId lo = d.select(m, 2, 1, 2).target;
    TargetId hi = d.select(m, 256, 1, 256).target;
    EXPECT_EQ(lo, p.targetId("fc-pim"));
    EXPECT_EQ(hi, p.targetId("gpu"));
    // The race agrees with the raw cost model.
    EXPECT_LE(p.fcExec(m, 2, lo).seconds,
              p.fcExec(m, 2, p.targetId("gpu")).seconds);
}

TEST(Dispatch, ExplicitPolicyOverridesLegacyEnum)
{
    // fcPolicy says Dynamic, but an explicit static pin wins.
    PlatformConfig cfg = makePapiConfig();
    cfg.fcDispatch = staticDispatch("fc-pim");
    Platform p(cfg);
    EXPECT_EQ(p.staticFcTarget(), FcTarget::FcPim);
    EXPECT_EQ(dispatchPolicyName(p.dispatchPolicy(Phase::Fc)),
              "static:fc-pim");
}

TEST(Dispatch, InvalidPoliciesAreConstructionErrors)
{
    // Unknown target name.
    {
        PlatformConfig cfg = makePapiConfig();
        cfg.fcDispatch = staticDispatch("tpu");
        EXPECT_THROW(Platform{cfg}, FatalError);
    }
    // Target that cannot run the phase.
    {
        PlatformConfig cfg = makePapiConfig();
        cfg.fcDispatch = staticDispatch("attn-pim");
        EXPECT_THROW(Platform{cfg}, FatalError);
    }
    // Threshold pair must be two distinct targets.
    {
        PlatformConfig cfg = makePapiConfig();
        cfg.fcDispatch = thresholdDispatch("gpu", "gpu");
        EXPECT_THROW(Platform{cfg}, FatalError);
    }
    // GPU-less platform cannot pin FC to the GPU.
    {
        PlatformConfig cfg = makeAttAccOnlyConfig();
        cfg.fcDispatch = staticDispatch("gpu");
        EXPECT_THROW(Platform{cfg}, FatalError);
    }
    // Oracle needs two or more candidates to race.
    {
        PlatformConfig cfg = makePapiConfig();
        cfg.fcDispatch = oracleDispatch({"gpu"});
        EXPECT_THROW(Platform{cfg}, FatalError);
    }
    // Threshold is fc-only: no runtime alpha is plumbed for the
    // other phases, so a threshold prefill/attention policy would
    // silently degrade to a static pin.
    {
        PlatformConfig cfg = makePapiConfig();
        cfg.prefillDispatch = thresholdDispatch("fc-pim", "gpu");
        EXPECT_THROW(Platform{cfg}, FatalError);
    }
}

TEST(Dispatch, OracleAttentionAndPrefillArePerPhase)
{
    // The per-phase layer is real beyond FC: prefill can race its
    // capable targets (gpu vs the PIM path) through the registry.
    PlatformConfig cfg = makePapiConfig();
    cfg.prefillDispatch = oracleDispatch({"gpu", "fc-pim"});
    Platform p(cfg);
    llm::ModelConfig m = llm::llama65b();
    std::vector<std::uint32_t> lens = {64, 128, 256};
    KernelExec oracle_pre = p.prefillExec(m, lens);
    double gpu_s = p.prefillExec(m, lens, p.targetId("gpu")).seconds;
    double pim_s =
        p.prefillExec(m, lens, p.targetId("fc-pim")).seconds;
    EXPECT_EQ(oracle_pre.seconds, std::min(gpu_s, pim_s));
}

TEST(Dispatch, BreakdownStaysInChargedUnitsUnderTpCostModel)
{
    // With a non-trivial tensor-parallel cost model the charged
    // iteration time is scaled; the per-component breakdown must be
    // in the same units so it still sums to the busy time.
    Platform p(makePapiConfig());
    llm::ModelConfig model = llm::llama65b();
    IterationCostModel cost;
    cost.computeScale = 2.0;
    cost.extraSeconds = [](std::uint32_t) { return 1.0e-4; };
    ServingOptions opt;
    opt.maxRlp = 8;
    opt.alpha = 24.0;
    ServingSim sim(p, {}, model, opt, cost);
    for (const auto &tr : makeStream(100.0, 8, 5))
        sim.deliver(tr);
    while (sim.canStep())
        sim.step();
    sim.finish();
    EXPECT_NEAR(sim.breakdown().totalSeconds(), sim.busySeconds(),
                sim.busySeconds() * 1e-12);
}

TEST(Dispatch, ExplicitThresholdPolicyRunsEndToEnd)
{
    // An explicitly-configured threshold policy (not via the legacy
    // enum) drives a full serving run and reschedules.
    PlatformConfig cfg = makePapiConfig();
    cfg.fcPolicy = FcPolicy::AlwaysGpu; // overridden below
    cfg.fcDispatch = thresholdDispatch("fc-pim", "gpu");
    Platform p(cfg);
    llm::SpeculativeConfig spec;
    spec.length = 4;
    ServingOptions opt;
    opt.maxRlp = 16;
    opt.alpha = 24.0;
    opt.seed = 7;
    ServingResult r = ServingEngine(p).run(
        makeStream(50.0, 32, 5), spec, llm::llama65b(), opt);
    EXPECT_GT(r.fcOnGpuIterations, 0u);
    EXPECT_GT(r.fcOnPimIterations, 0u);
    EXPECT_GT(r.reschedules, 0u);
}

} // namespace
