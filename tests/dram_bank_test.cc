/**
 * @file
 * Unit tests for the DRAM bank state machine and timing.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"
#include "dram/timing.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::dram;
using papi::sim::PanicError;
using papi::sim::Tick;

class BankTest : public ::testing::Test
{
  protected:
    BankTest() : spec(hbm3Spec()), table(spec.timing), bank(table) {}

    DramSpec spec;
    BankTimingTable table;
    Bank bank;
};

TEST_F(BankTest, StartsClosed)
{
    EXPECT_EQ(bank.state(0), Bank::State::Closed);
    EXPECT_FALSE(bank.openRow().has_value());
}

TEST_F(BankTest, ActivateOpensRowAfterTrcd)
{
    Tick open_at = bank.issue(CommandType::Act, 42, 0);
    EXPECT_EQ(open_at, spec.timing.tRCD);
    EXPECT_EQ(bank.state(0), Bank::State::Opening);
    EXPECT_EQ(bank.state(open_at), Bank::State::Open);
    ASSERT_TRUE(bank.openRow().has_value());
    EXPECT_EQ(*bank.openRow(), 42u);
}

TEST_F(BankTest, ReadRequiresOpenRow)
{
    EXPECT_FALSE(bank.canIssue(CommandType::Rd, 0, 0));
    bank.issue(CommandType::Act, 7, 0);
    // Wrong row never legal.
    EXPECT_FALSE(bank.canIssue(CommandType::Rd, 8, spec.timing.tRCD));
    // Right row legal only after tRCD.
    EXPECT_FALSE(bank.canIssue(CommandType::Rd, 7,
                               spec.timing.tRCD - 1));
    EXPECT_TRUE(bank.canIssue(CommandType::Rd, 7, spec.timing.tRCD));
}

TEST_F(BankTest, DoubleActivateIsIllegal)
{
    bank.issue(CommandType::Act, 1, 0);
    EXPECT_FALSE(bank.canIssue(CommandType::Act, 2,
                               spec.timing.tRC));
    EXPECT_THROW(bank.issue(CommandType::Act, 2, spec.timing.tRC),
                 PanicError);
}

TEST_F(BankTest, PrechargeRespectsTras)
{
    bank.issue(CommandType::Act, 1, 0);
    EXPECT_FALSE(bank.canIssue(CommandType::Pre, 0,
                               spec.timing.tRAS - 1));
    EXPECT_TRUE(bank.canIssue(CommandType::Pre, 0, spec.timing.tRAS));
    bank.issue(CommandType::Pre, 0, spec.timing.tRAS);
    EXPECT_EQ(bank.state(spec.timing.tRAS), Bank::State::Closed);
}

TEST_F(BankTest, ActToActRespectsTrc)
{
    bank.issue(CommandType::Act, 1, 0);
    bank.issue(CommandType::Pre, 0, spec.timing.tRAS);
    Tick pre_done = spec.timing.tRAS + spec.timing.tRP;
    // tRC from the first ACT also applies; it is the binding limit.
    Tick trc_limit = spec.timing.tRC;
    Tick earliest = bank.earliestIssue(CommandType::Act);
    EXPECT_EQ(earliest, std::max(pre_done, trc_limit));
}

TEST_F(BankTest, ReadToPrechargeRespectsTrtp)
{
    bank.issue(CommandType::Act, 3, 0);
    Tick rd_at = spec.timing.tRCD;
    bank.issue(CommandType::Rd, 3, rd_at);
    Tick earliest_pre = bank.earliestIssue(CommandType::Pre);
    EXPECT_GE(earliest_pre, rd_at + spec.timing.tRTP);
}

TEST_F(BankTest, WriteRecoveryDelaysPrecharge)
{
    bank.issue(CommandType::Act, 3, 0);
    Tick wr_at = spec.timing.tRCD;
    Tick data_end = bank.issue(CommandType::Wr, 3, wr_at);
    EXPECT_EQ(data_end, wr_at + spec.timing.tWL + spec.timing.tBURST);
    EXPECT_GE(bank.earliestIssue(CommandType::Pre),
              data_end + spec.timing.tWR);
}

TEST_F(BankTest, ExternalReadsPaceAtTccdL)
{
    bank.issue(CommandType::Act, 3, 0);
    Tick t0 = spec.timing.tRCD;
    bank.issue(CommandType::Rd, 3, t0);
    EXPECT_EQ(bank.earliestIssue(CommandType::Rd),
              t0 + spec.timing.tCCD_L);
}

TEST_F(BankTest, PimReadsPaceAtBurstCadence)
{
    bank.issue(CommandType::Act, 3, 0);
    Tick t0 = spec.timing.tRCD;
    bank.issue(CommandType::PimMac, 3, t0);
    // Near-bank reads pipeline at tCCD_S (= tBURST), the basis of
    // the paper's 20.8 GB/s-per-bank figure.
    EXPECT_EQ(bank.earliestIssue(CommandType::PimMac),
              t0 + spec.timing.tCCD_S);
    EXPECT_LT(spec.timing.tCCD_S, spec.timing.tCCD_L);
}

TEST_F(BankTest, CountersTrackCommands)
{
    bank.issue(CommandType::Act, 1, 0);
    Tick t = spec.timing.tRCD;
    bank.issue(CommandType::Rd, 1, t);
    t += spec.timing.tCCD_L;
    bank.issue(CommandType::Wr, 1, t);
    t += spec.timing.tCCD_L;
    bank.issue(CommandType::PimMac, 1, t);
    EXPECT_EQ(bank.activations(), 1u);
    EXPECT_EQ(bank.reads(), 1u);
    EXPECT_EQ(bank.writes(), 1u);
    EXPECT_EQ(bank.pimMacs(), 1u);
}

TEST_F(BankTest, RefreshRequiresClosedBank)
{
    bank.issue(CommandType::Act, 1, 0);
    EXPECT_FALSE(bank.canIssue(CommandType::Ref, 0,
                               spec.timing.tRAS));
    bank.issue(CommandType::Pre, 0, spec.timing.tRAS);
    Tick ready = bank.earliestIssue(CommandType::Ref);
    EXPECT_TRUE(bank.canIssue(CommandType::Ref, 0, ready));
    bank.issue(CommandType::Ref, 0, ready);
    // ACT blocked for tRFC after refresh.
    EXPECT_GE(bank.earliestIssue(CommandType::Act),
              ready + spec.timing.tRFC);
}

TEST(DramSpecTest, Hbm3OrganizationIsConsistent)
{
    DramSpec spec = hbm3Spec();
    EXPECT_EQ(spec.org.banks(), 8u);
    EXPECT_EQ(spec.org.columnsPerRow(), 32u);
    // 8 banks x 131072 rows x 1 KiB = 1 GiB per pseudo-channel.
    EXPECT_EQ(spec.org.capacityBytes(), 1ULL << 30);
    // 32 B per 1539 ps ~= 20.8 GB/s per pseudo-channel pin rate.
    EXPECT_NEAR(spec.peakChannelBandwidth(), 20.8e9, 0.2e9);
}

TEST(DramSpecTest, TimingOrderingSane)
{
    DramSpec spec = hbm3Spec();
    const auto &t = spec.timing;
    EXPECT_LT(t.tCCD_S, t.tCCD_L);
    EXPECT_LT(t.tRRD_S, t.tRRD_L);
    EXPECT_GE(t.tRC, t.tRAS + t.tRP);
    EXPECT_GT(t.tRAS, t.tRCD);
    EXPECT_GT(t.tREFI, t.tRFC);
}

} // namespace
