/**
 * @file
 * Tests for the cluster front-end router: policy mechanics, session
 * fan-out, and the headline scheduling property that load-aware
 * routing beats round-robin tail latency on skewed work.
 */

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster_engine.hh"
#include "cluster/router.hh"
#include "llm/arrival.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::cluster;
namespace llm = papi::llm;
namespace core = papi::core;
using papi::sim::FatalError;

std::vector<BackendLoad>
loads(std::initializer_list<std::uint32_t> outstanding)
{
    std::vector<BackendLoad> out;
    for (std::uint32_t o : outstanding)
        out.push_back(BackendLoad{o});
    return out;
}

TEST(Router, RoundRobinCyclesThroughBackends)
{
    Router r(RouterPolicy::RoundRobin, 3);
    llm::TimedRequest req;
    auto l = loads({7, 0, 3});
    for (std::uint32_t i = 0; i < 9; ++i)
        EXPECT_EQ(r.route(req, l), i % 3);
}

TEST(Router, LeastOutstandingPicksMinTiesTowardLowestIndex)
{
    Router r(RouterPolicy::LeastOutstanding, 4);
    llm::TimedRequest req;
    EXPECT_EQ(r.route(req, loads({5, 2, 9, 2})), 1u); // tie 1 vs 3
    EXPECT_EQ(r.route(req, loads({0, 0, 0, 0})), 0u);
    EXPECT_EQ(r.route(req, loads({3, 2, 1, 0})), 3u);
}

TEST(Router, SessionAffinityIsStickyAndSpreads)
{
    Router r(RouterPolicy::SessionAffinity, 4);
    std::set<std::uint32_t> used;
    for (std::uint64_t s = 1; s <= 64; ++s) {
        llm::TimedRequest req;
        req.sessionId = s;
        std::uint32_t first = r.route(req, loads({0, 0, 0, 0}));
        used.insert(first);
        // Same session, different load snapshots: same backend.
        EXPECT_EQ(r.route(req, loads({9, 9, 9, 9})), first);
    }
    // 64 sessions over 4 backends must touch them all.
    EXPECT_EQ(used.size(), 4u);
}

TEST(Router, SessionAffinityUnsetSessionsFallBackToRoundRobin)
{
    // Regression: requests with the default sessionId == 0 used to
    // hash onto one fixed replica - all session-less traffic
    // collapsed there. Unset sessions must spread round-robin.
    Router r(RouterPolicy::SessionAffinity, 4);
    auto l = loads({0, 0, 0, 0});
    for (std::uint32_t i = 0; i < 12; ++i) {
        llm::TimedRequest req; // sessionId stays the 0 default
        EXPECT_EQ(r.route(req, l), i % 4);
    }
    // Set sessions remain sticky and do not consume the cursor
    // deterministically differently across repeats.
    llm::TimedRequest pinned;
    pinned.sessionId = 17;
    const std::uint32_t home = r.route(pinned, l);
    llm::TimedRequest unset;
    EXPECT_EQ(r.route(unset, l), 0u); // cursor continues at 12 % 4
    EXPECT_EQ(r.route(pinned, l), home);
}

TEST(Router, PolicyNamesRoundTrip)
{
    for (RouterPolicy p : {RouterPolicy::RoundRobin,
                           RouterPolicy::LeastOutstanding,
                           RouterPolicy::SessionAffinity})
        EXPECT_EQ(routerPolicyByName(routerPolicyName(p)), p);
    EXPECT_THROW(routerPolicyByName("random"), FatalError);
    EXPECT_THROW(Router(RouterPolicy::RoundRobin, 0), FatalError);
}

TEST(Router, AssignSessionsIsDeterministicAndBounded)
{
    llm::ArrivalProcess arrivals(llm::TraceCategory::GeneralQa, 50.0,
                                 11);
    auto a = arrivals.generate(64);
    auto b = a;
    llm::assignSessions(a, 8, 3);
    llm::assignSessions(b, 8, 3);
    std::set<std::uint64_t> sessions;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].sessionId, b[i].sessionId);
        // 1-based: 0 is reserved as the "unset session" sentinel.
        EXPECT_GE(a[i].sessionId, 1u);
        EXPECT_LE(a[i].sessionId, 8u);
        // Arrival process untouched.
        EXPECT_DOUBLE_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
        sessions.insert(a[i].sessionId);
    }
    EXPECT_GT(sessions.size(), 4u);
    EXPECT_THROW(llm::assignSessions(a, 0, 1), FatalError);
}

/**
 * The satellite property: on a skewed-length trace (mostly short
 * answers with periodic 2048-token monsters) served by
 * low-concurrency replicas, least-outstanding-RLP routing beats
 * round-robin on p99 end-to-end latency. Round-robin keeps feeding
 * the replica that is pinned behind a monster, so the requests
 * queued there inherit its service time; load-aware routing steers
 * them to idle replicas. Fixed seed and fixed arrival grid keep the
 * comparison deterministic; the margin is large (2-6x across
 * nearby parameters), so this is a property test, not a tuned pin.
 */
TEST(Router, LeastOutstandingBeatsRoundRobinP99OnSkewedTrace)
{
    core::PlatformConfig cfg = core::makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;

    llm::TraceGenerator gen(llm::TraceCategory::Uniform, 3);
    auto reqs = gen.generateUniform(120, 64, 48);
    std::vector<llm::TimedRequest> stream;
    double t = 0.0;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (i % 16 == 5)
            reqs[i].outputLen = 2048; // the heavy tail
        llm::TimedRequest tr;
        tr.request = reqs[i];
        tr.arrivalSeconds = t;
        tr.sessionId = reqs[i].id;
        t += 0.1;
        stream.push_back(tr);
    }

    ClusterOptions opt;
    opt.numPlatforms = 4;
    opt.serving.maxRlp = 2; // latency-optimal low concurrency
    opt.serving.alpha = 24.0;

    opt.policy = RouterPolicy::RoundRobin;
    ClusterResult rr =
        ClusterEngine(cfg, opt).run(stream, spec, model);

    opt.policy = RouterPolicy::LeastOutstanding;
    ClusterResult lo =
        ClusterEngine(cfg, opt).run(stream, spec, model);

    EXPECT_EQ(rr.requestsServed, 120u);
    EXPECT_EQ(lo.requestsServed, 120u);
    // Robust margin: require a 1.5x tail win, not just a nose ahead.
    EXPECT_LT(lo.latency.p99 * 1.5, rr.latency.p99);
    EXPECT_LT(lo.queueing.p99, rr.queueing.p99);
    EXPECT_LT(lo.meanQueueingSeconds, rr.meanQueueingSeconds);
}

} // namespace
