/**
 * @file
 * Unit tests for pseudo-channel inter-bank timing and address
 * mapping.
 */

#include <gtest/gtest.h>

#include "dram/address.hh"
#include "dram/pseudo_channel.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::dram;
using papi::sim::FatalError;
using papi::sim::PanicError;
using papi::sim::Tick;

class ChannelTest : public ::testing::Test
{
  protected:
    ChannelTest() : spec(hbm3Spec()), ch(spec) {}

    Command
    act(std::uint32_t bg, std::uint32_t b, std::uint32_t row)
    {
        return Command{CommandType::Act, Coord{bg, b, row, 0}};
    }

    Command
    rd(std::uint32_t bg, std::uint32_t b, std::uint32_t row,
       std::uint32_t col)
    {
        return Command{CommandType::Rd, Coord{bg, b, row, col}};
    }

    DramSpec spec;
    PseudoChannel ch;
};

TEST_F(ChannelTest, ActSpacingSameGroupUsesRrdL)
{
    ch.issue(act(0, 0, 1), 0);
    Tick earliest = ch.earliestIssue(act(0, 1, 1), 0);
    EXPECT_EQ(earliest, spec.timing.tRRD_L);
}

TEST_F(ChannelTest, ActSpacingCrossGroupUsesRrdS)
{
    ch.issue(act(0, 0, 1), 0);
    Tick earliest = ch.earliestIssue(act(1, 0, 1), 0);
    EXPECT_EQ(earliest, spec.timing.tRRD_S);
}

TEST_F(ChannelTest, FourActivateWindowEnforced)
{
    // Issue four activates as fast as legal, alternating groups.
    Tick now = 0;
    std::uint32_t banks[4][2] = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
    Tick first_act = 0;
    for (int i = 0; i < 4; ++i) {
        Command c = act(banks[i][0], banks[i][1], 1);
        Tick at = ch.earliestIssue(c, now);
        if (i == 0)
            first_act = at;
        ch.issue(c, at);
        now = at;
    }
    // The fifth activate must wait for tFAW from the first.
    Command fifth = act(0, 2, 1);
    Tick earliest = ch.earliestIssue(fifth, now);
    EXPECT_GE(earliest, first_act + spec.timing.tFAW);
}

TEST_F(ChannelTest, ColumnSpacingDependsOnGroup)
{
    ch.issue(act(0, 0, 1), 0);
    ch.issue(act(1, 0, 1), spec.timing.tRRD_S);
    Tick t0 = spec.timing.tRRD_S + spec.timing.tRCD;
    ch.issue(rd(0, 0, 1, 0), t0);
    // Same group: tCCD_L; different group: tCCD_S.
    EXPECT_EQ(ch.earliestIssue(rd(0, 0, 1, 1), t0),
              t0 + spec.timing.tCCD_L);
    EXPECT_EQ(ch.earliestIssue(rd(1, 0, 1, 0), t0),
              t0 + spec.timing.tCCD_S);
}

TEST_F(ChannelTest, PimMacsBypassSharedColumnFabric)
{
    ch.issue(act(0, 0, 1), 0);
    ch.issue(act(1, 0, 1), spec.timing.tRRD_S);
    Tick t0 = spec.timing.tRRD_S + spec.timing.tRCD;
    Command pim0{CommandType::PimMac, Coord{0, 0, 1, 0}};
    Command pim1{CommandType::PimMac, Coord{1, 0, 1, 0}};
    ch.issue(pim0, t0);
    // A PIM read on another bank may go out immediately: banks
    // stream independently through their near-bank datapaths.
    EXPECT_EQ(ch.earliestIssue(pim1, t0), t0);
}

TEST_F(ChannelTest, WriteToReadTurnaroundEnforced)
{
    ch.issue(act(0, 0, 1), 0);
    Tick t0 = spec.timing.tRCD;
    Command wr{CommandType::Wr, Coord{0, 0, 1, 0}};
    Tick wr_data_end = ch.issue(wr, t0);
    // A read anywhere on the channel must wait out tWTR after the
    // write burst ends.
    Tick earliest_rd = ch.earliestIssue(rd(0, 0, 1, 1), t0);
    EXPECT_GE(earliest_rd, wr_data_end + spec.timing.tWTR);
}

TEST_F(ChannelTest, ReadToWriteTurnaroundEnforced)
{
    ch.issue(act(0, 0, 1), 0);
    Tick t0 = spec.timing.tRCD;
    Tick rd_data_end = ch.issue(rd(0, 0, 1, 0), t0);
    Command wr{CommandType::Wr, Coord{0, 0, 1, 1}};
    Tick earliest_wr = ch.earliestIssue(wr, t0);
    // The write's data (tWL after issue) must not start before the
    // read burst has ended plus tRTW.
    EXPECT_GE(earliest_wr + spec.timing.tWL,
              rd_data_end + spec.timing.tRTW);
}

TEST_F(ChannelTest, CommandBusSpacingOneCommandPerTck)
{
    ch.issue(act(0, 0, 1), 0);
    // The very next command on the bus must wait a command cycle,
    // even when its own bank timing would allow it immediately.
    Tick earliest = ch.earliestIssue(act(1, 0, 1), 0);
    EXPECT_GE(earliest, spec.timing.tCK);
}

TEST_F(ChannelTest, PimMacsBypassCommandBus)
{
    ch.issue(act(0, 0, 1), 0);
    ch.issue(act(1, 0, 1), spec.timing.tRRD_S);
    Tick t0 = spec.timing.tRRD_S + spec.timing.tRCD;
    Command pim{CommandType::PimMac, Coord{0, 0, 1, 0}};
    ch.issue(pim, t0);
    // An external command right after a PIM read needs no tCK gap
    // from it (the PIM read never used the bus).
    Command pre{CommandType::Pre, Coord{1, 0, 1, 0}};
    Tick earliest = ch.earliestIssue(pre, t0);
    EXPECT_LE(earliest,
              std::max<Tick>(t0, ch.bank(1, 0).earliestIssue(
                                     CommandType::Pre)) +
                  spec.timing.tCK);
}

TEST_F(ChannelTest, IllegalIssuePanics)
{
    EXPECT_THROW(ch.issue(rd(0, 0, 1, 0), 0), PanicError);
}

TEST_F(ChannelTest, OutOfRangeBankPanics)
{
    EXPECT_THROW(ch.bank(9, 0), PanicError);
    EXPECT_THROW(ch.bank(0, 9), PanicError);
}

TEST_F(ChannelTest, IssueAtEarliestReportsIssueTime)
{
    ch.issue(act(0, 0, 1), 0);
    Tick issued_at = 0;
    ch.issueAtEarliest(rd(0, 0, 1, 0), 0, issued_at);
    EXPECT_EQ(issued_at, spec.timing.tRCD);
}

TEST_F(ChannelTest, RefreshBlocksSubsequentCommands)
{
    Tick done = ch.refresh(0);
    EXPECT_EQ(done, spec.timing.tRFC);
    EXPECT_GE(ch.earliestIssue(act(0, 0, 1), 0), done);
}

TEST_F(ChannelTest, RefreshWithOpenBankPanics)
{
    ch.issue(act(0, 0, 1), 0);
    EXPECT_THROW(ch.refresh(spec.timing.tRAS), PanicError);
}

TEST_F(ChannelTest, AggregateCounters)
{
    ch.issue(act(0, 0, 1), 0);
    Tick t0 = spec.timing.tRCD;
    ch.issue(rd(0, 0, 1, 0), t0);
    Command pim{CommandType::PimMac, Coord{0, 0, 1, 1}};
    ch.issue(pim, t0 + spec.timing.tCCD_L);
    EXPECT_EQ(ch.totalActivations(), 1u);
    EXPECT_EQ(ch.totalColumnAccesses(), 2u);
    EXPECT_EQ(ch.totalPimMacs(), 1u);
}

class AddressMappingParam
    : public ::testing::TestWithParam<MappingPolicy>
{
};

TEST_P(AddressMappingParam, RoundTripsAllFields)
{
    DramSpec spec = hbm3Spec();
    AddressMapping map(spec.org, GetParam());
    // Probe a spread of addresses, aligned to access granularity.
    for (std::uint64_t addr = 0; addr < spec.org.capacityBytes();
         addr += spec.org.capacityBytes() / 97) {
        std::uint64_t aligned = addr / spec.org.accessBytes *
                                spec.org.accessBytes;
        Coord c = map.decompose(aligned);
        EXPECT_LT(c.bankGroup, spec.org.bankGroups);
        EXPECT_LT(c.bank, spec.org.banksPerGroup);
        EXPECT_LT(c.row, spec.org.rowsPerBank);
        EXPECT_LT(c.column, spec.org.columnsPerRow());
        EXPECT_EQ(map.compose(c), aligned);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AddressMappingParam,
                         ::testing::Values(MappingPolicy::RoBaBgCo,
                                           MappingPolicy::RoCoBaBg));

TEST(AddressMapping, SequentialAddressesStayInRowForStreamPolicy)
{
    DramSpec spec = hbm3Spec();
    AddressMapping map(spec.org, MappingPolicy::RoBaBgCo);
    Coord first = map.decompose(0);
    Coord second = map.decompose(spec.org.accessBytes);
    EXPECT_EQ(first.row, second.row);
    EXPECT_EQ(first.bankGroup, second.bankGroup);
    EXPECT_EQ(first.bank, second.bank);
    EXPECT_EQ(second.column, first.column + 1);
}

TEST(AddressMapping, SequentialAddressesRotateBanksForParallelPolicy)
{
    DramSpec spec = hbm3Spec();
    AddressMapping map(spec.org, MappingPolicy::RoCoBaBg);
    Coord first = map.decompose(0);
    Coord second = map.decompose(spec.org.accessBytes);
    EXPECT_NE(first.bankGroup, second.bankGroup);
}

TEST(AddressMapping, BeyondCapacityIsFatal)
{
    DramSpec spec = hbm3Spec();
    AddressMapping map(spec.org, MappingPolicy::RoCoBaBg);
    EXPECT_THROW(map.decompose(spec.org.capacityBytes()), FatalError);
}

} // namespace
