/**
 * @file
 * Tests for the P-square streaming quantile estimator behind
 * bounded-memory serving metrics: exactness below six observations
 * (under the repo-wide percentileSorted convention), bounded error
 * on large samples, and bitwise determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/metrics.hh"
#include "core/p2_quantile.hh"

namespace {

using papi::core::P2Quantile;
using papi::core::percentileSorted;

/** Deterministic uniform doubles in [0, 1) (splitmix64 stream). */
class DetUniform
{
  public:
    explicit DetUniform(std::uint64_t seed) : _state(seed) {}

    double
    next()
    {
        _state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = _state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        return static_cast<double>(z >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t _state;
};

TEST(P2Quantile, EmptyIsNaN)
{
    P2Quantile q(0.95);
    EXPECT_TRUE(std::isnan(q.value()));
    EXPECT_EQ(q.count(), 0u);
    q.add(3.0);
    EXPECT_EQ(q.count(), 1u);
    EXPECT_EQ(q.value(), 3.0);
}

TEST(P2Quantile, ExactBelowSixObservations)
{
    // Below six observations the estimator must match
    // percentileSorted (idx = floor(q * (n - 1))) bit for bit.
    const double sample[] = {0.7, 0.1, 1.9, 0.4, 1.2};
    for (double target : {0.50, 0.95, 0.99}) {
        for (std::size_t n = 1; n <= 5; ++n) {
            SCOPED_TRACE("q=" + std::to_string(target) +
                         " n=" + std::to_string(n));
            P2Quantile est(target);
            std::vector<double> sorted;
            for (std::size_t i = 0; i < n; ++i) {
                est.add(sample[i]);
                sorted.push_back(sample[i]);
            }
            std::sort(sorted.begin(), sorted.end());
            EXPECT_EQ(est.value(),
                      percentileSorted(sorted, target));
        }
    }
}

TEST(P2Quantile, ApproximatesLargeUniformSample)
{
    const std::size_t n = 20000;
    DetUniform rng(42);
    P2Quantile p50(0.50), p95(0.95), p99(0.99);
    std::vector<double> all;
    all.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = rng.next();
        all.push_back(x);
        p50.add(x);
        p95.add(x);
        p99.add(x);
    }
    std::sort(all.begin(), all.end());
    // Error well under 1% of the distribution's scale (here [0,1)).
    EXPECT_NEAR(p50.value(), percentileSorted(all, 0.50), 0.01);
    EXPECT_NEAR(p95.value(), percentileSorted(all, 0.95), 0.01);
    EXPECT_NEAR(p99.value(), percentileSorted(all, 0.99), 0.01);
    EXPECT_EQ(p99.count(), n);
}

TEST(P2Quantile, SkewedSampleStaysOrdered)
{
    // A heavy-tailed sample (x^4 pushes mass toward 0): estimates
    // stay ordered p50 <= p95 <= p99 and inside the sample range.
    DetUniform rng(7);
    P2Quantile p50(0.50), p95(0.95), p99(0.99);
    for (std::size_t i = 0; i < 5000; ++i) {
        const double u = rng.next();
        const double x = u * u * u * u * 10.0;
        p50.add(x);
        p95.add(x);
        p99.add(x);
    }
    EXPECT_LE(p50.value(), p95.value());
    EXPECT_LE(p95.value(), p99.value());
    EXPECT_GE(p50.value(), 0.0);
    EXPECT_LE(p99.value(), 10.0);
}

TEST(P2Quantile, DeterministicAcrossInstances)
{
    // Same observation sequence -> bitwise identical estimate (the
    // property per-replica estimators rely on to stay byte-stable
    // across cluster worker counts).
    DetUniform a_rng(99), b_rng(99);
    P2Quantile a(0.95), b(0.95);
    for (std::size_t i = 0; i < 4096; ++i) {
        a.add(a_rng.next());
        b.add(b_rng.next());
    }
    EXPECT_EQ(a.value(), b.value());
    EXPECT_EQ(a.count(), b.count());
}

} // namespace
