/**
 * @file
 * Tests for the GPU roofline model and interconnect links.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_model.hh"
#include "interconnect/link.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::gpu;
using namespace papi::interconnect;
using papi::sim::FatalError;

TEST(GpuSpec, A100NumbersMatchPaper)
{
    GpuSpec a100 = a100Spec();
    EXPECT_DOUBLE_EQ(a100.peakTflopsFp16, 312.0);
    EXPECT_DOUBLE_EQ(a100.memBandwidthGBs, 1935.0);
    EXPECT_EQ(a100.memCapacityBytes, 80ULL << 30);
    // Ridge point ~161 FLOPs/byte: kernels below it on the roofline
    // are memory-bound (Fig. 2's dividing line).
    EXPECT_NEAR(a100.ridgeArithmeticIntensity(), 161.2, 1.0);
}

TEST(GpuModel, MemoryBoundKernelPacedByBandwidth)
{
    GpuModel gpu(a100Spec(), 1, 0.0);
    // AI = 1 FLOP/byte: deeply memory-bound.
    double bytes = 1e9;
    GpuKernelResult r = gpu.kernel(bytes, bytes);
    EXPECT_FALSE(r.computeBound);
    EXPECT_NEAR(r.seconds,
                bytes / a100Spec().effectiveBandwidth() +
                    a100Spec().kernelLaunchSeconds,
                1e-9);
}

TEST(GpuModel, ComputeBoundKernelPacedByFlops)
{
    GpuModel gpu(a100Spec(), 1, 0.0);
    double bytes = 1e6;
    double flops = bytes * 10000.0; // far above the ridge
    GpuKernelResult r = gpu.kernel(flops, bytes);
    EXPECT_TRUE(r.computeBound);
    EXPECT_NEAR(r.seconds,
                flops / a100Spec().effectiveFlops() +
                    a100Spec().kernelLaunchSeconds,
                1e-9);
}

TEST(GpuModel, FleetScalesBothRooflines)
{
    GpuModel one(a100Spec(), 1, 0.0);
    GpuModel six(a100Spec(), 6, 0.0);
    EXPECT_NEAR(six.fleetBandwidth(), 6.0 * one.fleetBandwidth(),
                1.0);
    EXPECT_NEAR(six.fleetFlops(), 6.0 * one.fleetFlops(), 1.0);
    double bytes = 6e9;
    EXPECT_NEAR(one.kernel(bytes, bytes).seconds /
                    six.kernel(bytes, bytes).seconds,
                6.0, 0.1);
}

TEST(GpuModel, AllReduceAddsTensorParallelCost)
{
    GpuModel six(a100Spec(), 6, 300.0);
    double bytes = 1e9;
    GpuKernelResult without = six.kernel(bytes, bytes, 0.0);
    GpuKernelResult with = six.kernel(bytes, bytes, 1e8);
    EXPECT_GT(with.seconds, without.seconds);
    // Ring all-reduce: 2 (G-1)/G x output / link bandwidth.
    EXPECT_NEAR(with.allReduceSeconds,
                2.0 * 5.0 / 6.0 * 1e8 / 300e9, 1e-9);
}

TEST(GpuModel, SingleGpuSkipsAllReduce)
{
    GpuModel one(a100Spec(), 1, 300.0);
    GpuKernelResult r = one.kernel(1e9, 1e9, 1e8);
    EXPECT_DOUBLE_EQ(r.allReduceSeconds, 0.0);
}

TEST(GpuModel, EnergyHasDynamicAndStaticParts)
{
    GpuModel gpu(a100Spec(), 2, 0.0);
    GpuKernelResult r = gpu.kernel(1e12, 1e9);
    double dynamic = 1e12 * a100Spec().computeEnergyPerFlop +
                     1e9 * a100Spec().memEnergyPerByte;
    double static_e = 2 * a100Spec().idlePowerWatts * r.seconds;
    EXPECT_NEAR(r.energyJoules, dynamic + static_e, 1e-6);
}

TEST(GpuModel, InvalidConstructionIsFatal)
{
    EXPECT_THROW(GpuModel(a100Spec(), 0), FatalError);
    EXPECT_THROW(GpuModel(a100Spec(), 1, -1.0), FatalError);
    GpuModel gpu(a100Spec(), 1);
    EXPECT_THROW(gpu.kernel(-1.0, 0.0), FatalError);
}

TEST(Link, TransferTimeHasLatencyAndBandwidthTerms)
{
    Link l = pcie5();
    double small = l.transferSeconds(64);
    double large = l.transferSeconds(64 << 20);
    // Small messages are latency-dominated.
    EXPECT_NEAR(small, l.latencySeconds + l.messageOverheadSeconds,
                1e-7);
    // Large messages are bandwidth-dominated.
    EXPECT_NEAR(large,
                static_cast<double>(64 << 20) /
                    l.bandwidthBytesPerSec,
                1e-3);
}

TEST(Link, ValidateRejectsDegenerateParameters)
{
    // A non-positive bandwidth silently yields infinite (or
    // negative) transfer times; validate() must refuse it and every
    // other physically meaningless parameter before it can poison
    // downstream timestamps.
    Link l = pcie5();
    l.bandwidthBytesPerSec = 0.0;
    EXPECT_THROW(l.validate(), FatalError);
    l.bandwidthBytesPerSec = -64.0e9;
    EXPECT_THROW(l.validate(), FatalError);
    l = pcie5();
    l.latencySeconds = -1.0e-6;
    EXPECT_THROW(l.validate(), FatalError);
    l = pcie5();
    l.messageOverheadSeconds = -0.5e-6;
    EXPECT_THROW(l.validate(), FatalError);
    l = pcie5();
    l.energyPerByte = -1.0e-12;
    EXPECT_THROW(l.validate(), FatalError);
    l = pcie5();
    l.maxDevices = 0;
    EXPECT_THROW(l.validate(), FatalError);
    // All presets are valid as shipped.
    EXPECT_NO_THROW(nvlink().validate());
    EXPECT_NO_THROW(pcie5().validate());
    EXPECT_NO_THROW(cxl2().validate());
}

TEST(Link, PresetOrdering)
{
    // NVLink is the fast fabric; PCIe/CXL are the commodity ones.
    EXPECT_GT(nvlink().bandwidthBytesPerSec,
              pcie5().bandwidthBytesPerSec);
    EXPECT_GT(nvlink().bandwidthBytesPerSec,
              cxl2().bandwidthBytesPerSec);
    // CXL scales to far more devices than PCIe (paper Section 6.3).
    EXPECT_GT(cxl2().maxDevices, pcie5().maxDevices);
    EXPECT_EQ(cxl2().maxDevices, 4096u);
    EXPECT_EQ(pcie5().maxDevices, 32u);
}

TEST(Link, TransferEnergyScalesWithBytes)
{
    Link l = nvlink();
    EXPECT_NEAR(l.transferJoules(1000), 1000 * l.energyPerByte,
                1e-15);
}

} // namespace
