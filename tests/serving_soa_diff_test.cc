/**
 * @file
 * Differential lockstep test: the SoA serving core vs the frozen
 * pre-refactor scalar reference (core/serving_reference.hh).
 *
 * Every config in a seeded grid (chunked prefill x preemption policy
 * x disaggregated roles x static batch x admission policy x
 * deadlines) runs the same request stream through both
 * implementations step by step, asserting bit-identical peeked
 * iteration durations, clocks, and final results at every boundary.
 * Doubles are compared with EXPECT_EQ on purpose: the determinism
 * contract is bitwise, not approximate.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/serving_engine.hh"
#include "core/serving_reference.hh"
#include "llm/arrival.hh"
#include "llm/model_config.hh"

namespace {

using namespace papi::core;
namespace llm = papi::llm;

std::vector<llm::TimedRequest>
stream(llm::TraceCategory cat, double rate_rps, std::uint32_t count,
       std::uint64_t seed)
{
    llm::ArrivalProcess arrivals(cat, rate_rps, seed);
    return arrivals.generate(count);
}

/** Exact (bitwise for doubles) equality of two serving results. */
void
expectResultsEqual(const ServingResult &a, const ServingResult &b)
{
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_EQ(a.admissions, b.admissions);
    EXPECT_EQ(a.reschedules, b.reschedules);
    EXPECT_EQ(a.reschedulesToGpu, b.reschedulesToGpu);
    EXPECT_EQ(a.fcOnGpuIterations, b.fcOnGpuIterations);
    EXPECT_EQ(a.fcOnPimIterations, b.fcOnPimIterations);
    EXPECT_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_EQ(a.p95LatencySeconds, b.p95LatencySeconds);
    EXPECT_EQ(a.meanRlp, b.meanRlp);
    EXPECT_EQ(a.peakKvUtilization, b.peakKvUtilization);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.resumes, b.resumes);
    EXPECT_EQ(a.recomputedPrefillTokens, b.recomputedPrefillTokens);
    EXPECT_EQ(a.evictionStallSeconds, b.evictionStallSeconds);
    EXPECT_EQ(a.swapInducedStallSeconds, b.swapInducedStallSeconds);
    EXPECT_EQ(a.handoffs, b.handoffs);
    EXPECT_EQ(a.prefillHandoffTokens, b.prefillHandoffTokens);
    EXPECT_EQ(a.shedRequests, b.shedRequests);
    EXPECT_EQ(a.evictionOrder, b.evictionOrder);
}

void
expectRecordsEqual(const std::vector<RequestRecord> &a,
                   const std::vector<RequestRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << "record " << i;
        EXPECT_EQ(a[i].arrivalSeconds, b[i].arrivalSeconds);
        EXPECT_EQ(a[i].admissionSeconds, b[i].admissionSeconds);
        EXPECT_EQ(a[i].firstTokenSeconds, b[i].firstTokenSeconds);
        EXPECT_EQ(a[i].finishSeconds, b[i].finishSeconds);
        EXPECT_EQ(a[i].outputTokens, b[i].outputTokens);
        EXPECT_EQ(a[i].preemptions, b[i].preemptions);
        EXPECT_EQ(a[i].stallSeconds, b[i].stallSeconds);
    }
}

struct DiffCase
{
    std::string name;
    ServingOptions opt;
    llm::SpeculativeConfig spec;
    StaticBatchMode mode;
    double rateRps = 100.0;
    std::uint32_t count = 48;
    std::uint64_t streamSeed = 7;
    llm::TraceCategory cat = llm::TraceCategory::GeneralQa;
    /** When nonzero, shrink the KV pool to about this many tokens
     *  per device (so decode growth actually hits capacity). */
    std::uint64_t poolTokens = 0;
};

/**
 * Drive both implementations in lockstep over the same stream and
 * assert equality at every step boundary and at the end (void so
 * gtest fatal asserts can return out of it; @p out receives the SoA
 * result so cases can assert the scenario they meant to exercise
 * actually occurred).
 */
void
runLockstepImpl(const DiffCase &c, ServingResult *out)
{
    SCOPED_TRACE(c.name);
    const PlatformConfig cfg = makePapiConfig();
    Platform papi(cfg);
    const llm::ModelConfig model = llm::llama65b();
    const auto reqs = stream(c.cat, c.rateRps, c.count,
                             c.streamSeed);

    ServingOptions opt = c.opt;
    if (c.poolTokens > 0)
        opt.kvCapacityOverrideBytes = llm::kvPoolBytesPerDevice(
            model, c.poolTokens, cfg.numAttnDevices);

    ServingSim soa(papi, c.spec, model, opt, {}, {}, c.mode);
    refimpl::ReferenceServingSim ref(papi, c.spec, model, opt, {},
                                     {}, c.mode);
    for (const auto &tr : reqs) {
        soa.deliver(tr);
        ref.deliver(tr);
    }

    std::vector<HandoffRecord> soaHandoffs;
    std::vector<HandoffRecord> refHandoffs;
    std::uint64_t steps = 0;
    while (soa.canStep() || ref.canStep()) {
        ASSERT_EQ(soa.canStep(), ref.canStep());
        ASSERT_EQ(soa.hasActive(), ref.hasActive());
        if (soa.hasActive()) {
            // The iteration plan the two cores computed must match
            // bit for bit BEFORE the step executes it.
            ASSERT_EQ(soa.peekIterationSeconds(),
                      ref.peekIterationSeconds())
                << "step " << steps;
        }
        soa.step();
        ref.step();
        ASSERT_EQ(soa.now(), ref.now()) << "step " << steps;
        ASSERT_EQ(soa.outstanding(), ref.outstanding());
        ASSERT_EQ(soa.preemptedCount(), ref.preemptedCount());
        if (soa.hasHandoffs() || ref.hasHandoffs()) {
            auto hs = soa.takeHandoffs();
            auto hr = ref.takeHandoffs();
            soaHandoffs.insert(soaHandoffs.end(), hs.begin(),
                               hs.end());
            refHandoffs.insert(refHandoffs.end(), hr.begin(),
                               hr.end());
        }
        ASSERT_LT(++steps, 2'000'000u) << "lockstep diverged into "
                                          "a non-terminating run";
    }

    ASSERT_EQ(soaHandoffs.size(), refHandoffs.size());
    for (std::size_t i = 0; i < soaHandoffs.size(); ++i) {
        EXPECT_EQ(soaHandoffs[i].request.request.id,
                  refHandoffs[i].request.request.id);
        EXPECT_EQ(soaHandoffs[i].readySeconds,
                  refHandoffs[i].readySeconds);
        EXPECT_EQ(soaHandoffs[i].kvTokens, refHandoffs[i].kvTokens);
        EXPECT_EQ(soaHandoffs[i].kvBlocks,
                  refHandoffs[i].kvBlocks);
        EXPECT_EQ(soaHandoffs[i].kvBytes, refHandoffs[i].kvBytes);
    }

    const ServingResult result = soa.finish();
    expectResultsEqual(result, ref.finish());
    expectRecordsEqual(soa.records(), ref.records());

    // The per-component split must agree too (it is derived from
    // the same plan fields the hot loop reorganized).
    const RunBreakdown &ba = soa.breakdown();
    const RunBreakdown &bb = ref.breakdown();
    EXPECT_EQ(ba.prefillSeconds, bb.prefillSeconds);
    EXPECT_EQ(ba.fcSeconds, bb.fcSeconds);
    EXPECT_EQ(ba.attnSeconds, bb.attnSeconds);
    EXPECT_EQ(ba.commSeconds, bb.commSeconds);
    EXPECT_EQ(ba.otherSeconds, bb.otherSeconds);
    *out = result;
}

ServingResult
runLockstep(const DiffCase &c)
{
    ServingResult result;
    runLockstepImpl(c, &result);
    return result;
}

// ------------------------------------------------------ the grid

TEST(SoaDiff, TokenLevelPlain)
{
    DiffCase c;
    c.name = "token-level, monolithic prefill";
    c.opt.maxRlp = 16;
    runLockstep(c);
}

TEST(SoaDiff, BatchLevelAdmission)
{
    DiffCase c;
    c.name = "batch-level fill rule";
    c.opt.maxRlp = 8;
    c.opt.admission = AdmissionPolicy::BatchLevel;
    c.opt.batchTimeoutSeconds = 0.05;
    runLockstep(c);
}

TEST(SoaDiff, ChunkedPrefill)
{
    DiffCase c;
    c.name = "chunked prefill";
    c.opt.maxRlp = 16;
    c.opt.prefillChunkTokens = 64;
    runLockstep(c);
}

TEST(SoaDiff, SpeculativeDecode)
{
    DiffCase c;
    c.name = "speculative decoding, token-level";
    c.opt.maxRlp = 16;
    c.spec.length = 4;
    c.spec.acceptanceRate = 0.7;
    runLockstep(c);
}

TEST(SoaDiff, PreemptRecompute)
{
    DiffCase c;
    c.name = "KV preemption, recompute policy";
    c.opt.maxRlp = 24;
    c.opt.preemptOnKvPressure = true;
    c.opt.preemptPolicy = KvPreemptPolicy::Recompute;
    // Long generations against a ~2k-token pool: decode growth
    // must hit capacity.
    c.cat = llm::TraceCategory::CreativeWriting;
    c.poolTokens = 2048;
    c.opt.maxRlp = 12;
    c.rateRps = 300.0;
    c.count = 24;
    c.streamSeed = 11;
    const ServingResult r = runLockstep(c);
    EXPECT_GT(r.preemptions, 0u) << "case exercised no evictions";
}

TEST(SoaDiff, PreemptSwapRestore)
{
    DiffCase c;
    c.name = "KV preemption, swap-restore policy";
    c.opt.maxRlp = 24;
    c.opt.preemptOnKvPressure = true;
    c.opt.preemptPolicy = KvPreemptPolicy::SwapRestore;
    c.opt.kvSwapGBps = 32.0;
    c.cat = llm::TraceCategory::CreativeWriting;
    c.poolTokens = 2048;
    c.opt.maxRlp = 12;
    c.rateRps = 300.0;
    c.count = 24;
    c.streamSeed = 11;
    const ServingResult r = runLockstep(c);
    EXPECT_GT(r.preemptions, 0u) << "case exercised no evictions";
}

TEST(SoaDiff, PreemptChunkedRecompute)
{
    DiffCase c;
    c.name = "chunked prefill + recompute preemption";
    c.opt.maxRlp = 24;
    c.opt.prefillChunkTokens = 128;
    c.opt.preemptOnKvPressure = true;
    c.opt.preemptPolicy = KvPreemptPolicy::Recompute;
    c.cat = llm::TraceCategory::CreativeWriting;
    c.poolTokens = 2048;
    c.opt.maxRlp = 12;
    c.rateRps = 300.0;
    c.count = 24;
    c.streamSeed = 11;
    const ServingResult r = runLockstep(c);
    EXPECT_GT(r.preemptions, 0u) << "case exercised no evictions";
}

TEST(SoaDiff, PrefillRole)
{
    DiffCase c;
    c.name = "disaggregated prefill pool, chunked";
    c.opt.maxRlp = 16;
    c.opt.role = ServingRole::Prefill;
    c.opt.prefillChunkTokens = 256;
    const ServingResult r = runLockstep(c);
    EXPECT_GT(r.handoffs, 0u) << "case exercised no handoffs";
}

TEST(SoaDiff, DeadlineShedding)
{
    DiffCase c;
    c.name = "SLO deadline shedding";
    c.opt.maxRlp = 4;
    c.opt.deadlineSeconds = 0.8;
    c.rateRps = 300.0;
    c.count = 64;
    const ServingResult r = runLockstep(c);
    EXPECT_GT(r.shedRequests, 0u) << "case exercised no shedding";
}

TEST(SoaDiff, StaticBatch)
{
    DiffCase c;
    c.name = "static batch (decode engine semantics)";
    c.opt.maxRlp = 16;
    c.opt.admission = AdmissionPolicy::BatchLevel;
    c.mode.enabled = true;
    c.mode.includePrefill = true;
    c.mode.recordTrace = true;
    c.rateRps = 1e9; // everything effectively arrives together
    c.count = 16;
    runLockstep(c);
}

TEST(SoaDiff, SeededGridFuzz)
{
    // A small randomized-by-seed grid on top of the directed cases:
    // every combination re-runs with three different arrival seeds
    // and mixed workload categories.
    const std::uint64_t seeds[] = {11, 23, 61};
    const llm::TraceCategory cats[] = {
        llm::TraceCategory::GeneralQa,
        llm::TraceCategory::PrefillHeavy,
    };
    const std::uint32_t chunks[] = {0, 96};
    for (std::uint64_t seed : seeds) {
        for (auto cat : cats) {
            for (std::uint32_t chunk : chunks) {
                DiffCase c;
                c.name = "fuzz seed=" + std::to_string(seed) +
                         " cat=" +
                         std::to_string(static_cast<int>(cat)) +
                         " chunk=" + std::to_string(chunk);
                c.opt.maxRlp = 12;
                c.opt.prefillChunkTokens = chunk;
                c.streamSeed = seed;
                c.cat = cat;
                c.count = 40;
                c.rateRps = 150.0;
                runLockstep(c);

                // Preempting variant of the same cell.
                DiffCase p = c;
                p.name += " preempt";
                p.opt.preemptOnKvPressure = true;
                p.opt.preemptPolicy =
                    (seed % 2) ? KvPreemptPolicy::Recompute
                               : KvPreemptPolicy::SwapRestore;
                // PrefillHeavy prompts alone can exceed a 2k
                // pool; 8k keeps single requests admissible while
                // still forcing evictions at RLP 12.
                p.poolTokens = 8192;
                p.opt.maxRlp = 12;
                runLockstep(p);
            }
        }
    }
}

} // namespace
