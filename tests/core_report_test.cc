/**
 * @file
 * Tests for the result reporting module.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::core;
using papi::sim::FatalError;

TEST(ReportTable, TextRenderingAligns)
{
    ReportTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"a-much-longer-name", "22"});
    std::ostringstream os;
    t.render(os, ReportFormat::Text);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
    // Three lines: header + two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(ReportTable, MarkdownHasSeparatorRow)
{
    ReportTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.render(os, ReportFormat::Markdown);
    std::string out = os.str();
    EXPECT_NE(out.find("| a | b |"), std::string::npos);
    EXPECT_NE(out.find("|---|---|"), std::string::npos);
    EXPECT_NE(out.find("| 1 | 2 |"), std::string::npos);
}

TEST(ReportTable, CsvQuotesSpecialCells)
{
    ReportTable t({"k", "v"});
    t.addRow({"plain", "with,comma"});
    t.addRow({"quote", "say \"hi\""});
    std::ostringstream os;
    t.render(os, ReportFormat::Csv);
    std::string out = os.str();
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(ReportTable, MisuseIsFatal)
{
    EXPECT_THROW(ReportTable({}), FatalError);
    ReportTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(ReportTable, NumFormatsPrecision)
{
    EXPECT_EQ(ReportTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(ReportTable::num(2.0, 0), "2");
}

TEST(Report, RunReportContainsAllFields)
{
    RunResult r;
    r.time.fcSeconds = 1.5;
    r.tokensGenerated = 321;
    r.energyJoules = 9.0;
    r.fcOnGpuIterations = 5;
    r.fcOnPimIterations = 7;
    r.reschedules = 2;
    std::ostringstream os;
    writeRunReport(os, "demo", r, ReportFormat::Csv);
    std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("321"), std::string::npos);
    EXPECT_NE(out.find("fc_gpu_iters"), std::string::npos);
}

TEST(Report, ServingReportContainsAllFields)
{
    ServingResult r;
    r.makespanSeconds = 12.0;
    r.admissions = 64;
    r.meanRlp = 17.5;
    r.peakKvUtilization = 0.42;
    std::ostringstream os;
    writeServingReport(os, "serve", r, ReportFormat::Markdown);
    std::string out = os.str();
    EXPECT_NE(out.find("serve"), std::string::npos);
    EXPECT_NE(out.find("17.50"), std::string::npos);
    EXPECT_NE(out.find("0.4200"), std::string::npos);
}

} // namespace
