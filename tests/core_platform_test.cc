/**
 * @file
 * Tests for platform composition and kernel-phase execution.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/platform.hh"
#include "llm/model_config.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::core;
namespace llm = papi::llm;
using papi::sim::FatalError;

TEST(PlatformFactories, NamesAndPolicies)
{
    EXPECT_EQ(makePapiConfig().fcPolicy, FcPolicy::Dynamic);
    EXPECT_EQ(makeA100AttAccConfig().fcPolicy, FcPolicy::AlwaysGpu);
    EXPECT_EQ(makeA100HbmPimConfig().fcPolicy, FcPolicy::AlwaysGpu);
    EXPECT_EQ(makeAttAccOnlyConfig().fcPolicy, FcPolicy::AlwaysPim);
    EXPECT_EQ(makePimOnlyPapiConfig().fcPolicy, FcPolicy::AlwaysPim);
    EXPECT_FALSE(makeAttAccOnlyConfig().hasGpu);
    EXPECT_FALSE(makePimOnlyPapiConfig().hasGpu);
}

TEST(PlatformFactories, NinetyHbmDevicesEverywhere)
{
    // Paper Section 7.1: every system has 90 HBM devices, 30 for FC
    // weights and 60 for attention.
    for (const auto &cfg :
         {makePapiConfig(), makeA100AttAccConfig(),
          makeA100HbmPimConfig(), makeAttAccOnlyConfig(),
          makePimOnlyPapiConfig()}) {
        EXPECT_EQ(cfg.numFcDevices, 30u) << cfg.name;
        EXPECT_EQ(cfg.numAttnDevices, 60u) << cfg.name;
    }
}

TEST(PlatformFactories, PapiUsesHybridPim)
{
    PlatformConfig papi = makePapiConfig();
    EXPECT_EQ(papi.fcDeviceConfig.xPyBLabel(), "4P1B");
    EXPECT_EQ(papi.attnDeviceConfig.xPyBLabel(), "1P2B");
    EXPECT_EQ(papi.fcDeviceConfig.capacityBytes(), 12ULL << 30);
}

TEST(Platform, GpulessPlatformRejectsGpuPolicies)
{
    PlatformConfig bad = makeAttAccOnlyConfig();
    bad.fcPolicy = FcPolicy::AlwaysGpu;
    EXPECT_THROW(Platform{bad}, FatalError);
}

TEST(Platform, StaticTargetMatchesPolicy)
{
    Platform gpu_fc(makeA100AttAccConfig());
    EXPECT_EQ(gpu_fc.staticFcTarget(), FcTarget::Gpu);
    Platform pim_fc(makeAttAccOnlyConfig());
    EXPECT_EQ(pim_fc.staticFcTarget(), FcTarget::FcPim);
    Platform papi(makePapiConfig());
    EXPECT_THROW(papi.staticFcTarget(), FatalError);
}

TEST(Platform, ValidateFitRejectsOversizedModels)
{
    Platform papi(makePapiConfig());
    llm::ModelConfig m = llm::gpt3_175b();
    EXPECT_NO_THROW(papi.validateFit(m, 1ULL << 30));
    // 30 x 12 GB = 360 GB of FC capacity; a 500 GB model must fail.
    llm::ModelConfig huge = m;
    huge.numLayers = 140;
    EXPECT_THROW(papi.validateFit(huge, 1ULL << 30), FatalError);
    // KV capacity is 60 x 16 GB = 960 GB.
    EXPECT_THROW(papi.validateFit(m, 1000ULL << 30), FatalError);
}

TEST(Platform, FcOnPimBeatsGpuAtLowParallelismOnly)
{
    // The premise of the whole paper (Fig. 4): PIM wins the FC
    // kernel at low batch/speculation, the GPU wins at high.
    Platform papi(makePapiConfig());
    llm::ModelConfig m = llm::gpt3_66b();
    double pim_lo = papi.fcExec(m, 2, FcTarget::FcPim).seconds;
    double gpu_lo = papi.fcExec(m, 2, FcTarget::Gpu).seconds;
    EXPECT_LT(pim_lo, gpu_lo);
    double pim_hi = papi.fcExec(m, 256, FcTarget::FcPim).seconds;
    double gpu_hi = papi.fcExec(m, 256, FcTarget::Gpu).seconds;
    EXPECT_LT(gpu_hi, pim_hi);
}

TEST(Platform, FcOnGpuLatencyFlatWhileMemoryBound)
{
    Platform papi(makePapiConfig());
    llm::ModelConfig m = llm::gpt3_66b();
    double t1 = papi.fcExec(m, 1, FcTarget::Gpu).seconds;
    double t64 = papi.fcExec(m, 64, FcTarget::Gpu).seconds;
    // Below the roofline ridge (~161), time barely moves.
    EXPECT_LT(t64 / t1, 1.2);
}

TEST(Platform, FcTargetsDisallowedWhereUnsupported)
{
    Platform baseline(makeA100AttAccConfig());
    llm::ModelConfig m = llm::gpt3_66b();
    // The baseline's FC stacks are plain memory - no PIM execution.
    EXPECT_THROW(baseline.fcExec(m, 4, FcTarget::FcPim), FatalError);
    EXPECT_THROW(baseline.fcExec(m, 0, FcTarget::Gpu), FatalError);
}

TEST(Platform, AttentionScalesWithContextAndRequests)
{
    Platform papi(makePapiConfig());
    llm::ModelConfig m = llm::llama65b();
    std::vector<std::uint32_t> short_ctx(4, 128);
    std::vector<std::uint32_t> long_ctx(4, 1024);
    std::vector<std::uint32_t> many_ctx(32, 128);
    // Compare the KV-streaming component; the per-layer fabric
    // latency is a constant floor independent of context size.
    auto gemv_seconds = [&](const std::vector<std::uint32_t> &ctx) {
        KernelExec e = papi.attnExec(m, ctx, 1);
        return e.seconds - e.commSeconds;
    };
    double t_short = gemv_seconds(short_ctx);
    double t_long = gemv_seconds(long_ctx);
    double t_many = gemv_seconds(many_ctx);
    EXPECT_GT(t_long, t_short * 3.0);
    EXPECT_GT(t_many, t_short * 3.0);
    EXPECT_THROW(papi.attnExec(m, {}, 1), FatalError);
}

TEST(Platform, HbmPimAttentionSlowerThanAttAcc)
{
    // The only difference between the two baselines is the attention
    // device (1P2B vs 1P1B), so HBM-PIM attention must be slower.
    Platform attacc(makeA100AttAccConfig());
    Platform hbmpim(makeA100HbmPimConfig());
    llm::ModelConfig m = llm::llama65b();
    std::vector<std::uint32_t> ctx(16, 512);
    double t_attacc = attacc.attnExec(m, ctx, 1).seconds;
    double t_hbmpim = hbmpim.attnExec(m, ctx, 1).seconds;
    EXPECT_GT(t_hbmpim, t_attacc);
}

TEST(Platform, PrefillComputeBoundOnGpu)
{
    Platform papi(makePapiConfig());
    llm::ModelConfig m = llm::llama65b();
    std::vector<std::uint32_t> prompts(16, 512);
    KernelExec pre = papi.prefillExec(m, prompts);
    EXPECT_GT(pre.seconds, 0.0);
    EXPECT_TRUE(pre.computeBound);
}

TEST(Platform, PrefillSlowerWithoutGpu)
{
    Platform papi(makePapiConfig());
    Platform pim_only(makePimOnlyPapiConfig());
    llm::ModelConfig m = llm::llama65b();
    std::vector<std::uint32_t> prompts(16, 512);
    double with_gpu = papi.prefillExec(m, prompts).seconds;
    double without = pim_only.prefillExec(m, prompts).seconds;
    EXPECT_GT(without, with_gpu * 2.0);
}

TEST(Platform, CommIncludedInPimFcPhase)
{
    Platform papi(makePapiConfig());
    llm::ModelConfig m = llm::llama65b();
    KernelExec fc = papi.fcExec(m, 4, FcTarget::FcPim);
    EXPECT_GT(fc.commSeconds, 0.0);
    EXPECT_LT(fc.commSeconds, fc.seconds);
    KernelExec at = papi.attnExec(m, {128, 128}, 1);
    EXPECT_GT(at.commSeconds, 0.0);
}

TEST(Platform, GpulessAttentionCommCostsMore)
{
    // Disaggregated PIM with host staging pays two hops per
    // direction.
    Platform papi(makePapiConfig());
    Platform pim_only(makePimOnlyPapiConfig());
    llm::ModelConfig m = llm::llama65b();
    std::vector<std::uint32_t> ctx(8, 256);
    EXPECT_GT(pim_only.attnExec(m, ctx, 1).commSeconds,
              papi.attnExec(m, ctx, 1).commSeconds);
}

TEST(Platform, EnergyPositiveAndFinite)
{
    Platform papi(makePapiConfig());
    llm::ModelConfig m = llm::gpt3_66b();
    for (auto target : {FcTarget::Gpu, FcTarget::FcPim}) {
        KernelExec e = papi.fcExec(m, 8, target);
        EXPECT_GT(e.energyJoules, 0.0);
        EXPECT_TRUE(std::isfinite(e.energyJoules));
    }
}

TEST(Platform, PolicyAndTargetNames)
{
    EXPECT_STREQ(fcPolicyName(FcPolicy::Dynamic), "dynamic");
    EXPECT_STREQ(fcPolicyName(FcPolicy::AlwaysGpu), "always-gpu");
    EXPECT_STREQ(fcTargetName(FcTarget::Gpu), "gpu");
    EXPECT_STREQ(fcTargetName(FcTarget::FcPim), "fc-pim");
}

} // namespace
