/**
 * @file
 * Tests for the logging/error-reporting facilities.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/logging.hh"

namespace {

using namespace papi::sim;

TEST(Logging, PanicCarriesMessage)
{
    try {
        panic("bad thing ", 42, " happened");
        FAIL() << "panic returned";
    } catch (const PanicError &e) {
        EXPECT_EQ(std::string(e.what()),
                  "panic: bad thing 42 happened");
    }
}

TEST(Logging, FatalCarriesMessage)
{
    try {
        fatal("user error: ", 3.5);
        FAIL() << "fatal returned";
    } catch (const FatalError &e) {
        EXPECT_EQ(std::string(e.what()), "fatal: user error: 3.5");
    }
}

TEST(Logging, PanicAndFatalAreDistinctTypes)
{
    // panic() signals simulator bugs, fatal() user errors - tests
    // and embedders must be able to tell them apart.
    EXPECT_THROW(panic("x"), PanicError);
    EXPECT_THROW(fatal("x"), FatalError);
    bool caught_logic = false;
    try {
        panic("x");
    } catch (const std::logic_error &) {
        caught_logic = true;
    }
    EXPECT_TRUE(caught_logic);
    bool caught_runtime = false;
    try {
        fatal("x");
    } catch (const std::runtime_error &) {
        caught_runtime = true;
    }
    EXPECT_TRUE(caught_runtime);
}

TEST(Logging, EnableDisableToggle)
{
    EXPECT_TRUE(logEnabled());
    setLogEnabled(false);
    EXPECT_FALSE(logEnabled());
    // warn/inform must be safe (and silent) while disabled.
    warn("suppressed warning ", 1);
    inform("suppressed info ", 2);
    setLogEnabled(true);
    EXPECT_TRUE(logEnabled());
}

TEST(Logging, StreamedArgumentsConcatenate)
{
    try {
        fatal("a=", 1, " b=", 2.5, " c=", "three");
    } catch (const FatalError &e) {
        EXPECT_EQ(std::string(e.what()),
                  "fatal: a=1 b=2.5 c=three");
    }
}

} // namespace
