/**
 * @file
 * Tests for PIM configurations, the area model, and the cycle-level
 * GEMV engine - the mechanisms behind the paper's Sections 6.1/6.2.
 */

#include <gtest/gtest.h>

#include "pim/area_model.hh"
#include "pim/gemv_engine.hh"
#include "pim/pim_config.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::pim;
using papi::sim::FatalError;

TEST(PimConfig, PresetLabelsAndShapes)
{
    EXPECT_EQ(attAccConfig().xPyBLabel(), "1P1B");
    EXPECT_EQ(hbmPimConfig().xPyBLabel(), "1P2B");
    EXPECT_EQ(fcPimConfig().xPyBLabel(), "4P1B");
    EXPECT_EQ(attnPimConfig().xPyBLabel(), "1P2B");
}

TEST(PimConfig, CapacitiesMatchPaper)
{
    // AttAcc / HBM-PIM / Attn-PIM devices: 16 GB. FC-PIM: 12 GB.
    EXPECT_EQ(attAccConfig().capacityBytes(), 16ULL << 30);
    EXPECT_EQ(hbmPimConfig().capacityBytes(), 16ULL << 30);
    EXPECT_EQ(attnPimConfig().capacityBytes(), 16ULL << 30);
    EXPECT_EQ(fcPimConfig().capacityBytes(), 12ULL << 30);
}

TEST(PimConfig, FpuCountsFollowXPyB)
{
    // 1P1B on 128 banks -> 128 FPUs; 1P2B -> 64; 4P1B on 96 -> 384.
    EXPECT_DOUBLE_EQ(attAccConfig().totalFpus(), 128.0);
    EXPECT_DOUBLE_EQ(hbmPimConfig().totalFpus(), 64.0);
    EXPECT_DOUBLE_EQ(fcPimConfig().totalFpus(), 384.0);
    EXPECT_DOUBLE_EQ(attnPimConfig().totalFpus(), 64.0);
}

TEST(PimConfig, FpuPeakFlops)
{
    FpuSpec fpu;
    // 16 lanes x 2 FLOPs x 666 MHz = 21.3 GFLOP/s.
    EXPECT_NEAR(fpu.peakFlops(), 21.3e9, 0.1e9);
}

TEST(AreaModel, PaperEquationThreeReproduced)
{
    AreaModel area;
    // m (n A_FPU + A_bank) <= 121 with n=4 -> m <= 97 (paper: "the
    // maximum number of memory banks must be smaller than 97").
    EXPECT_EQ(area.maxBanksPerDie(4.0), 97u);
    EXPECT_TRUE(area.fits(96, 4.0));
    EXPECT_FALSE(area.fits(98, 4.0));
}

TEST(AreaModel, FewerFpusAllowMoreBanks)
{
    AreaModel area;
    EXPECT_GT(area.maxBanksPerDie(0.5), area.maxBanksPerDie(1.0));
    EXPECT_GT(area.maxBanksPerDie(1.0), area.maxBanksPerDie(4.0));
    // A compute-free die fits floor(121 / 0.83) = 145 banks.
    EXPECT_EQ(area.maxBanksPerDie(0.0), 145u);
}

TEST(AreaModel, UsedAreaIsLinear)
{
    AreaModel area;
    EXPECT_NEAR(area.usedArea(96, 4.0), 96 * (4 * 0.1025 + 0.83),
                1e-9);
    EXPECT_THROW(area.usedArea(1, -1.0), FatalError);
    EXPECT_THROW(AreaModel(0.0, 0.1, 121.0), FatalError);
}

class GemvEngineTest : public ::testing::Test
{
  protected:
    static GemvResult
    run(const PimConfig &cfg, std::uint64_t bytes, std::uint32_t reuse)
    {
        GemvEngine engine(cfg);
        return engine.run(bytes, reuse);
    }
};

TEST_F(GemvEngineTest, ZeroBytesIsFree)
{
    GemvResult r = run(attAccConfig(), 0, 1);
    EXPECT_EQ(r.ticks, 0u);
    EXPECT_EQ(r.activations, 0u);
}

TEST_F(GemvEngineTest, StreamsAllBytes)
{
    const std::uint64_t bytes = 16 * 1024;
    GemvResult r = run(attAccConfig(), bytes, 1);
    EXPECT_EQ(r.streamedBytes, bytes * attAccConfig().dramSpec.org
                                           .banks());
    EXPECT_EQ(r.activations, 16u * attAccConfig().dramSpec.org.banks());
}

TEST_F(GemvEngineTest, FlopsScaleWithReuse)
{
    const std::uint64_t bytes = 8 * 1024;
    GemvResult r1 = run(attAccConfig(), bytes, 1);
    GemvResult r4 = run(attAccConfig(), bytes, 4);
    EXPECT_NEAR(r4.flops, 4.0 * r1.flops, 1.0);
}

TEST_F(GemvEngineTest, TimingAboveAnalyticLowerBound)
{
    GemvEngine engine(fcPimConfig());
    for (std::uint32_t reuse : {1u, 2u, 8u, 32u, 128u}) {
        auto r = engine.run(32 * 1024, reuse);
        EXPECT_GE(r.ticks, engine.analyticLowerBound(32 * 1024, reuse))
            << "reuse=" << reuse;
        // ...but within 2x of it (row overheads only).
        EXPECT_LE(r.ticks,
                  2 * engine.analyticLowerBound(32 * 1024, reuse) +
                      100000)
            << "reuse=" << reuse;
    }
}

TEST_F(GemvEngineTest, MemoryBoundBelowBalancePoint)
{
    // 4P1B: compute matches the streaming cadence around
    // reuse ~= 4 x tCCD_S / tFpuCycle ~= 8; well below that the
    // kernel must be memory-bound and its latency reuse-independent.
    GemvResult r1 = run(fcPimConfig(), 48 * 1024, 1);
    GemvResult r4 = run(fcPimConfig(), 48 * 1024, 4);
    EXPECT_FALSE(r1.computeBound);
    EXPECT_NEAR(static_cast<double>(r4.ticks),
                static_cast<double>(r1.ticks),
                0.05 * static_cast<double>(r1.ticks));
}

TEST_F(GemvEngineTest, ComputeBoundAboveBalancePoint)
{
    GemvResult lo = run(fcPimConfig(), 48 * 1024, 8);
    GemvResult hi = run(fcPimConfig(), 48 * 1024, 64);
    EXPECT_TRUE(hi.computeBound);
    // Beyond the balance point latency grows ~linearly with reuse.
    double ratio = static_cast<double>(hi.ticks) /
                   static_cast<double>(lo.ticks);
    EXPECT_GT(ratio, 4.0);
    EXPECT_LT(ratio, 10.0);
}

TEST_F(GemvEngineTest, MoreFpusPushBalancePointOut)
{
    // At reuse 16, 1P1B is deep into compute-bound territory while
    // 4P1B has 4x the FPU throughput.
    GemvResult attacc = run(attAccConfig(), 48 * 1024, 16);
    GemvResult fcpim = run(fcPimConfig(), 48 * 1024, 16);
    double ratio = static_cast<double>(attacc.ticks) /
                   static_cast<double>(fcpim.ticks);
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.0);
}

TEST_F(GemvEngineTest, HalfFpuPerBankIsTwiceSlowerWhenComputeBound)
{
    // 1P2B vs 1P1B on the same bytes at reuse 4: both compute-bound,
    // 1P2B has half the FPU-per-bank throughput.
    GemvResult full = run(attAccConfig(), 48 * 1024, 4);
    GemvResult half = run(hbmPimConfig(), 48 * 1024, 4);
    double ratio = static_cast<double>(half.ticks) /
                   static_cast<double>(full.ticks);
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.4);
}

TEST_F(GemvEngineTest, LinearScalingForLargeShards)
{
    GemvEngine engine(attAccConfig());
    auto small = engine.run(48 * 1024, 2);   // exact path
    auto large = engine.run(480 * 1024, 2);  // scaled path
    double ratio = static_cast<double>(large.ticks) /
                   static_cast<double>(small.ticks);
    EXPECT_NEAR(ratio, 10.0, 0.2);
    EXPECT_EQ(large.activations, 480u *
              attAccConfig().dramSpec.org.banks());
}

TEST_F(GemvEngineTest, PartialTailRowHandled)
{
    GemvEngine engine(attAccConfig());
    // 1.5 rows per bank.
    auto r = engine.run(1536, 1);
    EXPECT_EQ(r.activations, 2u * attAccConfig().dramSpec.org.banks());
    EXPECT_EQ(r.streamedBytes,
              1536u * attAccConfig().dramSpec.org.banks());
}

TEST_F(GemvEngineTest, ResultsAreDeterministic)
{
    GemvEngine a(fcPimConfig());
    GemvEngine b(fcPimConfig());
    auto ra = a.run(37 * 1024 + 96, 7);
    auto rb = b.run(37 * 1024 + 96, 7);
    EXPECT_EQ(ra.ticks, rb.ticks);
    EXPECT_EQ(ra.activations, rb.activations);
    EXPECT_EQ(ra.streamedBytes, rb.streamedBytes);
}

TEST_F(GemvEngineTest, ZeroReuseIsFatal)
{
    GemvEngine engine(attAccConfig());
    EXPECT_THROW(engine.run(1024, 0), FatalError);
    EXPECT_THROW(engine.computeTicksPerColumn(0), FatalError);
}

/** Property sweep: latency is monotone non-decreasing in reuse. */
class GemvMonotonicity
    : public ::testing::TestWithParam<const char *>
{
  protected:
    static PimConfig
    configFor(const std::string &name)
    {
        if (name == "attacc")
            return attAccConfig();
        if (name == "hbm-pim")
            return hbmPimConfig();
        if (name == "fc-pim")
            return fcPimConfig();
        return attnPimConfig();
    }
};

TEST_P(GemvMonotonicity, LatencyMonotoneInReuse)
{
    GemvEngine engine(configFor(GetParam()));
    std::uint64_t prev = 0;
    for (std::uint32_t reuse = 1; reuse <= 256; reuse *= 2) {
        auto r = engine.run(24 * 1024, reuse);
        EXPECT_GE(r.ticks, prev) << "reuse=" << reuse;
        prev = r.ticks;
    }
}

TEST_P(GemvMonotonicity, LatencyMonotoneInBytes)
{
    GemvEngine engine(configFor(GetParam()));
    std::uint64_t prev = 0;
    for (std::uint64_t kb = 1; kb <= 256; kb *= 4) {
        auto r = engine.run(kb * 1024, 4);
        EXPECT_GT(r.ticks, prev) << "kb=" << kb;
        prev = r.ticks;
    }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, GemvMonotonicity,
                         ::testing::Values("attacc", "hbm-pim",
                                           "fc-pim", "attn-pim"));

} // namespace
