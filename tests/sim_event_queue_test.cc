/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clocked.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::sim;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, ExecutesEventAtScheduledTick)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(1); }, defaultPriority);
    eq.schedule(50, [&] { order.push_back(2); }, defaultPriority);
    eq.schedule(50, [&] { order.push_back(0); }, -5);
    eq.schedule(50, [&] { order.push_back(3); }, statsPriority);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), PanicError);
}

TEST(EventQueue, NullEventPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(10, std::function<void()>{}), PanicError);
}

TEST(EventQueue, ReentrantScheduling)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleAfter(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, HorizonStopsExecution)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, ClearDropsPendingEvents)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.clear();
    eq.run();
    EXPECT_EQ(count, 0);
}

TEST(EventQueue, ExecutedCounterAdvances)
{
    EventQueue eq;
    for (Tick t = 1; t <= 7; ++t)
        eq.schedule(t, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(Clocked, PeriodConversionRoundTrip)
{
    Clocked c(periodFromMhz(666.0));
    EXPECT_EQ(c.clockPeriod(), 1502u); // 1/666 MHz in ps, rounded
    EXPECT_EQ(c.cyclesToTicks(10), 15020u);
    EXPECT_EQ(c.ticksToCycles(15020), 10u);
    EXPECT_EQ(c.ticksToCycles(15021), 11u); // rounds up
}

TEST(Clocked, NextCycleEdge)
{
    Clocked c(1000);
    EXPECT_EQ(c.nextCycleEdge(0), 0u);
    EXPECT_EQ(c.nextCycleEdge(1), 1000u);
    EXPECT_EQ(c.nextCycleEdge(1000), 1000u);
    EXPECT_EQ(c.nextCycleEdge(1001), 2000u);
}

TEST(Clocked, ZeroPeriodIsFatal)
{
    EXPECT_THROW(Clocked c(0), FatalError);
}

TEST(Clocked, FrequencyHz)
{
    Clocked c(oneNs); // 1 ns period = 1 GHz
    EXPECT_NEAR(c.frequencyHz(), 1e9, 1e3);
}

} // namespace
