/**
 * @file
 * Unit tests for the discrete-event simulation kernel.
 *
 * Besides the interface contract, this file proves the calendar-queue
 * EventQueue equivalent to the original binary-heap implementation
 * (kept as LegacyEventQueue): a lockstep fuzz over randomized
 * schedules asserts identical execution order, calendar bucket/window
 * boundaries are probed explicitly, and fixed-seed serving/DRAM runs
 * are pinned to the metrics recorded before the queue swap.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "core/platform.hh"
#include "core/serving_engine.hh"
#include "dram/controller.hh"
#include "llm/trace.hh"
#include "sim/clocked.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace {

using namespace papi::sim;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, ExecutesEventAtScheduledTick)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(1); }, defaultPriority);
    eq.schedule(50, [&] { order.push_back(2); }, defaultPriority);
    eq.schedule(50, [&] { order.push_back(0); }, -5);
    eq.schedule(50, [&] { order.push_back(3); }, statsPriority);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), PanicError);
}

TEST(EventQueue, NullEventPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(10, std::function<void()>{}), PanicError);
}

TEST(EventQueue, ReentrantScheduling)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleAfter(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, HorizonStopsExecution)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, ClearDropsPendingEvents)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.clear();
    eq.run();
    EXPECT_EQ(count, 0);
}

TEST(EventQueue, ExecutedCounterAdvances)
{
    EventQueue eq;
    for (Tick t = 1; t <= 7; ++t)
        eq.schedule(t, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

// ---------------------------------------------------------------------
// Calendar bucket / window boundary cases
// ---------------------------------------------------------------------

TEST(EventQueue, BucketBoundaryTicksStayOrdered)
{
    EventQueue eq;
    const Tick w = EventQueue::bucketWidth();
    std::vector<Tick> order;
    // Straddle the first few bucket boundaries, scheduled shuffled.
    std::vector<Tick> ticks = {w,     w - 1, 2 * w + 1, 0,
                               w + 1, 2 * w, 2 * w - 1, 1};
    for (Tick t : ticks)
        eq.schedule(t, [t, &order] { order.push_back(t); });
    eq.run();
    std::vector<Tick> sorted = ticks;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(order, sorted);
}

TEST(EventQueue, SameTickAcrossBucketBoundaryUsesInsertionOrder)
{
    EventQueue eq;
    const Tick w = EventQueue::bucketWidth();
    std::vector<int> order;
    // Same tick scheduled before and after the bucket becomes
    // current: the second is re-entrant (spill store) and must still
    // run after the first.
    eq.schedule(w, [&] {
        order.push_back(0);
        eq.schedule(w, [&] { order.push_back(2); });
        eq.schedule(w, [&] { order.push_back(3); }, -10);
    });
    eq.schedule(w, [&] { order.push_back(1); });
    eq.run();
    // Priority -10 beats the earlier-inserted default-priority event.
    EXPECT_EQ(order, (std::vector<int>{0, 3, 1, 2}));
}

TEST(EventQueue, FarFutureEventsGoThroughOverflow)
{
    EventQueue eq;
    const Tick span =
        EventQueue::bucketWidth() * EventQueue::numBuckets();
    std::vector<int> order;
    eq.schedule(10 * span, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(0); });
    eq.schedule(span + 3, [&] { order.push_back(1); });
    eq.schedule(20 * span, [&] { order.push_back(3); });
    EXPECT_EQ(eq.pending(), 4u);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.now(), 20 * span);
}

TEST(EventQueue, OverflowRefillPreservesTieBreaks)
{
    EventQueue eq;
    const Tick span =
        EventQueue::bucketWidth() * EventQueue::numBuckets();
    const Tick far = 3 * span + 17;
    std::vector<int> order;
    // Two same-tick events via overflow, then (after the window
    // jumped) a third directly into the bucket; seq order must hold.
    eq.schedule(far, [&] { order.push_back(0); });
    eq.schedule(far, [&] { order.push_back(1); });
    eq.schedule(1, [&] {
        // Runs first; once it finishes, the queue jumps its window
        // to `far`, pulling both overflow events into a bucket.
    });
    eq.step();
    eq.schedule(far, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ReentrantClearFromInsideEvent)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(1, [&] {
        ++ran;
        eq.clear(); // must not free this closure's storage mid-run
        eq.schedule(eq.now() + 5, [&] { ++ran; });
    });
    eq.schedule(2, [&] { ran += 100; }); // dropped by clear()
    eq.run();
    EXPECT_EQ(ran, 2);
}

// ---------------------------------------------------------------------
// Determinism: calendar queue vs the original binary-heap queue
// ---------------------------------------------------------------------

/** Drive a randomized, partly re-entrant schedule; log execution. */
template <typename Queue>
std::vector<std::uint64_t>
runLockstepScenario(std::uint64_t seed)
{
    Rng rng(seed);
    Queue q;
    std::vector<std::uint64_t> log;
    std::uint64_t next_id = 0;

    const Tick w = EventQueue::bucketWidth();
    const Tick span = w * EventQueue::numBuckets();

    std::function<void(int)> chain = [&](int depth) {
        log.push_back(q.now());
        if (depth > 0) {
            // Re-entrant: same tick, same bucket, next bucket, or
            // far future, with varying priorities.
            Tick offsets[] = {0, 1, w / 2, w, 3 * w, span + 11};
            Tick off = offsets[rng.uniformInt(0, 5)];
            Priority prio =
                static_cast<Priority>(rng.uniformInt(-2, 2));
            std::uint64_t id = next_id++;
            q.schedule(q.now() + off,
                       [&, id, depth] {
                           log.push_back(id);
                           chain(depth - 1);
                       },
                       prio);
        }
    };

    // Seed the queue with a randomized batch.
    for (int i = 0; i < 200; ++i) {
        Tick when = static_cast<Tick>(rng.uniformInt(0, 4 * span));
        Priority prio =
            static_cast<Priority>(rng.uniformInt(-3, 3));
        std::uint64_t id = next_id++;
        int depth = static_cast<int>(rng.uniformInt(0, 3));
        q.schedule(when,
                   [&, id, depth] {
                       log.push_back(id);
                       chain(depth);
                   },
                   prio);
    }
    q.run();
    return log;
}

class QueueEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QueueEquivalence, LockstepExecutionOrderMatchesLegacy)
{
    auto calendar = runLockstepScenario<EventQueue>(GetParam());
    auto heap = runLockstepScenario<LegacyEventQueue>(GetParam());
    ASSERT_EQ(calendar.size(), heap.size());
    EXPECT_EQ(calendar, heap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueEquivalence,
                         ::testing::Values(1u, 7u, 42u, 1234u,
                                           987654321u));

// ---------------------------------------------------------------------
// Regression pins: fixed-seed runs recorded before the queue swap
// ---------------------------------------------------------------------

/**
 * The golden metrics below were recorded on this repository's
 * pre-change simulator (binary-heap EventQueue, polling controller)
 * and must survive every perf refactor bit-for-bit: the perf work is
 * only legal if simulation results are unchanged.
 */
TEST(DeterminismRegression, FixedSeedServingRunMetricsPinned)
{
    papi::core::Platform papi_sys(papi::core::makePapiConfig());
    papi::llm::ModelConfig model = papi::llm::llama65b();
    papi::llm::TraceGenerator gen(
        papi::llm::TraceCategory::CreativeWriting, 42);
    auto reqs = gen.generate(24);
    std::vector<papi::llm::TimedRequest> stream;
    double t = 0.0;
    for (auto &r : reqs) {
        papi::llm::TimedRequest tr;
        tr.request = r;
        tr.arrivalSeconds = t;
        t += 0.05;
        stream.push_back(tr);
    }
    papi::llm::SpeculativeConfig spec;
    spec.length = 4;
    papi::core::ServingOptions opt;
    opt.maxRlp = 16;
    opt.alpha = 24.0;
    opt.seed = 7;
    papi::core::ServingEngine serving(papi_sys);
    auto sr = serving.run(stream, spec, model, opt);

    EXPECT_NEAR(sr.makespanSeconds, 4.0089930501254738, 1e-9);
    EXPECT_NEAR(sr.energyJoules, 6589.4000538320388, 1e-5);
    EXPECT_EQ(sr.iterations, 277u);
    EXPECT_EQ(sr.tokensGenerated, 9946u);
    EXPECT_EQ(sr.admissions, 24u);
    EXPECT_EQ(sr.reschedules, 2u);
    EXPECT_EQ(sr.fcOnGpuIterations, 170u);
    EXPECT_EQ(sr.fcOnPimIterations, 107u);
    EXPECT_NEAR(sr.meanLatencySeconds, 1.876133530941029, 1e-9);
    EXPECT_NEAR(sr.p95LatencySeconds, 3.1589930501254737, 1e-9);
    EXPECT_NEAR(sr.meanRlp, 9.7438826274548873, 1e-9);
    EXPECT_NEAR(sr.peakKvUtilization, 0.023553382233088834, 1e-12);
}

TEST(DeterminismRegression, FixedSeedDramRunCompletionsPinned)
{
    // Completion-tick hash chain over a mixed read/write stream: any
    // change to command scheduling or timing shows up here.
    EventQueue eq;
    papi::dram::MemController ctrl(
        eq, papi::dram::hbm3Spec(),
        papi::dram::SchedulingPolicy::FrFcfs,
        papi::dram::MappingPolicy::RoCoBaBg, /*queue_depth=*/0);
    ctrl.setRefreshEnabled(false);
    std::uint64_t checksum = 0;
    std::uint64_t n_done = 0;
    for (int i = 0; i < 512; ++i) {
        papi::dram::MemRequest r;
        r.addr = static_cast<std::uint64_t>(i) * 4096 + (i % 7) * 32;
        r.isWrite = (i % 5 == 0);
        r.onComplete = [&](Tick tick) {
            checksum = checksum * 1000003ULL + tick;
            ++n_done;
        };
        ASSERT_TRUE(ctrl.enqueue(std::move(r)));
    }
    eq.run();
    EXPECT_EQ(n_done, 512u);
    EXPECT_EQ(checksum, 11098326732074103880ULL);
    EXPECT_EQ(eq.now(), 14647008u);
}

TEST(Clocked, PeriodConversionRoundTrip)
{
    Clocked c(periodFromMhz(666.0));
    EXPECT_EQ(c.clockPeriod(), 1502u); // 1/666 MHz in ps, rounded
    EXPECT_EQ(c.cyclesToTicks(10), 15020u);
    EXPECT_EQ(c.ticksToCycles(15020), 10u);
    EXPECT_EQ(c.ticksToCycles(15021), 11u); // rounds up
}

TEST(Clocked, NextCycleEdge)
{
    Clocked c(1000);
    EXPECT_EQ(c.nextCycleEdge(0), 0u);
    EXPECT_EQ(c.nextCycleEdge(1), 1000u);
    EXPECT_EQ(c.nextCycleEdge(1000), 1000u);
    EXPECT_EQ(c.nextCycleEdge(1001), 2000u);
}

TEST(Clocked, ZeroPeriodIsFatal)
{
    EXPECT_THROW(Clocked c(0), FatalError);
}

TEST(Clocked, FrequencyHz)
{
    Clocked c(oneNs); // 1 ns period = 1 GHz
    EXPECT_NEAR(c.frequencyHz(), 1e9, 1e3);
}

} // namespace
