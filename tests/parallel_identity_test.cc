/**
 * @file
 * The differential determinism harness for parallel cluster
 * simulation: for a seeded grid of cluster configurations spanning
 * every serving feature (replica counts, router policies,
 * tensor-parallel groups, disaggregation, continuous batching with
 * chunked prefill, KV-pressure preemption, fault plans, deadlines),
 * a run sharded across worker threads must be *byte-for-byte*
 * identical to the single-threaded run of the same configuration -
 * every ClusterResult aggregate, every per-replica ServingResult,
 * and an FNV-1a hash over every per-request timeline. The
 * single-threaded schedule is itself pinned by the existing suite,
 * so equality here extends those pins to every worker count.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_engine.hh"
#include "cluster/router.hh"
#include "core/platform.hh"
#include "core/serving_engine.hh"
#include "llm/arrival.hh"
#include "llm/kv_cache.hh"
#include "llm/model_config.hh"
#include "sim/fault_plan.hh"

namespace {

using namespace papi::cluster;
namespace core = papi::core;
namespace llm = papi::llm;
namespace sim = papi::sim;

// ------------------------------------------------------------------
// Per-request timeline hashing: FNV-1a over the bit patterns of
// every field, so any drift - even one ULP in one timestamp of one
// request - changes the hash.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
}

void
fnvMix(std::uint64_t &h, double v)
{
    fnvMix(h, std::bit_cast<std::uint64_t>(v));
}

/** Order-sensitive hash of every request's full timeline. */
std::uint64_t
timelineHash(const ClusterResult &r)
{
    std::uint64_t h = kFnvOffset;
    for (const core::RequestRecord &rec : r.records) {
        fnvMix(h, rec.id);
        fnvMix(h, rec.arrivalSeconds);
        fnvMix(h, rec.admissionSeconds);
        fnvMix(h, rec.firstTokenSeconds);
        fnvMix(h, rec.finishSeconds);
        fnvMix(h, static_cast<std::uint64_t>(rec.outputTokens));
        fnvMix(h, static_cast<std::uint64_t>(rec.preemptions));
        fnvMix(h, rec.stallSeconds);
    }
    return h;
}

// ------------------------------------------------------------------
// Byte-identity comparators (every field, no tolerance).

void
expectByteIdentical(const core::ServingResult &a,
                    const core::ServingResult &b)
{
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_EQ(a.admissions, b.admissions);
    EXPECT_EQ(a.shedRequests, b.shedRequests);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.resumes, b.resumes);
    EXPECT_EQ(a.recomputedPrefillTokens, b.recomputedPrefillTokens);
    EXPECT_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_EQ(a.p95LatencySeconds, b.p95LatencySeconds);
    EXPECT_EQ(a.meanRlp, b.meanRlp);
    EXPECT_EQ(a.peakKvUtilization, b.peakKvUtilization);
}

void
expectClusterByteIdentical(const ClusterResult &a,
                           const ClusterResult &b)
{
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.requestsServed, b.requestsServed);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_EQ(a.requestsOffered, b.requestsOffered);
    EXPECT_EQ(a.failedRequests, b.failedRequests);
    EXPECT_EQ(a.shedRequests, b.shedRequests);
    EXPECT_EQ(a.retriedRequests, b.retriedRequests);
    EXPECT_EQ(a.retryRecomputedTokens, b.retryRecomputedTokens);
    EXPECT_EQ(a.injectedCrashes, b.injectedCrashes);
    EXPECT_EQ(a.replicaRestarts, b.replicaRestarts);
    EXPECT_EQ(a.kvTransfers, b.kvTransfers);
    EXPECT_EQ(a.kvTransferBytes, b.kvTransferBytes);
    EXPECT_EQ(a.kvTransferSeconds, b.kvTransferSeconds);
    EXPECT_EQ(a.kvTransferJoules, b.kvTransferJoules);
    EXPECT_EQ(a.kvTransferFallbacks, b.kvTransferFallbacks);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.resumes, b.resumes);
    EXPECT_EQ(a.sloAttainment, b.sloAttainment);
    EXPECT_EQ(a.goodputTokensPerSecond, b.goodputTokensPerSecond);
    EXPECT_EQ(a.ttft.p50, b.ttft.p50);
    EXPECT_EQ(a.ttft.p95, b.ttft.p95);
    EXPECT_EQ(a.ttft.p99, b.ttft.p99);
    EXPECT_EQ(a.tpot.p50, b.tpot.p50);
    EXPECT_EQ(a.tpot.p99, b.tpot.p99);
    EXPECT_EQ(a.latency.p99, b.latency.p99);
    EXPECT_EQ(a.queueing.p99, b.queueing.p99);
    EXPECT_EQ(a.preemptionStall.p99, b.preemptionStall.p99);
    EXPECT_EQ(a.meanTtftSeconds, b.meanTtftSeconds);
    EXPECT_EQ(a.meanTpotSeconds, b.meanTpotSeconds);
    EXPECT_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_EQ(a.meanQueueingSeconds, b.meanQueueingSeconds);
    EXPECT_EQ(a.meanPreemptionStallSeconds,
              b.meanPreemptionStallSeconds);
    ASSERT_EQ(a.groupUtilization.size(), b.groupUtilization.size());
    for (std::size_t g = 0; g < a.groupUtilization.size(); ++g)
        EXPECT_EQ(a.groupUtilization[g], b.groupUtilization[g]);
    ASSERT_EQ(a.replicaDowntimeSeconds.size(),
              b.replicaDowntimeSeconds.size());
    for (std::size_t g = 0; g < a.replicaDowntimeSeconds.size(); ++g)
        EXPECT_EQ(a.replicaDowntimeSeconds[g],
                  b.replicaDowntimeSeconds[g]);
    ASSERT_EQ(a.perGroup.size(), b.perGroup.size());
    for (std::size_t g = 0; g < a.perGroup.size(); ++g)
        expectByteIdentical(a.perGroup[g], b.perGroup[g]);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].id, b.records[i].id);
        EXPECT_EQ(a.records[i].arrivalSeconds,
                  b.records[i].arrivalSeconds);
        EXPECT_EQ(a.records[i].admissionSeconds,
                  b.records[i].admissionSeconds);
        EXPECT_EQ(a.records[i].firstTokenSeconds,
                  b.records[i].firstTokenSeconds);
        EXPECT_EQ(a.records[i].finishSeconds,
                  b.records[i].finishSeconds);
        EXPECT_EQ(a.records[i].outputTokens,
                  b.records[i].outputTokens);
        EXPECT_EQ(a.records[i].preemptions,
                  b.records[i].preemptions);
        EXPECT_EQ(a.records[i].stallSeconds,
                  b.records[i].stallSeconds);
    }
}

// ------------------------------------------------------------------
// The seeded configuration grid. Sample i is derived entirely from
// its index (reproducible; a failure names the sample), chosen so
// the grid crosses every feature the driver parallelizes: both the
// pre-routed fast path (round-robin / session-affinity, no faults)
// and every windowed slow path (dynamic least-outstanding routing,
// disaggregation with coordinator-owned prefill replicas, fault
// plans with crash/restart/retry, batch-level fill deadlines).

struct GridSample
{
    std::string name;
    ClusterOptions options;
    std::vector<llm::TimedRequest> stream;
};

GridSample
makeSample(std::uint32_t i, const llm::ModelConfig &model,
           const core::PlatformConfig &cfg)
{
    GridSample s;
    ClusterOptions &opt = s.options;

    static constexpr std::uint32_t kReplicas[4] = {2, 3, 4, 8};
    static constexpr RouterPolicy kPolicies[3] = {
        RouterPolicy::RoundRobin, RouterPolicy::LeastOutstanding,
        RouterPolicy::SessionAffinity};

    const bool disagg = i % 5 == 0;
    const bool faults = i % 3 == 2;
    // Retry redelivery requires the token-level serving path, so
    // batch-level admission never combines with a fault plan.
    const bool batch_level = !disagg && !faults && i % 7 == 1;
    const bool chunked = i % 3 == 1;
    const bool preempt = i % 4 == 2;
    const bool deadline = i % 6 == 3;

    std::uint32_t replicas = kReplicas[i % 4];
    opt.policy = kPolicies[i % 3];
    opt.tensorParallelDegree = 1 + i % 2;
    if (disagg) {
        opt.disagg.enabled = true;
        opt.disagg.prefillReplicas = 1 + i % 2;
        opt.disagg.decodeReplicas = 2;
        opt.disagg.prefillPolicy = kPolicies[i % 3];
        replicas =
            opt.disagg.prefillReplicas + opt.disagg.decodeReplicas;
    } else {
        opt.numPlatforms = replicas * opt.tensorParallelDegree;
    }
    if (batch_level) {
        opt.serving.admission = core::AdmissionPolicy::BatchLevel;
        opt.serving.maxRlp = 8;
        opt.serving.batchTimeoutSeconds = 0.02;
    }
    if (chunked)
        opt.serving.prefillChunkTokens = 64;
    if (preempt) {
        opt.serving.preemptOnKvPressure = true;
        opt.serving.preemptPolicy =
            i % 8 < 4 ? core::KvPreemptPolicy::Recompute
                      : core::KvPreemptPolicy::SwapRestore;
        opt.serving.kvCapacityOverrideBytes =
            llm::kvPoolBytesPerDevice(model, 4096,
                                      cfg.numAttnDevices);
    }
    if (deadline)
        opt.serving.deadlineSeconds = 1.5;
    if (faults) {
        sim::FaultPlanParams p;
        p.seed = 100 + i;
        p.numReplicas = replicas;
        p.crashes = 2;
        p.horizonSeconds = 4.0;
        p.coldStartSeconds = 0.3;
        p.restart = i % 2 == 0;
        opt.faults = sim::FaultPlan::generate(p);
        if (disagg) {
            opt.faults.linkFaults.push_back(
                {0.2, 1.2, 0.25}); // degraded window mid-stream
            opt.recovery.transferTimeoutSeconds = 0.5;
        }
    }

    const llm::TraceCategory cat =
        disagg ? llm::TraceCategory::PrefillHeavy
               : (i % 2 ? llm::TraceCategory::CreativeWriting
                        : llm::TraceCategory::GeneralQa);
    const double rate = 60.0 + 15.0 * (i % 5);
    const std::uint32_t count = 36 + 4 * (i % 6);
    llm::ArrivalProcess arrivals(cat, rate, 1000 + i);
    s.stream = arrivals.generate(count);

    s.name = "sample" + std::to_string(i) + "/replicas" +
             std::to_string(replicas) + "/policy" +
             std::to_string(static_cast<int>(opt.policy)) +
             (disagg ? "/disagg" : "") + (faults ? "/faults" : "") +
             (batch_level ? "/batch" : "") +
             (chunked ? "/chunked" : "") +
             (preempt ? "/preempt" : "") +
             (deadline ? "/deadline" : "");
    return s;
}

ClusterResult
runSample(const GridSample &s, unsigned workers,
          const llm::ModelConfig &model,
          const core::PlatformConfig &cfg)
{
    ClusterOptions opt = s.options;
    opt.workerThreads = workers;
    llm::SpeculativeConfig spec;
    return ClusterEngine(cfg, opt).run(s.stream, spec, model);
}

// ------------------------------------------------------------------
// The differential fuzz grid: >= 50 seeded configurations, each run
// serially (the pinned oracle) and at 2, 4, and 8 worker threads.

TEST(ParallelIdentity, DifferentialGridMatchesSerialByteForByte)
{
    const core::PlatformConfig cfg = core::makePapiConfig();
    const llm::ModelConfig model = llm::llama65b();
    constexpr std::uint32_t kSamples = 54;
    constexpr unsigned kWorkerCounts[3] = {2, 4, 8};

    for (std::uint32_t i = 0; i < kSamples; ++i) {
        const GridSample s = makeSample(i, model, cfg);
        SCOPED_TRACE(s.name);
        const ClusterResult serial = runSample(s, 1, model, cfg);
        const std::uint64_t serial_hash = timelineHash(serial);
        for (unsigned workers : kWorkerCounts) {
            SCOPED_TRACE("workers=" + std::to_string(workers));
            const ClusterResult parallel =
                runSample(s, workers, model, cfg);
            expectClusterByteIdentical(serial, parallel);
            EXPECT_EQ(serial_hash, timelineHash(parallel));
        }
    }
}

// More workers than replicas (and a prime, misaligned count) must
// also be exact - the pool just has idle executors.

TEST(ParallelIdentity, OversubscribedWorkersMatchSerial)
{
    const core::PlatformConfig cfg = core::makePapiConfig();
    const llm::ModelConfig model = llm::llama65b();
    const GridSample s = makeSample(7, model, cfg);
    const ClusterResult serial = runSample(s, 1, model, cfg);
    for (unsigned workers : {3u, 16u, 64u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectClusterByteIdentical(serial,
                                   runSample(s, workers, model, cfg));
    }
}

// Repeated parallel runs of one configuration must agree with each
// other run-to-run, not just with the serial oracle (a schedule
// that leaked wall-clock nondeterminism could still diverge between
// two parallel runs on an unlucky interleave).

TEST(ParallelIdentity, ParallelRunsAreReproducible)
{
    const core::PlatformConfig cfg = core::makePapiConfig();
    const llm::ModelConfig model = llm::llama65b();
    const GridSample s = makeSample(2, model, cfg); // faulty sample
    const ClusterResult first = runSample(s, 4, model, cfg);
    for (int rep = 0; rep < 3; ++rep) {
        SCOPED_TRACE("rep=" + std::to_string(rep));
        expectClusterByteIdentical(first,
                                   runSample(s, 4, model, cfg));
    }
}

} // namespace
