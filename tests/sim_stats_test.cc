/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace {

using namespace papi::sim;
using namespace papi::sim::stats;

TEST(Scalar, AccumulatesAndResets)
{
    StatGroup g("g");
    auto &s = g.addScalar("s", "a scalar");
    s += 2.5;
    s += 1.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Vector, BinsAccumulateIndependently)
{
    StatGroup g("g");
    auto &v = g.addVector("v", "a vector", {"a", "b", "c"});
    v.add(0, 1.0);
    v.add(2, 3.0);
    v.add(2, 2.0);
    EXPECT_DOUBLE_EQ(v.value(0), 1.0);
    EXPECT_DOUBLE_EQ(v.value(1), 0.0);
    EXPECT_DOUBLE_EQ(v.value(2), 5.0);
    EXPECT_DOUBLE_EQ(v.total(), 6.0);
}

TEST(Vector, OutOfRangeBinPanics)
{
    StatGroup g("g");
    auto &v = g.addVector("v", "a vector", {"a"});
    EXPECT_THROW(v.add(1, 1.0), PanicError);
    EXPECT_THROW(v.value(3), PanicError);
}

TEST(Histogram, MeanAndStddev)
{
    StatGroup g("g");
    auto &h = g.addHistogram("h", "a histogram", 0.0, 10.0, 10);
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        h.sample(v);
    EXPECT_EQ(h.samples(), 8u);
    EXPECT_NEAR(h.mean(), 5.0, 1e-12);
    // Sample stddev of {2,4,4,4,5,5,7,9}.
    EXPECT_NEAR(h.stddev(), 2.1380899, 1e-6);
    EXPECT_DOUBLE_EQ(h.minSample(), 2.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 9.0);
}

TEST(Histogram, BucketingAndOverflow)
{
    StatGroup g("g");
    auto &h = g.addHistogram("h", "hist", 0.0, 10.0, 5);
    h.sample(-1.0); // underflow
    h.sample(0.0);  // bucket 0
    h.sample(1.9);  // bucket 0
    h.sample(2.0);  // bucket 1
    h.sample(9.99); // bucket 4
    h.sample(10.0); // overflow
    h.sample(50.0); // overflow
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 2u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(Histogram, BadConstructionIsFatal)
{
    StatGroup g("g");
    EXPECT_THROW(g.addHistogram("h1", "bad", 0.0, 10.0, 0),
                 FatalError);
    EXPECT_THROW(g.addHistogram("h2", "bad", 5.0, 5.0, 4), FatalError);
}

TEST(Histogram, ResetClearsEverything)
{
    StatGroup g("g");
    auto &h = g.addHistogram("h", "hist", 0.0, 1.0, 2);
    h.sample(0.5);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

TEST(Formula, EvaluatesLazily)
{
    StatGroup g("g");
    auto &a = g.addScalar("a", "numerator");
    auto &b = g.addScalar("b", "denominator");
    auto &f = g.addFormula("ratio", "a/b", [&] {
        return b.value() != 0.0 ? a.value() / b.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    a += 6.0;
    b += 3.0;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(StatGroup, DuplicateNameIsFatal)
{
    StatGroup g("g");
    g.addScalar("x", "first");
    EXPECT_THROW(g.addScalar("x", "second"), FatalError);
}

TEST(StatGroup, FindLocatesStats)
{
    StatGroup g("g");
    g.addScalar("x", "a stat");
    EXPECT_NE(g.find("x"), nullptr);
    EXPECT_EQ(g.find("y"), nullptr);
}

TEST(StatGroup, DumpContainsAllStats)
{
    StatGroup g("grp");
    g.addScalar("alpha", "first stat") += 1.0;
    g.addVector("beta", "second stat", {"x", "y"}).add(0, 2.0);
    std::ostringstream os;
    g.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("grp"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("beta::x"), std::string::npos);
    EXPECT_NE(text.find("beta::total"), std::string::npos);
}

TEST(StatGroup, ResetAllResetsEveryStat)
{
    StatGroup g("g");
    auto &s = g.addScalar("s", "scalar");
    auto &v = g.addVector("v", "vector", {"a"});
    s += 5.0;
    v.add(0, 5.0);
    g.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
}

} // namespace
