/**
 * @file
 * Tests for the event-driven serving core's continuous-batching
 * features: chunked prefill, KV-pressure preemption/resume (both
 * policies), their determinism, and their behaviour under the
 * cluster driver.
 */

#include <gtest/gtest.h>

#include "cluster/cluster_engine.hh"
#include "core/serving_engine.hh"
#include "llm/arrival.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"

namespace {

using namespace papi::core;
namespace llm = papi::llm;
namespace cluster = papi::cluster;
using papi::sim::FatalError;

std::vector<llm::TimedRequest>
stream(llm::TraceCategory cat, double rate_rps, std::uint32_t count,
       std::uint64_t seed = 5)
{
    llm::ArrivalProcess arrivals(cat, rate_rps, seed);
    return arrivals.generate(count);
}

std::uint64_t
totalOutputTokens(const std::vector<llm::TimedRequest> &reqs)
{
    std::uint64_t t = 0;
    for (const auto &r : reqs)
        t += r.request.outputLen;
    return t;
}

// ------------------------------------------------- ordered ticks

TEST(Timeline, OrderedTickIsMonotoneAndExact)
{
    const double times[] = {0.0,    1e-300, 1e-9, 0.1,
                            0.1001, 1.0,    3.5,  1e6};
    for (std::size_t i = 1; i < std::size(times); ++i) {
        EXPECT_LT(papi::sim::orderedTick(times[i - 1]),
                  papi::sim::orderedTick(times[i]));
        EXPECT_DOUBLE_EQ(papi::sim::orderedSeconds(
                             papi::sim::orderedTick(times[i])),
                         times[i]);
    }
    EXPECT_EQ(papi::sim::orderedTick(0.25),
              papi::sim::orderedTick(0.25));
    // -0.0 must encode as +0.0, not as a sign-bit-set tick that
    // would sort after every positive time.
    EXPECT_EQ(papi::sim::orderedTick(-0.0),
              papi::sim::orderedTick(0.0));
    EXPECT_THROW(papi::sim::orderedTick(-1.0), FatalError);
}

// --------------------------------------------- chunked prefill

TEST(ContinuousBatching, ChunkedPrefillConservesTokens)
{
    Platform papi(makePapiConfig());
    llm::ModelConfig model = llm::llama65b();
    auto reqs = stream(llm::TraceCategory::GeneralQa, 80.0, 32);

    ServingOptions opt;
    opt.maxRlp = 16;
    opt.prefillChunkTokens = 64;
    ServingResult r =
        ServingEngine(papi).run(reqs, {}, model, opt);
    EXPECT_EQ(r.tokensGenerated, totalOutputTokens(reqs));
    EXPECT_EQ(r.admissions, reqs.size());
    EXPECT_EQ(r.preemptions, 0u);
    EXPECT_GT(r.makespanSeconds, 0.0);

    // Prefill work moves into decode iterations, so the chunked run
    // takes at least as many (smaller) iterations as the legacy one.
    ServingOptions legacy = opt;
    legacy.prefillChunkTokens = 0;
    ServingResult l =
        ServingEngine(papi).run(reqs, {}, model, legacy);
    EXPECT_EQ(l.tokensGenerated, r.tokensGenerated);
    EXPECT_GE(r.iterations, l.iterations);
    // Prompt work is conserved, not skipped: both runs charge a
    // comparable total amount of compute.
    EXPECT_NEAR(r.makespanSeconds, l.makespanSeconds,
                0.5 * l.makespanSeconds);
}

TEST(ContinuousBatching, ContinuousBeatsStaticBatchingOnTtftTail)
{
    // The bench acceptance in miniature: static (batch-level)
    // admission parks newcomers until the batch drains; continuous
    // batching with chunked prefill admits at the next boundary.
    PlatformConfig cfg = makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(llm::TraceCategory::GeneralQa, 120.0, 48);

    cluster::ClusterOptions stat;
    stat.numPlatforms = 1;
    stat.serving.maxRlp = 8;
    stat.serving.admission = AdmissionPolicy::BatchLevel;
    stat.serving.batchTimeoutSeconds = 0.05;
    cluster::ClusterResult rs =
        cluster::ClusterEngine(cfg, stat).run(reqs, spec, model);

    cluster::ClusterOptions cont = stat;
    cont.serving.admission = AdmissionPolicy::TokenLevel;
    cont.serving.prefillChunkTokens = 64;
    cluster::ClusterResult rc =
        cluster::ClusterEngine(cfg, cont).run(reqs, spec, model);

    EXPECT_EQ(rc.tokensGenerated, rs.tokensGenerated);
    EXPECT_LT(rc.ttft.p99, rs.ttft.p99);
    EXPECT_LT(rc.meanQueueingSeconds, rs.meanQueueingSeconds);
}

TEST(ContinuousBatching, ChunkedPrefillRunsUnderClusterAndConserves)
{
    PlatformConfig cfg = makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(llm::TraceCategory::GeneralQa, 150.0, 48);

    for (std::uint32_t n : {1u, 2u}) {
        cluster::ClusterOptions opt;
        opt.numPlatforms = n;
        opt.policy = cluster::RouterPolicy::LeastOutstanding;
        opt.serving.maxRlp = 8;
        opt.serving.prefillChunkTokens = 48;
        cluster::ClusterResult r =
            cluster::ClusterEngine(cfg, opt).run(reqs, spec, model);
        EXPECT_EQ(r.requestsServed, reqs.size()) << "n=" << n;
        EXPECT_EQ(r.tokensGenerated, totalOutputTokens(reqs))
            << "n=" << n;
    }
}

// ------------------------------------------- KV-pressure preemption

ServingOptions
pressureOptions(const llm::ModelConfig &model,
                const PlatformConfig &cfg,
                std::uint64_t pool_tokens)
{
    ServingOptions opt;
    opt.maxRlp = 12;
    opt.preemptOnKvPressure = true;
    opt.kvCapacityOverrideBytes = llm::kvPoolBytesPerDevice(
        model, pool_tokens, cfg.numAttnDevices);
    return opt;
}

TEST(KvPreemption, EvictionOrderAndMetricsAreDeterministic)
{
    PlatformConfig cfg = makePapiConfig();
    Platform papi(cfg);
    llm::ModelConfig model = llm::llama65b();
    // Long generations against a pool of ~2k tokens: decode growth
    // must hit capacity.
    auto reqs =
        stream(llm::TraceCategory::CreativeWriting, 300.0, 24, 11);
    ServingOptions opt = pressureOptions(model, cfg, 2048);

    ServingResult a = ServingEngine(papi).run(reqs, {}, model, opt);
    ServingResult b = ServingEngine(papi).run(reqs, {}, model, opt);

    // The run must actually preempt, and every eviction must be
    // resumed (nothing starves; conservation holds).
    EXPECT_GT(a.preemptions, 0u);
    EXPECT_EQ(a.preemptions, a.resumes);
    EXPECT_EQ(a.tokensGenerated, totalOutputTokens(reqs));
    EXPECT_GT(a.recomputedPrefillTokens, 0u);

    // Fixed seed, fixed stream: identical eviction order and
    // identical final metrics, bit for bit.
    ASSERT_EQ(a.evictionOrder.size(), b.evictionOrder.size());
    for (std::size_t i = 0; i < a.evictionOrder.size(); ++i)
        EXPECT_EQ(a.evictionOrder[i], b.evictionOrder[i]) << i;
    EXPECT_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.tokensGenerated, b.tokensGenerated);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.recomputedPrefillTokens, b.recomputedPrefillTokens);
}

TEST(KvPreemption, PreemptedRequestsCarryStallInRecords)
{
    PlatformConfig cfg = makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs =
        stream(llm::TraceCategory::CreativeWriting, 300.0, 24, 11);

    cluster::ClusterOptions copt;
    copt.numPlatforms = 1;
    copt.serving = pressureOptions(model, cfg, 2048);
    cluster::ClusterResult r =
        cluster::ClusterEngine(cfg, copt).run(reqs, spec, model);

    EXPECT_GT(r.preemptions, 0u);
    EXPECT_EQ(r.preemptions, r.resumes);
    std::uint64_t preempted_requests = 0;
    std::uint64_t preempted_tokens = 0;
    for (const auto &rec : r.records) {
        if (rec.preemptions > 0) {
            ++preempted_requests;
            EXPECT_GT(rec.stallSeconds, 0.0);
            preempted_tokens += rec.outputTokens;
        }
    }
    EXPECT_GT(preempted_requests, 0u);
    // Preempted requests' token counts conserve: they still deliver
    // every output token they were asked for.
    std::uint64_t expected_preempted_tokens = 0;
    for (const auto &tr : reqs) {
        for (const auto &rec : r.records) {
            if (rec.id == tr.request.id && rec.preemptions > 0)
                expected_preempted_tokens += tr.request.outputLen;
        }
    }
    EXPECT_EQ(preempted_tokens, expected_preempted_tokens);
    EXPECT_EQ(r.tokensGenerated, totalOutputTokens(reqs));
    // The stall percentiles surface in the stats export.
    EXPECT_GT(r.preemptionStall.p99, 0.0);
    papi::sim::stats::StatGroup g("cluster");
    r.populateStats(g);
    EXPECT_NE(g.find("preemptions"), nullptr);
    EXPECT_NE(g.find("preemption_stall_p99_seconds"), nullptr);
}

TEST(KvPreemption, SwapRestoreAvoidsRecompute)
{
    PlatformConfig cfg = makePapiConfig();
    Platform papi(cfg);
    llm::ModelConfig model = llm::llama65b();
    auto reqs =
        stream(llm::TraceCategory::CreativeWriting, 300.0, 24, 11);

    ServingOptions rec = pressureOptions(model, cfg, 2048);
    ServingOptions swap = rec;
    swap.preemptPolicy = KvPreemptPolicy::SwapRestore;

    ServingResult rr = ServingEngine(papi).run(reqs, {}, model, rec);
    ServingResult rs = ServingEngine(papi).run(reqs, {}, model, swap);
    EXPECT_GT(rs.preemptions, 0u);
    EXPECT_EQ(rs.recomputedPrefillTokens, 0u);
    EXPECT_GT(rr.recomputedPrefillTokens, 0u);
    EXPECT_EQ(rs.tokensGenerated, totalOutputTokens(reqs));
    EXPECT_EQ(rr.tokensGenerated, rs.tokensGenerated);
}

TEST(KvPreemption, SwapStallAttributionIdentity)
{
    // The lump-sum swap-out/in advances of SwapRestore delay every
    // live request, not just the swapped one. The per-request stall
    // records must account for exactly that: the sum of all
    // RequestRecord::stallSeconds equals the direct eviction stall
    // (preempt -> re-admission gaps) plus the batch-wide
    // swap-induced stall, both exported on ServingResult.
    PlatformConfig cfg = makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs =
        stream(llm::TraceCategory::CreativeWriting, 300.0, 24, 11);

    cluster::ClusterOptions copt;
    copt.numPlatforms = 1;
    copt.serving = pressureOptions(model, cfg, 2048);
    copt.serving.preemptPolicy = KvPreemptPolicy::SwapRestore;
    cluster::ClusterResult r =
        cluster::ClusterEngine(cfg, copt).run(reqs, spec, model);

    ASSERT_EQ(r.perGroup.size(), 1u);
    const ServingResult &g = r.perGroup[0];
    EXPECT_GT(g.preemptions, 0u);
    EXPECT_GT(g.evictionStallSeconds, 0.0);
    // Swap lumps delayed a live batch at least once.
    EXPECT_GT(g.swapInducedStallSeconds, 0.0);

    double record_stall = 0.0;
    for (const auto &rec : r.records)
        record_stall += rec.stallSeconds;
    const double accounted =
        g.evictionStallSeconds + g.swapInducedStallSeconds;
    EXPECT_NEAR(record_stall, accounted, 1e-9 * accounted);

    // Recompute has no swap lumps: its identity reduces to the
    // direct eviction stall alone.
    cluster::ClusterOptions rec_opt = copt;
    rec_opt.serving.preemptPolicy = KvPreemptPolicy::Recompute;
    cluster::ClusterResult rr =
        cluster::ClusterEngine(cfg, rec_opt).run(reqs, spec, model);
    EXPECT_EQ(rr.perGroup[0].swapInducedStallSeconds, 0.0);
    double rec_stall = 0.0;
    for (const auto &x : rr.records)
        rec_stall += x.stallSeconds;
    EXPECT_NEAR(rec_stall, rr.perGroup[0].evictionStallSeconds,
                1e-9 * rr.perGroup[0].evictionStallSeconds);
}

TEST(KvPreemption, WorksCombinedWithChunkedPrefillUnderCluster)
{
    PlatformConfig cfg = makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs =
        stream(llm::TraceCategory::CreativeWriting, 300.0, 32, 3);

    cluster::ClusterOptions opt;
    opt.numPlatforms = 2;
    opt.policy = cluster::RouterPolicy::LeastOutstanding;
    opt.serving = pressureOptions(model, cfg, 2048);
    opt.serving.prefillChunkTokens = 32;
    cluster::ClusterResult r =
        cluster::ClusterEngine(cfg, opt).run(reqs, spec, model);
    EXPECT_EQ(r.requestsServed, reqs.size());
    EXPECT_EQ(r.tokensGenerated, totalOutputTokens(reqs));
    std::uint64_t group_preemptions = 0;
    for (const auto &g : r.perGroup)
        group_preemptions += g.preemptions;
    EXPECT_EQ(r.preemptions, group_preemptions);
}

// ------------------------------------------- event-driver edge cases

TEST(ServingEventDriver, DuplicateArrivalTimesKeepN1Identity)
{
    // Two same-instant arrivals to an idle replica must prefill as
    // one batch on both the pre-delivered (ServingEngine) and the
    // streamed (cluster) paths - the arrival-burst coalescing rule.
    PlatformConfig cfg = makePapiConfig();
    llm::ModelConfig model = llm::llama65b();
    llm::SpeculativeConfig spec;
    auto reqs = stream(llm::TraceCategory::GeneralQa, 50.0, 16, 9);
    for (std::size_t i = 1; i < reqs.size(); i += 2)
        reqs[i].arrivalSeconds = reqs[i - 1].arrivalSeconds;

    ServingOptions sopt;
    sopt.maxRlp = 8;
    Platform bare(cfg);
    ServingResult single =
        ServingEngine(bare).run(reqs, spec, model, sopt);

    cluster::ClusterOptions copt;
    copt.numPlatforms = 1;
    copt.serving = sopt;
    cluster::ClusterResult r =
        cluster::ClusterEngine(cfg, copt).run(reqs, spec, model);
    ASSERT_EQ(r.perGroup.size(), 1u);
    EXPECT_EQ(r.perGroup[0].makespanSeconds, single.makespanSeconds);
    EXPECT_EQ(r.perGroup[0].energyJoules, single.energyJoules);
    EXPECT_EQ(r.perGroup[0].iterations, single.iterations);
    EXPECT_EQ(r.perGroup[0].tokensGenerated, single.tokensGenerated);
}

TEST(ServingEventDriver, ChunkedAndStaticBatchModesAreExclusive)
{
    // DecodeEngine's static-batch semantics and the serving-path
    // continuous-batching features must not silently combine.
    Platform papi(makePapiConfig());
    llm::ModelConfig model = llm::llama65b();
    ServingOptions opt;
    opt.prefillChunkTokens = 32;
    StaticBatchMode mode;
    mode.enabled = true;
    EXPECT_THROW(ServingSim(papi, {}, model, opt, {}, {}, mode),
                 FatalError);
}

} // namespace
