/**
 * @file
 * Unit tests for the conservative parallel window scheduler:
 * EventQueue key peeking and bounded draining, WorkerPool batch
 * execution and deterministic exception selection, ParallelTimeline
 * window ordering against a recorded serial schedule, and the
 * committed-window-edge tripwire (an event scheduled into the
 * committed past must panic, never silently reorder).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/parallel_timeline.hh"

namespace {

using papi::sim::EventQueue;
using papi::sim::PanicError;
using papi::sim::ParallelTimeline;
using papi::sim::Priority;
using papi::sim::Tick;
using papi::sim::WorkerPool;

// ------------------------------------------------------------------
// EventQueue: peekNextKey / runUntilKey.

TEST(EventQueuePeek, PeekReportsHeadWithoutExecuting)
{
    EventQueue q;
    int fired = 0;
    q.schedule(30, [&] { ++fired; }, 2);
    q.schedule(10, [&] { ++fired; }, 7);

    Tick when = 0;
    Priority prio = 0;
    ASSERT_TRUE(q.peekNextKey(when, prio));
    EXPECT_EQ(when, 10);
    EXPECT_EQ(prio, 7);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(q.pending(), 2u);

    // Peeking is idempotent and non-destructive.
    ASSERT_TRUE(q.peekNextKey(when, prio));
    EXPECT_EQ(when, 10);
    EXPECT_EQ(prio, 7);

    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(q.peekNextKey(when, prio));
}

TEST(EventQueuePeek, RunUntilKeyStopsStrictlyBelowTheBound)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(0); }, 0);
    q.schedule(20, [&] { order.push_back(1); }, 3);
    q.schedule(20, [&] { order.push_back(2); }, 5); // == bound: stays
    q.schedule(30, [&] { order.push_back(3); }, 0); // > bound: stays

    q.runUntilKey(20, 5);
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(q.pending(), 2u);
    EXPECT_EQ(q.now(), 20); // clock rests at the last executed event

    // Events scheduled during the bounded drain join it when they
    // fall below the bound.
    q.schedule(20, [&] { order.push_back(4); }, 4);
    q.runUntilKey(20, 5);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 4}));

    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 4, 2, 3}));
}

// ------------------------------------------------------------------
// WorkerPool.

TEST(WorkerPoolTest, RunsEveryTaskAcrossThreads)
{
    WorkerPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::atomic<int> sum{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 1; i <= 100; ++i)
        tasks.push_back([&sum, i] { sum += i; });
    pool.runTasks(tasks);
    EXPECT_EQ(sum.load(), 5050);

    // The pool is reusable batch after batch.
    pool.runTasks(tasks);
    EXPECT_EQ(sum.load(), 10100);
}

TEST(WorkerPoolTest, LowestFailingTaskIndexWinsDeterministically)
{
    WorkerPool pool(4);
    for (int rep = 0; rep < 10; ++rep) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 16; ++i)
            tasks.push_back([i] {
                if (i % 3 == 2) // tasks 2, 5, 8, 11, 14 all throw
                    throw std::runtime_error(
                        "task " + std::to_string(i));
            });
        try {
            pool.runTasks(tasks);
            FAIL() << "expected a task exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "task 2");
        }
    }
}

TEST(WorkerPoolTest, SingleWorkerRunsInline)
{
    WorkerPool pool(1);
    EXPECT_EQ(pool.workers(), 1u);
    int calls = 0;
    std::vector<std::function<void()>> tasks{[&] { ++calls; },
                                             [&] { ++calls; }};
    pool.runTasks(tasks);
    EXPECT_EQ(calls, 2);
}

// ------------------------------------------------------------------
// ParallelTimeline: window ordering and the edge tripwire.

/** Drive a little global/shard event mesh and record the executed
 *  order as (queue, tag) pairs. Shards only touch their own slot,
 *  so any pool size must produce the same per-queue order and the
 *  same barrier placement relative to global events. */
std::vector<std::string>
runMesh(WorkerPool *pool)
{
    ParallelTimeline tl(2);
    std::vector<std::string> global_order;
    std::vector<std::string> shard_order[2];

    // Shard work before, between, and after the global barriers.
    for (std::uint32_t s = 0; s < 2; ++s) {
        for (Tick t : {5, 15, 25, 40}) {
            tl.shard(s).schedule(t, [&, s, t] {
                shard_order[s].push_back("s" + std::to_string(s) +
                                         "@" + std::to_string(t));
            });
        }
    }
    // Global events at t=20 and t=30; the first fans new work out
    // to both shards (the cross-shard pattern the driver uses).
    tl.global().schedule(20, [&] {
        global_order.push_back("g@20");
        for (std::uint32_t s = 0; s < 2; ++s) {
            // Same-tick fan-out must use a higher priority than the
            // global event itself (the no-collision contract).
            tl.shard(s).schedule(20, [&, s] {
                shard_order[s].push_back("s" + std::to_string(s) +
                                         "@20+");
            }, 1);
        }
    });
    tl.global().schedule(30,
                         [&] { global_order.push_back("g@30"); });

    tl.run(pool);

    std::vector<std::string> all = global_order;
    for (const auto &so : shard_order)
        all.insert(all.end(), so.begin(), so.end());
    return all;
}

TEST(ParallelTimelineTest, WindowsPreserveTheSerialOrder)
{
    const std::vector<std::string> serial = runMesh(nullptr);
    const std::vector<std::string> expect{
        "g@20",   "g@30",   "s0@5",  "s0@15", "s0@20+", "s0@25",
        "s0@40",  "s1@5",   "s1@15", "s1@20+", "s1@25", "s1@40"};
    EXPECT_EQ(serial, expect);

    WorkerPool pool(4);
    EXPECT_EQ(runMesh(&pool), serial);
}

TEST(ParallelTimelineTest, CommittedTickTracksTheGlobalClock)
{
    ParallelTimeline tl(1);
    EXPECT_EQ(tl.committedTick(), 0);
    Tick seen = ~Tick{0};
    tl.global().schedule(42, [&] { seen = tl.committedTick(); });
    tl.run(nullptr);
    EXPECT_EQ(seen, 42);
    EXPECT_EQ(tl.committedTick(), 42);
}

TEST(ParallelTimelineTest, EventBelowTheCommittedEdgePanics)
{
    // A global event at t=50 schedules shard work at t=10 - into
    // the already-committed past. The next window must trip the
    // edge check loudly instead of executing it out of order.
    ParallelTimeline tl(2);
    tl.global().schedule(50, [&] {
        tl.shard(1).schedule(10, [] {});
    });
    tl.global().schedule(60, [] {});
    EXPECT_THROW(tl.run(nullptr), PanicError);
}

TEST(ParallelTimelineTest, SameKeyAsTheEdgeDoesNotPanic)
{
    // Exactly at the committed edge (same tick, higher priority) is
    // legal: that is where same-tick fan-out from a global event
    // lands by contract.
    ParallelTimeline tl(1);
    bool ran = false;
    tl.global().schedule(50, [&] {
        tl.shard(0).schedule(50, [&] { ran = true; }, 1);
    });
    tl.global().schedule(60, [] {});
    tl.run(nullptr);
    EXPECT_TRUE(ran);
}

} // namespace
