/**
 * @file
 * Unit tests for the configuration store and deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace {

using namespace papi::sim;

TEST(Config, SetAndGetAllTypes)
{
    Config c;
    c.set("s", std::string("hello"));
    c.set("d", 2.5);
    c.set("i", std::int64_t{-42});
    c.set("b", true);
    EXPECT_EQ(c.getString("s"), "hello");
    EXPECT_DOUBLE_EQ(c.getDouble("d"), 2.5);
    EXPECT_EQ(c.getInt("i"), -42);
    EXPECT_TRUE(c.getBool("b"));
}

TEST(Config, MissingKeyIsFatal)
{
    Config c;
    EXPECT_THROW(c.getString("missing"), FatalError);
    EXPECT_THROW(c.getDouble("missing"), FatalError);
    EXPECT_THROW(c.getInt("missing"), FatalError);
    EXPECT_THROW(c.getBool("missing"), FatalError);
}

TEST(Config, DefaultsReturnedWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getString("k", "def"), "def");
    EXPECT_DOUBLE_EQ(c.getDouble("k", 1.5), 1.5);
    EXPECT_EQ(c.getInt("k", 7), 7);
    EXPECT_FALSE(c.getBool("k", false));
}

TEST(Config, TypeMismatchIsFatal)
{
    Config c;
    c.set("x", std::string("not-a-number"));
    EXPECT_THROW(c.getDouble("x"), FatalError);
    EXPECT_THROW(c.getInt("x"), FatalError);
    EXPECT_THROW(c.getBool("x"), FatalError);
}

TEST(Config, TrailingGarbageIsFatal)
{
    Config c;
    c.set("x", std::string("12abc"));
    EXPECT_THROW(c.getInt("x"), FatalError);
}

TEST(Config, ParseAssignment)
{
    Config c;
    c.parseAssignment("gpu.peak_tflops=312");
    EXPECT_EQ(c.getInt("gpu.peak_tflops"), 312);
    EXPECT_THROW(c.parseAssignment("no-equals"), FatalError);
    EXPECT_THROW(c.parseAssignment("=value"), FatalError);
}

TEST(Config, MergePrefersOther)
{
    Config a;
    a.set("x", std::int64_t{1});
    a.set("y", std::int64_t{2});
    Config b;
    b.set("y", std::int64_t{20});
    b.set("z", std::int64_t{30});
    a.merge(b);
    EXPECT_EQ(a.getInt("x"), 1);
    EXPECT_EQ(a.getInt("y"), 20);
    EXPECT_EQ(a.getInt("z"), 30);
    EXPECT_EQ(a.keys().size(), 3u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.uniformInt(0, 1u << 30) == b.uniformInt(0, 1u << 30);
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(5, 9);
        EXPECT_GE(v, 5);
        EXPECT_LE(v, 9);
    }
    EXPECT_THROW(r.uniformInt(10, 5), FatalError);
}

TEST(Rng, BernoulliEdgeProbabilities)
{
    Rng r(7);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
    EXPECT_THROW(r.bernoulli(-0.1), FatalError);
    EXPECT_THROW(r.bernoulli(1.1), FatalError);
}

TEST(Rng, LogNormalMatchesTargetMoments)
{
    Rng r(99);
    const double mean = 200.0, stddev = 120.0;
    double sum = 0.0, sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double v = r.logNormalByMoments(mean, stddev);
        EXPECT_GT(v, 0.0);
        sum += v;
        sum_sq += v * v;
    }
    double m = sum / n;
    double s = std::sqrt(sum_sq / n - m * m);
    EXPECT_NEAR(m, mean, mean * 0.02);
    EXPECT_NEAR(s, stddev, stddev * 0.05);
}

TEST(Rng, LogNormalZeroStddevIsDeterministic)
{
    Rng r(1);
    EXPECT_DOUBLE_EQ(r.logNormalByMoments(100.0, 0.0), 100.0);
}

TEST(Rng, ExponentialMeanRoughlyCorrect)
{
    Rng r(5);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 1.5);
}

TEST(Rng, InvalidParametersAreFatal)
{
    Rng r(1);
    EXPECT_THROW(r.logNormalByMoments(-1.0, 1.0), FatalError);
    EXPECT_THROW(r.exponential(0.0), FatalError);
    EXPECT_THROW(r.geometric(0.0), FatalError);
}

} // namespace
