/**
 * @file
 * Tests for data partitioning, the attention engine, and the
 * device-level kernel API.
 */

#include <gtest/gtest.h>

#include "pim/attention_engine.hh"
#include "pim/data_layout.hh"
#include "pim/pim_device.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::pim;
using papi::sim::FatalError;

TEST(DataLayout, WeightsBalanceAcrossBanks)
{
    DataLayout layout(attAccConfig());
    const std::uint64_t total = 1ULL << 30; // 1 GiB
    Partition p = layout.partitionWeights(total, 4);
    EXPECT_EQ(p.devices, 4u);
    EXPECT_EQ(p.totalBanks, 4u * 128u);
    EXPECT_EQ(p.bytesPerBank, total / (4 * 128));
    EXPECT_NEAR(p.imbalance, 1.0, 1e-6);
}

TEST(DataLayout, CapacityOverflowIsFatal)
{
    DataLayout layout(attAccConfig()); // 16 GB per device
    EXPECT_THROW(layout.partitionWeights(40ULL << 30, 2), FatalError);
    EXPECT_NO_THROW(layout.partitionWeights(30ULL << 30, 2));
}

TEST(DataLayout, KvHeadsRoundRobinOverDevices)
{
    DataLayout layout(attnPimConfig());
    // 96 heads over 60 devices: busiest device carries 2 heads.
    Partition p = layout.partitionKvCache(1 << 20, 96, 60);
    EXPECT_EQ(p.bytesPerBank,
              (2ULL << 20) / attnPimConfig().totalBanks());
    EXPECT_GT(p.imbalance, 1.0); // 2 vs 96/60 = 1.6 mean
}

TEST(DataLayout, KvExactDivisionIsBalanced)
{
    DataLayout layout(attnPimConfig());
    Partition p = layout.partitionKvCache(1 << 20, 60, 60);
    EXPECT_NEAR(p.imbalance, 1.0, 1e-9);
}

TEST(DataLayout, ZeroDevicesIsFatal)
{
    DataLayout layout(attAccConfig());
    EXPECT_THROW(layout.partitionWeights(1024, 0), FatalError);
    EXPECT_THROW(layout.partitionKvCache(1024, 8, 0), FatalError);
}

TEST(AttentionEngine, ScalesLinearlyWithKvBytes)
{
    AttentionEngine engine(attnPimConfig(), PimEnergyParams{});
    AttentionResult small = engine.run(64 * 1024, 1, 1000);
    AttentionResult large = engine.run(256 * 1024, 1, 1000);
    EXPECT_NEAR(large.gemvSeconds / small.gemvSeconds, 4.0, 0.3);
}

TEST(AttentionEngine, SoftmaxChargedSeparately)
{
    AttentionEngine engine(attnPimConfig(), PimEnergyParams{});
    AttentionResult none = engine.run(64 * 1024, 1, 0);
    AttentionResult some = engine.run(64 * 1024, 1, 10'000'000);
    EXPECT_GT(some.softmaxSeconds, 0.0);
    EXPECT_NEAR(some.seconds - none.seconds, some.softmaxSeconds,
                1e-9);
}

TEST(AttentionEngine, AttnPimSlowerThanAttAccOnAttention)
{
    // Paper Fig. 12: attention runs ~1.7x slower on 1P2B Attn-PIM
    // than on 1P1B AttAcc because the shared FPU halves throughput.
    AttentionEngine attacc(attAccConfig(), PimEnergyParams{});
    AttentionEngine attn(attnPimConfig(), PimEnergyParams{});
    double t_attacc = attacc.run(48 * 1024, 1, 0).gemvSeconds;
    double t_attn = attn.run(48 * 1024, 1, 0).gemvSeconds;
    double ratio = t_attn / t_attacc;
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 2.2);
}

TEST(AttentionEngine, ZeroKvIsFree)
{
    AttentionEngine engine(attnPimConfig(), PimEnergyParams{});
    AttentionResult r = engine.run(0, 4, 0);
    EXPECT_DOUBLE_EQ(r.seconds, 0.0);
}

TEST(AttentionEngine, ZeroTlpIsFatal)
{
    AttentionEngine engine(attnPimConfig(), PimEnergyParams{});
    EXPECT_THROW(engine.run(1024, 0, 0), FatalError);
}

TEST(PimDevice, FcGemvFasterWithMoreDevices)
{
    PimDevice dev(fcPimConfig());
    const std::uint64_t weights = 64ULL << 30;
    auto r10 = dev.fcGemv(weights, 4, 10);
    auto r30 = dev.fcGemv(weights, 4, 30);
    EXPECT_NEAR(r10.seconds / r30.seconds, 3.0, 0.2);
}

TEST(PimDevice, FcGemvEnergyIndependentOfDeviceCount)
{
    // Energy follows total bytes streamed, not how they spread.
    PimDevice dev(fcPimConfig());
    const std::uint64_t weights = 64ULL << 30;
    auto r10 = dev.fcGemv(weights, 4, 10);
    auto r30 = dev.fcGemv(weights, 4, 30);
    EXPECT_NEAR(r10.energy.total() / r30.energy.total(), 1.0, 0.05);
}

TEST(PimDevice, FcGemvComputeBoundAtHighReuse)
{
    PimDevice dev(fcPimConfig());
    auto lo = dev.fcGemv(12ULL << 30, 2, 30);
    auto hi = dev.fcGemv(12ULL << 30, 128, 30);
    EXPECT_FALSE(lo.computeBound);
    EXPECT_TRUE(hi.computeBound);
    EXPECT_GT(hi.seconds, lo.seconds * 5.0);
}

TEST(PimDevice, AttentionTimeGrowsWithKv)
{
    PimDevice dev(attnPimConfig());
    auto small = dev.attention(1ULL << 30, 64, 1, 1 << 20, 60);
    auto large = dev.attention(4ULL << 30, 64, 1, 1 << 20, 60);
    EXPECT_GT(large.seconds, small.seconds * 2.0);
}

TEST(PimDevice, ZeroDevicesIsFatal)
{
    PimDevice dev(fcPimConfig());
    EXPECT_THROW(dev.fcGemv(1024, 1, 0), FatalError);
    EXPECT_THROW(dev.attention(1024, 8, 1, 0, 0), FatalError);
}

TEST(PimDevice, EnergyBreakdownSumsToTotal)
{
    PimDevice dev(fcPimConfig());
    auto r = dev.fcGemv(12ULL << 30, 8, 30);
    EXPECT_NEAR(r.energy.total(),
                r.energy.dramAccess + r.energy.transfer +
                    r.energy.compute,
                1e-9);
    EXPECT_GT(r.energy.dramAccess, 0.0);
    EXPECT_GT(r.energy.transfer, 0.0);
    EXPECT_GT(r.energy.compute, 0.0);
}

} // namespace
