/**
 * @file
 * Steady-state allocation test for the serving hot loop.
 *
 * PR 8's scratch-hoisting contract: once the batch is formed and the
 * per-platform kernel memos are warm, a decode iteration performs
 * ZERO heap allocations - the chunk plans, context refills, plan
 * memo and advance/retire passes all run in preallocated storage.
 * This test instruments the global allocator (this binary only) and
 * counts allocations across a long no-retirement decode window.
 *
 * The platform kernel memos key on (context sum, batch size), which
 * change every iteration, so a first run over the workload warms
 * them; the counted run replays the identical iteration sequence and
 * must hit those memos without inserting.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/serving_engine.hh"
#include "llm/model_config.hh"

namespace {

// ----------------------------------------------- allocator probe

bool g_counting = false;
std::uint64_t g_allocCount = 0;

} // namespace

void *
operator new(std::size_t size)
{
    if (g_counting)
        ++g_allocCount;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace papi::core;
namespace llm = papi::llm;

/** A uniform all-at-once batch: every request retires together at
 *  the far end, leaving a long pure-decode window in the middle. */
std::vector<llm::TimedRequest>
uniformStream(std::uint32_t count, std::uint32_t input_len,
              std::uint32_t output_len)
{
    std::vector<llm::TimedRequest> reqs(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        reqs[i].request.id = i + 1;
        reqs[i].request.inputLen = input_len;
        reqs[i].request.outputLen = output_len;
        reqs[i].arrivalSeconds = 0.0;
    }
    return reqs;
}

TEST(ServingZeroAlloc, SteadyStateDecodeDoesNotAllocate)
{
    Platform papi(makePapiConfig());
    const llm::ModelConfig model = llm::llama65b();
    const auto reqs = uniformStream(16, 256, 512);

    ServingOptions opt;
    opt.maxRlp = 16;

    // Warm-up run: walks the exact iteration sequence the counted
    // run will take, populating the platform kernel memos for every
    // (batch size, context sum) the window visits.
    {
        ServingSim warm(papi, {}, model, opt);
        for (const auto &tr : reqs)
            warm.deliver(tr);
        while (warm.canStep())
            warm.step();
        (void)warm.finish();
    }

    // Counted run: form the batch, let early iterations size the
    // scratch, then count a long mid-stream window - far from both
    // the admission wave and the retirement wave.
    ServingSim sim(papi, {}, model, opt);
    for (const auto &tr : reqs)
        sim.deliver(tr);
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(sim.canStep());
        sim.step();
    }
    ASSERT_TRUE(sim.hasActive());

    g_allocCount = 0;
    g_counting = true;
    for (int i = 0; i < 400; ++i)
        sim.step();
    g_counting = false;

    EXPECT_TRUE(sim.hasActive()); // still mid-decode: no retirement
    EXPECT_EQ(g_allocCount, 0u)
        << "steady-state decode iterations touched the heap";

    while (sim.canStep())
        sim.step();
    ServingResult r = sim.finish();
    EXPECT_EQ(r.tokensGenerated, 16ull * 512ull);
}

TEST(ServingZeroAlloc, ChunkedSteadyStateDecodeDoesNotAllocate)
{
    // Same contract on the chunked-prefill path once prefill has
    // drained: the all-decoding fast path plans from the context
    // sum and reuses every scratch vector.
    Platform papi(makePapiConfig());
    const llm::ModelConfig model = llm::llama65b();
    const auto reqs = uniformStream(16, 256, 512);

    ServingOptions opt;
    opt.maxRlp = 16;
    opt.prefillChunkTokens = 128;

    {
        ServingSim warm(papi, {}, model, opt);
        for (const auto &tr : reqs)
            warm.deliver(tr);
        while (warm.canStep())
            warm.step();
        (void)warm.finish();
    }

    ServingSim sim(papi, {}, model, opt);
    for (const auto &tr : reqs)
        sim.deliver(tr);
    // 16 requests x 256 prompt tokens / 128-token chunks = 32
    // prefill iterations; step well past them before counting.
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(sim.canStep());
        sim.step();
    }
    ASSERT_TRUE(sim.hasActive());

    g_allocCount = 0;
    g_counting = true;
    for (int i = 0; i < 300; ++i)
        sim.step();
    g_counting = false;

    EXPECT_TRUE(sim.hasActive());
    EXPECT_EQ(g_allocCount, 0u)
        << "steady-state chunked iterations touched the heap";

    while (sim.canStep())
        sim.step();
    ServingResult r = sim.finish();
    EXPECT_EQ(r.tokensGenerated, 16ull * 512ull);
}

} // namespace
