/**
 * @file
 * Tests for the PIM command-trace validator: every stream the GEMV
 * engine emits must pass independent JEDEC-rule checking, and
 * corrupted streams must fail.
 */

#include <gtest/gtest.h>

#include "pim/gemv_engine.hh"
#include "pim/trace_validator.hh"

namespace {

using namespace papi::pim;
using papi::dram::CommandType;

class TraceValidation
    : public ::testing::TestWithParam<
          std::tuple<const char *, std::uint32_t>>
{
  protected:
    static PimConfig
    configFor(const std::string &name)
    {
        if (name == "attacc")
            return attAccConfig();
        if (name == "hbm-pim")
            return hbmPimConfig();
        return fcPimConfig();
    }
};

TEST_P(TraceValidation, EngineTracesObeyAllRules)
{
    PimConfig cfg = configFor(std::get<0>(GetParam()));
    std::uint32_t reuse = std::get<1>(GetParam());

    GemvEngine engine(cfg);
    CommandTrace trace;
    engine.setTraceRecorder(&trace);
    engine.run(8 * 1024, reuse); // 8 rows per bank, exact path
    engine.setTraceRecorder(nullptr);

    ASSERT_FALSE(trace.empty());
    TraceValidator validator(cfg.dramSpec);
    ValidationResult v = validator.validate(trace);
    EXPECT_TRUE(v.ok) << v.firstViolation;
    EXPECT_EQ(v.violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsAndReuse, TraceValidation,
    ::testing::Combine(::testing::Values("attacc", "hbm-pim",
                                         "fc-pim"),
                       ::testing::Values(1u, 8u, 64u)));

class CorruptedTrace : public ::testing::Test
{
  protected:
    CorruptedTrace() : cfg(attAccConfig()), validator(cfg.dramSpec)
    {
        GemvEngine engine(cfg);
        engine.setTraceRecorder(&trace);
        engine.run(4 * 1024, 2);
    }

    PimConfig cfg;
    TraceValidator validator;
    CommandTrace trace;
};

TEST_F(CorruptedTrace, BaselineIsClean)
{
    EXPECT_TRUE(validator.validate(trace).ok);
}

TEST_F(CorruptedTrace, CompressedColumnCadenceIsCaught)
{
    // Pull a PIM column read earlier than tCCD_S allows.
    for (std::size_t i = 1; i < trace.size(); ++i) {
        if (trace[i].command.type == CommandType::PimMac &&
            trace[i - 1].command.type == CommandType::PimMac &&
            trace[i].command.coord.bank ==
                trace[i - 1].command.coord.bank &&
            trace[i].command.coord.bankGroup ==
                trace[i - 1].command.coord.bankGroup) {
            trace[i].tick = trace[i - 1].tick + 1;
            break;
        }
    }
    ValidationResult v = validator.validate(trace);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.firstViolation.find("cadence"), std::string::npos);
}

TEST_F(CorruptedTrace, EarlyPrechargeIsCaught)
{
    for (auto &e : trace) {
        if (e.command.type == CommandType::Pre) {
            e.tick = 1; // long before tRAS can have elapsed
            break;
        }
    }
    ValidationResult v = validator.validate(trace);
    EXPECT_FALSE(v.ok);
}

TEST_F(CorruptedTrace, WrongRowAccessIsCaught)
{
    for (auto &e : trace) {
        if (e.command.type == CommandType::PimMac) {
            e.command.coord.row += 1;
            break;
        }
    }
    ValidationResult v = validator.validate(trace);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.firstViolation.find("row"), std::string::npos);
}

TEST_F(CorruptedTrace, DoubleActivateIsCaught)
{
    // Duplicate the first ACT right after itself.
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].command.type == CommandType::Act) {
            TraceEntry dup = trace[i];
            dup.tick += 1;
            trace.insert(trace.begin() +
                             static_cast<std::ptrdiff_t>(i) + 1,
                         dup);
            break;
        }
    }
    ValidationResult v = validator.validate(trace);
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.firstViolation.find("ACT"), std::string::npos);
}

TEST_F(CorruptedTrace, RegressingTicksAreCaught)
{
    ASSERT_GE(trace.size(), 3u);
    trace[2].tick = 0;
    trace[1].tick = 1000000;
    ValidationResult v = validator.validate(trace);
    EXPECT_FALSE(v.ok);
}

TEST(TraceRecorder, CacheBypassedWhileRecording)
{
    GemvEngine engine(attAccConfig());
    // Prime the cache.
    auto warm = engine.run(4 * 1024, 2);
    CommandTrace trace;
    engine.setTraceRecorder(&trace);
    auto recorded = engine.run(4 * 1024, 2);
    EXPECT_FALSE(trace.empty());
    EXPECT_EQ(recorded.ticks, warm.ticks); // identical replay
}

} // namespace
