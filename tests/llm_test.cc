/**
 * @file
 * Tests for model configs, kernel work characterization, batching,
 * speculative decoding, and trace generation.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "llm/batch.hh"
#include "llm/kernel_spec.hh"
#include "llm/model_config.hh"
#include "llm/speculative.hh"
#include "llm/trace.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::llm;
using papi::sim::FatalError;

TEST(ModelConfig, ParameterCountsMatchPublishedSizes)
{
    // Within 5% of the nominal parameter counts.
    EXPECT_NEAR(llama65b().totalParams() / 1e9, 65.0, 65.0 * 0.05);
    EXPECT_NEAR(gpt3_66b().totalParams() / 1e9, 66.0, 66.0 * 0.05);
    EXPECT_NEAR(gpt3_175b().totalParams() / 1e9, 175.0, 175.0 * 0.05);
    EXPECT_NEAR(opt30b().totalParams() / 1e9, 30.0, 30.0 * 0.08);
}

TEST(ModelConfig, Gpt3_175bNeeds350GBAsInPaper)
{
    // Paper Section 7.1: GPT-3 175B requires 350 GB in FP16.
    EXPECT_NEAR(gpt3_175b().totalFcBytes() / 1e9, 350.0, 10.0);
}

TEST(ModelConfig, HeadDimDividesHiddenDim)
{
    for (const auto &m :
         {llama65b(), gpt3_66b(), gpt3_175b(), opt30b()}) {
        EXPECT_EQ(m.headDim() * m.numHeads, m.hiddenDim) << m.name;
        EXPECT_GT(m.numLayers, 0u) << m.name;
    }
}

TEST(ModelConfig, KvBytesPerToken)
{
    ModelConfig m = gpt3_175b();
    // 2 vectors x h x 2 bytes x layers.
    EXPECT_EQ(m.kvBytesPerToken(),
              2ULL * 12288 * 2 * 96);
}

TEST(KernelSpec, FcFlopsScaleLinearlyWithTokens)
{
    ModelConfig m = gpt3_66b();
    KernelWork w1 = fcTotalWork(m, 1);
    KernelWork w8 = fcTotalWork(m, 8);
    EXPECT_NEAR(w8.flops / w1.flops, 8.0, 1e-9);
    // Weight traffic does not grow with tokens.
    EXPECT_DOUBLE_EQ(w8.weightBytes, w1.weightBytes);
    // Activation traffic does.
    EXPECT_NEAR(w8.activationBytes / w1.activationBytes, 8.0, 1e-9);
}

TEST(KernelSpec, FcWeightBytesMatchModelTotal)
{
    ModelConfig m = llama65b();
    KernelWork w = fcTotalWork(m, 1);
    EXPECT_NEAR(w.weightBytes, static_cast<double>(m.totalFcBytes()),
                1.0);
}

TEST(KernelSpec, SubKernelsSumToTotal)
{
    ModelConfig m = gpt3_175b();
    KernelWork qkv = fcKernelWork(m, FcKernel::QkvGeneration, 4);
    KernelWork proj = fcKernelWork(m, FcKernel::Projection, 4);
    KernelWork ffn = fcKernelWork(m, FcKernel::FeedForward, 4);
    KernelWork total = fcTotalWork(m, 4);
    EXPECT_NEAR(qkv.flops + proj.flops + ffn.flops, total.flops, 1.0);
    EXPECT_NEAR(qkv.weightBytes + proj.weightBytes + ffn.weightBytes,
                total.weightBytes, 1.0);
}

TEST(KernelSpec, AttentionIntensityIndependentOfBatch)
{
    // Paper Fig. 2: batching does not increase attention arithmetic
    // intensity (no KV reuse across requests).
    ModelConfig m = opt30b();
    double ai4 = attentionWorkUniform(m, 4, 512, 8)
                     .arithmeticIntensity();
    double ai128 = attentionWorkUniform(m, 128, 512, 8)
                       .arithmeticIntensity();
    EXPECT_NEAR(ai4, ai128, ai4 * 0.01);
}

TEST(KernelSpec, AttentionIntensityGrowsSlowlyWithTlp)
{
    ModelConfig m = opt30b();
    double ai2 = attentionWorkUniform(m, 32, 512, 2)
                     .arithmeticIntensity();
    double ai8 = attentionWorkUniform(m, 32, 512, 8)
                     .arithmeticIntensity();
    EXPECT_GT(ai8, ai2);
    EXPECT_LT(ai8, ai2 * 4.0); // sub-linear growth
}

TEST(KernelSpec, FcIntensityApproachesTokenCount)
{
    // Eq. 2: AI ~= RLP x TLP for large h.
    for (std::uint32_t rlp : {4u, 16u, 64u}) {
        for (std::uint32_t tlp : {2u, 8u}) {
            double exact =
                fcArithmeticIntensityExact(12288, rlp, tlp);
            double est = fcArithmeticIntensityEstimate(rlp, tlp);
            double tokens = static_cast<double>(rlp) * tlp;
            EXPECT_NEAR(exact, tokens / (1.0 + 2.0 * tokens / 12288),
                        1e-6);
            EXPECT_LE(exact, est); // estimate is an upper bound
            if (tokens <= 128) {
                EXPECT_NEAR(est / exact, 1.0, 0.03);
            }
        }
    }
}

TEST(KernelSpec, PaperFig2OperatingPoints)
{
    // Paper Section 3.3: with batch 4 and speculation 8, FC AI is
    // 31.7 FLOPs/byte and attention AI is 7.0 FLOPs/byte.
    ModelConfig m = opt30b();
    double fc_ai = fcTotalWork(m, 4 * 8).arithmeticIntensity();
    EXPECT_NEAR(fc_ai, 31.7, 2.0);
    double attn_ai = attentionWorkUniform(m, 4, 512, 8)
                         .arithmeticIntensity();
    EXPECT_NEAR(attn_ai, 7.0, 1.0);
}

TEST(KernelSpec, ZeroTokensIsFatal)
{
    ModelConfig m = opt30b();
    EXPECT_THROW(fcTotalWork(m, 0), FatalError);
    EXPECT_THROW(attentionWorkUniform(m, 4, 128, 0), FatalError);
}

TEST(Request, AdvanceClipsAtEos)
{
    Request r{0, 16, 10, 0};
    EXPECT_EQ(r.advance(4), 4u);
    EXPECT_EQ(r.advance(4), 4u);
    EXPECT_EQ(r.advance(4), 2u); // clipped at output length
    EXPECT_TRUE(r.finished());
    EXPECT_EQ(r.contextLen(), 26u);
}

TEST(Batch, RlpDecaysAsRequestsFinish)
{
    ModelConfig m = opt30b();
    std::vector<Request> reqs;
    for (std::uint32_t i = 0; i < 4; ++i)
        reqs.push_back(Request{i, 8, (i + 1) * 3, 0});
    Batch batch(reqs, m);
    EXPECT_EQ(batch.liveRlp(), 4u);

    std::vector<std::uint32_t> rlp_history;
    while (!batch.done()) {
        DecodeStep s = batch.step(3);
        rlp_history.push_back(s.rlpAfter);
    }
    // One request finishes every iteration (outputs 3,6,9,12).
    EXPECT_EQ(rlp_history,
              (std::vector<std::uint32_t>{3, 2, 1, 0}));
    EXPECT_EQ(batch.iterations(), 4u);
    EXPECT_EQ(batch.tokensGenerated(), 3u + 6 + 9 + 12);
}

TEST(Batch, EosCountMatchesRlpDrop)
{
    ModelConfig m = opt30b();
    std::vector<Request> reqs;
    for (std::uint32_t i = 0; i < 8; ++i)
        reqs.push_back(Request{i, 8, 5, 0});
    Batch batch(reqs, m);
    DecodeStep s1 = batch.step(4);
    EXPECT_EQ(s1.eosCount, 0u);
    DecodeStep s2 = batch.step(4);
    EXPECT_EQ(s2.eosCount, 8u);
    EXPECT_TRUE(batch.done());
}

TEST(Batch, KvCacheTracksLiveContexts)
{
    ModelConfig m = opt30b();
    std::vector<Request> reqs{{0, 10, 4, 0}, {1, 20, 8, 0}};
    Batch batch(reqs, m);
    EXPECT_EQ(batch.kvCacheBytes(),
              (10 + 20) * m.kvBytesPerToken());
    batch.step(4); // request 0 finishes
    EXPECT_EQ(batch.liveRlp(), 1u);
    EXPECT_EQ(batch.kvCacheBytes(), 24 * m.kvBytesPerToken());
    EXPECT_EQ(batch.peakKvCacheBytes(),
              (14 + 28) * m.kvBytesPerToken());
}

TEST(Batch, InvalidConstructionIsFatal)
{
    ModelConfig m = opt30b();
    EXPECT_THROW(Batch({}, m), FatalError);
    std::vector<Request> bad{{0, 8, 0, 0}};
    EXPECT_THROW(Batch(bad, m), FatalError);
}

TEST(Speculative, FullAcceptanceConsumesWholeRun)
{
    SpeculativeConfig spec;
    spec.length = 4;
    papi::sim::Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(spec.sampleAccepted(rng), 4u);
}

TEST(Speculative, PartialAcceptanceBounded)
{
    SpeculativeConfig spec;
    spec.length = 8;
    spec.acceptanceRate = 0.7;
    papi::sim::Rng rng(2);
    double sum = 0.0;
    for (int i = 0; i < 5000; ++i) {
        std::uint32_t a = spec.sampleAccepted(rng);
        EXPECT_GE(a, 1u);
        EXPECT_LE(a, 8u);
        sum += a;
    }
    double mean = sum / 5000.0;
    EXPECT_GT(mean, 2.0);
    EXPECT_LT(mean, 4.0); // 1 + sum_{k=1..7} 0.7^k ~= 3.2
}

TEST(Speculative, InvalidConfigIsFatal)
{
    papi::sim::Rng rng(1);
    SpeculativeConfig bad;
    bad.length = 0;
    EXPECT_THROW(bad.sampleAccepted(rng), FatalError);
    bad.length = 2;
    bad.acceptanceRate = 0.0;
    EXPECT_THROW(bad.sampleAccepted(rng), FatalError);
}

TEST(Trace, DeterministicForFixedSeed)
{
    TraceGenerator a(TraceCategory::CreativeWriting, 7);
    TraceGenerator b(TraceCategory::CreativeWriting, 7);
    auto ra = a.generate(64);
    auto rb = b.generate(64);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].inputLen, rb[i].inputLen);
        EXPECT_EQ(ra[i].outputLen, rb[i].outputLen);
    }
}

TEST(Trace, CreativeWritingHasLongerOutputsThanQa)
{
    TraceGenerator cw(TraceCategory::CreativeWriting, 11);
    TraceGenerator qa(TraceCategory::GeneralQa, 11);
    auto sum_out = [](const std::vector<Request> &rs) {
        return std::accumulate(rs.begin(), rs.end(), 0.0,
                               [](double acc, const Request &r) {
                                   return acc + r.outputLen;
                               });
    };
    auto r_cw = cw.generate(256);
    auto r_qa = qa.generate(256);
    EXPECT_GT(sum_out(r_cw), 2.5 * sum_out(r_qa));
}

TEST(Trace, PrefillHeavyHasLongerInputsThanOutputs)
{
    TraceGenerator ph(TraceCategory::PrefillHeavy, 11);
    double in_sum = 0.0, out_sum = 0.0;
    for (const auto &r : ph.generate(256)) {
        in_sum += r.inputLen;
        out_sum += r.outputLen;
    }
    // Prompt processing dominates: the disaggregation workload.
    EXPECT_GT(in_sum, 5.0 * out_sum);
}

TEST(Trace, CategoryNamesRoundTrip)
{
    for (TraceCategory c :
         {TraceCategory::CreativeWriting, TraceCategory::GeneralQa,
          TraceCategory::PrefillHeavy, TraceCategory::Uniform})
        EXPECT_EQ(traceCategoryFromName(traceCategoryName(c)), c);
    EXPECT_THROW(traceCategoryFromName("unknown"), FatalError);
}

TEST(Trace, LengthsWithinBounds)
{
    TraceGenerator gen(TraceCategory::CreativeWriting, 3);
    for (const auto &r : gen.generate(500)) {
        EXPECT_GE(r.inputLen, gen.params().minLen);
        EXPECT_LE(r.inputLen, gen.params().maxLen);
        EXPECT_GE(r.outputLen, gen.params().minLen);
        EXPECT_LE(r.outputLen, gen.params().maxLen);
    }
}

TEST(Trace, UniformGeneratorPinsLengths)
{
    TraceGenerator gen(TraceCategory::Uniform, 1);
    auto rs = gen.generateUniform(16, 128, 256);
    ASSERT_EQ(rs.size(), 16u);
    for (const auto &r : rs) {
        EXPECT_EQ(r.inputLen, 128u);
        EXPECT_EQ(r.outputLen, 256u);
    }
    EXPECT_THROW(gen.generateUniform(4, 0, 8), FatalError);
}

TEST(Trace, IdsAreUnique)
{
    TraceGenerator gen(TraceCategory::GeneralQa, 5);
    auto r1 = gen.generate(8);
    auto r2 = gen.generate(8);
    EXPECT_EQ(r2.front().id, r1.back().id + 1);
}

} // namespace
