/**
 * @file
 * Regression pins: the calibration points that EXPERIMENTS.md and
 * docs/MODELING.md quote. If a model change moves any of these, the
 * documentation claims must be re-verified - these tests make that
 * impossible to miss.
 */

#include <gtest/gtest.h>

#include "core/platform.hh"
#include "core/threshold_calibrator.hh"
#include "gpu/gpu_config.hh"
#include "llm/kernel_spec.hh"
#include "pim/energy_model.hh"
#include "pim/power_model.hh"

namespace {

using namespace papi;

TEST(ReproductionPins, Fig2OperatingPoint)
{
    // FC AI at batch 4 x spec 8 on OPT-30B: paper 31.7, ours 31.8.
    llm::ModelConfig m = llm::opt30b();
    EXPECT_NEAR(llm::fcTotalWork(m, 32).arithmeticIntensity(), 31.8,
                0.2);
}

TEST(ReproductionPins, A100RidgePoint)
{
    EXPECT_NEAR(gpu::a100Spec().ridgeArithmeticIntensity(), 161.2,
                0.5);
}

TEST(ReproductionPins, Fig7EnergyShares)
{
    pim::PimEnergyParams p;
    EXPECT_NEAR(pim::pimGemvEnergy(p, 1, 1024, 1).dramShare(),
                0.969, 0.005);
    EXPECT_NEAR(pim::pimGemvEnergy(p, 1, 1024, 64).dramShare(),
                0.331, 0.01);
}

TEST(ReproductionPins, Fig7PowerLevels)
{
    pim::PimEnergyParams params;
    pim::PowerModel attacc(pim::attAccConfig(), params);
    EXPECT_NEAR(attacc.fullyFedPower(1).total(), 120.0, 2.0);
    pim::PimConfig four = pim::attAccConfig();
    four.fpusPerGroup = 4;
    pim::PowerModel fcpim(four, params);
    EXPECT_NEAR(fcpim.fullyFedPower(1).total(), 480.0, 8.0);
}

TEST(ReproductionPins, CalibratedAlphaIsStable)
{
    // docs/MODELING.md derives alpha ~= 24 for LLaMA-65B on the PAPI
    // hardware pair; allow one binary-search step of slack.
    core::Platform papi(core::makePapiConfig());
    double alpha = core::ThresholdCalibrator::calibrate(
                       papi, llm::llama65b())
                       .alpha;
    EXPECT_GE(alpha, 20.0);
    EXPECT_LE(alpha, 32.0);
}

TEST(ReproductionPins, PerBankPimBandwidth)
{
    // The AttAcc-style 20.8 GB/s per-bank figure the model is built
    // around.
    dram::DramSpec spec = dram::hbm3Spec();
    double per_bank = static_cast<double>(spec.org.accessBytes) /
                      (static_cast<double>(spec.timing.tCCD_S) *
                       1e-12);
    EXPECT_NEAR(per_bank / 1e9, 20.8, 0.2);
}

TEST(ReproductionPins, FpuBalancePoints)
{
    // MODELING.md Section 2: service time per column equals the
    // cadence at the listed balance reuse levels.
    auto balance = [](const pim::PimConfig &cfg) {
        pim::GemvEngine engine(cfg);
        // Smallest reuse whose service exceeds the burst cadence.
        for (std::uint32_t r = 1; r <= 64; ++r) {
            if (engine.computeTicksPerColumn(r) >
                cfg.dramSpec.timing.tCCD_S)
                return r;
        }
        return 0u;
    };
    EXPECT_EQ(balance(pim::attAccConfig()), 2u);  // 1P1B: ~1.6
    EXPECT_EQ(balance(pim::hbmPimConfig()), 1u);  // 1P2B: always
    EXPECT_EQ(balance(pim::fcPimConfig()), 5u);   // 4P1B: ~6.5/1.5
}

} // namespace
