/**
 * @file
 * Unit and integration tests for the memory controller, HBM stack,
 * and DRAM energy accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/controller.hh"
#include "dram/energy.hh"
#include "dram/hbm_stack.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::dram;
using papi::sim::EventQueue;
using papi::sim::FatalError;
using papi::sim::Tick;

MemRequest
readReq(std::uint64_t addr, std::vector<Tick> *completions = nullptr)
{
    MemRequest r;
    r.addr = addr;
    r.isWrite = false;
    if (completions) {
        r.onComplete = [completions](Tick t) {
            completions->push_back(t);
        };
    }
    return r;
}

TEST(MemController, SingleReadCompletes)
{
    EventQueue eq;
    MemController ctrl(eq, hbm3Spec());
    ctrl.setRefreshEnabled(false);
    std::vector<Tick> done;
    ASSERT_TRUE(ctrl.enqueue(readReq(0, &done)));
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    const auto &t = hbm3Spec().timing;
    // Closed bank: ACT + tRCD + RD + tCL + tBURST.
    EXPECT_EQ(done[0], t.tRCD + t.tCL + t.tBURST);
    EXPECT_EQ(ctrl.completed(), 1u);
}

TEST(MemController, RowHitIsFasterThanMiss)
{
    EventQueue eq;
    MemController ctrl(eq, hbm3Spec(), SchedulingPolicy::FrFcfs,
                       MappingPolicy::RoBaBgCo);
    ctrl.setRefreshEnabled(false);
    std::vector<Tick> done;
    DramSpec spec = hbm3Spec();
    // Same row, consecutive columns under the streaming policy.
    ASSERT_TRUE(ctrl.enqueue(readReq(0, &done)));
    ASSERT_TRUE(ctrl.enqueue(readReq(spec.org.accessBytes, &done)));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // Second access hits the open row: only tCCD_L behind the first.
    EXPECT_EQ(done[1] - done[0], spec.timing.tCCD_L);
    EXPECT_GT(ctrl.rowHitRate(), 0.0);
}

TEST(MemController, QueueDepthBoundsAcceptance)
{
    EventQueue eq;
    MemController ctrl(eq, hbm3Spec(), SchedulingPolicy::FrFcfs,
                       MappingPolicy::RoCoBaBg, /*queue_depth=*/2);
    ctrl.setRefreshEnabled(false);
    EXPECT_TRUE(ctrl.enqueue(readReq(0)));
    EXPECT_TRUE(ctrl.enqueue(readReq(64)));
    EXPECT_FALSE(ctrl.enqueue(readReq(128)));
    eq.run();
    EXPECT_EQ(ctrl.completed(), 2u);
}

TEST(MemController, FrFcfsPrefersRowHits)
{
    EventQueue eq;
    MemController ctrl(eq, hbm3Spec(), SchedulingPolicy::FrFcfs,
                       MappingPolicy::RoBaBgCo);
    ctrl.setRefreshEnabled(false);
    DramSpec spec = hbm3Spec();
    std::vector<Tick> done_conflict, done_hit;
    // First open row 0, then queue a row conflict followed by a row
    // hit; FR-FCFS should finish the hit first.
    std::uint64_t row_stride = static_cast<std::uint64_t>(
        spec.org.rowBytes);
    std::uint64_t same_row_addr = spec.org.accessBytes;
    std::uint64_t other_row_addr =
        row_stride * spec.org.banksPerGroup * spec.org.bankGroups;
    ASSERT_TRUE(ctrl.enqueue(readReq(0, nullptr)));
    eq.run();
    ASSERT_TRUE(ctrl.enqueue(readReq(other_row_addr, &done_conflict)));
    ASSERT_TRUE(ctrl.enqueue(readReq(same_row_addr, &done_hit)));
    eq.run();
    ASSERT_EQ(done_hit.size(), 1u);
    ASSERT_EQ(done_conflict.size(), 1u);
    EXPECT_LT(done_hit[0], done_conflict[0]);
}

TEST(MemController, FcfsPreservesOrder)
{
    EventQueue eq;
    MemController ctrl(eq, hbm3Spec(), SchedulingPolicy::Fcfs,
                       MappingPolicy::RoBaBgCo);
    ctrl.setRefreshEnabled(false);
    DramSpec spec = hbm3Spec();
    std::vector<Tick> done_first, done_second;
    std::uint64_t other_row_addr =
        static_cast<std::uint64_t>(spec.org.rowBytes) *
        spec.org.banksPerGroup * spec.org.bankGroups;
    ASSERT_TRUE(ctrl.enqueue(readReq(0, nullptr)));
    eq.run();
    ASSERT_TRUE(ctrl.enqueue(readReq(other_row_addr, &done_first)));
    ASSERT_TRUE(ctrl.enqueue(
        readReq(spec.org.accessBytes, &done_second)));
    eq.run();
    ASSERT_EQ(done_first.size(), 1u);
    ASSERT_EQ(done_second.size(), 1u);
    EXPECT_LT(done_first[0], done_second[0]);
}

TEST(MemController, ManyRequestsAllComplete)
{
    EventQueue eq;
    MemController ctrl(eq, hbm3Spec(), SchedulingPolicy::FrFcfs,
                       MappingPolicy::RoCoBaBg, /*queue_depth=*/0);
    ctrl.setRefreshEnabled(false);
    const int n = 500;
    int completed = 0;
    for (int i = 0; i < n; ++i) {
        MemRequest r;
        r.addr = static_cast<std::uint64_t>(i) * 64 * 1024 + i * 32;
        r.onComplete = [&completed](Tick) { ++completed; };
        ASSERT_TRUE(ctrl.enqueue(r));
    }
    eq.run();
    EXPECT_EQ(completed, n);
    EXPECT_EQ(ctrl.queued(), 0u);
    EXPECT_GT(ctrl.achievedBandwidth(), 0.0);
    EXPECT_GT(ctrl.meanLatency(), 0.0);
}

TEST(MemController, RefreshDoesNotLoseRequests)
{
    EventQueue eq;
    MemController ctrl(eq, hbm3Spec());
    // Leave refresh enabled; spread arrivals past several tREFI.
    const auto &t = hbm3Spec().timing;
    int completed = 0;
    for (int i = 0; i < 20; ++i) {
        eq.schedule(static_cast<Tick>(i) * t.tREFI / 3, [&, i] {
            MemRequest r;
            r.addr = static_cast<std::uint64_t>(i) * 4096;
            r.onComplete = [&completed](Tick) { ++completed; };
            ASSERT_TRUE(ctrl.enqueue(r));
        });
    }
    eq.run(t.tREFI * 10);
    EXPECT_EQ(completed, 20);
}

TEST(MemController, BandwidthBelowChannelPeak)
{
    EventQueue eq;
    DramSpec spec = hbm3Spec();
    MemController ctrl(eq, spec, SchedulingPolicy::FrFcfs,
                       MappingPolicy::RoBaBgCo, 0);
    ctrl.setRefreshEnabled(false);
    for (int i = 0; i < 2000; ++i)
        ASSERT_TRUE(ctrl.enqueue(readReq(i * 32)));
    eq.run();
    EXPECT_LE(ctrl.achievedBandwidth(),
              spec.peakChannelBandwidth() * 1.01);
    // Sequential streaming within one bank paces at tCCD_L (half
    // the burst-rate peak), minus row-activation overheads.
    EXPECT_GE(ctrl.achievedBandwidth(),
              spec.peakChannelBandwidth() * 0.40);
}

TEST(HbmStack, CapacityAndBandwidth)
{
    HbmStack stack(hbm3Spec(), 16);
    EXPECT_EQ(stack.numPseudoChannels(), 16u);
    EXPECT_EQ(stack.capacityBytes(), 16ULL << 30); // 16 GB class
    EXPECT_EQ(stack.totalBanks(), 128u);
    // 16 pseudo-channels x ~20.8 GB/s ~= 333 GB/s per direction; the
    // per-stack figure doubles with both pseudo-channel pairs but we
    // model read bandwidth.
    EXPECT_NEAR(stack.peakBandwidth(), 16 * 20.8e9, 16 * 0.2e9);
    // Internal (near-bank) bandwidth is banks x 20.8 GB/s.
    EXPECT_NEAR(stack.peakInternalBandwidth(), 128 * 20.8e9,
                128 * 0.2e9);
}

TEST(HbmStack, FcPimVariantHasThreeQuarterCapacity)
{
    HbmStack full(hbm3Spec(), 16);
    HbmStack fcpim(hbm3Spec(), 12);
    EXPECT_EQ(fcpim.capacityBytes() * 4, full.capacityBytes() * 3);
    EXPECT_EQ(fcpim.totalBanks(), 96u);
}

TEST(HbmStack, ZeroChannelsIsFatal)
{
    EXPECT_THROW(HbmStack(hbm3Spec(), 0), FatalError);
}

TEST(DramEnergy, ComponentsScaleWithCounts)
{
    DramEnergyParams p;
    DramEnergyBreakdown e1 = dramEnergy(p, 100, 1000, 500, 1.0, 16);
    DramEnergyBreakdown e2 = dramEnergy(p, 200, 2000, 1000, 2.0, 16);
    EXPECT_NEAR(e2.actPre, 2.0 * e1.actPre, 1e-15);
    EXPECT_NEAR(e2.cellAccess, 2.0 * e1.cellAccess, 1e-15);
    EXPECT_NEAR(e2.externalIo, 2.0 * e1.externalIo, 1e-15);
    EXPECT_NEAR(e2.background, 2.0 * e1.background, 1e-15);
    EXPECT_NEAR(e1.total(),
                e1.actPre + e1.cellAccess + e1.externalIo +
                    e1.background,
                1e-15);
}

TEST(DramEnergy, NegativeTimeIsFatal)
{
    DramEnergyParams p;
    EXPECT_THROW(dramEnergy(p, 0, 0, 0, -1.0, 1), FatalError);
}

} // namespace
