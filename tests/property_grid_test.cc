/**
 * @file
 * Property sweeps across the full platform x workload grid, plus
 * calibrator edge cases. These assert structural invariants of the
 * models (conservation, monotonicity, boundedness) rather than
 * specific values.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/decode_engine.hh"
#include "core/platform.hh"
#include "core/threshold_calibrator.hh"
#include "llm/trace.hh"

namespace {

using namespace papi::core;
namespace llm = papi::llm;

PlatformConfig
configByKey(const std::string &key)
{
    if (key == "papi")
        return makePapiConfig();
    if (key == "a100+attacc")
        return makeA100AttAccConfig();
    if (key == "a100+hbm-pim")
        return makeA100HbmPimConfig();
    if (key == "attacc-only")
        return makeAttAccOnlyConfig();
    return makePimOnlyPapiConfig();
}

/** (platform, batch, spec) grid. */
class GridTest
    : public ::testing::TestWithParam<
          std::tuple<const char *, std::uint32_t, std::uint32_t>>
{
  protected:
    RunResult
    run()
    {
        Platform platform(configByKey(std::get<0>(GetParam())));
        llm::TraceGenerator gen(llm::TraceCategory::GeneralQa, 11);
        llm::Batch batch(gen.generate(std::get<1>(GetParam())),
                         model);
        llm::SpeculativeConfig spec;
        spec.length = std::get<2>(GetParam());
        RunOptions opt;
        opt.alpha = 24.0;
        DecodeEngine engine(platform);
        return engine.run(batch, spec, model, opt);
    }

    llm::ModelConfig model = llm::llama65b();
};

TEST_P(GridTest, StructuralInvariantsHold)
{
    RunResult r = run();

    // Time conservation and positivity.
    EXPECT_GT(r.seconds(), 0.0);
    EXPECT_NEAR(r.seconds(),
                r.time.prefillSeconds + r.time.fcSeconds +
                    r.time.attnSeconds + r.time.commSeconds +
                    r.time.otherSeconds,
                1e-12);
    EXPECT_GE(r.time.prefillSeconds, 0.0);
    EXPECT_GT(r.time.fcSeconds, 0.0);
    EXPECT_GT(r.time.attnSeconds, 0.0);
    EXPECT_GT(r.time.commSeconds, 0.0);

    // Iteration accounting.
    EXPECT_EQ(r.fcOnGpuIterations + r.fcOnPimIterations,
              r.iterations);
    EXPECT_GT(r.iterations, 0u);
    EXPECT_GT(r.tokensGenerated, 0u);
    // With full acceptance, tokens <= iterations * batch * spec.
    EXPECT_LE(r.tokensGenerated,
              r.iterations * std::get<1>(GetParam()) *
                  std::get<2>(GetParam()));

    // Energy sanity.
    EXPECT_GT(r.energyJoules, 0.0);
    EXPECT_TRUE(std::isfinite(r.energyJoules));
    // Implied average power within physical bounds for a ~10 kW rack.
    double power = r.energyJoules / r.seconds();
    EXPECT_GT(power, 50.0);
    EXPECT_LT(power, 20000.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, GridTest,
    ::testing::Combine(::testing::Values("papi", "a100+attacc",
                                         "a100+hbm-pim",
                                         "attacc-only",
                                         "pim-only-papi"),
                       ::testing::Values(4u, 32u),
                       ::testing::Values(1u, 4u)));

TEST(GridProperty, DecodeTimeMonotoneInOutputLength)
{
    Platform papi(makePapiConfig());
    llm::ModelConfig model = llm::llama65b();
    DecodeEngine engine(papi);
    double prev = 0.0;
    for (std::uint32_t out : {16u, 64u, 256u}) {
        llm::TraceGenerator gen(llm::TraceCategory::Uniform, 1);
        llm::Batch batch(gen.generateUniform(8, 64, out), model);
        llm::SpeculativeConfig spec;
        RunOptions opt;
        opt.includePrefill = false;
        RunResult r = engine.run(batch, spec, model, opt);
        EXPECT_GT(r.seconds(), prev) << "out=" << out;
        prev = r.seconds();
    }
}

TEST(GridProperty, LargerModelsTakeLonger)
{
    Platform papi(makePapiConfig());
    DecodeEngine engine(papi);
    double prev = 0.0;
    for (const auto &model :
         {llm::llama65b(), llm::gpt3_66b(), llm::gpt3_175b()}) {
        llm::TraceGenerator gen(llm::TraceCategory::Uniform, 1);
        llm::Batch batch(gen.generateUniform(8, 64, 32), model);
        llm::SpeculativeConfig spec;
        RunOptions opt;
        opt.includePrefill = false;
        RunResult r = engine.run(batch, spec, model, opt);
        // 66B ~ 65B is allowed to tie; 175B must clearly dominate.
        EXPECT_GT(r.seconds(), prev * 0.95) << model.name;
        prev = r.seconds();
    }
}

TEST(GridProperty, MoreFcDevicesNeverSlower)
{
    llm::ModelConfig model = llm::llama65b();
    double prev = 1e18;
    for (std::uint32_t devices : {15u, 30u, 60u}) {
        PlatformConfig cfg = makePimOnlyPapiConfig();
        cfg.numFcDevices = devices;
        Platform platform(cfg);
        double t = platform.fcExec(model, 4, FcTarget::FcPim).seconds;
        EXPECT_LT(t, prev) << "devices=" << devices;
        prev = t;
    }
}

TEST(GridProperty, MoreAttnDevicesNeverSlower)
{
    llm::ModelConfig model = llm::llama65b();
    std::vector<std::uint32_t> ctx(32, 1024);
    double prev = 1e18;
    for (std::uint32_t devices : {15u, 30u, 60u}) {
        PlatformConfig cfg = makePapiConfig();
        cfg.numAttnDevices = devices;
        Platform platform(cfg);
        KernelExec e = platform.attnExec(model, ctx, 1);
        double gemv = e.seconds - e.commSeconds;
        EXPECT_LE(gemv, prev * 1.001) << "devices=" << devices;
        prev = gemv;
    }
}

TEST(CalibratorEdge, FeeblePimYieldsSubUnityAlpha)
{
    // A PAPI variant with a single weak FC-PIM device: the GPU wins
    // even at tokens = 1, so alpha must mark everything
    // compute-bound (0 < alpha < 1).
    PlatformConfig cfg = makePapiConfig();
    cfg.numFcDevices = 1;
    cfg.fcDeviceConfig.pseudoChannels = 16; // keep capacity adequate
    Platform platform(cfg);
    // Use a model that fits one device: OPT-30B is 59 GB... too big;
    // shrink layer count instead.
    llm::ModelConfig model = llm::opt30b();
    model.numLayers = 12; // ~15 GB of weights
    CalibrationResult cal =
        ThresholdCalibrator::calibrate(platform, model);
    EXPECT_LT(cal.alpha, 1.0);
    EXPECT_GT(cal.alpha, 0.0);
}

TEST(CalibratorEdge, FeebleGpuSaturatesAlpha)
{
    // A PAPI variant with one toy GPU: FC-PIM wins over the whole
    // sweep range and alpha saturates at max_tokens.
    PlatformConfig cfg = makePapiConfig();
    cfg.numGpus = 1;
    cfg.gpuSpec.peakTflopsFp16 = 1.0;
    cfg.gpuSpec.memBandwidthGBs = 50.0;
    Platform platform(cfg);
    CalibrationResult cal = ThresholdCalibrator::calibrate(
        platform, llm::llama65b(), /*max_tokens=*/64);
    EXPECT_DOUBLE_EQ(cal.alpha, 64.0);
}

TEST(CalibratorEdge, AlphaScalesWithGpuCount)
{
    // Fewer GPUs shift the crossover toward PIM (higher alpha is
    // not implied, but the crossover must move monotonically).
    llm::ModelConfig model = llm::llama65b();
    PlatformConfig few = makePapiConfig();
    few.numGpus = 2;
    few.numFcDevices = 12; // ~GPU:PIM device ratio, fits 130 GB
    PlatformConfig many = makePapiConfig();
    double alpha_few =
        ThresholdCalibrator::calibrate(Platform(few), model).alpha;
    double alpha_many =
        ThresholdCalibrator::calibrate(Platform(many), model).alpha;
    // Equal per-GPU PIM, so crossovers match within a factor ~2.
    EXPECT_GT(alpha_few, alpha_many * 0.4);
    EXPECT_LT(alpha_few, alpha_many * 2.5);
}

} // namespace
