/**
 * @file
 * Tests for the AI estimator, threshold calibrator, and dynamic
 * scheduler - the paper's Section 5 mechanisms.
 */

#include <gtest/gtest.h>

#include "core/ai_estimator.hh"
#include "core/platform.hh"
#include "core/scheduler.hh"
#include "core/threshold_calibrator.hh"
#include "llm/model_config.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::core;
namespace llm = papi::llm;
using papi::sim::FatalError;
using papi::sim::PanicError;

TEST(AiEstimator, EstimateIsRlpTimesTlp)
{
    llm::ModelConfig m = llm::gpt3_66b();
    ArithmeticIntensityEstimator est(m);
    EXPECT_DOUBLE_EQ(est.estimate(16, 4), 64.0);
    EXPECT_DOUBLE_EQ(est.estimate(1, 1), 1.0);
}

TEST(AiEstimator, EstimateTracksMeasuredWithinTenPercent)
{
    // Paper Fig. 6: the estimate closely matches the measured AI of
    // the GPT-3 66B FC kernels across the RLP x TLP grid.
    llm::ModelConfig m = llm::gpt3_66b();
    ArithmeticIntensityEstimator est(m);
    for (std::uint32_t tlp : {2u, 4u, 6u, 8u}) {
        for (std::uint32_t rlp : {4u, 8u, 16u, 32u}) {
            EXPECT_LT(std::abs(est.relativeError(rlp, tlp)), 0.10)
                << "rlp=" << rlp << " tlp=" << tlp;
        }
    }
}

TEST(AiEstimator, EstimateOverpredictsAtExtremeParallelism)
{
    // Paper Section 5.1: at very large RLP the estimate slightly
    // exceeds the measured AI - harmless because both sides are deep
    // in compute-bound territory.
    llm::ModelConfig m = llm::gpt3_66b();
    ArithmeticIntensityEstimator est(m);
    double err = est.relativeError(128, 8);
    EXPECT_GT(err, 0.0);
    EXPECT_GT(est.measured(128, 8), 500.0); // still clearly compute-bound
}

// The default scheduler pair is {below=0, above=1}: target ids are
// opaque labels drawn from a platform's registry.
constexpr TargetId kBelow = 0; // memory-bound side (the paper's PIM)
constexpr TargetId kAbove = 1; // compute-bound side (the paper's GPU)

TEST(Scheduler, RoutesByThreshold)
{
    DynamicScheduler sched(/*alpha=*/24.0, /*rlp=*/64, /*tlp=*/1);
    ScheduleDecision d = sched.initialSchedule();
    EXPECT_EQ(d.target, kAbove); // 64 > 24
    EXPECT_DOUBLE_EQ(d.estimatedAi, 64.0);

    DynamicScheduler low(24.0, 4, 2);
    EXPECT_EQ(low.initialSchedule().target, kBelow); // 8 < 24
}

TEST(Scheduler, GenericOverArbitraryTargetPairs)
{
    // The threshold rule is pair-agnostic: any two registry ids -
    // e.g. two PIM device classes - schedule exactly like the
    // paper's (FC-PIM, GPU) pair.
    TargetPair pair;
    pair.below = 7;
    pair.above = 3;
    DynamicScheduler sched(24.0, 64, 1, {}, pair);
    EXPECT_EQ(sched.initialSchedule().target, 3u);
    EXPECT_EQ(sched.observeStep(40).target, 7u); // RLP 24 <= alpha
    EXPECT_EQ(sched.reschedules(), 1u);
    EXPECT_THROW(DynamicScheduler(24.0, 4, 1, {}, TargetPair{2, 2}),
                 FatalError);
}

TEST(Scheduler, ReschedulesWhenRlpDecaysPastThreshold)
{
    DynamicScheduler sched(24.0, 32, 1);
    EXPECT_EQ(sched.initialSchedule().target, kAbove);

    // 8 requests finish: RLP 32 -> 24; 24 <= alpha -> move to PIM.
    ScheduleDecision d = sched.observeStep(8);
    EXPECT_EQ(sched.rlp(), 24u);
    EXPECT_EQ(d.target, kBelow);
    EXPECT_TRUE(d.rescheduled);
    EXPECT_EQ(sched.reschedules(), 1u);

    // Further decay keeps the target stable - no more switches.
    d = sched.observeStep(10);
    EXPECT_EQ(d.target, kBelow);
    EXPECT_FALSE(d.rescheduled);
    EXPECT_EQ(sched.reschedules(), 1u);
}

TEST(Scheduler, TlpRegisterUpdateChangesDecision)
{
    DynamicScheduler sched(24.0, 8, 1);
    EXPECT_EQ(sched.initialSchedule().target, kBelow); // 8
    sched.setTlp(4); // host software raised speculation length
    ScheduleDecision d = sched.observeStep(0);
    EXPECT_DOUBLE_EQ(d.estimatedAi, 32.0);
    EXPECT_EQ(d.target, kAbove);
    EXPECT_TRUE(d.rescheduled);
}

TEST(Scheduler, EosBeyondRlpPanics)
{
    DynamicScheduler sched(24.0, 4, 1);
    sched.initialSchedule();
    EXPECT_THROW(sched.observeStep(5), PanicError);
}

TEST(Scheduler, DrainedBatchReturnsLastTarget)
{
    DynamicScheduler sched(24.0, 2, 1);
    EXPECT_EQ(sched.initialSchedule().target, kBelow);
    ScheduleDecision d = sched.observeStep(2);
    EXPECT_EQ(sched.rlp(), 0u);
    EXPECT_EQ(d.target, kBelow);
}

TEST(Scheduler, InvalidConstructionIsFatal)
{
    EXPECT_THROW(DynamicScheduler(0.0, 4, 1), FatalError);
    EXPECT_THROW(DynamicScheduler(24.0, 0, 1), FatalError);
    EXPECT_THROW(DynamicScheduler(24.0, 4, 0), FatalError);
}

TEST(Scheduler, PeekDoesNotMutate)
{
    DynamicScheduler sched(24.0, 16, 1);
    sched.initialSchedule();
    std::uint64_t before = sched.decisions();
    ScheduleDecision d = sched.peek(64, 2);
    EXPECT_EQ(d.target, kAbove);
    EXPECT_EQ(sched.decisions(), before);
    EXPECT_EQ(sched.rlp(), 16u);
}

class CalibratorTest : public ::testing::Test
{
  protected:
    CalibratorTest() : platform(makePapiConfig()) {}
    Platform platform;
};

TEST_F(CalibratorTest, AlphaInPlausibleRange)
{
    // FC-PIM (4P1B, 30 devices) should beat 6 A100s at low token
    // counts and lose in the tens - alpha lands between 8 and 96.
    CalibrationResult cal = ThresholdCalibrator::calibrate(
        platform, llm::llama65b());
    EXPECT_GE(cal.alpha, 8.0);
    EXPECT_LE(cal.alpha, 96.0);
}

TEST_F(CalibratorTest, AlphaSeparatesWinners)
{
    llm::ModelConfig m = llm::llama65b();
    CalibrationResult cal =
        ThresholdCalibrator::calibrate(platform, m);
    auto tokens_at = static_cast<std::uint32_t>(cal.alpha);
    // At alpha, PIM wins (or ties); comfortably above it, GPU wins.
    double pim_at = platform.fcExec(m, tokens_at,
                                    FcTarget::FcPim).seconds;
    double gpu_at = platform.fcExec(m, tokens_at,
                                    FcTarget::Gpu).seconds;
    EXPECT_LE(pim_at, gpu_at * 1.01);
    double pim_hi = platform.fcExec(m, tokens_at * 4,
                                    FcTarget::FcPim).seconds;
    double gpu_hi = platform.fcExec(m, tokens_at * 4,
                                    FcTarget::Gpu).seconds;
    EXPECT_LT(gpu_hi, pim_hi);
}

TEST_F(CalibratorTest, SweepRecordsPoints)
{
    CalibrationResult cal = ThresholdCalibrator::calibrate(
        platform, llm::gpt3_66b());
    EXPECT_GE(cal.points.size(), 4u);
    for (const auto &p : cal.points) {
        EXPECT_GT(p.aboveSeconds, 0.0);
        EXPECT_GT(p.belowSeconds, 0.0);
    }
    // The calibrated pair is the platform's FC threshold pair.
    EXPECT_EQ(cal.pair.below, platform.targetId("fc-pim"));
    EXPECT_EQ(cal.pair.above, platform.targetId("gpu"));
}

TEST_F(CalibratorTest, AlphaSimilarAcrossModels)
{
    // The crossover is a hardware property; it should not move by
    // more than ~2x across model sizes.
    double a65 = ThresholdCalibrator::calibrate(platform,
                                                llm::llama65b())
                     .alpha;
    double a175 = ThresholdCalibrator::calibrate(platform,
                                                 llm::gpt3_175b())
                      .alpha;
    EXPECT_LT(std::max(a65, a175) / std::min(a65, a175), 2.5);
}

TEST(Calibrator, RequiresDynamicCapablePlatform)
{
    Platform no_gpu(makeAttAccOnlyConfig());
    EXPECT_THROW(ThresholdCalibrator::calibrate(no_gpu,
                                                llm::llama65b()),
                 FatalError);
    Platform no_pim(makeA100AttAccConfig());
    EXPECT_THROW(ThresholdCalibrator::calibrate(no_pim,
                                                llm::llama65b()),
                 FatalError);
}

} // namespace
