/**
 * @file
 * Tests for the block-granular KV-cache allocator.
 */

#include <gtest/gtest.h>

#include "llm/kv_cache.hh"
#include "llm/model_config.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::llm;
using papi::sim::FatalError;
using papi::sim::PanicError;

class KvCacheTest : public ::testing::Test
{
  protected:
    KvCacheTest()
        : model(opt30b()),
          mgr(model, /*devices=*/4, /*capacity=*/1ULL << 30,
              /*block_tokens=*/16)
    {}

    ModelConfig model;
    KvCacheManager mgr;
};

TEST_F(KvCacheTest, BlockGeometry)
{
    EXPECT_EQ(mgr.blockBytes(), 16 * model.kvBytesPerToken());
    EXPECT_EQ(mgr.blocksForTokens(1), 1u);
    EXPECT_EQ(mgr.blocksForTokens(16), 1u);
    EXPECT_EQ(mgr.blocksForTokens(17), 2u);
    EXPECT_EQ(mgr.blocksForTokens(0), 0u);
}

TEST_F(KvCacheTest, AdmitGrowRelease)
{
    std::uint64_t before = mgr.freeBlocks();
    mgr.admit(1, 32); // 2 blocks
    EXPECT_EQ(mgr.freeBlocks(), before - 2);
    EXPECT_EQ(mgr.liveRequests(), 1u);
    mgr.grow(1, 40); // still 3 blocks? 40 tokens -> 3 blocks
    EXPECT_EQ(mgr.freeBlocks(), before - 3);
    mgr.grow(1, 48); // exactly 3 blocks - no change
    EXPECT_EQ(mgr.freeBlocks(), before - 3);
    mgr.release(1);
    EXPECT_EQ(mgr.freeBlocks(), before);
    EXPECT_EQ(mgr.liveRequests(), 0u);
}

TEST_F(KvCacheTest, BlocksSpreadAcrossDevices)
{
    // Allocate many blocks; the least-loaded-first policy must keep
    // devices balanced.
    mgr.admit(1, 16 * 40); // 40 blocks across 4 devices
    KvOccupancy occ = mgr.occupancy();
    EXPECT_EQ(occ.usedBlocks, 40u);
    EXPECT_NEAR(occ.deviceImbalance, 1.0, 1e-9);
}

TEST_F(KvCacheTest, AdmissionGating)
{
    std::uint64_t capacity_tokens = mgr.freeBlocks() * 16;
    EXPECT_TRUE(mgr.canAdmit(capacity_tokens));
    EXPECT_FALSE(mgr.canAdmit(capacity_tokens + 16));
    mgr.admit(9, capacity_tokens);
    EXPECT_FALSE(mgr.canAdmit(1));
    EXPECT_EQ(mgr.occupancy().utilization(), 1.0);
    mgr.release(9);
    EXPECT_TRUE(mgr.canAdmit(1));
}

TEST_F(KvCacheTest, ExhaustionIsFatal)
{
    std::uint64_t capacity_tokens = mgr.freeBlocks() * 16;
    mgr.admit(1, capacity_tokens);
    EXPECT_THROW(mgr.admit(2, 16), FatalError);
    EXPECT_THROW(mgr.grow(1, capacity_tokens + 16), FatalError);
}

TEST_F(KvCacheTest, MisuseIsFatal)
{
    mgr.admit(1, 16);
    EXPECT_THROW(mgr.admit(1, 16), FatalError);  // duplicate id
    EXPECT_THROW(mgr.grow(2, 16), FatalError);   // unknown id
    EXPECT_THROW(mgr.grow(1, 8), FatalError);    // shrink
    EXPECT_THROW(mgr.release(2), FatalError);    // unknown id
}

TEST_F(KvCacheTest, InvalidConstructionIsFatal)
{
    ModelConfig m = opt30b();
    EXPECT_THROW(KvCacheManager(m, 0, 1ULL << 30), FatalError);
    EXPECT_THROW(KvCacheManager(m, 4, 1ULL << 30, 0), FatalError);
    // Block larger than a device.
    EXPECT_THROW(KvCacheManager(m, 4, 1024, 16), FatalError);
}

TEST_F(KvCacheTest, ManyRequestsChurn)
{
    // Admit/grow/release a churn of requests; the pool must return
    // to empty with no leaks. (Use a roomy pool: one OPT-30B block
    // of 16 tokens is ~22 MB.)
    KvCacheManager roomy(model, 8, 16ULL << 30, 16);
    std::uint64_t before = roomy.freeBlocks();
    for (std::uint64_t round = 0; round < 20; ++round) {
        for (std::uint64_t id = 0; id < 10; ++id)
            roomy.admit(round * 100 + id, 64 + id * 16);
        for (std::uint64_t id = 0; id < 10; ++id)
            roomy.grow(round * 100 + id, 256 + id * 16);
        for (std::uint64_t id = 0; id < 10; ++id)
            roomy.release(round * 100 + id);
    }
    EXPECT_EQ(roomy.freeBlocks(), before);
    EXPECT_EQ(roomy.liveRequests(), 0u);
    EXPECT_NEAR(roomy.occupancy().utilization(), 0.0, 1e-12);
}

TEST_F(KvCacheTest, ExportImportMigratesBlocksAcrossPools)
{
    // The disaggregated handoff: export snapshots the footprint and
    // frees the source pool; import re-admits the same context into
    // a destination pool with identical block arithmetic.
    KvCacheManager dest(model, 4, 1ULL << 30, 16);
    const std::uint64_t before = mgr.freeBlocks();
    mgr.admit(7, 100);
    EXPECT_EQ(mgr.requestTokens(7), 100u);
    EXPECT_EQ(mgr.requestBlocks(7), mgr.blocksForTokens(100));

    KvExport x = mgr.exportRequest(7);
    EXPECT_EQ(x.tokens, 100u);
    EXPECT_EQ(x.blocks, mgr.blocksForTokens(100));
    EXPECT_EQ(x.bytes, x.blocks * mgr.blockBytes());
    // Source pool fully freed; the id is gone.
    EXPECT_EQ(mgr.freeBlocks(), before);
    EXPECT_EQ(mgr.liveRequests(), 0u);
    EXPECT_THROW(mgr.requestTokens(7), FatalError);

    dest.importRequest(7, x.tokens);
    EXPECT_EQ(dest.requestTokens(7), x.tokens);
    EXPECT_EQ(dest.requestBlocks(7), x.blocks);
    // Imported requests grow like any other.
    dest.grow(7, x.tokens + 64);
    EXPECT_EQ(dest.requestTokens(7), x.tokens + 64);
    // Double-import of a live id is a ledger error.
    EXPECT_THROW(dest.importRequest(7, 10), FatalError);
    EXPECT_THROW(mgr.exportRequest(99), FatalError);
}

/** Property sweep over block sizes: geometry invariants hold. */
class KvBlockSizes : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(KvBlockSizes, GeometryInvariants)
{
    ModelConfig m = opt30b();
    KvCacheManager mgr(m, 8, 4ULL << 30, GetParam());
    // blocksForTokens is monotone and tight.
    std::uint64_t prev = 0;
    for (std::uint64_t t = 1; t <= 4096; t *= 2) {
        std::uint64_t b = mgr.blocksForTokens(t);
        EXPECT_GE(b, prev);
        EXPECT_GE(b * GetParam(), t);
        EXPECT_LT((b - 1) * GetParam(), t);
        prev = b;
    }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, KvBlockSizes,
                         ::testing::Values(1u, 8u, 16u, 64u, 256u));

// ------------------------------------------- water-fill equivalence

/**
 * The bulk allocator's closed-form water-filling (used for large
 * grows) must reproduce the sequential least-loaded-lowest-index
 * scan (used for small grows) EXACTLY - same per-device placement,
 * not just the same totals. Randomized preloads create uneven
 * device levels; a one-call bulk grow on manager A must then leave
 * the same per-device state as block-at-a-time growth on manager B.
 */
TEST(KvWaterFill, BulkGrowMatchesSequentialScanExactly)
{
    const ModelConfig m = opt30b();
    const std::uint32_t bt = 16;
    std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
    auto rnd = [&lcg](std::uint64_t bound) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return (lcg >> 33) % bound;
    };

    for (int round = 0; round < 50; ++round) {
        const std::uint32_t devices =
            static_cast<std::uint32_t>(2 + rnd(7)); // 2..8
        KvCacheManager a(m, devices, 4ULL << 30, bt);
        KvCacheManager b(m, devices, 4ULL << 30, bt);

        // Uneven preload: a few requests of random footprint, some
        // released again to leave holes.
        const std::uint64_t preload = 1 + rnd(6);
        for (std::uint64_t id = 100; id < 100 + preload; ++id) {
            const std::uint64_t tokens = 1 + rnd(20) * bt;
            a.admit(id, tokens);
            b.admit(id, tokens);
            if (rnd(3) == 0) {
                a.release(id);
                b.release(id);
            }
        }
        ASSERT_EQ(a.usedPerDevice(), b.usedPerDevice());

        // The victim grows by a random large amount (far past the
        // <= 8-block scan threshold) in one call on A...
        a.admit(1, 1);
        b.admit(1, 1);
        const std::uint64_t target =
            bt + (9 + rnd(60)) * bt + rnd(bt);
        const std::uint64_t blocks_a = a.grow(1, target);

        // ...and one block at a time on B (every call is a 1-block
        // grow, which takes the sequential scan path by
        // construction).
        std::uint64_t blocks_b = 0;
        for (std::uint64_t t = bt + 1; ; t += bt) {
            const std::uint64_t step = std::min(t, target);
            blocks_b = b.grow(1, step);
            if (step == target)
                break;
        }

        EXPECT_EQ(blocks_a, blocks_b) << "round " << round;
        EXPECT_EQ(a.usedPerDevice(), b.usedPerDevice())
            << "round " << round << ": bulk water-fill diverged "
            << "from the sequential least-loaded definition";
        EXPECT_EQ(a.freeBlocks(), b.freeBlocks());
    }
}

} // namespace
