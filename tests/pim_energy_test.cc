/**
 * @file
 * Tests for the PIM energy and power models against the paper's
 * Fig. 7 calibration targets.
 */

#include <gtest/gtest.h>

#include "pim/energy_model.hh"
#include "pim/power_model.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::pim;
using papi::sim::FatalError;

TEST(PimEnergy, DramAccessDominatesWithoutReuse)
{
    // Paper Fig. 7(a): ~96.7% of PIM energy is DRAM access when a
    // row is used for a single computation.
    PimEnergyParams p;
    // One 1 KiB row: one activation, 1024 bytes streamed.
    PimEnergyBreakdown e = pimGemvEnergy(p, 1, 1024, 1);
    EXPECT_NEAR(e.dramShare(), 0.967, 0.02);
}

TEST(PimEnergy, DramShareDropsToAThirdAtReuse64)
{
    // Paper Fig. 7(b): at data reuse 64 the share falls to ~33.1%.
    PimEnergyParams p;
    PimEnergyBreakdown e = pimGemvEnergy(p, 1, 1024, 64);
    EXPECT_NEAR(e.dramShare(), 0.331, 0.04);
}

TEST(PimEnergy, DramComponentIndependentOfReuse)
{
    PimEnergyParams p;
    PimEnergyBreakdown e1 = pimGemvEnergy(p, 10, 10240, 1);
    PimEnergyBreakdown e8 = pimGemvEnergy(p, 10, 10240, 8);
    EXPECT_DOUBLE_EQ(e1.dramAccess, e8.dramAccess);
    EXPECT_NEAR(e8.transfer, 8.0 * e1.transfer, 1e-18);
    EXPECT_NEAR(e8.compute, 8.0 * e1.compute, 1e-18);
}

TEST(PimEnergy, ZeroReuseIsFatal)
{
    PimEnergyParams p;
    EXPECT_THROW(pimGemvEnergy(p, 1, 1024, 0), FatalError);
}

TEST(PowerModel, OneFpuPerBankJustExceedsBudgetWithoutReuse)
{
    // Paper Section 6.2: "due to the lack of data reuse ... the
    // power consumption of 1P1B exceeds the power budget", which is
    // why Attn-PIM adopts 1P2B.
    PowerModel attacc(attAccConfig(), PimEnergyParams{});
    double p = attacc.fullyFedPower(1).total();
    EXPECT_GT(p, hbm3PowerBudgetWatts);
    EXPECT_LT(p, hbm3PowerBudgetWatts * 1.25);
}

TEST(PowerModel, HalfFpuPerBankFitsBudgetWithoutReuse)
{
    PowerModel attn(attnPimConfig(), PimEnergyParams{});
    EXPECT_TRUE(attn.withinBudget(1));
}

TEST(PowerModel, FourFpusPerBankDrawRoughly480WattsUnfed)
{
    // Paper Fig. 7(c): 4P1B without data reuse sits near 470-500 W.
    PowerModel fcpim(fcPimConfig(), PimEnergyParams{});
    double p = fcpim.fullyFedPower(1).total();
    EXPECT_GT(p, 300.0);
    EXPECT_LT(p, 550.0);
}

TEST(PowerModel, ReuseBringsFcPimWithinBudget)
{
    // Paper Fig. 7(c): exploiting data reuse lets 4P1B meet the
    // 116 W budget. Our calibration crosses between reuse 4 and 8.
    PowerModel fcpim(fcPimConfig(), PimEnergyParams{});
    std::uint32_t min_reuse = fcpim.minReuseWithinBudget(64);
    EXPECT_GE(min_reuse, 4u);
    EXPECT_LE(min_reuse, 8u);
}

TEST(PowerModel, PowerMonotoneDecreasingInReuse)
{
    PowerModel fcpim(fcPimConfig(), PimEnergyParams{});
    double prev = 1e18;
    for (std::uint32_t r = 1; r <= 64; r *= 2) {
        double p = fcpim.fullyFedPower(r).total();
        EXPECT_LT(p, prev) << "reuse=" << r;
        prev = p;
    }
}

TEST(PowerModel, PowerScalesWithFpuCount)
{
    // In the fully-fed frame, doubling FPUs per bank roughly doubles
    // power (DRAM fetch + compute both scale with consumption).
    PimEnergyParams params;
    PimConfig one = attAccConfig();
    PimConfig two = attAccConfig();
    two.fpusPerGroup = 2;
    double p1 = PowerModel(one, params).fullyFedPower(1).total();
    double p2 = PowerModel(two, params).fullyFedPower(1).total();
    EXPECT_NEAR(p2 / p1, 2.0, 0.1);
}

TEST(PowerModel, BreakdownComponentsAreNonNegativeAndSum)
{
    PowerModel m(fcPimConfig(), PimEnergyParams{});
    PimPowerBreakdown b = m.fullyFedPower(8);
    EXPECT_GE(b.dramAccess, 0.0);
    EXPECT_GE(b.transfer, 0.0);
    EXPECT_GE(b.compute, 0.0);
    EXPECT_GE(b.fpuStatic, 0.0);
    EXPECT_NEAR(b.total(),
                b.dramAccess + b.transfer + b.compute + b.fpuStatic,
                1e-12);
}

TEST(PowerModel, ZeroReuseIsFatal)
{
    PowerModel m(attAccConfig(), PimEnergyParams{});
    EXPECT_THROW(m.fullyFedPower(0), FatalError);
}

TEST(PowerModel, ExecutionPowerBelowFullyFedForMemoryBoundRuns)
{
    // An actual memory-bound execution leaves FPUs idle, so its
    // average power must undercut the fully-fed figure.
    PimConfig cfg = fcPimConfig();
    PowerModel m(cfg, PimEnergyParams{});
    GemvEngine engine(cfg);
    GemvResult r = engine.run(48 * 1024, 1);
    EXPECT_LT(m.executionPower(r, 1), m.fullyFedPower(1).total());
}

} // namespace
