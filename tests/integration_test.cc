/**
 * @file
 * Integration tests: do the paper's headline comparisons hold in
 * shape? (Absolute numbers depend on the simulated substrate; these
 * tests assert orderings and rough factors, mirroring Section 7.)
 */

#include <gtest/gtest.h>

#include "core/decode_engine.hh"
#include "core/metrics.hh"
#include "core/platform.hh"
#include "core/threshold_calibrator.hh"
#include "llm/trace.hh"

namespace {

using namespace papi::core;
namespace llm = papi::llm;

class PaperShape : public ::testing::Test
{
  protected:
    static RunResult
    runOn(const PlatformConfig &cfg, const llm::ModelConfig &model,
          std::uint32_t batch_size, std::uint32_t spec_len,
          double alpha, llm::TraceCategory category)
    {
        Platform platform(cfg);
        llm::TraceGenerator gen(category, 42);
        llm::Batch batch(gen.generate(batch_size), model);
        llm::SpeculativeConfig spec;
        spec.length = spec_len;
        RunOptions opt;
        opt.alpha = alpha;
        DecodeEngine engine(platform);
        return engine.run(batch, spec, model, opt);
    }

    static double
    calibratedAlpha(const llm::ModelConfig &model)
    {
        Platform papi(makePapiConfig());
        return ThresholdCalibrator::calibrate(papi, model).alpha;
    }
};

TEST_F(PaperShape, PapiBeatsA100AttAccOnCreativeWriting)
{
    // Paper Fig. 8: PAPI averages 1.8x over A100+AttAcc. Assert the
    // geomean over a reduced grid lands clearly above 1.2x.
    llm::ModelConfig model = llm::llama65b();
    double alpha = calibratedAlpha(model);
    std::vector<double> speedups;
    for (std::uint32_t batch : {4u, 16u, 64u}) {
        for (std::uint32_t spec : {1u, 2u, 4u}) {
            RunResult papi = runOn(makePapiConfig(), model, batch,
                                   spec, alpha,
                                   llm::TraceCategory::CreativeWriting);
            RunResult base = runOn(makeA100AttAccConfig(), model,
                                   batch, spec, alpha,
                                   llm::TraceCategory::CreativeWriting);
            speedups.push_back(speedup(base, papi));
        }
    }
    double gm = geomean(speedups);
    EXPECT_GT(gm, 1.2);
    EXPECT_LT(gm, 4.0);
    // PAPI should never lose badly anywhere on the grid.
    for (double s : speedups)
        EXPECT_GT(s, 0.9);
}

TEST_F(PaperShape, PapiCrushesAttAccOnlyAtHighParallelism)
{
    // Paper Fig. 8: 11.1x average over AttAcc-only, driven by the
    // high-parallelism corners where 1P1B PIM drowns in FC compute.
    llm::ModelConfig model = llm::llama65b();
    double alpha = calibratedAlpha(model);
    RunResult papi = runOn(makePapiConfig(), model, 64, 4, alpha,
                           llm::TraceCategory::CreativeWriting);
    RunResult attacc = runOn(makeAttAccOnlyConfig(), model, 64, 4,
                             alpha,
                             llm::TraceCategory::CreativeWriting);
    double s = speedup(attacc, papi);
    EXPECT_GT(s, 5.0);
}

TEST_F(PaperShape, AttAccOnlyCompetitiveOnlyAtLowParallelism)
{
    // Paper Fig. 10(a): at batch 4, AttAcc-only beats A100+AttAcc;
    // as RLP grows it falls behind dramatically.
    llm::ModelConfig model = llm::llama65b();
    double alpha = calibratedAlpha(model);
    auto cw = llm::TraceCategory::CreativeWriting;
    RunResult attacc_lo = runOn(makeAttAccOnlyConfig(), model, 4, 1,
                                alpha, cw);
    RunResult base_lo = runOn(makeA100AttAccConfig(), model, 4, 1,
                              alpha, cw);
    EXPECT_LT(attacc_lo.seconds(), base_lo.seconds());

    RunResult attacc_hi = runOn(makeAttAccOnlyConfig(), model, 64, 1,
                                alpha, cw);
    RunResult base_hi = runOn(makeA100AttAccConfig(), model, 64, 1,
                              alpha, cw);
    EXPECT_GT(attacc_hi.seconds(), base_hi.seconds() * 2.0);
}

TEST_F(PaperShape, PapiMatchesBestStaticChoiceEverywhere)
{
    // The value proposition: dynamic scheduling tracks whichever
    // static mapping is better at each parallelism level.
    llm::ModelConfig model = llm::llama65b();
    double alpha = calibratedAlpha(model);
    auto cw = llm::TraceCategory::CreativeWriting;
    for (std::uint32_t batch : {4u, 64u}) {
        RunResult papi = runOn(makePapiConfig(), model, batch, 1,
                               alpha, cw);
        RunResult gpu_fc = runOn(makeA100AttAccConfig(), model, batch,
                                 1, alpha, cw);
        RunResult pim_fc = runOn(makePimOnlyPapiConfig(), model,
                                 batch, 1, alpha, cw);
        double best = std::min(gpu_fc.seconds(), pim_fc.seconds());
        EXPECT_LT(papi.seconds(), best * 1.15) << "batch=" << batch;
    }
}

TEST_F(PaperShape, HbmPimBaselineCloseToAttAccBaseline)
{
    // Paper Section 7.2: A100+AttAcc ~ A100+HBM-PIM because the
    // attention kernel is a small share of the runtime.
    llm::ModelConfig model = llm::llama65b();
    double alpha = calibratedAlpha(model);
    RunResult a = runOn(makeA100AttAccConfig(), model, 16, 2, alpha,
                        llm::TraceCategory::CreativeWriting);
    RunResult h = runOn(makeA100HbmPimConfig(), model, 16, 2, alpha,
                        llm::TraceCategory::CreativeWriting);
    double ratio = h.seconds() / a.seconds();
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, 1.3);
}

TEST_F(PaperShape, PimOnlyPapiBeatsAttAccOnlyInDecoding)
{
    // Paper Fig. 11: hybrid-PIM PAPI (no GPU) averages ~2.3x over
    // AttAcc-only in the decoding phase, growing with parallelism.
    llm::ModelConfig model = llm::llama65b();
    auto cw = llm::TraceCategory::CreativeWriting;
    RunOptions no_prefill;
    no_prefill.includePrefill = false;

    auto decode_run = [&](const PlatformConfig &cfg,
                          std::uint32_t batch_size,
                          std::uint32_t spec_len) {
        Platform platform(cfg);
        llm::TraceGenerator gen(cw, 42);
        llm::Batch batch(gen.generate(batch_size), model);
        llm::SpeculativeConfig spec;
        spec.length = spec_len;
        DecodeEngine engine(platform);
        return engine.run(batch, spec, model, no_prefill);
    };

    double s_lo = speedup(decode_run(makeAttAccOnlyConfig(), 4, 1),
                          decode_run(makePimOnlyPapiConfig(), 4, 1));
    double s_hi = speedup(decode_run(makeAttAccOnlyConfig(), 64, 4),
                          decode_run(makePimOnlyPapiConfig(), 64, 4));
    EXPECT_GT(s_lo, 1.0);
    EXPECT_GT(s_hi, s_lo); // benefit grows with parallelism
    EXPECT_GT(s_hi, 2.0);
    EXPECT_LT(s_hi, 6.0);
}

TEST_F(PaperShape, EnergyEfficiencyFavorsPapiOverGpuBaseline)
{
    // Paper Fig. 8(b): PAPI improves energy efficiency (3.4x avg)
    // by moving memory-bound FC work off the energy-hungry GPUs.
    llm::ModelConfig model = llm::llama65b();
    double alpha = calibratedAlpha(model);
    RunResult papi = runOn(makePapiConfig(), model, 4, 1, alpha,
                           llm::TraceCategory::CreativeWriting);
    RunResult base = runOn(makeA100AttAccConfig(), model, 4, 1,
                           alpha,
                           llm::TraceCategory::CreativeWriting);
    EXPECT_GT(energyEfficiency(base, papi), 1.3);
}

TEST_F(PaperShape, CreativeWritingGainsExceedGeneralQa)
{
    // Paper Fig. 9: general-qa speedups (1.7x) trail
    // creative-writing (1.8x) because shorter outputs shrink the
    // decoding share that PAPI accelerates.
    llm::ModelConfig model = llm::llama65b();
    double alpha = calibratedAlpha(model);
    auto gm_for = [&](llm::TraceCategory cat) {
        std::vector<double> speedups;
        for (std::uint32_t batch : {4u, 16u, 64u}) {
            RunResult papi = runOn(makePapiConfig(), model, batch, 2,
                                   alpha, cat);
            RunResult base = runOn(makeA100AttAccConfig(), model,
                                   batch, 2, alpha, cat);
            speedups.push_back(speedup(base, papi));
        }
        return geomean(speedups);
    };
    double cw = gm_for(llm::TraceCategory::CreativeWriting);
    double qa = gm_for(llm::TraceCategory::GeneralQa);
    // The paper's margin is small (1.8x vs 1.7x, ~6%); with
    // synthetic traces standing in for Dolly the ordering is within
    // workload noise, so assert near-parity with creative-writing
    // not materially behind.
    EXPECT_GT(cw, qa * 0.90);
    EXPECT_GT(cw, 1.2);
}

TEST_F(PaperShape, SpeedupOverBaselineShrinksAsTlpGrows)
{
    // Paper Fig. 10(b): as speculation length grows PAPI offloads
    // more FC work to the GPU and converges toward A100+AttAcc.
    llm::ModelConfig model = llm::llama65b();
    double alpha = calibratedAlpha(model);
    auto cw = llm::TraceCategory::CreativeWriting;
    RunResult papi_s1 = runOn(makePapiConfig(), model, 4, 1, alpha,
                              cw);
    RunResult base_s1 = runOn(makeA100AttAccConfig(), model, 4, 1,
                              alpha, cw);
    RunResult papi_s8 = runOn(makePapiConfig(), model, 4, 8, alpha,
                              cw);
    RunResult base_s8 = runOn(makeA100AttAccConfig(), model, 4, 8,
                              alpha, cw);
    double s1 = speedup(base_s1, papi_s1);
    double s8 = speedup(base_s8, papi_s8);
    EXPECT_GT(s1, s8);
    EXPECT_GE(s8, 0.95); // never worse than the baseline
}

/**
 * Parameterized sweep across all three evaluation models: PAPI must
 * beat or match both static baselines at every (batch, spec) corner.
 */
class ModelSweep : public ::testing::TestWithParam<const char *>
{
  protected:
    static llm::ModelConfig
    modelFor(const std::string &name)
    {
        if (name == "llama-65b")
            return llm::llama65b();
        if (name == "gpt3-66b")
            return llm::gpt3_66b();
        return llm::gpt3_175b();
    }
};

TEST_P(ModelSweep, PapiNeverLosesToEitherStaticBaseline)
{
    llm::ModelConfig model = modelFor(GetParam());
    Platform papi_platform(makePapiConfig());
    double alpha = ThresholdCalibrator::calibrate(papi_platform,
                                                  model)
                       .alpha;
    auto cw = llm::TraceCategory::CreativeWriting;

    auto run_cfg = [&](const PlatformConfig &cfg,
                       std::uint32_t batch_size,
                       std::uint32_t spec_len) {
        Platform platform(cfg);
        llm::TraceGenerator gen(cw, 7);
        llm::Batch batch(gen.generate(batch_size), model);
        llm::SpeculativeConfig spec;
        spec.length = spec_len;
        RunOptions opt;
        opt.alpha = alpha;
        DecodeEngine engine(platform);
        return engine.run(batch, spec, model, opt);
    };

    for (std::uint32_t batch : {4u, 64u}) {
        for (std::uint32_t spec : {1u, 4u}) {
            double papi_s = run_cfg(makePapiConfig(), batch, spec)
                                .seconds();
            double gpu_s =
                run_cfg(makeA100AttAccConfig(), batch, spec)
                    .seconds();
            double pim_s =
                run_cfg(makeAttAccOnlyConfig(), batch, spec)
                    .seconds();
            EXPECT_LT(papi_s, gpu_s * 1.05)
                << "batch=" << batch << " spec=" << spec;
            EXPECT_LT(papi_s, pim_s * 1.05)
                << "batch=" << batch << " spec=" << spec;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSweep,
                         ::testing::Values("llama-65b", "gpt3-66b",
                                           "gpt3-175b"));

} // namespace
