/**
 * @file
 * Name-parser regression tests: every *FromName/ByName helper
 * round-trips its printable names, and an unknown name dies with a
 * fatal message that lists every valid spelling (so a config typo is
 * a one-glance fix, not a source dive).
 */

#include <gtest/gtest.h>

#include <string>

#include "cluster/router.hh"
#include "core/dispatch_policy.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::core;
using papi::cluster::RouterPolicy;
using papi::cluster::routerPolicyByName;
using papi::cluster::routerPolicyName;
using papi::sim::FatalError;

/** Run @p parse on a bogus name and return the fatal message. */
template <typename Fn>
std::string
fatalMessage(Fn &&parse)
{
    try {
        parse("no-such-name");
    } catch (const FatalError &e) {
        return e.what();
    }
    ADD_FAILURE() << "parser accepted a bogus name";
    return {};
}

TEST(NameParsers, FcPolicyRoundTripAndFatalListsNames)
{
    for (FcPolicy p : {FcPolicy::AlwaysGpu, FcPolicy::AlwaysPim,
                       FcPolicy::Dynamic, FcPolicy::Oracle})
        EXPECT_EQ(fcPolicyFromName(fcPolicyName(p)), p);

    const std::string msg = fatalMessage(
        [](const std::string &s) { fcPolicyFromName(s); });
    EXPECT_NE(msg.find("no-such-name"), std::string::npos);
    for (const char *name :
         {"always-gpu", "always-pim", "dynamic", "oracle"})
        EXPECT_NE(msg.find(name), std::string::npos) << name;
}

TEST(NameParsers, FcTargetRoundTripAndFatalListsNames)
{
    for (FcTarget t : {FcTarget::Gpu, FcTarget::FcPim})
        EXPECT_EQ(fcTargetFromName(fcTargetName(t)), t);

    const std::string msg = fatalMessage(
        [](const std::string &s) { fcTargetFromName(s); });
    for (const char *name : {"gpu", "fc-pim"})
        EXPECT_NE(msg.find(name), std::string::npos) << name;
}

TEST(NameParsers, DispatchRuleRoundTripAndFatalListsNames)
{
    for (DispatchRule r : {DispatchRule::Static,
                           DispatchRule::Threshold,
                           DispatchRule::Oracle})
        EXPECT_EQ(dispatchRuleFromName(dispatchRuleName(r)), r);

    const std::string msg = fatalMessage(
        [](const std::string &s) { dispatchRuleFromName(s); });
    for (const char *name : {"static", "threshold", "oracle"})
        EXPECT_NE(msg.find(name), std::string::npos) << name;
}

TEST(NameParsers, RouterPolicyRoundTripAndFatalListsNames)
{
    for (RouterPolicy p :
         {RouterPolicy::RoundRobin, RouterPolicy::LeastOutstanding,
          RouterPolicy::SessionAffinity,
          RouterPolicy::CacheHitAware})
        EXPECT_EQ(routerPolicyByName(routerPolicyName(p)), p);

    const std::string msg = fatalMessage(
        [](const std::string &s) { routerPolicyByName(s); });
    for (const char *name :
         {"round-robin", "least-outstanding", "session-affinity",
          "cache-hit-aware"})
        EXPECT_NE(msg.find(name), std::string::npos) << name;
}

TEST(NameParsers, DispatchPolicyStringForm)
{
    // The composed "<rule>:<targets>" form round-trips...
    const DispatchPolicy p =
        dispatchPolicyFromName("threshold:fc-pim->gpu");
    EXPECT_EQ(p.rule, DispatchRule::Threshold);
    EXPECT_EQ(dispatchPolicyName(p), "threshold:fc-pim->gpu");
    // ...and malformed shapes are fatal, not silently mis-parsed.
    EXPECT_THROW(dispatchPolicyFromName("threshold"), FatalError);
    EXPECT_THROW(dispatchPolicyFromName("threshold:gpu"),
                 FatalError);
    EXPECT_THROW(dispatchPolicyFromName("static:gpu,fc-pim"),
                 FatalError);
    EXPECT_THROW(dispatchPolicyFromName("oracle:gpu,,fc-pim"),
                 FatalError);
    EXPECT_THROW(dispatchPolicyFromName("no-such-rule:gpu"),
                 FatalError);
}

} // namespace
