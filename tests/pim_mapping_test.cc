/**
 * @file
 * Tests for the Section 6.4 tensor-to-PIM mapping: shards must tile
 * the matrix exactly, stay balanced, and orient K^T and V as the
 * paper specifies.
 */

#include <gtest/gtest.h>

#include <set>

#include "pim/mapping.hh"
#include "sim/logging.hh"

namespace {

using namespace papi::pim;
using papi::sim::FatalError;

class MappingTest : public ::testing::Test
{
  protected:
    MappingTest() : planner(attnPimConfig()) {}

    /** Every matrix element appears in exactly one shard. */
    static void
    assertExactTiling(const DeviceMapping &m)
    {
        ASSERT_EQ(m.totalElements(), m.rows * m.cols);
        // Spot-check coverage on a grid of sample points.
        for (std::uint64_t r = 0; r < m.rows;
             r += std::max<std::uint64_t>(1, m.rows / 7)) {
            for (std::uint64_t c = 0; c < m.cols;
                 c += std::max<std::uint64_t>(1, m.cols / 7)) {
                int owners = 0;
                for (const auto &s : m.shards) {
                    if (r >= s.rowBegin && r < s.rowEnd &&
                        c >= s.colBegin && c < s.colEnd)
                        ++owners;
                }
                ASSERT_EQ(owners, 1)
                    << "element (" << r << "," << c << ")";
            }
        }
    }

    MappingPlanner planner;
};

TEST_F(MappingTest, HeadsRoundRobinAcrossDevices)
{
    HeadPlacement p = planner.placeHeads(64, 60);
    EXPECT_EQ(p.deviceOfHead.size(), 64u);
    EXPECT_EQ(p.maxHeadsPerDevice(), 2u); // 64 over 60
    HeadPlacement even = planner.placeHeads(60, 60);
    EXPECT_EQ(even.maxHeadsPerDevice(), 1u);
    EXPECT_THROW(planner.placeHeads(0, 60), FatalError);
    EXPECT_THROW(planner.placeHeads(8, 0), FatalError);
}

TEST_F(MappingTest, KTransposeTilesExactly)
{
    DeviceMapping m = planner.mapKTranspose(128, 2048);
    EXPECT_EQ(m.shards.size(),
              attnPimConfig().totalBanks());
    assertExactTiling(m);
}

TEST_F(MappingTest, VTilesExactly)
{
    DeviceMapping m = planner.mapV(2048, 128);
    assertExactTiling(m);
}

TEST_F(MappingTest, WeightsTileExactly)
{
    DeviceMapping m = planner.mapWeights(8192, 8192);
    assertExactTiling(m);
    // Balanced to within one row/column of the mean.
    double mean = static_cast<double>(m.totalElements()) /
                  static_cast<double>(m.shards.size());
    EXPECT_LT(static_cast<double>(m.maxShardElements()),
              mean * 1.2);
}

TEST_F(MappingTest, KtAndVOrientationsAreConjugate)
{
    // Paper Section 6.4: K^T splits the sequence across channels and
    // the head dim across banks; V does the converse. The sequence
    // dimension must therefore vary across channels for K^T but
    // across banks for V.
    DeviceMapping kt = planner.mapKTranspose(128, 2048);
    DeviceMapping v = planner.mapV(2048, 128);
    EXPECT_EQ(kt.channelAxis, PartitionAxis::ColumnWise);
    EXPECT_EQ(kt.bankAxis, PartitionAxis::RowWise);
    EXPECT_EQ(v.channelAxis, PartitionAxis::RowWise);
    EXPECT_EQ(v.bankAxis, PartitionAxis::ColumnWise);

    // For K^T: two shards in the same channel/group but different
    // banks share their column (sequence) range.
    const auto &a = kt.shards[0];
    const auto &b = kt.shards[1];
    ASSERT_EQ(a.pseudoChannel, b.pseudoChannel);
    ASSERT_EQ(a.bankGroup, b.bankGroup);
    EXPECT_EQ(a.colBegin, b.colBegin);
    EXPECT_NE(a.rowBegin, b.rowBegin);

    // For V the same pair differs in columns (head dim) instead.
    const auto &c = v.shards[0];
    const auto &d = v.shards[1];
    EXPECT_EQ(c.rowBegin, d.rowBegin);
    EXPECT_NE(c.colBegin, d.colBegin);
}

TEST_F(MappingTest, SkinnyMatricesStillTile)
{
    // head_dim (128) smaller than the bank count per group split is
    // fine; some shards may be empty but the tiling stays exact.
    DeviceMapping m = planner.mapKTranspose(2, 17);
    assertExactTiling(m);
    EXPECT_THROW(planner.mapKTranspose(0, 8), FatalError);
}

TEST_F(MappingTest, ShardBytesAgreeWithDataLayoutScale)
{
    // The busiest bank's share of a big weight block matches the
    // DataLayout mean within the one-row imbalance bound.
    PimConfig cfg = fcPimConfig();
    MappingPlanner fc_planner(cfg);
    const std::uint64_t rows = 12288, cols = 12288;
    DeviceMapping m = fc_planner.mapWeights(rows, cols);
    double mean = static_cast<double>(rows * cols) /
                  static_cast<double>(cfg.totalBanks());
    EXPECT_NEAR(static_cast<double>(m.maxShardElements()), mean,
                mean * 0.05);
}

} // namespace
