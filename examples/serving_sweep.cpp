/**
 * @file
 * Serving-operator example: sweep batch size and speculation length
 * on a PAPI system and report per-request latency, throughput, and
 * energy - the knobs an LLM serving operator tunes against SLOs
 * (paper Section 3.2's motivation).
 *
 * Usage: serving_sweep [model]   model in {llama-65b, gpt3-66b,
 * gpt3-175b, mixtral-8x22b}; default llama-65b.
 */

#include <iostream>

#include "core/decode_engine.hh"
#include "core/metrics.hh"
#include "core/platform.hh"
#include "core/threshold_calibrator.hh"
#include "example_util.hh"
#include "llm/batch.hh"
#include "llm/trace.hh"

using namespace papi;

int
main(int argc, char **argv)
{
    llm::ModelConfig model = examples::modelByName(
        argc > 1 ? argv[1] : "llama-65b");

    core::Platform papi(core::makePapiConfig());
    core::CalibrationResult cal =
        core::ThresholdCalibrator::calibrate(papi, model);
    core::DecodeEngine engine(papi);

    std::cout << "PAPI serving sweep for " << model.name
              << " (alpha = " << cal.alpha << ")\n\n";
    std::printf("%-6s %-6s %-14s %-16s %-14s %-12s\n", "batch",
                "spec", "latency/req", "decode tok/s", "energy/tok",
                "FC on GPU");

    for (std::uint32_t batch_size : {4u, 16u, 64u}) {
        for (std::uint32_t spec_len : {1u, 2u, 4u}) {
            llm::TraceGenerator gen(llm::TraceCategory::GeneralQa,
                                    123);
            llm::Batch batch(gen.generate(batch_size), model);
            llm::SpeculativeConfig spec;
            spec.length = spec_len;
            core::RunOptions opt;
            opt.alpha = cal.alpha;
            core::RunResult r = engine.run(batch, spec, model, opt);

            double latency_per_req =
                r.seconds() / static_cast<double>(batch_size);
            double energy_per_token =
                r.energyJoules /
                static_cast<double>(r.tokensGenerated);
            double gpu_share =
                100.0 * static_cast<double>(r.fcOnGpuIterations) /
                static_cast<double>(r.iterations);
            std::printf("%-6u %-6u %-14s %-16.0f %-14s %10.1f%%\n",
                        batch_size, spec_len,
                        core::formatSeconds(latency_per_req).c_str(),
                        r.decodeTokensPerSecond(),
                        core::formatJoules(energy_per_token).c_str(),
                        gpu_share);
        }
    }

    std::cout << "\nReading the table: larger batches raise "
                 "throughput but per-request latency\ntoo (the SLO "
                 "trade-off of Section 3.2); PAPI shifts FC work to "
                 "the GPU as\nRLP x TLP grows and back to FC-PIM as "
                 "batches drain.\n";
    return 0;
}
