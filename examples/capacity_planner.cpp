/**
 * @file
 * Capacity-planning example: given a model and a target workload
 * (max concurrent requests x max sequence length), size a PAPI
 * system - FC-PIM devices for the weights, Attn-PIM devices for the
 * KV cache, and a die-area feasibility check for the chosen xPyB
 * design points.
 *
 * Usage: capacity_planner [requests] [seq_len]
 */

#include <cstdlib>
#include <iostream>

#include "llm/model_config.hh"
#include "pim/area_model.hh"
#include "pim/data_layout.hh"
#include "pim/pim_config.hh"

using namespace papi;

namespace {

std::uint32_t
devicesFor(std::uint64_t bytes, const pim::PimConfig &cfg)
{
    std::uint64_t cap = cfg.capacityBytes();
    return static_cast<std::uint32_t>((bytes + cap - 1) / cap);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t requests = argc > 1
                                 ? static_cast<std::uint32_t>(
                                       std::atoi(argv[1]))
                                 : 64;
    std::uint32_t seq_len = argc > 2
                                ? static_cast<std::uint32_t>(
                                      std::atoi(argv[2]))
                                : 2048;
    if (requests == 0 || seq_len == 0) {
        std::cerr << "usage: capacity_planner [requests] [seq_len]\n";
        return 1;
    }

    pim::PimConfig fc_cfg = pim::fcPimConfig();
    pim::PimConfig attn_cfg = pim::attnPimConfig();
    pim::AreaModel area;

    std::printf("PAPI capacity plan for %u concurrent requests x %u "
                "tokens\n\n",
                requests, seq_len);
    std::printf("%-12s %-12s %-12s %-12s %-12s %-14s\n", "model",
                "weights", "FC-PIM dev", "KV cache", "Attn-PIM dev",
                "paper config");

    for (const auto &model : {llm::llama65b(), llm::gpt3_66b(),
                              llm::gpt3_175b()}) {
        std::uint64_t weight_bytes = model.totalFcBytes();
        std::uint64_t kv_bytes = static_cast<std::uint64_t>(requests) *
                                 seq_len * model.kvBytesPerToken();
        std::uint32_t fc_devs = devicesFor(weight_bytes, fc_cfg);
        std::uint32_t attn_devs = devicesFor(kv_bytes, attn_cfg);
        bool fits_paper = fc_devs <= 30 && attn_devs <= 60;
        std::printf("%-12s %-9.0f GB %-12u %-9.0f GB %-12u %-14s\n",
                    model.name.c_str(), weight_bytes / 1e9, fc_devs,
                    kv_bytes / 1e9, attn_devs,
                    fits_paper ? "fits 30+60" : "EXCEEDS 30+60");
    }

    std::printf("\nDie-area feasibility (Eq. 3, CACTI-3DD "
                "constants):\n");
    for (const auto &cfg : {fc_cfg, attn_cfg}) {
        std::uint32_t banks_per_die = cfg.totalBanks() / 8; // 8-high
        bool ok = area.fits(banks_per_die, cfg.fpusPerBank());
        std::printf("  %-9s (%s): %3u banks/die @ %.1f FPUs/bank -> "
                    "%.1f mm^2 of %.0f mm^2 [%s]\n",
                    cfg.name.c_str(), cfg.xPyBLabel().c_str(),
                    banks_per_die, cfg.fpusPerBank(),
                    area.usedArea(banks_per_die, cfg.fpusPerBank()),
                    area.dieArea(), ok ? "OK" : "TOO LARGE");
    }

    std::printf("\nKV growth note: the Attn-PIM fabric (PCIe: 32 "
                "devices, CXL: 4096) bounds\nhow far the KV fleet "
                "scales; for long-context serving choose CXL "
                "(Section 6.3).\n");
    return 0;
}
