/**
 * @file
 * Shared helpers for the example programs: model lookup by name and
 * result equality, so each example stays a focused walkthrough
 * instead of repeating argument plumbing.
 */

#ifndef PAPI_EXAMPLES_EXAMPLE_UTIL_HH
#define PAPI_EXAMPLES_EXAMPLE_UTIL_HH

#include <string>

#include "llm/model_config.hh"
#include "llm/moe.hh"
#include "sim/logging.hh"

namespace papi::examples {

/**
 * Resolve a model by CLI name. Fatal on unknown names, listing the
 * valid ones.
 */
inline llm::ModelConfig
modelByName(const std::string &name)
{
    if (name == "llama-65b")
        return llm::llama65b();
    if (name == "gpt3-66b")
        return llm::gpt3_66b();
    if (name == "gpt3-175b")
        return llm::gpt3_175b();
    if (name == "mixtral-8x22b")
        return llm::mixtral8x22b();
    sim::fatal("unknown model '", name,
               "' (llama-65b | gpt3-66b | gpt3-175b | "
               "mixtral-8x22b)");
}

} // namespace papi::examples

#endif // PAPI_EXAMPLES_EXAMPLE_UTIL_HH
