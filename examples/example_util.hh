/**
 * @file
 * Shared helpers for the example programs: model lookup by name and
 * result equality, so each example stays a focused walkthrough
 * instead of repeating argument plumbing.
 */

#ifndef PAPI_EXAMPLES_EXAMPLE_UTIL_HH
#define PAPI_EXAMPLES_EXAMPLE_UTIL_HH

#include <string>

#include "core/serving_engine.hh"
#include "llm/kv_cache.hh"
#include "llm/model_config.hh"
#include "llm/moe.hh"
#include "sim/config.hh"
#include "sim/logging.hh"

namespace papi::examples {

/**
 * Resolve a model by CLI name. Fatal on unknown names, listing the
 * valid ones.
 */
inline llm::ModelConfig
modelByName(const std::string &name)
{
    if (name == "llama-65b")
        return llm::llama65b();
    if (name == "gpt3-66b")
        return llm::gpt3_66b();
    if (name == "gpt3-175b")
        return llm::gpt3_175b();
    if (name == "mixtral-8x22b")
        return llm::mixtral8x22b();
    sim::fatal("unknown model '", name,
               "' (llama-65b | gpt3-66b | gpt3-175b | "
               "mixtral-8x22b)");
}

/**
 * Apply the shared continuous-batching CLI keys to @p serving:
 * continuous=1 (token-level + chunked prefill; chunk size via
 * prefill_chunk, default 64), prefill_chunk=N, preempt=1
 * (KV-pressure preemption, Recompute policy), and kv_pool_tokens=N
 * (shrink the KV pool to ~N tokens of @p model across
 * @p num_attn_devices devices, to force pressure in demos).
 */
inline void
applyContinuousBatchingFlags(const sim::Config &config,
                             core::ServingOptions &serving,
                             const llm::ModelConfig &model,
                             std::uint32_t num_attn_devices)
{
    const bool continuous = config.getInt("continuous", 0) != 0;
    if (continuous || config.has("prefill_chunk"))
        serving.prefillChunkTokens = static_cast<std::uint32_t>(
            config.getInt("prefill_chunk", 64));
    if (config.getInt("preempt", 0) != 0)
        serving.preemptOnKvPressure = true;
    if (config.has("kv_pool_tokens"))
        serving.kvCapacityOverrideBytes = llm::kvPoolBytesPerDevice(
            model,
            static_cast<std::uint64_t>(
                config.getInt("kv_pool_tokens")),
            num_attn_devices);
}

} // namespace papi::examples

#endif // PAPI_EXAMPLES_EXAMPLE_UTIL_HH
