/**
 * @file
 * Quickstart: simulate one batch of LLaMA-65B decoding on PAPI and
 * on the A100+AttAcc baseline, and print the comparison.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/decode_engine.hh"
#include "core/metrics.hh"
#include "core/platform.hh"
#include "core/threshold_calibrator.hh"
#include "llm/batch.hh"
#include "llm/model_config.hh"
#include "llm/trace.hh"

int
main()
{
    using namespace papi;

    // 1. Pick a model and a workload.
    llm::ModelConfig model = llm::llama65b();
    llm::TraceGenerator gen(llm::TraceCategory::CreativeWriting,
                            /*seed=*/42);
    std::vector<llm::Request> requests = gen.generate(/*count=*/16);

    // 2. Instantiate PAPI and a baseline platform.
    core::Platform papi_sys(core::makePapiConfig());
    core::Platform baseline(core::makeA100AttAccConfig());

    // 3. Calibrate PAPI's scheduling threshold offline (Sec. 5.2.1).
    core::CalibrationResult cal =
        core::ThresholdCalibrator::calibrate(papi_sys, model);
    std::cout << "calibrated alpha = " << cal.alpha << "\n";

    // 4. Decode the same batch on both platforms.
    llm::SpeculativeConfig spec;
    spec.length = 2; // speculation length (TLP)

    core::RunOptions options;
    options.alpha = cal.alpha;

    core::DecodeEngine engine_papi(papi_sys);
    core::DecodeEngine engine_base(baseline);

    llm::Batch batch_a(requests, model);
    core::RunResult papi_run =
        engine_papi.run(batch_a, spec, model, options);

    llm::Batch batch_b(requests, model);
    core::RunResult base_run =
        engine_base.run(batch_b, spec, model, options);

    // 5. Report.
    auto report = [](const char *name, const core::RunResult &r) {
        std::cout << name << ": "
                  << core::formatSeconds(r.seconds()) << " end-to-end, "
                  << r.tokensGenerated << " tokens, "
                  << core::formatJoules(r.energyJoules) << ", "
                  << r.fcOnGpuIterations << " FC iters on GPU / "
                  << r.fcOnPimIterations << " on PIM, "
                  << r.reschedules << " reschedules\n";
    };
    report("PAPI       ", papi_run);
    report("A100+AttAcc", base_run);

    std::cout << "speedup           = "
              << core::speedup(base_run, papi_run) << "x\n";
    std::cout << "energy efficiency = "
              << core::energyEfficiency(base_run, papi_run) << "x\n";
    return 0;
}
