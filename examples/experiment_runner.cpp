/**
 * @file
 * Experiment-runner example: the "downstream user" workflow. Reads
 * a platform config (file and/or key=value overrides), loads or
 * synthesizes a request trace, runs the full platform comparison,
 * and emits a machine-readable CSV/Markdown report.
 *
 * Usage:
 *   experiment_runner [key=value ...]
 * keys:
 *   config=<path>       platform config file (see config_loader.hh)
 *   trace=<path>        request trace CSV (see trace_io.hh);
 *                       synthesized if absent
 *   save_trace=<path>   write the synthesized trace out
 *   format=text|markdown|csv
 *   batch, spec_len, category=creative|qa, model, seed
 */

#include <iostream>

#include "core/config_loader.hh"
#include "core/decode_engine.hh"
#include "core/report.hh"
#include "core/threshold_calibrator.hh"
#include "llm/moe.hh"
#include "llm/trace_io.hh"

using namespace papi;

int
main(int argc, char **argv)
{
    sim::Config config;
    for (int i = 1; i < argc; ++i)
        config.parseAssignment(argv[i]);
    if (config.has("config"))
        config.merge(core::loadConfigFile(config.getString("config")));

    llm::ModelConfig model = llm::llama65b();
    std::string model_name = config.getString("model", "llama-65b");
    if (model_name == "gpt3-66b")
        model = llm::gpt3_66b();
    else if (model_name == "gpt3-175b")
        model = llm::gpt3_175b();
    else if (model_name == "mixtral-8x22b")
        model = llm::mixtral8x22b();

    // Trace: load or synthesize.
    std::vector<llm::Request> requests;
    if (config.has("trace")) {
        for (const auto &t :
             llm::loadTraceFile(config.getString("trace")))
            requests.push_back(t.request);
    } else {
        auto category = config.getString("category", "creative") ==
                                "qa"
                            ? llm::TraceCategory::GeneralQa
                            : llm::TraceCategory::CreativeWriting;
        llm::TraceGenerator gen(category, config.getInt("seed", 42));
        requests = gen.generate(static_cast<std::uint32_t>(
            config.getInt("batch", 16)));
        if (config.has("save_trace")) {
            std::vector<llm::TimedRequest> timed;
            for (const auto &r : requests)
                timed.push_back(llm::TimedRequest{r, 0.0});
            llm::saveTraceFile(config.getString("save_trace"), timed);
        }
    }

    auto format = core::ReportFormat::Text;
    std::string fmt = config.getString("format", "text");
    if (fmt == "markdown")
        format = core::ReportFormat::Markdown;
    else if (fmt == "csv")
        format = core::ReportFormat::Csv;

    llm::SpeculativeConfig spec;
    spec.length =
        static_cast<std::uint32_t>(config.getInt("spec_len", 2));

    core::Platform reference(core::makePapiConfig());
    core::RunOptions opt;
    opt.alpha =
        core::ThresholdCalibrator::calibrate(reference, model).alpha;

    // Run the user's platform plus the standard comparison set.
    const char *comparisons[] = {"papi", "a100+attacc",
                                 "attacc-only"};
    for (const char *name : comparisons) {
        sim::Config plat_cfg = config;
        plat_cfg.set("platform", std::string(name));
        core::Platform platform(core::platformFromConfig(plat_cfg));
        core::DecodeEngine engine(platform);
        llm::Batch batch(requests, model);
        core::RunResult r = engine.run(batch, spec, model, opt);
        core::writeRunReport(std::cout, platform.name(), r, format);
    }
    return 0;
}
