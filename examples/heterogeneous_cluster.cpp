/**
 * @file
 * Heterogeneous-cluster example: one shared Poisson arrival stream
 * over a front-end router fronting replicas of *different* platform
 * types - dynamic PAPI replicas next to AttAcc-only (always-PIM) and
 * A100+AttAcc (always-GPU) baselines. Before the execution-target
 * registry every replica shared one hard-coded policy enum; now each
 * replica carries its own per-phase dispatch policy, so elastic
 * C2CServe-style mixes are a first-class cluster shape.
 *
 * The example prints per-replica identity (platform name + resolved
 * FC dispatch policy), utilization, and p99 TTFT, then the cluster
 * aggregate - showing how the router load-balances across replicas
 * with very different service rates.
 *
 * Usage:
 *   heterogeneous_cluster [key=value ...]
 * e.g.
 *   heterogeneous_cluster mix=papi,attacc-only rate=120 requests=256
 *   heterogeneous_cluster mix=papi,papi,a100+attacc \
 *       policy=least-outstanding
 *
 * Keys: mix (comma-separated platform names; default
 * "papi,attacc-only"), policy (round-robin | least-outstanding |
 * session-affinity), rate (req/s), requests, max_rlp, spec_len,
 * model, seed. Continuous-batching keys: continuous=1 (token-level
 * admission + chunked prefill; chunk via prefill_chunk, default
 * 64), preempt=1 (KV-pressure preemption), kv_pool_tokens=N
 * (shrink the KV pool to force pressure). The per-replica table
 * and the aggregate then include preemption counts.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <algorithm>

#include "cluster/cluster_engine.hh"
#include "core/config_loader.hh"
#include "core/metrics.hh"
#include "core/threshold_calibrator.hh"
#include "example_util.hh"
#include "llm/arrival.hh"
#include "sim/config.hh"
#include "sim/logging.hh"

using namespace papi;

static int
run(int argc, char **argv)
{
    sim::Config cfg;
    for (int i = 1; i < argc; ++i)
        cfg.parseAssignment(argv[i]);

    llm::ModelConfig model = examples::modelByName(
        cfg.getString("model", "llama-65b"));
    const double rate = cfg.getDouble("rate", 100.0);
    const auto requests = static_cast<std::uint32_t>(
        cfg.getInt("requests", 192));
    const auto seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 7));

    // Parse the replica mix: one platform config per replica.
    std::string mix = cfg.getString("mix", "papi,attacc-only");
    std::vector<core::PlatformConfig> groups;
    std::size_t start = 0;
    while (start <= mix.size()) {
        auto comma = mix.find(',', start);
        std::string name =
            mix.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (!name.empty())
            groups.push_back(core::platformConfigByName(name));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (groups.empty())
        sim::fatal("heterogeneous_cluster: empty mix");

    // Calibrate alpha once on the reference PAPI hardware; static
    // replicas simply ignore it.
    core::Platform reference(core::makePapiConfig());
    double alpha =
        core::ThresholdCalibrator::calibrate(reference, model).alpha;

    cluster::ClusterOptions opt;
    std::string policy = cfg.getString("policy", "least-outstanding");
    opt.policy = cluster::routerPolicyByName(policy);
    opt.serving.maxRlp = static_cast<std::uint32_t>(
        cfg.getInt("max_rlp", 32));
    opt.serving.alpha = alpha;
    opt.serving.seed = seed;
    examples::applyContinuousBatchingFlags(
        cfg, opt.serving, model, groups.front().numAttnDevices);

    llm::SpeculativeConfig spec;
    spec.length = static_cast<std::uint32_t>(
        cfg.getInt("spec_len", 1));

    llm::ArrivalProcess arrivals(llm::TraceCategory::GeneralQa, rate,
                                 seed);
    auto stream = arrivals.generate(requests);

    std::printf("heterogeneous cluster: %zu replicas, router=%s, "
                "model=%s\n",
                groups.size(), policy.c_str(), model.name.c_str());
    std::printf("arrivals: %u requests at %.0f req/s "
                "(alpha = %.0f)\n\n",
                requests, rate, alpha);

    cluster::ClusterEngine engine(groups, opt);
    cluster::ClusterResult r = engine.run(stream, spec, model);

    // Per-replica identity and serving quality. The flat record
    // list is grouped by replica (each replica contributes exactly
    // its admitted requests, in completion order), so per-replica
    // slices fall out of the admission counts.
    std::printf("%-3s %-14s %-22s %-9s %-8s %-9s %-11s %-8s\n",
                "id", "platform", "fc dispatch", "requests", "util",
                "tokens/s", "p99TTFT(s)", "preempt");
    std::size_t rec_base = 0;
    for (std::uint32_t g = 0; g < r.numGroups; ++g) {
        const core::ServingResult &pr = r.perGroup[g];
        const auto count = static_cast<std::size_t>(pr.admissions);
        std::vector<double> ttft;
        ttft.reserve(count);
        for (std::size_t i = rec_base; i < rec_base + count; ++i)
            ttft.push_back(r.records[i].ttftSeconds());
        rec_base += count;
        std::sort(ttft.begin(), ttft.end());
        double p99 = ttft.empty()
                         ? 0.0
                         : core::percentileSorted(ttft, 0.99);
        double replica_tps =
            r.makespanSeconds > 0.0
                ? static_cast<double>(pr.tokensGenerated) /
                      r.makespanSeconds
                : 0.0;
        std::printf("%-3u %-14s %-22s %-9llu %-8.3f %-9.0f "
                    "%-11.3f %llu\n",
                    g, r.groupNames[g].c_str(),
                    r.groupPolicies[g].c_str(),
                    static_cast<unsigned long long>(pr.admissions),
                    r.groupUtilization[g], replica_tps, p99,
                    static_cast<unsigned long long>(pr.preemptions));
    }

    std::printf("\ncluster aggregate:\n");
    std::printf("  makespan      %.3f s\n", r.makespanSeconds);
    std::printf("  throughput    %.0f tokens/s\n",
                r.throughputTokensPerSecond());
    std::printf("  ttft p50/p95/p99   %.3f / %.3f / %.3f s\n",
                r.ttft.p50, r.ttft.p95, r.ttft.p99);
    std::printf("  tpot p50/p99       %.4f / %.4f s\n", r.tpot.p50,
                r.tpot.p99);
    std::printf("  queueing mean/p99  %.3f / %.3f s\n",
                r.meanQueueingSeconds, r.queueing.p99);
    std::printf("  preemptions   %llu (%llu resumed), stall p99 "
                "%.3f s\n",
                static_cast<unsigned long long>(r.preemptions),
                static_cast<unsigned long long>(r.resumes),
                r.preemptionStall.p99);
    std::printf("  energy        %.0f J\n", r.energyJoules);
    return 0;
}

int
main(int argc, char **argv)
{
    // Bad flags (unknown platform/policy/model names, degenerate
    // link or fault parameters) raise sim::FatalError deep inside
    // the engine; surface them as a clean CLI error instead of an
    // uncaught-exception abort.
    try {
        return run(argc, argv);
    } catch (const sim::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
