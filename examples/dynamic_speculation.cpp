/**
 * @file
 * Dynamic speculation-length example: drives the decode loop
 * manually through the library's lower-level API (Platform +
 * DynamicScheduler + Batch) and changes TLP mid-flight, as dynamic
 * speculation optimizers do (paper Section 3.2, reference [28]).
 * Shows the scheduler's TLP register being updated by "system
 * software" and the resulting FC reschedules.
 */

#include <iostream>

#include "core/platform.hh"
#include "core/scheduler.hh"
#include "core/threshold_calibrator.hh"
#include "llm/batch.hh"
#include "llm/trace.hh"

using namespace papi;

int
main()
{
    llm::ModelConfig model = llm::llama65b();
    core::Platform papi(core::makePapiConfig());
    double alpha =
        core::ThresholdCalibrator::calibrate(papi, model).alpha;
    std::cout << "alpha = " << alpha << "\n\n";

    // A small batch: with TLP=1 it is memory-bound (FC on PIM);
    // raising TLP to 8 pushes RLP x TLP past alpha (FC to GPU).
    llm::TraceGenerator gen(llm::TraceCategory::Uniform, 9);
    llm::Batch batch(gen.generateUniform(8, 64, 96), model);

    // Schedule between the platform's FC threshold pair (the
    // registry ids of fc-pim and gpu).
    std::uint32_t tlp = 1;
    core::TargetPair pair =
        papi.dispatcher(core::Phase::Fc, alpha).pair();
    core::DynamicScheduler sched(alpha, batch.liveRlp(), tlp, {},
                                 pair);
    core::ScheduleDecision decision = sched.initialSchedule();

    double total_seconds = 0.0;
    std::printf("%-6s %-5s %-5s %-9s %-7s %-10s\n", "iter", "RLP",
                "TLP", "est. AI", "FC on", "iter time");
    while (!batch.done()) {
        std::uint64_t iter = batch.iterations() + 1;

        // "System software" raises the speculation length at
        // iteration 20 to exploit the idle GPU, then drops it back
        // at iteration 60 (e.g. acceptance rates fell).
        if (iter == 20) {
            tlp = 8;
            sched.setTlp(tlp);
            decision = sched.observeStep(0);
            std::printf("-- host raised speculation length to 8 --\n");
        } else if (iter == 60) {
            tlp = 2;
            sched.setTlp(tlp);
            decision = sched.observeStep(0);
            std::printf("-- host lowered speculation length to 2 --\n");
        }

        std::uint32_t tokens = batch.liveRlp() * tlp;
        core::KernelExec fc = papi.fcExec(model, tokens,
                                          decision.target);
        core::KernelExec at =
            papi.attnExec(model, batch.liveContextLens(), tlp);
        double iter_seconds =
            fc.seconds + at.seconds + papi.otherSeconds(model);
        total_seconds += iter_seconds;

        if (iter <= 2 || decision.rescheduled || iter % 25 == 0) {
            std::printf("%-6lu %-5u %-5u %-9.0f %-7s %.3f ms%s\n",
                        static_cast<unsigned long>(iter),
                        batch.liveRlp(), tlp, decision.estimatedAi,
                        papi.targets().at(decision.target).name.c_str(),
                        iter_seconds * 1e3,
                        decision.rescheduled ? "   <-- reschedule"
                                             : "");
        }

        llm::DecodeStep step = batch.step(tlp);
        if (!batch.done())
            decision = sched.observeStep(step.eosCount);
    }

    std::printf("\ndecode time %.3f s over %lu iterations, %lu "
                "reschedules\n",
                total_seconds,
                static_cast<unsigned long>(batch.iterations()),
                static_cast<unsigned long>(sched.reschedules()));
    return 0;
}
