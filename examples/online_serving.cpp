/**
 * @file
 * Online-serving example: a Poisson request stream served with
 * mixed continuous batching on a platform chosen (and optionally
 * customized) via key=value arguments - the deployment scenario the
 * paper's introduction motivates.
 *
 * Internally this drives the cluster layer at N=1, which is
 * bit-identical to the bare single-platform ServingEngine (pinned
 * by tests/cluster_engine_test.cc) and additionally reports the
 * SLO metrics (TTFT/TPOT/queueing percentiles) the cluster layer
 * aggregates. See cluster_serving for the multi-platform sweep.
 *
 * Usage:
 *   online_serving [key=value ...]
 * e.g.
 *   online_serving platform=papi rate=40 requests=64 max_rlp=48
 *   online_serving platform=a100+attacc attn_fabric=cxl2
 *
 * Platform keys are documented in core/config_loader.hh; serving
 * keys: rate (req/s), requests, max_rlp, spec_len, model.
 */

#include <cstdio>
#include <iostream>

#include "cluster/cluster_engine.hh"
#include "core/config_loader.hh"
#include "core/metrics.hh"
#include "core/threshold_calibrator.hh"
#include "example_util.hh"
#include "llm/arrival.hh"
#include "sim/logging.hh"

using namespace papi;

static int
run(int argc, char **argv)
{
    sim::Config config;
    for (int i = 1; i < argc; ++i)
        config.parseAssignment(argv[i]);

    llm::ModelConfig model = examples::modelByName(
        config.getString("model", "llama-65b"));
    core::PlatformConfig cfg = core::platformFromConfig(config);

    // Calibrate alpha on a reference PAPI platform (the threshold is
    // a hardware property of the GPU/FC-PIM pair).
    core::Platform reference(core::makePapiConfig());
    double alpha =
        core::ThresholdCalibrator::calibrate(reference, model).alpha;

    llm::ArrivalProcess arrivals(
        llm::TraceCategory::GeneralQa,
        config.getDouble("rate", 30.0),
        config.getInt("seed", 7));
    auto reqs = arrivals.generate(static_cast<std::uint32_t>(
        config.getInt("requests", 64)));

    llm::SpeculativeConfig spec;
    spec.length =
        static_cast<std::uint32_t>(config.getInt("spec_len", 1));

    cluster::ClusterOptions opt;
    opt.numPlatforms = 1;
    opt.serving.alpha = alpha;
    opt.serving.maxRlp =
        static_cast<std::uint32_t>(config.getInt("max_rlp", 64));

    cluster::ClusterEngine engine(cfg, opt);
    cluster::ClusterResult c = engine.run(reqs, spec, model);
    const core::ServingResult &r = c.perGroup[0];

    std::cout << "platform      : " << cfg.name << "\n";
    std::cout << "model         : " << model.name << "\n";
    std::cout << "alpha         : " << alpha << "\n";
    std::cout << "requests      : " << r.admissions << "\n";
    std::cout << "makespan      : "
              << core::formatSeconds(r.makespanSeconds) << "\n";
    std::cout << "mean latency  : "
              << core::formatSeconds(r.meanLatencySeconds) << "\n";
    std::cout << "p95 latency   : "
              << core::formatSeconds(r.p95LatencySeconds) << "\n";
    std::cout << "TTFT p50/p99  : "
              << core::formatSeconds(c.ttft.p50) << " / "
              << core::formatSeconds(c.ttft.p99) << "\n";
    std::cout << "TPOT p50/p99  : "
              << core::formatSeconds(c.tpot.p50) << " / "
              << core::formatSeconds(c.tpot.p99) << "\n";
    std::cout << "queueing p99  : "
              << core::formatSeconds(c.queueing.p99) << "\n";
    std::cout << "throughput    : "
              << r.throughputTokensPerSecond() << " tok/s\n";
    std::cout << "energy        : "
              << core::formatJoules(r.energyJoules) << "\n";
    std::cout << "mean RLP      : " << r.meanRlp << "\n";
    std::cout << "FC iterations : " << r.fcOnGpuIterations
              << " GPU / " << r.fcOnPimIterations << " PIM, "
              << r.reschedules << " reschedules ("
              << r.reschedulesToGpu << " toward GPU)\n";
    return 0;
}

int
main(int argc, char **argv)
{
    // Bad flags (unknown platform/policy/model names, degenerate
    // link or fault parameters) raise sim::FatalError deep inside
    // the engine; surface them as a clean CLI error instead of an
    // uncaught-exception abort.
    try {
        return run(argc, argv);
    } catch (const sim::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
