/**
 * @file
 * Online-serving example: a Poisson request stream served with
 * mixed continuous batching on a platform chosen (and optionally
 * customized) via key=value arguments - the deployment scenario the
 * paper's introduction motivates.
 *
 * Usage:
 *   online_serving [key=value ...]
 * e.g.
 *   online_serving platform=papi rate=40 requests=64 max_rlp=48
 *   online_serving platform=a100+attacc attn_fabric=cxl2
 *
 * Platform keys are documented in core/config_loader.hh; serving
 * keys: rate (req/s), requests, max_rlp, spec_len, model.
 */

#include <iostream>

#include "core/config_loader.hh"
#include "core/metrics.hh"
#include "core/serving_engine.hh"
#include "core/threshold_calibrator.hh"
#include "llm/arrival.hh"
#include "llm/moe.hh"

using namespace papi;

int
main(int argc, char **argv)
{
    sim::Config config;
    for (int i = 1; i < argc; ++i)
        config.parseAssignment(argv[i]);

    llm::ModelConfig model = llm::llama65b();
    std::string model_name = config.getString("model", "llama-65b");
    if (model_name == "gpt3-66b")
        model = llm::gpt3_66b();
    else if (model_name == "gpt3-175b")
        model = llm::gpt3_175b();
    else if (model_name == "mixtral-8x22b")
        model = llm::mixtral8x22b();
    else if (model_name != "llama-65b")
        sim::fatal("unknown model '", model_name, "'");

    core::Platform platform(core::platformFromConfig(config));

    // Calibrate alpha on a reference PAPI platform (the threshold is
    // a hardware property of the GPU/FC-PIM pair).
    core::Platform reference(core::makePapiConfig());
    double alpha =
        core::ThresholdCalibrator::calibrate(reference, model).alpha;

    llm::ArrivalProcess arrivals(
        llm::TraceCategory::GeneralQa,
        config.getDouble("rate", 30.0),
        config.getInt("seed", 7));
    auto reqs = arrivals.generate(static_cast<std::uint32_t>(
        config.getInt("requests", 64)));

    llm::SpeculativeConfig spec;
    spec.length =
        static_cast<std::uint32_t>(config.getInt("spec_len", 1));
    core::ServingOptions opt;
    opt.alpha = alpha;
    opt.maxRlp =
        static_cast<std::uint32_t>(config.getInt("max_rlp", 64));

    core::ServingEngine engine(platform);
    core::ServingResult r = engine.run(reqs, spec, model, opt);

    std::cout << "platform      : " << platform.name() << "\n";
    std::cout << "model         : " << model.name << "\n";
    std::cout << "alpha         : " << alpha << "\n";
    std::cout << "requests      : " << r.admissions << "\n";
    std::cout << "makespan      : "
              << core::formatSeconds(r.makespanSeconds) << "\n";
    std::cout << "mean latency  : "
              << core::formatSeconds(r.meanLatencySeconds) << "\n";
    std::cout << "p95 latency   : "
              << core::formatSeconds(r.p95LatencySeconds) << "\n";
    std::cout << "throughput    : "
              << r.throughputTokensPerSecond() << " tok/s\n";
    std::cout << "energy        : "
              << core::formatJoules(r.energyJoules) << "\n";
    std::cout << "mean RLP      : " << r.meanRlp << "\n";
    std::cout << "FC iterations : " << r.fcOnGpuIterations
              << " GPU / " << r.fcOnPimIterations << " PIM, "
              << r.reschedules << " reschedules ("
              << r.reschedulesToGpu << " toward GPU)\n";
    return 0;
}
