/**
 * @file
 * Cluster-serving example: one shared Poisson arrival stream fanned
 * out by a front-end router across N platforms - the "heavy traffic
 * from many users" deployment the ROADMAP targets. By default it
 * sweeps N in {1, 2, 4, 8} and prints the scaling table, verifying
 * on the way that the N=1 cluster reproduces the bare
 * single-platform ServingEngine bit-for-bit.
 *
 * Usage:
 *   cluster_serving [key=value ...]
 * e.g.
 *   cluster_serving policy=least-outstanding rate=120 requests=256
 *   cluster_serving platforms=4 tp=2 policy=session-affinity
 *
 * Keys: platforms (omit to sweep 1,2,4,8), tp (tensor-parallel
 * degree), policy (round-robin | least-outstanding |
 * session-affinity | cache-hit-aware), rate (req/s), requests,
 * max_rlp, spec_len, sessions (multi-turn users for affinity),
 * model, seed. Platform keys (platform=..., num_gpus=..., ...) are
 * documented in core/config_loader.hh.
 *
 * Shared prefix caching (multi-turn sessions reusing KV):
 *   prefix_cache=1       enable the block-granular prefix cache on
 *                        every replica: a session's next turn skips
 *                        prefill for tokens already cached, LRU
 *                        blocks are reclaimed under KV pressure
 *                        before any preemption, and the report adds
 *                        hit/miss/evicted accounting
 *   trace=agentic        multi-turn agentic sessions over one long
 *                        shared context - the trace prefix caching
 *                        (and cache-hit-aware routing) is for; see
 *                        also long-context-rag and general-qa-shared
 * e.g.
 *   cluster_serving prefix_cache=1 trace=agentic rate=2 \
 *       policy=cache-hit-aware platforms=4
 *
 * Continuous-batching keys (the event-driven core's serving modes):
 *   continuous=1         token-level admission + chunked prefill
 *                        (chunk size via prefill_chunk, default 64)
 *   prefill_chunk=N      prefill-chunk token budget per iteration
 *   preempt=1            KV-pressure preemption/resume (Recompute)
 *   kv_pool_tokens=N     shrink the KV pool to ~N tokens to force
 *                        pressure (demo/testing knob)
 * With any of these set, the report adds preemption counts/stalls.
 *
 * Disaggregated prefill/decode keys (DistServe/Splitwise style):
 *   disagg=1             split the replicas into a prefill pool and
 *                        a decode pool; completed prefills migrate
 *                        their KV to the least-loaded decode replica
 *                        as timed transfers over a modeled link
 *   prefill_replicas=N   prefill-pool size (default 1)
 *   decode_replicas=N    decode-pool size (default 1)
 *   trace=NAME           arrival length mix: general-qa (default) |
 *                        prefill-heavy | creative-writing |
 *                        agentic | long-context-rag |
 *                        general-qa-shared | uniform
 * The report adds KV-migration counts/bytes/fabric time.
 *
 * Parallel execution:
 *   threads=N            shard the replica simulations across N
 *                        worker threads (default 1, the serial
 *                        schedule). Results are byte-identical at
 *                        every N; see the threading-model section of
 *                        docs/ARCHITECTURE.md.
 */

#include <cstdio>
#include <iostream>

#include "cluster/cluster_engine.hh"
#include "core/config_loader.hh"
#include "core/metrics.hh"
#include "core/serving_engine.hh"
#include "core/threshold_calibrator.hh"
#include "example_util.hh"
#include "llm/arrival.hh"
#include "sim/logging.hh"

using namespace papi;

namespace {

/** One cluster run over @p stream with @p n platforms. */
cluster::ClusterResult
runCluster(const core::PlatformConfig &cfg, std::uint32_t n,
           const cluster::ClusterOptions &base,
           const std::vector<llm::TimedRequest> &stream,
           const llm::SpeculativeConfig &spec,
           const llm::ModelConfig &model)
{
    cluster::ClusterOptions opt = base;
    opt.numPlatforms = n;
    cluster::ClusterEngine engine(cfg, opt);
    return engine.run(stream, spec, model);
}

double
meanUtilization(const cluster::ClusterResult &r)
{
    double sum = 0.0;
    for (double u : r.groupUtilization)
        sum += u;
    return r.groupUtilization.empty()
               ? 0.0
               : sum / static_cast<double>(r.groupUtilization.size());
}

} // namespace

static int
run(int argc, char **argv)
{
    sim::Config config;
    for (int i = 1; i < argc; ++i)
        config.parseAssignment(argv[i]);

    llm::ModelConfig model = examples::modelByName(
        config.getString("model", "llama-65b"));
    core::PlatformConfig cfg = core::platformFromConfig(config);

    // Calibrate alpha on a reference PAPI platform (the threshold is
    // a hardware property of the GPU/FC-PIM pair).
    core::Platform reference(core::makePapiConfig());
    double alpha =
        core::ThresholdCalibrator::calibrate(reference, model).alpha;

    const auto requests = static_cast<std::uint32_t>(
        config.getInt("requests", 256));
    const double rate = config.getDouble("rate", 120.0);
    const auto seed =
        static_cast<std::uint64_t>(config.getInt("seed", 7));
    llm::TraceCategory trace = llm::traceCategoryFromName(
        config.getString("trace", "general-qa"));
    llm::ArrivalProcess arrivals(trace, rate, seed);
    auto stream = arrivals.generate(requests);
    if (config.has("sessions"))
        llm::assignSessions(stream,
                            static_cast<std::uint32_t>(
                                config.getInt("sessions")),
                            seed);

    llm::SpeculativeConfig spec;
    spec.length =
        static_cast<std::uint32_t>(config.getInt("spec_len", 1));

    cluster::ClusterOptions base;
    base.policy = cluster::routerPolicyByName(
        config.getString("policy", "least-outstanding"));
    base.tensorParallelDegree =
        static_cast<std::uint32_t>(config.getInt("tp", 1));
    base.serving.alpha = alpha;
    base.serving.maxRlp =
        static_cast<std::uint32_t>(config.getInt("max_rlp", 32));
    base.workerThreads =
        static_cast<unsigned>(config.getInt("threads", 1));
    examples::applyContinuousBatchingFlags(config, base.serving,
                                           model,
                                           cfg.numAttnDevices);
    base.serving.prefixCacheEnabled =
        config.getInt("prefix_cache", 0) != 0;
    if (config.getInt("disagg", 0) != 0) {
        base.disagg.enabled = true;
        base.disagg.prefillReplicas = static_cast<std::uint32_t>(
            config.getInt("prefill_replicas", 1));
        base.disagg.decodeReplicas = static_cast<std::uint32_t>(
            config.getInt("decode_replicas", 1));
        // The policy= flag governs the admission edge, which in
        // disaggregated mode is the prefill pool's router.
        base.disagg.prefillPolicy = base.policy;
    }

    std::cout << "PAPI cluster serving: " << model.name << " on "
              << cfg.name << ", " << requests << " requests @ "
              << rate << " req/s, policy "
              << cluster::routerPolicyName(base.policy) << ", tp="
              << base.tensorParallelDegree << "\n\n";

    if (config.has("platforms") || base.disagg.enabled) {
        // Single configuration, detailed report. Disaggregated mode
        // always lands here: the pool sizes fix the replica count.
        const auto n = static_cast<std::uint32_t>(
            base.disagg.enabled
                ? (base.disagg.prefillReplicas +
                   base.disagg.decodeReplicas) *
                      base.tensorParallelDegree
                : config.getInt("platforms"));
        cluster::ClusterResult r =
            runCluster(cfg, n, base, stream, spec, model);
        std::printf("platforms     : %u (%u replica group%s)\n", n,
                    r.numGroups, r.numGroups == 1 ? "" : "s");
        if (base.disagg.enabled) {
            std::printf("pools         : %u prefill + %u decode, "
                        "KV over %s\n",
                        r.prefillGroups, r.decodeGroups,
                        base.disagg.transferLink.describe().c_str());
            std::printf("kv migrations : %llu (%.2f GB total, "
                        "%s fabric time)\n",
                        static_cast<unsigned long long>(
                            r.kvTransfers),
                        static_cast<double>(r.kvTransferBytes) / 1e9,
                        core::formatSeconds(r.kvTransferSeconds)
                            .c_str());
        }
        std::printf("makespan      : %s\n",
                    core::formatSeconds(r.makespanSeconds).c_str());
        std::printf("throughput    : %.0f tok/s\n",
                    r.throughputTokensPerSecond());
        std::printf("energy        : %s\n",
                    core::formatJoules(r.energyJoules).c_str());
        std::printf("TTFT p50/p99  : %s / %s\n",
                    core::formatSeconds(r.ttft.p50).c_str(),
                    core::formatSeconds(r.ttft.p99).c_str());
        std::printf("TPOT p50/p99  : %s / %s\n",
                    core::formatSeconds(r.tpot.p50).c_str(),
                    core::formatSeconds(r.tpot.p99).c_str());
        std::printf("queueing p99  : %s\n",
                    core::formatSeconds(r.queueing.p99).c_str());
        if (base.serving.prefillChunkTokens > 0 ||
            base.serving.preemptOnKvPressure) {
            std::printf("preemptions   : %llu (%llu resumed), "
                        "stall p99 %s\n",
                        static_cast<unsigned long long>(
                            r.preemptions),
                        static_cast<unsigned long long>(r.resumes),
                        core::formatSeconds(r.preemptionStall.p99)
                            .c_str());
        }
        if (base.serving.prefixCacheEnabled) {
            const double rate_pct =
                r.prefixLookups > 0
                    ? 100.0 * static_cast<double>(r.prefixHits) /
                          static_cast<double>(r.prefixLookups)
                    : 0.0;
            std::printf("prefix cache  : %llu/%llu hits (%.0f%%), "
                        "%llu tokens served from cache, "
                        "%llu prefilled, %.1f MB evicted\n",
                        static_cast<unsigned long long>(r.prefixHits),
                        static_cast<unsigned long long>(
                            r.prefixLookups),
                        rate_pct,
                        static_cast<unsigned long long>(
                            r.prefixHitTokens),
                        static_cast<unsigned long long>(
                            r.prefixMissTokens),
                        static_cast<double>(r.prefixEvictedBytes) /
                            1e6);
        }
        std::printf("utilization   :");
        for (double u : r.groupUtilization)
            std::printf(" %.0f%%", 100.0 * u);
        std::printf("\n\nstats dump (sim::stats):\n");
        sim::stats::StatGroup stats("cluster");
        r.populateStats(stats);
        stats.dump(std::cout);
        return 0;
    }

    // Default: scaling sweep over one shared arrival stream.
    std::printf("%-4s %-7s %-11s %-10s %-10s %-10s %-10s %-10s %-9s\n",
                "N", "groups", "makespan", "tok/s", "p50 TTFT",
                "p99 TTFT", "p99 TPOT", "p99 queue", "mean util");
    for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
        if (n % base.tensorParallelDegree != 0)
            continue;
        cluster::ClusterResult r =
            runCluster(cfg, n, base, stream, spec, model);
        std::printf(
            "%-4u %-7u %-11s %-10.0f %-10s %-10s %-10s %-10s %8.1f%%\n",
            n, r.numGroups,
            core::formatSeconds(r.makespanSeconds).c_str(),
            r.throughputTokensPerSecond(),
            core::formatSeconds(r.ttft.p50).c_str(),
            core::formatSeconds(r.ttft.p99).c_str(),
            core::formatSeconds(r.tpot.p99).c_str(),
            core::formatSeconds(r.queueing.p99).c_str(),
            100.0 * meanUtilization(r));
        if (base.serving.prefillChunkTokens > 0 ||
            base.serving.preemptOnKvPressure)
            std::printf("     ^ preemptions=%llu resumes=%llu\n",
                        static_cast<unsigned long long>(
                            r.preemptions),
                        static_cast<unsigned long long>(r.resumes));
        if (n == 1) {
            // The scale axis is only trustworthy if N=1 is the old
            // single-platform simulation exactly.
            core::Platform bare(cfg);
            core::ServingResult single = core::ServingEngine(bare)
                                             .run(stream, spec, model,
                                                  base.serving);
            bool identical =
                single.makespanSeconds ==
                    r.perGroup[0].makespanSeconds &&
                single.energyJoules == r.perGroup[0].energyJoules &&
                single.tokensGenerated ==
                    r.perGroup[0].tokensGenerated &&
                single.meanLatencySeconds ==
                    r.perGroup[0].meanLatencySeconds;
            std::printf(
                "     ^ N=1 %s the bare ServingEngine run\n",
                identical ? "bit-identical to"
                          : "DIVERGES from");
        }
    }
    std::cout << "\nReading the table: queueing delay and TTFT "
                 "tails collapse as platforms\nabsorb the shared "
                 "stream; past the knee, extra platforms only add "
                 "idle\ncapacity (mean utilization falls). "
                 "tp=<g> trades per-iteration compute\nfor "
                 "all-reduce fabric time within each group.\n";
    return 0;
}

int
main(int argc, char **argv)
{
    // Bad flags (unknown platform/policy/model names, degenerate
    // link or fault parameters) raise sim::FatalError deep inside
    // the engine; surface them as a clean CLI error instead of an
    // uncaught-exception abort.
    try {
        return run(argc, argv);
    } catch (const sim::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
