// expect:
// Known-clean fixture: every violation below carries a well-formed
// allow directive with a reason, in both same-line and previous-line
// (including stacked comment) placements.
#include <cstdint>
#include <unordered_map>

namespace fixture {

class Memo
{
  public:
    bool
    sentinel(double scale) const
    {
        return scale == 1.0; // detlint: allow(float-eq): 1.0 is the configured identity sentinel, never computed
    }

  private:
    // detlint: allow(unordered-decl): keyed find/emplace only;
    // never iterated, so bucket order cannot reach results.
    std::unordered_map<std::uint64_t, double> _memo;
};

} // namespace fixture
