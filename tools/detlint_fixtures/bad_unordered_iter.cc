// expect: unordered-iter, unordered-iter, unordered-iter
// Known-bad fixture: iterating an unordered container leaks bucket
// order into results even when the declaration itself is audited.
#include <algorithm>
#include <cstdint>
#include <unordered_map>

namespace fixture {

class Stats
{
  public:
    double
    total() const
    {
        double sum = 0.0;
        // Range-for over a hash table: FP accumulation order is
        // bucket order, which is unspecified.
        for (const auto &kv : _byId)
            sum += kv.second;
        return sum;
    }

    double
    totalExplicit() const
    {
        double sum = 0.0;
        for (auto it = _byId.begin(); it != _byId.end(); ++it)
            sum += it->second;
        return sum;
    }

    std::size_t
    countPositive() const
    {
        return static_cast<std::size_t>(std::count_if(
            _byId.begin(), _byId.end(),
            [](const auto &kv) { return kv.second > 0.0; }));
    }

  private:
    // detlint: allow(unordered-decl): fixture - the audit note is
    // present, but iteration below must still be flagged.
    std::unordered_map<std::uint64_t, double> _byId;
};

} // namespace fixture
