// expect: ptr-order, ptr-order, ptr-order
// Known-bad fixture: pointer values used as order or hash keys.
// Allocator addresses differ across runs, so any pointer-derived
// order is nondeterministic by construction.
#include <cstdint>
#include <functional>
#include <map>

namespace fixture {

struct Node
{
    int value = 0;
};

inline std::uint64_t
keyOf(const Node *n)
{
    // Address as identity key.
    return static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(n));
}

inline std::size_t
hashOf(const Node *n)
{
    return std::hash<const Node *>{}(n);
}

// Pointer-keyed ordered map: iteration order is address order.
using NodeRank = std::map<Node *, int, std::less<Node *>>;

} // namespace fixture
