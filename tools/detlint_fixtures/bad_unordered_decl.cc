// expect: unordered-decl, unordered-decl
// Known-bad fixture: unannotated unordered containers. Not compiled
// (tools/ is outside every CMake glob); consumed by
// `detlint.py --self-test`.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

class Cache
{
  public:
    std::uint64_t lookups = 0;

  private:
    std::unordered_map<std::uint64_t, double> _memo;
    // Multi-line declaration: the type and the declarator wrap.
    std::unordered_set<std::uint64_t,
                       std::hash<std::uint64_t>>
        _seen;
};

} // namespace fixture
