// expect: mutable-global, mutable-global, mutable-global
// Known-bad fixture: mutable process-global state survives across
// simulations and breaks run-to-run isolation.
#include <cstdint>

namespace fixture {

static std::uint64_t g_eventCount = 0;

inline double g_lastSeconds = 0.0;

static bool g_initialized;

} // namespace fixture
