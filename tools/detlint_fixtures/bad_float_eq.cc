// expect: float-eq, float-eq, float-eq
// Known-bad fixture: exact floating-point equality on computed
// values. Each legitimate sentinel comparison must carry an allow
// with a written reason.
namespace fixture {

inline bool
converged(double err)
{
    return err == 0.0;
}

inline bool
sameInstant(double aSeconds, double bSeconds)
{
    return aSeconds == bSeconds;
}

inline bool
notYet(double deadlineSeconds, double t)
{
    return deadlineSeconds != t;
}

} // namespace fixture
