// expect:
// Known-clean fixture: the deterministic counterparts of every rule.
// Sorted containers, seeded RNG plumbing, epsilon/ordering FP tests,
// id-keyed maps, and constants only - detlint must stay silent.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

namespace fixture {

inline constexpr double kEpsilon = 1e-12;

class SortedStats
{
  public:
    double
    total() const
    {
        double sum = 0.0;
        // std::map iterates in key order: deterministic.
        for (const auto &kv : _byId)
            sum += kv.second;
        return sum;
    }

    bool
    near(double a, double b) const
    {
        return std::fabs(a - b) < kEpsilon;
    }

    bool
    before(double aSeconds, double bSeconds) const
    {
        // Ordering comparisons on doubles are fine; only exact
        // equality needs a justification.
        return aSeconds < bSeconds;
    }

    std::uint64_t
    runtimeMs(std::uint64_t ticks) const
    {
        // Identifiers merely containing rule words (runtime, random
        // spellings, clockPeriod) must not trip token matchers.
        return ticks / _clockPeriodTicks;
    }

  private:
    std::map<std::uint64_t, double> _byId;
    std::uint64_t _clockPeriodTicks = 1000;
};

// Sorted drain of keyed data: gather, sort by key, then fold.
inline double
drainSorted(const std::map<std::uint64_t, double> &m)
{
    std::vector<std::pair<std::uint64_t, double>> rows(m.begin(),
                                                       m.end());
    std::sort(rows.begin(), rows.end());
    double sum = 0.0;
    for (const auto &r : rows)
        sum += r.second;
    return sum;
}

} // namespace fixture
