// expect: wall-clock, wall-clock, wall-clock, wall-clock
// Known-bad fixture: ambient time and entropy sources. Simulated
// time comes from the event queue; randomness from seeded sim::Rng.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

inline double
jitterSeconds()
{
    // Ambient entropy: different every run.
    std::random_device rd;
    return static_cast<double>(rd()) * 1e-9;
}

inline double
nowSeconds()
{
    auto t = std::chrono::system_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch())
        .count();
}

inline long
stamp()
{
    return static_cast<long>(time(nullptr));
}

inline int
diceRoll()
{
    return rand() % 6;
}

} // namespace fixture
