// expect: bad-allow, bad-allow, float-eq, unused-allow
// Known-bad fixture for the suppression mechanism itself:
//   1. allow with an unknown rule id        -> bad-allow
//   2. allow with no reason                 -> bad-allow (and the
//      finding it meant to cover survives)  -> float-eq
//   3. allow that suppresses nothing        -> unused-allow
namespace fixture {

// detlint: allow(no-such-rule): this rule id does not exist
inline bool
unknownRule(double x)
{
    return x > 0.5;
}

inline bool
noReason(double err)
{
    // detlint: allow(float-eq)
    return err == 0.0;
}

// detlint: allow(wall-clock): nothing below uses a clock
inline int
stale()
{
    return 42;
}

} // namespace fixture
