#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Verifies that every relative link and image target in the given
markdown files (or directories of them) resolves to an existing file
or directory, and that intra-document anchors (#section) point at a
real heading. External links (http/https/mailto) are recognised but
not fetched - CI must not depend on the network.

Usage:
    tools/check_links.py README.md docs

Exit status 1 on any broken link.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, spaces to dashes."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = CODE_FENCE.sub("", path.read_text())
    return {slugify(h) for h in HEADING.findall(text)}


def check_file(path: Path) -> list:
    problems = []
    text = CODE_FENCE.sub("", path.read_text())
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if not base:
            # Intra-document anchor.
            if fragment and slugify(fragment) not in anchors_of(path):
                problems.append(f"broken anchor '#{fragment}'")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            problems.append(f"broken link '{target}'")
            continue
        if fragment and resolved.suffix == ".md":
            if slugify(fragment) not in anchors_of(resolved):
                problems.append(
                    f"broken anchor '{target}' (no such heading)")
    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    files = []
    for arg in argv[1:]:
        p = Path(arg)
        files.extend(sorted(p.glob("**/*.md")) if p.is_dir() else [p])
    failures = 0
    for path in files:
        for problem in check_file(path):
            print(f"{path}: {problem}")
            failures += 1
    if failures:
        print(f"\n{failures} broken link(s)")
        return 1
    print(f"all links resolve across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
