#!/usr/bin/env python3
"""Doxygen-coverage audit for public API headers.

Flags public declarations (classes, structs, enums, free functions,
public member functions and fields) that carry no Doxygen comment -
neither a preceding ``/** ... */`` or ``///`` block nor a trailing
``///<``. This is the local, dependency-free half of the docs CI
gate; the other half builds real Doxygen with warnings-as-errors
(docs/Doxyfile) and subsumes this check when available.

Usage:
    tools/check_doxygen_comments.py src/core src/cluster [...]

Exit status 1 if any undocumented declaration is found.
"""

import re
import sys
from pathlib import Path

# Lines that never need their own doc comment.
SKIP = re.compile(
    r"^\s*($|#|//(?!/<)|/?\*|\}|\)|public:|private:|protected:|"
    r"namespace\b|using namespace|extern\b|template\b|friend\b|"
    r"typedef\b|static_assert\b|\[\[|[A-Z_]+\($|else|return\b)"
)
# A declaration opener: type name, class/struct/enum, or using alias.
DECL = re.compile(r"^\s*(?:class|struct|enum(?:\s+class)?|using)\s+\w|^\s*[A-Za-z_]")
FWD_DECL = re.compile(r"^\s*(?:class|struct)\s+\w+\s*;")


def ends_doc(line: str) -> bool:
    stripped = line.strip()
    return stripped.endswith("*/") or stripped.startswith("///")


def check_header(path: Path) -> list:
    problems = []
    lines = path.read_text().splitlines()
    depth = 0            # brace depth
    access = ["public"]  # access specifier per class-nesting level
    class_depths = []    # brace depth at which each class body opened
    in_block_comment = False
    in_decl = False      # inside a multi-line declaration/definition
    decl_balance = 0     # brace balance within that declaration
    skip_parens = 0      # open parens of a multi-line skipped stmt
    prev_doc = False     # previous meaningful line ended a doc comment

    for lineno, raw in enumerate(lines, 1):
        line = raw.rstrip()
        code = line

        if in_block_comment:
            if "*/" in code:
                in_block_comment = False
                prev_doc = True
            continue
        stripped = code.strip()
        if stripped.startswith("/*"):
            if "*/" not in stripped:
                in_block_comment = True
            else:
                prev_doc = True
            continue
        if not stripped:
            continue
        if stripped.startswith("///"):
            prev_doc = True
            continue
        if stripped.startswith("//"):
            continue

        # Track class/struct bodies and access regions.
        opens = code.count("{")
        closes = code.count("}")

        if re.match(r"\s*(namespace\b|using namespace)", code):
            depth += opens - closes
            prev_doc = False
            continue
        if re.match(r"\s*template\s*<", code):
            # Transparent: the doc comment covers the entity below.
            continue
        body_open = re.match(
            r"\s*(?:class|struct)\s+\w+[^;]*$", code
        ) and ("{" in code or not code.rstrip().endswith(";"))

        if re.match(r"\s*(public|private|protected)\s*:", stripped):
            if access:
                access[-1] = stripped.split(":")[0].strip()
            depth += opens - closes
            prev_doc = False
            continue

        documented_inline = "///<" in raw

        # Continuation lines of a skipped multi-line statement (a
        # static_assert or macro call whose argument list spans
        # lines) are part of that statement, not fresh declarations.
        if skip_parens > 0:
            depth += opens - closes
            skip_parens += code.count("(") - code.count(")")
            if skip_parens < 0:
                skip_parens = 0
            prev_doc = False
            continue

        if in_decl:
            depth += opens - closes
            decl_balance += opens - closes
            if decl_balance < 0:
                in_decl = False
                decl_balance = 0
            # A declaration continues across lines until a semicolon
            # or a net-closing brace line. Lines whose braces balance
            # (e.g. brace-initialized default arguments, `= {},`) do
            # not terminate it.
            elif decl_balance == 0 and (";" in code
                                        or closes > opens):
                in_decl = False
            prev_doc = False
            continue

        # Is this a declaration we should check?
        at_ns_scope = not class_depths and depth >= 1
        at_public_scope = bool(class_depths) and access[-1] == "public"
        skipped = bool(SKIP.match(code))
        checkable = (at_ns_scope or at_public_scope) and not skipped \
            and DECL.match(code) and not FWD_DECL.match(code)

        if skipped:
            balance = code.count("(") - code.count(")")
            if balance > 0:
                skip_parens = balance

        if checkable and not prev_doc and not documented_inline:
            problems.append((lineno, stripped[:60]))

        if body_open:
            kind = re.match(r"\s*(class|struct)", code).group(1)
            # A type nested in a non-public region is not public API.
            outer_public = not class_depths or access[-1] == "public"
            class_depths.append(depth)
            access.append("public" if kind == "struct" and
                          outer_public else "private")
        depth += opens - closes
        if closes > 0 and class_depths and depth <= class_depths[-1]:
            class_depths.pop()
            if len(access) > 1:
                access.pop()

        # Multi-line function signature or inline definition? (Class
        # bodies are excluded: their members are checked line-wise.)
        if checkable and not body_open:
            balance = opens - closes
            if balance > 0:
                in_decl, decl_balance = True, balance
            elif (balance == 0 and ";" not in code
                  and "}" not in code):
                in_decl, decl_balance = True, 0
        prev_doc = False

    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    failures = 0
    for root in argv[1:]:
        for path in sorted(Path(root).glob("**/*.hh")):
            for lineno, snippet in check_header(path):
                print(f"{path}:{lineno}: undocumented: {snippet}")
                failures += 1
    if failures:
        print(f"\n{failures} undocumented public declaration(s)")
        return 1
    print("all public declarations documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
