#!/usr/bin/env python3
"""Validate a BENCH_microbench.json document's schema keys.

Dependency-free smoke check for CI: after `microbench_simulator
--quick --out FILE`, this script asserts that every section the
papi-microbench/1 schema promises is present with its required keys,
including the papi-policy/1, papi-cluster/1, papi-continuous/1,
papi-disagg/1, papi-faults/1, papi-parallel/1, papi-soa/1, and
papi-prefix/1 sub-schemas. It
does not judge the performance numbers themselves - it exists so a
refactor that silently drops or renames a JSON field fails the build
rather than producing an unreadable trajectory. The exceptions are
ordering invariants the simulation must uphold (continuous beats
static TTFT, disagg beats colocated TTFT, retry beats fail-stop
goodput, request conservation, parallel runs bit-identical to
serial - plus > 2x self-speedup at 8 workers on hosts with >= 8
hardware threads, the SoA serving core reproducing the frozen
reference engine byte for byte while beating it, cache-hit-aware
routing beating round-robin p99 TTFT with a nonzero hit rate on the
multi-turn trace, and the million-request streaming cell staying
under a flat RSS ceiling), which are checked because they are
correctness properties, not performance judgements.

Usage: check_bench_schema.py BENCH_microbench.json
"""

import json
import sys

FAILURES = []


def need(obj, path, keys):
    for key in keys:
        if key not in obj:
            FAILURES.append(f"{path}: missing key '{key}'")


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1], "r", encoding="utf-8") as f:
        doc = json.load(f)

    need(doc, "$", ["schema", "quick", "event_queue", "dram",
                    "decode", "serving", "figure_cell", "policy",
                    "cluster", "continuous", "disagg", "faults",
                    "parallel", "soa", "prefix", "summary"])
    if doc.get("schema") != "papi-microbench/1":
        FAILURES.append(f"$.schema: unexpected '{doc.get('schema')}'")

    eq = doc.get("event_queue", {})
    need(eq, "$.event_queue",
         ["events_per_pattern", "patterns", "speedup_geomean"])
    for name, pat in eq.get("patterns", {}).items():
        need(pat, f"$.event_queue.patterns.{name}",
             ["new_events_per_sec", "legacy_events_per_sec",
              "speedup"])

    for shape in ("stream", "pump"):
        d = doc.get("dram", {}).get(shape, {})
        need(d, f"$.dram.{shape}",
             ["requests", "new", "legacy", "speedup"])
        for impl in ("new", "legacy"):
            need(d.get(impl, {}), f"$.dram.{shape}.{impl}",
                 ["wall_seconds", "events", "events_per_sec",
                  "requests_per_sec"])

    for sec in ("decode", "serving"):
        need(doc.get(sec, {}), f"$.{sec}",
             ["simulated_tokens", "iterations", "wall_seconds",
              "tokens_per_sec"])

    policy = doc.get("policy", {})
    need(policy, "$.policy",
         ["schema", "model", "arrival", "alpha", "policies",
          "dynamic_speedup_vs_always_gpu",
          "dynamic_speedup_vs_always_pim", "oracle_over_dynamic"])
    for i, cell in enumerate(policy.get("policies", [])):
        need(cell, f"$.policy.policies[{i}]",
             ["policy", "dispatch", "makespan_seconds",
              "sim_tokens_per_sec", "mean_latency_seconds",
              "p95_latency_seconds", "reschedules",
              "fc_gpu_iterations", "fc_pim_iterations",
              "energy_joules", "wall_seconds"])

    clus = doc.get("cluster", {})
    need(clus, "$.cluster",
         ["schema", "model", "policy", "tp_degree", "arrival",
          "n1_matches_serving_engine", "scaling"])
    if clus.get("n1_matches_serving_engine") is not True:
        FAILURES.append(
            "$.cluster.n1_matches_serving_engine: the N=1 cluster "
            "must stay bit-identical to ServingEngine")
    for i, cell in enumerate(clus.get("scaling", [])):
        need(cell, f"$.cluster.scaling[{i}]",
             ["platforms", "groups", "makespan_seconds",
              "sim_tokens_per_sec", "ttft_p50_seconds",
              "ttft_p99_seconds", "tpot_p50_seconds",
              "queueing_mean_seconds", "mean_utilization",
              "energy_joules", "wall_seconds"])

    cont = doc.get("continuous", {})
    need(cont, "$.continuous",
         ["schema", "model", "arrival", "prefill_chunk_tokens",
          "kv_pool_tokens", "modes",
          "continuous_ttft_p99_speedup_vs_static",
          "preemption_count"])
    if cont.get("schema") != "papi-continuous/1":
        FAILURES.append("$.continuous.schema: unexpected "
                        f"'{cont.get('schema')}'")
    modes = [c.get("mode") for c in cont.get("modes", [])]
    if modes != ["static", "continuous", "continuous+preemption"]:
        FAILURES.append(f"$.continuous.modes: unexpected set {modes}")
    for i, cell in enumerate(cont.get("modes", [])):
        need(cell, f"$.continuous.modes[{i}]",
             ["mode", "admission", "makespan_seconds",
              "sim_tokens_per_sec", "ttft_p50_seconds",
              "ttft_p99_seconds", "queueing_mean_seconds",
              "preemptions", "preemption_stall_p99_seconds",
              "wall_seconds"])
    speedup = cont.get("continuous_ttft_p99_speedup_vs_static", 0)
    if not isinstance(speedup, (int, float)) or speedup <= 1.0:
        FAILURES.append(
            "$.continuous.continuous_ttft_p99_speedup_vs_static: "
            f"continuous batching must beat static batching on p99 "
            f"TTFT (got {speedup})")
    if not isinstance(cont.get("preemption_count"), int) or \
            cont.get("preemption_count", 0) <= 0:
        FAILURES.append(
            "$.continuous.preemption_count: the preemption mode "
            "must actually preempt under the forced KV pool")

    dis = doc.get("disagg", {})
    need(dis, "$.disagg",
         ["schema", "model", "arrival", "prefill_chunk_tokens",
          "replicas", "prefill_replicas", "decode_replicas",
          "transfer_link", "modes",
          "disagg_ttft_p99_speedup_vs_colocated",
          "disagg_tpot_p99_speedup_vs_colocated",
          "kv_transfer_count"])
    if dis.get("schema") != "papi-disagg/1":
        FAILURES.append("$.disagg.schema: unexpected "
                        f"'{dis.get('schema')}'")
    if dis.get("arrival", {}).get("trace") != "prefill-heavy":
        FAILURES.append("$.disagg.arrival.trace: the comparison "
                        "runs on the prefill-heavy trace")
    dmodes = [c.get("mode") for c in dis.get("modes", [])]
    if dmodes != ["colocated", "disaggregated"]:
        FAILURES.append(f"$.disagg.modes: unexpected set {dmodes}")
    for i, cell in enumerate(dis.get("modes", [])):
        need(cell, f"$.disagg.modes[{i}]",
             ["mode", "makespan_seconds", "sim_tokens_per_sec",
              "ttft_p50_seconds", "ttft_p99_seconds",
              "tpot_p50_seconds", "tpot_p99_seconds",
              "queueing_mean_seconds", "energy_joules",
              "kv_transfers", "kv_transfer_gb",
              "kv_transfer_seconds", "wall_seconds"])
    ttft_win = dis.get("disagg_ttft_p99_speedup_vs_colocated", 0)
    if not isinstance(ttft_win, (int, float)) or ttft_win <= 1.0:
        FAILURES.append(
            "$.disagg.disagg_ttft_p99_speedup_vs_colocated: "
            "disaggregated serving must beat colocated p99 TTFT on "
            f"the committed prefill-heavy trace (got {ttft_win})")
    if not isinstance(dis.get("kv_transfer_count"), int) or \
            dis.get("kv_transfer_count", 0) <= 0:
        FAILURES.append(
            "$.disagg.kv_transfer_count: the disaggregated mode "
            "must actually migrate KV across the link")
    dreqs = dis.get("arrival", {}).get("requests")
    if isinstance(dreqs, int) and \
            dis.get("kv_transfer_count") != dreqs:
        FAILURES.append(
            "$.disagg.kv_transfer_count: every request must cross "
            f"the link exactly once (got "
            f"{dis.get('kv_transfer_count')} transfers for {dreqs} "
            "requests)")
    if dis.get("modes") and \
            dis["modes"][0].get("kv_transfers", -1) != 0:
        FAILURES.append(
            "$.disagg.modes[0].kv_transfers: the colocated baseline "
            "must not migrate KV")

    flt = doc.get("faults", {})
    need(flt, "$.faults",
         ["schema", "model", "arrival", "prefill_replicas",
          "decode_replicas", "plan", "recovery",
          "no_fault_matches_baseline", "modes",
          "retry_goodput_speedup_vs_failstop"])
    if flt.get("schema") != "papi-faults/1":
        FAILURES.append("$.faults.schema: unexpected "
                        f"'{flt.get('schema')}'")
    need(flt.get("plan", {}), "$.faults.plan",
         ["victim_replica", "crash_seconds", "restart_seconds"])
    need(flt.get("recovery", {}), "$.faults.recovery",
         ["max_attempts", "retry_backoff_seconds",
          "deadline_seconds"])
    if flt.get("no_fault_matches_baseline") is not True:
        FAILURES.append(
            "$.faults.no_fault_matches_baseline: arming a crash-"
            "free FaultPlan must stay bit-identical to no injector")
    fmodes = [c.get("mode") for c in flt.get("modes", [])]
    if fmodes != ["no-fault", "fail-stop", "retry", "retry+shed"]:
        FAILURES.append(f"$.faults.modes: unexpected set {fmodes}")
    for i, cell in enumerate(flt.get("modes", [])):
        need(cell, f"$.faults.modes[{i}]",
             ["mode", "requests_offered", "requests_served",
              "failed_requests", "shed_requests",
              "retried_requests", "retry_recomputed_tokens",
              "injected_crashes", "replica_restarts",
              "kv_transfer_fallbacks", "makespan_seconds",
              "goodput_tokens_per_sec", "slo_attainment",
              "ttft_p99_seconds", "wall_seconds"])
        served = cell.get("requests_served", 0)
        failed = cell.get("failed_requests", 0)
        shed = cell.get("shed_requests", 0)
        offered = cell.get("requests_offered", -1)
        if served + failed + shed != offered:
            FAILURES.append(
                f"$.faults.modes[{i}]: request conservation broken "
                f"({served} served + {failed} failed + {shed} shed "
                f"!= {offered} offered)")
        injected = cell.get("injected_crashes", 0)
        if cell.get("mode") == "no-fault" and injected != 0:
            FAILURES.append(
                "$.faults.modes[0].injected_crashes: the no-fault "
                "baseline must not crash")
        if cell.get("mode") != "no-fault" and injected <= 0:
            FAILURES.append(
                f"$.faults.modes[{i}].injected_crashes: the fault "
                "modes must actually execute the planned crash")
    if len(flt.get("modes", [])) == 4:
        if flt["modes"][1].get("failed_requests", 0) <= 0:
            FAILURES.append(
                "$.faults.modes[1].failed_requests: fail-stop must "
                "drop the requests the crash harvests")
        if flt["modes"][2].get("retried_requests", 0) <= 0:
            FAILURES.append(
                "$.faults.modes[2].retried_requests: the retry mode "
                "must actually resubmit lost requests")
        if flt["modes"][3].get("shed_requests", 0) <= 0:
            FAILURES.append(
                "$.faults.modes[3].shed_requests: the retry+shed "
                "mode must actually shed past-deadline requests")
    win = flt.get("retry_goodput_speedup_vs_failstop", 0)
    if not isinstance(win, (int, float)) or win <= 1.0:
        FAILURES.append(
            "$.faults.retry_goodput_speedup_vs_failstop: retry with "
            "failover must convert fail-stop's dropped requests "
            f"into goodput (got {win})")

    par = doc.get("parallel", {})
    need(par, "$.parallel",
         ["schema", "model", "arrival", "replicas",
          "hardware_threads", "parallel_matches_serial", "workers",
          "speedup_at_8_workers"])
    if par.get("schema") != "papi-parallel/1":
        FAILURES.append("$.parallel.schema: unexpected "
                        f"'{par.get('schema')}'")
    pworkers = [c.get("workers") for c in par.get("workers", [])]
    if pworkers != [1, 2, 4, 8]:
        FAILURES.append(
            f"$.parallel.workers: unexpected worker set {pworkers}")
    for i, cell in enumerate(par.get("workers", [])):
        need(cell, f"$.parallel.workers[{i}]",
             ["workers", "wall_seconds", "speedup_vs_serial",
              "matches_serial"])
        if cell.get("matches_serial") is not True:
            FAILURES.append(
                f"$.parallel.workers[{i}].matches_serial: every "
                "worker count must reproduce the serial result "
                "byte for byte")
    # The determinism contract is unconditional; the speedup floor
    # only binds when the host can actually run 8 shard advances
    # concurrently (a 1- or 2-core CI runner cannot show scaling,
    # and wall-clock there measures the scheduler, not the design).
    if par.get("parallel_matches_serial") is not True:
        FAILURES.append(
            "$.parallel.parallel_matches_serial: parallel runs must "
            "be bit-identical to the serial schedule")
    hw = par.get("hardware_threads", 0)
    s8 = par.get("speedup_at_8_workers", 0)
    if isinstance(hw, int) and hw >= 8:
        if not isinstance(s8, (int, float)) or s8 <= 2.0:
            FAILURES.append(
                "$.parallel.speedup_at_8_workers: with >= 8 "
                "hardware threads, 8 workers must beat the serial "
                f"schedule by more than 2x (got {s8})")

    soa = doc.get("soa", {})
    need(soa, "$.soa",
         ["schema", "model", "workload", "build", "soa",
          "reference", "soa_matches_reference", "speedup"])
    if soa.get("schema") != "papi-soa/1":
        FAILURES.append(f"$.soa.schema: unexpected "
                        f"'{soa.get('schema')}'")
    need(soa.get("workload", {}), "$.soa.workload",
         ["trace", "requests", "episodes", "input_len",
          "output_len", "max_rlp", "spec_length"])
    need(soa.get("build", {}), "$.soa.build",
         ["compiler_flags", "simd_width_bits", "native_build"])
    for side in ("soa", "reference"):
        need(soa.get(side, {}), f"$.soa.{side}",
             ["simulated_tokens", "iterations", "wall_seconds",
              "tokens_per_sec"])
    # Determinism is unconditional: the SoA engine must replay the
    # exact token stream of the frozen pre-SoA reference, quick mode
    # included - a representation change has no license to perturb
    # results.
    if soa.get("soa_matches_reference") is not True:
        FAILURES.append(
            "$.soa.soa_matches_reference: the SoA serving core must "
            "reproduce the frozen reference engine byte for byte")
    if soa.get("soa", {}).get("simulated_tokens") != \
            soa.get("reference", {}).get("simulated_tokens"):
        FAILURES.append(
            "$.soa: both engines must simulate the identical token "
            "stream for the throughput ratio to mean anything")
    # The speedup floor is a correctness property of the PR's claim
    # (the SoA rewrite exists to be faster): any regression below
    # parity fails even in quick mode. The full >= 5x headline is
    # asserted only on the committed non-quick trajectory.
    soa_win = soa.get("speedup", 0)
    if not isinstance(soa_win, (int, float)) or soa_win <= 1.0:
        FAILURES.append(
            "$.soa.speedup: the SoA core must beat the frozen "
            f"reference engine (got {soa_win})")

    pfx = doc.get("prefix", {})
    need(pfx, "$.prefix",
         ["schema", "model", "arrival", "prefill_chunk_tokens",
          "replicas", "policies",
          "cache_hit_aware_ttft_p99_speedup_vs_round_robin",
          "cache_hit_aware_hit_rate", "streaming"])
    if pfx.get("schema") != "papi-prefix/1":
        FAILURES.append(f"$.prefix.schema: unexpected "
                        f"'{pfx.get('schema')}'")
    if pfx.get("arrival", {}).get("trace") != "agentic":
        FAILURES.append("$.prefix.arrival.trace: the routing "
                        "comparison runs on the multi-turn agentic "
                        "trace")
    pnames = [c.get("policy") for c in pfx.get("policies", [])]
    if pnames != ["round-robin", "session-affinity",
                  "cache-hit-aware"]:
        FAILURES.append(f"$.prefix.policies: unexpected set {pnames}")
    for i, cell in enumerate(pfx.get("policies", [])):
        need(cell, f"$.prefix.policies[{i}]",
             ["policy", "makespan_seconds", "ttft_p50_seconds",
              "ttft_p99_seconds", "prefix_lookups", "prefix_hits",
              "hit_rate", "prefix_hit_tokens", "prefix_miss_tokens",
              "prefix_evicted_bytes", "wall_seconds"])
        # The token ledger holds per cell: every keyed prompt token
        # is either a hit or a miss, and hits are real lookups.
        if cell.get("prefix_hits", 0) > cell.get("prefix_lookups", 0):
            FAILURES.append(
                f"$.prefix.policies[{i}]: more hits than lookups")
        if cell.get("policy") != "round-robin" and \
                cell.get("hit_rate", 0) <= 0:
            FAILURES.append(
                f"$.prefix.policies[{i}].hit_rate: the {pnames[i]} "
                "policy must actually hit the cache on the "
                "multi-turn trace")
    # The CacheHitAware policy's reason to exist: following cached
    # bytes must beat scattering a session's turns across replicas.
    cha_win = pfx.get(
        "cache_hit_aware_ttft_p99_speedup_vs_round_robin", 0)
    if not isinstance(cha_win, (int, float)) or cha_win <= 1.0:
        FAILURES.append(
            "$.prefix.cache_hit_aware_ttft_p99_speedup_vs_round_"
            "robin: cache-hit-aware routing must beat round-robin "
            f"p99 TTFT on the agentic trace (got {cha_win})")
    cha_rate = pfx.get("cache_hit_aware_hit_rate", 0)
    if not isinstance(cha_rate, (int, float)) or cha_rate <= 0:
        FAILURES.append(
            "$.prefix.cache_hit_aware_hit_rate: the headline cell "
            f"must have a nonzero hit rate (got {cha_rate})")
    stm = pfx.get("streaming", {})
    need(stm, "$.prefix.streaming",
         ["trace", "rate_rps", "requests", "seed", "replicas",
          "max_rlp", "record_capacity", "requests_served",
          "stats_truncated", "records_retained", "ttft_p99_seconds",
          "mean_latency_seconds", "wall_seconds",
          "requests_per_sec", "rss_before_mb", "rss_peak_mb",
          "rss_growth_mb"])
    if stm.get("requests", 0) < 1_000_000:
        FAILURES.append(
            "$.prefix.streaming.requests: the streaming cell must "
            f"offer at least one million requests "
            f"(got {stm.get('requests')})")
    if stm.get("requests_served", 0) != stm.get("requests", -1):
        FAILURES.append(
            "$.prefix.streaming.requests_served: the fault-free "
            "streaming run must serve every offered request")
    if stm.get("stats_truncated") is not True:
        FAILURES.append(
            "$.prefix.streaming.stats_truncated: a million requests "
            "must overflow record_capacity, or the bounded-memory "
            "path was never exercised")
    cap = stm.get("record_capacity", 0)
    replicas = stm.get("replicas", 0)
    if isinstance(cap, int) and isinstance(replicas, int) and \
            stm.get("records_retained", -1) > cap * replicas:
        FAILURES.append(
            "$.prefix.streaming.records_retained: retained records "
            "exceed record_capacity x replicas - the cap leaked")
    # The constant-memory claim: the cell's RSS high-water growth
    # must be a flat allowance (record caps, in-flight arrivals),
    # not something that scales with a million-request trace
    # (materialized, that trace alone is > 1 GB of records).
    growth = stm.get("rss_growth_mb", 1 << 30)
    if not isinstance(growth, (int, float)) or growth >= 512.0:
        FAILURES.append(
            "$.prefix.streaming.rss_growth_mb: the million-request "
            "streaming cell must stay under a flat 512 MiB RSS "
            f"growth ceiling (got {growth})")

    need(doc.get("summary", {}), "$.summary",
         ["event_queue_speedup_geomean", "dram_stream_speedup",
          "dram_pump_speedup", "overall_speedup_geomean"])

    if FAILURES:
        for f_ in FAILURES:
            print(f"FAIL {f_}")
        print(f"{len(FAILURES)} schema failure(s)")
        return 1
    print(f"OK {sys.argv[1]}: papi-microbench/1 schema valid "
          "(incl. policy, cluster, continuous, disagg, faults, "
          "parallel, soa, prefix sub-schemas)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
