#!/usr/bin/env python3
"""detlint - the repo's determinism-contract linter.

Every layer of this codebase is pinned by *dynamic* bitwise-determinism
checks (fixed-seed goldens, lockstep differentials, the parallel
identity grid, TSan). detlint is the *static* half of that contract: a
dependency-free, house-style linter (like check_doxygen_comments.py)
that walks C++ sources and flags constructs which historically turn
into order leaks or run-to-run divergence long before a golden breaks:

  unordered-decl   Declaring a std::unordered_{map,set,multimap,
                   multiset} object. Hash-table iteration order is
                   unspecified and changes across libstdc++ versions,
                   so every unordered container in the tree must carry
                   a written audit note (an allow directive) proving
                   its use is keyed lookup only - or be replaced with
                   a sorted container / sorted drain.
  unordered-iter   Iterating (range-for, begin()/end() family,
                   std::for_each/accumulate/transform/reduce) over an
                   identifier declared in the same file as an
                   unordered container. This is the actual leak; it is
                   flagged even when the declaration is allowed.
  wall-clock       Wall-clock or ambient-entropy sources: rand/srand,
                   std::random_device, system_clock / steady_clock /
                   high_resolution_clock, time(), clock(),
                   gettimeofday, clock_gettime. Simulated time comes
                   from the event queue; randomness comes from
                   sim::Rng with an explicit seed.
  ptr-order        Ordering or hashing pointer *values*:
                   uintptr_t/intptr_t conversions, std::hash or
                   std::less over pointer types. Allocator addresses
                   differ across runs, so any pointer-keyed order is
                   nondeterministic by construction. (Direct `p < q`
                   comparisons are beyond a lexical tool - reviewers
                   own that half.)
  float-eq         == / != where either operand is a floating-point
                   literal or a *Seconds-named identifier (the repo's
                   pervasive double convention). Exact FP equality is
                   legitimate only for same-source sentinel values -
                   each such site must say so in an allow reason.
  mutable-global   static or inline variable definitions that are not
                   const/constexpr/constinit: mutable process-global
                   state survives across simulations and breaks
                   run-to-run isolation.

Suppression syntax (reason is REQUIRED; the linter enforces it):

    code;  // detlint: allow(<rule>): <reason>

or on its own line, covering the next code line:

    // detlint: allow(<rule>): <reason>
    code;

Directives with an unknown rule id or an empty reason are themselves
findings (bad-allow), and a directive that suppresses nothing is a
finding too (unused-allow) so stale audits cannot linger.

Usage:
    tools/detlint.py src [more paths...]     lint .hh/.cc/.cpp trees
    tools/detlint.py --list-rules            print the rule table
    tools/detlint.py --self-test             run the fixture suite

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Fixture self-test: every file in tools/detlint_fixtures/ declares its
expected findings in a leading `// expect: rule, rule, ...` comment
(empty list = must lint clean); --self-test runs the linter over each
fixture and compares the found rule multiset against the declaration,
also asserting the documented exit-code semantics.
"""

import re
import sys
from pathlib import Path

RULES = {
    "unordered-decl": "unordered container declared (audit required: "
                      "iteration order is unspecified)",
    "unordered-iter": "iteration over an unordered container "
                      "(iteration order leaks into results)",
    "wall-clock": "wall-clock / ambient-entropy source (use the event "
                  "queue and seeded sim::Rng)",
    "ptr-order": "pointer value used as an order or hash key "
                 "(addresses differ across runs)",
    "float-eq": "floating-point == / != (legitimate only for "
                "same-source sentinels; say why)",
    "mutable-global": "mutable static/inline variable (process-global "
                      "state breaks run isolation)",
}
# Meta findings about the suppression mechanism itself; these cannot
# be suppressed.
META_RULES = {
    "bad-allow": "malformed allow directive (unknown rule or missing "
                 "reason)",
    "unused-allow": "allow directive that suppresses no finding "
                    "(stale audit)",
}

ALLOW_RE = re.compile(
    r"//\s*detlint:\s*allow\(([a-z-]+)\)(?::\s*(.*?))?\s*$")
UNORDERED_TYPE_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<")
WALL_CLOCK_RES = [
    re.compile(r"(?<![\w.])s?rand\s*\("),
    re.compile(r"\brandom_device\b"),
    re.compile(r"\b(?:system|steady|high_resolution)_clock\b"),
    re.compile(r"(?<![\w.])time\s*\("),
    re.compile(r"(?<![\w.])clock\s*\("),
    re.compile(r"\bgettimeofday\b"),
    re.compile(r"\bclock_gettime\b"),
]
PTR_ORDER_RES = [
    re.compile(r"\bu?intptr_t\b"),
    re.compile(r"\bhash\s*<[^<>]*\*[^<>]*>"),
    re.compile(r"\bless\s*<[^<>]*\*[^<>]*>"),
]
FLOAT_LIT = r"(?:\d+\.\d*|\.\d+|\d+\.|\d+[eE][-+]?\d+)(?:[eE][-+]?\d+)?f?"
FLOAT_EQ_RES = [
    re.compile(r"(?:==|!=)\s*[-+]?" + FLOAT_LIT + r"(?![\w.])"),
    re.compile(r"(?<![\w.])" + FLOAT_LIT + r"\s*(?:==|!=)"),
    re.compile(r"\b\w*[sS]econds\s*(?:==|!=)"),
    re.compile(r"(?:==|!=)\s*\w*(?:[sS]econds)\b"),
]
STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"')
CHAR_RE = re.compile(r"'(?:\\.|[^'\\])'")


class Finding:
    def __init__(self, path, lineno, rule, detail):
        self.path, self.lineno = path, lineno
        self.rule, self.detail = rule, detail

    def __str__(self):
        return (f"{self.path}:{self.lineno}: [{self.rule}] "
                f"{self.detail}")


class Allow:
    """One parsed allow directive and the lines it covers."""

    def __init__(self, lineno, rule, covered):
        self.lineno, self.rule = lineno, rule
        self.covered = covered  # set of line numbers
        self.used = False


def strip_code(lines):
    """Return per-line code with comments and literals blanked.

    Keeps line count identical so findings cite real line numbers.
    """
    code = []
    in_block = False
    for raw in lines:
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                code.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        line = STRING_RE.sub('""', line)
        line = CHAR_RE.sub("''", line)
        # Block comments opening (and possibly closing) on this line.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        cut = line.find("//")
        if cut >= 0:
            line = line[:cut]
        code.append(line)
    return code


def parse_allows(lines, code, findings, path):
    """Extract allow directives; malformed ones become findings."""
    allows = []
    n = len(lines)
    for i, raw in enumerate(lines):
        m = ALLOW_RE.search(raw)
        if not m:
            if "detlint:" in raw and "expect:" not in raw:
                findings.append(Finding(
                    path, i + 1, "bad-allow",
                    "unparseable detlint directive (syntax: "
                    "// detlint: allow(<rule>): <reason>)"))
            continue
        rule, reason = m.group(1), (m.group(2) or "").strip()
        if rule not in RULES:
            findings.append(Finding(
                path, i + 1, "bad-allow",
                f"unknown rule '{rule}' (known: "
                f"{', '.join(sorted(RULES))})"))
            continue
        if not reason:
            findings.append(Finding(
                path, i + 1, "bad-allow",
                f"allow({rule}) has no reason - every suppression "
                "must justify itself"))
            continue
        covered = {i + 1}
        if not code[i].strip():
            # Pure-comment directive: cover the next code line,
            # skipping blanks and further comment-only lines (so
            # several directives can stack above one statement).
            j = i + 1
            while j < n and not code[j].strip():
                j += 1
            if j < n:
                covered.add(j + 1)
        allows.append(Allow(i + 1, rule, covered))
    return allows


def unordered_names(code):
    """Identifiers declared (in this file) as unordered containers.

    Returns {name: decl_lineno}. Handles declarations that wrap
    across lines (template argument lists, long member names).
    """
    names = {}
    n = len(code)
    i = 0
    while i < n:
        m = UNORDERED_TYPE_RE.search(code[i])
        if not m:
            i += 1
            continue
        # Collect text from the template opener until the declarator's
        # terminating ';' (or until we give up after a few lines).
        text = code[i][m.start():]
        decl_line = i + 1
        j = i
        while ";" not in text and j + 1 < n and j - i < 8:
            j += 1
            text += " " + code[j]
        # Walk past the balanced <...> of the container type.
        depth = 0
        k = text.find("<")
        while k < len(text):
            if text[k] == "<":
                depth += 1
            elif text[k] == ">":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        rest = text[k + 1:].split(";")[0]
        # A '(' right after the declarator means function/param use;
        # only object declarations get recorded for the iter rule.
        for dm in re.finditer(r"([A-Za-z_]\w*)\s*(?![\w(])", rest):
            word = dm.group(1)
            if word in ("const", "mutable", "static", "inline",
                        "std", "typename"):
                continue
            names[word] = decl_line
            break
        i = j + 1
    return names


def lint_lines(path, lines):
    """Lint one file's contents; returns a list of Findings."""
    findings = []
    code = strip_code(lines)
    allows = parse_allows(lines, code, findings, path)
    names = unordered_names(code)

    raw_findings = []

    # --- unordered-decl ------------------------------------------
    covered_decl_lines = set()
    i = 0
    while i < len(code):
        m = UNORDERED_TYPE_RE.search(code[i])
        if m and (i + 1) not in covered_decl_lines:
            raw_findings.append(Finding(
                path, i + 1, "unordered-decl",
                "unordered container here - audit why iteration "
                "order cannot leak, or use a sorted container"))
            covered_decl_lines.add(i + 1)
        i += 1

    # --- unordered-iter ------------------------------------------
    if names:
        alt = "|".join(re.escape(x) for x in names)
        iter_res = [
            re.compile(r"for\s*\([^;()]*:\s*\*?\s*(?:this->)?(" +
                       alt + r")\b"),
            re.compile(r"\b(" + alt +
                       r")\s*\.\s*c?r?(?:begin|end)\s*\("),
            re.compile(r"\b(?:for_each|accumulate|transform|reduce)"
                       r"\s*\(\s*(" + alt + r")\b"),
        ]
        for i, line in enumerate(code):
            for rx in iter_res:
                m = rx.search(line)
                if m:
                    raw_findings.append(Finding(
                        path, i + 1, "unordered-iter",
                        f"iterates unordered container "
                        f"'{m.group(1)}' (declared line "
                        f"{names[m.group(1)]})"))
                    break

    # --- wall-clock / ptr-order / float-eq -----------------------
    for i, line in enumerate(code):
        for rx in WALL_CLOCK_RES:
            m = rx.search(line)
            if m:
                raw_findings.append(Finding(
                    path, i + 1, "wall-clock",
                    f"'{m.group(0).strip()}' is not simulated time "
                    "or seeded randomness"))
                break
        for rx in PTR_ORDER_RES:
            m = rx.search(line)
            if m:
                raw_findings.append(Finding(
                    path, i + 1, "ptr-order",
                    f"'{m.group(0).strip()}' orders or hashes a "
                    "pointer value"))
                break
        for rx in FLOAT_EQ_RES:
            m = rx.search(line)
            if m:
                raw_findings.append(Finding(
                    path, i + 1, "float-eq",
                    f"exact FP comparison '{m.group(0).strip()}'"))
                break

    # --- mutable-global ------------------------------------------
    for i, line in enumerate(code):
        s = line.strip()
        if "(" in s or ")" in s:
            continue  # functions, static_assert, casts
        if re.search(r"\b(?:const|constexpr|constinit)\b", s):
            continue
        if not re.match(r"(?:inline\s+)?static\s+\w|"
                        r"(?:static\s+)?inline\s+\w", s):
            continue
        if not (s.endswith(";") or "=" in s or s.endswith("{")):
            continue
        if re.match(r"(?:inline\s+|static\s+)+"
                    r"(?:class|struct|enum|union|void)\b", s):
            continue
        raw_findings.append(Finding(
            path, i + 1, "mutable-global",
            f"mutable static/inline variable: '{s[:50]}'"))

    # --- apply suppressions --------------------------------------
    for f in raw_findings:
        allow = next((a for a in allows
                      if a.rule == f.rule and f.lineno in a.covered),
                     None)
        if allow:
            allow.used = True
        else:
            findings.append(f)
    for a in allows:
        if not a.used:
            findings.append(Finding(
                path, a.lineno, "unused-allow",
                f"allow({a.rule}) suppresses nothing - remove the "
                "stale directive"))

    findings.sort(key=lambda f: f.lineno)
    return findings


def lint_paths(paths):
    """Lint every C++ file under the given paths; returns Findings."""
    findings = []
    files = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            for ext in ("*.hh", "*.h", "*.cc", "*.cpp"):
                files.extend(sorted(path.glob(f"**/{ext}")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(p)
    for f in files:
        findings.extend(lint_lines(str(f),
                                   f.read_text().splitlines()))
    return findings


EXPECT_RE = re.compile(r"//\s*expect:\s*(.*)$")


def self_test(fixture_dir):
    """Run the fixture suite; returns 0 on pass, 1 on failure."""
    fixtures = sorted(Path(fixture_dir).glob("*.cc"))
    if not fixtures:
        print(f"self-test: no fixtures under {fixture_dir}")
        return 1
    failures = 0
    for fx in fixtures:
        lines = fx.read_text().splitlines()
        m = EXPECT_RE.search(lines[0]) if lines else None
        if not m:
            print(f"{fx}: FIXTURE BROKEN - first line must be "
                  "'// expect: rule, rule, ...'")
            failures += 1
            continue
        expected = sorted(r.strip() for r in m.group(1).split(",")
                          if r.strip())
        got = sorted(f.rule for f in lint_lines(str(fx), lines))
        if got != expected:
            print(f"{fx}: FAIL\n  expected: {expected}\n"
                  f"  got:      {got}")
            for f in lint_lines(str(fx), lines):
                print(f"    {f}")
            failures += 1
        else:
            print(f"{fx}: ok ({len(got)} finding(s))")
    # Exit-code semantics: a clean fixture set must return 0 findings
    # through lint_paths, a dirty one nonzero.
    clean = [f for f in fixtures
             if not EXPECT_RE.search(
                 f.read_text().splitlines()[0]).group(1).strip()]
    dirty = [f for f in fixtures if f not in clean]
    if clean and lint_paths(clean):
        print("self-test: FAIL - clean fixtures produced findings "
              "through lint_paths")
        failures += 1
    if dirty and not lint_paths(dirty):
        print("self-test: FAIL - dirty fixtures produced no findings "
              "through lint_paths")
        failures += 1
    if failures:
        print(f"\nself-test: {failures} failure(s)")
        return 1
    print(f"\nself-test: all {len(fixtures)} fixtures pass")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    if argv[1] == "--list-rules":
        for rid, desc in {**RULES, **META_RULES}.items():
            print(f"  {rid:16} {desc}")
        return 0
    if argv[1] == "--self-test":
        default = Path(__file__).resolve().parent / "detlint_fixtures"
        return self_test(argv[2] if len(argv) > 2 else default)
    try:
        findings = lint_paths(argv[1:])
    except FileNotFoundError as e:
        print(f"detlint: no such path: {e}")
        return 2
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} determinism-contract finding(s); "
              "fix, sort-drain, or suppress with\n"
              "  // detlint: allow(<rule>): <reason>")
        return 1
    print("detlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
