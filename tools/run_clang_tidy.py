#!/usr/bin/env python3
"""Repo clang-tidy driver: compile_commands.json in, verdict out.

Runs the curated .clang-tidy check set over every translation unit
under src/ listed in a CMake-exported compilation database, in
parallel, dedupes header diagnostics that surface through multiple
TUs, and compares the result against tools/clang_tidy_baseline.txt.

The baseline is the ONLY sanctioned way to ship a finding: one line
per tolerated (file, check) pair with a mandatory written
justification after '#'. Unbaselined findings fail (exit 1); baseline
entries that no longer match anything are reported as stale so audits
cannot linger (warning only - check availability varies across
clang-tidy versions).

Usage:
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    tools/run_clang_tidy.py [--build-dir build] [-j N]
                            [--clang-tidy /path/to/clang-tidy]
                            [--update-baseline]

Exit status: 0 clean, 1 findings, 2 environment/usage error (no
clang-tidy binary, no compilation database).
"""

import argparse
import concurrent.futures
import fnmatch
import json
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tools" / "clang_tidy_baseline.txt"

DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<sev>warning|error): (?P<msg>.*?) \[(?P<check>[\w.,-]+)\]$")


def find_clang_tidy(explicit):
    """Locate a clang-tidy binary; newest versioned name wins."""
    candidates = []
    if explicit:
        candidates.append(explicit)
    env = os.environ.get("CLANG_TIDY")
    if env:
        candidates.append(env)
    candidates.append("clang-tidy")
    candidates.extend(f"clang-tidy-{v}" for v in range(21, 13, -1))
    for c in candidates:
        path = shutil.which(c)
        if path:
            return path
    return None


def load_database(build_dir):
    db_path = Path(build_dir) / "compile_commands.json"
    if not db_path.is_file():
        return None, db_path
    return json.loads(db_path.read_text()), db_path


def src_units(db):
    """Absolute paths of the src/ translation units, deduped."""
    units = []
    seen = set()
    src_root = (REPO_ROOT / "src").resolve()
    for entry in db:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = Path(entry["directory"]) / path
        path = path.resolve()
        if src_root in path.parents and path not in seen:
            seen.add(path)
            units.append(path)
    return sorted(units)


def run_one(clang_tidy, build_dir, unit):
    """Run clang-tidy on one TU; returns its raw stdout."""
    proc = subprocess.run(
        [clang_tidy, "--quiet", "-p", str(build_dir), str(unit)],
        capture_output=True, text=True)
    # clang-tidy exits nonzero on findings AND on real failures; a
    # missing-database / bad-flags failure prints to stderr with no
    # parseable diagnostics, which main() reports as an error.
    return proc.stdout, proc.stderr, proc.returncode


def parse_findings(stdout):
    findings = []
    for line in stdout.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        path = Path(m.group("file"))
        try:
            rel = path.resolve().relative_to(REPO_ROOT)
        except ValueError:
            continue  # system/third-party header: not ours to fix
        for check in m.group("check").split(","):
            findings.append((str(rel), int(m.group("line")),
                             check.strip(), m.group("msg")))
    return findings


def load_baseline():
    """[(path_glob, check, justification)] from the baseline file."""
    entries = []
    problems = []
    if not BASELINE.is_file():
        return entries, problems
    for lineno, raw in enumerate(BASELINE.read_text().splitlines(),
                                 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head, _, justification = line.partition("#")
        justification = justification.strip()
        parts = head.strip().rsplit(":", 1)
        if len(parts) != 2 or not justification:
            problems.append(
                f"{BASELINE.name}:{lineno}: malformed entry (need "
                f"'path:check  # justification'): {raw.strip()}")
            continue
        entries.append((parts[0], parts[1], justification))
    return entries, problems


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--clang-tidy", default=None)
    ap.add_argument("-j", "--jobs", type=int,
                    default=os.cpu_count() or 1)
    ap.add_argument("--update-baseline", action="store_true",
                    help="append TODO-justified entries for any "
                         "unbaselined finding")
    args = ap.parse_args(argv[1:])

    clang_tidy = find_clang_tidy(args.clang_tidy)
    if not clang_tidy:
        print("run_clang_tidy: no clang-tidy binary found (PATH, "
              "$CLANG_TIDY, or --clang-tidy); install clang-tidy to "
              "run this gate")
        return 2
    version = subprocess.run([clang_tidy, "--version"],
                             capture_output=True, text=True)
    print(version.stdout.strip().splitlines()[-1]
          if version.stdout.strip() else clang_tidy)

    db, db_path = load_database(args.build_dir)
    if db is None:
        print(f"run_clang_tidy: {db_path} not found - configure "
              "with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON")
        return 2
    units = src_units(db)
    if not units:
        print("run_clang_tidy: no src/ translation units in the "
              "database")
        return 2
    print(f"analyzing {len(units)} translation units "
          f"with {args.jobs} job(s)")

    findings = []
    hard_errors = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = {pool.submit(run_one, clang_tidy, args.build_dir,
                               u): u for u in units}
        for fut in concurrent.futures.as_completed(futures):
            stdout, stderr, rc = fut.result()
            unit_findings = parse_findings(stdout)
            findings.extend(unit_findings)
            if rc != 0 and not unit_findings:
                hard_errors.append(
                    f"{futures[fut]}: clang-tidy failed:\n{stderr}")

    if hard_errors:
        for e in hard_errors:
            print(e)
        return 2

    # Header diagnostics repeat once per includer: dedupe exactly.
    findings = sorted(set(findings))

    baseline, problems = load_baseline()
    for p in problems:
        print(p)
    matched_entries = set()
    unbaselined = []
    for path, line, check, msg in findings:
        hit = next((i for i, (pat, bcheck, _) in enumerate(baseline)
                    if bcheck == check and fnmatch.fnmatch(path,
                                                           pat)),
                   None)
        if hit is None:
            unbaselined.append((path, line, check, msg))
        else:
            matched_entries.add(hit)

    for i, (pat, check, justification) in enumerate(baseline):
        if i not in matched_entries:
            print(f"stale baseline entry (no longer fires): "
                  f"{pat}:{check}  # {justification}")

    if unbaselined:
        print()
        for path, line, check, msg in unbaselined:
            print(f"{path}:{line}: [{check}] {msg}")
        print(f"\n{len(unbaselined)} unbaselined clang-tidy "
              "finding(s): fix them, or add a justified entry to "
              f"{BASELINE.relative_to(REPO_ROOT)}")
        if args.update_baseline:
            with BASELINE.open("a") as f:
                for path, _, check, _ in sorted(
                        {(p, None, c, None)
                         for p, _, c, _ in unbaselined}):
                    f.write(f"{path}:{check}  # TODO: justify or "
                            "fix\n")
            print("baseline updated - replace every TODO with a "
                  "real justification before committing")
        return 1
    if problems:
        return 1
    print(f"clang-tidy clean ({len(findings)} finding(s), all "
          "baselined)" if findings else "clang-tidy clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
