#include "gpu/gpu_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace papi::gpu {

GpuModel::GpuModel(const GpuSpec &spec, std::uint32_t num_gpus,
                   double nvlink_bandwidth_GBs)
    : _spec(spec), _numGpus(num_gpus),
      _nvlinkBytesPerSec(nvlink_bandwidth_GBs * 1e9)
{
    if (num_gpus == 0)
        sim::fatal("GpuModel: zero GPUs");
    if (nvlink_bandwidth_GBs < 0.0)
        sim::fatal("GpuModel: negative NVLink bandwidth");
}

double
GpuModel::fleetBandwidth() const
{
    return _spec.effectiveBandwidth() * static_cast<double>(_numGpus);
}

double
GpuModel::fleetFlops() const
{
    return _spec.effectiveFlops() * static_cast<double>(_numGpus);
}

GpuKernelResult
GpuModel::kernel(double flops, double bytes, double output_bytes) const
{
    if (flops < 0.0 || bytes < 0.0 || output_bytes < 0.0)
        sim::fatal("GpuModel::kernel: negative work");

    GpuKernelResult out;
    out.computeSeconds = flops / fleetFlops();
    out.memorySeconds = bytes / fleetBandwidth();
    out.computeBound = out.computeSeconds > out.memorySeconds;

    // Ring all-reduce of the tensor-parallel partial outputs:
    // 2 (G-1)/G passes of the output over per-GPU NVLink.
    if (_numGpus > 1 && output_bytes > 0.0 &&
        _nvlinkBytesPerSec > 0.0) {
        double factor = 2.0 *
                        static_cast<double>(_numGpus - 1) /
                        static_cast<double>(_numGpus);
        out.allReduceSeconds = output_bytes * factor /
                               _nvlinkBytesPerSec;
    }

    out.seconds = std::max(out.computeSeconds, out.memorySeconds) +
                  out.allReduceSeconds + _spec.kernelLaunchSeconds;

    double dynamic = flops * _spec.computeEnergyPerFlop +
                     bytes * _spec.memEnergyPerByte;
    double static_e = _spec.idlePowerWatts *
                      static_cast<double>(_numGpus) * out.seconds;
    out.energyJoules = dynamic + static_e;
    return out;
}

} // namespace papi::gpu
