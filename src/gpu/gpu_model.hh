/**
 * @file
 * Roofline-based GPU kernel timing and energy, with multi-GPU
 * tensor parallelism.
 */

#ifndef PAPI_GPU_GPU_MODEL_HH
#define PAPI_GPU_GPU_MODEL_HH

#include <cstdint>

#include "gpu/gpu_config.hh"

namespace papi::gpu {

/** Outcome of one kernel on the GPU fleet. */
struct GpuKernelResult
{
    double seconds = 0.0;
    double energyJoules = 0.0;   ///< Dynamic + static over duration.
    double computeSeconds = 0.0; ///< Roofline compute term.
    double memorySeconds = 0.0;  ///< Roofline memory term.
    bool computeBound = false;
    double allReduceSeconds = 0.0; ///< Tensor-parallel reduction.
};

/** A fleet of identical GPUs executing tensor-parallel kernels. */
class GpuModel
{
  public:
    /**
     * @param spec Per-GPU description.
     * @param num_gpus GPUs in the tensor-parallel group.
     * @param nvlink_bandwidth_GBs Per-GPU NVLink bandwidth for
     *        all-reduce (0 disables the all-reduce term, e.g. for
     *        single-GPU runs).
     */
    GpuModel(const GpuSpec &spec, std::uint32_t num_gpus,
             double nvlink_bandwidth_GBs = 300.0);

    const GpuSpec &spec() const { return _spec; }
    std::uint32_t numGpus() const { return _numGpus; }

    /**
     * Time/energy for one kernel with @p flops floating point
     * operations reading/writing @p bytes of memory, tensor-parallel
     * across the fleet. @p output_bytes participate in the ring
     * all-reduce (pass 0 for kernels sharded without reduction).
     */
    GpuKernelResult kernel(double flops, double bytes,
                           double output_bytes = 0.0) const;

    /** Aggregate effective memory bandwidth of the fleet, bytes/s. */
    double fleetBandwidth() const;

    /** Aggregate effective compute of the fleet, FLOP/s. */
    double fleetFlops() const;

  private:
    GpuSpec _spec;
    std::uint32_t _numGpus;
    double _nvlinkBytesPerSec;
};

} // namespace papi::gpu

#endif // PAPI_GPU_GPU_MODEL_HH
