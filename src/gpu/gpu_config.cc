#include "gpu/gpu_config.hh"

namespace papi::gpu {

GpuSpec
a100Spec()
{
    GpuSpec spec;
    spec.name = "a100-80g";
    spec.peakTflopsFp16 = 312.0;
    spec.memBandwidthGBs = 1935.0;
    spec.hbmStacks = 5;
    spec.memCapacityBytes = 80ULL << 30;
    spec.computeEfficiency = 0.70;
    spec.memEfficiency = 0.80;
    spec.kernelLaunchSeconds = 5.0e-6;
    spec.computeEnergyPerFlop = 1.0e-12;
    // Full GPU memory path (HBM + PHY + on-chip hierarchy + register
    // traffic): ~12.5 pJ/bit.
    spec.memEnergyPerByte = 100.0e-12;
    spec.idlePowerWatts = 100.0;
    return spec;
}

} // namespace papi::gpu
