/**
 * @file
 * Computation-centric processor (GPU) description.
 *
 * The PAPI paper's scheduling decisions depend on whether a kernel is
 * compute- or memory-bound on the processing units, so the GPU is
 * modelled as a calibrated roofline: peak FP16 tensor throughput,
 * aggregate HBM bandwidth, achievable-efficiency factors, and fixed
 * kernel-launch overhead.
 */

#ifndef PAPI_GPU_GPU_CONFIG_HH
#define PAPI_GPU_GPU_CONFIG_HH

#include <cstdint>
#include <string>

namespace papi::gpu {

/** Roofline + energy description of one GPU. */
struct GpuSpec
{
    std::string name = "gpu";

    /** Peak FP16 tensor-core throughput, TFLOP/s. */
    double peakTflopsFp16 = 312.0;
    /** Peak HBM bandwidth, GB/s. */
    double memBandwidthGBs = 1935.0;
    /** HBM stacks attached to this GPU. */
    std::uint32_t hbmStacks = 5;
    /** HBM capacity, bytes. */
    std::uint64_t memCapacityBytes = 80ULL << 30;

    /** Fraction of peak FLOPs achievable on decode GEMMs. */
    double computeEfficiency = 0.70;
    /** Fraction of peak bandwidth achievable on streaming reads. */
    double memEfficiency = 0.80;
    /** Fixed kernel-launch + runtime overhead, seconds. */
    double kernelLaunchSeconds = 5.0e-6;

    /** Dynamic compute energy per FLOP, joules. */
    double computeEnergyPerFlop = 1.0e-12;
    /** Memory-path energy per byte (HBM + PHY + on-chip hierarchy,
     *  ~12.5 pJ/bit), joules. */
    double memEnergyPerByte = 100.0e-12;
    /** Idle/static power while the GPU is held by the job, watts. */
    double idlePowerWatts = 100.0;

    /** Effective FLOP/s after the efficiency factor. */
    double
    effectiveFlops() const
    {
        return peakTflopsFp16 * 1e12 * computeEfficiency;
    }

    /** Effective bytes/s after the efficiency factor. */
    double
    effectiveBandwidth() const
    {
        return memBandwidthGBs * 1e9 * memEfficiency;
    }

    /** Roofline ridge point (FLOPs/byte) at peak rates. */
    double
    ridgeArithmeticIntensity() const
    {
        return peakTflopsFp16 * 1e12 / (memBandwidthGBs * 1e9);
    }
};

/** NVIDIA A100 80 GB (SXM) roofline as used in the paper. */
GpuSpec a100Spec();

} // namespace papi::gpu

#endif // PAPI_GPU_GPU_CONFIG_HH
