/**
 * @file
 * A complete PIM device: HBM stack + near-bank compute + energy.
 *
 * PimDevice is the unit the platform layer composes: the system has
 * N FC-PIM devices holding FC weights and M Attn-PIM devices holding
 * KV caches (or AttAcc/HBM-PIM devices in the baselines). The device
 * exposes kernel-level timing/energy queries; command-level detail
 * comes from pim::GemvEngine on the dram substrate.
 */

#ifndef PAPI_PIM_PIM_DEVICE_HH
#define PAPI_PIM_PIM_DEVICE_HH

#include <cstdint>

#include "pim/attention_engine.hh"
#include "pim/data_layout.hh"
#include "pim/energy_model.hh"
#include "pim/gemv_engine.hh"
#include "pim/pim_config.hh"
#include "pim/power_model.hh"

namespace papi::pim {

/** Timing and energy of one kernel invocation on a device fleet. */
struct PimKernelResult
{
    double seconds = 0.0;
    /** Energy across all participating devices, joules. */
    PimEnergyBreakdown energy;
    bool computeBound = false;
    /** Bytes streamed from the cell arrays, all devices. */
    std::uint64_t streamedBytes = 0;
};

/** One PIM device type plus fleet-level kernel queries. */
class PimDevice
{
  public:
    explicit PimDevice(const PimConfig &config,
                       const PimEnergyParams &params = {});

    const PimConfig &config() const { return _config; }
    const PimEnergyParams &energyParams() const { return _params; }
    const PowerModel &powerModel() const { return _power; }
    const GemvEngine &gemvEngine() const { return _gemv; }

    /**
     * Fully-connected GEMV: @p weight_bytes of FP16 weights sharded
     * over @p num_devices devices of this type, each weight element
     * combined with @p reuse (= RLP x TLP) input vectors.
     *
     * Includes the fixed kernel-launch latency of the PIM command
     * path; input broadcast and output collection are charged by the
     * interconnect layer, not here.
     */
    PimKernelResult fcGemv(std::uint64_t weight_bytes,
                           std::uint32_t reuse,
                           std::uint32_t num_devices) const;

    /**
     * One decode iteration of multi-head attention.
     *
     * @param kv_bytes_total Total K+V bytes live this iteration
     *        (across all requests, heads, layers being executed).
     * @param num_heads Head count used for distribution.
     * @param tlp Speculation length (KV reuse factor).
     * @param score_elements Total score elements for softmax.
     * @param num_devices Attn-PIM devices holding KV data.
     */
    PimKernelResult attention(std::uint64_t kv_bytes_total,
                              std::uint32_t num_heads,
                              std::uint32_t tlp,
                              std::uint64_t score_elements,
                              std::uint32_t num_devices) const;

    /** Fixed PIM kernel launch overhead, seconds. */
    double launchOverheadSeconds() const { return _launchOverhead; }

  private:
    PimConfig _config;
    PimEnergyParams _params;
    GemvEngine _gemv;
    AttentionEngine _attn;
    PowerModel _power;
    DataLayout _layout;
    double _launchOverhead = 2.0e-6; // host -> PIM command dispatch
};

} // namespace papi::pim

#endif // PAPI_PIM_PIM_DEVICE_HH
