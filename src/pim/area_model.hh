/**
 * @file
 * HBM-PIM die area model (PAPI paper Section 6.1, Eq. 3).
 *
 * The total area of m banks, each paired with n FPUs, must fit in a
 * single HBM die:   m * (n * A_FPU + A_bank) <= A_max.
 * Constants come from CACTI-3DD at 22 nm as quoted in the paper:
 * A_bank = 0.83 mm^2, A_FPU = 0.1025 mm^2, A_max = 121 mm^2.
 */

#ifndef PAPI_PIM_AREA_MODEL_HH
#define PAPI_PIM_AREA_MODEL_HH

#include <cstdint>

namespace papi::pim {

/** Die-area accounting for a PIM-enabled HBM die. */
class AreaModel
{
  public:
    AreaModel() = default;

    /**
     * @param bank_area_mm2 Area of one bank (array + periphery).
     * @param fpu_area_mm2 Area of one near-bank FPU.
     * @param die_area_mm2 Maximum allowable die area.
     */
    AreaModel(double bank_area_mm2, double fpu_area_mm2,
              double die_area_mm2);

    double bankArea() const { return _bankArea; }
    double fpuArea() const { return _fpuArea; }
    double dieArea() const { return _dieArea; }

    /** Die area consumed by @p banks banks with @p fpus_per_bank. */
    double usedArea(std::uint32_t banks, double fpus_per_bank) const;

    /** True if the configuration fits on the die. */
    bool fits(std::uint32_t banks, double fpus_per_bank) const;

    /**
     * Maximum number of banks per die given @p fpus_per_bank FPUs per
     * bank (Eq. 3 solved for m, floored).
     */
    std::uint32_t maxBanksPerDie(double fpus_per_bank) const;

  private:
    double _bankArea = 0.83;  // mm^2, CACTI-3DD @ 22 nm
    double _fpuArea = 0.1025; // mm^2, from AttAcc
    double _dieArea = 121.0;  // mm^2, HBM3 die limit
};

} // namespace papi::pim

#endif // PAPI_PIM_AREA_MODEL_HH
