/**
 * @file
 * PIM execution energy model (paper Fig. 7).
 *
 * Energy of a near-bank PIM kernel splits into three components:
 *  - DRAM Access: row activation/precharge plus cell-array reads of
 *    the weight data.
 *  - Transfer: moving activation (input) data from the buffer die via
 *    TSV / global controller / bank-group controller to the FPUs.
 *  - Computation: the FPU MACs themselves.
 *
 * The constants are calibrated so that, with no data reuse, DRAM
 * Access is ~96.7% of the total (paper Fig. 7(a)) and at reuse level
 * 64 it falls to ~33% (Fig. 7(b)).
 */

#ifndef PAPI_PIM_ENERGY_MODEL_HH
#define PAPI_PIM_ENERGY_MODEL_HH

#include <cstdint>

#include "dram/energy.hh"
#include "pim/pim_config.hh"

namespace papi::pim {

/** Energy constants for PIM execution. */
struct PimEnergyParams
{
    /** DRAM-side constants (activation + cell read). */
    dram::DramEnergyParams dram;
    /**
     * Joules per byte of activation data moved buffer-die -> FPU
     * (TSV + global + bank-group controller hops).
     */
    double transferEnergyPerByte = 0.9e-12;
    /** Joules per FP16 FLOP in the near-bank FPU. */
    double fpuEnergyPerFlop = 0.42e-12;
    /** Static power per FPU in watts (leakage + clocking). */
    double fpuStaticPowerPerFpu = 0.02;
};

/** Energy split of one PIM kernel execution. */
struct PimEnergyBreakdown
{
    double dramAccess = 0.0; ///< Activation + cell read joules.
    double transfer = 0.0;   ///< Activation-data movement joules.
    double compute = 0.0;    ///< FPU joules.

    double total() const { return dramAccess + transfer + compute; }

    double
    dramShare() const
    {
        double t = total();
        return t > 0.0 ? dramAccess / t : 0.0;
    }
};

/**
 * Energy for a weight-stationary GEMV execution.
 *
 * @param params Energy constants.
 * @param activations Row activations performed.
 * @param streamed_bytes Weight bytes read from the cell arrays.
 * @param reuse Input vectors served per weight element (data-reuse
 *        level). Transfer and compute scale with reuse; DRAM access
 *        does not - that asymmetry is the entire point of Fig. 7.
 */
PimEnergyBreakdown pimGemvEnergy(const PimEnergyParams &params,
                                 std::uint64_t activations,
                                 std::uint64_t streamed_bytes,
                                 std::uint32_t reuse);

} // namespace papi::pim

#endif // PAPI_PIM_ENERGY_MODEL_HH
