/**
 * @file
 * Cycle-level near-bank GEMV execution on a PIM pseudo-channel.
 *
 * The engine models the weight-stationary dataflow used by AttAcc and
 * PAPI: every bank holds a shard of the matrix; the kernel streams
 * each shard through the bank's row buffer (ACT + a PIM_MAC column
 * read per 32 B) and the near-bank FPUs combine each column with
 * `reuse` input vectors (reuse = RLP x TLP for FC kernels, TLP for
 * attention score/context kernels).
 *
 * Timing is produced by replaying the actual DRAM command stream on a
 * dram::PseudoChannel (tRCD/tRP/tRAS/tCCD/tRRD/tFAW enforced) with
 * FPU back-pressure: a column cannot issue if the bank's FPU group is
 * more than one column behind (double buffering).
 */

#ifndef PAPI_PIM_GEMV_ENGINE_HH
#define PAPI_PIM_GEMV_ENGINE_HH

#include <cstdint>
#include <unordered_map>

#include "pim/pim_config.hh"
#include "pim/trace_validator.hh"
#include "sim/types.hh"

namespace papi::pim {

/** Outcome of one per-pseudo-channel GEMV stream. */
struct GemvResult
{
    /** Kernel duration in ticks (stream start to last FPU done). */
    sim::Tick ticks = 0;
    /** Row activations performed (whole channel, unscaled). */
    std::uint64_t activations = 0;
    /** Bytes streamed out of the cell arrays (whole channel). */
    std::uint64_t streamedBytes = 0;
    /** FLOPs performed (whole channel). */
    double flops = 0.0;
    /** Fraction of kernel time the FPUs were busy [0,1]. */
    double fpuBusyFrac = 0.0;
    /** True when FPU service time, not DRAM, set the pace. */
    bool computeBound = false;
};

/** Near-bank GEMV timing engine for one PIM configuration. */
class GemvEngine
{
  public:
    explicit GemvEngine(const PimConfig &config);

    const PimConfig &config() const { return _config; }

    /**
     * Stream @p bytes_per_bank of matrix data through every bank of
     * one pseudo-channel, combining each column with @p reuse input
     * vectors.
     *
     * Shards larger than an internal cap are simulated in
     * steady-state and scaled linearly (streaming is row-periodic, so
     * the error is bounded by one row's fill time).
     *
     * @param bytes_per_bank Matrix bytes resident in each bank.
     * @param reuse Number of input vectors each column serves
     *        (>= 1); the data-reuse level of the paper's Fig. 7.
     */
    GemvResult run(std::uint64_t bytes_per_bank,
                   std::uint32_t reuse) const;

    /**
     * FPU service ticks needed per 32 B column per bank:
     * ceil(reuse * banksPerGroup / fpusPerGroup) FPU cycles.
     */
    sim::Tick computeTicksPerColumn(std::uint32_t reuse) const;

    /**
     * Analytic lower bound on streaming time for cross-checks:
     * max(DRAM cadence, FPU service) per column x columns, plus row
     * overheads. Tests assert the cycle-level result stays within a
     * small factor of this bound.
     */
    sim::Tick analyticLowerBound(std::uint64_t bytes_per_bank,
                                 std::uint32_t reuse) const;

    /**
     * Record every issued command into @p trace (nullptr disables).
     * While a recorder is attached the memo cache is bypassed so the
     * trace reflects a full fresh replay (see pim::TraceValidator).
     */
    void setTraceRecorder(CommandTrace *trace) { _recorder = trace; }

  private:
    GemvResult runExact(std::uint64_t bytes_per_bank,
                        std::uint32_t reuse) const;

    PimConfig _config;

    /**
     * Memoized exact results keyed by (columns, reuse). Decode loops
     * call run() with recurring shapes; replaying identical command
     * streams would dominate simulation time otherwise.
     */
    // detlint: allow(unordered-decl): memo cache with find/emplace
    // only; a hit replays the exact GemvResult the command stream
    // would regenerate, and nothing walks the table, so bucket order
    // cannot reach simulated timing or the command trace.
    mutable std::unordered_map<std::uint64_t, GemvResult> _cache;
    CommandTrace *_recorder = nullptr;
};

} // namespace papi::pim

#endif // PAPI_PIM_GEMV_ENGINE_HH
