#include "pim/area_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace papi::pim {

AreaModel::AreaModel(double bank_area_mm2, double fpu_area_mm2,
                     double die_area_mm2)
    : _bankArea(bank_area_mm2), _fpuArea(fpu_area_mm2),
      _dieArea(die_area_mm2)
{
    if (_bankArea <= 0.0 || _fpuArea <= 0.0 || _dieArea <= 0.0)
        sim::fatal("AreaModel: areas must be positive");
}

double
AreaModel::usedArea(std::uint32_t banks, double fpus_per_bank) const
{
    if (fpus_per_bank < 0.0)
        sim::fatal("AreaModel: negative fpus_per_bank");
    return static_cast<double>(banks) *
           (fpus_per_bank * _fpuArea + _bankArea);
}

bool
AreaModel::fits(std::uint32_t banks, double fpus_per_bank) const
{
    return usedArea(banks, fpus_per_bank) <= _dieArea + 1e-12;
}

std::uint32_t
AreaModel::maxBanksPerDie(double fpus_per_bank) const
{
    if (fpus_per_bank < 0.0)
        sim::fatal("AreaModel: negative fpus_per_bank");
    double per_bank = fpus_per_bank * _fpuArea + _bankArea;
    return static_cast<std::uint32_t>(std::floor(_dieArea / per_bank));
}

} // namespace papi::pim
