#include "pim/data_layout.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace papi::pim {

Partition
DataLayout::partitionWeights(std::uint64_t total_bytes,
                             std::uint32_t num_devices) const
{
    if (num_devices == 0)
        sim::fatal("DataLayout: zero devices");
    if (!fits(total_bytes, num_devices))
        sim::fatal("DataLayout: ", total_bytes, " bytes exceed capacity"
                   " of ", num_devices, " x ", _config.name,
                   " devices");

    Partition p;
    p.devices = num_devices;
    p.totalBanks = static_cast<std::uint64_t>(num_devices) *
                   _config.totalBanks();
    p.bytesPerBank = (total_bytes + p.totalBanks - 1) / p.totalBanks;
    // Balanced 2D blocking: the residual imbalance is at most one
    // DRAM row per bank.
    double mean = static_cast<double>(total_bytes) /
                  static_cast<double>(p.totalBanks);
    p.imbalance = mean > 0.0
                      ? static_cast<double>(p.bytesPerBank) / mean
                      : 1.0;
    return p;
}

Partition
DataLayout::partitionKvCache(std::uint64_t bytes_per_head,
                             std::uint32_t num_heads,
                             std::uint32_t num_devices) const
{
    if (num_devices == 0)
        sim::fatal("DataLayout: zero devices");
    if (num_heads == 0)
        sim::fatal("DataLayout: zero heads");

    std::uint64_t total = bytes_per_head *
                          static_cast<std::uint64_t>(num_heads);
    if (!fits(total, num_devices))
        sim::fatal("DataLayout: KV cache of ", total,
                   " bytes exceeds capacity of ", num_devices, " x ",
                   _config.name, " devices");

    // Heads round-robin over devices; the busiest device carries
    // ceil(heads / devices) heads.
    std::uint32_t heads_per_device =
        (num_heads + num_devices - 1) / num_devices;

    Partition p;
    p.devices = std::min<std::uint32_t>(num_devices, num_heads);
    p.totalBanks = static_cast<std::uint64_t>(p.devices) *
                   _config.totalBanks();
    std::uint64_t busiest_bytes =
        bytes_per_head * static_cast<std::uint64_t>(heads_per_device);
    std::uint64_t banks = _config.totalBanks();
    p.bytesPerBank = (busiest_bytes + banks - 1) / banks;

    double mean_heads = static_cast<double>(num_heads) /
                        static_cast<double>(num_devices);
    p.imbalance = mean_heads > 0.0
                      ? static_cast<double>(heads_per_device) /
                            mean_heads
                      : 1.0;
    return p;
}

bool
DataLayout::fits(std::uint64_t total_bytes,
                 std::uint32_t num_devices) const
{
    return total_bytes <= _config.capacityBytes() *
                              static_cast<std::uint64_t>(num_devices);
}

} // namespace papi::pim
