#include "pim/energy_model.hh"

#include "sim/logging.hh"

namespace papi::pim {

PimEnergyBreakdown
pimGemvEnergy(const PimEnergyParams &params, std::uint64_t activations,
              std::uint64_t streamed_bytes, std::uint32_t reuse)
{
    if (reuse == 0)
        sim::fatal("pimGemvEnergy: reuse must be >= 1");

    PimEnergyBreakdown out;
    out.dramAccess =
        params.dram.actPreEnergy * static_cast<double>(activations) +
        params.dram.cellReadEnergyPerByte *
            static_cast<double>(streamed_bytes);

    // Each weight element pairs with one activation element per reuse
    // step: the activation traffic equals streamed bytes per reuse.
    out.transfer = params.transferEnergyPerByte *
                   static_cast<double>(streamed_bytes) *
                   static_cast<double>(reuse);

    // FP16 elements = bytes/2; one MAC (2 FLOPs) per element per
    // reuse step.
    double flops = static_cast<double>(streamed_bytes) / 2.0 * 2.0 *
                   static_cast<double>(reuse);
    out.compute = params.fpuEnergyPerFlop * flops;
    return out;
}

} // namespace papi::pim
