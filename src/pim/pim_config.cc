#include "pim/pim_config.hh"

#include <sstream>

namespace papi::pim {

std::string
PimConfig::xPyBLabel() const
{
    std::ostringstream os;
    os << fpusPerGroup << "P" << banksPerGroup << "B";
    return os.str();
}

PimConfig
attAccConfig()
{
    PimConfig cfg;
    cfg.name = "attacc";
    cfg.fpusPerGroup = 1;
    cfg.banksPerGroup = 1;
    cfg.pseudoChannels = 16;
    cfg.dramSpec = dram::hbm3Spec();
    return cfg;
}

PimConfig
hbmPimConfig()
{
    PimConfig cfg;
    cfg.name = "hbm-pim";
    cfg.fpusPerGroup = 1;
    cfg.banksPerGroup = 2;
    cfg.pseudoChannels = 16;
    cfg.dramSpec = dram::hbm3Spec();
    return cfg;
}

PimConfig
fcPimConfig()
{
    PimConfig cfg;
    cfg.name = "fc-pim";
    cfg.fpusPerGroup = 4;
    cfg.banksPerGroup = 1;
    // 96 of 128 banks' cell area kept for memory: 12 pseudo-channels'
    // worth of banks => 12 GB per device (paper Section 7.1).
    cfg.pseudoChannels = 12;
    cfg.dramSpec = dram::hbm3Spec();
    return cfg;
}

PimConfig
attnPimConfig()
{
    PimConfig cfg;
    cfg.name = "attn-pim";
    cfg.fpusPerGroup = 1;
    cfg.banksPerGroup = 2;
    cfg.pseudoChannels = 16;
    cfg.dramSpec = dram::hbm3Spec();
    return cfg;
}

} // namespace papi::pim
