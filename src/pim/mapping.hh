/**
 * @file
 * Explicit tensor-to-PIM mapping (paper Section 6.4).
 *
 * Attention: heads are distributed across Attn-PIM devices, one head
 * per HBM device at a time (round-robin). Within a device, K^T is
 * partitioned column-wise at the pseudo-channel and bank-group
 * levels and row-wise at the bank (and lane) level; V conversely -
 * row-wise at pseudo-channel/bank-group and column-wise at
 * bank/lane level. This orients each matrix so that the per-bank
 * GEMV streams rows of the resident shard while the reduction
 * dimension stays local.
 *
 * FC: the weight matrix is blocked 2D across devices and mapped
 * like K^T within each device.
 *
 * These structures make the mapping checkable: shards must tile the
 * matrix exactly, and per-bank loads must be balanced to within one
 * row; pim::DataLayout's byte counts are derived from the same
 * partition.
 */

#ifndef PAPI_PIM_MAPPING_HH
#define PAPI_PIM_MAPPING_HH

#include <cstdint>
#include <vector>

#include "pim/pim_config.hh"

namespace papi::pim {

/** Orientation of a matrix's partition at each hierarchy level. */
enum class PartitionAxis : std::uint8_t { ColumnWise, RowWise };

/** The (channel, bank-group, bank) shard of one matrix. */
struct BankShard
{
    std::uint32_t device = 0;
    std::uint32_t pseudoChannel = 0;
    std::uint32_t bankGroup = 0;
    std::uint32_t bank = 0;
    /** Half-open row range of the matrix mapped to this bank. */
    std::uint64_t rowBegin = 0;
    std::uint64_t rowEnd = 0;
    /** Half-open column range of the matrix mapped to this bank. */
    std::uint64_t colBegin = 0;
    std::uint64_t colEnd = 0;

    std::uint64_t
    elements() const
    {
        return (rowEnd - rowBegin) * (colEnd - colBegin);
    }
};

/** A full mapping of one matrix onto one device. */
struct DeviceMapping
{
    PartitionAxis channelAxis = PartitionAxis::ColumnWise;
    PartitionAxis bankAxis = PartitionAxis::RowWise;
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::vector<BankShard> shards;

    /** Max shard elements (the streaming-critical bank). */
    std::uint64_t maxShardElements() const;
    /** Sum of shard elements (must equal rows x cols). */
    std::uint64_t totalElements() const;
};

/** Head-to-device placement for multi-head attention. */
struct HeadPlacement
{
    /** device[h] = device index hosting head h. */
    std::vector<std::uint32_t> deviceOfHead;
    std::uint32_t devices = 0;

    /** Heads resident on the busiest device. */
    std::uint32_t maxHeadsPerDevice() const;
};

/** Mapping planner for one PIM configuration. */
class MappingPlanner
{
  public:
    explicit MappingPlanner(const PimConfig &config)
        : _config(config)
    {}

    /** Round-robin head placement (Section 6.4). */
    HeadPlacement placeHeads(std::uint32_t num_heads,
                             std::uint32_t num_devices) const;

    /**
     * Map a K^T matrix (rows = head_dim, cols = seq_len) onto one
     * device: column-wise at channel/bank-group level, row-wise at
     * bank level.
     */
    DeviceMapping mapKTranspose(std::uint64_t head_dim,
                                std::uint64_t seq_len) const;

    /**
     * Map a V matrix (rows = seq_len, cols = head_dim) onto one
     * device: row-wise at channel/bank-group level, column-wise at
     * bank level.
     */
    DeviceMapping mapV(std::uint64_t seq_len,
                       std::uint64_t head_dim) const;

    /**
     * Map an FC weight block (rows x cols) onto one device using
     * the K^T scheme.
     */
    DeviceMapping mapWeights(std::uint64_t rows,
                             std::uint64_t cols) const;

  private:
    DeviceMapping mapMatrix(std::uint64_t rows, std::uint64_t cols,
                            PartitionAxis channel_axis,
                            PartitionAxis bank_axis) const;

    PimConfig _config;
};

} // namespace papi::pim

#endif // PAPI_PIM_MAPPING_HH
