#include "pim/trace_validator.hh"

#include <deque>
#include <map>
#include <sstream>

namespace papi::pim {

using dram::CommandType;
using sim::Tick;

namespace {

struct BankShadow
{
    bool open = false;
    std::uint32_t row = 0;
    Tick lastAct = 0;
    Tick lastPre = 0;
    Tick lastColumn = 0;
    bool sawAct = false;
    bool sawPre = false;
    bool sawColumn = false;
};

} // namespace

ValidationResult
TraceValidator::validate(const CommandTrace &trace) const
{
    ValidationResult out;
    const auto &t = _spec.timing;

    std::map<std::uint32_t, BankShadow> banks;
    std::deque<Tick> act_window;
    Tick last_tick = 0;
    Tick last_act = 0;
    std::uint32_t last_act_group = 0;
    bool saw_act = false;

    auto fail = [&out](const std::string &msg) {
        out.ok = false;
        ++out.violations;
        if (out.firstViolation.empty())
            out.firstViolation = msg;
    };

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceEntry &e = trace[i];
        std::ostringstream where;
        where << "entry " << i << " (" << commandName(e.command.type)
              << " @ " << e.tick << "): ";

        if (i > 0 && e.tick < last_tick)
            fail(where.str() + "issue ticks regress");
        last_tick = e.tick;

        std::uint32_t flat = e.command.coord.bankGroup * 1000 +
                             e.command.coord.bank;
        BankShadow &b = banks[flat];

        switch (e.command.type) {
          case CommandType::Act: {
            if (b.open)
                fail(where.str() + "ACT on an open bank");
            if (b.sawPre && e.tick < b.lastPre + t.tRP)
                fail(where.str() + "tRP violated");
            if (b.sawAct && e.tick < b.lastAct + t.tRC)
                fail(where.str() + "tRC violated");
            if (saw_act) {
                Tick rrd =
                    e.command.coord.bankGroup == last_act_group
                        ? t.tRRD_L
                        : t.tRRD_S;
                if (e.tick < last_act + rrd)
                    fail(where.str() + "tRRD violated");
            }
            if (act_window.size() >= 4 &&
                e.tick < act_window[act_window.size() - 4] + t.tFAW)
                fail(where.str() + "tFAW violated");
            act_window.push_back(e.tick);
            while (act_window.size() > 8)
                act_window.pop_front();
            last_act = e.tick;
            last_act_group = e.command.coord.bankGroup;
            saw_act = true;
            b.open = true;
            b.row = e.command.coord.row;
            b.lastAct = e.tick;
            b.sawAct = true;
            break;
          }
          case CommandType::Pre: {
            if (!b.open)
                fail(where.str() + "PRE on a closed bank");
            if (b.sawAct && e.tick < b.lastAct + t.tRAS)
                fail(where.str() + "tRAS violated");
            if (b.sawColumn && e.tick < b.lastColumn + t.tRTP)
                fail(where.str() + "tRTP violated");
            b.open = false;
            b.lastPre = e.tick;
            b.sawPre = true;
            break;
          }
          case CommandType::Rd:
          case CommandType::Wr:
          case CommandType::PimMac: {
            if (!b.open)
                fail(where.str() + "column access on a closed bank");
            else if (b.row != e.command.coord.row)
                fail(where.str() + "column access to the wrong row");
            if (b.sawAct && e.tick < b.lastAct + t.tRCD)
                fail(where.str() + "tRCD violated");
            Tick ccd = e.command.type == CommandType::PimMac
                           ? t.tCCD_S
                           : t.tCCD_L;
            if (b.sawColumn && e.tick < b.lastColumn + ccd)
                fail(where.str() + "column cadence violated");
            b.lastColumn = e.tick;
            b.sawColumn = true;
            break;
          }
          case CommandType::Ref:
            break;
        }
    }
    return out;
}

} // namespace papi::pim
