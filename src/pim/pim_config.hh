/**
 * @file
 * PIM device configuration: the xPyB design space of the PAPI paper.
 *
 * "xPyB" means x FPUs shared across y DRAM banks. The paper evaluates
 * 1P1B (AttAcc), 1P2B (Samsung HBM-PIM and PAPI's Attn-PIM) and 4P1B
 * (PAPI's FC-PIM).
 */

#ifndef PAPI_PIM_PIM_CONFIG_HH
#define PAPI_PIM_PIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "dram/timing.hh"

namespace papi::pim {

/** Near-bank floating-point unit description. */
struct FpuSpec
{
    /** FP16 MAC lanes per FPU (one 32 B column feeds 16 lanes). */
    std::uint32_t lanes = 16;
    /** FPU clock in MHz (the paper uses 666 MHz). */
    double clockMhz = 666.0;

    /** FLOPs per cycle of one FPU (MAC = 2 FLOPs per lane). */
    double
    flopsPerCycle() const
    {
        return 2.0 * static_cast<double>(lanes);
    }

    /** Peak FLOP/s of one FPU. */
    double
    peakFlops() const
    {
        return flopsPerCycle() * clockMhz * 1e6;
    }

    /** FPU clock period in ticks. */
    sim::Tick
    periodTicks() const
    {
        return sim::periodFromMhz(clockMhz);
    }
};

/** A complete PIM device (HBM stack + near-bank compute) config. */
struct PimConfig
{
    std::string name = "pim";
    /** FPUs per bank-sharing group (the "x" in xPyB). */
    std::uint32_t fpusPerGroup = 1;
    /** Banks sharing that FPU group (the "y" in xPyB). */
    std::uint32_t banksPerGroup = 1;
    /** Pseudo-channels in the stack (16 => 16 GB; 12 => 12 GB). */
    std::uint32_t pseudoChannels = 16;
    /** DRAM spec for each pseudo-channel. */
    dram::DramSpec dramSpec;
    /** FPU description. */
    FpuSpec fpu;

    /** FPUs per bank as a real number (may be fractional, e.g. 0.5). */
    double
    fpusPerBank() const
    {
        return static_cast<double>(fpusPerGroup) /
               static_cast<double>(banksPerGroup);
    }

    /** Total banks in the device. */
    std::uint32_t
    totalBanks() const
    {
        return pseudoChannels * dramSpec.org.banks();
    }

    /** Total FPUs in the device. */
    double
    totalFpus() const
    {
        return fpusPerBank() * static_cast<double>(totalBanks());
    }

    /** Device capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(pseudoChannels) *
               dramSpec.org.capacityBytes();
    }

    /** Peak compute of the whole device in FLOP/s. */
    double
    peakDeviceFlops() const
    {
        return totalFpus() * fpu.peakFlops();
    }

    /** The xPyB label, e.g. "4P1B". */
    std::string xPyBLabel() const;
};

/** AttAcc-style device: one FPU per bank, full 16 GB capacity. */
PimConfig attAccConfig();

/** Samsung HBM-PIM-style device: one FPU per two banks, 16 GB. */
PimConfig hbmPimConfig();

/**
 * PAPI FC-PIM: four FPUs per bank; capacity reduced to 12 GB (96 of
 * 128 banks' cell area kept) per the area model of Section 6.1.
 */
PimConfig fcPimConfig();

/** PAPI Attn-PIM: one FPU per two banks, 16 GB, disaggregated. */
PimConfig attnPimConfig();

} // namespace papi::pim

#endif // PAPI_PIM_PIM_CONFIG_HH
