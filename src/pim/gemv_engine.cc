#include "pim/gemv_engine.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dram/pseudo_channel.hh"
#include "sim/logging.hh"

namespace papi::pim {

using dram::Command;
using dram::CommandType;
using dram::Coord;
using sim::Tick;

namespace {

/** Cap on simulated rows per bank; larger shards scale linearly.
 *  Streaming is row-periodic, so 16 rows capture the steady state
 *  (fill effects span ~4 activates via tFAW). */
constexpr std::uint64_t simRowsCap = 16;

} // namespace

GemvEngine::GemvEngine(const PimConfig &config) : _config(config)
{
    if (_config.fpusPerGroup == 0 || _config.banksPerGroup == 0)
        sim::fatal("GemvEngine: xPyB parameters must be nonzero");
    const auto &org = _config.dramSpec.org;
    if (org.banks() % _config.banksPerGroup != 0)
        sim::fatal("GemvEngine: banksPerGroup=", _config.banksPerGroup,
                   " does not divide channel banks=", org.banks());
}

Tick
GemvEngine::computeTicksPerColumn(std::uint32_t reuse) const
{
    if (reuse == 0)
        sim::fatal("GemvEngine: reuse must be >= 1");
    // Work per column per bank: lanes * reuse MACs; the FPU group
    // contributes fpusPerGroup/banksPerGroup FPUs to this bank, each
    // retiring `lanes` MACs per cycle.
    std::uint64_t cycles =
        (static_cast<std::uint64_t>(reuse) * _config.banksPerGroup +
         _config.fpusPerGroup - 1) /
        _config.fpusPerGroup;
    return cycles * _config.fpu.periodTicks();
}

Tick
GemvEngine::analyticLowerBound(std::uint64_t bytes_per_bank,
                               std::uint32_t reuse) const
{
    const auto &org = _config.dramSpec.org;
    const auto &t = _config.dramSpec.timing;
    std::uint64_t columns =
        (bytes_per_bank + org.accessBytes - 1) / org.accessBytes;
    Tick per_column = std::max<Tick>(t.tCCD_S,
                                     computeTicksPerColumn(reuse));
    return columns * per_column;
}

GemvResult
GemvEngine::run(std::uint64_t bytes_per_bank, std::uint32_t reuse) const
{
    const auto &org = _config.dramSpec.org;
    if (bytes_per_bank == 0)
        return GemvResult{};

    std::uint64_t rows =
        (bytes_per_bank + org.rowBytes - 1) / org.rowBytes;

    if (rows <= simRowsCap)
        return runExact(bytes_per_bank, reuse);

    // Steady-state scaling: simulate the cap and scale per-row cost.
    GemvResult base = runExact(simRowsCap * org.rowBytes, reuse);
    double scale = static_cast<double>(rows) /
                   static_cast<double>(simRowsCap);

    GemvResult out;
    out.ticks = static_cast<Tick>(
        static_cast<double>(base.ticks) * scale + 0.5);
    out.activations = static_cast<std::uint64_t>(
        static_cast<double>(base.activations) * scale + 0.5);
    out.streamedBytes = static_cast<std::uint64_t>(
        static_cast<double>(base.streamedBytes) * scale + 0.5);
    out.flops = base.flops * scale;
    out.fpuBusyFrac = base.fpuBusyFrac;
    out.computeBound = base.computeBound;
    return out;
}

GemvResult
GemvEngine::runExact(std::uint64_t bytes_per_bank,
                     std::uint32_t reuse) const
{
    const auto &org = _config.dramSpec.org;
    const auto &t = _config.dramSpec.timing;

    // Timing depends on reuse only through the FPU service time per
    // column, so distinct reuse values sharing computeTicksPerColumn
    // hit the same cache entry; FLOPs are fixed up below.
    const Tick compute_key = computeTicksPerColumn(reuse);
    const std::uint64_t key =
        ((bytes_per_bank + org.accessBytes - 1) / org.accessBytes) *
            (1ULL << 32) +
        std::min<Tick>(compute_key, (1ULL << 32) - 1);
    if (_recorder == nullptr) {
        if (auto it = _cache.find(key); it != _cache.end()) {
            GemvResult out = it->second;
            out.flops = static_cast<double>(out.streamedBytes) / 2.0 *
                        static_cast<double>(reuse) * 2.0;
            return out;
        }
    }

    dram::PseudoChannel channel(_config.dramSpec);

    const std::uint32_t cols_per_row = org.columnsPerRow();
    const std::uint64_t total_columns =
        (bytes_per_bank + org.accessBytes - 1) / org.accessBytes;
    const std::uint64_t full_rows = total_columns / cols_per_row;
    const std::uint32_t tail_cols =
        static_cast<std::uint32_t>(total_columns % cols_per_row);

    const Tick compute_per_col = computeTicksPerColumn(reuse);

    struct BankCursor
    {
        std::uint32_t group = 0;
        std::uint32_t bank = 0;
        std::uint64_t rowsLeft = 0; ///< Rows still to open (incl. cur).
        std::uint32_t colsLeftInRow = 0;
        std::uint32_t nextRow = 0;
        Tick fpuReadyAt = 0;
        Tick fpuBusyTicks = 0;
        bool rowOpen = false;
        bool done = false;
    };

    std::vector<BankCursor> banks;
    banks.reserve(org.banks());
    for (std::uint32_t g = 0; g < org.bankGroups; ++g) {
        for (std::uint32_t b = 0; b < org.banksPerGroup; ++b) {
            BankCursor c;
            c.group = g;
            c.bank = b;
            c.rowsLeft = full_rows + (tail_cols != 0 ? 1 : 0);
            if (c.rowsLeft == 0)
                c.done = true;
            banks.push_back(c);
        }
    }

    auto cols_for_row = [&](const BankCursor &c) -> std::uint32_t {
        // The last row may be partial.
        bool is_last = (c.rowsLeft == 1);
        return (is_last && tail_cols != 0) ? tail_cols : cols_per_row;
    };

    Tick now = 0;
    std::uint64_t activations = 0;
    std::uint64_t column_accesses = 0;
    Tick kernel_end = 0;
    std::uint64_t compute_stalled_cols = 0;

    // Issue commands bank-by-bank in global earliest-first order.
    while (true) {
        int best = -1;
        Tick best_tick = sim::maxTick;
        Command best_cmd;

        for (std::size_t i = 0; i < banks.size(); ++i) {
            auto &c = banks[i];
            if (c.done)
                continue;

            Command cmd;
            cmd.coord = Coord{c.group, c.bank, c.nextRow, 0};
            if (!c.rowOpen) {
                cmd.type = CommandType::Act;
            } else if (c.colsLeftInRow > 0) {
                cmd.type = CommandType::PimMac;
            } else {
                cmd.type = CommandType::Pre;
            }

            Tick earliest = channel.earliestIssue(cmd, now);
            if (cmd.type == CommandType::PimMac) {
                // FPU input queue of four columns: a new column may
                // issue while earlier ones are in flight through the
                // read latency (tCL + tBURST) or queued at the FPUs,
                // but not so early that the queue would overflow.
                Tick pipe = t.tCL + t.tBURST + 4 * compute_per_col;
                Tick gate = c.fpuReadyAt > pipe ? c.fpuReadyAt - pipe
                                                : 0;
                earliest = std::max(earliest, gate);
            }
            if (earliest < best_tick) {
                best_tick = earliest;
                best = static_cast<int>(i);
                best_cmd = cmd;
            }
        }

        if (best < 0)
            break; // all banks done

        auto &c = banks[best];
        now = std::max(now, best_tick);
        Tick done_at = channel.issue(best_cmd, best_tick);
        if (_recorder)
            _recorder->push_back(TraceEntry{best_tick, best_cmd});

        switch (best_cmd.type) {
          case CommandType::Act:
            c.rowOpen = true;
            c.colsLeftInRow = cols_for_row(c);
            ++activations;
            break;
          case CommandType::PimMac: {
            ++column_accesses;
            --c.colsLeftInRow;
            Tick data_at = done_at;
            Tick start = std::max(data_at, c.fpuReadyAt);
            if (start > data_at)
                ++compute_stalled_cols;
            c.fpuReadyAt = start + compute_per_col;
            c.fpuBusyTicks += compute_per_col;
            kernel_end = std::max(kernel_end, c.fpuReadyAt);
            if (c.colsLeftInRow == 0) {
                --c.rowsLeft;
                ++c.nextRow;
                if (c.rowsLeft == 0)
                    c.done = true;
                // else: a Pre will be issued next for this bank.
            }
            break;
          }
          case CommandType::Pre:
            c.rowOpen = false;
            break;
          default:
            sim::panic("GemvEngine: unexpected command");
        }
        (void)t;
    }

    GemvResult out;
    out.ticks = kernel_end;
    out.activations = activations;
    out.streamedBytes = column_accesses * org.accessBytes;
    // Each streamed FP16 element is combined with `reuse` inputs,
    // one MAC (2 FLOPs) each.
    out.flops = static_cast<double>(out.streamedBytes) / 2.0 *
                static_cast<double>(reuse) * 2.0;
    Tick busy_max = 0;
    for (const auto &c : banks)
        busy_max = std::max(busy_max, c.fpuBusyTicks);
    out.fpuBusyFrac =
        kernel_end == 0
            ? 0.0
            : static_cast<double>(busy_max) /
                  static_cast<double>(kernel_end);
    out.computeBound =
        column_accesses > 0 &&
        compute_stalled_cols * 2 > column_accesses;
    if (_recorder == nullptr)
        _cache.emplace(key, out);
    return out;
}

} // namespace papi::pim
