/**
 * @file
 * Multi-head attention execution on a PIM device.
 *
 * One decode iteration of attention per request and head is two
 * GEMVs over the KV cache: scores = Q x K^T (stream K^T, reuse =
 * TLP) and context = softmax(scores) x V (stream V, reuse = TLP),
 * plus a softmax pass executed by the buffer-die vector unit.
 * Batching does not create weight reuse here - each request owns its
 * KV cache - which is why attention stays memory-bound (paper
 * Section 3.1).
 */

#ifndef PAPI_PIM_ATTENTION_ENGINE_HH
#define PAPI_PIM_ATTENTION_ENGINE_HH

#include <cstdint>

#include "pim/energy_model.hh"
#include "pim/gemv_engine.hh"
#include "pim/pim_config.hh"

namespace papi::pim {

/** Timing/energy outcome of one attention kernel on one device. */
struct AttentionResult
{
    double seconds = 0.0;
    /** GEMV (K^T and V streaming) component, seconds. */
    double gemvSeconds = 0.0;
    /** Softmax component, seconds. */
    double softmaxSeconds = 0.0;
    /** KV-append (writing the new tokens' K/V vectors), seconds. */
    double kvWriteSeconds = 0.0;
    PimEnergyBreakdown energy; ///< Per device.
    std::uint64_t kvBytesStreamed = 0;
};

/** Attention kernel timing for one PIM configuration. */
class AttentionEngine
{
  public:
    AttentionEngine(const PimConfig &config,
                    const PimEnergyParams &params);

    /**
     * One decode iteration of multi-head attention on the busiest
     * device.
     *
     * @param kv_bytes_per_bank K^T plus V bytes resident per bank on
     *        the busiest device (from DataLayout::partitionKvCache).
     * @param tlp Token-level parallelism (speculation length): the
     *        reuse factor for KV streaming.
     * @param score_elements Scores computed on this device this
     *        iteration (for softmax time): sum over resident heads of
     *        L x TLP.
     */
    AttentionResult run(std::uint64_t kv_bytes_per_bank,
                        std::uint32_t tlp,
                        std::uint64_t score_elements) const;

    const GemvEngine &gemv() const { return _gemv; }

  private:
    PimConfig _config;
    PimEnergyParams _params;
    GemvEngine _gemv;
    /** Softmax throughput of the buffer-die unit, elements/second. */
    double _softmaxElemsPerSec;
};

} // namespace papi::pim

#endif // PAPI_PIM_ATTENTION_ENGINE_HH
