/**
 * @file
 * Data partitioning across PIM devices, pseudo-channels and banks
 * (paper Section 6.4).
 *
 * FC weights: the weight matrix is split into 2D blocks across
 * devices; within a device, blocks are partitioned column-wise at the
 * pseudo-channel and bank-group levels and row-wise at the bank
 * level (same scheme as AttAcc's K^T mapping).
 *
 * Attention KV: attention heads are distributed across Attn-PIM
 * devices; K^T is partitioned column-wise at pseudo-channel /
 * bank-group level and row-wise at bank level; V conversely.
 * For the streaming-time model what matters is the resident bytes
 * per bank, which both schemes balance.
 */

#ifndef PAPI_PIM_DATA_LAYOUT_HH
#define PAPI_PIM_DATA_LAYOUT_HH

#include <cstdint>

#include "pim/pim_config.hh"

namespace papi::pim {

/** Result of partitioning a tensor over a set of PIM devices. */
struct Partition
{
    /** Devices the tensor spans. */
    std::uint32_t devices = 0;
    /** Bytes resident in each bank (balanced, rounded up). */
    std::uint64_t bytesPerBank = 0;
    /** Total banks participating. */
    std::uint64_t totalBanks = 0;
    /** Load imbalance: max/mean bank bytes (1.0 = perfect). */
    double imbalance = 1.0;
};

/** Partitioning helpers for one device configuration. */
class DataLayout
{
  public:
    explicit DataLayout(const PimConfig &config) : _config(config) {}

    /**
     * Partition @p total_bytes of FC weight data evenly over
     * @p num_devices devices of this configuration. Fatal if capacity
     * is exceeded.
     */
    Partition partitionWeights(std::uint64_t total_bytes,
                               std::uint32_t num_devices) const;

    /**
     * Partition a KV cache over @p num_devices devices:
     * @p num_heads attention heads, each holding @p bytes_per_head of
     * K^T plus V data. Heads map to devices round-robin; within a
     * device the head's matrices spread over all banks.
     */
    Partition partitionKvCache(std::uint64_t bytes_per_head,
                               std::uint32_t num_heads,
                               std::uint32_t num_devices) const;

    /**
     * Check whether @p total_bytes fits in @p num_devices devices.
     */
    bool fits(std::uint64_t total_bytes,
              std::uint32_t num_devices) const;

  private:
    PimConfig _config;
};

} // namespace papi::pim

#endif // PAPI_PIM_DATA_LAYOUT_HH
