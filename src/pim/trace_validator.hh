/**
 * @file
 * Independent validation of PIM command traces.
 *
 * GemvEngine can record the exact (tick, command) stream it issues;
 * TraceValidator re-checks that stream against the JEDEC constraints
 * with a completely separate implementation. This is
 * defense-in-depth for the timing model: the engine's scheduling
 * logic and the validator's rule set would have to contain the same
 * bug to let a violation through.
 */

#ifndef PAPI_PIM_TRACE_VALIDATOR_HH
#define PAPI_PIM_TRACE_VALIDATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dram/command.hh"
#include "dram/timing.hh"
#include "sim/types.hh"

namespace papi::pim {

/** One recorded command issue. */
struct TraceEntry
{
    sim::Tick tick = 0;
    dram::Command command;
};

/** A recorded command stream. */
using CommandTrace = std::vector<TraceEntry>;

/** Result of validating a trace. */
struct ValidationResult
{
    bool ok = true;
    std::size_t violations = 0;
    /** First violation description (empty when ok). */
    std::string firstViolation;
};

/** Re-checks command streams against DRAM timing rules. */
class TraceValidator
{
  public:
    explicit TraceValidator(const dram::DramSpec &spec)
        : _spec(spec)
    {}

    /**
     * Validate @p trace. Checked rules:
     *  - non-decreasing issue ticks;
     *  - ACT only on a closed bank; column commands only on the
     *    addressed open row; PRE only on an open bank;
     *  - per-bank tRCD (ACT to column), tRAS (ACT to PRE), tRP
     *    (PRE to ACT), tRC (ACT to ACT);
     *  - per-bank column cadence >= tCCD_S (PIM) / tCCD_L (ext);
     *  - channel tRRD_S/tRRD_L between ACTs and the tFAW window.
     */
    ValidationResult validate(const CommandTrace &trace) const;

  private:
    dram::DramSpec _spec;
};

} // namespace papi::pim

#endif // PAPI_PIM_TRACE_VALIDATOR_HH
