#include "pim/power_model.hh"

#include "sim/logging.hh"

namespace papi::pim {

PowerModel::PowerModel(const PimConfig &config,
                       const PimEnergyParams &params)
    : _config(config), _params(params)
{
}

PimPowerBreakdown
PowerModel::fullyFedPower(std::uint32_t reuse) const
{
    if (reuse == 0)
        sim::fatal("PowerModel: reuse must be >= 1");

    const auto &org = _config.dramSpec.org;
    const double access_bytes = org.accessBytes;
    const double elems_per_col = access_bytes / 2.0; // FP16

    // One FPU consumes one column (lanes elements) per cycle.
    const double fpu_hz = _config.fpu.clockMhz * 1e6;
    const double cols_per_sec_per_fpu =
        fpu_hz * static_cast<double>(_config.fpu.lanes) / elems_per_col;

    const double total_fpus = _config.totalFpus();
    const double consume_cols_per_sec = cols_per_sec_per_fpu *
                                        total_fpus;
    const double fetch_cols_per_sec =
        consume_cols_per_sec / static_cast<double>(reuse);

    const double cols_per_row = org.columnsPerRow();

    PimPowerBreakdown out;
    out.dramAccess =
        fetch_cols_per_sec *
        (_params.dram.actPreEnergy / cols_per_row +
         _params.dram.cellReadEnergyPerByte * access_bytes);
    out.transfer = consume_cols_per_sec *
                   _params.transferEnergyPerByte * access_bytes;
    // Each consumed column performs elems * 2 FLOPs.
    out.compute = consume_cols_per_sec * elems_per_col * 2.0 *
                  _params.fpuEnergyPerFlop;
    out.fpuStatic = total_fpus * _params.fpuStaticPowerPerFpu;
    return out;
}

std::uint32_t
PowerModel::minReuseWithinBudget(std::uint32_t max_reuse) const
{
    for (std::uint32_t r = 1; r <= max_reuse; ++r) {
        if (withinBudget(r))
            return r;
    }
    return 0;
}

double
PowerModel::executionPower(const GemvResult &result,
                           std::uint32_t reuse) const
{
    if (result.ticks == 0)
        return 0.0;
    PimEnergyBreakdown e = pimGemvEnergy(_params, result.activations,
                                         result.streamedBytes, reuse);
    // Scale per-channel counts to the whole device.
    double device_energy =
        e.total() * static_cast<double>(_config.pseudoChannels);
    double static_energy = _config.totalFpus() *
                           _params.fpuStaticPowerPerFpu *
                           sim::ticksToSeconds(result.ticks);
    return (device_energy + static_energy) /
           sim::ticksToSeconds(result.ticks);
}

} // namespace papi::pim
