/**
 * @file
 * PIM device power model (paper Fig. 7(c)).
 *
 * Two views are provided:
 *
 *  - fullyFedPower(): the design-space view the paper uses in Fig.
 *    7(c): assume the FPUs are always busy ("fully fed") and the DRAM
 *    fetch rate equals the FPU consumption rate divided by the data
 *    reuse level. This is the frame in which 4P1B without reuse draws
 *    ~480 W and reuse brings it under the 116 W HBM3 budget.
 *
 *  - executionPower(): average power of an actual simulated kernel
 *    (energy / time) for reporting end-to-end energy efficiency.
 */

#ifndef PAPI_PIM_POWER_MODEL_HH
#define PAPI_PIM_POWER_MODEL_HH

#include <cstdint>

#include "pim/energy_model.hh"
#include "pim/gemv_engine.hh"
#include "pim/pim_config.hh"

namespace papi::pim {

/** HBM3 8-high 16 GB cube power budget (JEDEC IDD7 frame), watts. */
constexpr double hbm3PowerBudgetWatts = 116.0;

/** Power split for reporting. */
struct PimPowerBreakdown
{
    double dramAccess = 0.0;
    double transfer = 0.0;
    double compute = 0.0; ///< FPU dynamic.
    double fpuStatic = 0.0;

    double
    total() const
    {
        return dramAccess + transfer + compute + fpuStatic;
    }
};

/** Power model bound to one PIM configuration. */
class PowerModel
{
  public:
    PowerModel(const PimConfig &config, const PimEnergyParams &params);

    /**
     * Fully-fed sustained power of the whole device at a given data
     * reuse level (Fig. 7(c) frame; see file comment).
     */
    PimPowerBreakdown fullyFedPower(std::uint32_t reuse) const;

    /** True if fullyFedPower(reuse) fits in the HBM3 budget. */
    bool
    withinBudget(std::uint32_t reuse) const
    {
        return fullyFedPower(reuse).total() <= hbm3PowerBudgetWatts;
    }

    /** Smallest reuse level at which the config fits the budget,
     *  searching up to @p max_reuse. Returns 0 if none fits. */
    std::uint32_t minReuseWithinBudget(std::uint32_t max_reuse) const;

    /**
     * Average power of an actual kernel execution whose timing and
     * counts are in @p result (per pseudo-channel; scaled to the
     * device by the caller or via whole_device).
     */
    double executionPower(const GemvResult &result,
                          std::uint32_t reuse) const;

  private:
    PimConfig _config;
    PimEnergyParams _params;
};

} // namespace papi::pim

#endif // PAPI_PIM_POWER_MODEL_HH
