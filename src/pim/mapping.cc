#include "pim/mapping.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace papi::pim {

std::uint64_t
DeviceMapping::maxShardElements() const
{
    std::uint64_t best = 0;
    for (const auto &s : shards)
        best = std::max(best, s.elements());
    return best;
}

std::uint64_t
DeviceMapping::totalElements() const
{
    std::uint64_t sum = 0;
    for (const auto &s : shards)
        sum += s.elements();
    return sum;
}

std::uint32_t
HeadPlacement::maxHeadsPerDevice() const
{
    std::vector<std::uint32_t> counts(devices, 0);
    for (auto d : deviceOfHead)
        ++counts[d];
    return counts.empty()
               ? 0
               : *std::max_element(counts.begin(), counts.end());
}

HeadPlacement
MappingPlanner::placeHeads(std::uint32_t num_heads,
                           std::uint32_t num_devices) const
{
    if (num_heads == 0 || num_devices == 0)
        sim::fatal("MappingPlanner::placeHeads: zero heads or "
                   "devices");
    HeadPlacement out;
    out.devices = num_devices;
    out.deviceOfHead.resize(num_heads);
    for (std::uint32_t h = 0; h < num_heads; ++h)
        out.deviceOfHead[h] = h % num_devices;
    return out;
}

namespace {

/** Split [0, extent) into `parts` contiguous near-equal ranges. */
std::pair<std::uint64_t, std::uint64_t>
splitRange(std::uint64_t extent, std::uint32_t parts,
           std::uint32_t index)
{
    std::uint64_t base = extent / parts;
    std::uint64_t rem = extent % parts;
    std::uint64_t begin = base * index +
                          std::min<std::uint64_t>(index, rem);
    std::uint64_t size = base + (index < rem ? 1 : 0);
    return {begin, begin + size};
}

} // namespace

DeviceMapping
MappingPlanner::mapMatrix(std::uint64_t rows, std::uint64_t cols,
                          PartitionAxis channel_axis,
                          PartitionAxis bank_axis) const
{
    if (rows == 0 || cols == 0)
        sim::fatal("MappingPlanner: empty matrix");

    const std::uint32_t channels = _config.pseudoChannels;
    const std::uint32_t groups = _config.dramSpec.org.bankGroups;
    const std::uint32_t banks = _config.dramSpec.org.banksPerGroup;

    DeviceMapping out;
    out.channelAxis = channel_axis;
    out.bankAxis = bank_axis;
    out.rows = rows;
    out.cols = cols;
    out.shards.reserve(static_cast<std::size_t>(channels) * groups *
                       banks);

    // Channel and bank-group levels split one axis jointly; the
    // bank level splits the other.
    const std::uint32_t outer_parts = channels * groups;

    for (std::uint32_t ch = 0; ch < channels; ++ch) {
        for (std::uint32_t g = 0; g < groups; ++g) {
            std::uint32_t outer_index = ch * groups + g;
            for (std::uint32_t b = 0; b < banks; ++b) {
                BankShard s;
                s.pseudoChannel = ch;
                s.bankGroup = g;
                s.bank = b;
                if (channel_axis == PartitionAxis::ColumnWise) {
                    auto [c0, c1] = splitRange(cols, outer_parts,
                                               outer_index);
                    auto [r0, r1] = splitRange(rows, banks, b);
                    s.colBegin = c0;
                    s.colEnd = c1;
                    s.rowBegin = r0;
                    s.rowEnd = r1;
                } else {
                    auto [r0, r1] = splitRange(rows, outer_parts,
                                               outer_index);
                    auto [c0, c1] = splitRange(cols, banks, b);
                    s.rowBegin = r0;
                    s.rowEnd = r1;
                    s.colBegin = c0;
                    s.colEnd = c1;
                }
                out.shards.push_back(s);
            }
        }
    }
    return out;
}

DeviceMapping
MappingPlanner::mapKTranspose(std::uint64_t head_dim,
                              std::uint64_t seq_len) const
{
    // K^T (head_dim x seq_len): column-wise (sequence) at channel /
    // bank-group level, row-wise (head dim) at bank level.
    return mapMatrix(head_dim, seq_len, PartitionAxis::ColumnWise,
                     PartitionAxis::RowWise);
}

DeviceMapping
MappingPlanner::mapV(std::uint64_t seq_len,
                     std::uint64_t head_dim) const
{
    // V (seq_len x head_dim): row-wise (sequence) at channel /
    // bank-group level, column-wise (head dim) at bank level.
    return mapMatrix(seq_len, head_dim, PartitionAxis::RowWise,
                     PartitionAxis::ColumnWise);
}

DeviceMapping
MappingPlanner::mapWeights(std::uint64_t rows,
                           std::uint64_t cols) const
{
    return mapMatrix(rows, cols, PartitionAxis::ColumnWise,
                     PartitionAxis::RowWise);
}

} // namespace papi::pim
