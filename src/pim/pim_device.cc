#include "pim/pim_device.hh"

#include "sim/logging.hh"

namespace papi::pim {

PimDevice::PimDevice(const PimConfig &config,
                     const PimEnergyParams &params)
    : _config(config), _params(params), _gemv(config),
      _attn(config, params), _power(config, params), _layout(config)
{
}

PimKernelResult
PimDevice::fcGemv(std::uint64_t weight_bytes, std::uint32_t reuse,
                  std::uint32_t num_devices) const
{
    if (num_devices == 0)
        sim::fatal("PimDevice::fcGemv: zero devices");

    Partition part = _layout.partitionWeights(weight_bytes,
                                              num_devices);
    GemvResult g = _gemv.run(part.bytesPerBank, reuse);

    PimKernelResult out;
    out.seconds = sim::ticksToSeconds(g.ticks) + _launchOverhead;
    out.computeBound = g.computeBound;

    // Energy: the per-channel counts scale to all channels of all
    // participating devices (the shard is balanced).
    double channels = static_cast<double>(_config.pseudoChannels) *
                      static_cast<double>(num_devices);
    PimEnergyBreakdown e = pimGemvEnergy(_params, g.activations,
                                         g.streamedBytes, reuse);
    out.energy.dramAccess = e.dramAccess * channels;
    out.energy.transfer = e.transfer * channels;
    out.energy.compute = e.compute * channels;
    out.streamedBytes = g.streamedBytes *
                        static_cast<std::uint64_t>(channels);
    return out;
}

PimKernelResult
PimDevice::attention(std::uint64_t kv_bytes_total,
                     std::uint32_t num_heads, std::uint32_t tlp,
                     std::uint64_t score_elements,
                     std::uint32_t num_devices) const
{
    if (num_devices == 0)
        sim::fatal("PimDevice::attention: zero devices");
    if (kv_bytes_total == 0)
        return PimKernelResult{};

    std::uint64_t bytes_per_head =
        kv_bytes_total / std::max<std::uint32_t>(num_heads, 1);
    Partition part = _layout.partitionKvCache(bytes_per_head,
                                              num_heads, num_devices);

    // Softmax work on the busiest device.
    std::uint32_t heads_per_device =
        (num_heads + num_devices - 1) / num_devices;
    std::uint64_t scores_busiest =
        score_elements / std::max<std::uint32_t>(num_heads, 1) *
        heads_per_device;

    AttentionResult a = _attn.run(part.bytesPerBank, tlp,
                                  scores_busiest);

    PimKernelResult out;
    out.seconds = a.seconds + _launchOverhead;

    // Energy is proportional to total KV bytes streamed, regardless
    // of how they are spread: recompute from the fleet totals.
    const auto &org = _config.dramSpec.org;
    std::uint64_t rows =
        (kv_bytes_total + org.rowBytes - 1) / org.rowBytes;
    PimEnergyBreakdown e =
        pimGemvEnergy(_params, rows, kv_bytes_total, tlp);
    out.energy = e;
    out.streamedBytes = kv_bytes_total;
    return out;
}

} // namespace papi::pim
