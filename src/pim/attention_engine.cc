#include "pim/attention_engine.hh"

#include "sim/logging.hh"

namespace papi::pim {

AttentionEngine::AttentionEngine(const PimConfig &config,
                                 const PimEnergyParams &params)
    : _config(config), _params(params), _gemv(config)
{
    // Buffer-die vector unit: 16 lanes at the FPU clock handling
    // exp/normalise at one element per lane-cycle, per pseudo-channel.
    _softmaxElemsPerSec = static_cast<double>(_config.fpu.lanes) *
                          _config.fpu.clockMhz * 1e6 *
                          static_cast<double>(_config.pseudoChannels);
}

AttentionResult
AttentionEngine::run(std::uint64_t kv_bytes_per_bank, std::uint32_t tlp,
                     std::uint64_t score_elements) const
{
    if (tlp == 0)
        sim::fatal("AttentionEngine: tlp must be >= 1");

    AttentionResult out;
    if (kv_bytes_per_bank == 0)
        return out;

    GemvResult g = _gemv.run(kv_bytes_per_bank, tlp);
    out.gemvSeconds = sim::ticksToSeconds(g.ticks);
    out.softmaxSeconds = static_cast<double>(score_elements) /
                         _softmaxElemsPerSec;
    // The softmax of the scores must complete before the context
    // GEMV can consume them; we charge it serially (it is small).
    out.seconds = out.gemvSeconds + out.softmaxSeconds;

    // Appending this iteration's K/V vectors: tlp new tokens per
    // live head-shard, written at the banks' write cadence. Small
    // next to the stream, but physical.
    double write_bytes_per_bank =
        static_cast<double>(tlp) * _config.fpu.lanes * 2.0;
    double bank_write_bw =
        static_cast<double>(_config.dramSpec.org.accessBytes) /
        sim::ticksToSeconds(_config.dramSpec.timing.tCCD_S);
    out.kvWriteSeconds = write_bytes_per_bank / bank_write_bw;
    out.seconds += out.kvWriteSeconds;

    out.energy = pimGemvEnergy(_params, g.activations,
                               g.streamedBytes, tlp);
    // Scale the per-channel GEMV counts to the whole device.
    double channels = static_cast<double>(_config.pseudoChannels);
    out.energy.dramAccess *= channels;
    out.energy.transfer *= channels;
    out.energy.compute *= channels;
    out.kvBytesStreamed = g.streamedBytes *
                          static_cast<std::uint64_t>(
                              _config.pseudoChannels);
    return out;
}

} // namespace papi::pim
