#include "cluster/cluster_engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/metrics.hh"
#include "core/serving_events.hh"
#include "sim/logging.hh"

namespace papi::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

LatencyPercentiles
summarize(std::vector<double> &values, double &mean_out)
{
    LatencyPercentiles out;
    if (values.empty()) {
        // An empty population (e.g. a pool that completed zero
        // requests) has no percentiles: NaN, not a fabricated 0.
        // populateStats skips non-finite scalars on export.
        mean_out = std::numeric_limits<double>::quiet_NaN();
        out.p50 = out.p95 = out.p99 = mean_out;
        return out;
    }
    double sum = 0.0;
    for (double v : values)
        sum += v;
    mean_out = sum / static_cast<double>(values.size());
    std::sort(values.begin(), values.end());
    out.p50 = core::percentileSorted(values, 0.50);
    out.p95 = core::percentileSorted(values, 0.95);
    out.p99 = core::percentileSorted(values, 0.99);
    return out;
}

} // namespace

namespace {

/** Shared constructor-time configuration validation. */
void
validateClusterOptions(const ClusterOptions &options)
{
    if (options.tensorParallelDegree == 0)
        sim::fatal("ClusterEngine: tensorParallelDegree must be "
                   ">= 1");
    options.tpFabric.validate();
    if (options.disagg.enabled) {
        if (options.disagg.prefillReplicas == 0 ||
            options.disagg.decodeReplicas == 0)
            sim::fatal("ClusterEngine: disaggregation needs at "
                       "least one prefill and one decode replica "
                       "(got ", options.disagg.prefillReplicas,
                       " + ", options.disagg.decodeReplicas, ")");
        if (options.serving.admission ==
            core::AdmissionPolicy::BatchLevel)
            sim::fatal("ClusterEngine: disaggregated serving "
                       "requires token-level admission");
    }
}

/** Disaggregated replica count (prefill + decode pools). */
std::uint32_t
disaggGroups(const ClusterOptions &options)
{
    return options.disagg.prefillReplicas +
           options.disagg.decodeReplicas;
}

} // namespace

ClusterEngine::ClusterEngine(const core::PlatformConfig &config,
                             const ClusterOptions &options)
    : _options(options)
{
    validateClusterOptions(options);
    if (options.disagg.enabled) {
        // Pool sizes define the replica count; any caller-set
        // numPlatforms is derived, not read.
        _numGroups = disaggGroups(options);
        _options.numPlatforms =
            _numGroups * options.tensorParallelDegree;
    } else {
        if (options.numPlatforms == 0)
            sim::fatal("ClusterEngine: need at least one platform");
        if (options.numPlatforms % options.tensorParallelDegree != 0)
            sim::fatal("ClusterEngine: tensorParallelDegree (",
                       options.tensorParallelDegree,
                       ") must divide numPlatforms (",
                       options.numPlatforms, ")");
        _numGroups =
            options.numPlatforms / options.tensorParallelDegree;
    }
    _platforms.reserve(_numGroups);
    for (std::uint32_t g = 0; g < _numGroups; ++g)
        _platforms.push_back(
            std::make_unique<core::Platform>(config));
}

ClusterEngine::ClusterEngine(
    const std::vector<core::PlatformConfig> &groupConfigs,
    const ClusterOptions &options)
    : _options(options)
{
    validateClusterOptions(options);
    if (groupConfigs.empty())
        sim::fatal("ClusterEngine: need at least one replica "
                   "config");
    if (options.disagg.enabled &&
        groupConfigs.size() != disaggGroups(options))
        sim::fatal("ClusterEngine: disaggregated pools need one "
                   "config per replica (", disaggGroups(options),
                   " = ", options.disagg.prefillReplicas,
                   " prefill + ", options.disagg.decodeReplicas,
                   " decode, got ", groupConfigs.size(), ")");
    _numGroups = static_cast<std::uint32_t>(groupConfigs.size());
    _options.numPlatforms =
        _numGroups * _options.tensorParallelDegree;
    _platforms.reserve(_numGroups);
    for (const auto &cfg : groupConfigs)
        _platforms.push_back(std::make_unique<core::Platform>(cfg));
}

ClusterResult
ClusterEngine::run(const std::vector<llm::TimedRequest> &stream,
                   const llm::SpeculativeConfig &spec,
                   const llm::ModelConfig &model)
{
    if (stream.empty())
        sim::fatal("ClusterEngine: empty request stream");
    for (std::size_t i = 1; i < stream.size(); ++i) {
        if (stream[i].arrivalSeconds < stream[i - 1].arrivalSeconds)
            sim::fatal("ClusterEngine: arrivals must be sorted");
    }
    double first_arrival = stream.front().arrivalSeconds;
    return runImpl(
        spec, model, stream.size(), first_arrival,
        [&stream](core::ServingEventDriver &driver,
                  const core::RouteFn &route) {
            driver.runStream(stream, route);
        });
}

ClusterResult
ClusterEngine::runStream(llm::ArrivalProcess &arrivals,
                         std::uint64_t count,
                         const llm::SpeculativeConfig &spec,
                         const llm::ModelConfig &model)
{
    if (count == 0)
        sim::fatal("ClusterEngine: empty generated stream");
    double first_arrival = 0.0;
    bool first_seen = false;
    return runImpl(
        spec, model, count, first_arrival,
        [&](core::ServingEventDriver &driver,
            const core::RouteFn &route) {
            driver.runStreamGenerated(
                [&]() {
                    llm::TimedRequest r = arrivals.next();
                    if (!first_seen) {
                        first_arrival = r.arrivalSeconds;
                        first_seen = true;
                    }
                    return r;
                },
                count, route);
        });
}

ClusterResult
ClusterEngine::runImpl(
    const llm::SpeculativeConfig &spec,
    const llm::ModelConfig &model, std::uint64_t offered,
    double &first_arrival,
    const std::function<void(core::ServingEventDriver &,
                             const core::RouteFn &)> &drive)
{
    TensorParallelModel tp;
    tp.degree = _options.tensorParallelDegree;
    tp.fabric = _options.tpFabric;
    const core::IterationCostModel cost =
        tp.iterationCostModel(model);

    const bool disagg = _options.disagg.enabled;
    const std::uint32_t prefill_pool =
        disagg ? _options.disagg.prefillReplicas : 0;

    std::vector<std::unique_ptr<core::ServingSim>> sims;
    sims.reserve(_numGroups);
    for (std::uint32_t g = 0; g < _numGroups; ++g) {
        core::ServingOptions sopt = _options.serving;
        if (_options.recordCapacity > 0)
            sopt.recordCapacity = _options.recordCapacity;
        if (disagg) {
            sopt.role = g < prefill_pool ? core::ServingRole::Prefill
                                         : core::ServingRole::Decode;
            // A prefill replica frees its KV at handoff, so
            // pressure preemption is a decode-pool concern.
            if (sopt.role == core::ServingRole::Prefill)
                sopt.preemptOnKvPressure = false;
        }
        sims.push_back(std::make_unique<core::ServingSim>(
            *_platforms[g], spec, model, sopt, cost));
    }

    // All replicas compose on one shared event queue: arrivals are
    // routed at delivery time against per-backend load snapshots,
    // and each replica schedules its own admission/boundary
    // lifecycle events (core::ServingEventDriver preserves the
    // historical arrival-first, lowest-index tie order exactly).
    // Disaggregated mode routes arrivals over the prefill pool only;
    // completed prefills migrate to the decode pool as timed KV
    // transfers scheduled by the driver.
    const std::uint32_t route_width =
        disagg ? prefill_pool : _numGroups;
    const RouterPolicy active_policy =
        disagg ? _options.disagg.prefillPolicy : _options.policy;
    Router router(active_policy, route_width);
    std::vector<BackendLoad> loads(route_width);
    std::vector<core::ServingSim *> replicas;
    replicas.reserve(_numGroups);
    for (auto &s : sims)
        replicas.push_back(s.get());
    core::ServingEventDriver driver(std::move(replicas));
    driver.setWorkerThreads(_options.workerThreads);
    // RoundRobin and SessionAffinity decisions depend only on the
    // request and the router's own cursor/hash - never on the load
    // snapshots - so with liveness constant (no fault plan) and no
    // disaggregation the driver may pre-route the stream and skip
    // every arrival barrier (the parallel fast path). The result is
    // byte-identical either way; this only removes synchronization.
    // LeastOutstanding reads live loads and CacheHitAware probes
    // live per-replica caches, so both stay on the barrier path.
    driver.setStateIndependentRouting(
        !disagg && _options.faults.empty() &&
        active_policy != RouterPolicy::LeastOutstanding &&
        active_policy != RouterPolicy::CacheHitAware);
    if (disagg)
        driver.enableDisaggregation(
            {prefill_pool, _options.disagg.transferLink});

    // Fault injection: an empty plan builds no injector and
    // schedules nothing - the run is byte-identical to the
    // pre-fault engine (pinned). Link faults degrade the disagg
    // KV-migration fabric (the driver rejects them without one).
    std::unique_ptr<FaultInjector> injector;
    if (!_options.faults.empty()) {
        injector = std::make_unique<FaultInjector>(
            driver, _options.faults, _options.recovery);
        injector->arm();
        if (!_options.faults.linkFaults.empty())
            driver.setLinkFaults(
                _options.faults.linkFaults,
                _options.recovery.transferTimeoutSeconds);
    }

    const bool probe_caches =
        active_policy == RouterPolicy::CacheHitAware;
    const core::RouteFn route =
        [&](const llm::TimedRequest &request) {
            for (std::uint32_t g = 0; g < route_width; ++g) {
                loads[g].outstanding = sims[g]->outstanding();
                // Prefill replicas retire work synchronously (each
                // completed prompt hands off inside admit), so
                // outstanding alone cannot see a mid-prefill
                // replica; feed the backlog tie-break. Colocated
                // routing stays bit-stable (field left 0).
                if (disagg)
                    loads[g].busyUntilSeconds = sims[g]->now();
                // Cache-hit-aware routing: a side-effect-free probe
                // of each replica's prefix cache converts the
                // request's cached prompt span into expected KV
                // bytes served from cache.
                if (probe_caches)
                    loads[g].expectedHitBytes =
                        static_cast<std::uint64_t>(
                            sims[g]->probePrefixHitTokens(request)) *
                        model.kvBytesPerToken();
                loads[g].alive = !driver.isDown(g);
            }
            return router.route(request, loads);
        };
    drive(driver, route);

    ClusterResult out;
    out.numGroups = _numGroups;
    out.perGroup.reserve(_numGroups);
    out.groupUtilization.resize(_numGroups, 0.0);
    out.groupNames.reserve(_numGroups);
    out.groupPolicies.reserve(_numGroups);
    out.groupRoles.reserve(_numGroups);
    for (std::uint32_t g = 0; g < _numGroups; ++g) {
        out.groupNames.push_back(_platforms[g]->name());
        out.groupPolicies.push_back(core::dispatchPolicyName(
            _platforms[g]->dispatchPolicy(core::Phase::Fc)));
        out.groupRoles.push_back(
            !disagg ? "colocated"
                    : (g < prefill_pool ? "prefill" : "decode"));
    }
    if (disagg) {
        out.prefillGroups = prefill_pool;
        out.decodeGroups = _numGroups - prefill_pool;
        const core::KvTransferStats &xfer = driver.transferStats();
        out.kvTransfers = xfer.transfers;
        out.kvTransferBytes = xfer.bytes;
        out.kvTransferSeconds = xfer.linkSeconds;
        out.kvTransferJoules = xfer.joules;
        out.energyJoules += xfer.joules;
    }
    double t_end = first_arrival;
    for (std::uint32_t g = 0; g < _numGroups; ++g)
        t_end = std::max(t_end, sims[g]->now());
    if (injector) {
        // Close downtime windows and harvest requests stranded on
        // never-restarted replicas (counted failed) before the
        // per-replica results are read.
        injector->finalize(t_end);
        const FaultStats &fs = injector->stats();
        out.failedRequests = fs.failedRequests;
        out.retriedRequests = fs.retriesScheduled;
        out.retryRecomputedTokens = fs.retryRecomputedTokens;
        out.injectedCrashes = fs.crashes;
        out.replicaRestarts = fs.restarts;
        out.replicaDowntimeSeconds = fs.downtimeSeconds;
    } else {
        out.replicaDowntimeSeconds.assign(_numGroups, 0.0);
    }
    out.kvTransferFallbacks = driver.transferStats().fallbacks;
    std::uint64_t served = 0;
    for (std::uint32_t g = 0; g < _numGroups; ++g) {
        core::ServingResult r = sims[g]->finish();
        out.energyJoules += r.energyJoules;
        out.tokensGenerated += r.tokensGenerated;
        out.preemptions += r.preemptions;
        out.resumes += r.resumes;
        out.prefixLookups += r.prefixLookups;
        out.prefixHits += r.prefixHits;
        out.prefixHitTokens += r.prefixHitTokens;
        out.prefixMissTokens += r.prefixMissTokens;
        out.prefixEvictedBytes += r.prefixEvictedBytes;
        out.perGroup.push_back(std::move(r));
        t_end = std::max(t_end, sims[g]->now());
        // servedCount() stays exact past the record cap; records
        // hold each replica's capped prefix (the whole population
        // below the cap, where the paths are byte-identical).
        served += sims[g]->servedCount();
        if (sims[g]->streamStats().overflowed)
            out.statsTruncated = true;
        const auto &recs = sims[g]->records();
        out.records.insert(out.records.end(), recs.begin(),
                           recs.end());
    }
    out.makespanSeconds = t_end - first_arrival;
    out.requestsServed = served;
    out.requestsOffered = offered;
    for (const core::ServingResult &r : out.perGroup)
        out.shedRequests += r.shedRequests;
    if (out.requestsServed + out.failedRequests +
            out.shedRequests != out.requestsOffered)
        sim::panic("ClusterEngine: request conservation violated "
                   "(offered ", out.requestsOffered, " != served ",
                   out.requestsServed, " + failed ",
                   out.failedRequests, " + shed ",
                   out.shedRequests, ")");
    std::uint64_t served_tokens = 0;
    if (out.statsTruncated) {
        // Past the record cap the concatenated records are a capped
        // prefix; the streaming counters stay exact over the whole
        // run (folded at every retirement when a cap is set).
        for (std::uint32_t g = 0; g < _numGroups; ++g)
            served_tokens += sims[g]->streamStats().outputTokens;
    } else {
        for (const auto &rec : out.records)
            served_tokens += rec.outputTokens;
    }
    out.goodputTokensPerSecond =
        out.makespanSeconds > 0.0
            ? static_cast<double>(served_tokens) /
                  out.makespanSeconds
            : 0.0;
    const double deadline = _options.serving.deadlineSeconds;
    if (deadline > 0.0) {
        std::uint64_t met = 0;
        if (out.statsTruncated) {
            for (std::uint32_t g = 0; g < _numGroups; ++g)
                met += sims[g]->streamStats().deadlineMet;
        } else {
            for (const auto &rec : out.records) {
                if (rec.ttftSeconds() <= deadline)
                    ++met;
            }
        }
        out.sloAttainment =
            static_cast<double>(met) /
            static_cast<double>(out.requestsOffered);
    } else {
        // No deadline configured: SLO attainment degrades to the
        // completion rate (every served request "meets" it).
        out.sloAttainment =
            static_cast<double>(out.requestsServed) /
            static_cast<double>(out.requestsOffered);
    }
    for (std::uint32_t g = 0; g < _numGroups; ++g) {
        out.groupUtilization[g] =
            out.makespanSeconds > 0.0
                ? sims[g]->busySeconds() / out.makespanSeconds
                : 0.0;
    }

    if (out.statsTruncated) {
        // Bounded-memory aggregation: the full record population is
        // gone, so means come from the exact streaming sums and
        // percentiles are count-weighted averages of the per-replica
        // P-square estimates, merged in replica index order
        // (deterministic at any worker count).
        auto merge = [&sims, this](core::StreamMetric m,
                                   double &mean_out) {
            LatencyPercentiles p;
            double sum = 0.0;
            double w50 = 0.0, w95 = 0.0, w99 = 0.0;
            std::uint64_t count = 0;
            for (std::uint32_t g = 0; g < _numGroups; ++g) {
                const core::ServingStreamStats &ss =
                    sims[g]->streamStats();
                if (ss.count == 0)
                    continue;
                const double w = static_cast<double>(ss.count);
                sum += ss.sums[m];
                w50 += w * ss.p50[m].value();
                w95 += w * ss.p95[m].value();
                w99 += w * ss.p99[m].value();
                count += ss.count;
            }
            if (count == 0) {
                mean_out = std::numeric_limits<double>::quiet_NaN();
                p.p50 = p.p95 = p.p99 = mean_out;
                return p;
            }
            const double n = static_cast<double>(count);
            mean_out = sum / n;
            p.p50 = w50 / n;
            p.p95 = w95 / n;
            p.p99 = w99 / n;
            return p;
        };
        out.ttft = merge(core::kStreamTtft, out.meanTtftSeconds);
        out.tpot = merge(core::kStreamTpot, out.meanTpotSeconds);
        out.latency =
            merge(core::kStreamLatency, out.meanLatencySeconds);
        out.queueing =
            merge(core::kStreamQueueing, out.meanQueueingSeconds);
        out.preemptionStall = merge(
            core::kStreamStall, out.meanPreemptionStallSeconds);
        return out;
    }

    std::vector<double> ttft, tpot, latency, queueing, stall;
    ttft.reserve(out.records.size());
    tpot.reserve(out.records.size());
    latency.reserve(out.records.size());
    queueing.reserve(out.records.size());
    stall.reserve(out.records.size());
    for (const auto &rec : out.records) {
        ttft.push_back(rec.ttftSeconds());
        tpot.push_back(rec.tpotSeconds());
        latency.push_back(rec.finishSeconds - rec.arrivalSeconds);
        queueing.push_back(rec.queueingSeconds());
        stall.push_back(rec.stallSeconds);
    }
    out.ttft = summarize(ttft, out.meanTtftSeconds);
    out.tpot = summarize(tpot, out.meanTpotSeconds);
    out.latency = summarize(latency, out.meanLatencySeconds);
    out.queueing = summarize(queueing, out.meanQueueingSeconds);
    out.preemptionStall =
        summarize(stall, out.meanPreemptionStallSeconds);
    return out;
}

void
ClusterResult::populateStats(sim::stats::StatGroup &group) const
{
    group.addScalar("makespan_seconds",
                    "first arrival to last completion")
        .set(makespanSeconds);
    group.addScalar("energy_joules", "total cluster energy")
        .set(energyJoules);
    group.addScalar("requests_served", "requests run to <eos>")
        .set(static_cast<double>(requestsServed));
    group.addScalar("tokens_generated", "output tokens produced")
        .set(static_cast<double>(tokensGenerated));
    group.addScalar("throughput_tokens_per_second",
                    "tokens over the makespan")
        .set(throughputTokensPerSecond());

    // Empty populations aggregate to NaN (see core::percentileSorted);
    // such stats are skipped on export rather than fabricated as 0.
    auto add_finite = [&group](const std::string &name,
                               const char *desc, double v) {
        if (std::isfinite(v))
            group.addScalar(name, desc).set(v);
    };
    auto add_percentiles = [&add_finite](const char *prefix,
                                         const LatencyPercentiles &p,
                                         const char *desc) {
        add_finite(std::string(prefix) + "_p50_seconds", desc, p.p50);
        add_finite(std::string(prefix) + "_p95_seconds", desc, p.p95);
        add_finite(std::string(prefix) + "_p99_seconds", desc, p.p99);
    };
    add_percentiles("ttft", ttft, "arrival to first token");
    add_percentiles("tpot", tpot, "per-token decode interval");
    add_percentiles("latency", latency, "arrival to completion");
    add_percentiles("queueing", queueing, "arrival to admission");
    add_percentiles("preemption_stall", preemptionStall,
                    "seconds spent evicted under KV pressure");
    group.addScalar("preemptions", "KV-pressure evictions")
        .set(static_cast<double>(preemptions));
    group.addScalar("preemption_resumes",
                    "preempted requests re-admitted")
        .set(static_cast<double>(resumes));
    add_finite("preemption_stall_mean_seconds",
               "mean eviction stall across served requests",
               meanPreemptionStallSeconds);
    add_finite("ttft_mean_seconds", "arrival to first token",
               meanTtftSeconds);
    add_finite("latency_mean_seconds", "arrival to completion",
               meanLatencySeconds);
    add_finite("tpot_mean_seconds", "per-token decode interval",
               meanTpotSeconds);
    add_finite("queueing_mean_seconds", "arrival to admission",
               meanQueueingSeconds);
    if (prefillGroups > 0) {
        group.addScalar("prefill_groups",
                        "replicas in the prefill pool")
            .set(static_cast<double>(prefillGroups));
        group.addScalar("decode_groups",
                        "replicas in the decode pool")
            .set(static_cast<double>(decodeGroups));
        group.addScalar("kv_transfers",
                        "prefill->decode KV migrations")
            .set(static_cast<double>(kvTransfers));
        group.addScalar("kv_transfer_bytes",
                        "KV block bytes moved across the link")
            .set(static_cast<double>(kvTransferBytes));
        group.addScalar("kv_transfer_seconds",
                        "summed per-migration link occupancy")
            .set(kvTransferSeconds);
        group.addScalar("kv_transfer_joules",
                        "link energy of all KV migrations")
            .set(kvTransferJoules);
    }

    if (prefixLookups > 0) {
        group.addScalar("prefix_lookups",
                        "prefix-cache probes at admission")
            .set(static_cast<double>(prefixLookups));
        group.addScalar("prefix_hits",
                        "probes finding a cached span")
            .set(static_cast<double>(prefixHits));
        group.addScalar("prefix_hit_rate",
                        "prefix-cache hit fraction of probes")
            .set(static_cast<double>(prefixHits) /
                 static_cast<double>(prefixLookups));
        group.addScalar("prefix_hit_tokens",
                        "prompt tokens served from cache")
            .set(static_cast<double>(prefixHitTokens));
        group.addScalar("prefix_miss_tokens",
                        "keyed prompt tokens prefilled the long way")
            .set(static_cast<double>(prefixMissTokens));
        group.addScalar("prefix_evicted_bytes",
                        "cached bytes reclaimed under KV pressure")
            .set(static_cast<double>(prefixEvictedBytes));
    }
    if (statsTruncated)
        group.addScalar("stats_truncated",
                        "1 when percentiles come from streaming "
                        "estimators (record cap overflowed)")
            .set(1.0);

    group.addScalar("requests_offered",
                    "arrival stream size (served + failed + shed)")
        .set(static_cast<double>(requestsOffered));
    group.addScalar("goodput_tokens_per_second",
                    "completed-request tokens over the makespan")
        .set(goodputTokensPerSecond);
    group.addScalar("slo_attainment",
                    "offered requests meeting the TTFT deadline "
                    "(completion rate when no deadline is set)")
        .set(sloAttainment);
    const bool faulty = injectedCrashes > 0 || failedRequests > 0 ||
                        shedRequests > 0 || retriedRequests > 0 ||
                        kvTransferFallbacks > 0;
    if (faulty) {
        group.addScalar("failed_requests",
                        "requests dropped for good under faults")
            .set(static_cast<double>(failedRequests));
        group.addScalar("shed_requests",
                        "requests shed at admission past deadline")
            .set(static_cast<double>(shedRequests));
        group.addScalar("retried_requests",
                        "retry resubmissions issued")
            .set(static_cast<double>(retriedRequests));
        group.addScalar("retry_recomputed_tokens",
                        "tokens recomputed from scratch by retries")
            .set(static_cast<double>(retryRecomputedTokens));
        group.addScalar("injected_crashes",
                        "replica crashes executed")
            .set(static_cast<double>(injectedCrashes));
        group.addScalar("replica_restarts",
                        "replica restarts executed")
            .set(static_cast<double>(replicaRestarts));
        group.addScalar("kv_transfer_fallbacks",
                        "KV migrations fallen back to recompute")
            .set(static_cast<double>(kvTransferFallbacks));
        std::vector<std::string> down_bins;
        down_bins.reserve(replicaDowntimeSeconds.size());
        for (std::size_t g = 0; g < replicaDowntimeSeconds.size();
             ++g)
            down_bins.push_back("group" + std::to_string(g));
        auto &down = group.addVector("replica_downtime_seconds",
                                     "seconds each replica was dark",
                                     down_bins);
        for (std::size_t g = 0; g < replicaDowntimeSeconds.size();
             ++g)
            down.add(g, replicaDowntimeSeconds[g]);
    }

    std::vector<std::string> bins;
    bins.reserve(groupUtilization.size());
    for (std::size_t g = 0; g < groupUtilization.size(); ++g)
        bins.push_back("group" + std::to_string(g));
    auto &util = group.addVector(
        "group_utilization", "busy fraction of the makespan", bins);
    for (std::size_t g = 0; g < groupUtilization.size(); ++g)
        util.add(g, groupUtilization[g]);

    if (!records.empty()) {
        double ttft_max = 0.0, tpot_max = 0.0;
        for (const auto &rec : records) {
            ttft_max = std::max(ttft_max, rec.ttftSeconds());
            tpot_max = std::max(tpot_max, rec.tpotSeconds());
        }
        auto &h_ttft = group.addHistogram(
            "ttft_histogram", "arrival to first token, seconds",
            0.0, std::nextafter(std::max(ttft_max, 1e-9), kInf), 20);
        auto &h_tpot = group.addHistogram(
            "tpot_histogram", "per-token decode interval, seconds",
            0.0, std::nextafter(std::max(tpot_max, 1e-9), kInf), 20);
        for (const auto &rec : records) {
            h_ttft.sample(rec.ttftSeconds());
            h_tpot.sample(rec.tpotSeconds());
        }
    }
}

} // namespace papi::cluster
