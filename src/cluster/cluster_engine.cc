#include "cluster/cluster_engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/metrics.hh"
#include "core/serving_events.hh"
#include "sim/logging.hh"

namespace papi::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

LatencyPercentiles
summarize(std::vector<double> &values, double &mean_out)
{
    LatencyPercentiles out;
    if (values.empty()) {
        mean_out = 0.0;
        return out;
    }
    double sum = 0.0;
    for (double v : values)
        sum += v;
    mean_out = sum / static_cast<double>(values.size());
    std::sort(values.begin(), values.end());
    out.p50 = core::percentileSorted(values, 0.50);
    out.p95 = core::percentileSorted(values, 0.95);
    out.p99 = core::percentileSorted(values, 0.99);
    return out;
}

} // namespace

namespace {

/** Shared constructor-time configuration validation. */
void
validateClusterOptions(const ClusterOptions &options)
{
    if (options.tensorParallelDegree == 0)
        sim::fatal("ClusterEngine: tensorParallelDegree must be "
                   ">= 1");
}

} // namespace

ClusterEngine::ClusterEngine(const core::PlatformConfig &config,
                             const ClusterOptions &options)
    : _options(options)
{
    validateClusterOptions(options);
    if (options.numPlatforms == 0)
        sim::fatal("ClusterEngine: need at least one platform");
    if (options.numPlatforms % options.tensorParallelDegree != 0)
        sim::fatal("ClusterEngine: tensorParallelDegree (",
                   options.tensorParallelDegree,
                   ") must divide numPlatforms (",
                   options.numPlatforms, ")");
    _numGroups =
        options.numPlatforms / options.tensorParallelDegree;
    _platforms.reserve(_numGroups);
    for (std::uint32_t g = 0; g < _numGroups; ++g)
        _platforms.push_back(
            std::make_unique<core::Platform>(config));
}

ClusterEngine::ClusterEngine(
    const std::vector<core::PlatformConfig> &groupConfigs,
    const ClusterOptions &options)
    : _options(options)
{
    validateClusterOptions(options);
    if (groupConfigs.empty())
        sim::fatal("ClusterEngine: need at least one replica "
                   "config");
    _numGroups = static_cast<std::uint32_t>(groupConfigs.size());
    _options.numPlatforms =
        _numGroups * _options.tensorParallelDegree;
    _platforms.reserve(_numGroups);
    for (const auto &cfg : groupConfigs)
        _platforms.push_back(std::make_unique<core::Platform>(cfg));
}

ClusterResult
ClusterEngine::run(const std::vector<llm::TimedRequest> &stream,
                   const llm::SpeculativeConfig &spec,
                   const llm::ModelConfig &model)
{
    if (stream.empty())
        sim::fatal("ClusterEngine: empty request stream");
    for (std::size_t i = 1; i < stream.size(); ++i) {
        if (stream[i].arrivalSeconds < stream[i - 1].arrivalSeconds)
            sim::fatal("ClusterEngine: arrivals must be sorted");
    }
    TensorParallelModel tp;
    tp.degree = _options.tensorParallelDegree;
    tp.fabric = _options.tpFabric;
    const core::IterationCostModel cost =
        tp.iterationCostModel(model);

    std::vector<std::unique_ptr<core::ServingSim>> sims;
    sims.reserve(_numGroups);
    for (std::uint32_t g = 0; g < _numGroups; ++g)
        sims.push_back(std::make_unique<core::ServingSim>(
            *_platforms[g], spec, model, _options.serving, cost));

    // All replicas compose on one shared event queue: arrivals are
    // routed at delivery time against per-backend load snapshots,
    // and each replica schedules its own admission/boundary
    // lifecycle events (core::ServingEventDriver preserves the
    // historical arrival-first, lowest-index tie order exactly).
    Router router(_options.policy, _numGroups);
    std::vector<BackendLoad> loads(_numGroups);
    std::vector<core::ServingSim *> replicas;
    replicas.reserve(_numGroups);
    for (auto &s : sims)
        replicas.push_back(s.get());
    core::ServingEventDriver driver(std::move(replicas));
    driver.runStream(
        stream, [&](const llm::TimedRequest &request) {
            for (std::uint32_t g = 0; g < _numGroups; ++g)
                loads[g].outstanding = sims[g]->outstanding();
            return router.route(request, loads);
        });

    ClusterResult out;
    out.numGroups = _numGroups;
    out.perGroup.reserve(_numGroups);
    out.groupUtilization.resize(_numGroups, 0.0);
    out.groupNames.reserve(_numGroups);
    out.groupPolicies.reserve(_numGroups);
    for (std::uint32_t g = 0; g < _numGroups; ++g) {
        out.groupNames.push_back(_platforms[g]->name());
        out.groupPolicies.push_back(core::dispatchPolicyName(
            _platforms[g]->dispatchPolicy(core::Phase::Fc)));
    }
    double t_end = stream.front().arrivalSeconds;
    for (std::uint32_t g = 0; g < _numGroups; ++g) {
        core::ServingResult r = sims[g]->finish();
        out.energyJoules += r.energyJoules;
        out.tokensGenerated += r.tokensGenerated;
        out.preemptions += r.preemptions;
        out.resumes += r.resumes;
        out.perGroup.push_back(std::move(r));
        t_end = std::max(t_end, sims[g]->now());
        const auto &recs = sims[g]->records();
        out.records.insert(out.records.end(), recs.begin(),
                           recs.end());
    }
    out.makespanSeconds = t_end - stream.front().arrivalSeconds;
    out.requestsServed = out.records.size();
    for (std::uint32_t g = 0; g < _numGroups; ++g) {
        out.groupUtilization[g] =
            out.makespanSeconds > 0.0
                ? sims[g]->busySeconds() / out.makespanSeconds
                : 0.0;
    }

    std::vector<double> ttft, tpot, latency, queueing, stall;
    ttft.reserve(out.records.size());
    tpot.reserve(out.records.size());
    latency.reserve(out.records.size());
    queueing.reserve(out.records.size());
    stall.reserve(out.records.size());
    for (const auto &rec : out.records) {
        ttft.push_back(rec.ttftSeconds());
        tpot.push_back(rec.tpotSeconds());
        latency.push_back(rec.finishSeconds - rec.arrivalSeconds);
        queueing.push_back(rec.queueingSeconds());
        stall.push_back(rec.stallSeconds);
    }
    out.ttft = summarize(ttft, out.meanTtftSeconds);
    out.tpot = summarize(tpot, out.meanTpotSeconds);
    out.latency = summarize(latency, out.meanLatencySeconds);
    out.queueing = summarize(queueing, out.meanQueueingSeconds);
    out.preemptionStall =
        summarize(stall, out.meanPreemptionStallSeconds);
    return out;
}

void
ClusterResult::populateStats(sim::stats::StatGroup &group) const
{
    group.addScalar("makespan_seconds",
                    "first arrival to last completion")
        .set(makespanSeconds);
    group.addScalar("energy_joules", "total cluster energy")
        .set(energyJoules);
    group.addScalar("requests_served", "requests run to <eos>")
        .set(static_cast<double>(requestsServed));
    group.addScalar("tokens_generated", "output tokens produced")
        .set(static_cast<double>(tokensGenerated));
    group.addScalar("throughput_tokens_per_second",
                    "tokens over the makespan")
        .set(throughputTokensPerSecond());

    auto add_percentiles = [&group](const char *prefix,
                                    const LatencyPercentiles &p,
                                    const char *desc) {
        group.addScalar(std::string(prefix) + "_p50_seconds", desc)
            .set(p.p50);
        group.addScalar(std::string(prefix) + "_p95_seconds", desc)
            .set(p.p95);
        group.addScalar(std::string(prefix) + "_p99_seconds", desc)
            .set(p.p99);
    };
    add_percentiles("ttft", ttft, "arrival to first token");
    add_percentiles("tpot", tpot, "per-token decode interval");
    add_percentiles("latency", latency, "arrival to completion");
    add_percentiles("queueing", queueing, "arrival to admission");
    add_percentiles("preemption_stall", preemptionStall,
                    "seconds spent evicted under KV pressure");
    group.addScalar("preemptions", "KV-pressure evictions")
        .set(static_cast<double>(preemptions));
    group.addScalar("preemption_resumes",
                    "preempted requests re-admitted")
        .set(static_cast<double>(resumes));
    group
        .addScalar("preemption_stall_mean_seconds",
                   "mean eviction stall across served requests")
        .set(meanPreemptionStallSeconds);
    group.addScalar("ttft_mean_seconds", "arrival to first token")
        .set(meanTtftSeconds);
    group.addScalar("latency_mean_seconds", "arrival to completion")
        .set(meanLatencySeconds);
    group.addScalar("tpot_mean_seconds", "per-token decode interval")
        .set(meanTpotSeconds);
    group.addScalar("queueing_mean_seconds", "arrival to admission")
        .set(meanQueueingSeconds);

    std::vector<std::string> bins;
    bins.reserve(groupUtilization.size());
    for (std::size_t g = 0; g < groupUtilization.size(); ++g)
        bins.push_back("group" + std::to_string(g));
    auto &util = group.addVector(
        "group_utilization", "busy fraction of the makespan", bins);
    for (std::size_t g = 0; g < groupUtilization.size(); ++g)
        util.add(g, groupUtilization[g]);

    if (!records.empty()) {
        double ttft_max = 0.0, tpot_max = 0.0;
        for (const auto &rec : records) {
            ttft_max = std::max(ttft_max, rec.ttftSeconds());
            tpot_max = std::max(tpot_max, rec.tpotSeconds());
        }
        auto &h_ttft = group.addHistogram(
            "ttft_histogram", "arrival to first token, seconds",
            0.0, std::nextafter(std::max(ttft_max, 1e-9), kInf), 20);
        auto &h_tpot = group.addHistogram(
            "tpot_histogram", "per-token decode interval, seconds",
            0.0, std::nextafter(std::max(tpot_max, 1e-9), kInf), 20);
        for (const auto &rec : records) {
            h_ttft.sample(rec.ttftSeconds());
            h_tpot.sample(rec.tpotSeconds());
        }
    }
}

} // namespace papi::cluster
