/**
 * @file
 * Fault injection and failure recovery over the serving cluster.
 *
 * A FaultInjector arms a deterministic sim::FaultPlan onto the
 * cluster's shared event queue: replica crashes fail-stop a backend
 * mid-run (every in-flight request loses its KV), restarts bring it
 * back after the plan's cold-start delay, and link-degradation
 * windows are handed to the driver's KV-migration fabric. Recovery
 * is a per-request retry policy: each harvested request is
 * resubmitted to the least-loaded alive replica after an exponential
 * backoff, up to a maximum attempt count - or dropped immediately in
 * fail-stop mode, which is the baseline recovery policies are
 * measured against. Everything is scheduled at a dedicated event
 * priority, so a fixed plan yields a byte-deterministic run and an
 * empty plan schedules nothing at all (fault-free byte-identity is
 * pinned by tests).
 */

#ifndef PAPI_CLUSTER_FAULT_INJECTOR_HH
#define PAPI_CLUSTER_FAULT_INJECTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "llm/arrival.hh"
#include "sim/fault_plan.hh"

namespace papi::core {
class ServingEventDriver;
} // namespace papi::core

namespace papi::cluster {

/** Recovery policy applied to requests lost to an injected fault. */
struct FaultRecoveryOptions
{
    /**
     * Resubmit requests harvested from a crash. False models
     * fail-stop serving (no recovery): every lost request counts
     * failed - the baseline any retry policy is compared against.
     */
    bool retryFailedRequests = true;
    /** Attempts per request including the first (>= 1). */
    std::uint32_t maxAttempts = 3;
    /** Backoff before a request's first retry, seconds. */
    double retryBackoffSeconds = 0.05;
    /** Backoff growth per additional loss of the same request. */
    double retryBackoffMultiplier = 2.0;
    /**
     * Abandon a disaggregated KV migration whose link time exceeds
     * this (a partitioned fabric would otherwise stall it forever);
     * the request falls back to decode-pool prompt recompute.
     */
    double transferTimeoutSeconds = 1.0;
};

/** Fault and recovery accounting of one cluster run. */
struct FaultStats
{
    std::uint64_t crashes = 0;  ///< Replica crashes executed.
    std::uint64_t restarts = 0; ///< Replica restarts executed.
    /** Requests harvested from crashed replicas (per loss event; a
     *  twice-crashed request counts twice). */
    std::uint64_t lostRequests = 0;
    std::uint64_t retriesScheduled = 0; ///< Resubmissions issued.
    /** Requests dropped for good: retries exhausted, fail-stop
     *  losses, or still queued on a dark replica at run end. */
    std::uint64_t failedRequests = 0;
    /** Prefill + decode tokens whose work must be redone because a
     *  retry recomputes from scratch (the price of recovery). */
    std::uint64_t retryRecomputedTokens = 0;
    /** Per-replica seconds spent dark (crash to restart, or to the
     *  end of the run for replicas that never came back). */
    std::vector<double> downtimeSeconds;
};

/**
 * Executes a sim::FaultPlan against a core::ServingEventDriver and
 * recovers (or drops) the requests each fault kills.
 */
class FaultInjector
{
  public:
    /**
     * @param driver The cluster's event driver; borrowed, must
     *        outlive the injector. Installs the driver's
     *        unrecoverable-migration handler.
     * @param plan Validated against the driver's replica count.
     * @param recovery Retry/backoff policy; validated here.
     */
    FaultInjector(core::ServingEventDriver &driver,
                  const sim::FaultPlan &plan,
                  const FaultRecoveryOptions &recovery);

    /** Schedule every plan event onto the queue (call before the
     *  driver runs; an empty plan schedules nothing). */
    void arm();

    /** True while replica @p g is up (the router's health mask). */
    bool alive(std::uint32_t g) const;

    /**
     * Close the books after the queue drained: charge open downtime
     * windows through @p end_seconds and harvest anything still
     * queued on never-restarted replicas as failed.
     */
    void finalize(double end_seconds);

    /** Accounting so far (complete after finalize). */
    const FaultStats &stats() const { return _stats; }

  private:
    void onCrash(std::uint32_t g, double when);
    void onRestart(std::uint32_t g, double when);
    /** One request lost to a fault: retry it (backoff, failover) or
     *  count it failed, per the recovery policy. */
    void onLost(const llm::TimedRequest &request, double when,
                std::uint64_t recompute_tokens);
    /** Deliver a scheduled retry to the least-loaded alive replica
     *  (or park it until the next planned restart). */
    void resubmit(const llm::TimedRequest &request, double when);
    /** Earliest planned restart strictly after @p t (inf if none). */
    double nextRestartAfter(double t) const;

    core::ServingEventDriver &_driver;
    sim::FaultPlan _plan;
    FaultRecoveryOptions _recovery;
    FaultStats _stats;
    /** Per-replica crash time of the open downtime window (< 0 when
     *  the replica is up). */
    std::vector<double> _downSince;
    /** Times each request id has been lost to a fault. */
    // detlint: allow(unordered-decl): keyed counter increments only
    // (operator[] by request id in handleCrashLoss); never iterated -
    // harvest and retry order come from ServingSim's ordered vectors.
    std::unordered_map<std::uint64_t, std::uint32_t> _losses;
};

} // namespace papi::cluster

#endif // PAPI_CLUSTER_FAULT_INJECTOR_HH
