#include "cluster/router.hh"

#include "sim/logging.hh"

namespace papi::cluster {

const char *
routerPolicyName(RouterPolicy policy)
{
    switch (policy) {
      case RouterPolicy::RoundRobin:
        return "round-robin";
      case RouterPolicy::LeastOutstanding:
        return "least-outstanding";
      case RouterPolicy::SessionAffinity:
        return "session-affinity";
    }
    return "unknown";
}

RouterPolicy
routerPolicyByName(const std::string &name)
{
    if (name == "round-robin")
        return RouterPolicy::RoundRobin;
    if (name == "least-outstanding")
        return RouterPolicy::LeastOutstanding;
    if (name == "session-affinity")
        return RouterPolicy::SessionAffinity;
    sim::fatal("unknown router policy '", name,
               "' (round-robin | least-outstanding | "
               "session-affinity)");
}

Router::Router(RouterPolicy policy, std::uint32_t num_backends)
    : _policy(policy), _numBackends(num_backends)
{
    if (num_backends == 0)
        sim::fatal("Router: need at least one backend");
}

std::uint32_t
Router::route(const llm::TimedRequest &request,
              const std::vector<BackendLoad> &loads)
{
    if (loads.size() != _numBackends)
        sim::panic("Router: ", loads.size(), " loads for ",
                   _numBackends, " backends");
    switch (_policy) {
      case RouterPolicy::RoundRobin: {
        std::uint32_t pick = _rrNext;
        _rrNext = (_rrNext + 1) % _numBackends;
        return pick;
      }
      case RouterPolicy::LeastOutstanding: {
        std::uint32_t best = 0;
        for (std::uint32_t i = 1; i < _numBackends; ++i) {
            // Fewest outstanding wins; equal-outstanding ties break
            // toward the earliest-free backend (busyUntilSeconds,
            // when provided), then the lowest index.
            if (loads[i].outstanding < loads[best].outstanding ||
                (loads[i].outstanding == loads[best].outstanding &&
                 loads[i].busyUntilSeconds <
                     loads[best].busyUntilSeconds))
                best = i;
        }
        return best;
      }
      case RouterPolicy::SessionAffinity: {
        // Unset sessions (the TimedRequest default, 0) carry no
        // affinity: hashing them would collapse all session-less
        // traffic onto one replica, so they fall back to the
        // round-robin cursor instead.
        if (request.sessionId == 0) {
            std::uint32_t pick = _rrNext;
            _rrNext = (_rrNext + 1) % _numBackends;
            return pick;
        }
        // splitmix64 finalizer: avalanches consecutive session ids
        // across backends while staying deterministic.
        std::uint64_t h = request.sessionId;
        h ^= h >> 30;
        h *= 0xbf58476d1ce4e5b9ULL;
        h ^= h >> 27;
        h *= 0x94d049bb133111ebULL;
        h ^= h >> 31;
        return static_cast<std::uint32_t>(h % _numBackends);
      }
    }
    sim::panic("Router: unhandled policy");
}

} // namespace papi::cluster
