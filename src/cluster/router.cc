#include "cluster/router.hh"

#include "sim/logging.hh"

namespace papi::cluster {

const char *
routerPolicyName(RouterPolicy policy)
{
    switch (policy) {
      case RouterPolicy::RoundRobin:
        return "round-robin";
      case RouterPolicy::LeastOutstanding:
        return "least-outstanding";
      case RouterPolicy::SessionAffinity:
        return "session-affinity";
      case RouterPolicy::CacheHitAware:
        return "cache-hit-aware";
    }
    return "unknown";
}

RouterPolicy
routerPolicyByName(const std::string &name)
{
    if (name == "round-robin")
        return RouterPolicy::RoundRobin;
    if (name == "least-outstanding")
        return RouterPolicy::LeastOutstanding;
    if (name == "session-affinity")
        return RouterPolicy::SessionAffinity;
    if (name == "cache-hit-aware")
        return RouterPolicy::CacheHitAware;
    sim::fatal("unknown router policy '", name,
               "' (round-robin | least-outstanding | "
               "session-affinity | cache-hit-aware)");
}

Router::Router(RouterPolicy policy, std::uint32_t num_backends)
    : _policy(policy), _numBackends(num_backends)
{
    if (num_backends == 0)
        sim::fatal("Router: need at least one backend");
}

std::uint32_t
Router::route(const llm::TimedRequest &request,
              const std::vector<BackendLoad> &loads)
{
    if (loads.size() != _numBackends)
        sim::panic("Router: ", loads.size(), " loads for ",
                   _numBackends, " backends");
    // Round-robin pick skipping dead backends: the cursor lands
    // where it always did, then probes forward past the dead (the
    // cursor follows the probe so rotation stays fair). With every
    // backend alive this is exactly the pre-fault cursor walk.
    auto round_robin = [this, &loads]() -> std::uint32_t {
        const std::uint32_t pick = _rrNext;
        _rrNext = (_rrNext + 1) % _numBackends;
        if (loads[pick].alive)
            return pick;
        for (std::uint32_t k = 1; k < _numBackends; ++k) {
            const std::uint32_t cand = (pick + k) % _numBackends;
            if (loads[cand].alive) {
                _rrNext = (cand + 1) % _numBackends;
                return cand;
            }
        }
        return pick; // total outage: deterministic fallback
    };
    constexpr std::uint32_t kNone = ~std::uint32_t{0};
    // Session-affinity pick (shared: the cache-hit-aware policy's
    // cold-request fallback seeds the session home the same way).
    auto affinity = [this, &request, &round_robin,
                     &loads]() -> std::uint32_t {
        // Unset sessions (the TimedRequest default, 0) carry no
        // affinity: hashing them would collapse all session-less
        // traffic onto one replica, so they fall back to the
        // round-robin cursor instead.
        if (request.sessionId == 0)
            return round_robin();
        // splitmix64 finalizer: avalanches consecutive session ids
        // across backends while staying deterministic.
        std::uint64_t h = request.sessionId;
        h ^= h >> 30;
        h *= 0xbf58476d1ce4e5b9ULL;
        h ^= h >> 27;
        h *= 0x94d049bb133111ebULL;
        h ^= h >> 31;
        const std::uint32_t home =
            static_cast<std::uint32_t>(h % _numBackends);
        if (loads[home].alive)
            return home;
        // Dead home replica: linear-probe upward so all requests of
        // one session share the same fallback (affinity survives
        // the failover; the session's KV re-forms on one replica).
        for (std::uint32_t k = 1; k < _numBackends; ++k) {
            const std::uint32_t cand = (home + k) % _numBackends;
            if (loads[cand].alive)
                return cand;
        }
        return home; // total outage
    };
    switch (_policy) {
      case RouterPolicy::RoundRobin:
        return round_robin();
      case RouterPolicy::LeastOutstanding: {
        std::uint32_t best = kNone;
        for (std::uint32_t i = 0; i < _numBackends; ++i) {
            // Fewest outstanding wins among the alive; ties break
            // toward the earliest-free backend (busyUntilSeconds,
            // when provided), then the lowest index.
            if (!loads[i].alive)
                continue;
            if (best == kNone ||
                loads[i].outstanding < loads[best].outstanding ||
                (loads[i].outstanding == loads[best].outstanding &&
                 loads[i].busyUntilSeconds <
                     loads[best].busyUntilSeconds))
                best = i;
        }
        if (best != kNone)
            return best;
        // Total outage: the healthy-cluster scan, ignoring health.
        best = 0;
        for (std::uint32_t i = 1; i < _numBackends; ++i) {
            if (loads[i].outstanding < loads[best].outstanding ||
                (loads[i].outstanding == loads[best].outstanding &&
                 loads[i].busyUntilSeconds <
                     loads[best].busyUntilSeconds))
                best = i;
        }
        return best;
      }
      case RouterPolicy::SessionAffinity:
        return affinity();
      case RouterPolicy::CacheHitAware: {
        // Most cached prompt bytes wins among the alive; ties break
        // toward fewer outstanding (don't pile onto a hot replica
        // for equal cache value), then the lowest index.
        std::uint32_t best = kNone;
        for (std::uint32_t i = 0; i < _numBackends; ++i) {
            if (!loads[i].alive)
                continue;
            if (best == kNone ||
                loads[i].expectedHitBytes >
                    loads[best].expectedHitBytes ||
                (loads[i].expectedHitBytes ==
                     loads[best].expectedHitBytes &&
                 loads[i].outstanding < loads[best].outstanding))
                best = i;
        }
        if (best != kNone && loads[best].expectedHitBytes > 0)
            return best;
        // No backend holds cached state for this prompt (or total
        // outage): seed the session's home via affinity, so the
        // NEXT turn of this conversation finds its prefix there.
        return affinity();
      }
    }
    sim::panic("Router: unhandled policy");
}

} // namespace papi::cluster
