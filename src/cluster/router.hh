/**
 * @file
 * Front-end request routing for a multi-platform serving cluster.
 *
 * A production LLM service places a stateless router between the
 * user-facing API and a fleet of model replicas. This module models
 * the routing policies that matter for PIM-backed serving:
 *
 *  - Round-robin ignores backend state and is the fairness baseline.
 *  - Least-outstanding-RLP routes to the replica with the fewest
 *    live-plus-queued requests; because PAPI's FC latency scales
 *    with RLP x TLP (paper Section 5), outstanding RLP is the
 *    direct proxy for a replica's marginal service rate.
 *  - Session affinity pins every request of one conversation to one
 *    replica so its KV-cache prefix stays resident on that
 *    replica's Attn-PIM fleet (Section 6.2's disaggregated pool is
 *    per-platform, not global).
 */

#ifndef PAPI_CLUSTER_ROUTER_HH
#define PAPI_CLUSTER_ROUTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "llm/arrival.hh"

/**
 * @namespace papi::cluster
 * Cluster-scale serving: request routing, tensor-parallel groups,
 * and multi-platform co-simulation.
 */
namespace papi::cluster {

/** Load-balancing policy of the cluster front-end. */
enum class RouterPolicy : std::uint8_t
{
    RoundRobin,       ///< Cycle through backends in index order.
    LeastOutstanding, ///< Fewest live + queued requests (RLP proxy).
    /** Hash the session id to a fixed backend. Requests with an
     *  unset session (sessionId == 0) carry no affinity and fall
     *  back to round-robin so they spread instead of collapsing
     *  onto one replica. */
    SessionAffinity,
    /**
     * Route to the backend whose prefix cache holds the most of
     * this request's reusable prompt span (BackendLoad::
     * expectedHitBytes, filled by per-replica cache probes). A
     * request no backend has cached state for falls back to
     * session affinity - seeding the session's future prefix on a
     * stable home replica is exactly what makes the next turn hit.
     */
    CacheHitAware,
};

/** Printable policy name ("round-robin", ...). */
const char *routerPolicyName(RouterPolicy policy);

/** Parse a policy name; fatal on unknown names. */
RouterPolicy routerPolicyByName(const std::string &name);

/** A backend's load as the router observes it at routing time. */
struct BackendLoad
{
    /** Live (decoding) plus queued (pending admission) requests. */
    std::uint32_t outstanding = 0;
    /**
     * Optional backlog tie-break for least-outstanding routing: the
     * time this backend is busy until (its local clock, which runs
     * ahead of the global order while it computes). A replica that
     * retires work synchronously - a disaggregated prefill replica
     * handing off each completed prompt - reports outstanding == 0
     * even mid-prefill, so equal-outstanding ties are broken toward
     * the earliest-free backend. Leave 0 to ignore (the colocated
     * cluster does, keeping its routing bit-stable).
     */
    double busyUntilSeconds = 0.0;
    /**
     * Cache-hit-aware routing signal: the KV bytes of this
     * request's prompt the backend's shared-prefix cache would
     * serve from cache (a side-effect-free probe; see
     * core::ServingSim::probePrefixHitTokens). Leave 0 when unused
     * - every other policy ignores it.
     */
    std::uint64_t expectedHitBytes = 0;
    /**
     * Health mark: every policy skips dead (crashed, not yet
     * restarted) backends. When no backend is alive the router
     * falls back to its healthy-cluster pick deterministically -
     * the request queues on a dark replica and drains at restart.
     * All-alive routing is bit-identical to the pre-fault router.
     */
    bool alive = true;
};

/**
 * The routing decision function. Stateless except for the
 * round-robin cursor, so one Router serves a whole simulation
 * deterministically.
 */
class Router
{
  public:
    /**
     * @param policy Load-balancing policy.
     * @param num_backends Backends behind the router; must be >= 1.
     */
    Router(RouterPolicy policy, std::uint32_t num_backends);

    /** The configured load-balancing policy. */
    RouterPolicy policy() const { return _policy; }
    /** Number of backends behind the router. */
    std::uint32_t numBackends() const { return _numBackends; }

    /**
     * Pick the backend for @p request given per-backend @p loads
     * (size must equal numBackends()). Least-outstanding breaks
     * ties toward the lowest index, keeping runs deterministic.
     */
    std::uint32_t route(const llm::TimedRequest &request,
                        const std::vector<BackendLoad> &loads);

  private:
    RouterPolicy _policy;
    std::uint32_t _numBackends;
    std::uint32_t _rrNext = 0; ///< Round-robin cursor.
};

} // namespace papi::cluster

#endif // PAPI_CLUSTER_ROUTER_HH
