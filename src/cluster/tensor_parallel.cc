#include "cluster/tensor_parallel.hh"

#include "sim/logging.hh"

namespace papi::cluster {

double
TensorParallelModel::allReduceSeconds(std::uint64_t bytes) const
{
    if (degree <= 1)
        return 0.0;
    const double chunk = static_cast<double>(bytes) /
                         static_cast<double>(degree);
    const double per_step = fabric.latencySeconds +
                            fabric.messageOverheadSeconds +
                            chunk / fabric.bandwidthBytesPerSec;
    return 2.0 * static_cast<double>(degree - 1) * per_step;
}

double
TensorParallelModel::allReduceJoules(std::uint64_t bytes) const
{
    if (degree <= 1)
        return 0.0;
    // Each rank sends 2(g-1) chunks of bytes/g; total wire traffic
    // across the ring is 2(g-1)/g * bytes per rank, g ranks.
    const double wire_bytes =
        2.0 * static_cast<double>(degree - 1) *
        static_cast<double>(bytes);
    return wire_bytes * fabric.energyPerByte;
}

std::uint64_t
TensorParallelModel::activationBytes(const llm::ModelConfig &model,
                                     std::uint32_t tokens) const
{
    return static_cast<std::uint64_t>(tokens) * model.hiddenDim *
           model.bytesPerParam;
}

core::IterationCostModel
TensorParallelModel::iterationCostModel(
    const llm::ModelConfig &model) const
{
    if (degree == 0)
        sim::fatal("TensorParallelModel: degree must be >= 1");
    core::IterationCostModel cost;
    if (degree == 1)
        return cost; // Trivial: single-platform arithmetic untouched.
    cost.computeScale = static_cast<double>(degree);
    // Two all-reduces per decoder layer (post-attention and
    // post-FFN), every iteration. activationBytes() is the single
    // source of truth for the tile size.
    const TensorParallelModel tp = *this;
    cost.extraSeconds = [tp, model](std::uint32_t tokens) {
        return 2.0 * model.numLayers *
               tp.allReduceSeconds(tp.activationBytes(model, tokens));
    };
    cost.extraJoules = [tp, model](std::uint32_t tokens) {
        return 2.0 * model.numLayers *
               tp.allReduceJoules(tp.activationBytes(model, tokens));
    };
    return cost;
}

} // namespace papi::cluster
