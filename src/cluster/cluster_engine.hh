/**
 * @file
 * Cluster-scale serving: N platforms behind one request router.
 *
 * This is the scale-out layer above core::ServingEngine. A shared
 * arrival stream (the traffic of many users) enters a front-end
 * Router, which fans requests out to independent core::Platform
 * instances - optionally stitched into tensor-parallel groups with
 * an explicit all-reduce cost over an interconnect::Link. Each
 * backend keeps its own DynamicScheduler state and threshold, so
 * the GPU <-> PIM reschedule dynamics the paper studies stay
 * per-shard, while latency SLO metrics (TTFT/TPOT percentiles,
 * queueing delay, per-platform utilization) aggregate across the
 * cluster.
 *
 * Simulation model: all backends compose on one shared
 * sim::EventQueue through core::ServingEventDriver. Arrival events,
 * batch-level admission deadlines, and backend iteration boundaries
 * interleave in deterministic (time, kind, backend-index, sequence)
 * order, with each backend advanced through its ServingSim stepwise
 * API. Under token-level admission, one backend's event order
 * reduces exactly to ServingEngine::run - a property pinned by
 * tests/cluster_engine_test.cc (and it continues to hold with
 * chunked prefill and KV preemption enabled). Because the queue
 * gives arrival lookahead for free, batch-level admission,
 * continuous batching with chunked prefill, and KV-pressure
 * preemption (all core::ServingOptions knobs) work under the
 * cluster. Batch-level admission is the one deliberate semantic
 * difference from the standalone engine: ServingEngine::run sees
 * the whole future stream, so its fill rule may wait for a batch
 * that only fills after the timeout, while the cluster driver -
 * which cannot know where undelivered arrivals will route - starts
 * a batch at fill, timeout expiry, or stream exhaustion, whichever
 * event fires first.
 */

#ifndef PAPI_CLUSTER_CLUSTER_ENGINE_HH
#define PAPI_CLUSTER_CLUSTER_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/fault_injector.hh"
#include "cluster/router.hh"
#include "cluster/tensor_parallel.hh"
#include "core/platform.hh"
#include "core/serving_engine.hh"
#include "core/serving_events.hh"
#include "interconnect/link.hh"
#include "llm/arrival.hh"
#include "sim/fault_plan.hh"
#include "sim/stats.hh"

namespace papi::cluster {

/**
 * Disaggregated prefill/decode serving (DistServe OSDI'24 /
 * Splitwise ISCA'24 style): dedicated prefill replicas run only the
 * prompt phase and migrate each request's KV footprint to a decode
 * replica over a modeled interconnect link, so decode iterations
 * are never stalled by stop-the-world prefills and prompt
 * processing never waits behind decode work. Replica groups
 * [0, prefillReplicas) form the prefill pool, the remaining
 * decodeReplicas groups the decode pool.
 */
struct DisaggConfig
{
    /** Off by default: the cluster serves colocated, byte-identical
     *  to the pre-disaggregation engine. */
    bool enabled = false;
    /** Replica groups dedicated to prompt processing (>= 1). */
    std::uint32_t prefillReplicas = 1;
    /** Replica groups dedicated to decoding (>= 1). */
    std::uint32_t decodeReplicas = 1;
    /** Fabric the per-request KV migration is costed over. */
    interconnect::Link transferLink = interconnect::pcie5();
    /** Router policy over the prefill pool (the admission edge;
     *  decode placement is always least-loaded). */
    RouterPolicy prefillPolicy = RouterPolicy::RoundRobin;
};

/** Cluster shape and per-backend serving options. */
struct ClusterOptions
{
    /** Total core::Platform instances in the cluster. */
    std::uint32_t numPlatforms = 1;
    /**
     * Platforms stitched into one tensor-parallel replica; must
     * divide numPlatforms. Degree 1 = every platform an independent
     * replica.
     */
    std::uint32_t tensorParallelDegree = 1;
    /** Front-end load-balancing policy. */
    RouterPolicy policy = RouterPolicy::RoundRobin;
    /** Link class inside tensor-parallel groups (all-reduce). */
    interconnect::Link tpFabric = interconnect::nvlink();
    /** Per-backend admission/scheduling options. */
    core::ServingOptions serving;
    /**
     * Disaggregated prefill/decode pools. When enabled, the replica
     * count is prefillReplicas + decodeReplicas (numPlatforms is
     * derived as that times tensorParallelDegree), admission must
     * be token-level, and @ref policy is superseded by
     * DisaggConfig::prefillPolicy on the admission edge.
     */
    DisaggConfig disagg;
    /**
     * Deterministic fault schedule (replica crashes/restarts, link
     * degradation windows). Empty by default: no injector is built
     * and the run is byte-identical to the pre-fault engine (pinned
     * by tests). Link faults require disaggregation (they degrade
     * the KV-migration fabric).
     */
    sim::FaultPlan faults;
    /** Recovery policy for requests lost to injected faults. */
    FaultRecoveryOptions recovery;
    /**
     * Concurrent simulation executors (including the calling
     * thread) the replicas shard across; 1 (the default) runs the
     * historical serial schedule. Any value produces byte-for-byte
     * the workerThreads == 1 result - the driver's conservative
     * window protocol preserves the serial event order exactly (see
     * core::ServingEventDriver and tests/parallel_identity_test.cc).
     */
    unsigned workerThreads = 1;
    /**
     * Bounded-memory metrics: cap each replica's retained
     * per-request records/latencies at this many entries (see
     * core::ServingOptions::recordCapacity). 0 (the default) keeps
     * the unbounded exact path. While no replica overflows its cap
     * the aggregate ClusterResult is byte-identical to the
     * unbounded run; past the cap exact streaming counters and
     * P-square percentile estimators take over (statsTruncated is
     * set and ClusterResult::records holds each replica's capped
     * prefix). This is what bounds a million-request runStream()'s
     * memory.
     */
    std::uint64_t recordCapacity = 0;
};

/** p50/p95/p99 of one latency population, seconds. */
struct LatencyPercentiles
{
    double p50 = 0.0; ///< Median.
    double p95 = 0.0; ///< 95th percentile.
    double p99 = 0.0; ///< 99th percentile (the SLO tail).
};

/** Aggregate outcome of a cluster serving run. */
struct ClusterResult
{
    /** Replica count (numPlatforms / tensorParallelDegree). */
    std::uint32_t numGroups = 0;
    /** Per-replica serving results, by backend index. */
    std::vector<core::ServingResult> perGroup;
    /** Per-replica busy fraction of the cluster makespan. */
    std::vector<double> groupUtilization;

    double makespanSeconds = 0.0; ///< First arrival to last finish.
    double energyJoules = 0.0;    ///< Summed over all replicas.
    std::uint64_t requestsServed = 0;  ///< Requests run to <eos>.
    std::uint64_t tokensGenerated = 0; ///< Summed over all replicas.

    LatencyPercentiles ttft;     ///< Arrival to first token.
    LatencyPercentiles tpot;     ///< Per-token decode interval.
    LatencyPercentiles latency;  ///< Arrival to completion.
    LatencyPercentiles queueing; ///< Arrival to admission.
    /** Per-request preemption stall (seconds evicted; 0 for
     *  never-preempted requests). */
    LatencyPercentiles preemptionStall;
    double meanTtftSeconds = 0.0;     ///< Mean of the TTFT population.
    double meanTpotSeconds = 0.0;     ///< Mean of the TPOT population.
    double meanLatencySeconds = 0.0;  ///< Mean arrival-to-completion.
    double meanQueueingSeconds = 0.0; ///< Mean queueing delay.
    /** Mean preemption stall across all served requests. */
    double meanPreemptionStallSeconds = 0.0;
    /** KV-pressure evictions summed over all replicas. */
    std::uint64_t preemptions = 0;
    /** Preempted-request resumes summed over all replicas. */
    std::uint64_t resumes = 0;

    /** Per-replica platform names (heterogeneous clusters). */
    std::vector<std::string> groupNames;
    /** Per-replica FC dispatch policies (dispatchPolicyName form). */
    std::vector<std::string> groupPolicies;
    /** Per-replica serving roles ("colocated"|"prefill"|"decode"). */
    std::vector<std::string> groupRoles;

    /** Prefill-pool replica count (0 when serving colocated). */
    std::uint32_t prefillGroups = 0;
    /** Decode-pool replica count (0 when serving colocated). */
    std::uint32_t decodeGroups = 0;
    /** KV migrations performed (disaggregated mode only). */
    std::uint64_t kvTransfers = 0;
    /** KV block bytes moved across the transfer link in total. */
    std::uint64_t kvTransferBytes = 0;
    /** Summed per-migration link occupancy, seconds (transfers
     *  overlap with compute; this is fabric time, not makespan). */
    double kvTransferSeconds = 0.0;
    /** Link energy of all KV migrations (included in energyJoules). */
    double kvTransferJoules = 0.0;

    // ---- Fault injection, recovery, and SLO accounting. All zero
    // ---- (or trivially derived) in fault-free runs, so a run with
    // ---- no FaultPlan stays byte-identical to the pre-fault engine.

    /** Requests offered to the cluster (the arrival stream size).
     *  Conserved: offered = served + failed + shed. */
    std::uint64_t requestsOffered = 0;
    /** Requests dropped for good (retries exhausted, fail-stop
     *  losses, or stranded on a never-restarted replica). */
    std::uint64_t failedRequests = 0;
    /** Requests shed at admission because their deadline had
     *  already passed (ServingOptions::deadlineSeconds). */
    std::uint64_t shedRequests = 0;
    /** Retry resubmissions issued by the recovery policy. */
    std::uint64_t retriedRequests = 0;
    /** Prefill + decode tokens recomputed from scratch by retries
     *  (work paid twice; the price of recovery). */
    std::uint64_t retryRecomputedTokens = 0;
    std::uint64_t injectedCrashes = 0;  ///< Replica crashes executed.
    std::uint64_t replicaRestarts = 0;  ///< Replica restarts executed.
    /** KV migrations that fell back to decode-pool recompute (link
     *  timeout or destination died in flight). */
    std::uint64_t kvTransferFallbacks = 0;
    /** Per-replica seconds spent dark (always sized numGroups). */
    std::vector<double> replicaDowntimeSeconds;
    /**
     * With a TTFT deadline configured: fraction of *offered*
     * requests whose first token landed inside it (failed and shed
     * requests count against it). Without one: served / offered.
     */
    double sloAttainment = 0.0;
    /** Output tokens of *completed* requests over the makespan -
     *  excludes crash-lost generation and retry recompute, unlike
     *  throughputTokensPerSecond(). */
    double goodputTokensPerSecond = 0.0;

    // ---- Shared-prefix cache accounting (all zero with the cache
    // ---- disabled, keeping cache-off runs byte-identical).

    /** Prefix-cache probes at admission, summed over replicas. */
    std::uint64_t prefixLookups = 0;
    /** Probes that found a cached whole-block span. */
    std::uint64_t prefixHits = 0;
    /** Prompt tokens served from cache (prefill cost skipped). */
    std::uint64_t prefixHitTokens = 0;
    /** Prompt tokens prefilled the long way on keyed requests. */
    std::uint64_t prefixMissTokens = 0;
    /** Cached bytes evicted under KV pressure (LRU reclaim). */
    std::uint64_t prefixEvictedBytes = 0;

    /**
     * True when at least one replica overflowed
     * ClusterOptions::recordCapacity: the latency aggregates above
     * come from exact streaming sums and P-square estimators, and
     * @ref records holds only each replica's capped prefix (the
     * histograms in populateStats cover that prefix, not the full
     * population). Always false on the unbounded path.
     */
    bool statsTruncated = false;

    /** Cluster decode throughput over the makespan. */
    double
    throughputTokensPerSecond() const
    {
        return makespanSeconds > 0.0
                   ? static_cast<double>(tokensGenerated) /
                         makespanSeconds
                   : 0.0;
    }

    /**
     * Register the cluster metrics (scalars for the aggregates and
     * percentiles, a per-replica utilization vector, TTFT/TPOT
     * histograms sampled from the per-request records) into @p
     * group for stats-file style dumping.
     */
    void populateStats(sim::stats::StatGroup &group) const;

    /**
     * Per-request timelines across all replicas, grouped by replica
     * index (completion order within each replica).
     */
    std::vector<core::RequestRecord> records;
};

/** Multi-platform serving simulator behind a request router. */
class ClusterEngine
{
  public:
    /**
     * Build numPlatforms platform instances from @p config (a
     * homogeneous cluster). Fatal if tensorParallelDegree does not
     * divide numPlatforms. Every core::AdmissionPolicy is
     * supported: the event-driven timeline gives batch-level
     * admission the arrival lookahead the retired peek-and-step
     * loop could not provide.
     */
    ClusterEngine(const core::PlatformConfig &config,
                  const ClusterOptions &options);

    /**
     * Heterogeneous cluster: one PlatformConfig per replica group
     * (e.g. dynamic PAPI replicas alongside always-GPU baselines
     * behind one router). The replica count is groupConfigs.size();
     * options.numPlatforms is derived as groups x
     * tensorParallelDegree and any caller-set value is ignored.
     */
    ClusterEngine(const std::vector<core::PlatformConfig> &groupConfigs,
                  const ClusterOptions &options);

    /** Replica (backend) count. */
    std::uint32_t numGroups() const { return _numGroups; }

    /** The cluster shape this engine was built with. */
    const ClusterOptions &options() const { return _options; }

    /**
     * Serve @p stream to completion across the cluster on one
     * shared event queue (see core::ServingEventDriver).
     */
    ClusterResult run(const std::vector<llm::TimedRequest> &stream,
                      const llm::SpeculativeConfig &spec,
                      const llm::ModelConfig &model);

    /**
     * Streaming variant: serve @p count arrivals pulled one at a
     * time from @p arrivals (llm::ArrivalProcess::next()) instead
     * of a materialized vector - the cluster never holds more than
     * one undelivered arrival, so the offered-traffic memory is
     * O(1) in @p count. A generator emitting the same sequence as a
     * vector produces a byte-identical ClusterResult (pinned by
     * tests/cluster_stream_test.cc). Combine with
     * ClusterOptions::recordCapacity to bound the *metrics* side
     * too - that is the million-request serving configuration.
     */
    ClusterResult runStream(llm::ArrivalProcess &arrivals,
                            std::uint64_t count,
                            const llm::SpeculativeConfig &spec,
                            const llm::ModelConfig &model);

  private:
    /** Shared body of run()/runStream(): build the replicas, drive
     *  them via @p drive (which must fill @p first_arrival from the
     *  stream it delivers), then aggregate. */
    ClusterResult
    runImpl(const llm::SpeculativeConfig &spec,
            const llm::ModelConfig &model, std::uint64_t offered,
            double &first_arrival,
            const std::function<void(core::ServingEventDriver &,
                                     const core::RouteFn &)> &drive);

    ClusterOptions _options;
    std::uint32_t _numGroups;
    /**
     * One platform model per replica group: the group's
     * tensorParallelDegree physical platforms are identical, so one
     * instance (plus the TP cost model) carries the whole group.
     */
    std::vector<std::unique_ptr<core::Platform>> _platforms;
};

} // namespace papi::cluster

#endif // PAPI_CLUSTER_CLUSTER_ENGINE_HH
