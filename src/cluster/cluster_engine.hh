/**
 * @file
 * Cluster-scale serving: N platforms behind one request router.
 *
 * This is the scale-out layer above core::ServingEngine. A shared
 * arrival stream (the traffic of many users) enters a front-end
 * Router, which fans requests out to independent core::Platform
 * instances - optionally stitched into tensor-parallel groups with
 * an explicit all-reduce cost over an interconnect::Link. Each
 * backend keeps its own DynamicScheduler state and threshold, so
 * the GPU <-> PIM reschedule dynamics the paper studies stay
 * per-shard, while latency SLO metrics (TTFT/TPOT percentiles,
 * queueing delay, per-platform utilization) aggregate across the
 * cluster.
 *
 * Simulation model: the cluster loop owns global time. Arrival
 * events and backend iteration boundaries interleave in
 * deterministic time order (ties broken by backend index), with
 * each backend advanced through its ServingSim stepwise API. With
 * one backend the loop reduces exactly to ServingEngine::run - a
 * property pinned by tests/cluster_engine_test.cc.
 */

#ifndef PAPI_CLUSTER_CLUSTER_ENGINE_HH
#define PAPI_CLUSTER_CLUSTER_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/router.hh"
#include "cluster/tensor_parallel.hh"
#include "core/platform.hh"
#include "core/serving_engine.hh"
#include "interconnect/link.hh"
#include "llm/arrival.hh"
#include "sim/stats.hh"

namespace papi::cluster {

/** Cluster shape and per-backend serving options. */
struct ClusterOptions
{
    /** Total core::Platform instances in the cluster. */
    std::uint32_t numPlatforms = 1;
    /**
     * Platforms stitched into one tensor-parallel replica; must
     * divide numPlatforms. Degree 1 = every platform an independent
     * replica.
     */
    std::uint32_t tensorParallelDegree = 1;
    /** Front-end load-balancing policy. */
    RouterPolicy policy = RouterPolicy::RoundRobin;
    /** Link class inside tensor-parallel groups (all-reduce). */
    interconnect::Link tpFabric = interconnect::nvlink();
    /** Per-backend admission/scheduling options. */
    core::ServingOptions serving;
};

/** p50/p95/p99 of one latency population, seconds. */
struct LatencyPercentiles
{
    double p50 = 0.0; ///< Median.
    double p95 = 0.0; ///< 95th percentile.
    double p99 = 0.0; ///< 99th percentile (the SLO tail).
};

/** Aggregate outcome of a cluster serving run. */
struct ClusterResult
{
    /** Replica count (numPlatforms / tensorParallelDegree). */
    std::uint32_t numGroups = 0;
    /** Per-replica serving results, by backend index. */
    std::vector<core::ServingResult> perGroup;
    /** Per-replica busy fraction of the cluster makespan. */
    std::vector<double> groupUtilization;

    double makespanSeconds = 0.0; ///< First arrival to last finish.
    double energyJoules = 0.0;    ///< Summed over all replicas.
    std::uint64_t requestsServed = 0;  ///< Requests run to <eos>.
    std::uint64_t tokensGenerated = 0; ///< Summed over all replicas.

    LatencyPercentiles ttft;     ///< Arrival to first token.
    LatencyPercentiles tpot;     ///< Per-token decode interval.
    LatencyPercentiles latency;  ///< Arrival to completion.
    LatencyPercentiles queueing; ///< Arrival to admission.
    double meanTtftSeconds = 0.0;     ///< Mean of the TTFT population.
    double meanTpotSeconds = 0.0;     ///< Mean of the TPOT population.
    double meanLatencySeconds = 0.0;  ///< Mean arrival-to-completion.
    double meanQueueingSeconds = 0.0; ///< Mean queueing delay.

    /** Per-replica platform names (heterogeneous clusters). */
    std::vector<std::string> groupNames;
    /** Per-replica FC dispatch policies (dispatchPolicyName form). */
    std::vector<std::string> groupPolicies;

    /** Cluster decode throughput over the makespan. */
    double
    throughputTokensPerSecond() const
    {
        return makespanSeconds > 0.0
                   ? static_cast<double>(tokensGenerated) /
                         makespanSeconds
                   : 0.0;
    }

    /**
     * Register the cluster metrics (scalars for the aggregates and
     * percentiles, a per-replica utilization vector, TTFT/TPOT
     * histograms sampled from the per-request records) into @p
     * group for stats-file style dumping.
     */
    void populateStats(sim::stats::StatGroup &group) const;

    /**
     * Per-request timelines across all replicas, grouped by replica
     * index (completion order within each replica).
     */
    std::vector<core::RequestRecord> records;
};

/** Multi-platform serving simulator behind a request router. */
class ClusterEngine
{
  public:
    /**
     * Build numPlatforms platform instances from @p config (a
     * homogeneous cluster). Fatal if tensorParallelDegree does not
     * divide numPlatforms, or if the serving options request
     * batch-level admission (a configuration error: the cluster
     * driver delivers arrivals incrementally, and batch-level
     * boundary admission would need lookahead over undelivered
     * arrivals - use AdmissionPolicy::TokenLevel).
     */
    ClusterEngine(const core::PlatformConfig &config,
                  const ClusterOptions &options);

    /**
     * Heterogeneous cluster: one PlatformConfig per replica group
     * (e.g. dynamic PAPI replicas alongside always-GPU baselines
     * behind one router). The replica count is groupConfigs.size();
     * options.numPlatforms is derived as groups x
     * tensorParallelDegree and any caller-set value is ignored.
     * Admission-policy validation is as for the homogeneous
     * constructor.
     */
    ClusterEngine(const std::vector<core::PlatformConfig> &groupConfigs,
                  const ClusterOptions &options);

    /** Replica (backend) count. */
    std::uint32_t numGroups() const { return _numGroups; }

    /** The cluster shape this engine was built with. */
    const ClusterOptions &options() const { return _options; }

    /**
     * Serve @p stream to completion across the cluster. Only
     * token-level admission is supported (batch-level admission
     * needs lookahead over undelivered arrivals; fatal).
     */
    ClusterResult run(const std::vector<llm::TimedRequest> &stream,
                      const llm::SpeculativeConfig &spec,
                      const llm::ModelConfig &model);

  private:
    ClusterOptions _options;
    std::uint32_t _numGroups;
    /**
     * One platform model per replica group: the group's
     * tensorParallelDegree physical platforms are identical, so one
     * instance (plus the TP cost model) carries the whole group.
     */
    std::vector<std::unique_ptr<core::Platform>> _platforms;
};

} // namespace papi::cluster

#endif // PAPI_CLUSTER_CLUSTER_ENGINE_HH
