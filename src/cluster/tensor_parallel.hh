/**
 * @file
 * Tensor-parallel group cost model for multi-platform serving.
 *
 * When one model replica is sharded across g platforms (Megatron
 * column/row parallelism), every decoder layer ends its attention
 * and FFN blocks with an all-reduce of the activation tile across
 * the group - two all-reduces per layer per iteration. The kernel
 * phases scale near-ideally (each platform holds 1/g of the weight
 * and KV working set), so the group behaves like one platform with
 * kernel time divided by g plus an interconnect term that grows
 * with g. C2CServe-style elastic serving (PAPERS.md) makes exactly
 * this trade: more shards cut per-iteration compute but pay the
 * fabric, and past the crossover TPOT is fabric-bound.
 */

#ifndef PAPI_CLUSTER_TENSOR_PARALLEL_HH
#define PAPI_CLUSTER_TENSOR_PARALLEL_HH

#include <cstdint>

#include "core/serving_engine.hh"
#include "interconnect/link.hh"
#include "llm/model_config.hh"

namespace papi::cluster {

/** Ring all-reduce timing/energy over a tensor-parallel group. */
struct TensorParallelModel
{
    /** Platforms stitched into one model replica (g >= 1). */
    std::uint32_t degree = 1;
    /** Link class connecting the group's platforms. */
    interconnect::Link fabric = interconnect::nvlink();

    /**
     * Ring all-reduce of @p bytes across the group: 2(g-1) steps,
     * each moving a bytes/g chunk per rank. Zero for degree 1.
     */
    double allReduceSeconds(std::uint64_t bytes) const;

    /** Transfer energy of the same all-reduce. */
    double allReduceJoules(std::uint64_t bytes) const;

    /** Activation bytes all-reduced per layer for @p tokens. */
    std::uint64_t activationBytes(const llm::ModelConfig &model,
                                  std::uint32_t tokens) const;

    /**
     * The per-iteration cost hook ServingSim applies: kernel time
     * divided by the degree, plus two all-reduces per layer of the
     * iteration's activation tile. Trivial (a no-op model) for
     * degree 1, preserving single-platform bit-identity.
     */
    core::IterationCostModel
    iterationCostModel(const llm::ModelConfig &model) const;
};

} // namespace papi::cluster

#endif // PAPI_CLUSTER_TENSOR_PARALLEL_HH
