#include "cluster/fault_injector.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/serving_events.hh"
#include "sim/logging.hh"

namespace papi::cluster {

namespace {
constexpr std::uint32_t kNone = ~std::uint32_t{0};
} // namespace

FaultInjector::FaultInjector(core::ServingEventDriver &driver,
                             const sim::FaultPlan &plan,
                             const FaultRecoveryOptions &recovery)
    : _driver(driver), _plan(plan), _recovery(recovery)
{
    _plan.validate(
        static_cast<std::uint32_t>(_driver.replicaCount()));
    if (_recovery.maxAttempts == 0)
        sim::fatal("FaultInjector: maxAttempts must be >= 1 (the "
                   "first delivery is an attempt)");
    if (_recovery.retryBackoffSeconds < 0.0)
        sim::fatal("FaultInjector: retry backoff cannot be "
                   "negative");
    if (_recovery.retryBackoffMultiplier < 1.0)
        sim::fatal("FaultInjector: backoff multiplier must be "
                   ">= 1 (backoff never shrinks)");
    if (!(_recovery.transferTimeoutSeconds > 0.0))
        sim::fatal("FaultInjector: transfer timeout must be "
                   "positive");
    _downSince.assign(_driver.replicaCount(), -1.0);
    _stats.downtimeSeconds.assign(_driver.replicaCount(), 0.0);
    _driver.setUnrecoverableHandler(
        [this](const llm::TimedRequest &request, double when) {
            // A KV-migration fallback found no alive decode
            // replica: the prefill-pool work is lost; treat it as a
            // fault loss (the resubmit re-prefills from scratch).
            ++_stats.lostRequests;
            onLost(request, when, request.request.inputLen);
        });
}

void
FaultInjector::arm()
{
    for (const sim::ReplicaFault &f : _plan.replicaFaults) {
        _driver.scheduleAt(f.crashSeconds, [this, f] {
            onCrash(f.replica, f.crashSeconds);
        });
        if (std::isfinite(f.restartSeconds))
            _driver.scheduleAt(f.restartSeconds, [this, f] {
                onRestart(f.replica, f.restartSeconds);
            });
    }
}

bool
FaultInjector::alive(std::uint32_t g) const
{
    return !_driver.isDown(g);
}

void
FaultInjector::onCrash(std::uint32_t g, double when)
{
    if (_driver.isDown(g))
        return; // plan crashed an already-dark replica
    ++_stats.crashes;
    _downSince[g] = when;
    std::vector<core::LostRequest> lost =
        _driver.crashReplica(g, when);
    _stats.lostRequests += lost.size();
    for (const core::LostRequest &l : lost)
        onLost(l.request, when,
               static_cast<std::uint64_t>(l.prefillLostTokens) +
                   l.generatedLost);
}

void
FaultInjector::onRestart(std::uint32_t g, double when)
{
    if (!_driver.isDown(g))
        return;
    ++_stats.restarts;
    _stats.downtimeSeconds[g] += when - _downSince[g];
    _downSince[g] = -1.0;
    _driver.restartReplica(g, when);
}

void
FaultInjector::onLost(const llm::TimedRequest &request, double when,
                      std::uint64_t recompute_tokens)
{
    if (!_recovery.retryFailedRequests) {
        ++_stats.failedRequests;
        return;
    }
    const std::uint32_t losses = ++_losses[request.request.id];
    if (losses >= _recovery.maxAttempts) {
        ++_stats.failedRequests;
        return;
    }
    const double delay =
        _recovery.retryBackoffSeconds *
        std::pow(_recovery.retryBackoffMultiplier,
                 static_cast<double>(losses - 1));
    const double ready = when + delay;
    ++_stats.retriesScheduled;
    _stats.retryRecomputedTokens += recompute_tokens;
    _driver.scheduleAt(ready, [this, request, ready] {
        resubmit(request, ready);
    });
}

void
FaultInjector::resubmit(const llm::TimedRequest &request,
                        double when)
{
    // Failover routing: least outstanding work among alive replicas
    // on the admission edge (the prefill pool under disaggregation),
    // ties toward the lowest index. Done here rather than through
    // the front-end Router so a retry never advances its
    // round-robin cursor (fresh-arrival routing stays independent
    // of how many retries interleave).
    const std::uint32_t width = _driver.routeWidth();
    std::uint32_t best = kNone;
    std::uint64_t best_load = ~std::uint64_t{0};
    for (std::uint32_t g = 0; g < width; ++g) {
        if (_driver.isDown(g))
            continue;
        const std::uint64_t load = _driver.replica(g).outstanding();
        if (load < best_load) {
            best = g;
            best_load = load;
        }
    }
    if (best == kNone) {
        // Total outage on the admission edge: park the retry at the
        // next planned restart (a same-time restart fires first -
        // it was armed earlier, and insertion order breaks the
        // tie), or give up if nothing ever comes back.
        const double next = nextRestartAfter(when);
        if (!std::isfinite(next)) {
            ++_stats.failedRequests;
            return;
        }
        _driver.scheduleAt(next, [this, request, next] {
            resubmit(request, next);
        });
        return;
    }
    _driver.redeliver(best, request, when);
}

double
FaultInjector::nextRestartAfter(double t) const
{
    double next = std::numeric_limits<double>::infinity();
    for (const sim::ReplicaFault &f : _plan.replicaFaults) {
        if (std::isfinite(f.restartSeconds) &&
            f.restartSeconds > t && f.restartSeconds < next)
            next = f.restartSeconds;
    }
    return next;
}

void
FaultInjector::finalize(double end_seconds)
{
    for (std::uint32_t g = 0; g < _driver.replicaCount(); ++g) {
        if (_downSince[g] < 0.0)
            continue;
        // Never restarted: dark through the end of the run.
        _stats.downtimeSeconds[g] +=
            std::max(0.0, end_seconds - _downSince[g]);
        // Arrivals the total-outage fallback routed here queued and
        // can never be served; harvest them as failed so request
        // conservation (offered = served + failed + shed) holds.
        std::vector<core::LostRequest> stuck =
            _driver.replica(g).crash(end_seconds);
        _stats.lostRequests += stuck.size();
        _stats.failedRequests += stuck.size();
    }
}

} // namespace papi::cluster
