/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All stochastic behaviour in the simulator (trace generation,
 * speculative-decoding acceptance) draws from an explicitly seeded
 * Rng so experiments are exactly reproducible.
 */

#ifndef PAPI_SIM_RNG_HH
#define PAPI_SIM_RNG_HH

#include <cstdint>
#include <random>

namespace papi::sim {

/** Seeded random source with the distributions the workloads need. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : _engine(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli trial with probability @p p of true. */
    bool bernoulli(double p);

    /**
     * Log-normal sample parameterised by the target mean/stddev of the
     * resulting (not underlying normal) distribution. Used for
     * sequence-length synthesis where real datasets are heavy-tailed.
     */
    double logNormalByMoments(double mean, double stddev);

    /** Geometric sample: number of failures before first success. */
    std::int64_t geometric(double p);

    /** Exponential sample with the given mean. */
    double exponential(double mean);

    /** Access to the underlying engine for std distributions. */
    std::mt19937_64 &engine() { return _engine; }

  private:
    std::mt19937_64 _engine;
};

} // namespace papi::sim

#endif // PAPI_SIM_RNG_HH
