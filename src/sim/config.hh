/**
 * @file
 * A typed key/value configuration store.
 *
 * Benchmarks, examples, and tests use Config to override model
 * parameters without recompiling. Keys are dotted strings
 * ("gpu.peak_tflops"); values are stored as strings and parsed on
 * access. Unknown keys with no default are a fatal (user) error.
 */

#ifndef PAPI_SIM_CONFIG_HH
#define PAPI_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace papi::sim {

/** Typed key/value configuration store with dotted keys. */
class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, double value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, bool value);

    /** True if @p key has been set. */
    bool has(const std::string &key) const;

    /** Get a string value; fatal if absent. */
    std::string getString(const std::string &key) const;
    /** Get a string value or @p def if absent. */
    std::string getString(const std::string &key,
                          const std::string &def) const;

    /** Get a double; fatal if absent or unparseable. */
    double getDouble(const std::string &key) const;
    double getDouble(const std::string &key, double def) const;

    /** Get a signed integer; fatal if absent or unparseable. */
    std::int64_t getInt(const std::string &key) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;

    /** Get a bool ("true"/"false"/"1"/"0"); fatal if unparseable. */
    bool getBool(const std::string &key) const;
    bool getBool(const std::string &key, bool def) const;

    /**
     * Parse a "key=value" assignment (as from a command line) and set
     * it. Fatal on malformed input.
     */
    void parseAssignment(const std::string &assignment);

    /** All keys in sorted order (for dumps). */
    std::vector<std::string> keys() const;

    /** Merge @p other into this config; other's values win. */
    void merge(const Config &other);

  private:
    std::optional<std::string> lookup(const std::string &key) const;

    std::map<std::string, std::string> _values;
};

} // namespace papi::sim

#endif // PAPI_SIM_CONFIG_HH
