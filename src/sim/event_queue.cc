#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace papi::sim {

void
EventQueue::schedule(Tick when, std::function<void()> fn, Priority prio)
{
    if (when < _now) {
        panic("event scheduled in the past: when=", when, " now=", _now);
    }
    if (!fn) {
        panic("null event scheduled at tick ", when);
    }
    _events.push(Entry{when, prio, _nextSeq++, std::move(fn)});
}

bool
EventQueue::step()
{
    if (_events.empty())
        return false;

    // Move the closure out before popping so re-entrant schedule()
    // calls from inside the event see a consistent queue.
    Entry top = _events.top();
    _events.pop();
    _now = top.when;
    ++_executed;
    top.fn();
    return true;
}

Tick
EventQueue::run(Tick horizon)
{
    while (!_events.empty() && _events.top().when <= horizon)
        step();
    return _now;
}

void
EventQueue::clear()
{
    while (!_events.empty())
        _events.pop();
}

} // namespace papi::sim
