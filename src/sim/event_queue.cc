#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace papi::sim {

// ---------------------------------------------------------------------
// EventQueue (calendar queue)
// ---------------------------------------------------------------------

EventQueue::EventQueue() : _buckets(kBuckets) {}

void
EventQueue::setOccupied(std::size_t idx)
{
    _occupancy[idx >> 6] |= std::uint64_t(1) << (idx & 63);
}

void
EventQueue::clearOccupied(std::size_t idx)
{
    _occupancy[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
}

std::size_t
EventQueue::nextOccupiedDistance() const
{
    // Caller guarantees _inWindow > 0, so some bit is set.
    constexpr std::size_t words = kBuckets / 64;
    const std::size_t word = _curIdx >> 6;
    const std::size_t bit = _curIdx & 63;

    std::uint64_t w = _occupancy[word] & (~std::uint64_t(0) << bit);
    if (w)
        return static_cast<std::size_t>(std::countr_zero(w)) - bit;
    for (std::size_t i = 1; i <= words; ++i) {
        std::size_t next = (word + i) & (words - 1);
        if (_occupancy[next]) {
            return (i << 6) +
                   static_cast<std::size_t>(
                       std::countr_zero(_occupancy[next])) -
                   bit;
        }
    }
    panic("EventQueue: occupancy bitmap empty with inWindow=",
          _inWindow);
}

void
EventQueue::insertIntoRun(Tick when, Priority prio, std::uint64_t seq,
                          EventCallback &&fn)
{
    // _run is frozen while the bucket drains, so current-bucket
    // schedules go to the spill store; only the 24-byte key moves to
    // keep _runOrder sorted (earliest at the back).
    const auto idx = static_cast<std::uint32_t>(_runExtra.size());
    _runExtra.emplace_back(when, prio, seq, std::move(fn));
    RunKey key{when, prio, idx | kExtraFlag, seq};
    auto pos = std::upper_bound(_runOrder.begin(), _runOrder.end(),
                                key, keyLater);
    _runOrder.insert(pos, key);
}

void
EventQueue::refillFromOverflow()
{
    const Tick limit = windowEnd();
    while (!_overflow.empty() && _overflow.front().when <= limit) {
        std::pop_heap(_overflow.begin(), _overflow.end(), laterThan);
        Entry &e = _overflow.back();
        const std::size_t idx =
            static_cast<std::size_t>(e.when >> kShift) & kMask;
        _buckets[idx].push_back(std::move(e));
        _overflow.pop_back();
        setOccupied(idx);
        ++_inWindow;
    }
}

void
EventQueue::advanceToNextBucket()
{
    for (std::size_t s = 0; s < _numStores; ++s)
        _runStores[s].clear();
    _numStores = 0;
    _runExtra.clear();
    _runOrder.clear();

    // Batch consecutive occupied buckets into one drain run: each
    // bucket is swapped in whole (no per-entry moves) and the sort
    // runs once over the batch, amortizing the advance overhead for
    // sparse event populations.
    std::size_t batched = 0;
    while (_numStores < kMaxStores && batched < kBatchTarget &&
           (_inWindow > 0 || !_overflow.empty())) {
        if (_inWindow == 0) {
            // Nothing in the window: jump straight to the earliest
            // overflow event's bucket.
            const Tick when = _overflow.front().when;
            _windowStart = when & ~(bucketWidth() - 1);
            _curIdx = static_cast<std::size_t>(when >> kShift) & kMask;
            refillFromOverflow();
        } else {
            const std::size_t d = nextOccupiedDistance();
            _curIdx = (_curIdx + d) & kMask;
            _windowStart += Tick(d) << kShift;
            // The window's far edge moved: adopt newly-covered
            // overflow.
            refillFromOverflow();
        }

        auto &store = _runStores[_numStores++];
        store.swap(_buckets[_curIdx]); // recycles buffer capacity
        clearOccupied(_curIdx);
        _inWindow -= store.size();
        batched += store.size();
        if (store.size() > kEntryMask)
            panic("EventQueue: more than 2^20 events in one bucket");
    }

    _runOrder.reserve(batched);
    for (std::size_t s = 0; s < _numStores; ++s) {
        const auto &store = _runStores[s];
        const auto base = static_cast<std::uint32_t>(s << kStoreShift);
        for (std::uint32_t i = 0; i < store.size(); ++i) {
            const Entry &e = store[i];
            _runOrder.push_back(
                RunKey{e.when, e.prio, base | i, e.seq});
        }
    }
    std::sort(_runOrder.begin(), _runOrder.end(), keyLater);
}

void
EventQueue::prepareNext()
{
    if (_runOrder.empty())
        advanceToNextBucket();
}

void
EventQueue::pushOverflow(Tick when, Priority prio, std::uint64_t seq,
                         EventCallback &&fn)
{
    _overflow.emplace_back(when, prio, seq, std::move(fn));
    std::push_heap(_overflow.begin(), _overflow.end(), laterThan);
}

void
EventQueue::pastPanic(Tick when) const
{
    panic("event scheduled in the past: when=", when, " now=", _now);
}

void
EventQueue::nullPanic(Tick when) const
{
    panic("null event scheduled at tick ", when);
}

bool
EventQueue::step()
{
    if (_size == 0)
        return false;
    prepareNext();

    const RunKey key = _runOrder.back();
    _runOrder.pop_back();
    --_size;
    _now = key.when;
    ++_executed;
    dispatch(key);
    return true;
}

void
EventQueue::dispatch(const RunKey &key)
{
    _dispatching = true;
    if (key.idx & kExtraFlag) {
        // Spill-store entries move their closure out first: the spill
        // vector may reallocate if the closure schedules into the
        // current run's tick range again.
        EventCallback fn =
            std::move(_runExtra[key.idx & ~kExtraFlag].fn);
        fn();
    } else {
        // Main-store entries run in place - the stores are frozen
        // while the run drains, so the closure's storage cannot move.
        _runStores[key.idx >> kStoreShift][key.idx & kEntryMask].fn();
    }
    _dispatching = false;
    if (!_retired.empty()) {
        // A re-entrant clear() parked the stores here so the closure
        // that was executing kept its storage; release them now.
        _retired.clear();
    }
}

bool
EventQueue::peekNextKey(Tick &when, Priority &prio)
{
    if (_size == 0)
        return false;
    prepareNext();
    const RunKey &key = _runOrder.back();
    when = key.when;
    prio = key.prio;
    return true;
}

void
EventQueue::runUntilKey(Tick when, Priority prio)
{
    while (_size > 0) {
        prepareNext();
        const RunKey key = _runOrder.back();
        if (key.when > when ||
            (key.when == when && key.prio >= prio))
            break;
        _runOrder.pop_back();
        --_size;
        _now = key.when;
        ++_executed;
        dispatch(key);
    }
}

Tick
EventQueue::run(Tick horizon)
{
    while (_size > 0) {
        prepareNext();
        const RunKey key = _runOrder.back();
        if (key.when > horizon)
            break;
        _runOrder.pop_back();
        --_size;
        _now = key.when;
        ++_executed;
        dispatch(key);
    }
    return _now;
}

void
EventQueue::clear()
{
    if (_dispatching) {
        // Called from inside an executing event: the current closure
        // lives in one of these stores, so park the buffers until the
        // dispatch completes instead of destroying them underfoot.
        for (std::size_t s = 0; s < _numStores; ++s)
            _retired.emplace_back(std::move(_runStores[s]));
        _retired.emplace_back(std::move(_runExtra));
    }
    for (std::size_t s = 0; s < _numStores; ++s)
        _runStores[s].clear();
    _numStores = 0;
    _runExtra.clear();
    _runOrder.clear();
    for (auto &b : _buckets)
        b.clear();
    for (auto &w : _occupancy)
        w = 0;
    _overflow.clear();
    _inWindow = 0;
    _size = 0;
}

// ---------------------------------------------------------------------
// LegacyEventQueue (reference binary-heap implementation)
// ---------------------------------------------------------------------

void
LegacyEventQueue::schedule(Tick when, std::function<void()> fn,
                           Priority prio)
{
    if (when < _now) {
        panic("event scheduled in the past: when=", when, " now=", _now);
    }
    if (!fn) {
        panic("null event scheduled at tick ", when);
    }
    _events.push(Entry{when, prio, _nextSeq++, std::move(fn)});
}

bool
LegacyEventQueue::step()
{
    if (_events.empty())
        return false;

    // Copy the closure out before popping so re-entrant schedule()
    // calls from inside the event see a consistent queue.
    Entry top = _events.top();
    _events.pop();
    _now = top.when;
    ++_executed;
    top.fn();
    return true;
}

Tick
LegacyEventQueue::run(Tick horizon)
{
    while (!_events.empty() && _events.top().when <= horizon)
        step();
    return _now;
}

void
LegacyEventQueue::clear()
{
    while (!_events.empty())
        _events.pop();
}

} // namespace papi::sim
