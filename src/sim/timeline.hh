/**
 * @file
 * Second-domain scheduling over the tick-domain event queue.
 *
 * The serving layer accounts time in seconds (double), while
 * sim::EventQueue orders events by integral Tick. Quantizing seconds
 * to picoseconds would let two distinct double timestamps collide in
 * one tick and flip their order relative to a plain double
 * comparison - which would break the serving stack's bit-identity
 * pins. Instead, Timeline maps non-negative doubles onto ticks with
 * an order-preserving *encoding*: the IEEE-754 bit pattern of a
 * non-negative double, read as an unsigned integer, is monotone in
 * the double's value, and equal doubles map to equal ticks. The tick
 * axis of a Timeline-driven queue is therefore ordinal, not metric:
 * ordering (and tie-breaking by priority and insertion sequence) is
 * exact, but tick differences are meaningless, so a queue instance
 * driven through a Timeline must never also carry physical
 * picosecond events. This is the hook that lets a hierarchy of
 * second-domain simulations (N serving replicas, their admission
 * deadlines, the shared arrival stream) compose on one deterministic
 * event core.
 */

#ifndef PAPI_SIM_TIMELINE_HH
#define PAPI_SIM_TIMELINE_HH

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace papi::sim {

// ---- compile-time contract ------------------------------------
// orderedTick()'s order-preserving encoding is a property of the
// IEEE-754 binary64 representation: for non-negative finite doubles
// the bit pattern, read as an unsigned integer, is monotone in the
// value. Every serving-stack bit-identity pin sits on top of this,
// so the preconditions are asserted here, next to the encoder, not
// assumed.
static_assert(std::numeric_limits<double>::is_iec559,
              "orderedTick requires IEEE-754 doubles: the bit-cast "
              "encoding is only order-preserving for binary64");
static_assert(sizeof(double) == 8 && sizeof(std::uint64_t) == 8,
              "orderedTick bit-casts double <-> uint64_t; both must "
              "be exactly 64 bits");
static_assert(std::is_same_v<Tick, std::uint64_t>,
              "orderedTick encodes into Tick verbatim; a narrower or "
              "signed Tick would truncate or reorder the encoding");

/**
 * Order-preserving encoding of a non-negative finite time in seconds
 * into a Tick: for any a, b >= 0, a < b iff orderedTick(a) <
 * orderedTick(b), and a == b iff the ticks are equal. Fatal on
 * negative or non-finite input.
 */
inline Tick
orderedTick(double seconds)
{
    if (!(seconds >= 0.0) || !std::isfinite(seconds))
        fatal("Timeline: cannot encode time ", seconds,
              " s (must be finite and non-negative)");
    // -0.0 passes the guard but its bit pattern (sign bit set) would
    // encode above every positive double; normalize it to +0.0.
    return std::bit_cast<std::uint64_t>(seconds + 0.0);
}

/** Inverse of @ref orderedTick (valid only for encoded ticks). */
inline double
orderedSeconds(Tick tick)
{
    return std::bit_cast<double>(static_cast<std::uint64_t>(tick));
}

/**
 * A seconds-facing view of one EventQueue. Multiple Timelines may
 * share a queue (hierarchical composition); all of them must use the
 * ordinal encoding. Scheduling clamps to the queue's current tick:
 * a simulation component whose local clock lags the global order
 * (e.g. a batch whose admission was decided at a deadline but
 * time-stamped at its last member's arrival) schedules its next
 * event "now" rather than panicking about the past.
 */
class Timeline
{
  public:
    /** @param queue The shared tick-domain queue to schedule on. */
    explicit Timeline(EventQueue &queue) : _queue(queue) {}

    /** The underlying tick-domain queue. */
    EventQueue &queue() { return _queue; }

    /**
     * Schedule @p fn at @p seconds (clamped to the queue's present)
     * with tie-break priority @p prio.
     */
    template <typename F>
    void
    at(double seconds, Priority prio, F &&fn)
    {
        Tick when = orderedTick(seconds);
        if (when < _queue.now())
            when = _queue.now();
        _queue.schedule(when, std::forward<F>(fn), prio);
    }

    /** Drain the queue to completion. */
    void run() { _queue.run(); }

  private:
    EventQueue &_queue;
};

} // namespace papi::sim

#endif // PAPI_SIM_TIMELINE_HH
