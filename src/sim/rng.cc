#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace papi::sim {

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        fatal("Rng::uniformInt: lo > hi (", lo, " > ", hi, ")");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(_engine);
}

double
Rng::uniformReal(double lo, double hi)
{
    if (!(lo < hi))
        fatal("Rng::uniformReal: lo must be < hi");
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(_engine);
}

bool
Rng::bernoulli(double p)
{
    if (p < 0.0 || p > 1.0)
        fatal("Rng::bernoulli: p=", p, " out of [0,1]");
    std::bernoulli_distribution dist(p);
    return dist(_engine);
}

double
Rng::logNormalByMoments(double mean, double stddev)
{
    if (!(mean > 0.0))
        fatal("Rng::logNormalByMoments: mean must be positive");
    if (stddev < 0.0)
        fatal("Rng::logNormalByMoments: negative stddev");
    // detlint: allow(float-eq): exact-zero is the documented
    // degenerate-distribution sentinel (caller passes a literal 0),
    // not a computed quantity.
    if (stddev == 0.0)
        return mean;
    // Convert target moments to the underlying normal's (mu, sigma).
    double variance_ratio = (stddev * stddev) / (mean * mean);
    double sigma_sq = std::log(1.0 + variance_ratio);
    double mu = std::log(mean) - 0.5 * sigma_sq;
    std::lognormal_distribution<double> dist(mu, std::sqrt(sigma_sq));
    return dist(_engine);
}

std::int64_t
Rng::geometric(double p)
{
    if (!(p > 0.0) || p > 1.0)
        fatal("Rng::geometric: p=", p, " out of (0,1]");
    std::geometric_distribution<std::int64_t> dist(p);
    return dist(_engine);
}

double
Rng::exponential(double mean)
{
    if (!(mean > 0.0))
        fatal("Rng::exponential: mean must be positive");
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(_engine);
}

} // namespace papi::sim
