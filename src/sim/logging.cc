#include "sim/logging.hh"

#include <atomic>
#include <iostream>

namespace papi::sim {

namespace {

std::atomic<bool> g_log_enabled{true};

} // namespace

void
setLogEnabled(bool enabled)
{
    g_log_enabled.store(enabled, std::memory_order_relaxed);
}

bool
logEnabled()
{
    return g_log_enabled.load(std::memory_order_relaxed);
}

void
warnStr(const std::string &msg)
{
    if (logEnabled())
        std::cerr << "warn: " << msg << "\n";
}

void
informStr(const std::string &msg)
{
    if (logEnabled())
        std::cout << "info: " << msg << "\n";
}

} // namespace papi::sim
