#include "sim/stats.hh"

#include <iomanip>
#include <memory>
#include <numeric>

namespace papi::sim::stats {

void
Scalar::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << _value << " # " << desc() << "\n";
}

double
Vector::total() const
{
    return std::accumulate(_values.begin(), _values.end(), 0.0);
}

void
Vector::print(std::ostream &os) const
{
    for (std::size_t i = 0; i < _values.size(); ++i) {
        os << std::left << std::setw(40) << (name() + "::" + _binNames[i])
           << " " << std::setw(16) << _values[i] << " # " << desc()
           << "\n";
    }
    os << std::left << std::setw(40) << (name() + "::total") << " "
       << std::setw(16) << total() << " # " << desc() << "\n";
}

Histogram::Histogram(std::string name, std::string desc, double lo,
                     double hi, std::size_t buckets)
    : StatBase(std::move(name), std::move(desc)), _lo(lo), _hi(hi),
      _width((hi - lo) / static_cast<double>(buckets)),
      _buckets(buckets, 0)
{
    if (buckets == 0)
        fatal("Histogram '", StatBase::name(), "': zero buckets");
    if (!(hi > lo))
        fatal("Histogram '", StatBase::name(), "': hi must exceed lo");
}

void
Histogram::sample(double v)
{
    if (_count == 0) {
        _min = v;
        _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    ++_count;
    _sum += v;
    _sumSq += v * v;

    if (v < _lo) {
        ++_under;
    } else if (v >= _hi) {
        ++_over;
    } else {
        auto idx = static_cast<std::size_t>((v - _lo) / _width);
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1; // floating-point edge case
        ++_buckets[idx];
    }
}

double
Histogram::stddev() const
{
    if (_count < 2)
        return 0.0;
    double n = static_cast<double>(_count);
    double var = (_sumSq - _sum * _sum / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Histogram::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << (name() + "::samples") << " "
       << std::setw(16) << _count << " # " << desc() << "\n";
    os << std::left << std::setw(40) << (name() + "::mean") << " "
       << std::setw(16) << mean() << " # " << desc() << "\n";
    os << std::left << std::setw(40) << (name() + "::stddev") << " "
       << std::setw(16) << stddev() << " # " << desc() << "\n";
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        double b_lo = _lo + _width * static_cast<double>(i);
        std::ostringstream bin;
        bin << name() << "::[" << b_lo << "," << (b_lo + _width) << ")";
        os << std::left << std::setw(40) << bin.str() << " "
           << std::setw(16) << _buckets[i] << " # " << desc() << "\n";
    }
}

void
Histogram::reset()
{
    _buckets.assign(_buckets.size(), 0);
    _under = _over = _count = 0;
    _sum = _sumSq = _min = _max = 0.0;
}

void
Formula::print(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << " "
       << std::setw(16) << value() << " # " << desc() << "\n";
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Scalar>(name, desc);
    auto &ref = *stat;
    registerStat(std::move(stat));
    return ref;
}

Vector &
StatGroup::addVector(const std::string &name, const std::string &desc,
                     std::vector<std::string> bin_names)
{
    auto stat = std::make_unique<Vector>(name, desc,
                                         std::move(bin_names));
    auto &ref = *stat;
    registerStat(std::move(stat));
    return ref;
}

Histogram &
StatGroup::addHistogram(const std::string &name, const std::string &desc,
                        double lo, double hi, std::size_t buckets)
{
    auto stat = std::make_unique<Histogram>(name, desc, lo, hi, buckets);
    auto &ref = *stat;
    registerStat(std::move(stat));
    return ref;
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    auto stat = std::make_unique<Formula>(name, desc, std::move(fn));
    auto &ref = *stat;
    registerStat(std::move(stat));
    return ref;
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    auto it = _byName.find(name);
    return it == _byName.end() ? nullptr : it->second;
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---------- " << _name << " ----------\n";
    for (const auto &s : _order)
        s->print(os);
}

void
StatGroup::resetAll()
{
    for (auto &s : _order)
        s->reset();
}

void
StatGroup::registerStat(std::unique_ptr<StatBase> stat)
{
    auto [it, inserted] = _byName.emplace(stat->name(), stat.get());
    (void)it;
    if (!inserted)
        fatal("StatGroup '", _name, "': duplicate stat '", stat->name(),
              "'");
    _order.push_back(std::move(stat));
}

} // namespace papi::sim::stats
