/**
 * @file
 * Clock-domain helper converting between local cycles and global ticks.
 */

#ifndef PAPI_SIM_CLOCKED_HH
#define PAPI_SIM_CLOCKED_HH

#include "sim/logging.hh"
#include "sim/types.hh"

namespace papi::sim {

/**
 * A clock domain with a fixed period.
 *
 * Devices embed or inherit from Clocked to convert between their local
 * cycle counts and the global tick time base. The period is immutable
 * after construction; DVFS is out of scope for this model.
 */
class Clocked
{
  public:
    /**
     * @param period_ticks Clock period in ticks; must be nonzero.
     */
    explicit Clocked(Tick period_ticks) : _period(period_ticks)
    {
        if (_period == 0)
            fatal("Clocked: zero clock period");
    }

    /** Clock period in ticks. */
    Tick clockPeriod() const { return _period; }

    /** Clock frequency in Hz. */
    double
    frequencyHz() const
    {
        return static_cast<double>(oneSec) / static_cast<double>(_period);
    }

    /** Convert a cycle count to a tick duration. */
    Tick cyclesToTicks(Cycles c) const { return c * _period; }

    /** Convert a tick duration to whole cycles (rounding up). */
    Cycles
    ticksToCycles(Tick t) const
    {
        return (t + _period - 1) / _period;
    }

    /** The first cycle boundary at or after tick @p t. */
    Tick
    nextCycleEdge(Tick t) const
    {
        return ((t + _period - 1) / _period) * _period;
    }

  private:
    Tick _period;
};

} // namespace papi::sim

#endif // PAPI_SIM_CLOCKED_HH
