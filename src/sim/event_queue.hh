/**
 * @file
 * A discrete-event simulation kernel.
 *
 * Events are closures scheduled at absolute ticks. Ties are broken by
 * (priority, insertion order) so simulations are fully deterministic.
 * The queue is the single source of simulated time for a simulation
 * instance; devices never keep their own notion of "now".
 */

#ifndef PAPI_SIM_EVENT_QUEUE_HH
#define PAPI_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace papi::sim {

/** Scheduling priority; lower values run first within a tick. */
using Priority = std::int32_t;

/** Default priority for ordinary device events. */
constexpr Priority defaultPriority = 0;
/** Priority for stats/bookkeeping events that run after device events. */
constexpr Priority statsPriority = 1000;

/**
 * Deterministic discrete-event queue.
 *
 * The queue owns simulated time. run() drains events until the queue is
 * empty or a simulation horizon is reached; step() executes exactly one
 * event. Events scheduled in the past cause a panic since that always
 * indicates a simulator bug.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks. */
    Tick now() const { return _now; }

    /** Number of events pending execution. */
    std::size_t pending() const { return _events.size(); }

    /** True if no events are pending. */
    bool empty() const { return _events.empty(); }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Schedule a closure to run at an absolute tick.
     *
     * @param when Absolute tick; must be >= now().
     * @param fn Closure to run.
     * @param prio Tie-break priority (lower runs first).
     */
    void schedule(Tick when, std::function<void()> fn,
                  Priority prio = defaultPriority);

    /** Schedule a closure to run @p delta ticks from now. */
    void
    scheduleAfter(Tick delta, std::function<void()> fn,
                  Priority prio = defaultPriority)
    {
        schedule(_now + delta, std::move(fn), prio);
    }

    /**
     * Execute the single earliest pending event.
     * @retval true an event was executed.
     * @retval false the queue was empty.
     */
    bool step();

    /**
     * Run until the queue is empty or simulated time would exceed
     * @p horizon.
     *
     * @param horizon Last tick (inclusive) at which events may run.
     * @return The tick of the last executed event, or now() if none ran.
     */
    Tick run(Tick horizon = maxTick);

    /** Drop all pending events without executing them. */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        Priority prio;
        std::uint64_t seq; // insertion order for determinism
        std::function<void()> fn;
    };

    struct EntryCompare
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::priority_queue<Entry, std::vector<Entry>, EntryCompare> _events;
};

} // namespace papi::sim

#endif // PAPI_SIM_EVENT_QUEUE_HH
