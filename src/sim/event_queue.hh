/**
 * @file
 * A discrete-event simulation kernel.
 *
 * Events are closures scheduled at absolute ticks. Ties are broken by
 * (priority, insertion order) so simulations are fully deterministic.
 * The queue is the single source of simulated time for a simulation
 * instance; devices never keep their own notion of "now".
 *
 * EventQueue is the production implementation: an allocation-free
 * two-level calendar queue (near-future ticks live in fixed-width
 * buckets, far-future events in a binary-heap overflow) holding
 * small-buffer-optimized callbacks (sim::EventCallback). It preserves
 * the exact (tick, priority, seq) total order of the original
 * binary-heap design, which is kept verbatim as LegacyEventQueue so
 * benchmarks can compare both in one run and tests can assert
 * execution-order equivalence.
 */

#ifndef PAPI_SIM_EVENT_QUEUE_HH
#define PAPI_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/event_callback.hh"
#include "sim/types.hh"

namespace papi::sim {

/** Scheduling priority; lower values run first within a tick. */
using Priority = std::int32_t;

/** Default priority for ordinary device events. */
constexpr Priority defaultPriority = 0;
/** Priority for stats/bookkeeping events that run after device events. */
constexpr Priority statsPriority = 1000;

/**
 * Deterministic discrete-event queue.
 *
 * The queue owns simulated time. run() drains events until the queue is
 * empty or a simulation horizon is reached; step() executes exactly one
 * event. Events scheduled in the past cause a panic since that always
 * indicates a simulator bug.
 *
 * Internally a two-level calendar queue: ticks within
 * [windowStart, windowStart + numBuckets * bucketWidth) hash into
 * fixed-width buckets (appended unsorted, sorted once when the bucket
 * becomes current), later ticks sit in a min-heap overflow that is
 * drained into the window as it advances. All paths are allocation-free
 * in steady state: bucket vectors and the run buffer retain their
 * capacity, and callbacks with captures <= EventCallback::inlineCapacity
 * bytes never touch the heap.
 */
class EventQueue
{
  public:
    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks. */
    Tick now() const { return _now; }

    /** Number of events pending execution. */
    std::size_t pending() const { return _size; }

    /** True if no events are pending. */
    bool empty() const { return _size == 0; }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Schedule a closure to run at an absolute tick.
     *
     * Inlined so the closure is type-erased directly into queue
     * storage - the hot path constructs exactly one EventCallback,
     * in place, with no intermediate moves.
     *
     * @param when Absolute tick; must be >= now().
     * @param fn Closure to run.
     * @param prio Tie-break priority (lower runs first).
     */
    template <typename F>
    void
    schedule(Tick when, F &&fn, Priority prio = defaultPriority)
    {
        if (when < _now)
            pastPanic(when);
        if constexpr (std::is_constructible_v<
                          bool, const std::decay_t<F> &>) {
            if (!static_cast<bool>(fn))
                nullPanic(when);
        }

        const std::uint64_t seq = _nextSeq++;
        if (when > curBucketEnd() && when <= windowEnd()) {
            const std::size_t idx =
                static_cast<std::size_t>(when >> kShift) & kMask;
            _buckets[idx].emplace_back(when, prio, seq,
                                       std::forward<F>(fn));
            setOccupied(idx);
            ++_inWindow;
        } else if (when <= curBucketEnd()) {
            insertIntoRun(when, prio, seq,
                          EventCallback(std::forward<F>(fn)));
        } else {
            pushOverflow(when, prio, seq,
                         EventCallback(std::forward<F>(fn)));
        }
        ++_size;
    }

    /** Schedule a closure to run @p delta ticks from now. */
    template <typename F>
    void
    scheduleAfter(Tick delta, F &&fn, Priority prio = defaultPriority)
    {
        schedule(_now + delta, std::forward<F>(fn), prio);
    }

    /**
     * Execute the single earliest pending event.
     * @retval true an event was executed.
     * @retval false the queue was empty.
     */
    bool step();

    /**
     * Run until the queue is empty or simulated time would exceed
     * @p horizon.
     *
     * @param horizon Last tick (inclusive) at which events may run.
     * @return The tick of the last executed event, or now() if none ran.
     */
    Tick run(Tick horizon = maxTick);

    /**
     * Read the (tick, priority) key of the earliest pending event
     * without executing it. Non-const because locating the head may
     * drain calendar buckets into the sorted run buffer; the event
     * order is unchanged.
     *
     * @retval true @p when / @p prio hold the head event's key.
     * @retval false the queue is empty (outputs untouched).
     */
    bool peekNextKey(Tick &when, Priority &prio);

    /**
     * Run every event whose (tick, priority) key is strictly below
     * (@p when, @p prio); the first event at or past the bound stays
     * queued. This is the conservative-window primitive of
     * sim::ParallelTimeline: a shard advances to (but never into)
     * the next cross-shard event's key. now() is left at the last
     * executed event, so later schedules between now() and the bound
     * remain legal.
     */
    void runUntilKey(Tick when, Priority prio);

    /** Drop all pending events without executing them. */
    void clear();

    /** Calendar geometry (exposed for boundary-case tests). */
    static constexpr Tick bucketWidth() { return Tick(1) << kShift; }
    static constexpr std::size_t numBuckets() { return kBuckets; }

  private:
    /** log2 of the tick range covered by one bucket. */
    static constexpr unsigned kShift = 7;
    /** Buckets in the calendar window (power of two). */
    static constexpr std::size_t kBuckets = 8192;
    static constexpr std::size_t kMask = kBuckets - 1;
    static constexpr Tick kSpan = Tick(kBuckets) << kShift;
    /** Up to this many buckets are batched into one drain run. */
    static constexpr std::size_t kMaxStores = 4;
    /** Stop batching once a drain run holds this many events. */
    static constexpr std::size_t kBatchTarget = 8;

    struct Entry
    {
        Tick when;
        Priority prio;
        std::uint64_t seq; // insertion order for determinism
        EventCallback fn;
    };

    /**
     * Sort key for the current drain run: ordering fields plus the
     * entry's location packed as (store index << 20) | entry index.
     * Sorting 24-byte keys instead of 80-byte entries keeps the
     * per-run sort cheap. The high bit selects the spill store.
     */
    struct RunKey
    {
        Tick when;
        Priority prio;
        std::uint32_t idx;
        std::uint64_t seq;
    };

    static constexpr std::uint32_t kExtraFlag = 0x80000000u;
    static constexpr unsigned kStoreShift = 20;
    static constexpr std::uint32_t kEntryMask =
        (1u << kStoreShift) - 1;

    /** Strict (when, prio, seq) "runs later" order. */
    static bool
    laterThan(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.prio != b.prio)
            return a.prio > b.prio;
        return a.seq > b.seq;
    }

    static bool
    keyLater(const RunKey &a, const RunKey &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.prio != b.prio)
            return a.prio > b.prio;
        return a.seq > b.seq;
    }

    /** Inclusive last tick of the current bucket. */
    Tick
    curBucketEnd() const
    {
        constexpr Tick w = Tick(1) << kShift;
        return _windowStart > maxTick - w ? maxTick
                                          : _windowStart + w - 1;
    }

    /** Inclusive last tick covered by the calendar window. */
    Tick
    windowEnd() const
    {
        return _windowStart > maxTick - kSpan
                   ? maxTick
                   : _windowStart + kSpan - 1;
    }

    void insertIntoRun(Tick when, Priority prio, std::uint64_t seq,
                       EventCallback &&fn);
    void pushOverflow(Tick when, Priority prio, std::uint64_t seq,
                      EventCallback &&fn);
    void dispatch(const RunKey &key);
    void refillFromOverflow();

    [[noreturn]] void pastPanic(Tick when) const;
    [[noreturn]] void nullPanic(Tick when) const;
    /** Make _run hold the next bucket's entries (requires _size > 0). */
    void advanceToNextBucket();
    /** Ensure _run.back() is the next event (requires _size > 0). */
    void prepareNext();

    void setOccupied(std::size_t idx);
    void clearOccupied(std::size_t idx);
    /** Circular distance from _curIdx to the next occupied bucket. */
    std::size_t nextOccupiedDistance() const;

    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::size_t _size = 0;

    /**
     * The current drain run: up to kMaxStores bucket vectors swapped
     * in whole (no per-entry moves). The stores are frozen while the
     * run executes (so closures can run in place without reallocation
     * moving the ground under them); re-entrant schedules landing in
     * the run's tick range append to the _runExtra spill store.
     */
    std::vector<Entry> _runStores[kMaxStores];
    std::size_t _numStores = 0;
    std::vector<Entry> _runExtra;
    /** Execution order over all stores, earliest key at the back. */
    std::vector<RunKey> _runOrder;

    std::vector<std::vector<Entry>> _buckets;
    std::uint64_t _occupancy[kBuckets / 64] = {};
    std::size_t _inWindow = 0; ///< Entries in _buckets (not _run).

    std::size_t _curIdx = 0;
    Tick _windowStart = 0; ///< Tick at which bucket _curIdx starts.

    /** Min-heap (via std::push_heap on laterThan) of far-future events. */
    std::vector<Entry> _overflow;

    /** True while an event closure is executing (see clear()). */
    bool _dispatching = false;
    /** Buffers parked by a re-entrant clear() until dispatch ends. */
    std::vector<std::vector<Entry>> _retired;
};

/**
 * The original binary-heap implementation (std::function closures in
 * a std::priority_queue). Retained as the reference implementation:
 * bench/microbench_simulator.cc measures it against EventQueue in the
 * same process, and tests/sim_event_queue_test.cc runs both in
 * lockstep to prove the calendar queue preserves execution order.
 */
class LegacyEventQueue
{
  public:
    LegacyEventQueue() = default;

    LegacyEventQueue(const LegacyEventQueue &) = delete;
    LegacyEventQueue &operator=(const LegacyEventQueue &) = delete;

    Tick now() const { return _now; }
    std::size_t pending() const { return _events.size(); }
    bool empty() const { return _events.empty(); }
    std::uint64_t executed() const { return _executed; }

    void schedule(Tick when, std::function<void()> fn,
                  Priority prio = defaultPriority);

    void
    scheduleAfter(Tick delta, std::function<void()> fn,
                  Priority prio = defaultPriority)
    {
        schedule(_now + delta, std::move(fn), prio);
    }

    bool step();
    Tick run(Tick horizon = maxTick);
    void clear();

  private:
    struct Entry
    {
        Tick when;
        Priority prio;
        std::uint64_t seq; // insertion order for determinism
        std::function<void()> fn;
    };

    struct EntryCompare
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::priority_queue<Entry, std::vector<Entry>, EntryCompare> _events;
};

} // namespace papi::sim

#endif // PAPI_SIM_EVENT_QUEUE_HH
