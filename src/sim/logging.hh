/**
 * @file
 * Status and error reporting in the gem5 style.
 *
 * panic()  - an internal simulator invariant was violated (a bug in this
 *            library); throws sim::PanicError so tests can assert on it.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); throws
 *            sim::FatalError.
 * warn()   - something may be modelled imprecisely but execution can
 *            continue.
 * inform() - plain status output.
 *
 * Unlike gem5 we throw exceptions instead of calling abort()/exit() so
 * that the library is embeddable and unit-testable.
 */

#ifndef PAPI_SIM_LOGGING_HH
#define PAPI_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace papi::sim {

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

/** Concatenate a pack of streamable arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal simulator bug. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat("panic: ",
                                    std::forward<Args>(args)...));
}

/** Report an unrecoverable user/configuration error. Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat("fatal: ",
                                    std::forward<Args>(args)...));
}

/** Enable or disable warn()/inform() console output (default on). */
void setLogEnabled(bool enabled);

/** True if console output is currently enabled. */
bool logEnabled();

/** Print a warning to stderr (if logging is enabled). */
void warnStr(const std::string &msg);

/** Print an informational message to stdout (if logging is enabled). */
void informStr(const std::string &msg);

/** Print a warning built from streamable arguments. */
template <typename... Args>
void
warn(Args &&...args)
{
    warnStr(detail::concat(std::forward<Args>(args)...));
}

/** Print an informational message built from streamable arguments. */
template <typename... Args>
void
inform(Args &&...args)
{
    informStr(detail::concat(std::forward<Args>(args)...));
}

} // namespace papi::sim

#endif // PAPI_SIM_LOGGING_HH
