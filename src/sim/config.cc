#include "sim/config.hh"

#include <sstream>

#include "sim/logging.hh"

namespace papi::sim {

void
Config::set(const std::string &key, const std::string &value)
{
    _values[key] = value;
}

void
Config::set(const std::string &key, double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    _values[key] = os.str();
}

void
Config::set(const std::string &key, std::int64_t value)
{
    _values[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    _values[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return _values.count(key) != 0;
}

std::optional<std::string>
Config::lookup(const std::string &key) const
{
    auto it = _values.find(key);
    if (it == _values.end())
        return std::nullopt;
    return it->second;
}

std::string
Config::getString(const std::string &key) const
{
    auto v = lookup(key);
    if (!v)
        fatal("Config: missing key '", key, "'");
    return *v;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    return lookup(key).value_or(def);
}

double
Config::getDouble(const std::string &key) const
{
    auto v = lookup(key);
    if (!v)
        fatal("Config: missing key '", key, "'");
    try {
        std::size_t pos = 0;
        double d = std::stod(*v, &pos);
        if (pos != v->size())
            throw std::invalid_argument("trailing characters");
        return d;
    } catch (const std::exception &) {
        fatal("Config: key '", key, "' value '", *v, "' is not a double");
    }
}

double
Config::getDouble(const std::string &key, double def) const
{
    return has(key) ? getDouble(key) : def;
}

std::int64_t
Config::getInt(const std::string &key) const
{
    auto v = lookup(key);
    if (!v)
        fatal("Config: missing key '", key, "'");
    try {
        std::size_t pos = 0;
        std::int64_t i = std::stoll(*v, &pos);
        if (pos != v->size())
            throw std::invalid_argument("trailing characters");
        return i;
    } catch (const std::exception &) {
        fatal("Config: key '", key, "' value '", *v,
              "' is not an integer");
    }
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    return has(key) ? getInt(key) : def;
}

bool
Config::getBool(const std::string &key) const
{
    auto v = lookup(key);
    if (!v)
        fatal("Config: missing key '", key, "'");
    if (*v == "true" || *v == "1")
        return true;
    if (*v == "false" || *v == "0")
        return false;
    fatal("Config: key '", key, "' value '", *v, "' is not a bool");
}

bool
Config::getBool(const std::string &key, bool def) const
{
    return has(key) ? getBool(key) : def;
}

void
Config::parseAssignment(const std::string &assignment)
{
    auto eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("Config: malformed assignment '", assignment,
              "' (expected key=value)");
    set(assignment.substr(0, eq), assignment.substr(eq + 1));
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(_values.size());
    for (const auto &kv : _values)
        out.push_back(kv.first);
    return out;
}

void
Config::merge(const Config &other)
{
    for (const auto &kv : other._values)
        _values[kv.first] = kv.second;
}

} // namespace papi::sim
