/**
 * @file
 * Conservative parallel discrete-event simulation over per-shard
 * EventQueues: a window scheduler plus a worker-thread pool.
 *
 * ParallelTimeline splits one logical simulation into a *global*
 * queue (events that read or write cross-shard state) and N *shard*
 * queues (events that touch exactly one shard's state). The run loop
 * alternates between two phases in lockstep:
 *
 *  1. Window: peek the next global event's (tick, priority) key and
 *     advance every shard's queue strictly below that key - in
 *     parallel across a WorkerPool, since same-window events of
 *     different shards touch disjoint state by contract.
 *  2. Barrier: with all shards quiescent exactly at the window edge,
 *     execute the one global event on the coordinator thread. It
 *     observes precisely the state a single sequential queue would
 *     have presented at its key, so cross-shard effects (routing
 *     decisions, migrations, fault fan-out) are bit-identical to the
 *     serial order.
 *
 * The contract that makes this exact rather than approximately
 * conservative:
 *
 *  - Shard events may schedule only into their own shard queue;
 *    the global queue is coordinator-only (no mid-window mailboxes
 *    to drain, hence no drain-order ambiguity).
 *  - Global and shard events never collide on (tick, priority), so
 *    the strict "below the key" window bound reproduces the serial
 *    total order without comparing cross-queue sequence numbers.
 *  - Each window commits before the next opens: a shard event found
 *    below the committed edge is a lookahead bug and panics loudly
 *    (see advanceShards) instead of silently reordering.
 *
 * Determinism does not depend on which pool thread runs which shard:
 * every shard's event stream is sequential, per-shard state is
 * confined to it, and the pool's mutex/condvar barrier orders each
 * window's writes before the coordinator (or the next window's
 * owner) reads them.
 */

#ifndef PAPI_SIM_PARALLEL_TIMELINE_HH
#define PAPI_SIM_PARALLEL_TIMELINE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace papi::sim {

/**
 * A fixed-size pool of worker threads executing batches of
 * independent tasks. The calling thread participates, so
 * WorkerPool(n) gives n concurrent executors from n-1 spawned
 * threads; n <= 1 spawns nothing and runTasks degrades to a serial
 * loop on the caller.
 */
class WorkerPool
{
  public:
    /** @param workers Concurrent executors, including the caller. */
    explicit WorkerPool(unsigned workers);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Concurrent executors (including the calling thread). */
    unsigned workers() const { return _workers; }

    /**
     * Execute every task in @p tasks across the pool (the caller
     * works too) and block until all complete. Tasks must be
     * mutually independent. A task that throws has its exception
     * captured; after the batch completes, the exception of the
     * lowest task index is rethrown (a deterministic choice when
     * several shards fail in one window).
     */
    void runTasks(std::vector<std::function<void()>> &tasks);

  private:
    void workerLoop();
    /** Claim-and-run loop shared by workers and the caller. */
    void drainTasks();

    unsigned _workers;
    std::vector<std::thread> _threads;

    std::mutex _mutex;
    std::condition_variable _wake; ///< New batch or shutdown.
    std::condition_variable _done; ///< Batch fully finished.
    std::vector<std::function<void()>> *_tasks = nullptr;
    /** Per-task captured exceptions (disjoint slots; no locking). */
    std::vector<std::exception_ptr> _errors;
    std::size_t _next = 0;     ///< Next unclaimed task index.
    std::size_t _finished = 0; ///< Tasks completed this batch.
    std::uint64_t _batch = 0;  ///< Batch generation counter.
    bool _stop = false;
};

/**
 * The window scheduler: one global EventQueue plus N shard
 * EventQueues advanced in conservative lockstep windows (see the
 * file comment for the execution model and the exactness contract).
 */
class ParallelTimeline
{
  public:
    /** @param shards Number of shard queues (>= 1). */
    explicit ParallelTimeline(std::size_t shards);

    /** The coordinator-only cross-shard queue. */
    EventQueue &global() { return _global; }
    /** Shard @p s's private queue. */
    EventQueue &shard(std::size_t s) { return *_shards[s]; }
    /** Number of shard queues. */
    std::size_t shardCount() const { return _shards.size(); }

    /**
     * The committed window edge on the tick axis: the key tick of
     * the last global event whose window was opened. Scheduling into
     * a shard from coordinator context must clamp to this (it is the
     * serial queue's "now"); shard events below it panic.
     */
    Tick committedTick() const { return _global.now(); }

    /**
     * Drain the global and all shard queues to completion in
     * lockstep windows. @p pool runs each window's shard advances
     * concurrently; pass nullptr (or a single-worker pool) for the
     * serial schedule - the executed event order per queue is
     * identical either way.
     */
    void run(WorkerPool *pool);

  private:
    /**
     * Advance every shard strictly below (@p when, @p prio), in
     * parallel when @p pool allows. With @p bounded false the bound
     * is +infinity: every shard runs dry. Panics if any shard holds
     * an event below the committed window edge.
     */
    void advanceShards(Tick when, Priority prio, bool bounded,
                       WorkerPool *pool);

    EventQueue _global;
    std::vector<std::unique_ptr<EventQueue>> _shards;

    /** Committed edge key: the last opened window's global event. */
    Tick _edgeTick = 0;
    Priority _edgePrio = std::numeric_limits<Priority>::min();

    /** Reused per-window buffers (allocation-free steady state). */
    std::vector<std::uint32_t> _ready;
    std::vector<std::function<void()>> _tasks;
};

} // namespace papi::sim

#endif // PAPI_SIM_PARALLEL_TIMELINE_HH
