#include "sim/fault_plan.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace papi::sim {

void
FaultPlan::validate(std::uint32_t num_replicas) const
{
    for (const ReplicaFault &f : replicaFaults) {
        if (f.replica >= num_replicas)
            fatal("FaultPlan: crash targets replica ", f.replica,
                  " of ", num_replicas);
        if (!std::isfinite(f.crashSeconds) || f.crashSeconds < 0.0)
            fatal("FaultPlan: crash time must be finite and "
                  "non-negative (got ", f.crashSeconds, ")");
        if (!(f.restartSeconds > f.crashSeconds))
            fatal("FaultPlan: replica ", f.replica,
                  " restart (", f.restartSeconds,
                  ") must come after its crash (", f.crashSeconds,
                  ")");
    }
    for (std::size_t i = 0; i < linkFaults.size(); ++i) {
        const LinkFault &w = linkFaults[i];
        if (!std::isfinite(w.startSeconds) || w.startSeconds < 0.0 ||
            !std::isfinite(w.endSeconds))
            fatal("FaultPlan: link-fault window must have finite "
                  "non-negative bounds");
        if (!(w.endSeconds > w.startSeconds))
            fatal("FaultPlan: link-fault window must have positive "
                  "duration (", w.startSeconds, " .. ",
                  w.endSeconds, ")");
        if (!(w.bandwidthFactor >= 0.0) || w.bandwidthFactor > 1.0)
            fatal("FaultPlan: link bandwidth factor must be in "
                  "[0, 1] (got ", w.bandwidthFactor, ")");
        if (i > 0 &&
            w.startSeconds < linkFaults[i - 1].endSeconds)
            fatal("FaultPlan: link-fault windows must be sorted and "
                  "non-overlapping");
    }
}

FaultPlan
FaultPlan::generate(const FaultPlanParams &params)
{
    if (params.numReplicas == 0)
        fatal("FaultPlan::generate: need at least one replica");
    if (!(params.horizonSeconds > 0.0))
        fatal("FaultPlan::generate: horizon must be positive");
    if (params.coldStartSeconds < 0.0)
        fatal("FaultPlan::generate: cold start cannot be negative");

    Rng rng(params.seed);
    FaultPlan plan;
    plan.replicaFaults.reserve(params.crashes);
    for (std::uint32_t i = 0; i < params.crashes; ++i) {
        ReplicaFault f;
        // Crashes never land at t=0 (the system must first exist):
        // uniform over the last 90% of the horizon.
        f.crashSeconds = rng.uniformReal(
            0.1 * params.horizonSeconds, params.horizonSeconds);
        f.replica = static_cast<std::uint32_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(params.numReplicas) - 1));
        if (params.restart)
            f.restartSeconds =
                f.crashSeconds + params.coldStartSeconds;
        plan.replicaFaults.push_back(f);
    }
    std::sort(plan.replicaFaults.begin(), plan.replicaFaults.end(),
              [](const ReplicaFault &a, const ReplicaFault &b) {
                  // detlint: allow(float-eq): strict-weak-order
                  // comparator; timestamps are compared as stored,
                  // and the replica tie-break makes the sort total.
                  if (a.crashSeconds != b.crashSeconds)
                      return a.crashSeconds < b.crashSeconds;
                  return a.replica < b.replica;
              });
    return plan;
}

double
degradedTransferEnd(double start_seconds, double fixed_seconds,
                    double bytes, double bandwidth_bytes_per_sec,
                    const std::vector<LinkFault> &windows)
{
    // The fixed term (latency + message overhead) is not
    // bandwidth-limited; it is paid regardless of degradation.
    double t = start_seconds + fixed_seconds;
    double remaining = bytes;
    for (const LinkFault &w : windows) {
        if (w.endSeconds <= t)
            continue; // window already closed
        if (w.startSeconds > t) {
            // Nominal-rate stretch before this window opens.
            const double span = w.startSeconds - t;
            const double need = remaining / bandwidth_bytes_per_sec;
            if (need <= span)
                return t + need;
            remaining -= span * bandwidth_bytes_per_sec;
            t = w.startSeconds;
        }
        // Inside the window: degraded rate; a partition (factor 0)
        // makes no progress until the window closes.
        const double rate =
            bandwidth_bytes_per_sec * w.bandwidthFactor;
        const double span = w.endSeconds - t;
        if (rate > 0.0) {
            const double need = remaining / rate;
            if (need <= span)
                return t + need;
            remaining -= span * rate;
        }
        t = w.endSeconds;
    }
    return t + remaining / bandwidth_bytes_per_sec;
}

} // namespace papi::sim
