/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Stats are registered with a StatGroup which can render them as a
 * flat name = value listing. Supported kinds:
 *  - Scalar: a single accumulating value.
 *  - Vector: a fixed set of named bins.
 *  - Histogram: fixed-width bucketing with mean/stddev.
 *  - Formula: a value derived from other stats at dump time.
 */

#ifndef PAPI_SIM_STATS_HH
#define PAPI_SIM_STATS_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace papi::sim::stats {

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}
    virtual ~StatBase() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Render this stat as one or more "name value # desc" lines. */
    virtual void print(std::ostream &os) const = 0;

    /** Reset the stat to its initial state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A single accumulating scalar value. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator++() { _value += 1.0; return *this; }
    void set(double v) { _value = v; }
    double value() const { return _value; }

    void print(std::ostream &os) const override;
    void reset() override { _value = 0.0; }

  private:
    double _value = 0.0;
};

/** A fixed set of named bins, each an accumulating scalar. */
class Vector : public StatBase
{
  public:
    Vector(std::string name, std::string desc,
           std::vector<std::string> bin_names)
        : StatBase(std::move(name), std::move(desc)),
          _binNames(std::move(bin_names)), _values(_binNames.size(), 0.0)
    {}

    /** Accumulate into bin @p i. */
    void
    add(std::size_t i, double v)
    {
        if (i >= _values.size())
            panic("stats::Vector '", name(), "': bin ", i, " out of range");
        _values[i] += v;
    }

    double
    value(std::size_t i) const
    {
        if (i >= _values.size())
            panic("stats::Vector '", name(), "': bin ", i, " out of range");
        return _values[i];
    }

    std::size_t size() const { return _values.size(); }
    double total() const;

    void print(std::ostream &os) const override;
    void reset() override { _values.assign(_values.size(), 0.0); }

  private:
    std::vector<std::string> _binNames;
    std::vector<double> _values;
};

/** Fixed-width bucketed histogram with running mean/stddev. */
class Histogram : public StatBase
{
  public:
    /**
     * @param lo Lower edge of the first bucket.
     * @param hi Upper edge of the last bucket.
     * @param buckets Number of buckets; samples outside [lo,hi) land in
     *        underflow/overflow counters.
     */
    Histogram(std::string name, std::string desc, double lo, double hi,
              std::size_t buckets);

    /** Record one sample. */
    void sample(double v);

    std::uint64_t samples() const { return _count; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double stddev() const;
    double minSample() const { return _min; }
    double maxSample() const { return _max; }
    std::uint64_t bucketCount(std::size_t i) const { return _buckets.at(i); }
    std::uint64_t underflows() const { return _under; }
    std::uint64_t overflows() const { return _over; }

    void print(std::ostream &os) const override;
    void reset() override;

  private:
    double _lo;
    double _hi;
    double _width;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _under = 0;
    std::uint64_t _over = 0;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** A value computed from other stats at dump time. */
class Formula : public StatBase
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(std::move(name), std::move(desc)), _fn(std::move(fn))
    {}

    double value() const { return _fn ? _fn() : 0.0; }

    void print(std::ostream &os) const override;
    void reset() override {}

  private:
    std::function<double()> _fn;
};

/**
 * Owner and registry for a set of stats.
 *
 * Groups are named; stat names are qualified as "group.stat". Creating
 * two stats with the same name in one group is a user error.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    Scalar &addScalar(const std::string &name, const std::string &desc);
    Vector &addVector(const std::string &name, const std::string &desc,
                      std::vector<std::string> bin_names);
    Histogram &addHistogram(const std::string &name,
                            const std::string &desc, double lo, double hi,
                            std::size_t buckets);
    Formula &addFormula(const std::string &name, const std::string &desc,
                        std::function<double()> fn);

    /** Find a stat by unqualified name; nullptr if absent. */
    const StatBase *find(const std::string &name) const;

    /** Number of registered stats. */
    std::size_t size() const { return _order.size(); }

    /** Print all stats in registration order. */
    void dump(std::ostream &os) const;

    /** Reset all stats. */
    void resetAll();

  private:
    void registerStat(std::unique_ptr<StatBase> stat);

    std::string _name;
    std::vector<std::unique_ptr<StatBase>> _order;
    std::map<std::string, StatBase *> _byName;
};

} // namespace papi::sim::stats

#endif // PAPI_SIM_STATS_HH
