/**
 * @file
 * A small-buffer-optimized, move-only callable for simulation events.
 *
 * std::function heap-allocates any capture larger than its ~16-byte
 * internal buffer and copies it on every queue reshuffle; with
 * millions of simulated events that allocation traffic dominates the
 * simulator's own run time. EventCallback stores captures up to
 * inlineCapacity bytes inline (no heap allocation) and is move-only,
 * so queue maintenance relocates closures instead of copying them.
 *
 * Relocation is the hot operation (queues sort and shuffle entries
 * constantly), so it is a plain memcpy whenever the callable permits:
 * trivially-copyable captures (the overwhelming majority of device
 * events - a few pointers and integers) and the heap-fallback pointer
 * both relocate without any indirect call. Only inline non-trivial
 * callables (e.g. closures owning a std::function) pay an indirect
 * move, and only larger-than-buffer or throwing-move callables fall
 * back to a single heap allocation at construction.
 */

#ifndef PAPI_SIM_EVENT_CALLBACK_HH
#define PAPI_SIM_EVENT_CALLBACK_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace papi::sim {

/** Move-only type-erased void() callable with inline storage. */
class EventCallback
{
  public:
    /** Captures up to this many bytes live inline (no allocation). */
    static constexpr std::size_t inlineCapacity = 48;

    EventCallback() = default;

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    /**
     * Wrap any void() callable. Callables that are themselves
     * null-testable (std::function, function pointers) produce a null
     * EventCallback when empty, so callers can reject them up front
     * instead of crashing at invocation time.
     */
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, EventCallback>>>
    EventCallback(F &&fn) // NOLINT: implicit by design
    {
        using Fn = std::decay_t<F>;
        if constexpr (std::is_constructible_v<bool, const Fn &>) {
            if (!static_cast<bool>(fn))
                return; // stay null
        }
        constexpr bool fits =
            sizeof(Fn) <= inlineCapacity &&
            alignof(Fn) <= alignof(std::max_align_t);
        if constexpr (fits && std::is_trivially_copyable_v<Fn>) {
            ::new (static_cast<void *>(_buf)) Fn(std::forward<F>(fn));
            _ops = &trivialOps<Fn>;
        } else if constexpr (fits &&
                             std::is_nothrow_move_constructible_v<
                                 Fn>) {
            ::new (static_cast<void *>(_buf)) Fn(std::forward<F>(fn));
            _ops = &inlineOps<Fn>;
        } else {
            using Ptr = Fn *;
            ::new (static_cast<void *>(_buf))
                Ptr(new Fn(std::forward<F>(fn)));
            _ops = &heapOps<Fn>;
        }
    }

    ~EventCallback() { reset(); }

    explicit operator bool() const { return _ops != nullptr; }

    void
    operator()()
    {
        _ops->invoke(_buf);
    }

    /** Destroy the held callable (if any) and become null. */
    void
    reset()
    {
        if (_ops) {
            if (_ops->destroy)
                _ops->destroy(_buf);
            _ops = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move into dst, destroying src; nullptr => plain memcpy. */
        void (*relocate)(void *dst, void *src);
        /** Destroy the stored callable; nullptr => trivial. */
        void (*destroy)(void *storage);
    };

    /** Trivially-copyable inline callables: memcpy moves, no dtor. */
    template <typename Fn>
    static constexpr Ops trivialOps = {
        [](void *s) { (*std::launder(reinterpret_cast<Fn *>(s)))(); },
        nullptr,
        nullptr,
    };

    /** Non-trivial inline callables: real move ctor and dtor. */
    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *s) { (*std::launder(reinterpret_cast<Fn *>(s)))(); },
        [](void *dst, void *src) {
            Fn *from = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        },
        [](void *s) { std::launder(reinterpret_cast<Fn *>(s))->~Fn(); },
    };

    /** Heap fallback: storage holds one pointer; memcpy relocates. */
    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *s) {
            (**std::launder(reinterpret_cast<Fn **>(s)))();
        },
        nullptr,
        [](void *s) {
            delete *std::launder(reinterpret_cast<Fn **>(s));
        },
    };

    void
    moveFrom(EventCallback &other) noexcept
    {
        if (other._ops) {
            if (other._ops->relocate)
                other._ops->relocate(_buf, other._buf);
            else
                std::memcpy(_buf, other._buf, inlineCapacity);
            _ops = other._ops;
            other._ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _buf[inlineCapacity];
    const Ops *_ops = nullptr;
};

// ---- compile-time contract ------------------------------------
// The calendar queue relocates EventCallbacks with plain memcpy when
// the held callable permits (trivialOps/heapOps have relocate ==
// nullptr), and sorts millions of them per run. These asserts pin
// the assumptions that make that safe and fast; if one fires, the
// queue's relocation strategy - not just this file - must change.

// The SBO threshold is part of the performance contract: a typical
// device-event capture (a handful of pointers plus a tick or two of
// integer payload) must stay inline, or steady-state scheduling
// regains the heap traffic PR 1 removed.
static_assert(EventCallback::inlineCapacity >= 6 * sizeof(void *),
              "EventCallback SBO must hold a typical device-event "
              "capture (a few pointers + integers) inline");
// moveFrom() memcpys the whole buffer without consulting the held
// type; any growth here is paid by EVERY queue reshuffle, so it must
// be deliberate, not incidental.
static_assert(sizeof(EventCallback) <=
                  EventCallback::inlineCapacity +
                      2 * sizeof(void *) + alignof(std::max_align_t),
              "EventCallback layout grew beyond buffer + vtable "
              "pointer: queue entries are relocated by memcpy and "
              "sized to this budget");
// Queue maintenance must never throw mid-reshuffle (a half-moved
// entry would corrupt the calendar), and copying a move-only closure
// must stay impossible.
static_assert(std::is_nothrow_move_constructible_v<EventCallback> &&
                  std::is_nothrow_move_assignable_v<EventCallback>,
              "queue relocation relies on noexcept moves");
static_assert(!std::is_copy_constructible_v<EventCallback>,
              "EventCallback is move-only by design");

} // namespace papi::sim

#endif // PAPI_SIM_EVENT_CALLBACK_HH
