/**
 * @file
 * Deterministic fault schedules for failure-recovery simulation.
 *
 * A FaultPlan is a fixed, seed-reproducible schedule of fault events
 * decided *before* the simulation runs: replica crashes (with an
 * optional restart after a cold-start delay) and link degradation or
 * partition windows. Because the plan is data, not a runtime random
 * process, two runs with the same plan execute byte-identical event
 * sequences - which is what makes recovery policies (retry, failover,
 * load shedding) comparable under the same failures. An empty plan
 * injects nothing and must leave a run byte-identical to one with no
 * fault machinery at all (pinned by tests).
 */

#ifndef PAPI_SIM_FAULT_PLAN_HH
#define PAPI_SIM_FAULT_PLAN_HH

#include <cstdint>
#include <limits>
#include <vector>

namespace papi::sim {

/** One replica fail-stop event, with an optional restart. */
struct ReplicaFault
{
    /** Replica (backend group) index the crash hits. */
    std::uint32_t replica = 0;
    /** When the replica fail-stops, seconds. */
    double crashSeconds = 0.0;
    /**
     * When the replica is back (cold start complete) and accepts
     * work again. Infinity (the default) means it never restarts.
     */
    double restartSeconds = std::numeric_limits<double>::infinity();
};

/**
 * One link-degradation window: while active, the transfer fabric
 * runs at @ref bandwidthFactor of its nominal bandwidth. A factor of
 * 0 is a partition - no bytes move until the window closes.
 */
struct LinkFault
{
    double startSeconds = 0.0; ///< Window opens.
    double endSeconds = 0.0;   ///< Window closes (exclusive).
    /** Fraction of nominal bandwidth available in [0, 1]. */
    double bandwidthFactor = 0.0;
};

/** Parameters of FaultPlan::generate (seed-driven synthesis). */
struct FaultPlanParams
{
    std::uint64_t seed = 1;        ///< RNG seed.
    std::uint32_t numReplicas = 1; ///< Replicas crashes spread over.
    std::uint32_t crashes = 1;     ///< Crash events to draw.
    /** Crash times are uniform in [0.1 * horizon, horizon). */
    double horizonSeconds = 10.0;
    /** Restart delay after each crash (cold start). */
    double coldStartSeconds = 1.0;
    /** False = fail-stop forever (no restart events). */
    bool restart = true;
};

/** A deterministic schedule of replica and link faults. */
struct FaultPlan
{
    /** Replica crash/restart events. */
    std::vector<ReplicaFault> replicaFaults;
    /** Link degradation windows, sorted and non-overlapping. */
    std::vector<LinkFault> linkFaults;

    /** True if the plan injects nothing at all. */
    bool
    empty() const
    {
        return replicaFaults.empty() && linkFaults.empty();
    }

    /** True if no replica ever crashes (link faults may exist). */
    bool crashFree() const { return replicaFaults.empty(); }

    /**
     * Validate against a deployment of @p num_replicas replicas:
     * replica indices in range, finite non-negative crash times,
     * restarts after their crash, link windows ordered,
     * non-overlapping, with factors in [0, 1]. Fatal on violation.
     */
    void validate(std::uint32_t num_replicas) const;

    /**
     * Synthesize a plan from @p params: crash times uniform over the
     * horizon, victims uniform over the replicas, each crash
     * followed by a restart after the cold-start delay (when
     * enabled). Same params, same plan - byte for byte.
     */
    static FaultPlan generate(const FaultPlanParams &params);
};

/**
 * Completion time of a transfer that starts at @p start_seconds,
 * pays @p fixed_seconds up front (latency + message overhead), and
 * then drains @p bytes at @p bandwidth_bytes_per_sec scaled by any
 * active LinkFault window (no progress inside a partition). With no
 * windows this reduces exactly to start + fixed + bytes/bandwidth.
 * @p windows must be sorted and non-overlapping (see
 * FaultPlan::validate).
 */
double degradedTransferEnd(double start_seconds, double fixed_seconds,
                           double bytes,
                           double bandwidth_bytes_per_sec,
                           const std::vector<LinkFault> &windows);

} // namespace papi::sim

#endif // PAPI_SIM_FAULT_PLAN_HH
