/**
 * @file
 * Fundamental simulation types: ticks, cycles, and unit helpers.
 *
 * The simulation kernel measures time in ticks, where one tick is one
 * picosecond. Devices operating in a clock domain convert between
 * cycles of their local clock and global ticks via sim::Clocked.
 */

#ifndef PAPI_SIM_TYPES_HH
#define PAPI_SIM_TYPES_HH

#include <cstdint>

namespace papi::sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick maxTick = ~Tick(0);

/** One picosecond, the base tick unit. */
constexpr Tick onePs = 1;
/** Ticks per nanosecond. */
constexpr Tick oneNs = 1000;
/** Ticks per microsecond. */
constexpr Tick oneUs = 1000 * oneNs;
/** Ticks per millisecond. */
constexpr Tick oneMs = 1000 * oneUs;
/** Ticks per second. */
constexpr Tick oneSec = 1000 * oneMs;

/** Convert a frequency in MHz to a clock period in ticks. */
constexpr Tick
periodFromMhz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz + 0.5);
}

/** Convert a tick count to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneSec);
}

/** Convert seconds to ticks (rounding to nearest tick). */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(oneSec) + 0.5);
}

/** Bytes in a kibibyte / mebibyte / gibibyte. */
constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

} // namespace papi::sim

#endif // PAPI_SIM_TYPES_HH
