#include "sim/parallel_timeline.hh"

#include "sim/logging.hh"

namespace papi::sim {

// ---------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------

WorkerPool::WorkerPool(unsigned workers)
    : _workers(workers == 0 ? 1 : workers)
{
    _threads.reserve(_workers - 1);
    for (unsigned t = 1; t < _workers; ++t)
        _threads.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _wake.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

void
WorkerPool::drainTasks()
{
    for (;;) {
        std::size_t i;
        std::vector<std::function<void()>> *tasks;
        {
            std::lock_guard<std::mutex> lock(_mutex);
            tasks = _tasks;
            if (!tasks || _next >= tasks->size())
                return;
            i = _next++;
        }
        try {
            (*tasks)[i]();
        } catch (...) {
            // Disjoint slot per task; published to the coordinator
            // by the _finished increment below.
            _errors[i] = std::current_exception();
        }
        bool last;
        {
            std::lock_guard<std::mutex> lock(_mutex);
            ++_finished;
            last = _finished == tasks->size();
        }
        if (last)
            _done.notify_one();
    }
}

void
WorkerPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock, [&] {
                return _stop || _batch != seen;
            });
            if (_stop)
                return;
            seen = _batch;
        }
        drainTasks();
    }
}

void
WorkerPool::runTasks(std::vector<std::function<void()>> &tasks)
{
    if (tasks.empty())
        return;
    if (_workers <= 1) {
        for (auto &t : tasks)
            t();
        return;
    }
    _errors.assign(tasks.size(), nullptr);
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _tasks = &tasks;
        _next = 0;
        _finished = 0;
        ++_batch;
    }
    _wake.notify_all();
    drainTasks();
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _done.wait(lock, [&] { return _finished == tasks.size(); });
        _tasks = nullptr;
    }
    // Deterministic error selection: the lowest failing task index
    // wins regardless of real-time completion order.
    for (std::exception_ptr &e : _errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

// ---------------------------------------------------------------------
// ParallelTimeline
// ---------------------------------------------------------------------

ParallelTimeline::ParallelTimeline(std::size_t shards)
{
    if (shards == 0)
        fatal("ParallelTimeline: need at least one shard");
    _shards.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
        _shards.push_back(std::make_unique<EventQueue>());
}

void
ParallelTimeline::advanceShards(Tick when, Priority prio,
                                bool bounded, WorkerPool *pool)
{
    _ready.clear();
    for (std::uint32_t s = 0; s < _shards.size(); ++s) {
        Tick head_when;
        Priority head_prio;
        if (!_shards[s]->peekNextKey(head_when, head_prio))
            continue;
        // The lookahead tripwire: every event below the committed
        // edge was supposed to have executed in an earlier window.
        // Finding one now means some path scheduled into the
        // committed past - fail loudly instead of reordering.
        if (head_when < _edgeTick ||
            (head_when == _edgeTick && head_prio < _edgePrio))
            panic("ParallelTimeline: shard ", s,
                  " holds an event at (", head_when, ", ",
                  head_prio, ") below the committed window edge (",
                  _edgeTick, ", ", _edgePrio, ")");
        if (bounded &&
            !(head_when < when ||
              (head_when == when && head_prio < prio)))
            continue;
        _ready.push_back(s);
    }
    if (_ready.empty())
        return;
    if (!pool || pool->workers() <= 1 || _ready.size() == 1) {
        for (std::uint32_t s : _ready) {
            if (bounded)
                _shards[s]->runUntilKey(when, prio);
            else
                _shards[s]->run();
        }
        return;
    }
    _tasks.clear();
    for (std::uint32_t s : _ready) {
        EventQueue *q = _shards[s].get();
        if (bounded)
            _tasks.push_back(
                [q, when, prio] { q->runUntilKey(when, prio); });
        else
            _tasks.push_back([q] { q->run(); });
    }
    pool->runTasks(_tasks);
}

void
ParallelTimeline::run(WorkerPool *pool)
{
    for (;;) {
        Tick bound_when = 0;
        Priority bound_prio = 0;
        const bool bounded =
            _global.peekNextKey(bound_when, bound_prio);
        advanceShards(bound_when, bound_prio, bounded, pool);
        if (!bounded) {
            // Shards ran dry with no global bound. Shard events may
            // only schedule into their own queue, so the global
            // queue should still be empty - but re-check rather
            // than assume (a stray schedule would otherwise vanish).
            if (_global.empty())
                return;
            continue;
        }
        // Commit the window edge, then execute the one global event
        // with every shard quiescent exactly below its key.
        _edgeTick = bound_when;
        _edgePrio = bound_prio;
        _global.step();
    }
}

} // namespace papi::sim
