/**
 * @file
 * Event-driven memory controller for one pseudo-channel.
 *
 * Supports FCFS and FR-FCFS scheduling with open-page policy and
 * periodic all-bank refresh. Requests complete via callback at data
 * burst end.
 */

#ifndef PAPI_DRAM_CONTROLLER_HH
#define PAPI_DRAM_CONTROLLER_HH

#include <cstdint>
#include <list>
#include <string>

#include "dram/address.hh"
#include "dram/pseudo_channel.hh"
#include "dram/request.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace papi::dram {

/** Request scheduling policy. */
enum class SchedulingPolicy : std::uint8_t
{
    Fcfs,   ///< Strictly oldest-first.
    FrFcfs, ///< Row hits first, then oldest-first.
};

/** Per-pseudo-channel memory controller. */
class MemController
{
  public:
    /**
     * @param eq Event queue providing simulated time.
     * @param spec Device description.
     * @param policy Scheduling policy.
     * @param mapping Address interleaving policy.
     * @param queue_depth Maximum pending requests (0 = unlimited).
     */
    MemController(sim::EventQueue &eq, const DramSpec &spec,
                  SchedulingPolicy policy = SchedulingPolicy::FrFcfs,
                  MappingPolicy mapping = MappingPolicy::RoCoBaBg,
                  std::size_t queue_depth = 64);

    /**
     * Enqueue a request.
     * @retval true accepted.
     * @retval false the queue is full; retry later.
     */
    bool enqueue(MemRequest req);

    /** Requests currently queued (not yet data-complete). */
    std::size_t queued() const { return _queue.size(); }

    /** Requests completed so far. */
    std::uint64_t completed() const { return _completed; }

    /** Row-buffer hit-rate over all column accesses so far. */
    double rowHitRate() const;

    /** Mean request latency (arrival to data end) in ticks. */
    double meanLatency() const;

    /** Achieved data bandwidth in bytes/second since construction. */
    double achievedBandwidth() const;

    /** The underlying channel (for energy accounting and tests). */
    const PseudoChannel &channel() const { return _channel; }

    /** Statistics group for this controller. */
    const sim::stats::StatGroup &stats() const { return _stats; }

    /** Enable/disable refresh (tests disable it for determinism). */
    void setRefreshEnabled(bool enabled);

  private:
    struct Pending
    {
        MemRequest req;
        Coord coord;
        bool causedActivate = false;
    };

    void scheduleService(sim::Tick when);
    void service();
    void scheduleRefresh();
    void doRefresh();

    /** Pick the next request per policy; end() if queue empty. */
    std::list<Pending>::iterator pickNext();

    sim::EventQueue &_eq;
    DramSpec _spec;
    PseudoChannel _channel;
    AddressMapping _mapping;
    SchedulingPolicy _policy;
    std::size_t _queueDepth;

    std::list<Pending> _queue;
    std::uint64_t _nextId = 0;
    std::uint64_t _completed = 0;
    bool _servicePending = false;
    sim::Tick _servicePendingAt = 0;
    std::uint64_t _serviceToken = 0; ///< Invalidates stale events.

    bool _refreshEnabled = true;
    bool _refreshDue = false;

    // Counters.
    std::uint64_t _rowHits = 0;
    std::uint64_t _rowMisses = 0;
    std::uint64_t _rowConflicts = 0;
    std::uint64_t _latencySumTicks = 0;
    std::uint64_t _bytesTransferred = 0;
    sim::Tick _firstArrival = 0;
    sim::Tick _lastCompletion = 0;
    bool _sawRequest = false;

    sim::stats::StatGroup _stats;
    sim::stats::Scalar &_statReads;
    sim::stats::Scalar &_statWrites;
    sim::stats::Scalar &_statRowHits;
    sim::stats::Scalar &_statRowMisses;
    sim::stats::Scalar &_statRowConflicts;
    sim::stats::Scalar &_statRefreshes;
};

} // namespace papi::dram

#endif // PAPI_DRAM_CONTROLLER_HH
