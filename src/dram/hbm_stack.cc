#include "dram/hbm_stack.hh"

#include "sim/logging.hh"

namespace papi::dram {

HbmStack::HbmStack(const DramSpec &spec,
                   std::uint32_t num_pseudo_channels)
    : _spec(spec)
{
    if (num_pseudo_channels == 0)
        sim::fatal("HbmStack: zero pseudo-channels");
    _channels.reserve(num_pseudo_channels);
    for (std::uint32_t i = 0; i < num_pseudo_channels; ++i)
        _channels.push_back(std::make_unique<PseudoChannel>(spec));
}

PseudoChannel &
HbmStack::channel(std::uint32_t i)
{
    if (i >= _channels.size())
        sim::panic("HbmStack::channel: index ", i, " out of range");
    return *_channels[i];
}

const PseudoChannel &
HbmStack::channel(std::uint32_t i) const
{
    if (i >= _channels.size())
        sim::panic("HbmStack::channel: index ", i, " out of range");
    return *_channels[i];
}

std::uint32_t
HbmStack::totalBanks() const
{
    return numPseudoChannels() * _spec.org.banks();
}

std::uint64_t
HbmStack::capacityBytes() const
{
    return static_cast<std::uint64_t>(numPseudoChannels()) *
           _spec.org.capacityBytes();
}

double
HbmStack::peakBandwidth() const
{
    return static_cast<double>(numPseudoChannels()) *
           _spec.peakChannelBandwidth();
}

double
HbmStack::peakInternalBandwidth() const
{
    double per_bank = static_cast<double>(_spec.org.accessBytes) /
                      sim::ticksToSeconds(_spec.timing.tCCD_S);
    return per_bank * static_cast<double>(totalBanks());
}

} // namespace papi::dram
