#include "dram/controller.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace papi::dram {

using sim::Tick;

MemController::MemController(sim::EventQueue &eq, const DramSpec &spec,
                             SchedulingPolicy policy,
                             MappingPolicy mapping,
                             std::size_t queue_depth)
    : _eq(eq), _spec(spec), _channel(spec), _mapping(spec.org, mapping),
      _policy(policy), _queueDepth(queue_depth),
      _stats("mem_controller"),
      _statReads(_stats.addScalar("reads", "column read commands")),
      _statWrites(_stats.addScalar("writes", "column write commands")),
      _statRowHits(_stats.addScalar("row_hits",
                                    "column accesses hitting an open "
                                    "row")),
      _statRowMisses(_stats.addScalar("row_misses",
                                      "accesses to a closed bank")),
      _statRowConflicts(_stats.addScalar("row_conflicts",
                                         "accesses needing a precharge "
                                         "first")),
      _statRefreshes(_stats.addScalar("refreshes",
                                      "all-bank refreshes issued"))
{
    scheduleRefresh();
}

bool
MemController::enqueue(MemRequest req)
{
    if (_queueDepth != 0 && _queue.size() >= _queueDepth)
        return false;

    req.arrival = _eq.now();
    req.id = _nextId++;
    if (!_sawRequest) {
        _firstArrival = req.arrival;
        _sawRequest = true;
    }

    Pending p;
    p.coord = _mapping.decompose(req.addr);
    p.req = std::move(req);
    _queue.push_back(std::move(p));

    scheduleService(_eq.now());
    return true;
}

void
MemController::setRefreshEnabled(bool enabled)
{
    if (enabled && !_refreshEnabled)
        scheduleRefresh(); // re-arm the periodic refresh event
    _refreshEnabled = enabled;
}

double
MemController::rowHitRate() const
{
    // Every request is either a hit (no ACT needed) or a miss (one
    // ACT, possibly preceded by a PRE counted separately as conflict).
    std::uint64_t total = _rowHits + _rowMisses;
    return total == 0 ? 0.0
                      : static_cast<double>(_rowHits) /
                            static_cast<double>(total);
}

double
MemController::meanLatency() const
{
    return _completed == 0 ? 0.0
                           : static_cast<double>(_latencySumTicks) /
                                 static_cast<double>(_completed);
}

double
MemController::achievedBandwidth() const
{
    if (!_sawRequest || _lastCompletion <= _firstArrival)
        return 0.0;
    double secs = sim::ticksToSeconds(_lastCompletion - _firstArrival);
    return static_cast<double>(_bytesTransferred) / secs;
}

void
MemController::scheduleService(Tick when)
{
    if (_servicePending && _servicePendingAt <= when)
        return;
    _servicePending = true;
    _servicePendingAt = when;
    // Superseding an already-scheduled (later) service event must
    // neutralize it, or every completion-driven enqueue would leave a
    // stale event that re-runs service() and re-schedules itself -
    // event counts then grow superlinearly with request count (the
    // original implementation had exactly that pathology). The token
    // makes stale events fire once as cheap no-ops.
    const std::uint64_t token = ++_serviceToken;
    _eq.schedule(when, [this, token] {
        if (token != _serviceToken)
            return; // superseded by a newer service event
        _servicePending = false;
        service();
    });
}

std::list<MemController::Pending>::iterator
MemController::pickNext()
{
    if (_queue.empty())
        return _queue.end();

    if (_policy == SchedulingPolicy::Fcfs)
        return _queue.begin();

    // FR-FCFS: oldest request whose target row is already open wins;
    // otherwise the oldest request overall.
    for (auto it = _queue.begin(); it != _queue.end(); ++it) {
        const auto &b = _channel.bank(it->coord.bankGroup,
                                      it->coord.bank);
        if (b.openRow() && *b.openRow() == it->coord.row)
            return it;
    }
    return _queue.begin();
}

void
MemController::service()
{
    const Tick now = _eq.now();

    // Issue everything legal at this tick in one pass, then schedule
    // the next service event directly at the earliest tick the next
    // command could go out. (The command bus spaces commands by tCK,
    // so in practice one command issues per tick; the point is to
    // avoid the tick-by-tick polling events a naive "retry at now+1"
    // would generate - they used to double the event count.)
    while (true) {
        if (_refreshDue) {
            doRefresh();
            return;
        }

        auto it = pickNext();
        if (it == _queue.end())
            return;

        const Coord &c = it->coord;
        const auto &b = _channel.bank(c.bankGroup, c.bank);

        // Decide the next command for this request under open-page
        // policy.
        Command cmd;
        cmd.coord = c;
        if (b.openRow()) {
            if (*b.openRow() == c.row) {
                cmd.type = it->req.isWrite ? CommandType::Wr
                                           : CommandType::Rd;
            } else {
                cmd.type = CommandType::Pre;
            }
        } else {
            cmd.type = CommandType::Act;
        }

        Tick earliest = _channel.earliestIssue(cmd, now);
        if (earliest > now) {
            scheduleService(earliest);
            return;
        }

        Tick done = _channel.issue(cmd, now);

        if (cmd.type == CommandType::Rd ||
            cmd.type == CommandType::Wr) {
            // A hit means this request needed no activate of its own.
            if (!it->causedActivate) {
                ++_rowHits;
                _statRowHits += 1;
            }
            if (cmd.type == CommandType::Rd)
                _statReads += 1;
            else
                _statWrites += 1;

            // Keep the completion capture small (<= the event queue's
            // inline buffer): only the arrival tick and the user
            // callback ride along; the completion tick is the event's
            // own execution time.
            Tick arrival = it->req.arrival;
            auto on_complete = std::move(it->req.onComplete);
            _queue.erase(it);
            _bytesTransferred += _spec.org.accessBytes;

            _eq.schedule(done, [this, arrival,
                                on_complete =
                                    std::move(on_complete)]() mutable {
                const Tick t = _eq.now();
                ++_completed;
                _latencySumTicks += t - arrival;
                _lastCompletion = std::max(_lastCompletion, t);
                if (on_complete)
                    on_complete(t);
            });
        } else if (cmd.type == CommandType::Act) {
            ++_rowMisses;
            _statRowMisses += 1;
            it->causedActivate = true;
        } else if (cmd.type == CommandType::Pre) {
            ++_rowConflicts;
            _statRowConflicts += 1;
        }

        if (_queue.empty())
            return;
        // Loop: more work may be issueable at this very tick; if not,
        // the next iteration computes its exact earliest tick and
        // schedules the service event there.
    }
}

void
MemController::scheduleRefresh()
{
    if (_spec.timing.tREFI == 0)
        return;
    // The periodic event re-arms itself only while refresh is
    // enabled, so draining simulations (EventQueue::run() without a
    // horizon) terminate once refresh is disabled.
    _eq.scheduleAfter(_spec.timing.tREFI, [this] {
        if (!_refreshEnabled)
            return;
        _refreshDue = true;
        scheduleService(_eq.now());
        scheduleRefresh();
    });
}

void
MemController::doRefresh()
{
    const Tick now = _eq.now();

    // Close any open banks first.
    for (std::uint32_t g = 0; g < _spec.org.bankGroups; ++g) {
        for (std::uint32_t i = 0; i < _spec.org.banksPerGroup; ++i) {
            const auto &b = _channel.bank(g, i);
            if (!b.openRow())
                continue;
            Command pre{CommandType::Pre, Coord{g, i, 0, 0}};
            Tick earliest = _channel.earliestIssue(pre, now);
            if (earliest > now) {
                scheduleService(earliest);
                return;
            }
            _channel.issue(pre, now);
        }
    }

    // All banks closed; make sure precharges have settled (tRP) by
    // checking an ACT would be legal, then refresh.
    Tick ready = now;
    for (std::uint32_t g = 0; g < _spec.org.bankGroups; ++g) {
        for (std::uint32_t i = 0; i < _spec.org.banksPerGroup; ++i) {
            ready = std::max(
                ready,
                _channel.bank(g, i).earliestIssue(CommandType::Ref));
        }
    }
    if (ready > now) {
        scheduleService(ready);
        return;
    }

    _channel.refresh(now);
    _statRefreshes += 1;
    _refreshDue = false;

    if (!_queue.empty())
        scheduleService(now + _spec.timing.tRFC);
}

} // namespace papi::dram
