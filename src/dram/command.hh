/**
 * @file
 * DRAM command vocabulary and coordinates.
 */

#ifndef PAPI_DRAM_COMMAND_HH
#define PAPI_DRAM_COMMAND_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace papi::dram {

/** Command types issued to a pseudo-channel. */
enum class CommandType : std::uint8_t
{
    Act,   ///< Activate a row into the bank's row buffer.
    Pre,   ///< Precharge (close) the bank's row buffer.
    Rd,    ///< Column read burst.
    Wr,    ///< Column write burst.
    Ref,   ///< All-bank refresh.
    PimMac ///< Near-bank column read feeding the bank's FPUs.
};

/** Number of CommandType values (for per-type timing tables). */
constexpr std::size_t commandTypeCount = 6;

/** Printable command name. */
const char *commandName(CommandType type);

/** Coordinates addressing a location within one pseudo-channel. */
struct Coord
{
    std::uint32_t bankGroup = 0;
    std::uint32_t bank = 0; ///< Bank index within the bank group.
    std::uint32_t row = 0;
    std::uint32_t column = 0; ///< Column-access index within the row.

    bool
    operator==(const Coord &other) const
    {
        return bankGroup == other.bankGroup && bank == other.bank &&
               row == other.row && column == other.column;
    }
};

/** A command plus its target coordinates. */
struct Command
{
    CommandType type = CommandType::Act;
    Coord coord;
};

} // namespace papi::dram

#endif // PAPI_DRAM_COMMAND_HH
