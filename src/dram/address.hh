/**
 * @file
 * Linear-address to DRAM-coordinate mapping.
 */

#ifndef PAPI_DRAM_ADDRESS_HH
#define PAPI_DRAM_ADDRESS_HH

#include <cstdint>
#include <string>

#include "dram/command.hh"
#include "dram/timing.hh"

namespace papi::dram {

/** Interleaving order for decomposing a linear address. */
enum class MappingPolicy : std::uint8_t
{
    /**
     * Row : Bank : BankGroup : Column (RoBaBgCo) - consecutive column
     * accesses stay within a row; banks interleave above columns.
     * Good for streaming (weights).
     */
    RoBaBgCo,
    /**
     * Row : Column : Bank : BankGroup (RoCoBaBg) - consecutive
     * accesses rotate across bank groups first, maximising bank-level
     * parallelism for random traffic.
     */
    RoCoBaBg,
};

/** Decompose linear byte addresses into pseudo-channel coordinates. */
class AddressMapping
{
  public:
    AddressMapping(const OrgParams &org, MappingPolicy policy);

    /**
     * Map the byte address @p addr (within one pseudo-channel's
     * address space) to coordinates. Addresses are truncated to
     * access-granularity boundaries. Fatal if out of capacity.
     */
    Coord decompose(std::uint64_t addr) const;

    /** Inverse of decompose (for round-trip checks). */
    std::uint64_t compose(const Coord &coord) const;

    MappingPolicy policy() const { return _policy; }

  private:
    OrgParams _org;
    MappingPolicy _policy;
    std::uint64_t _capacity;
};

} // namespace papi::dram

#endif // PAPI_DRAM_ADDRESS_HH
