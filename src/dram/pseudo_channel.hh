/**
 * @file
 * A pseudo-channel: a set of bank groups sharing a command/data bus.
 *
 * Enforces the inter-bank constraints (tCCD_S/L column cadence across
 * bank groups, tRRD_S/L activate spacing, the four-activate window
 * tFAW, and single-occupancy of the data bus) on top of each Bank's
 * intra-bank timing.
 */

#ifndef PAPI_DRAM_PSEUDO_CHANNEL_HH
#define PAPI_DRAM_PSEUDO_CHANNEL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "dram/bank.hh"
#include "dram/command.hh"
#include "dram/timing.hh"
#include "sim/types.hh"

namespace papi::dram {

/** Command/data fabric for one pseudo-channel. */
class PseudoChannel
{
  public:
    explicit PseudoChannel(const DramSpec &spec);

    // Banks point at this channel's timing table.
    PseudoChannel(const PseudoChannel &) = delete;
    PseudoChannel &operator=(const PseudoChannel &) = delete;

    const DramSpec &spec() const { return _spec; }

    /** Number of banks across all bank groups. */
    std::uint32_t numBanks() const { return _spec.org.banks(); }

    /** Access a bank by (group, index-within-group). */
    Bank &bank(std::uint32_t group, std::uint32_t idx);
    const Bank &bank(std::uint32_t group, std::uint32_t idx) const;

    /** Flat bank index helper. */
    std::uint32_t
    flatIndex(std::uint32_t group, std::uint32_t idx) const
    {
        return group * _spec.org.banksPerGroup + idx;
    }

    /**
     * Earliest tick >= @p now at which @p cmd could be issued,
     * honouring both channel-level and bank-level constraints.
     * Does not check row-buffer state compatibility (see canIssue).
     */
    sim::Tick earliestIssue(const Command &cmd, sim::Tick now) const;

    /** True if @p cmd is legal at exactly tick @p now. */
    bool canIssue(const Command &cmd, sim::Tick now) const;

    /**
     * Issue @p cmd at tick @p now (must be legal). Returns the
     * completion tick reported by the bank (data end for column
     * commands).
     */
    sim::Tick issue(const Command &cmd, sim::Tick now);

    /**
     * Convenience: wait until @p cmd becomes legal (starting from
     * @p now) and issue it.
     *
     * @param[out] issued_at The tick at which the command went out.
     * @return The completion tick.
     */
    sim::Tick issueAtEarliest(const Command &cmd, sim::Tick now,
                              sim::Tick &issued_at);

    /**
     * All-bank refresh: blocks the channel for tRFC. Only legal when
     * every bank is closed. Returns the completion tick.
     */
    sim::Tick refresh(sim::Tick now);

    /** Aggregate counters for stats/energy. */
    std::uint64_t totalActivations() const;
    std::uint64_t totalColumnAccesses() const;
    std::uint64_t totalPimMacs() const;

  private:
    DramSpec _spec;
    BankTimingTable _bankTiming;
    std::vector<Bank> _banks;

    // Pair tables indexed by (bank group == previous command's group).
    sim::Tick _ccd[2];  ///< {tCCD_S, tCCD_L}.
    sim::Tick _rrd[2];  ///< {tRRD_S, tRRD_L}.

    // Channel-scope timing state.
    sim::Tick _lastColumnAt = 0;
    std::uint32_t _lastColumnGroup = 0;
    bool _anyColumnIssued = false;

    sim::Tick _lastActAt = 0;
    std::uint32_t _lastActGroup = 0;
    bool _anyActIssued = false;

    /** Last four ACT ticks (fixed ring, oldest at _actRingPos). */
    sim::Tick _actRing[4] = {};
    std::uint32_t _actRingPos = 0;
    std::uint32_t _actCount = 0;

    sim::Tick _busFreeAt = 0;         ///< Data bus becomes free.
    sim::Tick _refreshUntil = 0;      ///< Channel blocked by refresh.
    sim::Tick _lastCommandAt = 0;     ///< Command-bus occupancy.
    bool _anyCommandIssued = false;
    bool _lastDataWasWrite = false;   ///< For tWTR / tRTW turnaround.
};

} // namespace papi::dram

#endif // PAPI_DRAM_PSEUDO_CHANNEL_HH
