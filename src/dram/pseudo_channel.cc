#include "dram/pseudo_channel.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace papi::dram {

using sim::Tick;

PseudoChannel::PseudoChannel(const DramSpec &spec)
    : _spec(spec), _bankTiming(_spec.timing)
{
    const auto n = _spec.org.banks();
    _banks.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        _banks.emplace_back(_bankTiming);
    _ccd[0] = _spec.timing.tCCD_S;
    _ccd[1] = _spec.timing.tCCD_L;
    _rrd[0] = _spec.timing.tRRD_S;
    _rrd[1] = _spec.timing.tRRD_L;
}

Bank &
PseudoChannel::bank(std::uint32_t group, std::uint32_t idx)
{
    if (group >= _spec.org.bankGroups || idx >= _spec.org.banksPerGroup)
        sim::panic("PseudoChannel::bank: out of range (", group, ",",
                   idx, ")");
    return _banks[flatIndex(group, idx)];
}

const Bank &
PseudoChannel::bank(std::uint32_t group, std::uint32_t idx) const
{
    if (group >= _spec.org.bankGroups || idx >= _spec.org.banksPerGroup)
        sim::panic("PseudoChannel::bank: out of range (", group, ",",
                   idx, ")");
    return _banks[flatIndex(group, idx)];
}

Tick
PseudoChannel::earliestIssue(const Command &cmd, Tick now) const
{
    const auto &t = _spec.timing;
    const auto &b = bank(cmd.coord.bankGroup, cmd.coord.bank);

    Tick earliest = std::max(now, _refreshUntil);
    earliest = std::max(earliest, b.earliestIssue(cmd.type));

    // One command per command-bus cycle; near-bank PIM reads are
    // produced by the per-bank sequencers and bypass the bus.
    if (_anyCommandIssued && cmd.type != CommandType::PimMac)
        earliest = std::max(earliest, _lastCommandAt + t.tCK);

    switch (cmd.type) {
      case CommandType::Act: {
        if (_anyActIssued) {
            Tick rrd = _rrd[cmd.coord.bankGroup == _lastActGroup];
            earliest = std::max(earliest, _lastActAt + rrd);
        }
        if (_actCount >= 4) {
            // Fifth activate must wait out the four-activate window;
            // the ring slot about to be overwritten is the oldest of
            // the last four ACTs.
            earliest = std::max(earliest,
                                _actRing[_actRingPos] + t.tFAW);
        }
        break;
      }
      case CommandType::Rd:
      case CommandType::Wr: {
        if (_anyColumnIssued) {
            Tick ccd = _ccd[cmd.coord.bankGroup == _lastColumnGroup];
            earliest = std::max(earliest, _lastColumnAt + ccd);
        }
        // The data burst of this command (starting tCL/tWL after
        // issue) must not overlap the previous burst; commands may
        // pipeline through the access latency itself.
        Tick data_lat = cmd.type == CommandType::Rd ? t.tCL : t.tWL;
        if (_busFreeAt > data_lat)
            earliest = std::max(earliest, _busFreeAt - data_lat);
        // Bus turnaround between writes and reads.
        if (_anyColumnIssued) {
            if (_lastDataWasWrite && cmd.type == CommandType::Rd)
                earliest = std::max(earliest, _busFreeAt + t.tWTR);
            if (!_lastDataWasWrite && cmd.type == CommandType::Wr &&
                _busFreeAt + t.tRTW > t.tWL)
                earliest = std::max(earliest,
                                    _busFreeAt + t.tRTW - t.tWL);
        }
        break;
      }
      case CommandType::PimMac:
        // Near-bank reads use per-bank datapaths: no shared column
        // fabric or external bus constraints, only bank timing.
        break;
      case CommandType::Pre:
      case CommandType::Ref:
        break;
    }
    return earliest;
}

bool
PseudoChannel::canIssue(const Command &cmd, Tick now) const
{
    if (now < earliestIssue(cmd, now))
        return false;
    const auto &b = bank(cmd.coord.bankGroup, cmd.coord.bank);
    return b.canIssue(cmd.type, cmd.coord.row, now);
}

Tick
PseudoChannel::issue(const Command &cmd, Tick now)
{
    if (!canIssue(cmd, now))
        sim::panic("PseudoChannel::issue: illegal ",
                   commandName(cmd.type), " at tick ", now);

    const auto &t = _spec.timing;
    auto &b = bank(cmd.coord.bankGroup, cmd.coord.bank);
    Tick done = b.issue(cmd.type, cmd.coord.row, now);

    if (cmd.type != CommandType::PimMac) {
        _lastCommandAt = now;
        _anyCommandIssued = true;
    }

    switch (cmd.type) {
      case CommandType::Act:
        _lastActAt = now;
        _lastActGroup = cmd.coord.bankGroup;
        _anyActIssued = true;
        _actRing[_actRingPos] = now;
        _actRingPos = (_actRingPos + 1) & 3;
        ++_actCount;
        break;
      case CommandType::Rd:
      case CommandType::Wr:
        _lastColumnAt = now;
        _lastColumnGroup = cmd.coord.bankGroup;
        _anyColumnIssued = true;
        _busFreeAt = std::max(_busFreeAt, done);
        _lastDataWasWrite = cmd.type == CommandType::Wr;
        break;
      case CommandType::PimMac:
        // Per-bank datapath: no shared channel state to update.
        break;
      case CommandType::Pre:
      case CommandType::Ref:
        break;
    }
    (void)t;
    return done;
}

Tick
PseudoChannel::issueAtEarliest(const Command &cmd, Tick now,
                               Tick &issued_at)
{
    issued_at = earliestIssue(cmd, now);
    // earliestIssue guarantees timing legality; row-state legality
    // (right row open etc.) is the caller's responsibility and is
    // re-checked inside issue().
    return issue(cmd, issued_at);
}

Tick
PseudoChannel::refresh(Tick now)
{
    for (const auto &b : _banks) {
        if (b.openRow().has_value())
            sim::panic("PseudoChannel::refresh: bank still open");
    }
    // Apply tRFC to every bank.
    Tick done = now + _spec.timing.tRFC;
    for (std::uint32_t g = 0; g < _spec.org.bankGroups; ++g) {
        for (std::uint32_t i = 0; i < _spec.org.banksPerGroup; ++i) {
            if (bank(g, i).canIssue(CommandType::Ref, 0, now))
                bank(g, i).issue(CommandType::Ref, 0, now);
        }
    }
    _refreshUntil = std::max(_refreshUntil, done);
    return done;
}

std::uint64_t
PseudoChannel::totalActivations() const
{
    std::uint64_t sum = 0;
    for (const auto &b : _banks)
        sum += b.activations();
    return sum;
}

std::uint64_t
PseudoChannel::totalColumnAccesses() const
{
    std::uint64_t sum = 0;
    for (const auto &b : _banks)
        sum += b.reads() + b.writes() + b.pimMacs();
    return sum;
}

std::uint64_t
PseudoChannel::totalPimMacs() const
{
    std::uint64_t sum = 0;
    for (const auto &b : _banks)
        sum += b.pimMacs();
    return sum;
}

} // namespace papi::dram
