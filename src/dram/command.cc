#include "dram/command.hh"

namespace papi::dram {

const char *
commandName(CommandType type)
{
    switch (type) {
      case CommandType::Act: return "ACT";
      case CommandType::Pre: return "PRE";
      case CommandType::Rd: return "RD";
      case CommandType::Wr: return "WR";
      case CommandType::Ref: return "REF";
      case CommandType::PimMac: return "PIM_MAC";
    }
    return "UNKNOWN";
}

} // namespace papi::dram
