#include "dram/timing.hh"

namespace papi::dram {

namespace {

constexpr Tick ns(double v) { return static_cast<Tick>(v * 1000.0); }

} // namespace

DramSpec
hbm3Spec()
{
    DramSpec spec;

    spec.org.bankGroups = 2;
    spec.org.banksPerGroup = 4;
    spec.org.rowsPerBank = 131072; // 128 MiB bank / 1 KiB row
    spec.org.rowBytes = 1024;
    spec.org.accessBytes = 32;
    spec.org.busBits = 32;

    auto &t = spec.timing;
    t.dataRateGbps = 5.2;
    // BL8 over a 32-bit pseudo channel: 8 beats at 5.2 Gbps.
    t.tBURST = static_cast<Tick>(8.0 / 5.2 * 1000.0 + 0.5); // 1539 ps
    t.tCCD_S = t.tBURST;
    t.tCCD_L = 2 * t.tBURST;
    t.tRCD = ns(14.0);
    t.tRP = ns(14.0);
    t.tRAS = ns(28.0);
    t.tRC = ns(42.0);
    t.tCL = ns(14.0);
    t.tWL = ns(7.0);
    t.tRRD_S = ns(4.0);
    t.tRRD_L = ns(6.0);
    t.tFAW = ns(16.0);
    t.tWR = ns(15.0);
    t.tRTP = ns(7.5);
    t.tREFI = ns(3900.0);
    t.tRFC = ns(260.0);
    t.tCK = static_cast<Tick>(770); // 1.3 GHz command clock
    t.tWTR = ns(2.5);
    t.tRTW = ns(1.5);

    return spec;
}

} // namespace papi::dram
