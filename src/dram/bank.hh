/**
 * @file
 * Per-bank DRAM state machine with timing enforcement.
 */

#ifndef PAPI_DRAM_BANK_HH
#define PAPI_DRAM_BANK_HH

#include <cstdint>
#include <optional>

#include "dram/command.hh"
#include "dram/timing.hh"
#include "sim/types.hh"

namespace papi::dram {

using sim::Tick;

/**
 * One DRAM bank: row-buffer state plus the earliest ticks at which
 * each command class may legally be issued to this bank.
 *
 * The bank enforces intra-bank constraints (tRCD, tRP, tRAS, tRC,
 * tWR, tRTP, same-bank column cadence). Inter-bank constraints
 * (tRRD, tFAW, bus occupancy, tCCD across banks) live in
 * PseudoChannel.
 */
class Bank
{
  public:
    explicit Bank(const TimingParams &timing) : _t(timing) {}

    /** State of the bank's row buffer. */
    enum class State : std::uint8_t { Closed, Opening, Open };

    State state(Tick now) const;

    /** Row currently open (or being opened); nullopt when closed. */
    std::optional<std::uint32_t> openRow() const { return _openRow; }

    /** Earliest tick at which @p type may be issued to this bank. */
    Tick earliestIssue(CommandType type) const;

    /**
     * True if issuing @p type at @p now respects intra-bank timing and
     * the row-buffer state (e.g. Rd requires the addressed row open).
     */
    bool canIssue(CommandType type, std::uint32_t row, Tick now) const;

    /**
     * Apply a command at tick @p now, updating state and next-allowed
     * times. Panics if the command is illegal at @p now (callers are
     * expected to check canIssue first).
     *
     * @return The tick at which the command's effect completes (data
     *         burst end for Rd/Wr/PimMac, row open for Act, bank idle
     *         for Pre).
     */
    Tick issue(CommandType type, std::uint32_t row, Tick now);

    /** Row-buffer hit/miss bookkeeping. */
    std::uint64_t activations() const { return _activations; }
    std::uint64_t reads() const { return _reads; }
    std::uint64_t writes() const { return _writes; }
    std::uint64_t pimMacs() const { return _pimMacs; }

  private:
    const TimingParams &_t;

    std::optional<std::uint32_t> _openRow;
    Tick _rowOpenAt = 0; ///< Tick at which the activating row is usable.

    Tick _nextAct = 0;
    Tick _nextPre = 0;
    Tick _nextRdWr = 0;

    std::uint64_t _activations = 0;
    std::uint64_t _reads = 0;
    std::uint64_t _writes = 0;
    std::uint64_t _pimMacs = 0;
};

} // namespace papi::dram

#endif // PAPI_DRAM_BANK_HH
