/**
 * @file
 * Per-bank DRAM state machine with timing enforcement.
 */

#ifndef PAPI_DRAM_BANK_HH
#define PAPI_DRAM_BANK_HH

#include <cstdint>
#include <optional>

#include "dram/command.hh"
#include "dram/timing.hh"
#include "sim/types.hh"

namespace papi::dram {

using sim::Tick;

/**
 * Per-command-type timing increments, derived once from TimingParams
 * so the per-command hot path is table lookups instead of parameter
 * chasing and branching. Shared by every bank of a pseudo-channel.
 */
struct BankTimingTable
{
    explicit BankTimingTable(const TimingParams &t);

    Tick actToCol;     ///< tRCD: row usable after ACT.
    Tick actToPre;     ///< tRAS.
    Tick actToAct;     ///< tRC.
    Tick preToAct;     ///< tRP.
    Tick rdDataDone;   ///< tCL + tBURST.
    Tick wrDataDone;   ///< tWL + tBURST.
    Tick rdToPre;      ///< tRTP.
    Tick wrRecovery;   ///< tWR (from data end).
    Tick refCycle;     ///< tRFC.
    /** Same-bank column cadence, indexed by CommandType (Rd/Wr use
     *  tCCD_L, near-bank PimMac pipelines at tCCD_S). */
    Tick colCadence[commandTypeCount];
};

/**
 * One DRAM bank: row-buffer state plus the earliest ticks at which
 * each command class may legally be issued to this bank.
 *
 * The bank enforces intra-bank constraints (tRCD, tRP, tRAS, tRC,
 * tWR, tRTP, same-bank column cadence). Inter-bank constraints
 * (tRRD, tFAW, bus occupancy, tCCD across banks) live in
 * PseudoChannel.
 *
 * Earliest-issue times are maintained as a flat per-CommandType array
 * updated on issue, so the (hot) earliestIssue query is a single
 * indexed load.
 */
class Bank
{
  public:
    explicit Bank(const BankTimingTable &table) : _tt(&table) {}

    /** State of the bank's row buffer. */
    enum class State : std::uint8_t { Closed, Opening, Open };

    State state(Tick now) const;

    /** Row currently open (or being opened); nullopt when closed. */
    std::optional<std::uint32_t> openRow() const { return _openRow; }

    /** Earliest tick at which @p type may be issued to this bank. */
    Tick
    earliestIssue(CommandType type) const
    {
        return _earliest[commandIndex(type)];
    }

    /**
     * True if issuing @p type at @p now respects intra-bank timing and
     * the row-buffer state (e.g. Rd requires the addressed row open).
     */
    bool canIssue(CommandType type, std::uint32_t row, Tick now) const;

    /**
     * Apply a command at tick @p now, updating state and next-allowed
     * times. Panics if the command is illegal at @p now (callers are
     * expected to check canIssue first).
     *
     * @return The tick at which the command's effect completes (data
     *         burst end for Rd/Wr/PimMac, row open for Act, bank idle
     *         for Pre).
     */
    Tick issue(CommandType type, std::uint32_t row, Tick now);

    /** Row-buffer hit/miss bookkeeping. */
    std::uint64_t activations() const { return _activations; }
    std::uint64_t reads() const { return _reads; }
    std::uint64_t writes() const { return _writes; }
    std::uint64_t pimMacs() const { return _pimMacs; }

  private:
    static constexpr std::size_t
    commandIndex(CommandType type)
    {
        return static_cast<std::size_t>(type);
    }

    /** Set the earliest-issue tick for all three column classes. */
    void
    setColumnEarliest(Tick when)
    {
        _earliest[commandIndex(CommandType::Rd)] = when;
        _earliest[commandIndex(CommandType::Wr)] = when;
        _earliest[commandIndex(CommandType::PimMac)] = when;
    }

    const BankTimingTable *_tt;

    std::optional<std::uint32_t> _openRow;
    Tick _rowOpenAt = 0; ///< Tick at which the activating row is usable.

    /** Earliest legal issue tick per CommandType. */
    Tick _earliest[commandTypeCount] = {};

    std::uint64_t _activations = 0;
    std::uint64_t _reads = 0;
    std::uint64_t _writes = 0;
    std::uint64_t _pimMacs = 0;
};

} // namespace papi::dram

#endif // PAPI_DRAM_BANK_HH
