/**
 * @file
 * DRAM timing and organization parameters.
 *
 * Timings are stored in ticks (picoseconds) and derived from an HBM3
 * datasheet-style description (JEDEC HBM3, 5.2 Gbps/pin as used in the
 * PAPI paper). The organization describes one pseudo-channel; a stack
 * aggregates pseudo-channels (see dram/hbm_stack.hh).
 */

#ifndef PAPI_DRAM_TIMING_HH
#define PAPI_DRAM_TIMING_HH

#include <cstdint>

#include "sim/types.hh"

namespace papi::dram {

using sim::Tick;

/** Per-pseudo-channel organization parameters. */
struct OrgParams
{
    /** Bank groups per pseudo-channel. */
    std::uint32_t bankGroups = 2;
    /** Banks per bank group. */
    std::uint32_t banksPerGroup = 4;
    /** Rows per bank. */
    std::uint32_t rowsPerBank = 65536;
    /** Row (page) size in bytes per bank. */
    std::uint32_t rowBytes = 1024;
    /** Bytes transferred by one column access (burst). */
    std::uint32_t accessBytes = 32;
    /** Data bus width in bits. */
    std::uint32_t busBits = 32;

    /** Total banks in the pseudo-channel. */
    std::uint32_t banks() const { return bankGroups * banksPerGroup; }

    /** Column accesses per row. */
    std::uint32_t
    columnsPerRow() const
    {
        return rowBytes / accessBytes;
    }

    /** Capacity of the pseudo-channel in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(banks()) * rowsPerBank *
               rowBytes;
    }
};

/** DRAM timing constraints, all in ticks. */
struct TimingParams
{
    Tick tRCD = 0;   ///< ACT to internal RD/WR delay.
    Tick tRP = 0;    ///< PRE to ACT delay.
    Tick tRAS = 0;   ///< ACT to PRE minimum.
    Tick tRC = 0;    ///< ACT to ACT (same bank) minimum.
    Tick tCL = 0;    ///< RD to first data.
    Tick tWL = 0;    ///< WR to first data.
    Tick tBURST = 0; ///< Data burst duration for one access.
    Tick tCCD_S = 0; ///< Column-to-column, different bank group.
    Tick tCCD_L = 0; ///< Column-to-column, same bank group.
    Tick tRRD_S = 0; ///< ACT-to-ACT, different bank group.
    Tick tRRD_L = 0; ///< ACT-to-ACT, same bank group.
    Tick tFAW = 0;   ///< Four-activate window.
    Tick tWR = 0;    ///< Write recovery (end of write data to PRE).
    Tick tRTP = 0;   ///< Read to PRE delay.
    Tick tREFI = 0;  ///< Refresh interval.
    Tick tRFC = 0;   ///< Refresh cycle time.
    Tick tCK = 0;    ///< Command-bus cycle (one command per tCK).
    Tick tWTR = 0;   ///< Write-burst end to read command (turnaround).
    Tick tRTW = 0;   ///< Read-burst end to write command.

    /** Data-pin rate in Gbit/s (for bandwidth math). */
    double dataRateGbps = 0.0;
};

/** A complete device description: organization plus timing. */
struct DramSpec
{
    OrgParams org;
    TimingParams timing;

    /**
     * Peak data bandwidth of one pseudo-channel in bytes/second:
     * one access of accessBytes every tBURST.
     */
    double
    peakChannelBandwidth() const
    {
        return static_cast<double>(org.accessBytes) /
               sim::ticksToSeconds(timing.tBURST);
    }
};

/**
 * HBM3-class pseudo-channel spec at 5.2 Gbps/pin.
 *
 * 32-bit pseudo-channel, BL8 -> 32 bytes per access in
 * 8 / 5.2e9 s = 1539 ps. Core timings follow published HBM3 values.
 */
DramSpec hbm3Spec();

} // namespace papi::dram

#endif // PAPI_DRAM_TIMING_HH
