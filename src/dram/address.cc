#include "dram/address.hh"

#include "sim/logging.hh"

namespace papi::dram {

AddressMapping::AddressMapping(const OrgParams &org, MappingPolicy policy)
    : _org(org), _policy(policy), _capacity(org.capacityBytes())
{
}

Coord
AddressMapping::decompose(std::uint64_t addr) const
{
    if (addr >= _capacity)
        sim::fatal("AddressMapping: address ", addr, " beyond capacity ",
                   _capacity);

    std::uint64_t unit = addr / _org.accessBytes;
    Coord c;

    const std::uint64_t cols = _org.columnsPerRow();
    const std::uint64_t banks = _org.banksPerGroup;
    const std::uint64_t groups = _org.bankGroups;

    switch (_policy) {
      case MappingPolicy::RoBaBgCo:
        c.column = static_cast<std::uint32_t>(unit % cols);
        unit /= cols;
        c.bankGroup = static_cast<std::uint32_t>(unit % groups);
        unit /= groups;
        c.bank = static_cast<std::uint32_t>(unit % banks);
        unit /= banks;
        c.row = static_cast<std::uint32_t>(unit);
        break;
      case MappingPolicy::RoCoBaBg:
        c.bankGroup = static_cast<std::uint32_t>(unit % groups);
        unit /= groups;
        c.bank = static_cast<std::uint32_t>(unit % banks);
        unit /= banks;
        c.column = static_cast<std::uint32_t>(unit % cols);
        unit /= cols;
        c.row = static_cast<std::uint32_t>(unit);
        break;
    }
    return c;
}

std::uint64_t
AddressMapping::compose(const Coord &coord) const
{
    const std::uint64_t cols = _org.columnsPerRow();
    const std::uint64_t banks = _org.banksPerGroup;
    const std::uint64_t groups = _org.bankGroups;

    std::uint64_t unit = 0;
    switch (_policy) {
      case MappingPolicy::RoBaBgCo:
        unit = coord.row;
        unit = unit * banks + coord.bank;
        unit = unit * groups + coord.bankGroup;
        unit = unit * cols + coord.column;
        break;
      case MappingPolicy::RoCoBaBg:
        unit = coord.row;
        unit = unit * cols + coord.column;
        unit = unit * banks + coord.bank;
        unit = unit * groups + coord.bankGroup;
        break;
    }
    return unit * _org.accessBytes;
}

} // namespace papi::dram
