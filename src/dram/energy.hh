/**
 * @file
 * DRAM energy accounting from command counts.
 *
 * Constants are HBM3-class estimates; the PAPI reproduction cares
 * about the relative split between row activation energy, data
 * transfer energy, and compute energy (paper Fig. 7), so the model
 * keeps those components separable. Absolute joules are documented
 * estimates, not silicon measurements.
 */

#ifndef PAPI_DRAM_ENERGY_HH
#define PAPI_DRAM_ENERGY_HH

#include <cstdint>

#include "dram/hbm_stack.hh"

namespace papi::dram {

/** Energy parameters for one HBM pseudo-channel/bank fabric. */
struct DramEnergyParams
{
    /** Joules per row activate + matching precharge (1 KiB row). */
    double actPreEnergy = 12.0e-9;
    /** Joules per byte read from the cell array to the bank edge
     *  (3.75 pJ/bit). */
    double cellReadEnergyPerByte = 30.0e-12;
    /** Joules per byte written into the cell array. */
    double cellWriteEnergyPerByte = 33.0e-12;
    /** Joules per byte through TSV + PHY to the external interface
     *  (6 pJ/bit). */
    double externalIoEnergyPerByte = 48.0e-12;
    /** Background (standby/refresh) power per pseudo-channel, watts. */
    double backgroundPowerPerChannel = 0.35;
};

/** Accumulated DRAM energy, split by component. */
struct DramEnergyBreakdown
{
    double actPre = 0.0;     ///< Activation/precharge joules.
    double cellAccess = 0.0; ///< Cell array read/write joules.
    double externalIo = 0.0; ///< TSV/PHY transfer joules.
    double background = 0.0; ///< Standby joules over elapsed time.

    double
    total() const
    {
        return actPre + cellAccess + externalIo + background;
    }
};

/**
 * Compute energy for a command mix.
 *
 * @param params Energy constants.
 * @param activations Row activate (+precharge) count.
 * @param internal_bytes Bytes moved cell-array <-> bank edge
 *        (includes both external accesses and near-bank PIM reads).
 * @param external_bytes Bytes that additionally crossed TSV/PHY.
 * @param elapsed_seconds Wall-clock span for background energy.
 * @param num_channels Pseudo-channels drawing background power.
 */
DramEnergyBreakdown dramEnergy(const DramEnergyParams &params,
                               std::uint64_t activations,
                               std::uint64_t internal_bytes,
                               std::uint64_t external_bytes,
                               double elapsed_seconds,
                               std::uint32_t num_channels);

} // namespace papi::dram

#endif // PAPI_DRAM_ENERGY_HH
