/**
 * @file
 * Request-level interface to a memory controller.
 */

#ifndef PAPI_DRAM_REQUEST_HH
#define PAPI_DRAM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace papi::dram {

/** A single access-granularity memory request. */
struct MemRequest
{
    std::uint64_t addr = 0; ///< Byte address within the channel.
    bool isWrite = false;
    sim::Tick arrival = 0; ///< Set by the controller on enqueue.
    std::uint64_t id = 0;  ///< Set by the controller on enqueue.

    /** Invoked at the tick the data burst completes. */
    std::function<void(sim::Tick)> onComplete;
};

} // namespace papi::dram

#endif // PAPI_DRAM_REQUEST_HH
