#include "dram/bank.hh"

#include "sim/logging.hh"

namespace papi::dram {

Bank::State
Bank::state(Tick now) const
{
    if (!_openRow)
        return State::Closed;
    return now >= _rowOpenAt ? State::Open : State::Opening;
}

Tick
Bank::earliestIssue(CommandType type) const
{
    switch (type) {
      case CommandType::Act:
        return _nextAct;
      case CommandType::Pre:
        return _nextPre;
      case CommandType::Rd:
      case CommandType::Wr:
      case CommandType::PimMac:
        return std::max(_nextRdWr, _rowOpenAt);
      case CommandType::Ref:
        return _nextAct; // refresh needs the bank closed, like ACT
    }
    sim::panic("Bank::earliestIssue: bad command type");
}

bool
Bank::canIssue(CommandType type, std::uint32_t row, Tick now) const
{
    if (now < earliestIssue(type))
        return false;

    switch (type) {
      case CommandType::Act:
        return !_openRow.has_value();
      case CommandType::Pre:
        return _openRow.has_value();
      case CommandType::Rd:
      case CommandType::Wr:
      case CommandType::PimMac:
        return _openRow.has_value() && *_openRow == row;
      case CommandType::Ref:
        return !_openRow.has_value();
    }
    return false;
}

Tick
Bank::issue(CommandType type, std::uint32_t row, Tick now)
{
    if (!canIssue(type, row, now)) {
        sim::panic("Bank::issue: illegal ", commandName(type), " row=",
                   row, " at tick ", now, " (earliest=",
                   earliestIssue(type), ")");
    }

    switch (type) {
      case CommandType::Act:
        _openRow = row;
        _rowOpenAt = now + _t.tRCD;
        _nextPre = now + _t.tRAS;
        _nextAct = now + _t.tRC;
        ++_activations;
        return _rowOpenAt;

      case CommandType::Pre:
        _openRow.reset();
        _nextAct = std::max(_nextAct, now + _t.tRP);
        return now + _t.tRP;

      case CommandType::Rd:
      case CommandType::PimMac: {
        // Near-bank PIM reads use the per-bank prefetch datapath and
        // pipeline at burst cadence (AttAcc-style 20.8 GB/s per
        // bank); external reads pace at the same-bank-group tCCD_L.
        _nextRdWr = now + (type == CommandType::PimMac ? _t.tCCD_S
                                                       : _t.tCCD_L);
        // Read-to-precharge and keep tRAS.
        _nextPre = std::max(_nextPre, now + _t.tRTP);
        if (type == CommandType::Rd)
            ++_reads;
        else
            ++_pimMacs;
        return now + _t.tCL + _t.tBURST;
      }

      case CommandType::Wr: {
        _nextRdWr = now + _t.tCCD_L;
        Tick data_end = now + _t.tWL + _t.tBURST;
        _nextPre = std::max(_nextPre, data_end + _t.tWR);
        ++_writes;
        return data_end;
      }

      case CommandType::Ref:
        // Handled at channel scope; the bank just blocks ACTs.
        _nextAct = std::max(_nextAct, now + _t.tRFC);
        return now + _t.tRFC;
    }
    sim::panic("Bank::issue: bad command type");
}

} // namespace papi::dram
