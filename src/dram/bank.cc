#include "dram/bank.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace papi::dram {

BankTimingTable::BankTimingTable(const TimingParams &t)
    : actToCol(t.tRCD), actToPre(t.tRAS), actToAct(t.tRC),
      preToAct(t.tRP), rdDataDone(t.tCL + t.tBURST),
      wrDataDone(t.tWL + t.tBURST), rdToPre(t.tRTP), wrRecovery(t.tWR),
      refCycle(t.tRFC), colCadence{}
{
    // Near-bank PIM reads use the per-bank prefetch datapath and
    // pipeline at burst cadence (AttAcc-style 20.8 GB/s per bank);
    // external reads/writes pace at the same-bank-group tCCD_L.
    colCadence[static_cast<std::size_t>(CommandType::Rd)] = t.tCCD_L;
    colCadence[static_cast<std::size_t>(CommandType::Wr)] = t.tCCD_L;
    colCadence[static_cast<std::size_t>(CommandType::PimMac)] =
        t.tCCD_S;
}

Bank::State
Bank::state(Tick now) const
{
    if (!_openRow)
        return State::Closed;
    return now >= _rowOpenAt ? State::Open : State::Opening;
}

bool
Bank::canIssue(CommandType type, std::uint32_t row, Tick now) const
{
    if (now < earliestIssue(type))
        return false;

    switch (type) {
      case CommandType::Act:
        return !_openRow.has_value();
      case CommandType::Pre:
        return _openRow.has_value();
      case CommandType::Rd:
      case CommandType::Wr:
      case CommandType::PimMac:
        return _openRow.has_value() && *_openRow == row;
      case CommandType::Ref:
        return !_openRow.has_value();
    }
    return false;
}

Tick
Bank::issue(CommandType type, std::uint32_t row, Tick now)
{
    if (!canIssue(type, row, now)) {
        sim::panic("Bank::issue: illegal ", commandName(type), " row=",
                   row, " at tick ", now, " (earliest=",
                   earliestIssue(type), ")");
    }

    const BankTimingTable &tt = *_tt;
    switch (type) {
      case CommandType::Act: {
        _openRow = row;
        _rowOpenAt = now + tt.actToCol;
        _earliest[commandIndex(CommandType::Pre)] = now + tt.actToPre;
        _earliest[commandIndex(CommandType::Act)] = now + tt.actToAct;
        _earliest[commandIndex(CommandType::Ref)] = now + tt.actToAct;
        // Columns wait for the row to open; a cadence gate left over
        // from the previous row carries across the ACT.
        setColumnEarliest(std::max(
            _earliest[commandIndex(CommandType::Rd)], _rowOpenAt));
        ++_activations;
        return _rowOpenAt;
      }

      case CommandType::Pre: {
        _openRow.reset();
        Tick next_act = std::max(
            _earliest[commandIndex(CommandType::Act)],
            now + tt.preToAct);
        _earliest[commandIndex(CommandType::Act)] = next_act;
        _earliest[commandIndex(CommandType::Ref)] = next_act;
        return now + tt.preToAct;
      }

      case CommandType::Rd:
      case CommandType::PimMac: {
        setColumnEarliest(now + tt.colCadence[commandIndex(type)]);
        // Read-to-precharge and keep tRAS.
        _earliest[commandIndex(CommandType::Pre)] = std::max(
            _earliest[commandIndex(CommandType::Pre)],
            now + tt.rdToPre);
        if (type == CommandType::Rd)
            ++_reads;
        else
            ++_pimMacs;
        return now + tt.rdDataDone;
      }

      case CommandType::Wr: {
        setColumnEarliest(now + tt.colCadence[commandIndex(type)]);
        Tick data_end = now + tt.wrDataDone;
        _earliest[commandIndex(CommandType::Pre)] = std::max(
            _earliest[commandIndex(CommandType::Pre)],
            data_end + tt.wrRecovery);
        ++_writes;
        return data_end;
      }

      case CommandType::Ref: {
        // Handled at channel scope; the bank just blocks ACTs.
        Tick next_act = std::max(
            _earliest[commandIndex(CommandType::Act)],
            now + tt.refCycle);
        _earliest[commandIndex(CommandType::Act)] = next_act;
        _earliest[commandIndex(CommandType::Ref)] = next_act;
        return now + tt.refCycle;
      }
    }
    sim::panic("Bank::issue: bad command type");
}

} // namespace papi::dram
