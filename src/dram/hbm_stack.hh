/**
 * @file
 * An HBM stack: a set of pseudo-channels with aggregate properties.
 *
 * A 16 GB-class HBM3 stack has 16 pseudo-channels (8 dies x 2); the
 * FC-PIM variant in PAPI trades a quarter of the cell area for FPUs,
 * modelled as 12 pseudo-channels' worth of capacity (12 GB, 96 banks)
 * per stack.
 */

#ifndef PAPI_DRAM_HBM_STACK_HH
#define PAPI_DRAM_HBM_STACK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/pseudo_channel.hh"
#include "dram/timing.hh"

namespace papi::dram {

/** A complete HBM stack (device). */
class HbmStack
{
  public:
    /**
     * @param spec Per-pseudo-channel description.
     * @param num_pseudo_channels Pseudo-channels in the stack.
     */
    HbmStack(const DramSpec &spec, std::uint32_t num_pseudo_channels);

    const DramSpec &spec() const { return _spec; }

    std::uint32_t numPseudoChannels() const
    {
        return static_cast<std::uint32_t>(_channels.size());
    }

    PseudoChannel &channel(std::uint32_t i);
    const PseudoChannel &channel(std::uint32_t i) const;

    /** Total banks across the stack. */
    std::uint32_t totalBanks() const;

    /** Stack capacity in bytes. */
    std::uint64_t capacityBytes() const;

    /** Peak external data bandwidth of the stack in bytes/second. */
    double peakBandwidth() const;

    /**
     * Peak *internal* (near-bank) read bandwidth in bytes/second:
     * every bank streaming a column access each tCCD_L. This is the
     * bandwidth PIM compute can harvest without touching the external
     * interface.
     */
    double peakInternalBandwidth() const;

  private:
    DramSpec _spec;
    std::vector<std::unique_ptr<PseudoChannel>> _channels;
};

} // namespace papi::dram

#endif // PAPI_DRAM_HBM_STACK_HH
