#include "dram/energy.hh"

#include "sim/logging.hh"

namespace papi::dram {

DramEnergyBreakdown
dramEnergy(const DramEnergyParams &params, std::uint64_t activations,
           std::uint64_t internal_bytes, std::uint64_t external_bytes,
           double elapsed_seconds, std::uint32_t num_channels)
{
    if (elapsed_seconds < 0.0)
        sim::fatal("dramEnergy: negative elapsed time");

    DramEnergyBreakdown out;
    out.actPre = params.actPreEnergy * static_cast<double>(activations);
    out.cellAccess = params.cellReadEnergyPerByte *
                     static_cast<double>(internal_bytes);
    out.externalIo = params.externalIoEnergyPerByte *
                     static_cast<double>(external_bytes);
    out.background = params.backgroundPowerPerChannel *
                     static_cast<double>(num_channels) * elapsed_seconds;
    return out;
}

} // namespace papi::dram
