/**
 * @file
 * Umbrella header: the complete public API of the PAPI library.
 *
 * Downstream users can include this single header; the individual
 * module headers remain available for finer-grained dependencies.
 */

#ifndef PAPI_PAPI_HH
#define PAPI_PAPI_HH

// Simulation kernel.
#include "sim/clocked.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

// HBM3 DRAM substrate.
#include "dram/address.hh"
#include "dram/bank.hh"
#include "dram/command.hh"
#include "dram/controller.hh"
#include "dram/energy.hh"
#include "dram/hbm_stack.hh"
#include "dram/pseudo_channel.hh"
#include "dram/request.hh"
#include "dram/timing.hh"

// Near-bank PIM devices.
#include "pim/area_model.hh"
#include "pim/attention_engine.hh"
#include "pim/data_layout.hh"
#include "pim/energy_model.hh"
#include "pim/gemv_engine.hh"
#include "pim/mapping.hh"
#include "pim/pim_config.hh"
#include "pim/pim_device.hh"
#include "pim/power_model.hh"
#include "pim/trace_validator.hh"

// Computation-centric processor and fabrics.
#include "gpu/gpu_config.hh"
#include "gpu/gpu_model.hh"
#include "interconnect/link.hh"

// LLM workloads.
#include "llm/arrival.hh"
#include "llm/batch.hh"
#include "llm/kernel_spec.hh"
#include "llm/kv_cache.hh"
#include "llm/model_config.hh"
#include "llm/moe.hh"
#include "llm/request.hh"
#include "llm/speculative.hh"
#include "llm/trace.hh"
#include "llm/trace_io.hh"

// PAPI core: scheduling, platforms, engines, reporting.
#include "core/ai_estimator.hh"
#include "core/config_loader.hh"
#include "core/decode_engine.hh"
#include "core/metrics.hh"
#include "core/platform.hh"
#include "core/report.hh"
#include "core/scheduler.hh"
#include "core/serving_engine.hh"
#include "core/threshold_calibrator.hh"

#endif // PAPI_PAPI_HH
