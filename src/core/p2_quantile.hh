/**
 * @file
 * Streaming quantile estimation (the P-square algorithm).
 *
 * Split out of core/metrics.hh so low-level headers (notably
 * core/serving_engine.hh, whose bounded-memory metrics embed
 * estimator instances) can use it without pulling in the
 * decode-engine reporting helpers - metrics.hh includes this header,
 * so existing includers see the same class.
 */

#ifndef PAPI_CORE_P2_QUANTILE_HH
#define PAPI_CORE_P2_QUANTILE_HH

#include <cstdint>

namespace papi::core {

/**
 * Streaming quantile estimator: the P-square algorithm of Jain &
 * Chlamtac (CACM 1985), five markers, O(1) memory and O(1) per
 * observation. This is what lets bounded-memory serving metrics
 * (core::ServingOptions::recordCapacity) report latency percentiles
 * over million-request streams without retaining per-request
 * records.
 *
 * Below six observations the estimate is *exact* under the
 * repo-wide percentileSorted() convention (idx = floor(q*(n-1)) on
 * the ascending sample); from the sixth observation on the markers
 * adapt via the P-square parabolic update and value() is an
 * approximation whose error shrinks with the sample (typically well
 * under 1% of the distribution's scale for smooth distributions).
 * Fully deterministic: the estimate depends only on the observation
 * sequence, so per-replica instances fed in simulation order stay
 * byte-identical across cluster worker counts.
 */
class P2Quantile
{
  public:
    /** @param q Target quantile in [0, 1] (e.g. 0.99 for p99). */
    explicit P2Quantile(double q);

    /** Fold one observation into the estimate. */
    void add(double x);

    /** Current quantile estimate; NaN when no observation yet. */
    double value() const;

    /** Observations folded in so far. */
    std::uint64_t count() const { return _count; }

    /** The target quantile this instance estimates. */
    double quantile() const { return _q; }

    /** P-square marker count. The algorithm is DEFINED for exactly
     *  five markers (min, q/2, q, (1+q)/2, max): the parabolic
     *  update's neighbor indexing, the exact-below-six regime, and
     *  the desired-position increments all assume it. */
    static constexpr int kMarkers = 5;

  private:
    double _q;
    std::uint64_t _count = 0;
    double _height[kMarkers] = {};  ///< Marker heights (q_i).
    double _pos[kMarkers] = {};     ///< Actual positions (n_i).
    double _desired[kMarkers] = {}; ///< Desired positions (n'_i).
    double _inc[kMarkers] = {};     ///< Position increments (dn'_i).

    // The update loops in metrics.cc hardcode neighbor indices
    // (m-1, m, m+1 for m in 1..3) and the extremes 0 and 4; this
    // pins the array extents to that literal structure.
    static_assert(sizeof(_height) == kMarkers * sizeof(double) &&
                      sizeof(_pos) == sizeof(_height) &&
                      sizeof(_desired) == sizeof(_height) &&
                      sizeof(_inc) == sizeof(_height),
                  "P-square is a five-marker algorithm; the marker "
                  "arrays cannot be resized without rederiving the "
                  "update rules");
};

} // namespace papi::core

#endif // PAPI_CORE_P2_QUANTILE_HH
