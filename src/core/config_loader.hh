/**
 * @file
 * Config-driven platform construction.
 *
 * Benchmarks and examples can override platform parameters without
 * recompiling: start from a named factory and apply dotted-key
 * overrides from a sim::Config (settable from "key=value" command
 * line arguments or a config file).
 *
 * Recognized keys:
 *   platform              papi | a100+attacc | a100+hbm-pim |
 *                         attacc-only | pim-only-papi
 *   num_gpus              GPUs in the tensor-parallel group
 *   num_fc_devices        FC-weight PIM/HBM devices
 *   num_attn_devices      Attention PIM devices
 *   fc_policy             always-gpu | always-pim | dynamic | oracle
 *   fc_dispatch           explicit FC dispatch policy, overriding
 *                         fc_policy: "static:<target>",
 *                         "threshold:<below>-><above>", or
 *                         "oracle:<t1>,<t2>,..." over the registry
 *                         target names (gpu, fc-pim, attn-pim)
 *   attn_dispatch         attention-phase dispatch policy (static or
 *                         oracle; threshold is fc-only - no runtime
 *                         alpha is plumbed for other phases)
 *   prefill_dispatch      prefill-phase dispatch policy (same rules
 *                         as attn_dispatch)
 *   attn_fabric           pcie5 | cxl2 | nvlink
 *   fc_fabric_links       parallel links on the FC fabric
 *   attn_fabric_links     parallel links on the attention fabric
 *   gpu.peak_tflops       per-GPU FP16 peak
 *   gpu.mem_bandwidth_gbs per-GPU HBM bandwidth
 *   fc_pim.fpus_per_group / fc_pim.banks_per_group   FC-PIM xPyB
 *   attn_pim.fpus_per_group / attn_pim.banks_per_group
 */

#ifndef PAPI_CORE_CONFIG_LOADER_HH
#define PAPI_CORE_CONFIG_LOADER_HH

#include <string>

#include "core/platform.hh"
#include "sim/config.hh"

namespace papi::core {

/** Factory lookup by platform name; fatal on unknown names. */
PlatformConfig platformConfigByName(const std::string &name);

/** Build a PlatformConfig from a sim::Config (see key list above). */
PlatformConfig platformFromConfig(const sim::Config &config);

/**
 * Load "key=value" lines (# comments and blank lines ignored) from
 * a file into a sim::Config. Fatal if the file cannot be read.
 */
sim::Config loadConfigFile(const std::string &path);

} // namespace papi::core

#endif // PAPI_CORE_CONFIG_LOADER_HH
