/**
 * @file
 * Structure-of-arrays per-request state of the live serving batch.
 *
 * ServingSim's hot loops - the per-iteration context-sum / chunk-
 * budget walk, the advance-and-retire pass, the KV-headroom gates -
 * used to chase a std::vector<ActiveRequest> of 96-byte structs, so
 * every pass touched far more cache than it used and none of it
 * vectorized. BatchState flattens that state into parallel plain-
 * old-data arrays, one per field, kept in ADMISSION ORDER (ascending
 * admitSeq): hot passes become contiguous branch-light loops over
 * exactly the fields they read, which GCC autovectorizes (see
 * docs/ARCHITECTURE.md for the pass-by-pass walkthrough), and the
 * admission-order invariant keeps every ordering the scalar loops
 * defined - chunk budgets drain oldest-first by index, the
 * preemption victim (youngest admitted) is simply the last element,
 * and retirement compacts in place without reordering survivors.
 *
 * The arrays are public on purpose: ServingSim's loops index them
 * directly. The mutating helpers (push / popBack / moveTo /
 * truncate) keep the columns aligned; everything else is plain
 * array arithmetic.
 */

#ifndef PAPI_CORE_BATCH_STATE_HH
#define PAPI_CORE_BATCH_STATE_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "llm/request.hh"

namespace papi::core {

/**
 * One live request's state gathered back into a struct - the
 * interchange format for the cold paths that move requests in and
 * out of the batch (admission, preemption parking, crash harvest,
 * prefill handoff). Field-for-field the old ActiveRequest, plus the
 * KV block count the SoA headroom gate tracks in-line.
 */
struct ActiveSnapshot
{
    llm::Request request;        ///< Generation progress.
    double arrivalSeconds = 0.0; ///< From the TimedRequest.
    double admissionSeconds = 0.0;  ///< Admission decision time.
    double firstTokenSeconds = 0.0; ///< First advancing iteration.
    bool firstTokenSeen = false;    ///< firstTokenSeconds valid.
    /** Chunked mode: prefill tokens still to process before this
     *  request can decode (0 = decoding). */
    std::uint32_t prefillRemaining = 0;
    /** KV tokens materialized (preemption mode accounting). */
    std::uint32_t kvTokens = 0;
    /** Global admission sequence; the preemption victim order
     *  (youngest admitted evicts first). */
    std::uint64_t admitSeq = 0;
    std::uint32_t preemptions = 0; ///< Evictions suffered so far.
    double stallSeconds = 0.0;     ///< Total time spent evicted.
    /** Session identity from the TimedRequest, preserved so a
     *  crash harvest can re-route with affinity intact. */
    std::uint64_t sessionId = 0;
    /** KV blocks currently held in the KvCacheManager (mirrors
     *  requestBlocks(); lets the headroom gate run without per-id
     *  hash lookups). */
    std::uint64_t kvBlocks = 0;
    /** Prompt tokens covered by a prefix-cache hit at admission
     *  (their prefill cost was skipped; the ledger invariant
     *  prefixHitTokens + miss tokens == inputLen is pinned by a
     *  test). */
    std::uint32_t prefixHitTokens = 0;
};

/** The live batch as parallel arrays in admission order. */
class BatchState
{
  public:
    // Parallel columns; index i is one request. Kept aligned by the
    // helpers below, sorted ascending by admitSeq[i].
    std::vector<std::uint64_t> id;       ///< Request id.
    std::vector<std::uint32_t> inputLen; ///< Prompt tokens.
    std::vector<std::uint32_t> outputLen; ///< Tokens until <eos>.
    std::vector<std::uint32_t> generated; ///< Output tokens so far.
    /** Chunked mode: prefill tokens left (0 = decoding). */
    std::vector<std::uint32_t> prefillRemaining;
    std::vector<std::uint32_t> kvTokens; ///< KV tokens materialized.
    std::vector<std::uint32_t> preemptions; ///< Evictions suffered.
    std::vector<std::uint64_t> admitSeq; ///< Admission sequence.
    std::vector<std::uint64_t> sessionId; ///< Session identity.
    std::vector<std::uint64_t> kvBlocks; ///< KV blocks held.
    // Shared-prefix identity (cold columns: admission, retirement,
    // crash harvest and preemption snapshots only).
    std::vector<std::uint64_t> prefixKey;  ///< Reusable-span key.
    std::vector<std::uint32_t> prefixTokens; ///< Span under the key.
    std::vector<std::uint32_t> prefixHit; ///< Hit tokens at admission.
    std::vector<std::uint64_t> insertKey; ///< Cache-on-retire key.
    std::vector<std::uint32_t> insertTokens; ///< Span to cache (0=all).
    std::vector<double> arrivalSeconds;  ///< Stream arrival time.
    std::vector<double> admissionSeconds; ///< Admission time.
    std::vector<double> firstTokenSeconds; ///< First-advance time.
    std::vector<double> stallSeconds; ///< Total time spent evicted.
    /** 1 once firstTokenSeconds is valid. */
    std::vector<std::uint8_t> firstTokenSeen;

    /** Number of parallel columns above. The layout tripwire below
     *  fails compilation the moment a column is added or removed, so
     *  push/snapshot/popBack/moveTo/truncate/clear (and this count)
     *  can never silently fall out of sync with the data members. */
    static constexpr std::size_t kColumns = 20;

    /** Live request count (every column has this many elements). */
    std::size_t size() const { return id.size(); }

    /** True when no request is live. */
    bool empty() const { return id.empty(); }

    /** Context length of request @p i (prompt + generated). */
    std::uint32_t
    contextLen(std::size_t i) const
    {
        return inputLen[i] + generated[i];
    }

    /** Reserve capacity in every column. */
    void reserve(std::size_t n);

    /** Append @p s as the new youngest element (caller guarantees
     *  s.admitSeq exceeds every present admitSeq). */
    void push(const ActiveSnapshot &s);

    /** Gather request @p i back into a snapshot (cold paths). */
    ActiveSnapshot snapshot(std::size_t i) const;

    /** Drop the last (youngest-admitted) element. */
    void popBack();

    /** Copy element @p from into slot @p to (to <= from); the
     *  retirement compaction step. No-op when equal. */
    void moveTo(std::size_t to, std::size_t from);

    /** Shrink to @p n elements (after compaction). */
    void truncate(std::size_t n);

    /** Drop every element from every column. */
    void clear();

    // ---- hot array passes (branch-light, autovectorizable) ----

    /** Sum of context lengths over the whole batch. */
    std::uint64_t ctxSum() const;

    /** True if any request is still prefilling (chunked mode). */
    bool anyPrefilling() const;

    /** Refill @p ctx with per-request context lengths, in order. */
    void refillCtx(std::vector<std::uint32_t> &ctx) const;

    /** stallSeconds[i] += s for every request (lump-sum swap stall
     *  attribution). */
    void addStallAll(double s);
};

// ---- compile-time contract ------------------------------------
// BatchState is EXACTLY its columns: no virtuals, no extra state.
// Every column is a std::vector, and all vector specializations have
// one size, so the class size counts the columns. Adding a member
// without visiting every column-aligned helper (push / snapshot /
// popBack / moveTo / truncate / clear / the hot passes) corrupts the
// batch silently at runtime - this makes it a compile error instead.
static_assert(sizeof(BatchState) ==
                  BatchState::kColumns *
                      sizeof(std::vector<std::uint64_t>),
              "BatchState gained or lost a column: update kColumns "
              "AND every column-aligned helper in batch_state.cc");

// The hot passes treat columns as flat POD arrays (autovectorized
// loads/stores, compaction by element assignment), and ActiveSnapshot
// is the memcpy-able interchange struct for the cold paths; neither
// tolerates a non-trivial element type.
static_assert(std::is_trivially_copyable_v<llm::Request> &&
                  std::is_trivially_copyable_v<ActiveSnapshot>,
              "ActiveSnapshot must stay a plain interchange struct "
              "(crash harvest and preemption parking copy it in "
              "bulk)");
static_assert(std::is_trivially_copyable_v<double> &&
                  std::numeric_limits<double>::is_iec559,
              "time columns are IEEE-754 doubles; the bitwise "
              "determinism pins compare them exactly");

} // namespace papi::core

#endif // PAPI_CORE_BATCH_STATE_HH
