/**
 * @file
 * Online arithmetic-intensity estimation (paper Section 5.1).
 *
 * PAPI's scheduler needs to know, every decode iteration, whether the
 * FC kernel is compute- or memory-bound. Computing the true
 * arithmetic intensity requires the kernel's exact FLOP and byte
 * counts; the paper observes that for large hidden dimensions the
 * exact formula (Eq. 1) collapses to AI ~= RLP x TLP (Eq. 2), which
 * costs one multiply of two runtime-known integers.
 */

#ifndef PAPI_CORE_AI_ESTIMATOR_HH
#define PAPI_CORE_AI_ESTIMATOR_HH

#include <cstdint>

#include "llm/kernel_spec.hh"
#include "llm/model_config.hh"

namespace papi::core {

/** Estimates FC-kernel arithmetic intensity from parallelism. */
class ArithmeticIntensityEstimator
{
  public:
    /** @param model Model whose FC kernels are estimated. */
    explicit ArithmeticIntensityEstimator(const llm::ModelConfig &model)
        : _model(model)
    {}

    /** The paper's runtime estimate: AI ~= RLP x TLP (Eq. 2). */
    double
    estimate(std::uint32_t rlp, std::uint32_t tlp) const
    {
        return llm::fcArithmeticIntensityEstimate(rlp, tlp);
    }

    /** The exact square-layer formula (Eq. 1). */
    double
    exact(std::uint32_t rlp, std::uint32_t tlp) const
    {
        return llm::fcArithmeticIntensityExact(_model.hiddenDim, rlp,
                                               tlp);
    }

    /**
     * The measured AI of the full FC work (all sub-kernels, all
     * layers) - the "actual" series of the paper's Fig. 6.
     */
    double
    measured(std::uint32_t rlp, std::uint32_t tlp) const
    {
        return llm::fcTotalWork(_model, rlp * tlp)
            .arithmeticIntensity();
    }

    /** Relative error of the estimate against the measured AI. */
    double
    relativeError(std::uint32_t rlp, std::uint32_t tlp) const
    {
        double m = measured(rlp, tlp);
        return m > 0.0 ? (estimate(rlp, tlp) - m) / m : 0.0;
    }

  private:
    const llm::ModelConfig &_model;
};

} // namespace papi::core

#endif // PAPI_CORE_AI_ESTIMATOR_HH
