#include "core/batch_state.hh"

namespace papi::core {

void
BatchState::reserve(std::size_t n)
{
    id.reserve(n);
    inputLen.reserve(n);
    outputLen.reserve(n);
    generated.reserve(n);
    prefillRemaining.reserve(n);
    kvTokens.reserve(n);
    preemptions.reserve(n);
    admitSeq.reserve(n);
    sessionId.reserve(n);
    kvBlocks.reserve(n);
    prefixKey.reserve(n);
    prefixTokens.reserve(n);
    prefixHit.reserve(n);
    insertKey.reserve(n);
    insertTokens.reserve(n);
    arrivalSeconds.reserve(n);
    admissionSeconds.reserve(n);
    firstTokenSeconds.reserve(n);
    stallSeconds.reserve(n);
    firstTokenSeen.reserve(n);
}

void
BatchState::push(const ActiveSnapshot &s)
{
    id.push_back(s.request.id);
    inputLen.push_back(s.request.inputLen);
    outputLen.push_back(s.request.outputLen);
    generated.push_back(s.request.generated);
    prefillRemaining.push_back(s.prefillRemaining);
    kvTokens.push_back(s.kvTokens);
    preemptions.push_back(s.preemptions);
    admitSeq.push_back(s.admitSeq);
    sessionId.push_back(s.sessionId);
    kvBlocks.push_back(s.kvBlocks);
    prefixKey.push_back(s.request.prefixKey);
    prefixTokens.push_back(s.request.prefixTokens);
    prefixHit.push_back(s.prefixHitTokens);
    insertKey.push_back(s.request.insertKey);
    insertTokens.push_back(s.request.insertTokens);
    arrivalSeconds.push_back(s.arrivalSeconds);
    admissionSeconds.push_back(s.admissionSeconds);
    firstTokenSeconds.push_back(s.firstTokenSeconds);
    stallSeconds.push_back(s.stallSeconds);
    firstTokenSeen.push_back(s.firstTokenSeen ? 1 : 0);
}

ActiveSnapshot
BatchState::snapshot(std::size_t i) const
{
    ActiveSnapshot s;
    s.request.id = id[i];
    s.request.inputLen = inputLen[i];
    s.request.outputLen = outputLen[i];
    s.request.generated = generated[i];
    s.prefillRemaining = prefillRemaining[i];
    s.kvTokens = kvTokens[i];
    s.preemptions = preemptions[i];
    s.admitSeq = admitSeq[i];
    s.sessionId = sessionId[i];
    s.kvBlocks = kvBlocks[i];
    s.request.prefixKey = prefixKey[i];
    s.request.prefixTokens = prefixTokens[i];
    s.prefixHitTokens = prefixHit[i];
    s.request.insertKey = insertKey[i];
    s.request.insertTokens = insertTokens[i];
    s.arrivalSeconds = arrivalSeconds[i];
    s.admissionSeconds = admissionSeconds[i];
    s.firstTokenSeconds = firstTokenSeconds[i];
    s.stallSeconds = stallSeconds[i];
    s.firstTokenSeen = firstTokenSeen[i] != 0;
    return s;
}

void
BatchState::popBack()
{
    id.pop_back();
    inputLen.pop_back();
    outputLen.pop_back();
    generated.pop_back();
    prefillRemaining.pop_back();
    kvTokens.pop_back();
    preemptions.pop_back();
    admitSeq.pop_back();
    sessionId.pop_back();
    kvBlocks.pop_back();
    prefixKey.pop_back();
    prefixTokens.pop_back();
    prefixHit.pop_back();
    insertKey.pop_back();
    insertTokens.pop_back();
    arrivalSeconds.pop_back();
    admissionSeconds.pop_back();
    firstTokenSeconds.pop_back();
    stallSeconds.pop_back();
    firstTokenSeen.pop_back();
}

void
BatchState::moveTo(std::size_t to, std::size_t from)
{
    if (to == from)
        return;
    id[to] = id[from];
    inputLen[to] = inputLen[from];
    outputLen[to] = outputLen[from];
    generated[to] = generated[from];
    prefillRemaining[to] = prefillRemaining[from];
    kvTokens[to] = kvTokens[from];
    preemptions[to] = preemptions[from];
    admitSeq[to] = admitSeq[from];
    sessionId[to] = sessionId[from];
    kvBlocks[to] = kvBlocks[from];
    prefixKey[to] = prefixKey[from];
    prefixTokens[to] = prefixTokens[from];
    prefixHit[to] = prefixHit[from];
    insertKey[to] = insertKey[from];
    insertTokens[to] = insertTokens[from];
    arrivalSeconds[to] = arrivalSeconds[from];
    admissionSeconds[to] = admissionSeconds[from];
    firstTokenSeconds[to] = firstTokenSeconds[from];
    stallSeconds[to] = stallSeconds[from];
    firstTokenSeen[to] = firstTokenSeen[from];
}

void
BatchState::truncate(std::size_t n)
{
    id.resize(n);
    inputLen.resize(n);
    outputLen.resize(n);
    generated.resize(n);
    prefillRemaining.resize(n);
    kvTokens.resize(n);
    preemptions.resize(n);
    admitSeq.resize(n);
    sessionId.resize(n);
    kvBlocks.resize(n);
    prefixKey.resize(n);
    prefixTokens.resize(n);
    prefixHit.resize(n);
    insertKey.resize(n);
    insertTokens.resize(n);
    arrivalSeconds.resize(n);
    admissionSeconds.resize(n);
    firstTokenSeconds.resize(n);
    stallSeconds.resize(n);
    firstTokenSeen.resize(n);
}

void
BatchState::clear()
{
    truncate(0);
}

std::uint64_t
BatchState::ctxSum() const
{
    const std::size_t n = size();
    const std::uint32_t *in = inputLen.data();
    const std::uint32_t *gen = generated.data();
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i)
        sum += in[i] + gen[i];
    return sum;
}

bool
BatchState::anyPrefilling() const
{
    const std::size_t n = size();
    const std::uint32_t *pre = prefillRemaining.data();
    std::uint32_t any = 0;
    for (std::size_t i = 0; i < n; ++i)
        any |= pre[i];
    return any != 0;
}

void
BatchState::refillCtx(std::vector<std::uint32_t> &ctx) const
{
    const std::size_t n = size();
    ctx.resize(n);
    const std::uint32_t *in = inputLen.data();
    const std::uint32_t *gen = generated.data();
    std::uint32_t *out = ctx.data();
    for (std::size_t i = 0; i < n; ++i)
        out[i] = in[i] + gen[i];
}

void
BatchState::addStallAll(double s)
{
    const std::size_t n = size();
    double *stall = stallSeconds.data();
    for (std::size_t i = 0; i < n; ++i)
        stall[i] += s;
}

} // namespace papi::core
