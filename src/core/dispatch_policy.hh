/**
 * @file
 * Per-phase dispatch policies over a platform's execution-target
 * registry.
 *
 * The paper's FC scheduling policies (always-GPU, always-PIM, the
 * AI-threshold dynamic rule of Section 5, and the hindsight oracle)
 * generalize to three rules over an arbitrary candidate target list:
 *
 *  - Static: pin the phase to one named target.
 *  - Threshold: the paper's rule between any target pair - AI
 *    estimates strictly greater than alpha run on the compute-bound
 *    side of the pair, everything else on the memory-bound side.
 *  - Oracle: race the candidates' cost models and pick the fastest
 *    (the Fig. 11/12 ablation's hindsight scheduler).
 *
 * A DispatchPolicy is the declarative form (rule + target names)
 * carried by PlatformConfig per phase; a PhaseDispatcher is that
 * policy bound to a concrete Platform registry plus the runtime
 * threshold alpha, making per-iteration picks.
 *
 * The legacy two-way vocabulary (FcTarget/FcPolicy) lives here too:
 * it remains the paper-facing shorthand that factories, benchmarks,
 * and reports speak, translated into registry policies at Platform
 * construction.
 */

#ifndef PAPI_CORE_DISPATCH_POLICY_HH
#define PAPI_CORE_DISPATCH_POLICY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/exec_target.hh"

namespace papi::core {

// ------------------------------------------------- legacy vocabulary

/** Where an FC kernel may execute (the paper's two-way view). */
enum class FcTarget : std::uint8_t
{
    Gpu,   ///< The GPU's processing units.
    FcPim, ///< The near-bank FC-PIM devices.
};

/** FC scheduling policy of a platform (paper-level shorthand). */
enum class FcPolicy : std::uint8_t
{
    AlwaysGpu, ///< Static: FC on the GPU (AttAcc/HBM-PIM baselines).
    AlwaysPim, ///< Static: FC on PIM (AttAcc-only, PIM-only PAPI).
    Dynamic,   ///< PAPI: AI-threshold dynamic scheduling.
    Oracle,    ///< Ablation: pick the faster target with hindsight.
};

/** Printable policy name ("always-gpu", "dynamic", ...). */
const char *fcPolicyName(FcPolicy policy);
/** Printable target name ("gpu" or "fc-pim"). */
const char *fcTargetName(FcTarget target);
/** Inverse of fcPolicyName; fatal on unknown names. */
FcPolicy fcPolicyFromName(const std::string &name);
/** Inverse of fcTargetName; fatal on unknown names. */
FcTarget fcTargetFromName(const std::string &name);

// -------------------------------------------------- dispatch policy

/** How a phase picks among its candidate targets. */
enum class DispatchRule : std::uint8_t
{
    Static,    ///< Always the first (pinned) candidate.
    Threshold, ///< AI-threshold rule between a target pair.
    Oracle,    ///< Fastest candidate by the cost model (hindsight).
};

/** Printable rule name ("static", "threshold", "oracle"). */
const char *dispatchRuleName(DispatchRule rule);
/** Inverse of dispatchRuleName; fatal on unknown names. */
DispatchRule dispatchRuleFromName(const std::string &name);

/**
 * Declarative per-phase policy: a rule over candidate target names,
 * resolved against the owning platform's registry at construction.
 *
 *  - Static: targets = { pin }.
 *  - Threshold: targets = { below, above } - the memory-bound side
 *    (AI <= alpha) first, the compute-bound side second.
 *  - Oracle: targets = the raced candidates (two or more).
 *
 * An empty target list means "unset"; Platform derives a default
 * from the legacy FcPolicy (FC), the attention devices (attention),
 * or GPU presence (prefill).
 */
struct DispatchPolicy
{
    DispatchRule rule = DispatchRule::Static; ///< Selection rule.
    std::vector<std::string> targets;         ///< Candidate names.

    /** True if the policy was explicitly set (non-empty targets). */
    bool configured() const { return !targets.empty(); }
};

/** Static pin to one named target. */
DispatchPolicy staticDispatch(std::string target);
/** Threshold rule between @p below (AI <= alpha) and @p above. */
DispatchPolicy thresholdDispatch(std::string below, std::string above);
/** Oracle race over @p targets. */
DispatchPolicy oracleDispatch(std::vector<std::string> targets);
/** Translate the paper-level FcPolicy into a registry policy. */
DispatchPolicy dispatchFromFcPolicy(FcPolicy policy);

/**
 * Printable round-trippable form: "static:gpu",
 * "threshold:fc-pim->gpu", "oracle:gpu,fc-pim".
 */
std::string dispatchPolicyName(const DispatchPolicy &policy);
/** Inverse of dispatchPolicyName; fatal on malformed strings. */
DispatchPolicy dispatchPolicyFromName(const std::string &name);

// ----------------------------------------------- threshold decision

/**
 * Pluggable arithmetic-intensity estimate for threshold dispatch.
 * The default is the paper's Eq. 2 (RLP x TLP); MoE deployments
 * supply llm::moeFcIntensityEstimate (Section 6.5).
 */
using AiEstimateFn =
    std::function<double(std::uint32_t rlp, std::uint32_t tlp)>;

/** The pair of targets a calibrated threshold separates. */
struct TargetPair
{
    TargetId below = 0; ///< Memory-bound side (AI <= alpha).
    TargetId above = 1; ///< Compute-bound side (AI > alpha).
};

/** Outcome of one dispatch pick. */
struct DispatchDecision
{
    TargetId target = 0;      ///< The selected target.
    double estimatedAi = 0.0; ///< AI estimate (threshold rule only).
};

/**
 * The paper's Section 5 rule, shared by DynamicScheduler and
 * PhaseDispatcher: estimate AI from the parallelism and route
 * estimates strictly greater than @p alpha to @p pair.above.
 */
DispatchDecision thresholdDecision(double alpha, std::uint32_t rlp,
                                   std::uint32_t tlp,
                                   const AiEstimateFn &estimator,
                                   TargetPair pair);

// --------------------------------------------------- bound dispatch

class Platform;

/**
 * A DispatchPolicy bound to a platform's registry: resolves the
 * candidate names to TargetIds once and makes per-iteration picks.
 * Copyable and cheap; engines build one per phase per run (the
 * threshold alpha is a runtime parameter, not a platform property).
 */
class PhaseDispatcher
{
  public:
    /**
     * Bind @p platform's policy for @p phase.
     * @param alpha Threshold for the Threshold rule (ignored by
     *        Static and Oracle).
     * @param estimator AI estimate override (Threshold rule).
     */
    PhaseDispatcher(const Platform &platform, Phase phase,
                    double alpha = 0.0, AiEstimateFn estimator = {});

    /** The phase this dispatcher serves. */
    Phase phase() const { return _phase; }
    /** The policy's selection rule. */
    DispatchRule rule() const { return _rule; }
    /** The resolved candidate ids, in policy order. */
    const std::vector<TargetId> &candidates() const { return _ids; }
    /** The threshold (Threshold rule only). */
    double alpha() const { return _alpha; }
    /** The threshold pair (Threshold rule only; fatal otherwise). */
    TargetPair pair() const;

    /**
     * Pick the FC-phase target for a decode iteration.
     * @param rlp Live request-level parallelism (AI estimate).
     * @param tlp Speculation length (AI estimate).
     * @param tokens FC token count actually executed (oracle cost
     *        queries); differs from rlp*tlp on padded static batches.
     */
    DispatchDecision select(const llm::ModelConfig &model,
                            std::uint32_t rlp, std::uint32_t tlp,
                            std::uint32_t tokens) const;

    /** Pick the attention-phase target over live contexts. */
    DispatchDecision
    selectAttention(const llm::ModelConfig &model,
                    const std::vector<std::uint32_t> &ctx_lens,
                    std::uint32_t tlp) const;

    /** Pick the prefill target over admitted prompt lengths. */
    DispatchDecision
    selectPrefill(const llm::ModelConfig &model,
                  const std::vector<std::uint32_t> &input_lens) const;

  private:
    const Platform *_platform;
    Phase _phase;
    DispatchRule _rule;
    std::vector<TargetId> _ids;
    double _alpha;
    AiEstimateFn _estimator;
};

} // namespace papi::core

#endif // PAPI_CORE_DISPATCH_POLICY_HH
