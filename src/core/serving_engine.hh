/**
 * @file
 * Online serving simulation with mixed continuous batching.
 *
 * ServingSim is the single simulation core for every execution shape
 * in the repository:
 *
 *  - ServingEngine::run() serves a complete arrival stream on one
 *    platform, the single-platform path used by tests and figure
 *    benchmarks (event-driven via core::ServingEventDriver in
 *    pre-delivered mode).
 *  - cluster::ClusterEngine composes one ServingSim per platform
 *    group on a shared sim::EventQueue, delivering arrivals
 *    incrementally through a front-end router
 *    (core::ServingEventDriver in streamed mode). The event order
 *    reproduces the operation sequence of the original monolithic
 *    loop exactly, so single-platform results are bit-identical
 *    across both paths.
 *  - DecodeEngine::run() (the paper's static-batch evaluation) is an
 *    adapter over the same core: a static batch is a stream whose
 *    requests all arrive at t=0 under batch-level admission with no
 *    further arrivals. StaticBatchMode carries the decode-loop
 *    semantics the arrival-driven path does not use (padded FC work
 *    on non-RLP-tracking baselines, phase-overlap hiding, the
 *    speculative draft charge, per-iteration traces).
 *
 * The FC phase target of each iteration is picked by the platform's
 * per-phase DispatchPolicy bound into a PhaseDispatcher (static pin,
 * AI-threshold pair, or oracle race over the target registry);
 * runtime RLP rises on admissions and falls on <eos>, so PAPI's
 * threshold rule reschedules in both directions.
 *
 * Two serving-path extensions (off by default; both excluded from
 * the static-batch adapter): chunked prefill
 * (ServingOptions::prefillChunkTokens) splits each admitted prompt
 * across iterations so decode is never starved, and KV-pressure
 * preemption (ServingOptions::preemptOnKvPressure) switches the KV
 * gate from worst-case reservation to on-demand growth with
 * evict-youngest/resume semantics (KvPreemptPolicy).
 */

#ifndef PAPI_CORE_SERVING_ENGINE_HH
#define PAPI_CORE_SERVING_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "core/batch_state.hh"
#include "core/dispatch_policy.hh"
#include "core/p2_quantile.hh"
#include "core/platform.hh"
#include "llm/arrival.hh"
#include "llm/kv_cache.hh"
#include "llm/model_config.hh"
#include "llm/speculative.hh"
#include "sim/rng.hh"

namespace papi::core {

/** When new requests may join the running batch. */
enum class AdmissionPolicy : std::uint8_t
{
    /** Mixed continuous batching: join at any iteration boundary. */
    TokenLevel,
    /**
     * Static batching with dynamic admission (paper Section 3.2(c)):
     * a new batch forms only after the current one drains, starting
     * when it is full or a wait timeout expires.
     */
    BatchLevel,
};

/**
 * A replica's role in a disaggregated prefill/decode deployment
 * (DistServe / Splitwise style). Colocated replicas run the full
 * request lifecycle and are byte-identical to the pre-disaggregation
 * engine. A Prefill replica runs only the prompt phase: when a
 * request's prefill completes, the request is retired into a handoff
 * queue (see HandoffRecord) with its KV footprint, for the owning
 * driver to migrate to a decode replica over the transfer fabric. A
 * Decode replica accepts such migrated requests through
 * deliverPrefilled() and admits them with their context already
 * materialized - no prefill charge, only the KV reservation.
 */
enum class ServingRole : std::uint8_t
{
    Colocated, ///< Full lifecycle on one replica (the default).
    Prefill,   ///< Prompt phase only; hand off at prefill completion.
    Decode,    ///< Decode phase only; admits migrated prefills.
};

/** What happens to a request's KV state when it is preempted. */
enum class KvPreemptPolicy : std::uint8_t
{
    /**
     * Drop the KV blocks entirely; on resume, re-prefill the whole
     * context (prompt plus tokens generated so far). Costs compute,
     * frees the most capacity (vLLM's recompute policy).
     */
    Recompute,
    /**
     * Swap the KV blocks out over the attention fabric and swap
     * them back on resume (charged at @ref
     * ServingOptions::kvSwapGBps). Costs communication instead of
     * recompute; device blocks are freed while swapped out.
     */
    SwapRestore,
};

/** Serving-run configuration. */
struct ServingOptions
{
    /** Maximum concurrent requests (SLO-driven initial-RLP cap). */
    std::uint32_t maxRlp = 64;
    /** Scheduling threshold (from ThresholdCalibrator). */
    double alpha = 32.0;
    /** RNG seed for speculative acceptance. */
    std::uint64_t seed = 1;
    /** Admission policy. */
    AdmissionPolicy admission = AdmissionPolicy::TokenLevel;
    /**
     * Batch-level only: wait at most this long after the first
     * pending arrival for the batch to fill before starting.
     */
    double batchTimeoutSeconds = 0.1;

    /**
     * Continuous batching with chunked prefill: when non-zero, an
     * admitted request's prompt is processed at most this many
     * tokens per decode iteration (shared budget across all
     * still-prefilling requests, oldest admission first) instead of
     * as one synchronous charge at admission - so a long prompt
     * never stalls the decoding batch. 0 keeps the legacy
     * stop-the-world prefill.
     */
    std::uint32_t prefillChunkTokens = 0;
    /**
     * KV-pressure preemption: when true, admission reserves only a
     * request's *current* KV footprint (not the worst case) and the
     * cache grows on demand as decoding extends contexts; when the
     * next iteration's worst-case growth no longer fits, the
     * youngest-admitted requests are evicted (per @ref
     * preemptPolicy) and re-admitted once capacity frees up. When
     * false (default), the legacy worst-case reservation makes
     * pressure impossible.
     */
    bool preemptOnKvPressure = false;
    /** Eviction/resume policy used under @ref preemptOnKvPressure. */
    KvPreemptPolicy preemptPolicy = KvPreemptPolicy::Recompute;
    /** KV swap-out/in bandwidth for KvPreemptPolicy::SwapRestore. */
    double kvSwapGBps = 64.0;
    /**
     * Test/bench hook: override the per-device Attn-PIM KV capacity
     * (bytes) so KV pressure can be forced without perturbing the
     * platform's timing model. 0 = use the platform's capacity.
     */
    std::uint64_t kvCapacityOverrideBytes = 0;
    /**
     * Disaggregated-serving role of this replica (see ServingRole).
     * Non-colocated roles require token-level admission and are
     * incompatible with StaticBatchMode; Prefill additionally
     * excludes KV preemption (a prefill replica frees its KV at
     * handoff, so pressure never builds across requests).
     */
    ServingRole role = ServingRole::Colocated;
    /**
     * Time-to-first-token deadline, seconds after arrival (0 = no
     * deadline). When set, admission sheds queued requests whose
     * deadline has already passed instead of spending compute on
     * work no user is waiting for (SLO-aware load shedding); the
     * cluster layer also scores SLO attainment against it. Serving
     * path only (excluded from static-batch runs).
     */
    double deadlineSeconds = 0.0;
    /**
     * Slot count of the direct-mapped decode-plan memo (power of
     * two). A steady-state decode episode visits one key per
     * iteration (ctx_sum strictly grows), so a recurring batch
     * shape only hits when the whole episode's key set survives
     * between repeats; size past the longest expected decode run.
     * The default covers multi-thousand-iteration episodes at
     * ~1 MB per simulator; long-episode benches raise it.
     */
    std::uint32_t planMemoSlots = 8192;
    /**
     * Shared prefix caching (llm::KvCacheManager's prefix layer):
     * when true, a fresh request whose prefixKey matches a cached
     * entry skips the prefill cost of the cached whole-block span
     * (chunked prefill starts at the first uncached token; the
     * non-chunked path charges only the uncached suffix as an
     * incremental chunk), and retiring requests publish their final
     * context under their insertKey. The request still allocates
     * its FULL private KV footprint - only prefill COMPUTE is
     * skipped - so admission gating and growth arithmetic are
     * unchanged. Cached blocks are reclaimed LRU-first under KV
     * pressure, before any preemption (evict-before-preempt). When
     * false (default), every run is byte-identical to the
     * pre-prefix-cache engine (pinned).
     */
    bool prefixCacheEnabled = false;
    /**
     * Bounded-memory metrics: when non-zero, at most this many
     * RequestRecords (and latency samples) are retained; the
     * retirement path additionally folds every request into exact
     * streaming sums and P-square percentile estimators (see
     * ServingStreamStats). While the record count stays below the
     * cap, finish() and records() are byte-identical to the
     * unbounded run; past the cap, records() is a truncated prefix
     * sample and aggregate percentiles come from the estimators.
     * 0 (default) retains everything, bit-identical to the
     * pre-capacity engine.
     */
    std::uint64_t recordCapacity = 0;
};

/** Per-component time/energy accumulation of one run. */
struct RunBreakdown
{
    double prefillSeconds = 0.0; ///< Prompt-processing phase.
    double fcSeconds = 0.0;   ///< Decode FC (GEMV only).
    double attnSeconds = 0.0; ///< Decode attention (GEMV+softmax).
    double commSeconds = 0.0; ///< All activation/KV movement.
    double otherSeconds = 0.0; ///< Layernorm/residual/sampling.

    /** Sum of all components, end to end. */
    double
    totalSeconds() const
    {
        return prefillSeconds + fcSeconds + attnSeconds + commSeconds +
               otherSeconds;
    }
};

/** One row of the optional per-iteration schedule trace. */
struct IterationTrace
{
    std::uint64_t iteration = 0; ///< Iteration index (1-based).
    std::uint32_t rlp = 0;       ///< Live request-level parallelism.
    std::uint32_t tlp = 0;       ///< Speculation length.
    double estimatedAi = 0.0;    ///< Scheduler's RLP x TLP estimate.
    TargetId targetId = 0;       ///< Chosen FC registry target.
    FcTarget fcTarget = FcTarget::Gpu; ///< Two-way view of targetId.
    bool rescheduled = false;    ///< Target changed vs last iteration.
    std::uint32_t eosCount = 0;  ///< Requests that finished here.
    double iterationSeconds = 0.0; ///< Wall time of the iteration.
};

/** Outcome of a serving run. */
struct ServingResult
{
    double makespanSeconds = 0.0; ///< First arrival to last finish.
    double energyJoules = 0.0;    ///< Total device + fabric energy.
    std::uint64_t iterations = 0; ///< Decode iterations executed.
    std::uint64_t tokensGenerated = 0; ///< Output tokens produced.
    std::uint64_t admissions = 0; ///< Requests admitted (prefilled).
    std::uint64_t reschedules = 0; ///< FC target changes.
    std::uint64_t reschedulesToGpu = 0; ///< PIM -> GPU transitions.
    std::uint64_t fcOnGpuIterations = 0; ///< Iterations with FC on GPU.
    std::uint64_t fcOnPimIterations = 0; ///< Iterations with FC on PIM.

    double meanLatencySeconds = 0.0; ///< Arrival to completion.
    double p95LatencySeconds = 0.0;  ///< Tail of the same population.
    double meanRlp = 0.0; ///< Time-weighted mean live RLP.
    /** Peak fraction of the Attn-PIM KV pool in use. */
    double peakKvUtilization = 0.0;

    /** KV-pressure evictions performed (preemption mode only). */
    std::uint64_t preemptions = 0;
    /** Preempted requests re-admitted (each finishes eventually). */
    std::uint64_t resumes = 0;
    /** Context tokens re-prefilled by Recompute resumes. */
    std::uint64_t recomputedPrefillTokens = 0;
    /**
     * Direct eviction stall: seconds summed over every
     * preempt-to-re-admission gap (the stall a request suffers
     * while parked off-device).
     */
    double evictionStallSeconds = 0.0;
    /**
     * SwapRestore-induced stall: every lump-sum KV swap-out/in
     * advance delays the whole live batch, not just the swapped
     * request; this accumulates (lump seconds x delayed requests)
     * so preemption-stall percentiles stay conservative. The
     * accounting identity - the sum of RequestRecord::stallSeconds
     * over a run equals evictionStallSeconds +
     * swapInducedStallSeconds - is pinned by a test.
     */
    double swapInducedStallSeconds = 0.0;
    /**
     * Prefill-role replicas: requests whose prefill completed here
     * and were retired into the handoff queue for KV migration.
     */
    std::uint64_t handoffs = 0;
    /** Prompt tokens prefilled and handed off (Prefill role). */
    std::uint64_t prefillHandoffTokens = 0;
    /** Queued requests shed because their TTFT deadline passed
     *  before admission (ServingOptions::deadlineSeconds). */
    std::uint64_t shedRequests = 0;
    /** Prefix-cache probes at admission (keyed fresh requests;
     *  ServingOptions::prefixCacheEnabled). */
    std::uint64_t prefixLookups = 0;
    /** Probes that found a non-empty cached whole-block span. */
    std::uint64_t prefixHits = 0;
    /** Prompt tokens whose prefill cost was skipped by hits. The
     *  per-run ledger prefixHitTokens + prefixMissTokens == total
     *  admitted fresh prompt tokens is pinned by a test. */
    std::uint64_t prefixHitTokens = 0;
    /** Prompt tokens prefilled at full cost (the miss side). */
    std::uint64_t prefixMissTokens = 0;
    /** Bytes of cached prefix blocks reclaimed under KV pressure
     *  (llm::KvCacheManager::prefixEvictedBytes at finish). */
    std::uint64_t prefixEvictedBytes = 0;
    /**
     * Request ids in eviction order - the determinism witness for
     * KV-pressure runs (two fixed-seed runs must produce identical
     * sequences).
     */
    std::vector<std::uint64_t> evictionOrder;

    /** Simulated decode throughput over the run's makespan. */
    double
    throughputTokensPerSecond() const
    {
        return makespanSeconds > 0.0
                   ? static_cast<double>(tokensGenerated) /
                         makespanSeconds
                   : 0.0;
    }
};

/**
 * Per-iteration cost transform for a serving backend that is really a
 * tensor-parallel group of platforms rather than a single one.
 *
 * A trivial model (the default) leaves the single-platform arithmetic
 * untouched - ServingSim skips the transform entirely, keeping
 * single-platform runs bit-identical. A non-trivial model divides the
 * kernel-phase time by @ref computeScale (ideal intra-group scaling
 * of the FC and attention phases) and adds per-iteration communication
 * cost (the group's all-reduce; see cluster::TensorParallelModel).
 * Device energy is left unscaled - the same arithmetic work is done,
 * just spread over the group - and communication energy is added on
 * top.
 */
struct IterationCostModel
{
    /** Kernel-phase (FC + attention, and prefill) time divisor. */
    double computeScale = 1.0;
    /** Extra seconds per decode iteration of @p tokens tokens. */
    std::function<double(std::uint32_t tokens)> extraSeconds;
    /** Extra joules per decode iteration of @p tokens tokens. */
    std::function<double(std::uint32_t tokens)> extraJoules;

    /** True if the model changes nothing (single-platform backend). */
    bool
    trivial() const
    {
        // detlint: allow(float-eq): 1.0 is the configured identity
        // sentinel (the default member value), never a computed
        // scale, so exact comparison is the correct fast-path test.
        return computeScale == 1.0 && !extraSeconds && !extraJoules;
    }
};

/**
 * DecodeEngine-compat extensions: drive ServingSim as the paper's
 * static-batch decode loop. With @ref enabled the simulation admits
 * the whole t=0 batch once, pads the FC token count to the initial
 * RLP on platforms without runtime-RLP tracking (the paper's
 * Shortcoming 1), applies the platform's phase-overlap hiding and
 * the speculative draft charge, optionally skips the prefill charge,
 * bypasses the KV admission gate (DecodeEngine::run validates fit up
 * front instead), and can record a per-iteration trace. All of this
 * is off on the arrival-driven serving path, whose results remain
 * bit-identical to the pre-fold ServingEngine.
 */
struct StaticBatchMode
{
    bool enabled = false;      ///< Static-batch semantics on/off.
    bool includePrefill = true; ///< Charge the prefill phase.
    bool recordTrace = false;  ///< Record IterationTrace rows.
};

/**
 * Timeline of one served request, recorded by ServingSim for
 * latency-percentile aggregation (TTFT/TPOT/queueing delay at the
 * cluster level).
 */
struct RequestRecord
{
    std::uint64_t id = 0;        ///< The request's id.
    double arrivalSeconds = 0.0; ///< When it entered the system.
    /** Admission decision time (end of the pending-queue wait). */
    double admissionSeconds = 0.0;
    /**
     * End of the decode iteration that produced the request's first
     * output token (prefill itself generates no output tokens in
     * this simulator's accounting).
     */
    double firstTokenSeconds = 0.0;
    /** Final token (<eos>) produced; request retired. */
    double finishSeconds = 0.0;
    std::uint32_t outputTokens = 0; ///< Tokens generated in total.
    /** Times this request was evicted under KV pressure. */
    std::uint32_t preemptions = 0;
    /** Total seconds spent evicted (preempt to re-admission). */
    double stallSeconds = 0.0;
    /** Prompt tokens covered by a prefix-cache hit at admission
     *  (prefill cost skipped). */
    std::uint32_t prefixHitTokens = 0;
    /** Prompt tokens prefilled at full cost; hit + miss ==
     *  inputLen by construction (the ledger pin). */
    std::uint32_t prefixMissTokens = 0;

    /** Queueing delay: arrival to admission decision. */
    double
    queueingSeconds() const
    {
        return admissionSeconds - arrivalSeconds;
    }

    /**
     * Time to first token: arrival to first output token (end of
     * the first advancing decode iteration).
     */
    double
    ttftSeconds() const
    {
        return firstTokenSeconds - arrivalSeconds;
    }

    /** Time per output token over the decode phase. */
    double
    tpotSeconds() const
    {
        return outputTokens > 1
                   ? (finishSeconds - firstTokenSeconds) /
                         static_cast<double>(outputTokens - 1)
                   : 0.0;
    }
};

/**
 * A request retired from a Prefill-role replica with its prompt
 * fully processed, awaiting KV migration to a decode replica. The
 * prefill replica's KV blocks are released when the record is
 * created (the transfer fabric buffers the data); the recorded
 * block/byte footprint is what the migration is costed on.
 */
struct HandoffRecord
{
    /** The request, with its ORIGINAL arrival time preserved (the
     *  decode replica's RequestRecord must span the whole
     *  prefill -> transfer -> decode pipeline). */
    llm::TimedRequest request;
    /** When the prefill completed (transfer earliest-start time). */
    double readySeconds = 0.0;
    /** KV tokens materialized by the prefill (== the prompt). */
    std::uint64_t kvTokens = 0;
    /** KV blocks held at handoff (llm::KvCacheManager granularity). */
    std::uint64_t kvBlocks = 0;
    /** Bytes the migration moves: kvBlocks x blockBytes. */
    std::uint64_t kvBytes = 0;
};

/**
 * A request harvested from a crashed replica (ServingSim::crash):
 * everything the replica held - decoding, preempted, queued, handed
 * off, or migrated-in - with generation progress reset so a recovery
 * layer can resubmit it elsewhere (or count it failed). The
 * lost-work counters price what a retry must recompute.
 */
struct LostRequest
{
    /** The request, progress reset, original arrival and session
     *  preserved (honest TTFT spans crash and retry). */
    llm::TimedRequest request;
    /** The crashed replica had invested work in it (admitted or
     *  prefilled), as opposed to merely holding it queued. */
    bool admitted = false;
    /** Output tokens that had been generated and are now lost. */
    std::uint32_t generatedLost = 0;
    /** Prompt tokens that had been prefilled and are now lost. */
    std::uint32_t prefillLostTokens = 0;
};

/** Metric order of ServingStreamStats' per-metric arrays. */
enum StreamMetric : int
{
    kStreamTtft = 0,   ///< Arrival to first token.
    kStreamTpot,       ///< Per-token decode interval.
    kStreamLatency,    ///< Arrival to completion.
    kStreamQueueing,   ///< Arrival to admission.
    kStreamStall,      ///< Seconds spent evicted.
    kStreamMetricCount ///< Array length, not a metric.
};

/**
 * Exact counters/sums plus P-square percentile estimators folded at
 * every retirement when ServingOptions::recordCapacity is set - the
 * bounded-memory replacement for per-request RequestRecords on
 * million-request streams. Updated in retirement (simulation) order,
 * so the values are byte-identical for any cluster worker count.
 * While @ref overflowed is false the full records still exist and
 * aggregation uses them (bit-identical to the unbounded run); these
 * figures take over only past the cap.
 */
struct ServingStreamStats
{
    /** recordCapacity was exceeded: records() is truncated and
     *  aggregates must come from this struct. */
    bool overflowed = false;
    /** Requests retired (ALL of them, not just the recorded). */
    std::uint64_t count = 0;
    /** Output tokens of retired requests (goodput numerator). */
    std::uint64_t outputTokens = 0;
    /** Retired requests whose TTFT met the configured deadline
     *  (only meaningful when deadlineSeconds > 0). */
    std::uint64_t deadlineMet = 0;
    /** Exact per-metric sums, indexed by StreamMetric. */
    double sums[kStreamMetricCount] = {};
    /** P-square p50 estimators, indexed by StreamMetric. */
    P2Quantile p50[kStreamMetricCount] = {
        P2Quantile(0.50), P2Quantile(0.50), P2Quantile(0.50),
        P2Quantile(0.50), P2Quantile(0.50)};
    /** P-square p95 estimators, indexed by StreamMetric. */
    P2Quantile p95[kStreamMetricCount] = {
        P2Quantile(0.95), P2Quantile(0.95), P2Quantile(0.95),
        P2Quantile(0.95), P2Quantile(0.95)};
    /** P-square p99 estimators, indexed by StreamMetric. */
    P2Quantile p99[kStreamMetricCount] = {
        P2Quantile(0.99), P2Quantile(0.99), P2Quantile(0.99),
        P2Quantile(0.99), P2Quantile(0.99)};
};

/**
 * The stepwise serving-simulation core: one platform (or one
 * tensor-parallel group) serving a stream of timed requests.
 *
 * Requests are delivered into the pending queue (all up front for a
 * standalone run, incrementally by a cluster router) and the owner
 * advances the simulation step by step:
 *
 *  - stepIdle(): no live batch; fast-forward to the next pending
 *    arrival (honouring the admission policy's wait rules) and admit.
 *  - stepDecode(): run one decode iteration over the live batch and
 *    retire finished requests. Does NOT admit, so a cluster driver
 *    can deliver arrivals that landed inside the iteration before
 *    the boundary admission runs.
 *  - admit(): the iteration-boundary admission (prefill newcomers).
 *
 * step() composes these exactly as the original monolithic loop did,
 * which is what makes single-platform results bit-identical.
 */
class ServingSim
{
  public:
    /**
     * @param platform Timing/energy model of this backend.
     * @param spec Speculative-decoding configuration (validated).
     * @param model Model being served.
     * @param options Admission and scheduling options.
     * @param cost Per-iteration transform for tensor-parallel
     *        groups; the default leaves timing untouched.
     * @param fc_estimator AI-estimate override for the FC threshold
     *        rule (MoE deployments); default is the paper's Eq. 2.
     * @param static_mode DecodeEngine-compat extensions; default off.
     */
    ServingSim(const Platform &platform,
               const llm::SpeculativeConfig &spec,
               const llm::ModelConfig &model,
               const ServingOptions &options,
               IterationCostModel cost = {},
               AiEstimateFn fc_estimator = {},
               StaticBatchMode static_mode = {});

    /**
     * Append @p request to the pending queue. Deliveries must be in
     * non-decreasing arrival order; the first delivery anchors the
     * makespan origin.
     */
    void deliver(const llm::TimedRequest &request);

    /**
     * Deliver a request whose prefill already ran on another
     * (Prefill-role) replica and whose KV arrived here at
     * @p ready_seconds (the migration-complete time), carrying
     * @p kv_tokens of materialized context (the HandoffRecord's
     * figure - the single source of truth admission reserves for).
     * The request's own arrivalSeconds keeps its original value so
     * latency records span the whole disaggregated pipeline;
     * admission eligibility and delivery ordering use
     * @p ready_seconds. Fatal on Prefill-role replicas.
     */
    void deliverPrefilled(const llm::TimedRequest &request,
                          double ready_seconds,
                          std::uint64_t kv_tokens);

    /**
     * Deliver a retried request: eligible for admission from
     * @p ready_seconds (the retry time) while keeping the request's
     * original arrivalSeconds for honest TTFT/latency accounting.
     * Prefill (and any lost generation) is recomputed here at full
     * charge. Token-level admission only; fatal elsewhere.
     */
    void redeliver(const llm::TimedRequest &request,
                   double ready_seconds);

    /**
     * Fail-stop this replica at @p when: every request it holds -
     * active, handed off, preempted, migrated-in, or queued - is
     * harvested into LostRequests (KV footprints released,
     * generation progress reset) for a recovery layer to retry
     * elsewhere or count failed. Time/energy already charged stays
     * charged: a crash wastes real work. Serving path only.
     */
    std::vector<LostRequest> crash(double when);

    /** Bring a crashed replica back at @p when (cold start done);
     *  it accepts deliveries and admissions again. */
    void restartAt(double when);

    /** This replica's disaggregated-serving role. */
    ServingRole role() const { return _role; }

    /** True if handed-off prefills await collection by the driver. */
    bool hasHandoffs() const { return !_handoffs.empty(); }

    /** Drain the handoff queue (Prefill role; driver-facing). */
    std::vector<HandoffRecord> takeHandoffs();

    /** Current simulated time, seconds. */
    double now() const { return _now; }

    /** True if requests are decoding. */
    bool hasActive() const { return !_batch.empty(); }

    /** True if delivered requests await admission. */
    bool
    hasPending() const
    {
        return !_pending.empty() || !_pendingPrefilled.empty();
    }

    /** True if any delivered work remains (pending or active). */
    bool canStep() const { return hasActive() || hasPending(); }

    /** Live plus queued requests (the router's load signal). */
    std::uint32_t
    outstanding() const
    {
        return static_cast<std::uint32_t>(
            _batch.size() + _pending.size() +
            _pendingPrefilled.size() + _preempted.size());
    }

    /** The admission/scheduling options this sim runs under. */
    const ServingOptions &servingOptions() const { return _options; }

    /** Delivered requests awaiting admission (incl. migrated-in). */
    std::size_t
    pendingCount() const
    {
        return _pending.size() + _pendingPrefilled.size();
    }

    /** Requests evicted under KV pressure, awaiting re-admission. */
    std::size_t preemptedCount() const { return _preempted.size(); }

    /**
     * Arrival time of the oldest pending request (requires
     * hasPending()) - the anchor of a batch-level fill timeout.
     */
    double
    firstPendingArrivalSeconds() const
    {
        return _pending.front().request.arrivalSeconds;
    }

    /**
     * Duration of the next decode iteration, computed without
     * advancing state (requires hasActive()). Deterministically
     * equal to the time stepDecode() will charge, so a cluster
     * driver can order platform steps against arrival times.
     */
    double peekIterationSeconds() const;

    /**
     * One step of the original serving loop: idle fast-forward +
     * admission when the batch is empty, otherwise one decode
     * iteration, retirement, and boundary admission.
     */
    void step();

    /** Idle branch: fast-forward to pending work and admit. */
    void stepIdle();

    /** One decode iteration + retirement (no admission). */
    void stepDecode();

    /**
     * Iteration-boundary admission: prefill eligible newcomers.
     * @return Number of requests admitted.
     */
    std::uint32_t admit();

    /** Finalize and return the aggregate result. */
    ServingResult finish();

    /** Timelines of retired requests, in completion order. With
     *  ServingOptions::recordCapacity set this is truncated to the
     *  first capacity retirements once the cap is exceeded (see
     *  streamStats().overflowed). */
    const std::vector<RequestRecord> &records() const
    {
        return _records;
    }

    /** Requests retired in total, counted even past the record cap
     *  (== records().size() when nothing was truncated). */
    std::uint64_t
    servedCount() const
    {
        return _bounded ? _stream.count : _records.size();
    }

    /** Bounded-memory aggregates (recordCapacity mode; zeroed and
     *  never overflowed when the cap is unset). */
    const ServingStreamStats &streamStats() const { return _stream; }

    /**
     * Whole-block prompt tokens @p request would hit in this
     * replica's prefix cache right now - a pure probe (no LRU
     * touch, no state change) for cache-hit-aware routing. 0 when
     * prefix caching is off or the request carries no prefixKey.
     */
    std::uint32_t
    probePrefixHitTokens(const llm::TimedRequest &request) const;

    /** Seconds spent computing (prefill + decode), for utilization. */
    double busySeconds() const { return _busySeconds; }

    /** Per-component time split accumulated so far. */
    const RunBreakdown &breakdown() const { return _breakdown; }

    /** Iteration trace (StaticBatchMode::recordTrace only). */
    const std::vector<IterationTrace> &trace() const { return _trace; }

    /**
     * Decode iterations per registry target id (indexed by
     * TargetId; same length as the platform's registry).
     */
    const std::vector<std::uint64_t> &perTargetIterations() const
    {
        return _targetIters;
    }

  private:
    /** A request evicted under KV pressure, awaiting re-admission. */
    struct PreemptedRequest
    {
        ActiveSnapshot state;        ///< Progress at eviction.
        double preemptSeconds = 0.0; ///< When it was evicted.
        /** KV tokens held at eviction (SwapRestore restores these;
         *  Recompute re-prefills the whole context). */
        std::uint32_t kvTokens = 0;
        /** Monotonic eviction stamp; pairs with _preemptOrder so a
         *  crash can harvest survivors in eviction order. */
        std::uint64_t evictSeq = 0;
    };

    /**
     * Resume priority of a preempted request: oldest arrival first,
     * lowest id on ties. Keeping _preempted ordered by this key
     * makes each resume selection O(log n) - begin() IS the request
     * the old per-resume linear scan picked (ids are unique, so the
     * total order is identical).
     */
    using PreemptKey = std::pair<double, std::uint64_t>;

    /**
     * FC tokens of the next iteration: live RLP x TLP, padded to the
     * static batch's initial RLP on non-tracking platforms.
     */
    std::uint32_t fcTokens(std::uint32_t rlp,
                           std::uint32_t tlp) const;

    /** Apply the TP cost model to a kernel-phase duration. */
    double scaledSeconds(double kernel_seconds, double other_seconds,
                         std::uint32_t tokens) const;

    /** One decode iteration's kernel-phase costs. */
    struct IterationTiming
    {
        KernelExec fc;        ///< FC phase on the chosen target.
        KernelExec at;        ///< Attention phase.
        double other = 0.0;   ///< Non-GEMV overhead (+ draft charge).
        double hidden = 0.0;  ///< Overlap-hidden seconds (static mode).
        double seconds = 0.0; ///< Total charged duration.
    };

    /**
     * Compute the next iteration's timing for @p target without
     * advancing state (refills _ctx). The single source of truth
     * shared by peekIterationSeconds() and stepDecode() - the
     * cluster event loop's ordering depends on peeked and charged
     * durations being exactly equal.
     */
    IterationTiming iterationTiming(TargetId target,
                                    std::uint32_t tokens,
                                    std::uint32_t tlp) const;

    /**
     * The full plan of the next iteration under continuous batching
     * (chunked prefill): which requests decode, which prompt chunks
     * are processed, the dispatch decision over the decode tokens,
     * and the total charged duration. Pure with respect to sim state
     * (scratch vectors aside) so peeks and steps agree exactly.
     */
    struct IterationPlan
    {
        std::uint32_t decodeRlp = 0; ///< Requests decoding.
        std::uint32_t tokens = 0;    ///< FC tokens (decodeRlp x TLP).
        /** Prompt tokens prefilled this iteration (chunk total). */
        std::uint32_t chunkTokens = 0;
        bool dispatched = false;     ///< decision/timing valid.
        DispatchDecision decision;   ///< FC dispatch (decoders > 0).
        IterationTiming timing;      ///< Decode-phase costs.
        KernelExec chunk;            ///< Prefill-chunk costs.
        double seconds = 0.0;        ///< Total charged duration.
    };

    /** Build the chunked-mode plan (requires hasActive()). */
    IterationPlan planIteration() const;

    /**
     * Ensure _plan describes the next iteration (computing it once
     * for both paths). The plan computed by a peek is cached and
     * consumed by the following stepDecode(), so the cost model
     * runs once per iteration even when a driver peeks to schedule
     * the boundary; state mutations (admission, decode, idle
     * fast-forward) invalidate it. Deliveries do not - the plan
     * depends only on the live batch.
     */
    void refreshPlan() const;

    /**
     * Dynamic-dispatch reschedule accounting (shared by both decode
     * paths). @return true if the target changed vs last iteration.
     */
    bool noteDispatch(TargetId target);

    /** Push batch element @p i's record/latency (shared by both
     *  decode paths; caller releases KV and compacts). */
    void recordRetirementAt(std::size_t i);

    /** Publish batch element @p i's reusable span into the prefix
     *  cache at retirement/handoff (no-op when the cache is off,
     *  the request carries no insertKey, or this is a decode-pool
     *  replica - nothing ever probes a decode-side insert). */
    void publishPrefix(std::size_t i);

    /** Legacy (non-chunked) decode iteration; the pre-refactor body
     *  of stepDecode(), bit-identical. */
    void stepDecodeLegacy();

    /** Chunked-mode decode/prefill iteration. */
    void stepDecodeChunked();

    /**
     * Advance every batch member by @p accepted tokens and retire
     * the finished ones (record, optional KV release, in-place
     * ordered compaction). The advance itself is one branch-light
     * pass over the generated/outputLen columns; the compaction
     * pass runs only when the advance saw a finish. Shared by the
     * legacy path and the all-decoding chunked fast path.
     * @return Requests that finished (<eos> count).
     */
    std::uint32_t advanceAndRetire(std::uint32_t accepted,
                                   bool release_kv);

    /**
     * Preemption-mode helpers: blocks the next iteration could need
     * beyond current holdings, and the evict-youngest loop that
     * restores headroom (records eviction order and stats).
     */
    std::uint64_t worstGrowthBlocks() const;
    void ensureKvHeadroom();
    /** Evict the youngest-admitted active request. */
    void preemptYoungest();

    /** Per-request next-iteration chunk budget, admission order
     *  (chunked mode; fills @p chunks aligned with _active). */
    void planChunks(std::vector<std::uint32_t> &chunks) const;

    /** A migrated-in request awaiting admission (Decode role). */
    struct PrefilledPending
    {
        llm::TimedRequest request;  ///< Original arrival preserved.
        double readySeconds = 0.0;  ///< KV landed here (transfer end).
        std::uint64_t kvTokens = 0; ///< Migrated context tokens.
    };

    /** Retire batch element @p i into the handoff queue (Prefill
     *  role): snapshot and release its KV blocks, record the
     *  migration footprint. */
    void handoffPrefilled(std::size_t i);

    /** Prefill-role sweep: hand off every active request whose
     *  prefill has completed. */
    void handoffCompletedPrefills();

    const Platform &_platform;
    llm::SpeculativeConfig _spec; ///< Copied: callers may pass temporaries.
    llm::ModelConfig _model;      ///< Copied: callers may pass temporaries.
    ServingOptions _options;
    IterationCostModel _cost;
    StaticBatchMode _static;

    llm::KvCacheManager _kv;
    sim::Rng _rng;
    PhaseDispatcher _fcDispatch; ///< The platform's FC policy, bound.
    bool _dynamic;               ///< FC rule is Threshold.
    bool _schedStarted = false;
    TargetId _prevTarget = kInvalidTargetId;

    /** A queued request: delivered, awaiting admission. */
    struct PendingRequest
    {
        llm::TimedRequest request; ///< Original arrival preserved.
        /** Admission eligibility time: the arrival for a first
         *  delivery, the retry time for a redelivery. */
        double readySeconds = 0.0;
    };

    std::deque<PendingRequest> _pending;
    /** Migrated-in prefilled requests awaiting admission. */
    std::deque<PrefilledPending> _pendingPrefilled;
    /** Completed prefills awaiting driver collection (Prefill). */
    std::vector<HandoffRecord> _handoffs;
    ServingRole _role = ServingRole::Colocated;
    /** The live batch, structure-of-arrays, admission order.
     *  Mutable: const planning paths may fold the pending uniform
     *  advance (_genShift) into the generated column - a pure
     *  representation change (see syncGen). */
    mutable BatchState _batch;
    /** Evicted requests awaiting re-admission (preemption mode),
     *  keyed by resume priority (see PreemptKey). */
    std::map<PreemptKey, PreemptedRequest> _preempted;
    /** Eviction log: (key, evictSeq) in eviction order. An entry is
     *  live iff the map still holds that key with the same stamp
     *  (resumes leave stale entries behind); a crash harvests
     *  survivors by filtering this log, reproducing the old deque's
     *  insertion order exactly. */
    std::vector<std::pair<PreemptKey, std::uint64_t>> _preemptOrder;
    std::uint64_t _evictSeqNext = 0;
    std::vector<double> _latencies;
    std::vector<RequestRecord> _records;

    bool _chunked = false;  ///< prefillChunkTokens > 0.
    bool _preempt = false;  ///< preemptOnKvPressure.
    bool _prefixOn = false; ///< prefixCacheEnabled.
    bool _bounded = false;  ///< recordCapacity > 0.
    /** Bounded-memory aggregates (updated iff _bounded). */
    ServingStreamStats _stream;
    std::uint64_t _admitSeqNext = 0; ///< Admission sequence counter.

    double _now = 0.0;
    bool _anchored = false;   ///< First delivery seen.
    double _firstArrival = 0.0;
    /** Latest delivered arrival time (delivery-order guard). */
    double _lastDelivered = -1.0;
    double _rlpTimeIntegral = 0.0;
    double _busySeconds = 0.0;
    /** Static mode: batch size at the t=0 admission (FC padding). */
    std::uint32_t _staticInitialRlp = 0;

    RunBreakdown _breakdown;
    std::vector<IterationTrace> _trace;
    std::vector<std::uint64_t> _targetIters;
    /** kind == Gpu per target id, cached at construction so the
     *  per-iteration counter split skips the registry's bounds-
     *  checked lookup. */
    std::vector<std::uint8_t> _targetIsGpu;

    // Reused across iterations; refilled in place.
    mutable std::vector<std::uint32_t> _prefillLens;
    /** Prefix-hit admissions' incremental-prefill inputs (prior =
     *  cached hit span, now = uncached suffix), charged via
     *  prefillChunkExec next to the zero-hit wave's prefillExec. */
    std::vector<std::uint32_t> _hitPrior;
    std::vector<std::uint32_t> _hitNow;
    mutable std::vector<std::uint32_t> _ctx;
    mutable std::vector<std::uint32_t> _chunkPlan;
    mutable std::vector<std::uint32_t> _chunkPrior;
    mutable std::vector<std::uint32_t> _chunkNow;
    /** Decode-set snapshot of the running iteration (see
     *  stepDecodeChunked). */
    std::vector<std::uint8_t> _decoding;
    // Gather/scatter scratch for bulk KV growth (growMany).
    std::vector<std::size_t> _growIdx;
    std::vector<std::uint64_t> _growIds;
    std::vector<std::uint64_t> _growTok;
    std::vector<std::uint64_t> _growBlocks;
    /** _kv.blockTokens(), cached so the headroom gate's
     *  blocks-for-tokens arithmetic inlines into its array pass. */
    std::uint64_t _kvBlockTokens = 16;

    /** Cached next-iteration plan (see refreshPlan). */
    mutable IterationPlan _plan;
    mutable bool _planValid = false;

    /**
     * True once every batched request has produced its first token
     * - cleared on every admission so advanceAndRetire only runs
     * its first-token bookkeeping pass near admission waves and
     * steady-state decode stays a pure elementwise sweep.
     */
    bool _allSeen = true;

    /**
     * Steady-state decode advances every live request by the same
     * accepted-token count, so the whole O(n) generation sweep
     * reduces to algebra: _genShift is a uniform advance not yet
     * folded into _batch.generated (true generated[i] = stored +
     * _genShift), _ctxSumBase is the context-length sum over the
     * stored values, and _minRem is the smallest true remaining
     * output. While _allSeen holds and accepted < _minRem, one
     * iteration is _genShift += accepted (nobody retires, the
     * context sum moves by n * accepted) - O(1) instead of O(n).
     * Any path that reads or mutates the generated column calls
     * syncGen() first to fold the shift in; any batch mutation
     * clears _steadyValid so the aggregates are rebuilt on the next
     * decode iteration (refreshSteady).
     */
    mutable std::uint32_t _genShift = 0;
    /** Context-length sum over stored columns (valid iff
     *  _steadyValid); true sum = _ctxSumBase + n * _genShift. */
    mutable std::uint64_t _ctxSumBase = 0;
    /** Smallest true outputLen - generated over the batch (valid
     *  iff _steadyValid). */
    mutable std::uint32_t _minRem = 0;
    mutable bool _steadyValid = false;

    /** Fold _genShift into _batch.generated (no observable-state
     *  change: every true value is preserved). */
    void syncGen() const;
    /** Rebuild _ctxSumBase/_minRem from the (synced) columns. */
    void refreshSteady() const;
    /** Batch context-length sum, O(1) in steady-state decode;
     *  bit-identical to BatchState::ctxSum() (integer arithmetic,
     *  shift folded algebraically). */
    std::uint64_t steadyCtxSum() const;

    /**
     * Direct-mapped memo of decode-phase plans, keyed by
     * (decodeRlp, fcTokens, ctxSum). Sound because every cost the
     * entry caches is a pure function of that key and of state
     * fixed at construction: the dispatch rules depend on RLP/TLP/
     * tokens only (Static pins, Threshold is arithmetic, Oracle
     * races fcExec over tokens), the platform's attention cost
     * reduces the context vector to integer aggregates (sum, count)
     * before any floating-point work, and the TP cost transform is
     * token-count arithmetic. A hit therefore returns bitwise the
     * values a recompute would - steady-state decode turns the
     * whole plan pass into one vectorized context sum plus a table
     * probe. Collisions simply overwrite (direct-mapped).
     */
    struct PlanMemoEntry
    {
        std::uint64_t key1 = ~0ULL; ///< decodeRlp<<32 | fcTokens.
        std::uint64_t key2 = 0;     ///< Context-length sum.
        DispatchDecision decision;
        IterationTiming timing;
    };
    mutable std::vector<PlanMemoEntry> _planMemo;
    /** ServingOptions::planMemoSlots - 1 (power-of-two mask). */
    std::size_t _planMemoMask = 0;
    /** Slot index for a (rlp, tokens, ctx_sum) key. */
    std::size_t planMemoSlot(std::uint64_t key1,
                             std::uint64_t key2) const;

    ServingResult _out;
};

/** Arrival-driven serving simulator over one platform. */
class ServingEngine
{
  public:
    /** @param platform Timing/energy model runs execute against. */
    explicit ServingEngine(const Platform &platform)
        : _platform(platform)
    {}

    /**
     * Serve @p stream to completion.
     *
     * Admission policy: a pending request joins when (a) live RLP <
     * maxRlp and (b) its worst-case KV footprint fits the remaining
     * Attn-PIM capacity. Joining requests are prefilled (charged on
     * the platform's prefill path) before decoding continues.
     */
    ServingResult run(const std::vector<llm::TimedRequest> &stream,
                      const llm::SpeculativeConfig &spec,
                      const llm::ModelConfig &model,
                      const ServingOptions &options = {});

  private:
    const Platform &_platform;
};

} // namespace papi::core

#endif // PAPI_CORE_SERVING_ENGINE_HH
