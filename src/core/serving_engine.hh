/**
 * @file
 * Online serving simulation with mixed continuous batching.
 *
 * Unlike DecodeEngine (one static batch to drain), ServingEngine
 * simulates an arrival-driven timeline: requests join the running
 * batch as soon as capacity permits (token-level scheduling, paper
 * Section 2.2.1), so runtime RLP rises on admissions and falls on
 * <eos>. PAPI's scheduler sees both transitions, exercising
 * reschedules in both directions (GPU -> PIM and PIM -> GPU).
 */

#ifndef PAPI_CORE_SERVING_ENGINE_HH
#define PAPI_CORE_SERVING_ENGINE_HH

#include <cstdint>
#include <vector>

#include "core/platform.hh"
#include "core/scheduler.hh"
#include "llm/arrival.hh"
#include "llm/model_config.hh"
#include "llm/speculative.hh"
#include "sim/stats.hh"

namespace papi::core {

/** When new requests may join the running batch. */
enum class AdmissionPolicy : std::uint8_t
{
    /** Mixed continuous batching: join at any iteration boundary. */
    TokenLevel,
    /**
     * Static batching with dynamic admission (paper Section 3.2(c)):
     * a new batch forms only after the current one drains, starting
     * when it is full or a wait timeout expires.
     */
    BatchLevel,
};

/** Serving-run configuration. */
struct ServingOptions
{
    /** Maximum concurrent requests (SLO-driven initial-RLP cap). */
    std::uint32_t maxRlp = 64;
    /** Scheduling threshold (from ThresholdCalibrator). */
    double alpha = 32.0;
    /** RNG seed for speculative acceptance. */
    std::uint64_t seed = 1;
    /** Admission policy. */
    AdmissionPolicy admission = AdmissionPolicy::TokenLevel;
    /**
     * Batch-level only: wait at most this long after the first
     * pending arrival for the batch to fill before starting.
     */
    double batchTimeoutSeconds = 0.1;
};

/** Outcome of a serving run. */
struct ServingResult
{
    double makespanSeconds = 0.0; ///< First arrival to last finish.
    double energyJoules = 0.0;
    std::uint64_t iterations = 0;
    std::uint64_t tokensGenerated = 0;
    std::uint64_t admissions = 0;
    std::uint64_t reschedules = 0;
    std::uint64_t reschedulesToGpu = 0; ///< PIM -> GPU transitions.
    std::uint64_t fcOnGpuIterations = 0;
    std::uint64_t fcOnPimIterations = 0;

    double meanLatencySeconds = 0.0; ///< Arrival to completion.
    double p95LatencySeconds = 0.0;
    double meanRlp = 0.0; ///< Time-weighted mean live RLP.
    /** Peak fraction of the Attn-PIM KV pool in use. */
    double peakKvUtilization = 0.0;

    double
    throughputTokensPerSecond() const
    {
        return makespanSeconds > 0.0
                   ? static_cast<double>(tokensGenerated) /
                         makespanSeconds
                   : 0.0;
    }
};

/** Arrival-driven serving simulator over one platform. */
class ServingEngine
{
  public:
    explicit ServingEngine(const Platform &platform)
        : _platform(platform)
    {}

    /**
     * Serve @p stream to completion.
     *
     * Admission policy: a pending request joins when (a) live RLP <
     * maxRlp and (b) its worst-case KV footprint fits the remaining
     * Attn-PIM capacity. Joining requests are prefilled (charged on
     * the platform's prefill path) before decoding continues.
     */
    ServingResult run(const std::vector<llm::TimedRequest> &stream,
                      const llm::SpeculativeConfig &spec,
                      const llm::ModelConfig &model,
                      const ServingOptions &options = {});

  private:
    const Platform &_platform;
};

} // namespace papi::core

#endif // PAPI_CORE_SERVING_ENGINE_HH
