/**
 * @file
 * PAPI's dynamic parallelism-aware scheduler (paper Section 5).
 *
 * The scheduler runs on the host CPU and follows the paper's
 * token-level scheme:
 *  1. After each decode iteration the output tokens of all requests
 *     are gathered and the <eos> tokens counted, updating RLP.
 *  2. TLP lives in a dedicated register, updated only when system
 *     software changes the speculation length.
 *  3. The next iteration's FC arithmetic intensity is predicted as
 *     RLP x TLP.
 *  4. The prediction is compared against the offline-calibrated
 *     threshold alpha to decide which side of a target pair the FC
 *     kernels run on.
 *
 * The paper evaluates the pair (GPU processing units, FC-PIM); this
 * implementation is generic over any TargetPair drawn from a
 * platform's execution-target registry, so the same state machine
 * schedules between e.g. two PIM device classes, or an attention
 * offload pair, without modification.
 */

#ifndef PAPI_CORE_SCHEDULER_HH
#define PAPI_CORE_SCHEDULER_HH

#include <cstdint>

#include "core/dispatch_policy.hh"

namespace papi::core {

/** One scheduling decision plus bookkeeping. */
struct ScheduleDecision
{
    TargetId target = 0;      ///< Where FC runs next.
    double estimatedAi = 0.0; ///< AI estimate behind the decision.
    bool rescheduled = false; ///< Target changed vs previous decision.
};

/** The runtime scheduler state machine. */
class DynamicScheduler
{
  public:
    /**
     * @param alpha Memory-boundedness threshold: estimated AI values
     *        strictly greater than alpha are compute-bound ->
     *        pair.above.
     * @param initial_rlp Batch size at admission.
     * @param initial_tlp System-configured speculation length.
     * @param estimator AI-estimate override (MoE deployments).
     * @param pair The target pair the threshold separates; defaults
     *        to {below=0, above=1} for pair-agnostic unit use.
     *        Engines pass the platform's resolved FC pair.
     */
    DynamicScheduler(double alpha, std::uint32_t initial_rlp,
                     std::uint32_t initial_tlp,
                     AiEstimateFn estimator = {},
                     TargetPair pair = {});

    /** The calibrated scheduling threshold. */
    double alpha() const { return _alpha; }
    /** Current tracked request-level parallelism. */
    std::uint32_t rlp() const { return _rlp; }
    /** Current tracked token-level parallelism. */
    std::uint32_t tlp() const { return _tlp; }
    /** The target pair the threshold separates. */
    TargetPair pair() const { return _pair; }

    /** Initial scheduling before serving starts (Section 5.2.1). */
    ScheduleDecision initialSchedule();

    /**
     * Runtime scheduling after a decode iteration (Section 5.2.2):
     * @p eos_count <eos> tokens were observed in the gathered output
     * vector, shrinking RLP.
     */
    ScheduleDecision observeStep(std::uint32_t eos_count);

    /** Host software updated the speculation length register. */
    void setTlp(std::uint32_t tlp);

    /**
     * Mixed continuous batching admitted @p count new requests into
     * the running batch (Section 2.2.1): RLP rises, and the next
     * decision may move FC back to the compute-bound target.
     */
    ScheduleDecision observeAdmission(std::uint32_t count);

    /** Decision for arbitrary parallelism without mutating state. */
    ScheduleDecision peek(std::uint32_t rlp, std::uint32_t tlp) const;

    /** Total decisions taken. */
    std::uint64_t decisions() const { return _decisions; }
    /** Times the target changed (kernel migrations). */
    std::uint64_t reschedules() const { return _reschedules; }

  private:
    ScheduleDecision decide();

    double _alpha;
    std::uint32_t _rlp;
    std::uint32_t _tlp;
    AiEstimateFn _estimator;
    TargetPair _pair;
    bool _hasPrev = false;
    TargetId _prev;
    std::uint64_t _decisions = 0;
    std::uint64_t _reschedules = 0;
};

} // namespace papi::core

#endif // PAPI_CORE_SCHEDULER_HH
