#include "core/config_loader.hh"

#include <fstream>

#include "sim/logging.hh"

namespace papi::core {

PlatformConfig
platformConfigByName(const std::string &name)
{
    if (name == "papi")
        return makePapiConfig();
    if (name == "a100+attacc")
        return makeA100AttAccConfig();
    if (name == "a100+hbm-pim")
        return makeA100HbmPimConfig();
    if (name == "attacc-only")
        return makeAttAccOnlyConfig();
    if (name == "pim-only-papi")
        return makePimOnlyPapiConfig();
    sim::fatal("platformConfigByName: unknown platform '", name,
               "'");
}

namespace {

interconnect::Link
linkFromString(const std::string &name)
{
    if (name == "pcie5")
        return interconnect::pcie5();
    if (name == "cxl2")
        return interconnect::cxl2();
    if (name == "nvlink")
        return interconnect::nvlink();
    sim::fatal("config: unknown link '", name, "'");
}

} // namespace

PlatformConfig
platformFromConfig(const sim::Config &config)
{
    PlatformConfig cfg = platformConfigByName(
        config.getString("platform", "papi"));

    cfg.numGpus = static_cast<std::uint32_t>(
        config.getInt("num_gpus", cfg.numGpus));
    cfg.numFcDevices = static_cast<std::uint32_t>(
        config.getInt("num_fc_devices", cfg.numFcDevices));
    cfg.numAttnDevices = static_cast<std::uint32_t>(
        config.getInt("num_attn_devices", cfg.numAttnDevices));
    if (config.has("fc_policy"))
        cfg.fcPolicy = fcPolicyFromName(config.getString("fc_policy"));
    if (config.has("fc_dispatch"))
        cfg.fcDispatch =
            dispatchPolicyFromName(config.getString("fc_dispatch"));
    if (config.has("attn_dispatch"))
        cfg.attnDispatch =
            dispatchPolicyFromName(config.getString("attn_dispatch"));
    if (config.has("prefill_dispatch"))
        cfg.prefillDispatch = dispatchPolicyFromName(
            config.getString("prefill_dispatch"));
    if (config.has("attn_fabric"))
        cfg.topology.attnFabric =
            linkFromString(config.getString("attn_fabric"));
    cfg.fcFabricLinks = static_cast<std::uint32_t>(
        config.getInt("fc_fabric_links", cfg.fcFabricLinks));
    cfg.attnFabricLinks = static_cast<std::uint32_t>(
        config.getInt("attn_fabric_links", cfg.attnFabricLinks));

    cfg.gpuSpec.peakTflopsFp16 = config.getDouble(
        "gpu.peak_tflops", cfg.gpuSpec.peakTflopsFp16);
    cfg.gpuSpec.memBandwidthGBs = config.getDouble(
        "gpu.mem_bandwidth_gbs", cfg.gpuSpec.memBandwidthGBs);

    cfg.fcDeviceConfig.fpusPerGroup = static_cast<std::uint32_t>(
        config.getInt("fc_pim.fpus_per_group",
                      cfg.fcDeviceConfig.fpusPerGroup));
    cfg.fcDeviceConfig.banksPerGroup = static_cast<std::uint32_t>(
        config.getInt("fc_pim.banks_per_group",
                      cfg.fcDeviceConfig.banksPerGroup));
    cfg.attnDeviceConfig.fpusPerGroup = static_cast<std::uint32_t>(
        config.getInt("attn_pim.fpus_per_group",
                      cfg.attnDeviceConfig.fpusPerGroup));
    cfg.attnDeviceConfig.banksPerGroup = static_cast<std::uint32_t>(
        config.getInt("attn_pim.banks_per_group",
                      cfg.attnDeviceConfig.banksPerGroup));
    return cfg;
}

sim::Config
loadConfigFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("loadConfigFile: cannot open '", path, "'");

    sim::Config out;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and surrounding whitespace.
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        auto last = line.find_last_not_of(" \t\r");
        std::string trimmed = line.substr(first, last - first + 1);
        if (trimmed.find('=') == std::string::npos)
            sim::fatal("loadConfigFile: '", path, "' line ", line_no,
                       ": expected key=value");
        out.parseAssignment(trimmed);
    }
    return out;
}

} // namespace papi::core
