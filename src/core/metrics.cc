#include "core/metrics.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "sim/logging.hh"

namespace papi::core {

double
speedup(const RunResult &baseline, const RunResult &candidate)
{
    double c = candidate.seconds();
    if (c <= 0.0)
        sim::fatal("speedup: candidate has non-positive runtime");
    return baseline.seconds() / c;
}

double
energyEfficiency(const RunResult &baseline, const RunResult &candidate)
{
    // Tokens/joule improvement; runs decode the same batch, so this
    // reduces to the inverse energy ratio when token counts match.
    double b = baseline.tokensPerJoule();
    double c = candidate.tokensPerJoule();
    if (b <= 0.0)
        sim::fatal("energyEfficiency: baseline has no token/J figure");
    return c / b;
}

double
geomean(const std::vector<double> &values)
{
    // An empty sample has no geometric mean: return NaN rather than
    // aborting, so aggregation over pools/replicas that completed
    // zero requests degrades to a skipped stat instead of a fatal.
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            sim::fatal("geomean: non-positive value ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string
formatSeconds(double seconds)
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    if (seconds >= 1.0)
        os << seconds << " s";
    else if (seconds >= 1e-3)
        os << seconds * 1e3 << " ms";
    else
        os << seconds * 1e6 << " us";
    return os.str();
}

std::string
formatJoules(double joules)
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    if (joules >= 1.0)
        os << joules << " J";
    else
        os << joules * 1e3 << " mJ";
    return os.str();
}


double
percentileSorted(const std::vector<double> &sorted_values, double q)
{
    // No sample, no quantile: NaN (callers skip the stat export).
    if (sorted_values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted_values.size() - 1));
    return sorted_values[idx];
}

} // namespace papi::core
