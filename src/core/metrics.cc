#include "core/metrics.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "sim/logging.hh"

namespace papi::core {

double
speedup(const RunResult &baseline, const RunResult &candidate)
{
    double c = candidate.seconds();
    if (c <= 0.0)
        sim::fatal("speedup: candidate has non-positive runtime");
    return baseline.seconds() / c;
}

double
energyEfficiency(const RunResult &baseline, const RunResult &candidate)
{
    // Tokens/joule improvement; runs decode the same batch, so this
    // reduces to the inverse energy ratio when token counts match.
    double b = baseline.tokensPerJoule();
    double c = candidate.tokensPerJoule();
    if (b <= 0.0)
        sim::fatal("energyEfficiency: baseline has no token/J figure");
    return c / b;
}

double
geomean(const std::vector<double> &values)
{
    // An empty sample has no geometric mean: return NaN rather than
    // aborting, so aggregation over pools/replicas that completed
    // zero requests degrades to a skipped stat instead of a fatal.
    if (values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            sim::fatal("geomean: non-positive value ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string
formatSeconds(double seconds)
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    if (seconds >= 1.0)
        os << seconds << " s";
    else if (seconds >= 1e-3)
        os << seconds * 1e3 << " ms";
    else
        os << seconds * 1e6 << " us";
    return os.str();
}

std::string
formatJoules(double joules)
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    if (joules >= 1.0)
        os << joules << " J";
    else
        os << joules * 1e3 << " mJ";
    return os.str();
}


P2Quantile::P2Quantile(double q) : _q(q)
{
    if (!(q >= 0.0 && q <= 1.0))
        sim::fatal("P2Quantile: quantile ", q, " outside [0, 1]");
}

void
P2Quantile::add(double x)
{
    // The literal 5s and the 0/4 extreme indices below are the
    // five-marker structure the header pins at compile time.
    static_assert(P2Quantile::kMarkers == 5,
                  "P-square update rules below are written for "
                  "exactly five markers");
    if (_count < 5) {
        // Warm-up: keep the first five observations sorted in the
        // marker array (they become the initial marker heights).
        std::uint64_t i = _count;
        while (i > 0 && _height[i - 1] > x) {
            _height[i] = _height[i - 1];
            --i;
        }
        _height[i] = x;
        ++_count;
        if (_count == 5) {
            for (int m = 0; m < 5; ++m)
                _pos[m] = static_cast<double>(m + 1);
            _desired[0] = 1.0;
            _desired[1] = 1.0 + 2.0 * _q;
            _desired[2] = 1.0 + 4.0 * _q;
            _desired[3] = 3.0 + 2.0 * _q;
            _desired[4] = 5.0;
            _inc[0] = 0.0;
            _inc[1] = _q / 2.0;
            _inc[2] = _q;
            _inc[3] = (1.0 + _q) / 2.0;
            _inc[4] = 1.0;
        }
        return;
    }
    // Locate the cell of x, clamping the extreme markers.
    int k;
    if (x < _height[0]) {
        _height[0] = x;
        k = 0;
    } else if (x >= _height[4]) {
        _height[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= _height[k + 1])
            ++k;
    }
    for (int m = k + 1; m < 5; ++m)
        _pos[m] += 1.0;
    for (int m = 0; m < 5; ++m)
        _desired[m] += _inc[m];
    // Adjust the three interior markers toward their desired
    // positions: parabolic (P-square) when the result stays
    // monotone, linear otherwise.
    for (int m = 1; m <= 3; ++m) {
        const double d = _desired[m] - _pos[m];
        const bool up = d >= 1.0 && _pos[m + 1] - _pos[m] > 1.0;
        const bool down = d <= -1.0 && _pos[m - 1] - _pos[m] < -1.0;
        if (!up && !down)
            continue;
        const double s = up ? 1.0 : -1.0;
        const double hp = _height[m + 1];
        const double hm = _height[m - 1];
        const double h = _height[m];
        const double np = _pos[m + 1];
        const double nm = _pos[m - 1];
        const double n = _pos[m];
        double cand =
            h + s / (np - nm) *
                    ((n - nm + s) * (hp - h) / (np - n) +
                     (np - n - s) * (h - hm) / (n - nm));
        if (!(hm < cand && cand < hp)) {
            // Parabolic prediction broke monotonicity: fall back
            // to linear interpolation toward the neighbour.
            const int j = m + static_cast<int>(s);
            cand = h + s * (_height[j] - h) / (_pos[j] - n);
        }
        _height[m] = cand;
        _pos[m] += s;
    }
    ++_count;
}

double
P2Quantile::value() const
{
    if (_count == 0)
        return std::numeric_limits<double>::quiet_NaN();
    if (_count <= 5) {
        // Exact while the sample still fits the marker array,
        // under the repo-wide percentileSorted() convention.
        const auto idx = static_cast<std::size_t>(
            _q * static_cast<double>(_count - 1));
        return _height[idx];
    }
    return _height[2];
}

double
percentileSorted(const std::vector<double> &sorted_values, double q)
{
    // No sample, no quantile: NaN (callers skip the stat export).
    if (sorted_values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted_values.size() - 1));
    return sorted_values[idx];
}

} // namespace papi::core
