#include "core/platform.hh"

#include <algorithm>
#include <numeric>

#include "llm/moe.hh"
#include "sim/logging.hh"

namespace papi::core {

namespace {

/** FNV-1a folding of one 64-bit word. */
constexpr std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    return h * 0x100000001b3ULL;
}

/**
 * Kernel-cache query kinds: the phase in the high byte, the registry
 * target id below it. Target ids are small dense indexes, so the two
 * never collide.
 */
constexpr std::uint32_t kindFcBase = 0x100;
constexpr std::uint32_t kindAttnBase = 0x200;
constexpr std::uint32_t kindPrefillBase = 0x300;

/** Entry count at which the kernel cache is discarded wholesale. */
constexpr std::size_t kernelCacheMaxEntries = 1u << 20;

} // namespace

std::size_t
Platform::KernelKeyHash::operator()(const KernelKey &k) const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = hashCombine(h, k.model);
    h = hashCombine(h, k.shape0);
    h = hashCombine(h, k.shape1);
    h = hashCombine(h, k.shape2);
    h = hashCombine(h, k.kind);
    return static_cast<std::size_t>(h);
}

std::uint64_t
Platform::modelShapeHash(const llm::ModelConfig &model)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = hashCombine(h, model.hiddenDim);
    h = hashCombine(h, model.numLayers);
    h = hashCombine(h, model.numHeads);
    h = hashCombine(h, model.ffnDim);
    h = hashCombine(h, model.ffnMatrices);
    h = hashCombine(h, model.maxSeqLen);
    h = hashCombine(h, model.bytesPerParam);
    h = hashCombine(h, model.moeExperts);
    h = hashCombine(h, model.moeTopK);
    return h;
}

template <typename ComputeFn>
KernelExec
Platform::cached(const KernelKey &key, ComputeFn &&compute) const
{
    if (auto it = _kernelCache.find(key); it != _kernelCache.end())
        return it->second;
    KernelExec out = compute();
    if (_kernelCache.size() >= kernelCacheMaxEntries)
        _kernelCache.clear();
    _kernelCache.emplace(key, out);
    return out;
}

Platform::Platform(const PlatformConfig &config) : _config(config)
{
    if (_config.numFcDevices == 0 || _config.numAttnDevices == 0)
        sim::fatal("Platform '", _config.name, "': device counts must "
                   "be nonzero");
    if (!_config.hasGpu && !_config.fcDevicesCompute)
        sim::fatal("Platform '", _config.name, "': no compute at all "
                   "for FC kernels");
    // FC/attention kernel timings divide by these links' bandwidth;
    // a degenerate link would poison every timestamp downstream.
    _config.topology.gpuFabric.validate();
    _config.topology.attnFabric.validate();
    _config.topology.hostLink.validate();

    _fcDevice = std::make_unique<pim::PimDevice>(
        _config.fcDeviceConfig, _config.pimEnergyParams);
    _attnDevice = std::make_unique<pim::PimDevice>(
        _config.attnDeviceConfig, _config.pimEnergyParams);
    if (_config.hasGpu) {
        _gpu = std::make_unique<gpu::GpuModel>(
            _config.gpuSpec, _config.numGpus,
            _config.topology.gpuFabric.bandwidthBytesPerSec / 1e9);
    }

    buildRegistry();
    resolveDispatch();
    _attnDispatcher.emplace(*this, Phase::Attention);
    _prefillDispatcher.emplace(*this, Phase::Prefill);
}

void
Platform::buildRegistry()
{
    if (_config.hasGpu) {
        ExecTarget t;
        t.name = "gpu";
        t.kind = TargetKind::Gpu;
        t.fcCost = [this](const llm::ModelConfig &m,
                          std::uint32_t tokens) {
            return fcOnGpu(m, tokens);
        };
        t.prefillCost = [this](const llm::ModelConfig &m,
                               const std::vector<std::uint32_t> &l) {
            return prefillOnGpu(m, l);
        };
        _gpuId = _registry.add(std::move(t));
    }
    if (_config.fcDevicesCompute) {
        ExecTarget t;
        t.name = "fc-pim";
        t.kind = TargetKind::FcPim;
        t.fcCost = [this](const llm::ModelConfig &m,
                          std::uint32_t tokens) {
            return fcOnPim(m, tokens);
        };
        t.prefillCost = [this](const llm::ModelConfig &m,
                               const std::vector<std::uint32_t> &l) {
            return prefillOnPim(m, l);
        };
        _fcPimId = _registry.add(std::move(t));
    }
    {
        ExecTarget t;
        t.name = "attn-pim";
        t.kind = TargetKind::AttnPim;
        t.attnCost = [this](const llm::ModelConfig &m,
                            const std::vector<std::uint32_t> &ctx,
                            std::uint32_t tlp) {
            return attnOnPim(m, ctx, tlp);
        };
        _attnPimId = _registry.add(std::move(t));
    }
}

void
Platform::validatePolicy(Phase phase,
                         const DispatchPolicy &policy) const
{
    if (policy.targets.empty())
        sim::fatal("Platform '", _config.name, "': ", phaseName(phase),
                   " dispatch policy has no targets");
    if (policy.rule == DispatchRule::Static &&
        policy.targets.size() != 1)
        sim::fatal("Platform '", _config.name, "': static ",
                   phaseName(phase), " dispatch pins exactly one "
                   "target, got ", policy.targets.size());
    if (policy.rule == DispatchRule::Threshold &&
        policy.targets.size() != 2)
        sim::fatal("Platform '", _config.name, "': threshold ",
                   phaseName(phase), " dispatch needs a target pair, "
                   "got ", policy.targets.size());
    if (policy.rule == DispatchRule::Threshold &&
        policy.targets[0] == policy.targets[1])
        sim::fatal("Platform '", _config.name, "': threshold ",
                   phaseName(phase), " dispatch pair must name two "
                   "different targets ('", policy.targets[0], "')");
    // The threshold rule needs the runtime-calibrated alpha, which
    // engines plumb for the FC phase only; a threshold policy on the
    // alpha-free phases would silently degrade to a static pin.
    if (policy.rule == DispatchRule::Threshold && phase != Phase::Fc)
        sim::fatal("Platform '", _config.name, "': threshold "
                   "dispatch is only supported for the fc phase "
                   "(no runtime alpha is plumbed for ",
                   phaseName(phase), "); use static or oracle");
    if (policy.rule == DispatchRule::Oracle &&
        policy.targets.size() < 2)
        sim::fatal("Platform '", _config.name, "': oracle ",
                   phaseName(phase), " dispatch races two or more "
                   "targets, got ", policy.targets.size());
    for (const std::string &name : policy.targets) {
        auto id = _registry.find(name);
        if (!id)
            sim::fatal("Platform '", _config.name, "': ",
                       phaseName(phase), " dispatch names target '",
                       name, "', which this platform does not "
                       "provide");
        if (!_registry.at(*id).supports(phase))
            sim::fatal("Platform '", _config.name, "': target '",
                       name, "' cannot run the ", phaseName(phase),
                       " phase");
    }
}

void
Platform::resolveDispatch()
{
    _fcDispatch = _config.fcDispatch.configured()
                      ? _config.fcDispatch
                      : dispatchFromFcPolicy(_config.fcPolicy);
    _attnDispatch = _config.attnDispatch.configured()
                        ? _config.attnDispatch
                        : staticDispatch("attn-pim");
    _prefillDispatch =
        _config.prefillDispatch.configured()
            ? _config.prefillDispatch
            : staticDispatch(_config.hasGpu ? "gpu" : "fc-pim");

    validatePolicy(Phase::Fc, _fcDispatch);
    validatePolicy(Phase::Attention, _attnDispatch);
    validatePolicy(Phase::Prefill, _prefillDispatch);
}

TargetId
Platform::targetId(std::string_view name) const
{
    return _registry.require(name);
}

const DispatchPolicy &
Platform::dispatchPolicy(Phase phase) const
{
    switch (phase) {
      case Phase::Prefill: return _prefillDispatch;
      case Phase::Fc: return _fcDispatch;
      case Phase::Attention: return _attnDispatch;
    }
    sim::panic("Platform: bad phase");
}

PhaseDispatcher
Platform::dispatcher(Phase phase, double alpha,
                     AiEstimateFn estimator) const
{
    return PhaseDispatcher(*this, phase, alpha, std::move(estimator));
}

TargetId
Platform::targetIdFor(FcTarget target) const
{
    TargetId id = target == FcTarget::Gpu ? _gpuId : _fcPimId;
    if (id == kInvalidTargetId)
        sim::fatal("Platform '", _config.name, "': no '",
                   fcTargetName(target),
                   "' execution target registered");
    return id;
}

FcTarget
Platform::legacyFcTarget(TargetId id) const
{
    return _registry.at(id).kind == TargetKind::Gpu ? FcTarget::Gpu
                                                    : FcTarget::FcPim;
}

void
Platform::validateFit(const llm::ModelConfig &model,
                      std::uint64_t peak_kv_bytes) const
{
    std::uint64_t fc_capacity =
        _config.fcDeviceConfig.capacityBytes() * _config.numFcDevices;
    if (model.totalFcBytes() > fc_capacity)
        sim::fatal("Platform '", _config.name, "': model ", model.name,
                   " weights (", model.totalFcBytes(),
                   " B) exceed FC device capacity (", fc_capacity,
                   " B)");

    std::uint64_t kv_capacity =
        _config.attnDeviceConfig.capacityBytes() *
        _config.numAttnDevices;
    if (peak_kv_bytes > kv_capacity)
        sim::fatal("Platform '", _config.name, "': peak KV cache (",
                   peak_kv_bytes, " B) exceeds attention device "
                   "capacity (", kv_capacity, " B)");
}

FcTarget
Platform::staticFcTarget() const
{
    if (_fcDispatch.rule != DispatchRule::Static)
        sim::fatal("Platform '", _config.name, "': no static FC "
                   "target for a ", dispatchRuleName(_fcDispatch.rule),
                   " dispatch policy");
    return legacyFcTarget(_registry.require(_fcDispatch.targets[0]));
}

KernelExec
Platform::fcOnGpu(const llm::ModelConfig &model,
                  std::uint32_t tokens) const
{
    if (!_gpu)
        sim::panic("Platform '", _config.name, "': fcOnGpu without a "
                   "GPU");

    llm::KernelWork w = llm::fcTotalWork(model, tokens);
    // Two tensor-parallel reductions per layer (projection and FFN
    // down-projection outputs).
    double output_bytes = 2.0 * model.numLayers *
                          static_cast<double>(tokens) *
                          model.hiddenDim * model.bytesPerParam;
    gpu::GpuKernelResult g = _gpu->kernel(
        w.flops, w.weightBytes + w.activationBytes, output_bytes);

    KernelExec out;
    out.seconds = g.seconds;
    out.energyJoules = g.energyJoules;
    out.computeBound = g.computeBound;
    return out;
}

KernelExec
Platform::fcOnPim(const llm::ModelConfig &model,
                  std::uint32_t tokens) const
{
    if (!_config.fcDevicesCompute)
        sim::fatal("Platform '", _config.name, "': FC devices have no "
                   "near-bank compute");

    pim::PimKernelResult p;
    if (model.isMoe()) {
        // The dense sub-kernels (QKV, projection) reuse weights for
        // all tokens; the expert FFNs stream only the touched
        // experts at their per-expert reuse (Section 6.5).
        std::uint64_t dense_bytes = 4ULL * model.hiddenDim *
                                    model.hiddenDim *
                                    model.bytesPerParam *
                                    model.numLayers;
        double active = llm::expectedActiveExperts(model, tokens);
        auto ffn_bytes = static_cast<std::uint64_t>(
            active * static_cast<double>(model.ffnParamsPerExpert()) *
            model.bytesPerParam * model.numLayers);
        auto ffn_reuse = static_cast<std::uint32_t>(
            std::max(1.0, llm::moeFfnReuse(model, tokens) + 0.5));
        pim::PimKernelResult dense = _fcDevice->fcGemv(
            dense_bytes, tokens, _config.numFcDevices);
        pim::PimKernelResult moe = _fcDevice->fcGemv(
            ffn_bytes, ffn_reuse, _config.numFcDevices);
        p.seconds = dense.seconds + moe.seconds;
        p.computeBound = dense.computeBound || moe.computeBound;
        p.energy.dramAccess =
            dense.energy.dramAccess + moe.energy.dramAccess;
        p.energy.transfer = dense.energy.transfer + moe.energy.transfer;
        p.energy.compute = dense.energy.compute + moe.energy.compute;
        p.streamedBytes = dense.streamedBytes + moe.streamedBytes;
    } else {
        p = _fcDevice->fcGemv(model.totalFcBytes(), tokens,
                              _config.numFcDevices);
    }

    // Per-layer activation staging over the FC fabric: each of the
    // three FC sub-kernel groups ships its inputs in and partial
    // outputs out, and cross-device partial sums are reduced.
    const auto &link = _config.topology.gpuFabric;
    double agg_bw = link.bandwidthBytesPerSec *
                    std::max<std::uint32_t>(_config.fcFabricLinks, 1);
    double act_bytes = static_cast<double>(tokens) * model.hiddenDim *
                       model.bytesPerParam;
    double per_layer =
        3.0 * (link.latencySeconds + link.messageOverheadSeconds +
               2.0 * act_bytes / agg_bw);
    double comm_seconds = per_layer * model.numLayers;
    double comm_bytes = 3.0 * 2.0 * act_bytes * model.numLayers;

    KernelExec out;
    out.commSeconds = comm_seconds;
    out.seconds = p.seconds + comm_seconds;
    out.computeBound = p.computeBound;
    out.commJoules = comm_bytes * link.energyPerByte;

    double static_j = _config.fcDeviceConfig.totalFpus() *
                      _config.pimEnergyParams.fpuStaticPowerPerFpu *
                      _config.numFcDevices * p.seconds;
    out.energyJoules = p.energy.total() + static_j + out.commJoules;
    return out;
}

KernelExec
Platform::fcExec(const llm::ModelConfig &model, std::uint32_t tokens,
                 TargetId id) const
{
    if (tokens == 0)
        sim::fatal("Platform::fcExec: zero tokens");
    const ExecTarget &target = _registry.at(id);
    if (!target.fcCost)
        sim::fatal("Platform '", _config.name, "': target '",
                   target.name, "' cannot run the fc phase");

    KernelKey key;
    key.model = modelShapeHash(model);
    key.shape0 = tokens;
    key.kind = kindFcBase + id;
    return cached(key, [&] { return target.fcCost(model, tokens); });
}

KernelExec
Platform::fcExec(const llm::ModelConfig &model, std::uint32_t tokens,
                 FcTarget target) const
{
    if (tokens == 0)
        sim::fatal("Platform::fcExec: zero tokens");
    return fcExec(model, tokens, targetIdFor(target));
}

double
Platform::attnCommSeconds(const llm::ModelConfig &model,
                          std::uint32_t tokens) const
{
    const auto &link = _config.topology.attnFabric;
    double agg_bw =
        link.bandwidthBytesPerSec *
        std::max<std::uint32_t>(_config.attnFabricLinks, 1);
    double act_bytes = static_cast<double>(tokens) * model.hiddenDim *
                       model.bytesPerParam;
    // Q vectors out, context vectors back, each layer. GPU-less
    // platforms stage through the host (two hops per direction).
    double hops = _config.hasGpu ? 1.0 : 2.0;
    double per_layer =
        2.0 * hops *
        (link.latencySeconds + link.messageOverheadSeconds +
         act_bytes / agg_bw);
    return per_layer * model.numLayers;
}

KernelExec
Platform::attnExec(const llm::ModelConfig &model,
                   const std::vector<std::uint32_t> &ctx_lens,
                   std::uint32_t tlp, TargetId id) const
{
    if (ctx_lens.empty())
        sim::fatal("Platform::attnExec: no live requests");
    const ExecTarget &target = _registry.at(id);
    if (!target.attnCost)
        sim::fatal("Platform '", _config.name, "': target '",
                   target.name, "' cannot run the attention phase");

    std::uint64_t total_len = 0;
    for (std::uint32_t len : ctx_lens)
        total_len += len;

    // The result depends on ctx_lens only through the total context
    // length and the request count, so the cache key is exact.
    KernelKey key;
    key.model = modelShapeHash(model);
    key.shape0 = total_len;
    key.shape1 = (static_cast<std::uint64_t>(ctx_lens.size()) << 32) |
                 tlp;
    key.kind = kindAttnBase + id;
    return cached(key, [&] {
        return target.attnCost(model, ctx_lens, tlp);
    });
}

KernelExec
Platform::attnExec(const llm::ModelConfig &model,
                   const std::vector<std::uint32_t> &ctx_lens,
                   std::uint32_t tlp) const
{
    if (ctx_lens.empty())
        sim::fatal("Platform::attnExec: no live requests");
    return attnExec(
        model, ctx_lens, tlp,
        _attnDispatcher->selectAttention(model, ctx_lens, tlp).target);
}

KernelExec
Platform::attnOnPim(const llm::ModelConfig &model,
                    const std::vector<std::uint32_t> &ctx_lens,
                    std::uint32_t tlp) const
{
    std::uint64_t total_len = 0;
    for (std::uint32_t len : ctx_lens)
        total_len += len;

    std::uint64_t kv_bytes = total_len * model.kvBytesPerToken();
    std::uint64_t score_elems = total_len * tlp * model.numHeads *
                                model.numLayers;

    pim::PimKernelResult p = _attnDevice->attention(
        kv_bytes, model.numHeads, tlp, score_elems,
        _config.numAttnDevices);

    std::uint32_t tokens =
        static_cast<std::uint32_t>(ctx_lens.size()) * tlp;
    double comm_seconds = attnCommSeconds(model, tokens);
    double comm_bytes = 2.0 * static_cast<double>(tokens) *
                        model.hiddenDim * model.bytesPerParam *
                        model.numLayers;

    KernelExec out;
    out.commSeconds = comm_seconds;
    out.seconds = p.seconds + comm_seconds;
    out.computeBound = p.computeBound;
    out.commJoules =
        comm_bytes * _config.topology.attnFabric.energyPerByte;

    double static_j = _config.attnDeviceConfig.totalFpus() *
                      _config.pimEnergyParams.fpuStaticPowerPerFpu *
                      _config.numAttnDevices * p.seconds;
    out.energyJoules = p.energy.total() + static_j + out.commJoules;
    return out;
}

KernelExec
Platform::prefillExec(const llm::ModelConfig &model,
                      const std::vector<std::uint32_t> &input_lens,
                      TargetId id) const
{
    if (input_lens.empty())
        sim::fatal("Platform::prefillExec: no requests");
    const ExecTarget &target = _registry.at(id);
    if (!target.prefillCost)
        sim::fatal("Platform '", _config.name, "': target '",
                   target.name, "' cannot run the prefill phase");

    // The result depends on input_lens only through the total length,
    // the sum of squared lengths (prefill attention FLOPs), and the
    // request count.
    std::uint64_t sum = 0;
    std::uint64_t sum_sq = 0;
    for (std::uint32_t len : input_lens) {
        sum += len;
        sum_sq += static_cast<std::uint64_t>(len) * len;
    }
    KernelKey key;
    key.model = modelShapeHash(model);
    key.shape0 = sum;
    key.shape1 = input_lens.size();
    key.shape2 = sum_sq;
    key.kind = kindPrefillBase + id;
    return cached(key, [&] {
        return target.prefillCost(model, input_lens);
    });
}

KernelExec
Platform::prefillExec(const llm::ModelConfig &model,
                      const std::vector<std::uint32_t> &input_lens)
    const
{
    if (input_lens.empty())
        sim::fatal("Platform::prefillExec: no requests");
    return prefillExec(
        model, input_lens,
        _prefillDispatcher->selectPrefill(model, input_lens).target);
}

KernelExec
Platform::prefillChunkExec(
    const llm::ModelConfig &model,
    const std::vector<std::uint32_t> &prior_lens,
    const std::vector<std::uint32_t> &chunk_lens) const
{
    if (prior_lens.size() != chunk_lens.size())
        sim::fatal("Platform::prefillChunkExec: prior/chunk length "
                   "mismatch");
    std::vector<std::uint32_t> before;
    std::vector<std::uint32_t> after;
    before.reserve(prior_lens.size());
    after.reserve(prior_lens.size());
    for (std::size_t i = 0; i < prior_lens.size(); ++i) {
        if (chunk_lens[i] == 0)
            continue;
        after.push_back(prior_lens[i] + chunk_lens[i]);
        if (prior_lens[i] > 0)
            before.push_back(prior_lens[i]);
    }
    KernelExec out;
    if (after.empty())
        return out;
    // Both endpoints are costed on the SAME target - the one the
    // prefill dispatcher picks for the full (after) batch -
    // otherwise a non-static prefill policy could dispatch the two
    // batches differently and make the difference meaningless.
    const TargetId target =
        _prefillDispatcher->selectPrefill(model, after).target;
    out = prefillExec(model, after, target);
    if (!before.empty()) {
        KernelExec prior = prefillExec(model, before, target);
        out.seconds = std::max(out.seconds - prior.seconds, 0.0);
        out.commSeconds =
            std::max(out.commSeconds - prior.commSeconds, 0.0);
        out.energyJoules =
            std::max(out.energyJoules - prior.energyJoules, 0.0);
        out.commJoules =
            std::max(out.commJoules - prior.commJoules, 0.0);
    }
    return out;
}

void
Platform::addKvWriteout(std::uint64_t kv_bytes, KernelExec &out) const
{
    // KV cache write-out to the attention devices.
    const auto &link = _config.topology.attnFabric;
    double agg_bw =
        link.bandwidthBytesPerSec *
        std::max<std::uint32_t>(_config.attnFabricLinks, 1);
    double kv_write = static_cast<double>(kv_bytes) / agg_bw;
    out.seconds += kv_write;
    out.commSeconds += kv_write;
    out.commJoules += static_cast<double>(kv_bytes) *
                      link.energyPerByte;
    out.energyJoules += static_cast<double>(kv_bytes) *
                        link.energyPerByte;
}

KernelExec
Platform::prefillOnGpu(const llm::ModelConfig &model,
                       const std::vector<std::uint32_t> &input_lens)
    const
{
    if (!_gpu)
        sim::panic("Platform '", _config.name, "': prefillOnGpu "
                   "without a GPU");

    std::uint64_t total_tokens = std::accumulate(
        input_lens.begin(), input_lens.end(), std::uint64_t{0});
    // Prefill attention: per request, L x L score work per layer.
    double attn_flops = 0.0;
    std::uint64_t kv_bytes = 0;
    for (std::uint32_t len : input_lens) {
        double L = len;
        attn_flops += 4.0 * L * L * model.hiddenDim * model.numLayers;
        kv_bytes += static_cast<std::uint64_t>(len) *
                    model.kvBytesPerToken();
    }

    llm::KernelWork w = llm::fcTotalWork(
        model,
        static_cast<std::uint32_t>(std::min<std::uint64_t>(
            total_tokens, 1u << 20)));
    gpu::GpuKernelResult g = _gpu->kernel(
        w.flops + attn_flops,
        w.weightBytes + w.activationBytes +
            static_cast<double>(kv_bytes),
        0.0);
    KernelExec out;
    out.seconds = g.seconds;
    out.energyJoules = g.energyJoules;
    out.computeBound = g.computeBound;

    addKvWriteout(kv_bytes, out);
    return out;
}

KernelExec
Platform::prefillOnPim(const llm::ModelConfig &model,
                       const std::vector<std::uint32_t> &input_lens)
    const
{
    std::uint64_t total_tokens = std::accumulate(
        input_lens.begin(), input_lens.end(), std::uint64_t{0});
    std::uint64_t kv_bytes = 0;
    for (std::uint32_t len : input_lens)
        kv_bytes += static_cast<std::uint64_t>(len) *
                    model.kvBytesPerToken();

    // PIM-only platforms prefill on the PIM fleet.
    std::uint32_t tokens = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(total_tokens, 1u << 20));
    KernelExec fc = fcOnPim(model, tokens);
    // Attention prefill: reuse grows with the average context;
    // approximate with the mean prompt length as TLP.
    std::uint32_t mean_len = static_cast<std::uint32_t>(
        total_tokens / input_lens.size());
    KernelExec at = attnExec(model, input_lens,
                             std::max<std::uint32_t>(mean_len, 1));
    KernelExec out;
    out.seconds = fc.seconds + at.seconds;
    out.commSeconds = fc.commSeconds + at.commSeconds;
    out.energyJoules = fc.energyJoules + at.energyJoules;
    out.commJoules = fc.commJoules + at.commJoules;

    addKvWriteout(kv_bytes, out);
    return out;
}

double
Platform::otherSeconds(const llm::ModelConfig &model) const
{
    return _config.otherPerIterationSeconds +
           _config.otherPerLayerSeconds * model.numLayers;
}

namespace {

PlatformConfig
baseConfig()
{
    PlatformConfig cfg;
    cfg.gpuSpec = gpu::a100Spec();
    cfg.numGpus = 6;
    cfg.numFcDevices = 30;
    cfg.numAttnDevices = 60;
    cfg.topology.gpuFabric = interconnect::nvlink();
    cfg.topology.attnFabric = interconnect::pcie5();
    cfg.fcFabricLinks = 6;  // one NVLink group per GPU
    cfg.attnFabricLinks = 8; // PCIe switch complex
    return cfg;
}

} // namespace

PlatformConfig
makePapiConfig()
{
    PlatformConfig cfg = baseConfig();
    cfg.name = "papi";
    cfg.fcPolicy = FcPolicy::Dynamic;
    cfg.tracksRuntimeRlp = true;
    cfg.hasGpu = true;
    cfg.fcDeviceConfig = pim::fcPimConfig();
    cfg.fcDevicesCompute = true;
    cfg.attnDeviceConfig = pim::attnPimConfig();
    return cfg;
}

PlatformConfig
makeA100AttAccConfig()
{
    PlatformConfig cfg = baseConfig();
    cfg.name = "a100+attacc";
    cfg.fcPolicy = FcPolicy::AlwaysGpu;
    cfg.hasGpu = true;
    // Weights live in plain GPU HBM: model as AttAcc stacks with
    // near-bank compute disabled.
    cfg.fcDeviceConfig = pim::attAccConfig();
    cfg.fcDeviceConfig.name = "gpu-hbm";
    cfg.fcDevicesCompute = false;
    cfg.attnDeviceConfig = pim::attAccConfig();
    return cfg;
}

PlatformConfig
makeA100HbmPimConfig()
{
    PlatformConfig cfg = makeA100AttAccConfig();
    cfg.name = "a100+hbm-pim";
    cfg.attnDeviceConfig = pim::hbmPimConfig();
    return cfg;
}

PlatformConfig
makeAttAccOnlyConfig()
{
    PlatformConfig cfg = baseConfig();
    cfg.name = "attacc-only";
    cfg.fcPolicy = FcPolicy::AlwaysPim;
    cfg.hasGpu = false;
    cfg.fcDeviceConfig = pim::attAccConfig();
    cfg.fcDevicesCompute = true;
    cfg.attnDeviceConfig = pim::attAccConfig();
    // No GPU fabric: PIM devices hang off the host complex.
    cfg.topology.gpuFabric = interconnect::pcie5();
    return cfg;
}

PlatformConfig
makePimOnlyPapiConfig()
{
    PlatformConfig cfg = makeAttAccOnlyConfig();
    cfg.name = "pim-only-papi";
    cfg.fcDeviceConfig = pim::fcPimConfig();
    cfg.attnDeviceConfig = pim::attnPimConfig();
    return cfg;
}

} // namespace papi::core
