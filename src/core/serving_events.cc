#include "core/serving_events.hh"

#include <algorithm>
#include <memory>

#include "sim/logging.hh"

namespace papi::core {

ServingEventDriver::ServingEventDriver(std::vector<ServingSim *> sims)
    : _sims(std::move(sims)),
      _timeline(std::max<std::size_t>(_sims.size(), 1))
{
    if (_sims.empty())
        sim::fatal("ServingEventDriver: need at least one replica");
    for (const ServingSim *s : _sims) {
        if (!s)
            sim::fatal("ServingEventDriver: null replica");
    }
    _deadlineGen.assign(_sims.size(), 0);
    _deadlineArmed.assign(_sims.size(), 0);
    _down.assign(_sims.size(), 0);
    _boundaryGen.assign(_sims.size(), 0);
}

void
ServingEventDriver::setWorkerThreads(unsigned threads)
{
    _workerThreads = threads == 0 ? 1 : threads;
}

std::vector<LostRequest>
ServingEventDriver::crashReplica(std::uint32_t g, double when)
{
    if (g >= _sims.size())
        sim::fatal("ServingEventDriver: crash targets replica ", g,
                   " of ", _sims.size());
    if (_down[g])
        return {}; // already dark; nothing further to lose
    _down[g] = 1;
    // Strand every event the dead batch had in flight: its next
    // iteration boundary and any armed fill deadline must no-op.
    ++_boundaryGen[g];
    ++_deadlineGen[g];
    _deadlineArmed[g] = 0;
    return _sims[g]->crash(when);
}

void
ServingEventDriver::restartReplica(std::uint32_t g, double when)
{
    if (g >= _sims.size())
        sim::fatal("ServingEventDriver: restart targets replica ", g,
                   " of ", _sims.size());
    if (!_down[g])
        return;
    _down[g] = 0;
    _sims[g]->restartAt(when);
    // Arrivals routed here while it was dark (total-outage fallback)
    // queued in its pending list; start draining them now.
    if (!_sims[g]->hasActive() &&
        (_sims[g]->hasPending() || _sims[g]->preemptedCount() > 0))
        idlePoke(g);
}

void
ServingEventDriver::redeliver(std::uint32_t g,
                              const llm::TimedRequest &request,
                              double ready_seconds)
{
    if (g >= _sims.size())
        sim::fatal("ServingEventDriver: redeliver targets replica ",
                   g, " of ", _sims.size());
    _sims[g]->redeliver(request, ready_seconds);
    if (!_down[g] && !_sims[g]->hasActive())
        idlePoke(g);
}

void
ServingEventDriver::scheduleAt(double seconds,
                               std::function<void()> fn)
{
    scheduleGlobal(seconds, kFaultPriority, std::move(fn));
}

void
ServingEventDriver::setLinkFaults(
    std::vector<sim::LinkFault> windows, double timeout_seconds)
{
    if (!_disagg)
        sim::fatal("ServingEventDriver: link faults degrade the KV "
                   "migration fabric; there is none without a "
                   "disaggregated topology");
    if (!(timeout_seconds > 0.0))
        sim::fatal("ServingEventDriver: transfer timeout must be "
                   "positive (got ", timeout_seconds, ")");
    _linkFaults = std::move(windows);
    _transferTimeoutSeconds = timeout_seconds;
}

void
ServingEventDriver::enableDisaggregation(
    const DisaggTopology &topology)
{
    if (topology.prefillReplicas == 0 ||
        topology.prefillReplicas >= _sims.size())
        sim::fatal("ServingEventDriver: a disaggregated topology "
                   "needs at least one prefill and one decode "
                   "replica (got ", topology.prefillReplicas,
                   " prefill of ", _sims.size(), " total)");
    topology.transferLink.validate();
    for (std::uint32_t g = 0; g < _sims.size(); ++g) {
        const ServingRole want = g < topology.prefillReplicas
                                     ? ServingRole::Prefill
                                     : ServingRole::Decode;
        if (_sims[g]->role() != want)
            sim::fatal("ServingEventDriver: replica ", g,
                       " role does not match the disaggregated "
                       "topology (pool split at ",
                       topology.prefillReplicas, ")");
    }
    _disagg = true;
    _topology = topology;
    _inFlightTo.assign(_sims.size(), 0);
}

std::uint32_t
ServingEventDriver::pickDecodeReplica() const
{
    const std::uint32_t alive = pickAliveDecodeReplica();
    if (alive != kNoReplica)
        return alive;
    // Whole decode pool down: pick as if healthy (deterministic);
    // the completion event sees the dead target and falls back.
    std::uint32_t best = _topology.prefillReplicas;
    std::uint64_t best_load = ~std::uint64_t{0};
    for (std::uint32_t d = _topology.prefillReplicas;
         d < _sims.size(); ++d) {
        const std::uint64_t load =
            _sims[d]->outstanding() + _inFlightTo[d];
        if (load < best_load) {
            best = d;
            best_load = load;
        }
    }
    return best;
}

std::uint32_t
ServingEventDriver::pickAliveDecodeReplica() const
{
    std::uint32_t best = kNoReplica;
    std::uint64_t best_load = ~std::uint64_t{0};
    for (std::uint32_t d = _topology.prefillReplicas;
         d < _sims.size(); ++d) {
        if (_down[d])
            continue;
        const std::uint64_t load =
            _sims[d]->outstanding() + _inFlightTo[d];
        if (load < best_load) {
            best = d;
            best_load = load;
        }
    }
    return best;
}

void
ServingEventDriver::fallbackRecompute(
    const llm::TimedRequest &request, double when)
{
    ++_xfer.fallbacks;
    const std::uint32_t d = pickAliveDecodeReplica();
    if (d == kNoReplica) {
        if (!_onUnrecoverable)
            sim::fatal("ServingEventDriver: request ",
                       request.request.id,
                       " lost its KV migration with no alive decode "
                       "replica and no recovery handler installed");
        _onUnrecoverable(request, when);
        return;
    }
    // The decode replica's plain pending path charges the full
    // prompt prefill - the recompute is paid honestly there.
    redeliver(d, request, when);
}

void
ServingEventDriver::drainHandoffs(std::uint32_t g)
{
    if (!_sims[g]->hasHandoffs())
        return;
    if (!_disagg)
        sim::fatal("ServingEventDriver: replica ", g,
                   " handed off prefilled requests but no "
                   "disaggregated topology is configured");
    for (HandoffRecord &h : _sims[g]->takeHandoffs()) {
        // The migration is a timed transfer on the fabric: one
        // message of the handoff's KV block bytes, overlappable
        // with compute on both pools but SERIALIZED on the shared
        // link (a busy-until cursor queues concurrent migrations,
        // so aggregate transfer throughput can never exceed the
        // link's bandwidth). Link slots are reserved in
        // handoff-drain (event) order; a transfer drained later but
        // ready earlier waits its turn, so the model is
        // conservative - it never grants more fabric than exists,
        // at the price of occasional idle gaps. The destination is
        // chosen at handoff time (deterministic: least loaded,
        // lowest index).
        const std::uint32_t d = pickDecodeReplica();
        const double start =
            std::max(h.readySeconds, _linkBusyUntil);
        double link_seconds =
            _topology.transferLink.transferSeconds(h.kvBytes);
        double done = start + link_seconds;
        // Only a window overlapping the transfer changes anything;
        // untouched transfers keep the nominal arithmetic bit-for-
        // bit (a crash-free plan whose windows never engage is
        // byte-identical to no injector at all - pinned).
        for (const sim::LinkFault &w : _linkFaults) {
            if (w.endSeconds > start && w.startSeconds < done) {
                done = sim::degradedTransferEnd(
                    start,
                    _topology.transferLink.latencySeconds +
                        _topology.transferLink
                            .messageOverheadSeconds,
                    static_cast<double>(h.kvBytes),
                    _topology.transferLink.bandwidthBytesPerSec,
                    _linkFaults);
                link_seconds = done - start;
                break;
            }
        }
        if (done - start > _transferTimeoutSeconds) {
            // The fabric is too degraded (or partitioned) to move
            // this KV block in time: abandon the migration, free the
            // link at the timeout, and recompute the prompt on the
            // decode pool instead.
            _linkBusyUntil = start + _transferTimeoutSeconds;
            _xfer.linkSeconds += _transferTimeoutSeconds;
            const llm::TimedRequest req = h.request;
            const double when = start + _transferTimeoutSeconds;
            scheduleGlobal(when, kTransferPriority,
                           [this, req, when] {
                               fallbackRecompute(req, when);
                           });
            continue;
        }
        _linkBusyUntil = done;
        ++_xfer.transfers;
        _xfer.bytes += h.kvBytes;
        _xfer.linkSeconds += link_seconds;
        _xfer.joules +=
            _topology.transferLink.transferJoules(h.kvBytes);
        ++_inFlightTo[d];
        const std::size_t idx = _transferStore.size();
        _transferStore.push_back(
            {h.request, done, h.kvTokens, d});
        scheduleGlobal(done, kTransferPriority, [this, idx] {
            const PendingTransfer &t = _transferStore[idx];
            --_inFlightTo[t.target];
            if (_down[t.target]) {
                // The destination died while the KV was in flight;
                // the migrated bytes landed nowhere.
                fallbackRecompute(t.request, t.doneSeconds);
                return;
            }
            _sims[t.target]->deliverPrefilled(t.request,
                                              t.doneSeconds,
                                              t.kvTokens);
            if (!_sims[t.target]->hasActive())
                idlePoke(t.target);
        });
    }
}

bool
ServingEventDriver::fastPathEligible() const
{
    // Pre-routing requires that routing decisions cannot observe
    // replica state (the caller's declaration) and that no event
    // needs the coordinator mid-stream: disaggregation migrates KV
    // through global transfer events, and batch-level fill rules
    // read the shared undelivered-arrivals counter.
    if (!_routeIndependent || _disagg)
        return false;
    for (ServingSim *s : _sims) {
        if (s->servingOptions().admission ==
            AdmissionPolicy::BatchLevel)
            return false;
    }
    return true;
}

void
ServingEventDriver::preRouteStream(
    const std::vector<llm::TimedRequest> &stream,
    const RouteFn &route)
{
    // Route the whole stream up front, in stream order - the exact
    // call sequence the delivery-time path makes, so stateful-but-
    // state-independent routers (a round-robin cursor) decide
    // identically. Each replica's arrivals then become events on
    // its own shard: one event per burst timestamp delivering that
    // replica's slice (in stream order) and resolving the replica,
    // which is the per-replica projection of the global
    // deliver-burst-then-poke-everyone rule - exact, because a poke
    // of a replica that received nothing is a no-op under
    // token-level admission.
    _preRouted.assign(_sims.size(), {});
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const std::uint32_t g = route(stream[i]);
        if (g >= _sims.size())
            sim::fatal("ServingEventDriver: route returned "
                       "replica ", g, " of ", _sims.size());
        _preRouted[g].push_back(static_cast<std::uint32_t>(i));
    }
    // All arrivals are accounted for before the clock starts; the
    // shared counter stays untouched by the parallel shards (no
    // batch-level admission on this path reads it).
    _undelivered = 0;
    const llm::TimedRequest *reqs = stream.data();
    for (std::uint32_t g = 0; g < _sims.size(); ++g) {
        const std::vector<std::uint32_t> &order = _preRouted[g];
        const std::uint32_t *ids = order.data();
        for (std::size_t a = 0; a < order.size();) {
            std::size_t b = a + 1;
            while (b < order.size() &&
                   // detlint: allow(float-eq): same-instant burst
                   // grouping compares two copies of one stream
                   // timestamp, never a computed value; bitwise
                   // equality IS the contract.
                   reqs[ids[b]].arrivalSeconds ==
                       reqs[ids[a]].arrivalSeconds)
                ++b;
            scheduleReplica(
                g, reqs[ids[a]].arrivalSeconds, kArrivalPriority,
                [this, g, reqs, ids, a, b] {
                    for (std::size_t k = a; k < b; ++k)
                        _sims[g]->deliver(reqs[ids[k]]);
                    idlePoke(g);
                });
            a = b;
        }
    }
}

void
ServingEventDriver::runQueues()
{
    if (_workerThreads > 1 && _sims.size() > 1) {
        sim::WorkerPool pool(_workerThreads);
        _timeline.run(&pool);
    } else {
        _timeline.run(nullptr);
    }
}

void
ServingEventDriver::runStream(
    const std::vector<llm::TimedRequest> &stream,
    const RouteFn &route)
{
    if (!route)
        sim::fatal("ServingEventDriver: no routing function");
    _streamed = true;
    _undelivered = stream.size();

    if (fastPathEligible()) {
        preRouteStream(stream, route);
    } else {
        // One global event per distinct arrival timestamp: the whole
        // burst is delivered (in stream order) before any replica
        // reacts, exactly as the retired loop's deliver_up_to() did
        // - so two same-time arrivals to one idle replica prefill as
        // one batch. Arrivals are window barriers: every shard is
        // advanced to just below the burst's key first, so the
        // routing function observes exactly the serial-order loads.
        for (std::size_t i = 0; i < stream.size();) {
            std::size_t j = i + 1;
            while (j < stream.size() &&
                   // detlint: allow(float-eq): same-instant burst
                   // grouping over verbatim stream timestamps -
                   // equal doubles map to equal orderedTicks, so
                   // this matches the queue's own key equality.
                   stream[j].arrivalSeconds ==
                       stream[i].arrivalSeconds)
                ++j;
            const llm::TimedRequest *reqs = stream.data();
            scheduleGlobal(
                stream[i].arrivalSeconds, kArrivalPriority,
                [this, reqs, i, j, &route] {
                    for (std::size_t k = i; k < j; ++k) {
                        const std::uint32_t g = route(reqs[k]);
                        if (g >= _sims.size())
                            sim::fatal("ServingEventDriver: route "
                                       "returned replica ", g,
                                       " of ", _sims.size());
                        _sims[g]->deliver(reqs[k]);
                        --_undelivered;
                    }
                    pokeIdleReplicas();
                });
            i = j;
        }
    }
    runQueues();
    checkDrained();
    _preRouted.clear();
    _preRouted.shrink_to_fit();
}

void
ServingEventDriver::runStreamGenerated(
    const std::function<llm::TimedRequest()> &next,
    std::uint64_t count, const RouteFn &route)
{
    if (!next)
        sim::fatal("ServingEventDriver: no arrival generator");
    if (!route)
        sim::fatal("ServingEventDriver: no routing function");
    if (count == 0)
        sim::fatal("ServingEventDriver: empty generated stream");
    _streamed = true;
    _undelivered = count;

    // One-arrival lookahead: the head is the next burst's first
    // arrival; each burst event delivers the head plus every
    // same-timestamp follower (pulling as it goes), then schedules
    // the next burst at the new head's timestamp. Chained global
    // events keep arrivals as window barriers, so dynamic routing
    // observes exactly the serial-order loads - and only one
    // undelivered arrival ever exists in memory.
    struct GenState
    {
        llm::TimedRequest head;
        bool headValid = false;
        std::uint64_t pullsLeft = 0;
    };
    auto st = std::make_shared<GenState>();
    st->pullsLeft = count;
    st->head = next();
    st->headValid = true;
    --st->pullsLeft;

    auto burst = std::make_shared<std::function<void()>>();
    *burst = [this, st, &next, &route, burst] {
        const double t = st->head.arrivalSeconds;
        for (;;) {
            const llm::TimedRequest r = st->head;
            st->headValid = false;
            const std::uint32_t g = route(r);
            if (g >= _sims.size())
                sim::fatal("ServingEventDriver: route returned "
                           "replica ", g, " of ", _sims.size());
            _sims[g]->deliver(r);
            --_undelivered;
            if (st->pullsLeft == 0)
                break;
            st->head = next();
            st->headValid = true;
            --st->pullsLeft;
            if (st->head.arrivalSeconds < t)
                sim::fatal("ServingEventDriver: generated arrivals "
                           "must be sorted (", st->head.arrivalSeconds,
                           " after ", t, ")");
            // detlint: allow(float-eq): burst boundary test between
            // two generator-produced timestamps; values are carried,
            // never recomputed, so inequality is exact.
            if (st->head.arrivalSeconds != t)
                break; // next burst starts later
        }
        if (st->headValid)
            scheduleGlobal(st->head.arrivalSeconds, kArrivalPriority,
                           [burst] { (*burst)(); });
        pokeIdleReplicas();
    };
    scheduleGlobal(st->head.arrivalSeconds, kArrivalPriority,
                   [burst] { (*burst)(); });
    runQueues();
    *burst = nullptr; // break the self-capture cycle
    checkDrained();
}

void
ServingEventDriver::runPredelivered()
{
    _streamed = false;
    _undelivered = 0;
    pokeIdleReplicas();
    runQueues();
    checkDrained();
}

void
ServingEventDriver::pokeIdleReplicas()
{
    // Index order mirrors the retired loop's top-of-pass sweep.
    for (std::uint32_t g = 0; g < _sims.size(); ++g) {
        if (!_down[g] && !_sims[g]->hasActive() &&
            (_sims[g]->hasPending() ||
             _sims[g]->preemptedCount() > 0))
            idlePoke(g);
    }
}

void
ServingEventDriver::idlePoke(std::uint32_t g)
{
    ServingSim &s = *_sims[g];
    if (_down[g] || s.hasActive())
        return;
    if (!s.hasPending()) {
        // Only parked (preempted) work remains: resume immediately;
        // there is no arrival to wait for.
        if (s.preemptedCount() > 0 && s.admit() > 0)
            scheduleBoundary(g);
        return;
    }
    const bool batch_level =
        s.servingOptions().admission == AdmissionPolicy::BatchLevel;
    if (!_streamed || !batch_level) {
        // Token-level admission (or the pre-delivered path, where
        // stepIdle sees the full stream): start right away.
        startBatch(g);
        return;
    }
    // Streamed batch-level admission: start once the batch is full
    // or no further arrival can ever join, otherwise arm the fill
    // timeout for this idle spell.
    if (s.pendingCount() >= s.servingOptions().maxRlp ||
        _undelivered == 0) {
        startBatch(g);
        return;
    }
    if (_deadlineArmed[g])
        return;
    _deadlineArmed[g] = 1;
    const std::uint64_t gen = ++_deadlineGen[g];
    const double deadline = s.firstPendingArrivalSeconds() +
                            s.servingOptions().batchTimeoutSeconds;
    scheduleReplica(g, deadline, kDeadlinePriority, [this, g, gen] {
        if (gen != _deadlineGen[g])
            return; // a batch started since; stale deadline
        _deadlineArmed[g] = 0;
        if (!_sims[g]->hasActive() && _sims[g]->hasPending())
            startBatch(g);
    });
}

void
ServingEventDriver::startBatch(std::uint32_t g)
{
    ++_deadlineGen[g]; // invalidate any outstanding deadline
    _deadlineArmed[g] = 0;
    _sims[g]->stepIdle();
    drainHandoffs(g);
    if (_sims[g]->hasActive()) {
        scheduleBoundary(g);
        return;
    }
    // Prefill-pool replica with non-chunked prefill: the whole
    // admission wave was handed off synchronously. Keep admitting
    // while already-delivered work remains (each pass admits at
    // least one request or stepIdle diagnoses the KV fit).
    if (_sims[g]->hasPending())
        idlePoke(g);
}

void
ServingEventDriver::scheduleBoundary(std::uint32_t g)
{
    ServingSim &s = *_sims[g];
    const std::uint64_t gen = _boundaryGen[g];
    const double when = s.now() + s.peekIterationSeconds();
    scheduleReplica(g, when,
                    kBoundaryPriority + static_cast<sim::Priority>(g),
                    [this, g, gen] {
                        if (gen != _boundaryGen[g])
                            return; // replica crashed since; stale
                        boundary(g);
                    });
}

void
ServingEventDriver::boundary(std::uint32_t g)
{
    ServingSim &s = *_sims[g];
    s.stepDecode();
    s.admit();
    drainHandoffs(g);
    if (s.hasActive()) {
        scheduleBoundary(g);
        return;
    }
    if (s.hasPending() || s.preemptedCount() > 0)
        idlePoke(g);
}

void
ServingEventDriver::checkDrained() const
{
    for (std::size_t g = 0; g < _sims.size(); ++g) {
        if (_down[g])
            continue; // never restarted; FaultInjector::finalize
                      // harvests anything still queued as failed
        if (_sims[g]->canStep() || _sims[g]->preemptedCount() > 0 ||
            _sims[g]->hasHandoffs())
            sim::fatal("ServingEventDriver: replica ", g,
                       " still holds work after the event queue "
                       "drained (preempted requests could not be "
                       "re-admitted - KV pool too small?)");
    }
}

} // namespace papi::core
