/**
 * @file
 * Offline calibration of the memory-boundedness threshold alpha
 * (paper Section 5.2.1).
 *
 * "The threshold alpha is determined through offline iterative
 * evaluation, where we run the FC kernel on both PIM and PU units
 * under varying parallelization levels, using the observed execution
 * times to establish the best alpha."
 */

#ifndef PAPI_CORE_THRESHOLD_CALIBRATOR_HH
#define PAPI_CORE_THRESHOLD_CALIBRATOR_HH

#include <cstdint>
#include <vector>

#include "core/platform.hh"
#include "llm/model_config.hh"

namespace papi::core {

/** One calibration sample. */
struct CalibrationPoint
{
    std::uint32_t tokens = 0; ///< RLP x TLP.
    double gpuSeconds = 0.0; ///< FC latency on the GPU path.
    double pimSeconds = 0.0; ///< FC latency on the FC-PIM path.
};

/** Result of an alpha calibration sweep. */
struct CalibrationResult
{
    double alpha = 0.0; ///< The calibrated threshold.
    std::vector<CalibrationPoint> points; ///< The sweep behind it.
};

/** Offline alpha calibration against a platform's FC targets. */
class ThresholdCalibrator
{
  public:
    /**
     * Sweep tokens = 1..max_tokens (geometric grid plus boundary
     * refinement) measuring FC latency on GPU and FC-PIM; alpha is
     * the largest token count at which PIM still wins.
     *
     * The platform must have both a GPU and computing FC devices.
     */
    static CalibrationResult calibrate(const Platform &platform,
                                       const llm::ModelConfig &model,
                                       std::uint32_t max_tokens = 512);
};

} // namespace papi::core

#endif // PAPI_CORE_THRESHOLD_CALIBRATOR_HH
