/**
 * @file
 * Offline calibration of the memory-boundedness threshold alpha
 * (paper Section 5.2.1).
 *
 * "The threshold alpha is determined through offline iterative
 * evaluation, where we run the FC kernel on both PIM and PU units
 * under varying parallelization levels, using the observed execution
 * times to establish the best alpha."
 *
 * The sweep is generic over any pair of FC-capable execution targets
 * from a platform's registry: the paper's (FC-PIM, GPU) pair is the
 * default, resolved from the platform's threshold dispatch policy
 * when it has one.
 */

#ifndef PAPI_CORE_THRESHOLD_CALIBRATOR_HH
#define PAPI_CORE_THRESHOLD_CALIBRATOR_HH

#include <cstdint>
#include <vector>

#include "core/platform.hh"
#include "llm/model_config.hh"

namespace papi::core {

/** One calibration sample. */
struct CalibrationPoint
{
    std::uint32_t tokens = 0; ///< RLP x TLP.
    /** FC latency on the pair's memory-bound (below) side. */
    double belowSeconds = 0.0;
    /** FC latency on the pair's compute-bound (above) side. */
    double aboveSeconds = 0.0;
};

/** Result of an alpha calibration sweep. */
struct CalibrationResult
{
    double alpha = 0.0; ///< The calibrated threshold.
    TargetPair pair;    ///< The calibrated target pair.
    std::vector<CalibrationPoint> points; ///< The sweep behind it.
};

/** Offline alpha calibration against a platform's FC targets. */
class ThresholdCalibrator
{
  public:
    /**
     * Calibrate the platform's own threshold pair: the FC dispatch
     * policy's pair when its rule is Threshold, otherwise the legacy
     * (fc-pim, gpu) pair. Fatal if the platform lacks either target.
     */
    static CalibrationResult calibrate(const Platform &platform,
                                       const llm::ModelConfig &model,
                                       std::uint32_t max_tokens = 512);

    /**
     * Sweep tokens = 1..max_tokens (geometric grid plus boundary
     * refinement) measuring FC latency on both targets of @p pair;
     * alpha is the largest token count at which the pair's below
     * (memory-bound) target still wins. Both targets must support
     * the FC phase.
     */
    static CalibrationResult
    calibratePair(const Platform &platform,
                  const llm::ModelConfig &model, TargetPair pair,
                  std::uint32_t max_tokens = 512);
};

} // namespace papi::core

#endif // PAPI_CORE_THRESHOLD_CALIBRATOR_HH
