#include "core/serving_engine.hh"

#include <algorithm>
#include <deque>

#include "llm/kv_cache.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace papi::core {

namespace {

/** A request being decoded, with serving-side bookkeeping. */
struct ActiveRequest
{
    llm::Request request;
    double arrivalSeconds = 0.0;
};

} // namespace

ServingResult
ServingEngine::run(const std::vector<llm::TimedRequest> &stream,
                   const llm::SpeculativeConfig &spec,
                   const llm::ModelConfig &model,
                   const ServingOptions &options)
{
    spec.validate();
    if (stream.empty())
        sim::fatal("ServingEngine: empty request stream");
    if (options.maxRlp == 0)
        sim::fatal("ServingEngine: maxRlp must be >= 1");
    for (std::size_t i = 1; i < stream.size(); ++i) {
        if (stream[i].arrivalSeconds < stream[i - 1].arrivalSeconds)
            sim::fatal("ServingEngine: arrivals must be sorted");
    }

    llm::KvCacheManager kv(model, _platform.config().numAttnDevices,
                           _platform.config()
                               .attnDeviceConfig.capacityBytes());

    ServingResult out;
    sim::Rng rng(options.seed);
    std::deque<llm::TimedRequest> pending(stream.begin(),
                                          stream.end());
    std::vector<ActiveRequest> active;
    std::vector<double> latencies;
    latencies.reserve(stream.size());

    double now = stream.front().arrivalSeconds;
    double rlp_time_integral = 0.0;
    double busy_time = 0.0;

    // Per-iteration decisions are stateless threshold checks
    // (peek); RLP transitions in both directions are counted here.
    const bool dynamic =
        _platform.config().fcPolicy == FcPolicy::Dynamic;
    DynamicScheduler sched(options.alpha, 1, spec.length);
    bool sched_started = false;
    FcTarget prev_target = FcTarget::FcPim;

    // Reused across iterations; refilled in place.
    std::vector<std::uint32_t> prefill_lens;
    std::vector<std::uint32_t> ctx;
    prefill_lens.reserve(options.maxRlp);
    ctx.reserve(options.maxRlp);

    auto admit = [&]() {
        std::uint32_t admitted = 0;
        prefill_lens.clear();
        // Batch-level scheduling admits only into an empty batch.
        if (options.admission == AdmissionPolicy::BatchLevel &&
            !active.empty())
            return admitted;
        while (!pending.empty() &&
               pending.front().arrivalSeconds <= now &&
               active.size() < options.maxRlp) {
            const llm::Request &req = pending.front().request;
            // Reserve the worst case so growth can never fail.
            std::uint64_t worst = static_cast<std::uint64_t>(
                req.inputLen) + req.outputLen;
            if (!kv.canAdmit(worst))
                break;
            kv.admit(req.id, worst);
            ActiveRequest a;
            a.request = req;
            a.arrivalSeconds = pending.front().arrivalSeconds;
            prefill_lens.push_back(a.request.inputLen);
            active.push_back(a);
            pending.pop_front();
            ++admitted;
        }
        if (admitted > 0) {
            // Prefill the newcomers before the next decode step.
            KernelExec pre =
                _platform.prefillExec(model, prefill_lens);
            now += pre.seconds;
            busy_time += pre.seconds;
            out.energyJoules += pre.energyJoules;
            out.admissions += admitted;
        }
        return admitted;
    };

    while (!pending.empty() || !active.empty()) {
        if (active.empty()) {
            // Idle until the next arrival.
            now = std::max(now, pending.front().arrivalSeconds);
            if (options.admission == AdmissionPolicy::BatchLevel &&
                pending.size() >= options.maxRlp) {
                // Dynamic batching: if a full batch is already
                // waiting, start once the last member has arrived.
                now = std::max(
                    now,
                    pending[options.maxRlp - 1].arrivalSeconds);
            } else if (options.admission ==
                       AdmissionPolicy::BatchLevel) {
                // Otherwise wait out the fill timeout (or until the
                // batch fills, whichever comes first).
                double deadline = pending.front().arrivalSeconds +
                                  options.batchTimeoutSeconds;
                std::size_t fills = std::min<std::size_t>(
                    pending.size(), options.maxRlp);
                double full_at =
                    pending[fills - 1].arrivalSeconds;
                now = std::max(now, std::min(deadline, full_at));
            }
            admit();
            continue;
        }

        const auto rlp = static_cast<std::uint32_t>(active.size());
        const std::uint32_t tlp = spec.length;
        const std::uint32_t tokens = rlp * tlp;

        FcTarget target;
        switch (_platform.config().fcPolicy) {
          case FcPolicy::AlwaysGpu:
            target = FcTarget::Gpu;
            break;
          case FcPolicy::AlwaysPim:
            target = FcTarget::FcPim;
            break;
          case FcPolicy::Oracle: {
            double g = _platform.fcExec(model, tokens,
                                        FcTarget::Gpu).seconds;
            double p = _platform.fcExec(model, tokens,
                                        FcTarget::FcPim).seconds;
            target = g <= p ? FcTarget::Gpu : FcTarget::FcPim;
            break;
          }
          case FcPolicy::Dynamic:
          default:
            target = sched.peek(rlp, tlp).target;
            break;
        }
        if (dynamic) {
            if (sched_started && target != prev_target)
                ++out.reschedules;
            if (sched_started && target == FcTarget::Gpu &&
                prev_target == FcTarget::FcPim)
                ++out.reschedulesToGpu;
            prev_target = target;
            sched_started = true;
        }

        ctx.clear();
        for (const auto &a : active)
            ctx.push_back(a.request.contextLen());

        KernelExec fc = _platform.fcExec(model, tokens, target);
        KernelExec at = _platform.attnExec(model, ctx, tlp);
        double other = _platform.otherSeconds(model);
        double iter_seconds = fc.seconds + at.seconds + other;

        rlp_time_integral += iter_seconds * rlp;
        busy_time += iter_seconds;
        now += iter_seconds;
        out.energyJoules +=
            fc.energyJoules + at.energyJoules + other * 50.0;
        ++out.iterations;
        if (target == FcTarget::Gpu)
            ++out.fcOnGpuIterations;
        else
            ++out.fcOnPimIterations;

        out.peakKvUtilization = std::max(
            out.peakKvUtilization, kv.occupancy().utilization());

        // Advance generation; retire finished requests.
        std::uint32_t accepted = spec.sampleAccepted(rng);
        for (auto it = active.begin(); it != active.end();) {
            out.tokensGenerated += it->request.advance(accepted);
            if (it->request.finished()) {
                latencies.push_back(now - it->arrivalSeconds);
                kv.release(it->request.id);
                it = active.erase(it);
            } else {
                ++it;
            }
        }

        // Token-level scheduling: admit newcomers immediately.
        admit();
    }

    out.makespanSeconds = now - stream.front().arrivalSeconds;
    out.meanRlp = busy_time > 0.0 ? rlp_time_integral / busy_time
                                  : 0.0;

    if (!latencies.empty()) {
        double sum = 0.0;
        for (double l : latencies)
            sum += l;
        out.meanLatencySeconds =
            sum / static_cast<double>(latencies.size());
        std::sort(latencies.begin(), latencies.end());
        auto idx = static_cast<std::size_t>(
            0.95 * static_cast<double>(latencies.size() - 1));
        out.p95LatencySeconds = latencies[idx];
    }
    return out;
}

} // namespace papi::core
