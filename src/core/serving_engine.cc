#include "core/serving_engine.hh"

#include <algorithm>

#include "core/metrics.hh"
#include "core/serving_events.hh"
#include "sim/logging.hh"

namespace papi::core {

namespace {

/** Host power charged against non-GEMV iteration time, watts. */
constexpr double kHostWatts = 50.0;

/** 64-bit finalizer (splitmix64) for the plan-memo slot hash. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

// --------------------------------------------------------------- ServingSim

ServingSim::ServingSim(const Platform &platform,
                       const llm::SpeculativeConfig &spec,
                       const llm::ModelConfig &model,
                       const ServingOptions &options,
                       IterationCostModel cost,
                       AiEstimateFn fc_estimator,
                       StaticBatchMode static_mode)
    : _platform(platform), _spec(spec), _model(model),
      _options(options), _cost(std::move(cost)), _static(static_mode),
      _kv(model, platform.config().numAttnDevices,
          options.kvCapacityOverrideBytes
              ? options.kvCapacityOverrideBytes
              : platform.config().attnDeviceConfig.capacityBytes()),
      _rng(options.seed),
      _fcDispatch(platform.dispatcher(Phase::Fc, options.alpha,
                                      std::move(fc_estimator))),
      _dynamic(_fcDispatch.rule() == DispatchRule::Threshold),
      _targetIters(platform.targets().size(), 0)
{
    _targetIsGpu.reserve(platform.targets().size());
    for (const ExecTarget &t : platform.targets().all())
        _targetIsGpu.push_back(t.kind == TargetKind::Gpu ? 1 : 0);
    spec.validate();
    if (options.maxRlp == 0)
        sim::fatal("ServingSim: maxRlp must be >= 1");
    if (options.alpha <= 0.0)
        sim::fatal("ServingSim: alpha must be positive");
    if (_cost.computeScale <= 0.0)
        sim::fatal("ServingSim: computeScale must be positive");
    _chunked = options.prefillChunkTokens > 0;
    _preempt = options.preemptOnKvPressure;
    _prefixOn = options.prefixCacheEnabled;
    _bounded = options.recordCapacity > 0;
    _role = options.role;
    if (_static.enabled && _prefixOn)
        sim::fatal("ServingSim: prefix caching is a serving-path "
                   "feature; static-batch (decode) runs bypass the "
                   "KV admission gate");
    _kv.setPrefixCacheEnabled(_prefixOn);
    if (_static.enabled && (_chunked || _preempt))
        sim::fatal("ServingSim: chunked prefill / KV preemption are "
                   "serving-path features; static-batch (decode) "
                   "runs use the monolithic prefill");
    if (_role != ServingRole::Colocated) {
        if (_static.enabled)
            sim::fatal("ServingSim: static-batch (decode) runs are "
                       "colocated; disaggregated roles are a "
                       "serving-path feature");
        if (options.admission != AdmissionPolicy::TokenLevel)
            sim::fatal("ServingSim: disaggregated roles require "
                       "token-level admission (batch-level fill "
                       "rules have no meaning on a phase pool)");
    }
    if (_role == ServingRole::Prefill && _preempt)
        sim::fatal("ServingSim: KV preemption is a decode-side "
                   "feature; a prefill replica frees its KV at "
                   "handoff, so pressure never builds");
    if (_preempt && _options.kvSwapGBps <= 0.0)
        sim::fatal("ServingSim: kvSwapGBps must be positive");
    if (_options.deadlineSeconds < 0.0)
        sim::fatal("ServingSim: deadlineSeconds cannot be negative");
    if (_static.enabled && _options.deadlineSeconds > 0.0)
        sim::fatal("ServingSim: deadlines/load shedding are "
                   "serving-path features; static-batch (decode) "
                   "runs admit the whole batch once");
    _kvBlockTokens = _kv.blockTokens();
    _prefillLens.reserve(options.maxRlp);
    _hitPrior.reserve(options.maxRlp);
    _hitNow.reserve(options.maxRlp);
    _ctx.reserve(options.maxRlp);
    _chunkPlan.reserve(options.maxRlp);
    _chunkPrior.reserve(options.maxRlp);
    _chunkNow.reserve(options.maxRlp);
    _decoding.reserve(options.maxRlp);
    _growIdx.reserve(options.maxRlp);
    _growIds.reserve(options.maxRlp);
    _growTok.reserve(options.maxRlp);
    _growBlocks.reserve(options.maxRlp);
    _batch.reserve(options.maxRlp);
    if (options.planMemoSlots == 0 ||
        (options.planMemoSlots & (options.planMemoSlots - 1)) != 0)
        sim::fatal("ServingSim: planMemoSlots must be a power of "
                   "two");
    _planMemo.resize(options.planMemoSlots);
    _planMemoMask = options.planMemoSlots - 1;
}

std::size_t
ServingSim::planMemoSlot(std::uint64_t key1, std::uint64_t key2) const
{
    return static_cast<std::size_t>(
               mix64(key1 ^ mix64(key2))) &
           _planMemoMask;
}

void
ServingSim::deliver(const llm::TimedRequest &request)
{
    if (_anchored && request.arrivalSeconds < _lastDelivered)
        sim::fatal("ServingSim: deliveries must be time-ordered");
    if (!_anchored) {
        _firstArrival = request.arrivalSeconds;
        _now = request.arrivalSeconds;
        _anchored = true;
    }
    _lastDelivered = request.arrivalSeconds;
    _pending.push_back({request, request.arrivalSeconds});
}

void
ServingSim::redeliver(const llm::TimedRequest &request,
                      double ready_seconds)
{
    if (_static.enabled ||
        _options.admission != AdmissionPolicy::TokenLevel)
        sim::fatal("ServingSim: retry redelivery requires the "
                   "token-level serving path");
    if (ready_seconds < request.arrivalSeconds)
        sim::fatal("ServingSim: retry of request ",
                   request.request.id,
                   " cannot precede its original arrival");
    if (_anchored && ready_seconds < _lastDelivered)
        sim::fatal("ServingSim: deliveries must be time-ordered");
    if (!_anchored) {
        _firstArrival = ready_seconds;
        _now = ready_seconds;
        _anchored = true;
    }
    _lastDelivered = ready_seconds;
    _pending.push_back({request, ready_seconds});
}

void
ServingSim::deliverPrefilled(const llm::TimedRequest &request,
                             double ready_seconds,
                             std::uint64_t kv_tokens)
{
    if (_role == ServingRole::Prefill)
        sim::fatal("ServingSim: a prefill-pool replica cannot "
                   "accept migrated KV (request ",
                   request.request.id, ")");
    if (_anchored && ready_seconds < _lastDelivered)
        sim::fatal("ServingSim: deliveries must be time-ordered");
    if (!_anchored) {
        _firstArrival = ready_seconds;
        _now = ready_seconds;
        _anchored = true;
    }
    _lastDelivered = ready_seconds;
    _pendingPrefilled.push_back({request, ready_seconds, kv_tokens});
}

std::vector<HandoffRecord>
ServingSim::takeHandoffs()
{
    std::vector<HandoffRecord> out;
    out.swap(_handoffs);
    return out;
}

std::vector<LostRequest>
ServingSim::crash(double when)
{
    if (_static.enabled)
        sim::fatal("ServingSim: static-batch (decode) runs have no "
                   "fault model");
    syncGen(); // harvest reads true generation progress
    std::vector<LostRequest> lost;
    lost.reserve(_batch.size() + _handoffs.size() +
                 _preempted.size() + _pendingPrefilled.size() +
                 _pending.size());
    // Harvest in a fixed order (active, handed off, preempted,
    // migrated-in, queued) so retry schedules are deterministic.
    for (std::size_t i = 0; i < _batch.size(); ++i) {
        LostRequest l;
        l.request.request.id = _batch.id[i];
        l.request.request.inputLen = _batch.inputLen[i];
        l.request.request.outputLen = _batch.outputLen[i];
        l.request.request.generated = 0;
        l.request.request.prefixKey = _batch.prefixKey[i];
        l.request.request.prefixTokens = _batch.prefixTokens[i];
        l.request.request.insertKey = _batch.insertKey[i];
        l.request.request.insertTokens = _batch.insertTokens[i];
        l.request.arrivalSeconds = _batch.arrivalSeconds[i];
        l.request.sessionId = _batch.sessionId[i];
        l.admitted = true;
        l.generatedLost = _batch.generated[i];
        l.prefillLostTokens =
            _batch.inputLen[i] - _batch.prefillRemaining[i];
        _kv.release(_batch.id[i]);
        lost.push_back(l);
    }
    _batch.clear();
    _steadyValid = false;
    // Handed-off prefills not yet collected by the driver die with
    // the replica (their KV was released at handoff; the buffered
    // transfer payload is lost).
    for (const HandoffRecord &h : _handoffs) {
        LostRequest l;
        l.request = h.request;
        l.request.request.generated = 0;
        l.admitted = true;
        l.prefillLostTokens = h.request.request.inputLen;
        lost.push_back(l);
    }
    _handoffs.clear();
    // Preempted requests released their device KV at eviction; any
    // swapped-out copy lived on this replica's host and is gone too.
    // The eviction log replays them in eviction order (entries whose
    // stamp no longer matches were resumed since - skip them).
    for (const auto &[key, stamp] : _preemptOrder) {
        const auto it = _preempted.find(key);
        if (it == _preempted.end() || it->second.evictSeq != stamp)
            continue;
        const PreemptedRequest &p = it->second;
        LostRequest l;
        l.request.request = p.state.request;
        l.request.request.generated = 0;
        l.request.arrivalSeconds = p.state.arrivalSeconds;
        l.request.sessionId = p.state.sessionId;
        l.admitted = true;
        l.generatedLost = p.state.request.generated;
        l.prefillLostTokens =
            p.state.request.inputLen - p.state.prefillRemaining;
        lost.push_back(l);
    }
    _preempted.clear();
    _preemptOrder.clear();
    // Migrated-in prefills awaiting admission: the prompt phase ran
    // on the prefill pool and its product died here unadmitted.
    for (const PrefilledPending &pp : _pendingPrefilled) {
        LostRequest l;
        l.request = pp.request;
        l.request.request.generated = 0;
        l.admitted = false;
        l.prefillLostTokens =
            static_cast<std::uint32_t>(pp.kvTokens);
        lost.push_back(l);
    }
    _pendingPrefilled.clear();
    for (const PendingRequest &p : _pending) {
        LostRequest l;
        l.request = p.request;
        l.request.request.generated = 0;
        l.admitted = false;
        lost.push_back(l);
    }
    _pending.clear();
    _planValid = false;
    _now = std::max(_now, when);
    return lost;
}

void
ServingSim::restartAt(double when)
{
    // The replica comes back empty and cold; only its clock moves
    // (work charged before the crash stays charged).
    _now = std::max(_now, when);
}

void
ServingSim::handoffPrefilled(std::size_t i)
{
    HandoffRecord h;
    h.request.request.id = _batch.id[i];
    h.request.request.inputLen = _batch.inputLen[i];
    h.request.request.outputLen = _batch.outputLen[i];
    h.request.request.generated = _batch.generated[i];
    h.request.arrivalSeconds = _batch.arrivalSeconds[i];
    h.readySeconds = _now;
    h.kvTokens = _batch.contextLen(i);
    const llm::KvExport kv = _kv.exportRequest(_batch.id[i]);
    std::uint64_t blocks = kv.blocks;
    std::uint64_t bytes = kv.bytes;
    if (_prefixOn && _batch.prefixHit[i] > 0 && kv.blocks > 0) {
        // The decode pool already holds the cached prefix blocks
        // (the hit implies a prior request published them), so only
        // the uncached suffix crosses the interconnect. Hits are
        // block-aligned, so the per-block arithmetic is exact.
        // kvTokens stays the full context: the decode pool still
        // reserves the complete footprint on import.
        const std::uint64_t hit_blocks = std::min<std::uint64_t>(
            _batch.prefixHit[i] / _kvBlockTokens, kv.blocks);
        const std::uint64_t block_bytes = kv.bytes / kv.blocks;
        blocks -= hit_blocks;
        bytes -= hit_blocks * block_bytes;
    }
    h.kvBlocks = blocks;
    h.kvBytes = bytes;
    publishPrefix(i);
    ++_out.handoffs;
    _out.prefillHandoffTokens += _batch.inputLen[i];
    _handoffs.push_back(h);
}

void
ServingSim::handoffCompletedPrefills()
{
    _planValid = false; // the live batch shrinks
    syncGen();
    _steadyValid = false;
    std::size_t w = 0;
    for (std::size_t r = 0; r < _batch.size(); ++r) {
        if (_batch.prefillRemaining[r] == 0) {
            handoffPrefilled(r);
        } else {
            _batch.moveTo(w, r);
            ++w;
        }
    }
    _batch.truncate(w);
}

std::uint32_t
ServingSim::fcTokens(std::uint32_t rlp, std::uint32_t tlp) const
{
    std::uint32_t fc_rlp = rlp;
    // The paper's Shortcoming 1: static-batching systems without
    // runtime-RLP tracking execute the padded batch until it drains.
    if (_static.enabled && !_platform.config().tracksRuntimeRlp &&
        _staticInitialRlp > 0)
        fc_rlp = _staticInitialRlp;
    return fc_rlp * tlp;
}

double
ServingSim::scaledSeconds(double kernel_seconds, double other_seconds,
                          std::uint32_t tokens) const
{
    // The trivial path must not be routed through here: callers keep
    // the original single-platform arithmetic bit-identical.
    double seconds =
        kernel_seconds / _cost.computeScale + other_seconds;
    if (_cost.extraSeconds)
        seconds += _cost.extraSeconds(tokens);
    return seconds;
}

std::uint32_t
ServingSim::admit()
{
    // Steady-state early-out: nothing can possibly join when every
    // source is empty or not yet eligible (the mirror of the three
    // admission loop guards below). Returning before any batch
    // access keeps the O(1) decode window's pending uniform advance
    // unfolded - this runs after every decode step.
    if ((!_preempt || _preempted.empty()) &&
        (_pendingPrefilled.empty() ||
         _pendingPrefilled.front().readySeconds > _now) &&
        (_pending.empty() ||
         _pending.front().readySeconds > _now))
        return 0;
    _planValid = false; // batch may change; a peeked plan is stale
    syncGen(); // pushes must not inherit the pending uniform advance
    std::uint32_t admitted = 0;
    _prefillLens.clear();
    _hitPrior.clear();
    _hitNow.clear();
    // Prefix-cache probe for a fresh keyed request (runs only after
    // its KV reservation is gated, so a lookup is never wasted on a
    // request that cannot join). A hit promotes the entry to MRU.
    const auto lookup_prefix =
        [this](const llm::Request &req) -> std::uint32_t {
        if (!_prefixOn || req.prefixKey == 0)
            return 0;
        ++_out.prefixLookups;
        const auto hit = static_cast<std::uint32_t>(_kv.prefixLookup(
            req.prefixKey,
            std::min(req.prefixTokens, req.inputLen)));
        if (hit > 0)
            ++_out.prefixHits;
        return hit;
    };
    // Batch-level scheduling admits only into an empty batch.
    if (_options.admission == AdmissionPolicy::BatchLevel &&
        !_batch.empty())
        return admitted;
    const double decision_time = _now;

    // Preemption mode: re-admit evicted requests first (oldest
    // arrival wins), before any newcomer - an evicted request
    // already holds its admission timestamp and must not starve.
    // _preempted is ordered by exactly that priority, so the head
    // of the map is the winner (O(log n) per resume).
    std::uint32_t resumed = 0;
    double swap_seconds = 0.0;
    while (_preempt && !_preempted.empty() &&
           _batch.size() < _options.maxRlp) {
        const auto best = _preempted.begin();
        const PreemptedRequest &pr = best->second;
        const std::uint32_t ctx = pr.state.request.contextLen();
        const bool recompute =
            _options.preemptPolicy == KvPreemptPolicy::Recompute;
        const std::uint64_t footprint =
            recompute ? ctx : std::max<std::uint32_t>(
                                  pr.kvTokens, 1);
        // Reserve the candidate's footprint plus its own first
        // iteration's growth on top of the existing batch's
        // headroom, so admission can never force an eviction.
        const std::uint64_t reserve = _kv.blocksForTokens(
            footprint + std::max<std::uint32_t>(
                            _spec.length,
                            _options.prefillChunkTokens));
        // Cached prefix blocks are reclaimable headroom (evicted
        // before any preemption); with the cache empty this is the
        // pre-cache freeBlocks() check bit-for-bit.
        if (_kv.availableBlocks() < reserve + worstGrowthBlocks())
            break;
        ActiveSnapshot a = pr.state;
        a.admitSeq = _admitSeqNext++;
        a.stallSeconds += _now - pr.preemptSeconds;
        _out.evictionStallSeconds += _now - pr.preemptSeconds;
        if (recompute) {
            _out.recomputedPrefillTokens += pr.kvTokens;
            if (_chunked) {
                a.prefillRemaining = ctx;
                a.kvTokens = 0;
                a.kvBlocks = _kv.admit(a.request.id, 0);
            } else {
                a.prefillRemaining = 0;
                a.kvTokens = ctx;
                a.kvBlocks = _kv.admit(a.request.id, ctx);
                _prefillLens.push_back(ctx);
            }
        } else {
            // SwapRestore: the KV content survives off-device; pay
            // the transfer back over the attention fabric.
            a.kvTokens = pr.kvTokens;
            a.kvBlocks = _kv.admit(
                a.request.id,
                std::max<std::uint32_t>(a.kvTokens, 1));
            swap_seconds +=
                static_cast<double>(a.kvTokens) *
                static_cast<double>(_model.kvBytesPerToken()) /
                (_options.kvSwapGBps * 1e9);
        }
        _batch.push(a);
        _allSeen = false;
        _steadyValid = false;
        _preempted.erase(best);
        ++resumed;
    }

    // Disaggregated decode pool: migrated-in prefills join with
    // their context already materialized - a KV reservation but no
    // prefill charge (the prompt phase ran on the prefill pool).
    while (!_pendingPrefilled.empty() &&
           _pendingPrefilled.front().readySeconds <= _now &&
           _batch.size() < _options.maxRlp) {
        const PrefilledPending &pp = _pendingPrefilled.front();
        if (_options.deadlineSeconds > 0.0 &&
            pp.request.arrivalSeconds + _options.deadlineSeconds <=
                _now) {
            // SLO-aware shedding: its first token can no longer
            // land inside the deadline, so admitting it would only
            // burn compute no user is waiting for.
            ++_out.shedRequests;
            _pendingPrefilled.pop_front();
            continue;
        }
        const llm::Request &req = pp.request.request;
        std::uint64_t kv_blocks;
        if (!_preempt) {
            // Migration-aware reservation: the migrated footprint
            // is already real, the worst case adds the full output.
            const std::uint64_t worst =
                pp.kvTokens + req.outputLen;
            if (!_kv.canAdmit(worst))
                break;
            kv_blocks = _kv.admit(req.id, worst);
        } else {
            // On-demand mode: import the migrated footprint plus
            // this request's own first-iteration growth, keeping
            // headroom for the existing batch (admission must never
            // force an eviction by itself).
            const std::uint64_t reserve = _kv.blocksForTokens(
                pp.kvTokens + _spec.length);
            if (_kv.availableBlocks() <
                reserve + worstGrowthBlocks())
                break;
            kv_blocks = _kv.importRequest(req.id, pp.kvTokens);
        }
        ActiveSnapshot a;
        a.request = req;
        a.arrivalSeconds = pp.request.arrivalSeconds;
        a.admissionSeconds = decision_time;
        a.admitSeq = _admitSeqNext++;
        a.prefillRemaining = 0;
        a.kvTokens = static_cast<std::uint32_t>(pp.kvTokens);
        a.kvBlocks = kv_blocks;
        a.sessionId = pp.request.sessionId;
        _batch.push(a);
        _allSeen = false;
        _steadyValid = false;
        _pendingPrefilled.pop_front();
        ++admitted;
    }

    while (!_pending.empty() &&
           _pending.front().readySeconds <= _now &&
           _batch.size() < _options.maxRlp) {
        if (_options.deadlineSeconds > 0.0 &&
            _pending.front().request.arrivalSeconds +
                    _options.deadlineSeconds <= _now) {
            ++_out.shedRequests;
            _pending.pop_front();
            continue;
        }
        const llm::Request &req = _pending.front().request.request;
        std::uint64_t kv_blocks = 0;
        std::uint32_t hit = 0;
        if (!_static.enabled) {
            if (!_preempt) {
                // Reserve the worst case so growth can never fail.
                // A prefill-pool replica never decodes, so its
                // worst case is the prompt footprint alone. A
                // prefix hit skips prefill COST only - the request
                // still materializes its full private KV copy, so
                // the reservation is hit-independent.
                std::uint64_t worst =
                    static_cast<std::uint64_t>(req.inputLen) +
                    (_role == ServingRole::Prefill ? 0
                                                   : req.outputLen);
                if (!_kv.canAdmit(worst))
                    break;
                hit = lookup_prefix(req);
                kv_blocks = _kv.admit(req.id, worst);
            } else {
                // Reserve the prompt footprint plus this request's
                // own first-iteration growth, and keep headroom for
                // the existing batch's next iteration - admission
                // must never trigger an eviction by itself.
                const std::uint64_t reserve = _kv.blocksForTokens(
                    static_cast<std::uint64_t>(req.inputLen) +
                    std::max<std::uint32_t>(
                        _spec.length,
                        _options.prefillChunkTokens));
                if (_kv.availableBlocks() <
                    reserve + worstGrowthBlocks())
                    break;
                // Chunked mode materializes the cached span right
                // away (its prefill is skipped, so no later chunk
                // will grow over it); hit == 0 keeps the legacy
                // admit-at-zero bit-for-bit.
                hit = lookup_prefix(req);
                kv_blocks = _kv.admit(req.id,
                                      _chunked ? hit : req.inputLen);
            }
        }
        ActiveSnapshot a;
        a.request = req;
        a.arrivalSeconds = _pending.front().request.arrivalSeconds;
        a.admissionSeconds = decision_time;
        a.admitSeq = _admitSeqNext++;
        a.sessionId = _pending.front().request.sessionId;
        a.kvBlocks = kv_blocks;
        a.prefixHitTokens = hit;
        if (_prefixOn) {
            _out.prefixHitTokens += hit;
            _out.prefixMissTokens += req.inputLen - hit;
        }
        if (_chunked) {
            // Chunked prefill starts at the first uncached token:
            // the cached span is charged as prior context by the
            // chunk cost model (prior = contextLen - remaining).
            a.prefillRemaining = req.inputLen - hit;
            if (_preempt)
                a.kvTokens = hit;
        } else {
            a.kvTokens = req.inputLen;
            if (hit == 0) {
                _prefillLens.push_back(a.request.inputLen);
            } else if (hit < req.inputLen) {
                // Charge only the uncached suffix, costed as an
                // incremental prefill over the cached prior span.
                _hitPrior.push_back(hit);
                _hitNow.push_back(req.inputLen - hit);
            } // Full-block full hit: no prefill charge at all.
        }
        _batch.push(a);
        _allSeen = false;
        _steadyValid = false;
        _pending.pop_front();
        ++admitted;
    }
    if (admitted > 0 && _static.enabled)
        _staticInitialRlp = admitted;
    if (!_prefillLens.empty() &&
        (!_static.enabled || _static.includePrefill)) {
        // Prefill the newcomers before the next decode step.
        KernelExec pre = _platform.prefillExec(_model, _prefillLens);
        double pre_seconds = pre.seconds;
        double pre_joules = pre.energyJoules;
        if (!_cost.trivial()) {
            std::uint64_t prompt_tokens = 0;
            for (std::uint32_t len : _prefillLens)
                prompt_tokens += len;
            const auto tokens =
                static_cast<std::uint32_t>(prompt_tokens);
            pre_seconds = scaledSeconds(pre.seconds, 0.0, tokens);
            if (_cost.extraJoules)
                pre_joules += _cost.extraJoules(tokens);
        }
        _now += pre_seconds;
        _busySeconds += pre_seconds;
        _breakdown.prefillSeconds += pre_seconds;
        _out.energyJoules += pre_joules;
    }
    if (!_hitNow.empty()) {
        // Prefix-hit newcomers (non-chunked mode): prefill only the
        // uncached suffix, costed as an incremental prefill whose
        // prior context is the cached span - the same arithmetic
        // chunked prefill uses for its later chunks.
        KernelExec pre =
            _platform.prefillChunkExec(_model, _hitPrior, _hitNow);
        double pre_seconds = pre.seconds;
        double pre_joules = pre.energyJoules;
        if (!_cost.trivial()) {
            std::uint64_t now_tokens = 0;
            for (std::uint32_t len : _hitNow)
                now_tokens += len;
            const auto tokens =
                static_cast<std::uint32_t>(now_tokens);
            pre_seconds = scaledSeconds(pre.seconds, 0.0, tokens);
            if (_cost.extraJoules)
                pre_joules += _cost.extraJoules(tokens);
        }
        _now += pre_seconds;
        _busySeconds += pre_seconds;
        _breakdown.prefillSeconds += pre_seconds;
        _out.energyJoules += pre_joules;
    }
    if (swap_seconds > 0.0) {
        _now += swap_seconds;
        _busySeconds += swap_seconds;
        _breakdown.commSeconds += swap_seconds;
        // The lump-sum swap-in advance delays every live request at
        // this admit boundary, not just the resumed ones; attribute
        // the induced stall to all of them so preemption-stall
        // percentiles stay conservative.
        _batch.addStallAll(swap_seconds);
        _out.swapInducedStallSeconds +=
            swap_seconds * static_cast<double>(_batch.size());
    }
    // Prefill-pool replica: every request whose prompt phase just
    // completed (the whole non-chunked admission wave) retires into
    // the handoff queue instead of decoding here.
    if (_role == ServingRole::Prefill && !_batch.empty())
        handoffCompletedPrefills();
    if (admitted > 0)
        _out.admissions += admitted;
    _out.resumes += resumed;
    return admitted + resumed;
}

void
ServingSim::stepIdle()
{
    if (hasActive())
        sim::panic("ServingSim::stepIdle with a live batch");
    if (!hasPending())
        sim::panic("ServingSim::stepIdle with nothing pending");

    // Shedding can drain the entire eligible prefix inside admit()
    // without forming a batch, so fast-forward / admit loops until a
    // batch forms or nothing is left to try.
    for (;;) {
        // Idle until the next deliverable work item (a plain arrival
        // or a migrated-in prefill, whichever is earlier). Retries
        // become eligible at their backoff-delayed ready time, not
        // their original arrival.
        double next_work;
        if (_pendingPrefilled.empty()) {
            next_work = _pending.front().readySeconds;
        } else if (_pending.empty()) {
            next_work = _pendingPrefilled.front().readySeconds;
        } else {
            next_work =
                std::min(_pending.front().readySeconds,
                         _pendingPrefilled.front().readySeconds);
        }
        _now = std::max(_now, next_work);
        if (_options.admission == AdmissionPolicy::BatchLevel &&
            _pending.size() >= _options.maxRlp) {
            // Dynamic batching: if a full batch is already waiting,
            // start once the last member has arrived.
            _now = std::max(_now, _pending[_options.maxRlp - 1]
                                      .request.arrivalSeconds);
        } else if (_options.admission == AdmissionPolicy::BatchLevel) {
            // Otherwise wait out the fill timeout (or until the
            // batch fills, whichever comes first).
            double deadline =
                _pending.front().request.arrivalSeconds +
                _options.batchTimeoutSeconds;
            std::size_t fills = std::min<std::size_t>(
                _pending.size(), _options.maxRlp);
            double full_at =
                _pending[fills - 1].request.arrivalSeconds;
            _now = std::max(_now, std::min(deadline, full_at));
        }
        if (admit() > 0 || hasActive())
            return;
        if (!hasPending())
            return; // everything eligible was shed
        const bool eligible_front =
            (!_pending.empty() &&
             _pending.front().readySeconds <= _now) ||
            (!_pendingPrefilled.empty() &&
             _pendingPrefilled.front().readySeconds <= _now);
        if (eligible_front) {
            const std::uint64_t id =
                !_pending.empty()
                    ? _pending.front().request.request.id
                    : _pendingPrefilled.front().request.request.id;
            sim::fatal("ServingSim: request ", id,
                       " cannot be admitted into an empty batch (KV "
                       "worst-case footprint exceeds the Attn-PIM "
                       "pool)");
        }
        // Only not-yet-ready work remains; idle forward to it.
    }
}

ServingSim::IterationTiming
ServingSim::iterationTiming(TargetId target, std::uint32_t tokens,
                            std::uint32_t tlp) const
{
    syncGen();
    _batch.refillCtx(_ctx);

    IterationTiming t;
    t.fc = _platform.fcExec(_model, tokens, target);
    t.at = _platform.attnExec(_model, _ctx, tlp);
    t.other = _platform.otherSeconds(_model);
    if (_static.enabled) {
        // The draft model's serial proposal pass (speculative
        // decoding): charged as a fraction of the verification cost.
        if (_spec.length > 1 && _spec.draftCostFraction > 0.0)
            t.other += _spec.draftCostFraction *
                       (t.fc.seconds + t.at.seconds);
        // Kernels within a layer are dependent, so by default the
        // phases serialize (FC -> attention -> FC ...). Platforms
        // with sub-batch interleaving can hide a fraction of the
        // shorter phase under the longer one.
        t.hidden = _platform.config().phaseOverlapFraction *
                   std::min(t.fc.seconds, t.at.seconds);
    }
    t.seconds =
        _cost.trivial()
            ? t.fc.seconds + t.at.seconds - t.hidden + t.other
            : scaledSeconds(t.fc.seconds + t.at.seconds, t.other,
                            tokens);
    return t;
}

void
ServingSim::planChunks(std::vector<std::uint32_t> &chunks) const
{
    const std::size_t n = _batch.size();
    chunks.assign(n, 0);
    std::uint32_t budget = _options.prefillChunkTokens;
    const std::uint32_t *pre = _batch.prefillRemaining.data();
    // The batch is kept in admission order, so the shared chunk
    // budget drains oldest-admission-first.
    for (std::size_t i = 0; i < n && budget > 0; ++i) {
        if (pre[i] == 0)
            continue;
        const std::uint32_t c = std::min(pre[i], budget);
        chunks[i] = c;
        budget -= c;
    }
}

ServingSim::IterationPlan
ServingSim::planIteration() const
{
    IterationPlan p;
    planChunks(_chunkPlan);
    _chunkPrior.clear();
    _chunkNow.clear();
    const std::size_t n = _batch.size();
    const std::uint32_t tlp = _spec.length;
    std::uint32_t chunk_tokens = 0;
    std::uint64_t ctx_sum = 0;
    const bool all_decoding = !_batch.anyPrefilling();
    if (all_decoding) {
        // Steady-state fast path: everyone decodes, so the plan
        // inputs reduce to one vectorized context sum (_ctx itself
        // is only needed on a memo miss).
        p.decodeRlp = static_cast<std::uint32_t>(n);
        ctx_sum = steadyCtxSum();
    } else {
        syncGen();
        _ctx.clear();
        const std::uint32_t *pre = _batch.prefillRemaining.data();
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t ctx = _batch.contextLen(i);
            if (pre[i] == 0) {
                _ctx.push_back(ctx);
                ctx_sum += ctx;
                ++p.decodeRlp;
            } else if (_chunkPlan[i] > 0) {
                // Prefill total for costing is the full context
                // being (re)built - contextLen() is constant while
                // a request prefills, and covers recompute resumes.
                _chunkPrior.push_back(ctx - pre[i]);
                _chunkNow.push_back(_chunkPlan[i]);
                chunk_tokens += _chunkPlan[i];
            }
        }
    }
    p.tokens = fcTokens(p.decodeRlp, tlp);
    p.chunkTokens = chunk_tokens;
    double kernel = 0.0;
    double other = 0.0;
    if (p.decodeRlp > 0) {
        p.dispatched = true;
        const std::uint64_t key1 =
            (static_cast<std::uint64_t>(p.decodeRlp) << 32) |
            p.tokens;
        PlanMemoEntry &e = _planMemo[planMemoSlot(key1, ctx_sum)];
        if (e.key1 == key1 && e.key2 == ctx_sum) {
            p.decision = e.decision;
            p.timing = e.timing;
        } else {
            p.decision = _fcDispatch.select(_model, p.decodeRlp,
                                            tlp, p.tokens);
            if (all_decoding) {
                syncGen();
                _batch.refillCtx(_ctx);
            }
            p.timing.fc = _platform.fcExec(_model, p.tokens,
                                           p.decision.target);
            p.timing.at = _platform.attnExec(_model, _ctx, tlp);
            p.timing.other = _platform.otherSeconds(_model);
            e.key1 = key1;
            e.key2 = ctx_sum;
            e.decision = p.decision;
            e.timing = p.timing;
        }
        other = p.timing.other;
        kernel = p.timing.fc.seconds + p.timing.at.seconds;
    }
    if (!_chunkNow.empty())
        p.chunk = _platform.prefillChunkExec(_model, _chunkPrior,
                                             _chunkNow);
    kernel += p.chunk.seconds;
    p.seconds = _cost.trivial()
                    ? kernel + other
                    : scaledSeconds(kernel, other,
                                    p.tokens + chunk_tokens);
    return p;
}

void
ServingSim::refreshPlan() const
{
    if (_planValid)
        return;
    if (_chunked) {
        _plan = planIteration();
    } else {
        const auto rlp = static_cast<std::uint32_t>(_batch.size());
        const std::uint32_t tlp = _spec.length;
        const std::uint32_t tokens = fcTokens(rlp, tlp);
        const std::uint64_t ctx_sum = steadyCtxSum();
        IterationPlan p;
        p.decodeRlp = rlp;
        p.tokens = tokens;
        p.dispatched = true;
        const std::uint64_t key1 =
            (static_cast<std::uint64_t>(rlp) << 32) | tokens;
        PlanMemoEntry &e = _planMemo[planMemoSlot(key1, ctx_sum)];
        if (e.key1 == key1 && e.key2 == ctx_sum) {
            p.decision = e.decision;
            p.timing = e.timing;
        } else {
            p.decision = _fcDispatch.select(_model, rlp, tlp,
                                            tokens);
            p.timing =
                iterationTiming(p.decision.target, tokens, tlp);
            e.key1 = key1;
            e.key2 = ctx_sum;
            e.decision = p.decision;
            e.timing = p.timing;
        }
        p.seconds = p.timing.seconds;
        _plan = p;
    }
    _planValid = true;
}

bool
ServingSim::noteDispatch(TargetId target)
{
    bool rescheduled = false;
    if (_dynamic) {
        const bool was_gpu =
            _schedStarted && _targetIsGpu[_prevTarget] != 0;
        const bool is_gpu = _targetIsGpu[target] != 0;
        rescheduled = _schedStarted && target != _prevTarget;
        if (rescheduled)
            ++_out.reschedules;
        if (_schedStarted && is_gpu && !was_gpu)
            ++_out.reschedulesToGpu;
        _prevTarget = target;
        _schedStarted = true;
    }
    return rescheduled;
}

void
ServingSim::recordRetirementAt(std::size_t i)
{
    const double latency = _now - _batch.arrivalSeconds[i];
    RequestRecord rec;
    rec.id = _batch.id[i];
    rec.arrivalSeconds = _batch.arrivalSeconds[i];
    rec.admissionSeconds = _batch.admissionSeconds[i];
    rec.firstTokenSeconds = _batch.firstTokenSeen[i]
                                ? _batch.firstTokenSeconds[i]
                                : _now;
    rec.finishSeconds = _now;
    rec.outputTokens = _batch.outputLen[i];
    rec.preemptions = _batch.preemptions[i];
    rec.stallSeconds = _batch.stallSeconds[i];
    rec.prefixHitTokens = _batch.prefixHit[i];
    rec.prefixMissTokens =
        _batch.inputLen[i] - _batch.prefixHit[i];
    if (_bounded) {
        // Streaming metrics fold EVERY retirement, so the exact
        // counters and P-square estimators cover the whole run even
        // once the record buffer caps out.
        ++_stream.count;
        _stream.outputTokens += rec.outputTokens;
        if (_options.deadlineSeconds > 0.0 &&
            rec.ttftSeconds() <= _options.deadlineSeconds)
            ++_stream.deadlineMet;
        const double vals[kStreamMetricCount] = {
            rec.ttftSeconds(), rec.tpotSeconds(), latency,
            rec.queueingSeconds(), rec.stallSeconds};
        for (int m = 0; m < kStreamMetricCount; ++m) {
            _stream.sums[m] += vals[m];
            _stream.p50[m].add(vals[m]);
            _stream.p95[m].add(vals[m]);
            _stream.p99[m].add(vals[m]);
        }
        if (_records.size() >= _options.recordCapacity) {
            _stream.overflowed = true;
            return; // bounded memory: drop the per-request record
        }
    }
    _latencies.push_back(latency);
    _records.push_back(rec);
}

void
ServingSim::publishPrefix(std::size_t i)
{
    // Decode-pool replicas never see fresh admissions, so nothing
    // ever probes a prefix they publish - skip the pool pressure.
    if (!_prefixOn || _batch.insertKey[i] == 0 ||
        _role == ServingRole::Decode)
        return;
    const std::uint32_t span = _batch.insertTokens[i];
    const std::uint32_t ctx = _batch.contextLen(i);
    const std::uint64_t tok =
        span > 0 ? std::min(span, ctx) : ctx;
    _kv.prefixInsert(_batch.insertKey[i], tok);
}

std::uint32_t
ServingSim::probePrefixHitTokens(const llm::TimedRequest &tr) const
{
    const llm::Request &req = tr.request;
    if (!_prefixOn || req.prefixKey == 0)
        return 0;
    return static_cast<std::uint32_t>(_kv.peekPrefixHit(
        req.prefixKey, std::min(req.prefixTokens, req.inputLen)));
}

double
ServingSim::peekIterationSeconds() const
{
    if (_batch.empty())
        sim::panic("ServingSim::peekIterationSeconds without a batch");
    refreshPlan();
    return _plan.seconds;
}

void
ServingSim::stepDecode()
{
    if (_batch.empty())
        sim::panic("ServingSim::stepDecode without a batch");
    if (_chunked)
        stepDecodeChunked();
    else
        stepDecodeLegacy();
}

void
ServingSim::syncGen() const
{
    if (_genShift == 0)
        return;
    const std::uint32_t s = _genShift;
    std::uint32_t *gen = _batch.generated.data();
    const std::size_t n = _batch.size();
    for (std::size_t i = 0; i < n; ++i)
        gen[i] += s;
    _genShift = 0;
    // _ctxSumBase is defined over the stored values; folding moved
    // every stored value up by s, so rebase it (_minRem tracks true
    // remaining output and is unaffected).
    if (_steadyValid)
        _ctxSumBase += static_cast<std::uint64_t>(s) * n;
}

void
ServingSim::refreshSteady() const
{
    syncGen();
    const std::size_t n = _batch.size();
    const std::uint32_t *in = _batch.inputLen.data();
    const std::uint32_t *gen = _batch.generated.data();
    const std::uint32_t *out = _batch.outputLen.data();
    std::uint64_t ctx = 0;
    std::uint32_t rem = ~0u;
    for (std::size_t i = 0; i < n; ++i) {
        ctx += in[i] + gen[i];
        const std::uint32_t r = out[i] - gen[i];
        rem = r < rem ? r : rem;
    }
    _ctxSumBase = ctx;
    _minRem = rem;
    _steadyValid = true;
}

std::uint64_t
ServingSim::steadyCtxSum() const
{
    if (!_steadyValid)
        refreshSteady();
    return _ctxSumBase +
           static_cast<std::uint64_t>(_genShift) * _batch.size();
}

std::uint32_t
ServingSim::advanceAndRetire(std::uint32_t accepted, bool release_kv)
{
    const std::size_t n = _batch.size();
    if (!_steadyValid)
        refreshSteady();
    // O(1) algebraic advance: with every first token seen and
    // accepted strictly below the smallest remaining output, every
    // request advances by exactly `accepted` and nobody retires -
    // so the per-element sweep collapses to a scalar shift on the
    // generated column and closed-form aggregate updates. The token
    // total (n identical u32 increments summed in u64) and the
    // deferred per-element values are exactly what the sweep would
    // produce. Preemption mode reads per-element contexts right
    // after this call, so it stays on the materialized path.
    if (_allSeen && !_preempt && n > 0 && accepted < _minRem) {
        _genShift += accepted;
        _minRem -= accepted;
        _out.tokensGenerated +=
            static_cast<std::uint64_t>(accepted) * n;
        return 0;
    }
    syncGen();
    std::uint32_t *gen = _batch.generated.data();
    const std::uint32_t *out = _batch.outputLen.data();

    // First-token bookkeeping only matters while someone in the
    // batch has yet to produce a token - the iterations right after
    // an admission wave. _allSeen goes false on every batch
    // mutation and back to true here, so steady-state decode skips
    // this pass and the advance loop below stays a single-width
    // elementwise sweep. A request advances exactly when
    // min(accepted, out - gen) > 0, i.e. accepted > 0 and gen < out
    // - evaluated before gen moves, matching the fused original.
    if (!_allSeen && accepted > 0) {
        std::uint8_t *seen = _batch.firstTokenSeen.data();
        double *first = _batch.firstTokenSeconds.data();
        const double now = _now;
        std::uint32_t unseen = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const bool advances = gen[i] < out[i];
            const bool is_first = advances && seen[i] == 0;
            first[i] = is_first ? now : first[i];
            seen[i] = seen[i] | (advances ? 1 : 0);
            unseen += seen[i] == 0 ? 1u : 0u;
        }
        _allSeen = unseen == 0;
    }

    // Pass 1 - advance: elementwise min/add/compare over the
    // generation columns. No calls, no erases, no early exits:
    // this is the loop the compiler vectorizes.
    std::uint64_t tok = 0;
    std::uint32_t eos = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t rem = out[i] - gen[i];
        const std::uint32_t used = accepted < rem ? accepted : rem;
        gen[i] += used;
        tok += used;
        eos += gen[i] >= out[i] ? 1u : 0u;
    }
    _out.tokensGenerated += tok;

    // Pass 2 - retire: only when somebody finished. Records and KV
    // releases fire in batch (admission) order; survivors compact
    // in place, preserving admission order.
    if (eos > 0) {
        std::size_t w = 0;
        for (std::size_t r = 0; r < n; ++r) {
            if (gen[r] >= out[r]) {
                recordRetirementAt(r);
                if (release_kv) {
                    _kv.release(_batch.id[r]);
                    publishPrefix(r);
                }
            } else {
                _batch.moveTo(w, r);
                ++w;
            }
        }
        _batch.truncate(w);
    }
    _steadyValid = false; // generation/membership moved
    return eos;
}

void
ServingSim::stepDecodeLegacy()
{
    // Per-iteration decisions are stateless threshold checks (so
    // the plan a driver peeked is the plan executed here); RLP
    // transitions in both directions are counted below.
    refreshPlan();
    const IterationPlan plan = _plan;
    _planValid = false;
    const std::uint32_t rlp = plan.decodeRlp;
    const std::uint32_t tokens = plan.tokens;
    const TargetId target = plan.decision.target;
    const bool rescheduled = noteDispatch(target);

    IterationTiming t = plan.timing;
    const double iter_seconds = t.seconds;

    // Per-component accounting. The overlap-hidden time executes
    // under the longer phase, so the shorter phase's contributions
    // shrink (compute first, then its communication share).
    double fc_part = t.fc.seconds - t.fc.commSeconds;
    double at_part = t.at.seconds - t.at.commSeconds;
    double comm_part = t.fc.commSeconds + t.at.commSeconds;
    if (t.hidden > 0.0) {
        double &shorter =
            t.fc.seconds <= t.at.seconds ? fc_part : at_part;
        double deduct = std::min(t.hidden, shorter);
        shorter -= deduct;
        comm_part -= t.hidden - deduct;
    }
    // Under a tensor-parallel cost model the charged duration is the
    // scaled one; keep the breakdown in the same units (the group's
    // all-reduce counts as communication) so it still sums to the
    // busy time.
    if (!_cost.trivial()) {
        fc_part /= _cost.computeScale;
        at_part /= _cost.computeScale;
        comm_part /= _cost.computeScale;
        if (_cost.extraSeconds)
            comm_part += _cost.extraSeconds(tokens);
    }
    _breakdown.fcSeconds += fc_part;
    _breakdown.attnSeconds += at_part;
    _breakdown.commSeconds += comm_part;
    _breakdown.otherSeconds += t.other;

    _rlpTimeIntegral += iter_seconds * rlp;
    _busySeconds += iter_seconds;
    _now += iter_seconds;
    // Energy accumulation preserves each pre-fold loop's exact
    // floating-point association: the decode loop added the device
    // and host terms separately, the serving loop added one sum.
    if (_static.enabled) {
        _out.energyJoules += t.fc.energyJoules + t.at.energyJoules;
        _out.energyJoules += t.other * kHostWatts;
    } else {
        double iter_joules = t.fc.energyJoules + t.at.energyJoules +
                             t.other * kHostWatts;
        if (!_cost.trivial() && _cost.extraJoules)
            iter_joules += _cost.extraJoules(tokens);
        _out.energyJoules += iter_joules;
    }
    ++_out.iterations;
    ++_targetIters[target];
    if (_targetIsGpu[target])
        ++_out.fcOnGpuIterations;
    else
        ++_out.fcOnPimIterations;

    if (!_static.enabled)
        _out.peakKvUtilization = std::max(_out.peakKvUtilization,
                                          _kv.utilization());

    // Advance generation; retire finished requests.
    const std::uint32_t accepted = _spec.sampleAccepted(_rng);
    const std::uint32_t eos =
        advanceAndRetire(accepted, !_static.enabled);

    if (_preempt) {
        // On-demand accounting: materialize the tokens this
        // iteration appended (one bulk grow, ascending batch order
        // - the same allocation sequence as per-request calls),
        // then restore the next iteration's worst-case growth
        // headroom (evicting if pressure hit).
        const std::size_t n = _batch.size();
        _growIdx.clear();
        _growIds.clear();
        _growTok.clear();
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t ctx = _batch.contextLen(i);
            if (ctx > _batch.kvTokens[i]) {
                _batch.kvTokens[i] = ctx;
                _growIdx.push_back(i);
                _growIds.push_back(_batch.id[i]);
                _growTok.push_back(ctx);
            }
        }
        if (!_growIds.empty()) {
            _growBlocks.resize(_growIds.size());
            _kv.growMany(_growIds.data(), _growTok.data(),
                         _growBlocks.data(), _growIds.size());
            for (std::size_t j = 0; j < _growIdx.size(); ++j)
                _batch.kvBlocks[_growIdx[j]] = _growBlocks[j];
        }
        ensureKvHeadroom();
        _out.peakKvUtilization = std::max(_out.peakKvUtilization,
                                          _kv.utilization());
    }

    if (_static.recordTrace) {
        IterationTrace tr;
        tr.iteration = _out.iterations;
        tr.rlp = rlp;
        tr.tlp = _spec.length;
        tr.estimatedAi = _dynamic ? plan.decision.estimatedAi : 0.0;
        tr.targetId = target;
        tr.fcTarget = _platform.legacyFcTarget(target);
        tr.rescheduled = rescheduled;
        tr.eosCount = eos;
        tr.iterationSeconds = iter_seconds;
        _trace.push_back(tr);
    }
}

void
ServingSim::stepDecodeChunked()
{
    // refreshPlan also refilled _chunkPlan (via planIteration),
    // which the progress loop below consumes; any mutation since a
    // peek would have invalidated the cache.
    refreshPlan();
    const IterationPlan plan = _plan;
    _planValid = false;

    if (plan.dispatched)
        noteDispatch(plan.decision.target);

    // Per-component accounting: decode FC/attention split as the
    // legacy path does, prompt chunks under prefill.
    double fc_part =
        plan.timing.fc.seconds - plan.timing.fc.commSeconds;
    double at_part =
        plan.timing.at.seconds - plan.timing.at.commSeconds;
    double comm_part =
        plan.timing.fc.commSeconds + plan.timing.at.commSeconds;
    double chunk_part = plan.chunk.seconds;
    if (!_cost.trivial()) {
        fc_part /= _cost.computeScale;
        at_part /= _cost.computeScale;
        comm_part /= _cost.computeScale;
        chunk_part /= _cost.computeScale;
        if (_cost.extraSeconds)
            comm_part += plan.seconds -
                         (fc_part + at_part + comm_part +
                          chunk_part + plan.timing.other);
    }
    _breakdown.fcSeconds += fc_part;
    _breakdown.attnSeconds += at_part;
    _breakdown.commSeconds += comm_part;
    _breakdown.prefillSeconds += chunk_part;
    _breakdown.otherSeconds += plan.timing.other;

    const auto live = static_cast<std::uint32_t>(_batch.size());
    _rlpTimeIntegral += plan.seconds * live;
    _busySeconds += plan.seconds;
    _now += plan.seconds;

    double iter_joules =
        plan.chunk.energyJoules + plan.timing.other * kHostWatts;
    if (plan.dispatched)
        iter_joules += plan.timing.fc.energyJoules +
                       plan.timing.at.energyJoules;
    // Tokens in the fabric-energy term mirror the ones in the
    // fabric-time term (scaledSeconds): decode plus prefill chunks.
    if (!_cost.trivial() && _cost.extraJoules)
        iter_joules +=
            _cost.extraJoules(plan.tokens + plan.chunkTokens);
    _out.energyJoules += iter_joules;
    ++_out.iterations;
    if (plan.dispatched) {
        ++_targetIters[plan.decision.target];
        if (_targetIsGpu[plan.decision.target])
            ++_out.fcOnGpuIterations;
        else
            ++_out.fcOnPimIterations;
    }

    const std::size_t n = _batch.size();
    // All-decoding fast path: no chunks planned and nobody mid-
    // prefill means the iteration reduces to the same vectorized
    // advance as the legacy path (chunked serving always holds KV,
    // so releases are unconditional).
    const bool all_decoding =
        plan.chunkTokens == 0 &&
        plan.decodeRlp == static_cast<std::uint32_t>(n);

    if (all_decoding && !_preempt) {
        const std::uint32_t accepted =
            plan.decodeRlp > 0 ? _spec.sampleAccepted(_rng) : 0;
        advanceAndRetire(accepted, true);
        _out.peakKvUtilization = std::max(_out.peakKvUtilization,
                                          _kv.utilization());
        if (_role == ServingRole::Prefill)
            handoffCompletedPrefills();
        return;
    }

    // Freeze the decode set before prefill progress: a request
    // whose prefill completes in THIS iteration starts decoding at
    // the NEXT one (its chunk was costed, its decode was not).
    syncGen(); // the mixed loop below reads/writes generated[]
    _decoding.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        _decoding[i] = _batch.prefillRemaining[i] == 0;

    // Prefill progress; materialize the chunk's KV (bulk grow in
    // ascending batch order - the allocation sequence of the old
    // per-request loop).
    if (plan.chunkTokens > 0) {
        _growIdx.clear();
        _growIds.clear();
        _growTok.clear();
        for (std::size_t i = 0; i < n; ++i) {
            if (_chunkPlan[i] == 0)
                continue;
            _batch.prefillRemaining[i] -= _chunkPlan[i];
            if (_preempt) {
                _batch.kvTokens[i] += _chunkPlan[i];
                _growIdx.push_back(i);
                _growIds.push_back(_batch.id[i]);
                _growTok.push_back(std::max<std::uint32_t>(
                    _batch.kvTokens[i], 1));
            }
        }
        if (!_growIds.empty()) {
            _growBlocks.resize(_growIds.size());
            _kv.growMany(_growIds.data(), _growTok.data(),
                         _growBlocks.data(), _growIds.size());
            for (std::size_t j = 0; j < _growIdx.size(); ++j)
                _batch.kvBlocks[_growIdx[j]] = _growBlocks[j];
        }
    }

    // Advance the decoders; requests still prefilling produce no
    // tokens this iteration (their TTFT reflects the chunk delay).
    const std::uint32_t accepted =
        plan.decodeRlp > 0 ? _spec.sampleAccepted(_rng) : 0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < n; ++r) {
        if (!_decoding[r]) {
            _batch.moveTo(w, r);
            ++w;
            continue;
        }
        const std::uint32_t rem =
            _batch.outputLen[r] - _batch.generated[r];
        const std::uint32_t used = std::min(accepted, rem);
        _batch.generated[r] += used;
        _out.tokensGenerated += used;
        if (used > 0 && _batch.firstTokenSeen[r] == 0) {
            _batch.firstTokenSeconds[r] = _now;
            _batch.firstTokenSeen[r] = 1;
        }
        if (_preempt && used > 0) {
            _batch.kvTokens[r] += used;
            _batch.kvBlocks[r] =
                _kv.grow(_batch.id[r], _batch.kvTokens[r]);
        }
        if (_batch.generated[r] >= _batch.outputLen[r]) {
            recordRetirementAt(r);
            _kv.release(_batch.id[r]);
            publishPrefix(r);
        } else {
            _batch.moveTo(w, r);
            ++w;
        }
    }
    _batch.truncate(w);
    _steadyValid = false;

    if (_preempt)
        ensureKvHeadroom();
    _out.peakKvUtilization = std::max(_out.peakKvUtilization,
                                      _kv.utilization());

    // Prefill-pool replica: requests whose last chunk just ran are
    // done here - retire them into the handoff queue for migration
    // instead of letting them join the decode set.
    if (_role == ServingRole::Prefill)
        handoffCompletedPrefills();
}

std::uint64_t
ServingSim::worstGrowthBlocks() const
{
    // Pure array arithmetic against the kvBlocks mirror column - no
    // per-id hash lookups (kvBlocks[i] == _kv.requestBlocks(id[i])
    // by construction).
    syncGen();
    const std::size_t n = _batch.size();
    const std::uint64_t bt = _kvBlockTokens;
    std::uint64_t need = 0;
    if (_chunked) {
        planChunks(_chunkPlan);
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t target;
            if (_batch.prefillRemaining[i] > 0) {
                target = std::max<std::uint64_t>(
                    _batch.kvTokens[i] + _chunkPlan[i], 1);
            } else {
                const std::uint32_t rem =
                    _batch.outputLen[i] - _batch.generated[i];
                target = _batch.contextLen(i) +
                         std::min(_spec.length, rem);
            }
            const std::uint64_t blocks = (target + bt - 1) / bt;
            need += blocks > _batch.kvBlocks[i]
                        ? blocks - _batch.kvBlocks[i]
                        : 0;
        }
    } else {
        const std::uint32_t tlp = _spec.length;
        const std::uint32_t *in = _batch.inputLen.data();
        const std::uint32_t *gen = _batch.generated.data();
        const std::uint32_t *out = _batch.outputLen.data();
        const std::uint64_t *held = _batch.kvBlocks.data();
        for (std::size_t i = 0; i < n; ++i) {
            // Next decode iteration appends at most TLP tokens,
            // clipped at the request's remaining output.
            const std::uint32_t rem = out[i] - gen[i];
            const std::uint64_t target =
                in[i] + gen[i] + (tlp < rem ? tlp : rem);
            const std::uint64_t blocks = (target + bt - 1) / bt;
            need += blocks > held[i] ? blocks - held[i] : 0;
        }
    }
    return need;
}

void
ServingSim::preemptYoungest()
{
    // The batch is sorted by admitSeq, so the youngest-admitted
    // victim is simply the last element - O(1) against the old
    // full-batch max scan, same selection.
    syncGen();
    _steadyValid = false;
    ActiveSnapshot a = _batch.snapshot(_batch.size() - 1);
    _batch.popBack();
    _kv.release(a.request.id);
    if (_options.preemptPolicy == KvPreemptPolicy::SwapRestore) {
        // The swap-out leg of the transfer is paid here; the
        // swap-in leg at resume (admit). Recompute frees for free -
        // its cost is the re-prefill.
        const double out_seconds =
            static_cast<double>(a.kvTokens) *
            static_cast<double>(_model.kvBytesPerToken()) /
            (_options.kvSwapGBps * 1e9);
        _now += out_seconds;
        _busySeconds += out_seconds;
        _breakdown.commSeconds += out_seconds;
        // The lump-sum swap-out delays every surviving request;
        // attribute the induced stall (the victim's own stall clock
        // starts at the post-swap _now, so it is not double-counted).
        _batch.addStallAll(out_seconds);
        _out.swapInducedStallSeconds +=
            out_seconds * static_cast<double>(_batch.size());
    }
    ++a.preemptions;
    PreemptedRequest pr;
    pr.kvTokens = a.kvTokens;
    pr.preemptSeconds = _now;
    pr.evictSeq = _evictSeqNext++;
    const PreemptKey key{a.arrivalSeconds, a.request.id};
    pr.state = std::move(a);
    _out.evictionOrder.push_back(pr.state.request.id);
    ++_out.preemptions;
    _preemptOrder.emplace_back(key, pr.evictSeq);
    _preempted.emplace(key, std::move(pr));
}

void
ServingSim::ensureKvHeadroom()
{
    // availableBlocks() counts cached-prefix blocks as reclaimable
    // headroom: eviction happens lazily inside KvCacheManager's
    // growth path, so the cache is always sacrificed before any
    // live request is preempted (evict-before-preempt).
    while (_batch.size() > 1 &&
           worstGrowthBlocks() > _kv.availableBlocks())
        preemptYoungest();
    if (!_batch.empty() &&
        worstGrowthBlocks() > _kv.availableBlocks())
        sim::fatal("ServingSim: KV pool cannot hold even a single "
                   "request's next-iteration growth (request ",
                   _batch.id.front(),
                   "); the Attn-PIM capacity is too small for this "
                   "workload");
}

void
ServingSim::step()
{
    if (!hasActive()) {
        stepIdle();
        return;
    }
    stepDecode();
    // Token-level scheduling: admit newcomers immediately.
    admit();
}

ServingResult
ServingSim::finish()
{
    _out.makespanSeconds = _now - _firstArrival;
    _out.meanRlp = _busySeconds > 0.0
                       ? _rlpTimeIntegral / _busySeconds
                       : 0.0;
    _out.prefixEvictedBytes = _kv.prefixEvictedBytes();

    if (_bounded && _stream.overflowed) {
        // The record buffer capped out: the retained latencies are a
        // prefix of the run, so summary stats come from the exact
        // streaming sums and the P-square estimator instead.
        _out.meanLatencySeconds =
            _stream.sums[kStreamLatency] /
            static_cast<double>(_stream.count);
        _out.p95LatencySeconds =
            _stream.p95[kStreamLatency].value();
    } else if (!_latencies.empty()) {
        double sum = 0.0;
        for (double l : _latencies)
            sum += l;
        _out.meanLatencySeconds =
            sum / static_cast<double>(_latencies.size());
        std::sort(_latencies.begin(), _latencies.end());
        _out.p95LatencySeconds = percentileSorted(_latencies, 0.95);
    }
    return _out;
}

// ------------------------------------------------------------ ServingEngine

ServingResult
ServingEngine::run(const std::vector<llm::TimedRequest> &stream,
                   const llm::SpeculativeConfig &spec,
                   const llm::ModelConfig &model,
                   const ServingOptions &options)
{
    spec.validate();
    if (stream.empty())
        sim::fatal("ServingEngine: empty request stream");
    if (options.maxRlp == 0)
        sim::fatal("ServingEngine: maxRlp must be >= 1");
    for (std::size_t i = 1; i < stream.size(); ++i) {
        if (stream[i].arrivalSeconds < stream[i - 1].arrivalSeconds)
            sim::fatal("ServingEngine: arrivals must be sorted");
    }

    // The stream is delivered up front (admission sees the full
    // arrival schedule, which the batch-level fill rule's lookahead
    // needs) and the lifecycle runs as events on a sim::EventQueue -
    // executing exactly the historical step() sequence.
    ServingSim sim(_platform, spec, model, options);
    for (const auto &tr : stream)
        sim.deliver(tr);
    ServingEventDriver driver({&sim});
    driver.runPredelivered();
    return sim.finish();
}

} // namespace papi::core
